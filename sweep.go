package gtw

import (
	"repro/internal/core"
)

// This file is the sweep layer of the public API: parameter-sweep
// scenarios whose grid is split across per-core shards — each shard
// owning a fresh simulation kernel, network and testbed — with results
// merged deterministically in grid order, so a sharded run's report is
// byte-identical to the sequential one. A Sweep is an ordinary
// Scenario: register it and it runs through Run/RunAll/cmd/gtwrun with
// no special cases.
//
//	gtw.MustRegister(gtw.NewSweep("my-sweep", "what it sweeps",
//		[]gtw.Axis{{Name: "mtu", Values: []any{1500, 9180, 65536}}},
//		func(ctx context.Context, tb *gtw.Testbed, opts gtw.Options, pt gtw.Point) (any, error) {
//			return probe(tb, pt.Coord(0).(int))
//		},
//		func(opts gtw.Options, results []any) (gtw.Report, error) {
//			return assemble(results), nil
//		}))
//	rep, err := gtw.Run(ctx, "my-sweep", gtw.WithShards(8))

// Axis is one named dimension of a sweep grid.
type Axis = core.Axis

// Point is one coordinate of a sweep grid (row-major order, last axis
// fastest).
type Point = core.Point

// PointFunc evaluates one grid point on the shard's testbed.
type PointFunc = core.PointFunc

// MergeFunc reassembles per-point results (in grid order) into the
// scenario Report.
type MergeFunc = core.MergeFunc

// Sweep is a parameter-sweep scenario executed by the sharded sweep
// engine; it implements Scenario.
type Sweep = core.Sweep

// ShardTiming records one shard's point count and wall-clock time.
type ShardTiming = core.ShardTiming

// ShardedReport is the Report of a sweep run: the merged scenario
// report plus per-shard timings (Text/JSON delegate to the merged
// report, so sharding never changes the measurement record).
type ShardedReport = core.ShardedReport

// CountWorkers counts the timing entries that evaluated at least one
// grid point — the participant figure surfaced as "workers" in gtwrun's
// -json envelope and the distributed job status.
func CountWorkers(timings []ShardTiming) int { return core.CountWorkers(timings) }

// NewSweep builds a sweep scenario over the cross product of axes.
func NewSweep(name, description string, axes []Axis, runPoint PointFunc, merge MergeFunc) *Sweep {
	return core.NewSweep(name, description, axes, runPoint, merge)
}

// WithShards bounds how many shards a sweep may split its grid across
// (0 = GOMAXPROCS, not exceeding a WithWorkers bound). Sharding changes
// only wall-clock time, never the report bytes.
func WithShards(n int) Option { return core.WithShards(n) }

// Lease is a contiguous run of grid points checked out by one worker
// from a sweep's Dispatcher.
type Lease = core.Lease

// Dispatcher hands out grid-point leases to sweep shards (and, through
// the distributed run service, to remote gtwworker processes): a
// shared queue with lease/complete/requeue semantics, safe for
// concurrent use.
type Dispatcher = core.Dispatcher

// DispatcherMaker builds a dispatcher for a sweep run (points in the
// grid, expected concurrent workers).
type DispatcherMaker = core.DispatcherMaker

// NewWorkStealingDispatcher is the default dispatch policy: every
// shard leases batches from one shared queue, a shard that finishes
// early steals the next lease, and per-worker throughput EWMAs steer
// larger leases to faster workers. Closes the idle gap contiguous
// batching leaves on grids with uneven point costs.
func NewWorkStealingDispatcher(points, workers int) Dispatcher {
	return core.NewWorkStealingDispatcher(points, workers)
}

// NewContiguousDispatcher is the static policy sweeps used before the
// work-stealing queue: the grid pre-split into one contiguous batch
// per shard. Kept for comparison and for callers that want a
// deterministic shard->points assignment.
func NewContiguousDispatcher(points, workers int) Dispatcher {
	return core.NewContiguousDispatcher(points, workers)
}

// WithDispatcher selects the sweep dispatch policy (default
// NewWorkStealingDispatcher). Dispatch changes only wall-clock time:
// results always merge in grid order, so reports stay byte-identical.
func WithDispatcher(maker DispatcherMaker) Option { return core.WithDispatcher(maker) }
