// Realtime fMRI (section 4): scanner -> RT-server -> RT-client over a
// real TCP socket with motion correction and incremental correlation
// (the "fire-rt-session" scenario), followed by the latency/pipelining
// budget of the paper (the "figure2-endtoend" scenario).
package main

import (
	"context"
	"fmt"
	"log"

	gtw "repro"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	sess, err := gtw.Run(ctx, "fire-rt-session", gtw.WithFrames(32))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sess.Text())

	budget, err := gtw.Run(ctx, "figure2-endtoend", gtw.WithPEs(256), gtw.WithFrames(30))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(budget.Text())
}
