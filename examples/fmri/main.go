// Realtime fMRI (section 4): scanner -> RT-server -> RT-client over a
// real TCP socket, incremental correlation analysis, motion correction,
// and the latency/pipelining budget of the paper.
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/fire"
	"repro/internal/mri"
)

func main() {
	log.SetFlags(0)

	// A subject with one activation and slight head motion.
	act := mri.Activation{CX: 32, CY: 30, CZ: 8, Radius: 5, Amplitude: 0.05, HRF: mri.DefaultHRF}
	ph := mri.NewPhantom(64, 64, 16, []mri.Activation{act})
	motion := make([]mri.Shift, 32)
	for i := 16; i < 32; i++ {
		motion[i] = mri.Shift{DX: 0.8, DY: -0.4} // subject moves mid-measurement
	}
	sc := mri.NewScanner(ph, mri.ScanConfig{
		NX: 64, NY: 64, NZ: 16, TR: 2, NScans: 32,
		NoiseStd: 2, Motion: motion, Seed: 3,
	})
	srv := &fire.RTServer{Scanner: sc}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go srv.ListenAndServe(l)

	client, err := fire.DialRT(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	corr := fire.NewCorrelator(sc.Reference(0), 64, 64, 16)
	var reference = ph.Anatomy // motion-correction reference
	for {
		msg, err := client.NextImage()
		if err != nil {
			log.Fatal(err)
		}
		if msg.Type == fire.MsgDone {
			break
		}
		// 3-D movement correction against the anatomy.
		fixed, shift, err := fire.MotionCorrect(reference, msg.Image, fire.MotionOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if msg.Scan == 20 {
			fmt.Printf("scan %d: estimated subject motion (%.2f, %.2f, %.2f) voxels\n",
				msg.Scan, shift[0], shift[1], shift[2])
		}
		if err := corr.Add(fixed); err != nil {
			log.Fatal(err)
		}
	}
	m, err := corr.Map()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correlation at activation center: %.3f\n", m.At(32, 30, 8))

	// The section-4 latency budget at 256 PEs.
	st := fire.PaperStageTimes(fire.DefaultT3E600(), 256)
	fmt.Printf("end-to-end delay at 256 PEs: %.2f s (paper: < 5 s)\n", st.TotalDelay())
	fmt.Printf("unpipelined period: %.2f s -> safe TR %.1f s (paper: 2.7 s -> 3 s)\n",
		st.UnpipelinedPeriod(), fire.SafeTR(st.UnpipelinedPeriod()))
	fmt.Printf("pipelined period would be %.2f s\n", st.PipelinedPeriod())
}
