// Coupled climate (section 3): ocean-ice model ("Cray T3E") and
// atmosphere ("IBM SP2") exchanging 2-D surface fields through a
// CSM-style flux coupler every timestep — ~1 MByte bursts over the WAN,
// run through the registered "climate-coupled" scenario.
package main

import (
	"context"
	"fmt"
	"log"

	gtw "repro"
)

func main() {
	log.SetFlags(0)
	rep, err := gtw.Run(context.Background(), "climate-coupled")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Text())
}
