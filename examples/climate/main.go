// Coupled climate (section 3): ocean-ice model ("Cray T3E") and
// atmosphere ("IBM SP2") exchanging 2-D surface fields through a
// CSM-style flux coupler every timestep — ~1 MByte bursts over the WAN.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/climate"
	"repro/internal/mpi"
)

func main() {
	log.SetFlags(0)
	cfg := climate.CoupledConfig{
		OceanGrid: climate.Grid{NLat: 64, NLon: 128},
		AtmosGrid: climate.Grid{NLat: 32, NLon: 64},
		Dt:        3600,
		Steps:     48, // two simulated days
	}
	shaper := mpi.LinkShaper{Latency: 550 * time.Microsecond, Bps: 260e6}
	res, err := climate.RunCoupled([3]string{"cray-t3e", "ibm-sp2", "csm-coupler"}, shaper, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coupled %d steps of %d s; %.2f MByte exchanged per step\n",
		res.Steps, int(cfg.Dt), float64(res.BytesPerExchange)/1e6)
	fmt.Printf("final mean SST %.2f K (range %.1f..%.1f), ice fraction %.3f\n",
		res.FinalMeanSST, res.MinSST, res.MaxSST, res.FinalIceFraction)
	fmt.Println("(the paper quotes up to 1 MByte in short bursts per timestep)")
}
