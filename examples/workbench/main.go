// 3-D visualization (section 4 / figure 4): merge the functional data
// with the high-resolution anatomy, render a maximum-intensity
// projection ("the light areas are regions of the brain that are
// activated"), and evaluate the Responsive Workbench streaming rates —
// run through the registered "figure4-workbench" scenario, whose
// report carries the rendered head.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	gtw "repro"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "head.png", "output PNG path")
	flag.Parse()

	rep, err := gtw.Run(context.Background(), "figure4-workbench")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Text())
	fmt.Println("(the paper: 'less than 8 frames/second ... over a 622 Mbit/s ATM network using classical IP')")

	f4, ok := rep.(*gtw.Figure4Report)
	if !ok {
		log.Fatalf("unexpected report type %T", rep)
	}
	if err := os.WriteFile(*out, f4.PNG, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendered activated head to %s\n", *out)
}
