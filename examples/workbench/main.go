// 3-D visualization (section 4 / figure 4): merge the functional data
// with the high-resolution anatomy, render a maximum-intensity
// projection ("the light areas are regions of the brain that are
// activated"), and evaluate the Responsive Workbench streaming rates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/atm"
	"repro/internal/fire"
	"repro/internal/mri"
	"repro/internal/viz"
	"repro/internal/volume"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "head.png", "output PNG path")
	flag.Parse()

	// A measurement with a motor-cortex-like activation.
	act := mri.Activation{CX: 24, CY: 40, CZ: 10, Radius: 5, Amplitude: 0.05, HRF: mri.DefaultHRF}
	ph := mri.NewPhantom(64, 64, 16, []mri.Activation{act})
	sc := mri.NewScanner(ph, mri.ScanConfig{NX: 64, NY: 64, NZ: 16, TR: 2, NScans: 40, NoiseStd: 2, Seed: 13})
	corr := fire.NewCorrelator(sc.Reference(0), 64, 64, 16)
	for {
		v := sc.Next()
		if v == nil {
			break
		}
		if err := corr.Add(v); err != nil {
			log.Fatal(err)
		}
	}
	m, err := corr.Map()
	if err != nil {
		log.Fatal(err)
	}

	// High-resolution anatomy (the 256x256x128 pre-measurement scan,
	// reduced here to keep the example fast).
	hi := volume.New(128, 128, 32)
	hiPh := mri.NewPhantom(128, 128, 32, nil)
	copy(hi.Data, hiPh.Anatomy.Data)

	merged := viz.MergeFunctional(hi, m)
	img, err := viz.RenderMIP(hi, merged, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := viz.WritePNG(f, img); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendered activated head to %s\n", *out)

	// The workbench streaming arithmetic of section 4.
	fmt.Printf("workbench frame set: %d bytes (2 planes x stereo x 1024x768x24bit)\n",
		viz.WorkbenchFrameBytes)
	for _, c := range []struct {
		name string
		bps  float64
		mtu  int
	}{
		{"622 Mbit/s ATM, classical IP", atm.OC12.PayloadRate(), atm.DefaultCLIPMTU},
		{"622 Mbit/s ATM, 64 KByte MTU", atm.OC12.PayloadRate(), atm.MaxCLIPMTU},
		{"2.4 Gbit/s ATM, classical IP", atm.OC48.PayloadRate(), atm.DefaultCLIPMTU},
	} {
		fmt.Printf("  %-30s %5.2f frames/s\n", c.name, viz.WorkbenchFPS(c.bps, c.mtu))
	}
	fmt.Println("(the paper: 'less than 8 frames/second ... over a 622 Mbit/s ATM network using classical IP')")
}
