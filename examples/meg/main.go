// MEG analysis (section 3): pmusic estimates dipole positions in a
// human brain with the MUSIC algorithm; the grid scan is distributed
// over MPI ranks, and the MPP+vector metacomputing model shows the
// superlinear-speedup argument.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/machine"
	"repro/internal/meg"
	"repro/internal/mpi"
)

func main() {
	log.SetFlags(0)

	// Synthesize a measurement with one active dipole.
	arr := meg.NewHelmetArray(64, 0.12)
	truth := meg.Vec3{X: 0.025, Y: -0.01, Z: 0.05}
	q := meg.Vec3{X: 1, Y: 0, Z: 0}.Cross(truth)
	q = q.Scale(2e-8 / q.Norm())
	nt := 120
	course := make([]float64, nt)
	for i := range course {
		course[i] = math.Sin(float64(i) * 0.25)
	}
	x, err := meg.Synthesize(arr, []meg.Dipole{{Pos: truth, Moment: q, Course: course}}, nt, 2e-15, 11)
	if err != nil {
		log.Fatal(err)
	}
	us, _, err := meg.SignalSubspace(meg.Covariance(x), 1)
	if err != nil {
		log.Fatal(err)
	}
	grid := meg.BrainGrid(0.09, 0.01)
	fmt.Printf("scanning %d grid points on 4 MPI ranks...\n", len(grid))

	var best meg.Vec3
	var val float64
	err = mpi.Run(4, func(c *mpi.Comm) error {
		res, err := meg.ParallelScan(c, arr, us, grid)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			best, val = res.Best()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	errMM := best.Sub(truth).Norm() * 1000
	fmt.Printf("true dipole (%.0f, %.0f, %.0f) mm; MUSIC peak %.3f at (%.0f, %.0f, %.0f) mm — error %.1f mm\n",
		truth.X*1000, truth.Y*1000, truth.Z*1000, val,
		best.X*1000, best.Y*1000, best.Z*1000, errMM)

	// The metacomputing rationale: MPP+vector beats MPP-only.
	m := meg.DistributedModel{
		MPP:        machine.CrayT3E600(),
		Vector:     machine.CrayT90(),
		WANLatency: 550 * time.Microsecond,
		WANBps:     260e6,
		Sensors:    148, Signals: 5, GridPoints: len(grid), Iterations: 10,
	}
	for _, pes := range []int{16, 64, 256} {
		fmt.Printf("distributed vs MPP-only speedup at %3d PEs: %.2fx\n",
			pes, m.SuperlinearSpeedup(pes))
	}
}
