// MEG analysis (section 3): pmusic estimates dipole positions in a
// human brain with the MUSIC algorithm; the grid scan is distributed
// over MPI ranks, and the MPP+vector metacomputing model shows the
// superlinear-speedup argument — run through the registered
// "meg-music" scenario.
package main

import (
	"context"
	"fmt"
	"log"

	gtw "repro"
)

func main() {
	log.SetFlags(0)
	rep, err := gtw.Run(context.Background(), "meg-music")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Text())
}
