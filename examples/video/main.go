// Multimedia (section 3): an uncompressed 270 Mbit/s D1 studio video
// stream over the simulated ATM testbed, on carriers that can and
// cannot sustain it — run through the registered "video-d1" scenario
// (OC-3 cannot carry it, OC-12 does with headroom, OC-48 trivially).
package main

import (
	"context"
	"fmt"
	"log"

	gtw "repro"
)

func main() {
	log.SetFlags(0)
	rep, err := gtw.Run(context.Background(), "video-d1", gtw.WithFrames(50))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Text())
}
