// Multimedia (section 3): an uncompressed 270 Mbit/s D1 studio video
// stream over the simulated ATM testbed, on carriers that can and
// cannot sustain it.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/atm"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/video"
)

type clipFramer struct{}

func (clipFramer) WireSize(n int) int { return atm.CLIPWireBytes(n) }
func (clipFramer) Name() string       { return "atm-clip" }

func run(oc atm.OC) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddNode("studio-gmd")
	b := n.AddNode("echtzeit-koeln")
	n.Connect(a, b, netsim.LinkConfig{
		Bps: oc.PayloadRate(), Delay: 500 * time.Microsecond, MTU: 9180,
		Framer: clipFramer{}, QueueBytes: 32 << 20,
	})
	n.ComputeRoutes()
	res, err := video.Stream(n, a.ID, b.ID, video.StreamConfig{Frames: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6v payload %6.1f Mbit/s: %2d/%2d frames on time, %d lost packets, peak jitter %6.2f ms\n",
		oc, oc.PayloadRate()/1e6, res.OnTime, res.Frames, res.LostPackets,
		res.PeakJitter.Seconds()*1000)
}

func main() {
	log.SetFlags(0)
	fmt.Printf("D1 video: %d bytes/frame at %d frames/s = %.0f Mbit/s CBR\n",
		video.FrameBytes, video.FrameRate, video.D1Bps/1e6)
	run(atm.OC3)  // cannot carry it
	run(atm.OC12) // carries it with headroom
	run(atm.OC48) // trivially
}
