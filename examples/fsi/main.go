// MetaCISPAR (section 3): coupling of industrial structural mechanics
// and fluid dynamics codes through the COCOLIB interface, ported to the
// metacomputing environment — run through the registered "fsi-cocolib"
// scenario (fluid and structure codes on different machines with
// non-matching interface meshes; COCOLIB interpolates the exchange).
package main

import (
	"context"
	"fmt"
	"log"

	gtw "repro"
)

func main() {
	log.SetFlags(0)
	rep, err := gtw.Run(context.Background(), "fsi-cocolib")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Text())
}
