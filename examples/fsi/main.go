// MetaCISPAR (section 3): coupling of industrial structural mechanics
// and fluid dynamics codes through the COCOLIB interface, ported to the
// metacomputing environment. The fluid code (rank 0) and the structure
// code (rank 1) run on different machines with non-matching interface
// meshes; COCOLIB handles the exchange and interpolation.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cocolib"
	"repro/internal/mpi"
)

func main() {
	log.SetFlags(0)
	shaper := mpi.LinkShaper{Latency: 550 * time.Microsecond, Bps: 260e6}
	res, err := cocolib.RunFSI(
		[2]string{"gmd-fluid-code", "fzj-structure-code"},
		shaper,
		65, // fluid interface nodes
		41, // structure interface nodes (non-matching)
		2500, 0.001,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FSI coupled run: %d exchanges, %.1f KByte moved across the interface\n",
		res.Steps, float64(res.BytesExchanged)/1024)
	fmt.Printf("panel reached static aeroelastic equilibrium: max deflection %.4f (residual %.1e)\n",
		res.MaxDeflection, res.TipResidual)
	fmt.Println("(COCOLIB interpolates between the 65-node fluid and 41-node structure meshes)")
}
