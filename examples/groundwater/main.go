// Groundwater solute transport (section 3): TRACE (Darcy flow, "on the
// SP2") coupled to PARTRACE (particle tracking, "on the T3E") over the
// metacomputing MPI with WAN shaping, shipping the 3-D flow field every
// coupling step.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/groundwater"
	"repro/internal/mpi"
	"repro/internal/mpitrace"
)

func main() {
	log.SetFlags(0)

	flow := groundwater.FlowConfig{
		NX: 40, NY: 16, NZ: 12, Dx: 1.0,
		K:        groundwater.LognormalK(40, 16, 12, 1e-4, 1.0, 42),
		HeadLeft: 12, HeadRight: 0, Porosity: 0.3,
	}
	cfg := groundwater.CoupledConfig{
		Flow:      flow,
		Track:     groundwater.TrackConfig{Dt: 2000, Steps: 25, Dispersion: 1e-4, Seed: 9},
		Particles: 500,
		Steps:     6,
		HeadDrift: 0.2,
	}
	// WAN shaped to the measured testbed path (~260 Mbit/s, ~0.55 ms),
	// with a VAMPIR-style trace recorder attached.
	shaper := mpi.LinkShaper{Latency: 550 * time.Microsecond, Bps: 260e6}
	rec := mpitrace.NewRecorder()

	res, err := groundwater.RunCoupledTraced([2]string{"ibm-sp2", "cray-t3e"}, shaper, rec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coupled run: %d steps, %.2f MByte field per step (%.1f MByte total)\n",
		res.Steps, float64(res.BytesPerStep)/1e6, float64(res.TotalBytes)/1e6)
	fmt.Printf("TRACE solver: %d CG iterations total\n", res.CGIterTotal)
	fmt.Printf("PARTRACE: %d particles broke through, plume front at %.1f cells\n",
		res.Exited, res.FinalMeanX)
	fmt.Println("(the paper quotes up to 30 MByte/s for this field transfer)")
	fmt.Println()
	fmt.Println("VAMPIR-style communication summary:")
	fmt.Print(mpitrace.FormatStats(rec.Stats()))
	fmt.Print(rec.Gantt(64))
}
