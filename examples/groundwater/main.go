// Groundwater solute transport (section 3): TRACE (Darcy flow, "on the
// SP2") coupled to PARTRACE (particle tracking, "on the T3E") over the
// metacomputing MPI with WAN shaping — run through the registered
// "groundwater-coupled" scenario, whose report includes the
// VAMPIR-style communication summary.
package main

import (
	"context"
	"fmt"
	"log"

	gtw "repro"
)

func main() {
	log.SetFlags(0)
	rep, err := gtw.Run(context.Background(), "groundwater-coupled")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Text())
}
