// Quickstart: the unified scenario API. List the registry, run one
// scenario with functional options, run several concurrently on a
// shared contended testbed, and use the testbed facade directly for
// the section-2 headline throughput and co-allocation.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	gtw "repro"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// The registry: every experiment is a named scenario.
	fmt.Println("registered scenarios:")
	for _, s := range gtw.Scenarios() {
		fmt.Printf("  %-24s %s\n", s.Name(), s.Description())
	}

	// Run one scenario with functional options.
	rep, err := gtw.Run(ctx, "figure2-endtoend", gtw.WithPEs(256), gtw.WithFrames(30))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Text())

	// Run several concurrently on ONE shared testbed — one facility
	// for every experiment, as the paper's projects shared one WAN
	// (shared co-allocation, cumulative backbone accounting).
	tb := gtw.NewTestbed(gtw.Config{})
	names := []string{"figure1-throughput", "figure4-workbench", "future-work"}
	results, err := gtw.RunAll(ctx, names, gtw.WithTestbed(tb))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, r := range results {
		fmt.Printf("shared-testbed run %-24s finished in %8s (err=%v)\n",
			r.Name, r.Elapsed.Round(time.Millisecond), r.Err)
	}
	fmt.Printf("backbone carried %.1f MByte across the shared run\n",
		float64(tb.BackboneWireBytes())/1e6)

	// The testbed facade remains directly usable.
	local, err := tb.TCPTransfer(gtw.HostT3E600, gtw.HostT3E1200, 64<<20, gtw.TCPConfig{WindowBytes: 4 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocal Cray complex (HiPPI, 64K MTU): %.1f Mbit/s (paper: >430)\n",
		local.ThroughputBps/1e6)
	if err := tb.Reserve("fmri-demo", gtw.HostT3E600, gtw.HostOnyx2, gtw.HostWSJuelich); err != nil {
		log.Fatal(err)
	}
	fmt.Println("co-allocated T3E + Onyx2 + workstation for session fmri-demo")
	tb.Release("fmri-demo")
}
