// Quickstart: build the Gigabit Testbed West, measure the two headline
// throughputs of section 2, and co-allocate the fMRI session's hosts.
package main

import (
	"fmt"
	"log"

	gtw "repro"
)

func main() {
	log.SetFlags(0)
	tb := gtw.NewTestbed(gtw.Config{})

	// Section 2: ">430 Mbit/s within the local Cray complex".
	local, err := tb.TCPTransfer(gtw.HostT3E600, gtw.HostT3E1200, 64<<20, gtw.TCPConfig{WindowBytes: 4 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local Cray complex (HiPPI, 64K MTU): %.1f Mbit/s (paper: >430)\n",
		local.ThroughputBps/1e6)

	// Section 2: ">260 Mbit/s between the Cray T3E and the IBM SP2".
	wan, err := tb.TCPTransfer(gtw.HostT3E600, gtw.HostSP2, 64<<20, gtw.TCPConfig{WindowBytes: 4 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WAN T3E -> SP2:                      %.1f Mbit/s (paper: >260)\n",
		wan.ThroughputBps/1e6)

	// Section 6: simultaneous resource allocation for a distributed
	// session.
	if err := tb.Reserve("fmri-demo", gtw.HostT3E600, gtw.HostOnyx2, gtw.HostWSJuelich); err != nil {
		log.Fatal(err)
	}
	fmt.Println("co-allocated T3E + Onyx2 + workstation for session fmri-demo")
	tb.Release("fmri-demo")
}
