// Package gtw is the public API of this reproduction of
// "Distributed Applications in a German Gigabit WAN" (Eickermann et
// al., HPDC 1999): a simulation of the Gigabit Testbed West — the
// 2.4 Gbit/s ATM/SDH wide-area testbed between Research Centre Jülich
// and GMD Sankt Augustin — together with working reimplementations of
// the distributed applications that ran on it.
//
// Every experiment — the paper's tables and figures as well as the
// section-3 application workloads — is a registered Scenario with a
// uniform Run signature and Report result, executed by one engine.
//
// Quickstart — run one scenario:
//
//	rep, err := gtw.Run(ctx, "figure2-endtoend", gtw.WithPEs(256), gtw.WithFrames(30))
//	if err != nil { ... }
//	fmt.Print(rep.Text())      // the human-readable table
//	b, _ := rep.JSON()         // the measurement record
//
// Run many concurrently, each on a fresh testbed:
//
//	results, err := gtw.RunAll(ctx, nil) // nil = every registered scenario
//	for _, r := range results {
//		fmt.Printf("%-24s %8s err=%v\n", r.Name, r.Elapsed.Round(time.Millisecond), r.Err)
//	}
//
// Or all on one shared testbed — one facility for every experiment,
// as the paper's projects shared one WAN (shared co-allocation and
// cumulative backbone accounting; transfers serialise onto the one
// simulation kernel):
//
//	tb := gtw.NewTestbed(gtw.Config{})
//	results, err := gtw.RunAll(ctx, names, gtw.WithTestbed(tb))
//
// Adding a workload is a one-file exercise:
//
//	gtw.MustRegister(gtw.NewScenario("my-workload", "what it measures",
//		func(ctx context.Context, tb *gtw.Testbed, opts gtw.Options) (gtw.Report, error) {
//			res, err := tb.TCPTransfer(gtw.HostT3E600, gtw.HostSP2, 64<<20, gtw.TCPConfig{})
//			...
//		}))
//
// The testbed itself (topology, TCP transfers, co-allocation) remains
// directly usable:
//
//	tb := gtw.NewTestbed(gtw.Config{})
//	res, err := tb.TCPTransfer(gtw.HostT3E600, gtw.HostSP2, 64<<20, gtw.TCPConfig{})
//	fmt.Println(res) // ~260 Mbit/s, as measured in 1999
//
// The subsystems live in internal/ packages:
//
//	internal/sim         discrete-event simulation kernel
//	internal/netsim      packet-level network simulator
//	internal/atm         ATM/AAL5/SDH framing arithmetic
//	internal/hippi       HiPPI channels and HiPPI-ATM gateways
//	internal/tcpsim      TCP throughput model
//	internal/mpi         metacomputing MPI (MPI-2 subset)
//	internal/mpitrace    VAMPIR-style tracing
//	internal/machine     supercomputer performance models
//	internal/fire        FIRE fMRI analysis (filters, motion, RVO, ...)
//	internal/mri         synthetic MRI scanner
//	internal/meg         pmusic / MUSIC dipole analysis
//	internal/groundwater TRACE/PARTRACE coupling
//	internal/climate     coupled ocean/atmosphere + flux coupler
//	internal/video       D1 studio video over ATM
//	internal/viz         2-D overlay, 3-D merge, workbench streaming
//	internal/core        the testbed topology, scenarios and run engine
//
// See EXPERIMENTS.md for the paper-vs-measured record, and cmd/gtwrun
// for the CLI that lists and runs any registered scenario.
package gtw

import (
	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/fire"
	"repro/internal/machine"
	"repro/internal/tcpsim"
)

// Config selects the testbed generation (OC-12 vs OC-48 backbone,
// extension sites).
type Config = core.Config

// Testbed is the simulated Gigabit Testbed West. It is safe to share
// between concurrently running scenarios: co-allocation is guarded and
// simulation access is serialised internally.
type Testbed = core.Testbed

// TCPConfig tunes simulated TCP transfers.
type TCPConfig = tcpsim.Config

// PDESAggregate is the process-wide sum of PDES synchronization
// counters over every partitioned (WithKernels > 1) testbed run:
// rounds, null messages, and the per-kernel event split.
type PDESAggregate = core.PDESAggregate

// PDESSnapshot returns the current process-wide PDES aggregate.
func PDESSnapshot() PDESAggregate { return core.PDESSnapshot() }

// TCPResult reports a transfer outcome.
type TCPResult = tcpsim.Result

// MachineSpec is the performance model of a simulated supercomputer.
type MachineSpec = machine.Spec

// NewTestbed builds the Figure-1 topology.
func NewTestbed(cfg Config) *Testbed { return core.New(cfg) }

// Host names of the standard topology.
const (
	HostT3E600     = core.HostT3E600
	HostT3E1200    = core.HostT3E1200
	HostT90        = core.HostT90
	HostSP2        = core.HostSP2
	HostOnyx2      = core.HostOnyx2
	HostWSJuelich  = core.HostWSJuelich
	HostWSGMD      = core.HostWSGMD
	HostGatewayFZJ = core.HostGatewayFZJ
	HostGatewayGMD = core.HostGatewayGMD
	HostDLR        = core.HostDLR
	HostUniKoeln   = core.HostUniKoeln
	HostUniBonn    = core.HostUniBonn
)

// OC selects a SONET/SDH carrier level for experiment parameters.
type OC = atm.OC

// Carrier levels.
const (
	OC3  = atm.OC3
	OC12 = atm.OC12
	OC48 = atm.OC48
)

// ---------------------------------------------------------------------
// Deprecated one-shot experiment entry points. Each is now a registered
// scenario with a uniform Report; these wrappers remain so existing
// callers keep compiling.

// Table1Row is one row of the paper's Table 1.
type Table1Row = fire.Table1Row

// PaperTable1 returns Table 1 exactly as printed in the paper.
func PaperTable1() []Table1Row { return fire.PaperTable1 }

// ModelTable1 evaluates the calibrated T3E-600 model at the paper's PE
// counts.
//
// Deprecated: use Run(ctx, "table1-model").
func ModelTable1() []Table1Row { return fire.DefaultT3E600().ModelTable1() }

// Figure1Row is one testbed path measurement.
type Figure1Row = core.Figure1Row

// Figure1Throughput measures the section-2 throughput observations.
//
// Deprecated: use Run(ctx, "figure1-throughput").
func Figure1Throughput() ([]Figure1Row, error) { return core.Figure1Throughput() }

// Figure2Result is the section-4 latency budget.
type Figure2Result = core.Figure2Result

// Figure2EndToEnd evaluates the realtime-fMRI latency budget.
//
// Deprecated: use Run(ctx, "figure2-endtoend", WithPEs(pes), WithFrames(frames)).
func Figure2EndToEnd(pes, frames int) (Figure2Result, error) {
	return core.Figure2EndToEnd(pes, frames)
}

// Figure3Result is the FIRE GUI reproduction.
type Figure3Result = core.Figure3Result

// Figure3Overlay runs the 2-D overlay experiment.
//
// Deprecated: use Run(ctx, "figure3-overlay").
func Figure3Overlay() (Figure3Result, error) { return core.Figure3Overlay() }

// Figure4Result is the 3-D visualization / workbench experiment.
type Figure4Result = core.Figure4Result

// Figure4Workbench runs the visualization experiment.
//
// Deprecated: use Run(ctx, "figure4-workbench").
func Figure4Workbench() (Figure4Result, error) { return core.Figure4Workbench() }

// AppRow is one section-3 application requirement check.
type AppRow = core.AppRow

// Section3Applications verifies each application's WAN requirements.
//
// Deprecated: use Run(ctx, "section3-applications").
func Section3Applications() ([]AppRow, error) { return core.Section3Applications() }

// FMRIScenario configures the full discrete-event fMRI dataflow over
// the testbed (scanner, RT-server, T3E, RT-client, Onyx 2, workbench).
type FMRIScenario = core.FMRIScenario

// FMRIScenarioResult reports the derived end-to-end timing.
type FMRIScenarioResult = core.FMRIScenarioResult

// RunFMRIScenario executes the five-computer fMRI scenario.
//
// Deprecated: use Run(ctx, "fmri-dataflow", WithPEs(pes), WithFrames(frames)).
func RunFMRIScenario(sc FMRIScenario) (FMRIScenarioResult, error) {
	return core.RunFMRIScenario(sc)
}

// AggregateRow is one backbone saturation measurement.
type AggregateRow = core.AggregateRow

// BackboneAggregate fills the backbone with concurrent flows — the
// OC-12 -> OC-48 upgrade rationale.
//
// Deprecated: use Run(ctx, "backbone-aggregate", WithFlows(flows)),
// which reports both backbone generations side by side (WithWAN does
// not narrow it); call this function directly for a single carrier.
func BackboneAggregate(wan OC, flows int) (AggregateRow, error) {
	return core.BackboneAggregate(wan, flows)
}

// MixedTrafficResult compares video + bulk TCP sharing the backbone.
type MixedTrafficResult = core.MixedTrafficResult

// MixedTraffic runs the mixed-workload experiment.
//
// Deprecated: use Run(ctx, "mixed-traffic"), which reports both
// backbone generations side by side (WithWAN does not narrow it);
// call this function directly for a single carrier.
func MixedTraffic(wan OC) (MixedTrafficResult, error) { return core.MixedTraffic(wan) }

// FutureWorkResult holds the forward-looking analyses (B-WiN growth,
// multi-echo imaging).
type FutureWorkResult = core.FutureWorkResult

// FutureWorkAnalysis evaluates the paper's forward-looking claims.
//
// Deprecated: use Run(ctx, "future-work").
func FutureWorkAnalysis() (FutureWorkResult, error) { return core.FutureWorkAnalysis() }

// Formatting helpers for the experiment results.
//
// Deprecated: every scenario Report renders itself via Text().
var (
	FormatFigure1    = core.FormatFigure1
	FormatFigure2    = core.FormatFigure2
	FormatFigure3    = core.FormatFigure3
	FormatFigure4    = core.FormatFigure4
	FormatSection3   = core.FormatSection3
	FormatUpgrade    = core.FormatUpgrade
	FormatFutureWork = core.FormatFutureWork
)
