package gtw

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// The acceptance bar for the scenario API: the registry exposes every
// experiment uniformly, and RunAll executes them concurrently.

func TestScenarioRegistryFacade(t *testing.T) {
	all := Scenarios()
	if len(all) < 8 {
		t.Fatalf("only %d scenarios registered, want >= 8", len(all))
	}
	for _, want := range []string{
		"figure1-throughput", "figure2-endtoend", "figure3-overlay",
		"figure4-workbench", "section3-applications", "fmri-dataflow",
		"backbone-aggregate", "mixed-traffic", "future-work",
	} {
		s, ok := Lookup(want)
		if !ok {
			t.Errorf("scenario %q not registered", want)
			continue
		}
		if s.Description() == "" {
			t.Errorf("scenario %q has no description", want)
		}
	}
}

func TestScenarioRunFacade(t *testing.T) {
	rep, err := Run(context.Background(), "figure2-endtoend", WithPEs(256), WithFrames(10))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text(), "total delay") {
		t.Errorf("unexpected text:\n%s", rep.Text())
	}
	f2, ok := rep.(*Figure2Report)
	if !ok {
		t.Fatalf("report type %T", rep)
	}
	if f2.TotalDelay >= 5 {
		t.Errorf("total delay %.2f s, paper promises < 5", f2.TotalDelay)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["TotalDelay"]; !ok {
		t.Errorf("JSON missing TotalDelay: %s", b)
	}
}

// The sweep facade: a caller-defined sweep built through the public API
// shards, merges in grid order and surfaces shard timings, without
// registry involvement.
func TestSweepFacade(t *testing.T) {
	sw := NewSweep("facade-sweep", "doubles its grid values",
		[]Axis{{Name: "v", Values: []any{1, 2, 3}}},
		func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) {
			return pt.Coord(0).(int) * 2, nil
		},
		func(opts Options, results []any) (Report, error) {
			for i, r := range results {
				if want := (i + 1) * 2; r.(int) != want {
					t.Errorf("result %d = %v, want %d", i, r, want)
				}
			}
			return &FutureWorkReport{}, nil
		})
	if sw.Name() != "facade-sweep" || len(sw.Axes()) != 1 {
		t.Fatalf("sweep metadata broken: %q, %d axes", sw.Name(), len(sw.Axes()))
	}
	rep, err := sw.Run(context.Background(), nil, NewOptions(WithShards(2)))
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := rep.(ShardedReport)
	if !ok {
		t.Fatalf("sweep report %T does not implement ShardedReport", rep)
	}
	points := 0
	for _, st := range sr.ShardTimings() {
		points += st.Points
	}
	if points != 3 {
		t.Errorf("shards covered %d points, want 3", points)
	}
}

// TestRunAllEveryScenarioConcurrently runs the full registry through
// the engine at reduced sizes — under -race this is the proof that the
// engine and every registered scenario are concurrency-clean.
func TestRunAllEveryScenarioConcurrently(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run")
	}
	results, err := RunAll(context.Background(), nil,
		WithPEs(64), WithFrames(8), WithFlows(2), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 8 {
		t.Fatalf("engine ran %d scenarios", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed after %v: %v", r.Name, r.Elapsed, r.Err)
			continue
		}
		if r.Report == nil || r.Report.Text() == "" {
			t.Errorf("%s produced no report text", r.Name)
		}
		if _, err := r.Report.JSON(); err != nil {
			t.Errorf("%s JSON: %v", r.Name, err)
		}
	}
}
