package gtw

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// The acceptance bar for the scenario API: the registry exposes every
// experiment uniformly, and RunAll executes them concurrently.

func TestScenarioRegistryFacade(t *testing.T) {
	all := Scenarios()
	if len(all) < 8 {
		t.Fatalf("only %d scenarios registered, want >= 8", len(all))
	}
	for _, want := range []string{
		"figure1-throughput", "figure2-endtoend", "figure3-overlay",
		"figure4-workbench", "section3-applications", "fmri-dataflow",
		"backbone-aggregate", "mixed-traffic", "future-work",
	} {
		s, ok := Lookup(want)
		if !ok {
			t.Errorf("scenario %q not registered", want)
			continue
		}
		if s.Description() == "" {
			t.Errorf("scenario %q has no description", want)
		}
	}
}

func TestScenarioRunFacade(t *testing.T) {
	rep, err := Run(context.Background(), "figure2-endtoend", WithPEs(256), WithFrames(10))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text(), "total delay") {
		t.Errorf("unexpected text:\n%s", rep.Text())
	}
	f2, ok := rep.(*Figure2Report)
	if !ok {
		t.Fatalf("report type %T", rep)
	}
	if f2.TotalDelay >= 5 {
		t.Errorf("total delay %.2f s, paper promises < 5", f2.TotalDelay)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["TotalDelay"]; !ok {
		t.Errorf("JSON missing TotalDelay: %s", b)
	}
}

// TestRunAllEveryScenarioConcurrently runs the full registry through
// the engine at reduced sizes — under -race this is the proof that the
// engine and every registered scenario are concurrency-clean.
func TestRunAllEveryScenarioConcurrently(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run")
	}
	results, err := RunAll(context.Background(), nil,
		WithPEs(64), WithFrames(8), WithFlows(2), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 8 {
		t.Fatalf("engine ran %d scenarios", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed after %v: %v", r.Name, r.Elapsed, r.Err)
			continue
		}
		if r.Report == nil || r.Report.Text() == "" {
			t.Errorf("%s produced no report text", r.Name)
		}
		if _, err := r.Report.JSON(); err != nil {
			t.Errorf("%s JSON: %v", r.Name, err)
		}
	}
}
