// Command gtwbench regenerates every table and figure of the paper as
// text, printing the paper's value next to the reproduced one. It is
// the human-readable twin of the root-package benchmarks, implemented
// over the scenario registry (cmd/gtwrun is the generic CLI over the
// same engine).
//
// With -bench it instead runs the simulator hot-path microbenchmarks
// (internal/benchkit: kernel event queue, packet delivery, multi-hop
// forwarding, end-to-end TCP transfer, single-kernel vs. sharded vs.
// work-stealing sweeps) and writes the results as machine-readable
// JSON, so CI can archive the perf trajectory. With -baseline it
// additionally compares the fresh run against an earlier
// BENCH_kernel.json and exits non-zero when any benchmark regressed by
// more than -maxregress — the scheduled CI job's regression gate.
//
// -ratchet adds the second, slower-moving gate: a committed best-ever
// baseline (BENCH_best.json). The single-step -baseline gate only sees
// the previous run, so a sequence of -24% steps can drift a benchmark
// arbitrarily slow without ever tripping it; the ratchet compares
// against the best number ever recorded and fails past -ratchetregress.
// When a run beats a best-ever entry, the file is rewritten with the
// improvement (commit the update to advance the ratchet).
//
// Usage:
//
//	gtwbench [-experiment all|table1|f1|f2|f3|f4|a1|u1|b1|d1|<scenario-name>]
//	gtwbench -bench [-benchout BENCH_kernel.json] [-baseline old.json] [-maxregress 0.25]
//	         [-ratchet BENCH_best.json] [-ratchetregress 0.40]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	gtw "repro"
	"repro/internal/benchkit"
)

// shorthand maps the historical experiment keys to scenario names.
var shorthand = map[string][]string{
	"table1": {"table1-model"},
	"f1":     {"figure1-throughput"},
	"f2":     {"figure2-endtoend"},
	"f3":     {"figure3-overlay"},
	"f4":     {"figure4-workbench"},
	"a1":     {"section3-applications"},
	"u1":     {"backbone-aggregate", "mixed-traffic"},
	"b1":     {"future-work"},
	"d1":     {"fmri-dataflow"},
}

// paperOrder is the presentation order for -experiment all.
var paperOrder = []string{"table1", "f1", "f2", "f3", "f4", "a1", "u1", "b1", "d1"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gtwbench: ")
	exp := flag.String("experiment", "all",
		"which experiment to run (all, table1, f1, f2, f3, f4, a1, u1, b1, d1, or a scenario name)")
	bench := flag.Bool("bench", false,
		"run the simulator hot-path microbenchmarks and write them as JSON instead of reproducing the paper")
	benchOut := flag.String("benchout", "BENCH_kernel.json",
		"output path for the -bench JSON report")
	baseline := flag.String("baseline", "",
		"earlier BENCH_kernel.json to gate the -bench run against (empty = no gate)")
	maxRegress := flag.Float64("maxregress", 0.25,
		"fail -bench when any benchmark's ns/op exceeds the -baseline value by more than this fraction")
	benchReps := flag.Int("benchreps", 1,
		"repeat the -bench suite this many times and keep each benchmark's best run (damps shared-runner noise when gating)")
	ratchet := flag.String("ratchet", "",
		"best-ever baseline to gate -bench against and update on improvement (empty = no ratchet)")
	ratchetRegress := flag.Float64("ratchetregress", 0.40,
		"fail -bench when any benchmark's ns/op exceeds the -ratchet best-ever value by more than this fraction")
	flag.Parse()

	if *bench {
		if err := runBench(*benchOut, *baseline, *maxRegress, *benchReps, *ratchet, *ratchetRegress); err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx := context.Background()
	runNames := func(names []string, opts ...gtw.Option) {
		for _, name := range names {
			rep, err := gtw.Run(ctx, name, opts...)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Print(rep.Text())
		}
		fmt.Println()
	}
	runKey := func(key string) {
		// The d1 sweep shows two partition sizes under one header,
		// like the old output.
		if key == "d1" {
			for i, pes := range []int{64, 256} {
				rep, err := gtw.Run(ctx, "fmri-dataflow", gtw.WithPEs(pes), gtw.WithFrames(10))
				if err != nil {
					log.Fatalf("fmri-dataflow: %v", err)
				}
				d1 := rep.(*gtw.FMRIDataflowReport)
				if i == 0 {
					fmt.Print(d1.Header())
				}
				fmt.Print(d1.Row())
			}
			fmt.Println()
			return
		}
		runNames(shorthand[key], gtw.WithFlows(4))
	}

	switch {
	case *exp == "all":
		for _, key := range paperOrder {
			runKey(key)
		}
	case shorthand[*exp] != nil:
		runKey(*exp)
	default:
		if _, ok := gtw.Lookup(*exp); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		// Same flows as the shorthand path, so the u1 scenarios print
		// the same numbers however they are named. (The d1 shorthand
		// additionally sweeps PE counts at 10 frames; a by-name
		// fmri-dataflow run uses the engine defaults instead.)
		runNames([]string{*exp}, gtw.WithFlows(4))
	}
}

// benchReport is the BENCH_kernel.json document.
type benchReport struct {
	GoVersion string            `json:"go_version"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	Results   []benchkit.Result `json:"results"`
}

// runBench executes the benchkit suite (best of reps runs per
// benchmark), writes the JSON report and, if given, gates the run
// against the last archived baseline (-baseline) and the committed
// best-ever ratchet (-ratchet).
func runBench(path, baselinePath string, maxRegress float64, reps int, ratchetPath string, ratchetRegress float64) error {
	results, err := benchkit.Run()
	if err != nil {
		return err
	}
	// Best-of-N: keep each benchmark's fastest rep, so a one-off
	// scheduling hiccup on a shared CI runner doesn't masquerade as a
	// regression.
	for rep := 1; rep < reps; rep++ {
		again, err := benchkit.Run()
		if err != nil {
			return err
		}
		for i := range results {
			if again[i].NsPerOp < results[i].NsPerOp {
				results[i] = again[i]
			}
		}
	}
	rep := benchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   results,
	}
	for _, r := range rep.Results {
		line := fmt.Sprintf("%-28s %12d ops %12.1f ns/op %8d B/op %6d allocs/op",
			r.Name, r.N, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.MBPerSec > 0 {
			line += fmt.Sprintf(" %10.1f MB/s", r.MBPerSec)
		}
		fmt.Println(line)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)

	if baselinePath != "" {
		base, err := readBenchReport(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		regressions := compareBench(base.Results, results, maxRegress)
		for _, line := range regressions {
			fmt.Println("REGRESSION:", line)
		}
		if len(regressions) > 0 {
			return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s",
				len(regressions), maxRegress*100, baselinePath)
		}
		fmt.Printf("no regression > %.0f%% vs %s\n", maxRegress*100, baselinePath)
	}
	if ratchetPath != "" {
		if err := applyRatchet(ratchetPath, results, ratchetRegress); err != nil {
			return err
		}
	}
	return nil
}

// applyRatchet gates results against the committed best-ever baseline
// and rewrites it when a run improves on it. The ratchet catches slow
// cumulative drift: each nightly only has to stay within
// ratchetRegress of the best number ever recorded, not of yesterday's.
// A missing ratchet file (first run) is seeded from the current
// results; new benchmarks are adopted into an existing file the same
// way.
func applyRatchet(path string, results []benchkit.Result, maxRegress float64) error {
	best := benchReport{
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
	}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &best); err != nil {
			return fmt.Errorf("ratchet: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("ratchet: %w", err)
	}
	byName := make(map[string]int, len(best.Results))
	for i, r := range best.Results {
		byName[r.Name] = i
	}
	improved := 0
	var regressions []string
	for _, r := range results {
		i, ok := byName[r.Name]
		if !ok {
			best.Results = append(best.Results, r)
			improved++
			continue
		}
		b := best.Results[i]
		if b.NsPerOp <= 0 || r.NsPerOp < b.NsPerOp {
			best.Results[i] = r
			improved++
			continue
		}
		if r.NsPerOp > b.NsPerOp*(1+maxRegress) {
			regressions = append(regressions,
				fmt.Sprintf("%s: best-ever %.1f ns/op -> %.1f ns/op (+%.0f%%, ratchet limit +%.0f%%)",
					r.Name, b.NsPerOp, r.NsPerOp, (r.NsPerOp/b.NsPerOp-1)*100, maxRegress*100))
		}
	}
	if improved > 0 {
		b, err := json.MarshalIndent(best, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("ratchet: %d benchmark(s) improved; updated %s (commit it to advance the ratchet)\n",
			improved, path)
	}
	for _, line := range regressions {
		fmt.Println("RATCHET REGRESSION:", line)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) drifted more than %.0f%% past their best-ever in %s",
			len(regressions), maxRegress*100, path)
	}
	fmt.Printf("no drift > %.0f%% past best-ever in %s\n", maxRegress*100, path)
	return nil
}

// readBenchReport loads an archived BENCH_kernel.json.
func readBenchReport(path string) (benchReport, error) {
	var rep benchReport
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// compareBench reports every benchmark whose ns/op grew by more than
// maxRegress over the baseline. Benchmarks present on only one side are
// skipped: a renamed or new benchmark has no baseline to regress from.
func compareBench(base, cur []benchkit.Result, maxRegress float64) []string {
	old := make(map[string]benchkit.Result, len(base))
	for _, r := range base {
		old[r.Name] = r
	}
	var out []string
	for _, r := range cur {
		b, ok := old[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if r.NsPerOp > b.NsPerOp*(1+maxRegress) {
			out = append(out, fmt.Sprintf("%s: %.1f ns/op -> %.1f ns/op (+%.0f%%, limit +%.0f%%)",
				r.Name, b.NsPerOp, r.NsPerOp, (r.NsPerOp/b.NsPerOp-1)*100, maxRegress*100))
		}
	}
	return out
}
