// Command gtwbench regenerates every table and figure of the paper as
// text, printing the paper's value next to the reproduced one. It is
// the human-readable twin of the root-package benchmarks.
//
// Usage:
//
//	gtwbench [-experiment all|table1|f1|f2|f3|f4|a1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/fire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gtwbench: ")
	exp := flag.String("experiment", "all", "which experiment to run (all, table1, f1, f2, f3, f4, a1, u1, b1)")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	run("table1", func() error {
		model := fire.DefaultT3E600()
		rows := model.ModelTable1()
		fmt.Println("T1: FIRE processing times on the Cray T3E-600, 64x64x16 image")
		fmt.Println("      (model vs. paper; times in seconds)")
		fmt.Println("  PEs   filter        motion        RVO            total          speedup")
		for i, r := range rows {
			p := fire.PaperTable1[i]
			fmt.Printf("  %3d   %5.3f/%5.2f   %5.3f/%5.2f   %7.2f/%7.2f  %7.2f/%7.2f  %6.1f/%6.1f\n",
				r.PEs, r.Filter, p.Filter, r.Motion, p.Motion, r.RVO, p.RVO, r.Total, p.Total,
				r.Speedup, p.Speedup)
		}
		return nil
	})

	run("f1", func() error {
		rows, err := core.Figure1Throughput()
		if err != nil {
			return err
		}
		fmt.Print(core.FormatFigure1(rows))
		return nil
	})

	run("f2", func() error {
		r, err := core.Figure2EndToEnd(256, 30)
		if err != nil {
			return err
		}
		fmt.Print(core.FormatFigure2(r))
		return nil
	})

	run("f3", func() error {
		r, err := core.Figure3Overlay()
		if err != nil {
			return err
		}
		fmt.Print(core.FormatFigure3(r))
		return nil
	})

	run("f4", func() error {
		r, err := core.Figure4Workbench()
		if err != nil {
			return err
		}
		fmt.Print(core.FormatFigure4(r))
		return nil
	})

	run("a1", func() error {
		rows, err := core.Section3Applications()
		if err != nil {
			return err
		}
		fmt.Print(core.FormatSection3(rows))
		return nil
	})

	run("u1", func() error {
		var aggs []core.AggregateRow
		for _, wan := range []atm.OC{atm.OC12, atm.OC48} {
			row, err := core.BackboneAggregate(wan, 4)
			if err != nil {
				return err
			}
			aggs = append(aggs, row)
		}
		var mixes []core.MixedTrafficResult
		for _, wan := range []atm.OC{atm.OC12, atm.OC48} {
			m, err := core.MixedTraffic(wan)
			if err != nil {
				return err
			}
			mixes = append(mixes, m)
		}
		fmt.Print(core.FormatUpgrade(aggs, mixes))
		return nil
	})

	run("b1", func() error {
		r, err := core.FutureWorkAnalysis()
		if err != nil {
			return err
		}
		fmt.Print(core.FormatFutureWork(r))
		return nil
	})

	run("d1", func() error {
		fmt.Println("D1: fully derived fMRI dataflow (DES over the testbed)")
		for _, pes := range []int{64, 256} {
			r, err := core.RunFMRIScenario(core.FMRIScenario{PEs: pes, TR: 4.0, Frames: 10})
			if err != nil {
				return err
			}
			fmt.Printf("  %3d PEs: GUI delay %.2f s mean / %.2f s max, VR path %.2f s, wire %.0f ms/frame\n",
				pes, r.MeanGUIDelay, r.MaxGUIDelay, r.MeanVRDelay, r.WireSeconds*1000)
		}
		return nil
	})

	if *exp != "all" {
		switch *exp {
		case "table1", "f1", "f2", "f3", "f4", "a1", "u1", "b1", "d1":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}
}
