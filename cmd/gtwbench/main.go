// Command gtwbench regenerates every table and figure of the paper as
// text, printing the paper's value next to the reproduced one. It is
// the human-readable twin of the root-package benchmarks, implemented
// over the scenario registry (cmd/gtwrun is the generic CLI over the
// same engine).
//
// With -bench it instead runs the simulator hot-path microbenchmarks
// (internal/benchkit: kernel event queue, packet delivery, multi-hop
// forwarding, end-to-end TCP transfer) and writes the results as
// machine-readable JSON, so CI can archive the perf trajectory.
//
// Usage:
//
//	gtwbench [-experiment all|table1|f1|f2|f3|f4|a1|u1|b1|d1|<scenario-name>]
//	gtwbench -bench [-benchout BENCH_kernel.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	gtw "repro"
	"repro/internal/benchkit"
)

// shorthand maps the historical experiment keys to scenario names.
var shorthand = map[string][]string{
	"table1": {"table1-model"},
	"f1":     {"figure1-throughput"},
	"f2":     {"figure2-endtoend"},
	"f3":     {"figure3-overlay"},
	"f4":     {"figure4-workbench"},
	"a1":     {"section3-applications"},
	"u1":     {"backbone-aggregate", "mixed-traffic"},
	"b1":     {"future-work"},
	"d1":     {"fmri-dataflow"},
}

// paperOrder is the presentation order for -experiment all.
var paperOrder = []string{"table1", "f1", "f2", "f3", "f4", "a1", "u1", "b1", "d1"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gtwbench: ")
	exp := flag.String("experiment", "all",
		"which experiment to run (all, table1, f1, f2, f3, f4, a1, u1, b1, d1, or a scenario name)")
	bench := flag.Bool("bench", false,
		"run the simulator hot-path microbenchmarks and write them as JSON instead of reproducing the paper")
	benchOut := flag.String("benchout", "BENCH_kernel.json",
		"output path for the -bench JSON report")
	flag.Parse()

	if *bench {
		if err := runBench(*benchOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx := context.Background()
	runNames := func(names []string, opts ...gtw.Option) {
		for _, name := range names {
			rep, err := gtw.Run(ctx, name, opts...)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Print(rep.Text())
		}
		fmt.Println()
	}
	runKey := func(key string) {
		// The d1 sweep shows two partition sizes under one header,
		// like the old output.
		if key == "d1" {
			for i, pes := range []int{64, 256} {
				rep, err := gtw.Run(ctx, "fmri-dataflow", gtw.WithPEs(pes), gtw.WithFrames(10))
				if err != nil {
					log.Fatalf("fmri-dataflow: %v", err)
				}
				d1 := rep.(*gtw.FMRIDataflowReport)
				if i == 0 {
					fmt.Print(d1.Header())
				}
				fmt.Print(d1.Row())
			}
			fmt.Println()
			return
		}
		runNames(shorthand[key], gtw.WithFlows(4))
	}

	switch {
	case *exp == "all":
		for _, key := range paperOrder {
			runKey(key)
		}
	case shorthand[*exp] != nil:
		runKey(*exp)
	default:
		if _, ok := gtw.Lookup(*exp); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		// Same flows as the shorthand path, so the u1 scenarios print
		// the same numbers however they are named. (The d1 shorthand
		// additionally sweeps PE counts at 10 frames; a by-name
		// fmri-dataflow run uses the engine defaults instead.)
		runNames([]string{*exp}, gtw.WithFlows(4))
	}
}

// benchReport is the BENCH_kernel.json document.
type benchReport struct {
	GoVersion string            `json:"go_version"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	Results   []benchkit.Result `json:"results"`
}

// runBench executes the benchkit suite and writes the JSON report.
func runBench(path string) error {
	results, err := benchkit.Run()
	if err != nil {
		return err
	}
	rep := benchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   results,
	}
	for _, r := range rep.Results {
		line := fmt.Sprintf("%-28s %12d ops %12.1f ns/op %8d B/op %6d allocs/op",
			r.Name, r.N, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.MBPerSec > 0 {
			line += fmt.Sprintf(" %10.1f MB/s", r.MBPerSec)
		}
		fmt.Println(line)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
