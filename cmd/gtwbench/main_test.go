package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchkit"
)

func TestCompareBenchFlagsOnlyRealRegressions(t *testing.T) {
	base := []benchkit.Result{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 100},
		{Name: "BenchmarkZeroBase", NsPerOp: 0},
	}
	cur := []benchkit.Result{
		{Name: "BenchmarkA", NsPerOp: 124},   // +24%: inside the 25% band
		{Name: "BenchmarkB", NsPerOp: 130},   // +30%: regression
		{Name: "BenchmarkNew", NsPerOp: 1e9}, // no baseline: skipped
	}
	got := compareBench(base, cur, 0.25)
	if len(got) != 1 {
		t.Fatalf("compareBench flagged %d regressions, want 1: %v", len(got), got)
	}
	if !strings.Contains(got[0], "BenchmarkB") || !strings.Contains(got[0], "+30%") {
		t.Errorf("regression line does not name BenchmarkB with +30%%: %s", got[0])
	}
}

func TestCompareBenchImprovementIsNotARegression(t *testing.T) {
	base := []benchkit.Result{{Name: "BenchmarkA", NsPerOp: 100}}
	cur := []benchkit.Result{{Name: "BenchmarkA", NsPerOp: 40}}
	if got := compareBench(base, cur, 0.25); len(got) != 0 {
		t.Errorf("improvement flagged as regression: %v", got)
	}
}

// readRatchet loads the best-ever file a test produced.
func readRatchet(t *testing.T, path string) map[string]float64 {
	t.Helper()
	rep, err := readBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, r := range rep.Results {
		out[r.Name] = r.NsPerOp
	}
	return out
}

// A missing ratchet file is seeded from the current run; later
// improvements rewrite the entries they beat and leave the others.
func TestRatchetSeedsAndAdvancesOnImprovement(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_best.json")
	first := []benchkit.Result{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 200},
	}
	if err := applyRatchet(path, first, 0.40); err != nil {
		t.Fatalf("seeding run failed: %v", err)
	}
	if got := readRatchet(t, path); got["BenchmarkA"] != 100 || got["BenchmarkB"] != 200 {
		t.Fatalf("seeded ratchet = %v", got)
	}
	// A improves, B within band, C is new.
	second := []benchkit.Result{
		{Name: "BenchmarkA", NsPerOp: 80},
		{Name: "BenchmarkB", NsPerOp: 210},
		{Name: "BenchmarkC", NsPerOp: 50},
	}
	if err := applyRatchet(path, second, 0.40); err != nil {
		t.Fatalf("improving run failed: %v", err)
	}
	got := readRatchet(t, path)
	if got["BenchmarkA"] != 80 {
		t.Errorf("BenchmarkA best-ever = %v, want advanced to 80", got["BenchmarkA"])
	}
	if got["BenchmarkB"] != 200 {
		t.Errorf("BenchmarkB best-ever = %v, want unchanged 200", got["BenchmarkB"])
	}
	if got["BenchmarkC"] != 50 {
		t.Errorf("BenchmarkC best-ever = %v, want adopted at 50", got["BenchmarkC"])
	}
}

// Slow cumulative drift: each step inside the single-step band, but the
// total past the ratchet limit, must fail against the best-ever file.
func TestRatchetCatchesCumulativeDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_best.json")
	if err := applyRatchet(path, []benchkit.Result{{Name: "BenchmarkA", NsPerOp: 100}}, 0.40); err != nil {
		t.Fatal(err)
	}
	// Two +20% steps: each would pass the 25% single-step -baseline
	// gate (vs the previous run), but the second is +44% past the
	// best-ever and must trip the ratchet.
	if err := applyRatchet(path, []benchkit.Result{{Name: "BenchmarkA", NsPerOp: 120}}, 0.40); err != nil {
		t.Fatalf("first +20%% step tripped the ratchet early: %v", err)
	}
	err := applyRatchet(path, []benchkit.Result{{Name: "BenchmarkA", NsPerOp: 144}}, 0.40)
	if err == nil {
		t.Fatal("cumulative drift past the ratchet limit not caught")
	}
	if !strings.Contains(err.Error(), "best-ever") {
		t.Errorf("ratchet error does not mention the best-ever baseline: %v", err)
	}
	// The drifted value must NOT overwrite the best-ever entry.
	if got := readRatchet(t, path); got["BenchmarkA"] != 100 {
		t.Errorf("drift overwrote the best-ever value: %v", got["BenchmarkA"])
	}
}
