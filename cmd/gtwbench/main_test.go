package main

import (
	"strings"
	"testing"

	"repro/internal/benchkit"
)

func TestCompareBenchFlagsOnlyRealRegressions(t *testing.T) {
	base := []benchkit.Result{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 100},
		{Name: "BenchmarkZeroBase", NsPerOp: 0},
	}
	cur := []benchkit.Result{
		{Name: "BenchmarkA", NsPerOp: 124},   // +24%: inside the 25% band
		{Name: "BenchmarkB", NsPerOp: 130},   // +30%: regression
		{Name: "BenchmarkNew", NsPerOp: 1e9}, // no baseline: skipped
	}
	got := compareBench(base, cur, 0.25)
	if len(got) != 1 {
		t.Fatalf("compareBench flagged %d regressions, want 1: %v", len(got), got)
	}
	if !strings.Contains(got[0], "BenchmarkB") || !strings.Contains(got[0], "+30%") {
		t.Errorf("regression line does not name BenchmarkB with +30%%: %s", got[0])
	}
}

func TestCompareBenchImprovementIsNotARegression(t *testing.T) {
	base := []benchkit.Result{{Name: "BenchmarkA", NsPerOp: 100}}
	cur := []benchkit.Result{{Name: "BenchmarkA", NsPerOp: 40}}
	if got := compareBench(base, cur, 0.25); len(got) != 0 {
		t.Errorf("improvement flagged as regression: %v", got)
	}
}
