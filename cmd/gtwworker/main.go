// Command gtwworker is the distributed-run worker: it pulls leases from
// a gtwd (or gtwrun -serve) coordinator, evaluates the leased grid
// points on its own simulation kernels, and streams each point's result
// back the moment it finishes, heartbeating while it computes. Any
// scenario can arrive — sweeps lease runs of their grid, one-shot
// applications lease their single wrapped point — and testbeds are
// cached per job (keyed by Config), so the leases of one sweep stop
// rebuilding the same topology.
//
// The worker's ID is sticky for the process lifetime (or across
// restarts when pinned with -id): the coordinator's per-worker
// throughput EWMA hangs off it, steering larger leases to workers that
// have proven fast — so a worker on beefier hardware automatically
// takes a larger share of the grid, WANify-style.
//
// Usage:
//
//	gtwworker -coordinator http://host:9191 [-id worker-a] [-poll 200ms]
//	          [-stream-window 0] [-stream-batch 16] [-token TOK]
//
// By default every finished point streams in its own upload. A
// -stream-window coalesces points finishing within the window into one
// upload body of at most -stream-batch points — fewer round trips on
// chatty sweeps, at the price of a slightly longer unstreamed tail if
// the worker dies between flushes (those points simply re-run
// elsewhere; reports stay byte-identical).
//
// Run as many as you like; killing one mid-lease only delays its
// points until the lease TTL expires and they are re-run elsewhere.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os/signal"
	"syscall"
	"time"

	_ "repro" // register every scenario

	"repro/internal/dist"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("gtwworker: ")
	coord := flag.String("coordinator", "http://127.0.0.1:9191", "coordinator base URL")
	id := flag.String("id", "", "sticky worker ID (default: random, kept for the process lifetime)")
	poll := flag.Duration("poll", 200*time.Millisecond,
		"idle-poll interval (the coordinator's register reply overrides it)")
	streamWindow := flag.Duration("stream-window", 0,
		"coalesce points finishing within this window into one stream upload (0 = one upload per point)")
	streamBatch := flag.Int("stream-batch", 16,
		"most points per coalesced stream upload (with -stream-window)")
	token := flag.String("token", "",
		"tenant token for a -tenants coordinator (sent as Authorization: Bearer)")
	flag.Parse()

	w := dist.NewWorker(*coord)
	w.Token = *token
	if *id != "" {
		w.ID = *id
	}
	w.Poll = *poll
	w.BatchWindow = *streamWindow
	w.BatchMax = *streamBatch
	w.Logf = log.Printf

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("worker %s serving %s", w.ID, *coord)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Fatal(err)
	}
	log.Printf("worker %s stopped", w.ID)
}
