// Command gtwvet is the repository's multichecker: it loads the module
// through the go toolchain and runs the three invariant analyzers —
// pointdeps, determinism, poolrelease (see internal/analysis) — over
// every main-module package.
//
// Usage:
//
//	gtwvet [flags] [packages]
//
//	gtwvet ./...                 check the whole module (the CI gate)
//	gtwvet -list                 print the analyzers and exit
//	gtwvet -pointdeps-report     print the declared-vs-derived PointDeps
//	                             audit for every registration as JSON
//	gtwvet -run pointdeps ./...  run a subset (comma-separated names)
//
// Exit status is 1 when any diagnostic survives suppression, 2 on a
// load or internal error. False positives are suppressed at the site
// with a mandatory reason:
//
//	//gtwvet:ignore <analyzer> <reason>
//
// on the flagged line or the line above it; unused or reason-less
// directives are themselves diagnosed, so suppressions cannot rot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/pointdeps"
	"repro/internal/analysis/poolrelease"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("gtwvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list      = fs.Bool("list", false, "print the analyzers and exit")
		only      = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		depReport = fs.Bool("pointdeps-report", false, "print the PointDeps declared-vs-derived audit as JSON and exit")
		dir       = fs.String("C", ".", "directory to resolve package patterns in")
		corePath  = fs.String("core", pointdeps.DefaultCorePath, "import path of the package declaring Options/NewSweep")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := []*analysis.Analyzer{
		pointdeps.New(pointdeps.Config{CorePath: *corePath}),
		determinism.New(),
		poolrelease.New(),
	}
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *depReport {
		entries, err := pointdeps.Audit(prog, pointdeps.Config{CorePath: *corePath})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(entries); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		return 0
	}

	analyzers := all
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		analyzers = analyzers[:0:0]
		for _, a := range all {
			if want[a.Name] {
				analyzers = append(analyzers, a)
			}
		}
		if len(analyzers) == 0 {
			fmt.Fprintf(stderr, "gtwvet: no analyzers match -run %q\n", *only)
			return 2
		}
	}

	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
