package main

import (
	"encoding/json"
	"strings"
	"testing"

	gtw "repro"
)

func TestListPrintsEveryRegisteredScenario(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, s := range gtw.Scenarios() {
		if !strings.Contains(out.String(), s.Name()) {
			t.Errorf("-list output missing scenario %q", s.Name())
		}
	}
}

func TestRunSingleScenario(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"table1-model"}, &out, &errOut); code != 0 {
		t.Fatalf("run(table1-model) = %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "=== table1-model") {
		t.Errorf("output missing scenario header:\n%s", got)
	}
	if !strings.Contains(got, "ran 1 scenario(s)") {
		t.Errorf("output missing run summary:\n%s", got)
	}
}

func TestUnknownScenarioFails(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"no-such-scenario"}, &out, &errOut)
	if code == 0 {
		t.Fatal("run(no-such-scenario) succeeded")
	}
	if !strings.Contains(errOut.String(), "no-such-scenario") {
		t.Errorf("stderr does not name the unknown scenario: %s", errOut.String())
	}
}

func TestNoArgsIsUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("run() = %d, want usage error 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Errorf("stderr missing usage line: %s", errOut.String())
	}
}

func TestBadWANFlagFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-wan", "oc768", "table1-model"}, &out, &errOut); code != 2 {
		t.Errorf("run(-wan oc768) = %d, want 2", code)
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "table1-model"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-json table1-model) = %d, stderr: %s", code, errOut.String())
	}
	line := strings.TrimSpace(out.String())
	var doc struct {
		Scenario  string          `json:"scenario"`
		ElapsedMs int64           `json:"elapsed_ms"`
		Report    json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, line)
	}
	if doc.Scenario != "table1-model" {
		t.Errorf("scenario = %q, want table1-model", doc.Scenario)
	}
	if len(doc.Report) == 0 {
		t.Error("empty report object")
	}
}

// A sweep scenario's -json envelope must carry the per-shard timings
// while the report object itself stays shard-count independent.
func TestJSONSweepEnvelopeCarriesShardTimings(t *testing.T) {
	runJSON := func(args ...string) (report string, points int) {
		t.Helper()
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, errOut.String())
		}
		line := strings.TrimSpace(out.String())
		var doc struct {
			Scenario string `json:"scenario"`
			Shards   []struct {
				Shard     int   `json:"shard"`
				Points    int   `json:"points"`
				ElapsedNS int64 `json:"elapsed_ns"`
			} `json:"shards"`
			Report json.RawMessage `json:"report"`
		}
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("-json output invalid: %v\n%s", err, line)
		}
		if len(doc.Shards) == 0 {
			t.Fatalf("sweep envelope has no shards array: %s", line)
		}
		for _, s := range doc.Shards {
			points += s.Points
		}
		return string(doc.Report), points
	}
	seqReport, seqPoints := runJSON("-json", "-shards", "1", "backbone-aggregate")
	shardReport, shardPoints := runJSON("-json", "-shards", "2", "backbone-aggregate")
	if seqPoints != 2 || shardPoints != 2 {
		t.Errorf("shard points = %d / %d, want 2 grid points covered", seqPoints, shardPoints)
	}
	if seqReport != shardReport {
		t.Errorf("report changed with shard count:\n%s\nvs\n%s", seqReport, shardReport)
	}
}

// -h prints usage and must exit 0 (flag.ErrHelp is not a parse error).
func TestHelpExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("run(-h) = %d, want 0; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "-list") {
		t.Errorf("-h did not print flag usage: %s", errOut.String())
	}
}
