package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	gtw "repro"

	"repro/internal/dist"
)

// -update regenerates the golden files:
//
//	go test ./cmd/gtwrun -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func TestListPrintsEveryRegisteredScenario(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, s := range gtw.Scenarios() {
		if !strings.Contains(out.String(), s.Name()) {
			t.Errorf("-list output missing scenario %q", s.Name())
		}
	}
}

func TestRunSingleScenario(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"table1-model"}, &out, &errOut); code != 0 {
		t.Fatalf("run(table1-model) = %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "=== table1-model") {
		t.Errorf("output missing scenario header:\n%s", got)
	}
	if !strings.Contains(got, "ran 1 scenario(s)") {
		t.Errorf("output missing run summary:\n%s", got)
	}
}

func TestUnknownScenarioFails(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"no-such-scenario"}, &out, &errOut)
	if code == 0 {
		t.Fatal("run(no-such-scenario) succeeded")
	}
	if !strings.Contains(errOut.String(), "no-such-scenario") {
		t.Errorf("stderr does not name the unknown scenario: %s", errOut.String())
	}
}

func TestNoArgsIsUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("run() = %d, want usage error 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Errorf("stderr missing usage line: %s", errOut.String())
	}
}

func TestBadWANFlagFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-wan", "oc768", "table1-model"}, &out, &errOut); code != 2 {
		t.Errorf("run(-wan oc768) = %d, want 2", code)
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "table1-model"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-json table1-model) = %d, stderr: %s", code, errOut.String())
	}
	line := strings.TrimSpace(out.String())
	var doc struct {
		Scenario  string          `json:"scenario"`
		ElapsedMs int64           `json:"elapsed_ms"`
		Report    json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, line)
	}
	if doc.Scenario != "table1-model" {
		t.Errorf("scenario = %q, want table1-model", doc.Scenario)
	}
	if len(doc.Report) == 0 {
		t.Error("empty report object")
	}
}

// A sweep scenario's -json envelope must carry the per-shard timings
// while the report object itself stays shard-count independent.
func TestJSONSweepEnvelopeCarriesShardTimings(t *testing.T) {
	runJSON := func(args ...string) (report string, points int) {
		t.Helper()
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, errOut.String())
		}
		line := strings.TrimSpace(out.String())
		var doc struct {
			Scenario string `json:"scenario"`
			Shards   []struct {
				Shard     int   `json:"shard"`
				Points    int   `json:"points"`
				ElapsedNS int64 `json:"elapsed_ns"`
			} `json:"shards"`
			Report json.RawMessage `json:"report"`
		}
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("-json output invalid: %v\n%s", err, line)
		}
		if len(doc.Shards) == 0 {
			t.Fatalf("sweep envelope has no shards array: %s", line)
		}
		for _, s := range doc.Shards {
			points += s.Points
		}
		return string(doc.Report), points
	}
	seqReport, seqPoints := runJSON("-json", "-shards", "1", "backbone-aggregate")
	shardReport, shardPoints := runJSON("-json", "-shards", "2", "backbone-aggregate")
	if seqPoints != 2 || shardPoints != 2 {
		t.Errorf("shard points = %d / %d, want 2 grid points covered", seqPoints, shardPoints)
	}
	if seqReport != shardReport {
		t.Errorf("report changed with shard count:\n%s\nvs\n%s", seqReport, shardReport)
	}
}

// The -json envelope schema — including the workers and shards fields
// added with the distributed run service — is pinned by a golden file,
// so it cannot drift silently: clients parse these envelopes. Volatile
// values (wall-clock timings) are normalized; everything else,
// including the report bytes, must match testdata/envelope.golden
// byte for byte. Regenerate deliberately with -update.
func TestJSONEnvelopeGolden(t *testing.T) {
	var out, errOut strings.Builder
	// One shard pins the per-shard point assignment (with several, the
	// work-stealing split is a wall-clock race); the envelope schema
	// and report bytes are identical at any shard count.
	args := []string{"-json", "-shards", "1", "backbone-aggregate"}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("run(%v) = %d, stderr: %s", args, code, errOut.String())
	}
	var env map[string]any
	line := strings.TrimSpace(out.String())
	if err := json.Unmarshal([]byte(line), &env); err != nil {
		t.Fatalf("envelope is not valid JSON: %v\n%s", err, line)
	}
	// Normalize wall-clock values; everything else is deterministic.
	env["elapsed_ms"] = 0
	if shards, ok := env["shards"].([]any); ok {
		for _, s := range shards {
			s.(map[string]any)["elapsed_ns"] = 0
		}
	}
	got, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "envelope.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-json envelope drifted from %s (regenerate deliberately with -update):\n--- got\n%s--- want\n%s",
			golden, got, want)
	}
}

// -connect must print the same report a local run produces: the
// coordinator round-trip (job queue, lease dispatch, JSON transport)
// may not change a single report byte.
func TestConnectMatchesLocalRun(t *testing.T) {
	c := dist.New(dist.Config{LocalShards: 2, Logf: t.Logf})
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	parseEnvelope := func(args ...string) jsonEnvelope {
		t.Helper()
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, errOut.String())
		}
		var env jsonEnvelope
		if err := json.Unmarshal([]byte(strings.TrimSpace(out.String())), &env); err != nil {
			t.Fatalf("invalid envelope: %v", err)
		}
		return env
	}
	local := parseEnvelope("-json", "-shards", "1", "backbone-aggregate")
	remote := parseEnvelope("-json", "-connect", srv.URL, "backbone-aggregate")
	if !bytes.Equal(local.Report, remote.Report) {
		t.Errorf("-connect report differs from local run:\n%s\nvs\n%s", remote.Report, local.Report)
	}
	if remote.Workers < 1 || len(remote.Shards) == 0 {
		t.Errorf("-connect envelope missing execution metadata: workers=%d shards=%v",
			remote.Workers, remote.Shards)
	}
	// A second -connect run is served from the coordinator's
	// content-addressed point store — every grid point hits — and is
	// still byte-identical.
	again := parseEnvelope("-json", "-connect", srv.URL, "backbone-aggregate")
	if !bytes.Equal(local.Report, again.Report) {
		t.Error("cached -connect report differs from local run")
	}
	if !again.Cached || again.PointHits == 0 {
		t.Errorf("second -connect run not served from the point store: cached=%v point_hits=%d",
			again.Cached, again.PointHits)
	}
}

// A coordinator-side job failure must surface the coordinator's failure
// text and the job's progress — not just an HTTP status — and exit
// non-zero; with -json the failure lands on stdout as an error
// envelope, so scripted consumers see it too.
func TestConnectSurfacesJobFailureText(t *testing.T) {
	gtw.MustRegister(gtw.NewSweep("gtwrun-fail-sweep", "always fails at point 1",
		[]gtw.Axis{{Name: "i", Values: []any{0, 1, 2}}},
		func(ctx context.Context, tb *gtw.Testbed, opts gtw.Options, pt gtw.Point) (any, error) {
			if pt.Index == 1 {
				return nil, fmt.Errorf("synthetic point failure")
			}
			return gtw.Figure1Row{Path: "ok"}, nil
		},
		func(opts gtw.Options, results []any) (gtw.Report, error) {
			return &gtw.Figure1Report{}, nil
		}).NoShardTestbed().WirePoint(gtw.Figure1Row{}))

	c := dist.New(dist.Config{LocalShards: 1, Logf: t.Logf})
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var out, errOut strings.Builder
	if code := run([]string{"-connect", srv.URL, "gtwrun-fail-sweep"}, &out, &errOut); code != 1 {
		t.Fatalf("run(-connect failing job) = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "synthetic point failure") {
		t.Errorf("stderr does not surface the coordinator-side failure text: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "points done") {
		t.Errorf("stderr does not surface the job's progress: %s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-json", "-connect", srv.URL, "gtwrun-fail-sweep"}, &out, &errOut); code != 1 {
		t.Fatalf("run(-json -connect failing job) = %d, want 1", code)
	}
	var env jsonEnvelope
	if err := json.Unmarshal([]byte(strings.TrimSpace(out.String())), &env); err != nil {
		t.Fatalf("no error envelope on stdout: %v\n%s", err, out.String())
	}
	if env.Error == "" || !strings.Contains(env.Error, "synthetic point failure") {
		t.Errorf("error envelope missing failure text: %+v", env)
	}
	if len(env.Report) != 0 {
		t.Errorf("error envelope carries a report: %s", env.Report)
	}
}

// An unreachable coordinator is a failure with the transport error in
// the text, not a silent success.
func TestConnectUnreachableCoordinatorFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-connect", "http://127.0.0.1:1", "table1-model"}, &out, &errOut); code != 1 {
		t.Errorf("run(-connect unreachable) = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "FAILED") {
		t.Errorf("stderr missing failure line: %s", errOut.String())
	}
}

// The -connect envelope schema — including the point_hits and cached
// fields of the content-addressed point store — pinned by its own
// golden file. A job is submitted twice: the second is served entirely
// from the store, so its envelope is deterministic (volatile timings
// normalized). Regenerate deliberately with -update.
func TestConnectJSONEnvelopeGolden(t *testing.T) {
	c := dist.New(dist.Config{LocalShards: 1, Logf: t.Logf})
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	runConnectJSON := func() string {
		t.Helper()
		var out, errOut strings.Builder
		args := []string{"-json", "-connect", srv.URL, "backbone-aggregate"}
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, errOut.String())
		}
		return strings.TrimSpace(out.String())
	}
	runConnectJSON() // warm the point store
	line := runConnectJSON()
	var env map[string]any
	if err := json.Unmarshal([]byte(line), &env); err != nil {
		t.Fatalf("envelope is not valid JSON: %v\n%s", err, line)
	}
	env["elapsed_ms"] = 0
	if shards, ok := env["shards"].([]any); ok {
		for _, s := range shards {
			s.(map[string]any)["elapsed_ns"] = 0
		}
	}
	got, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "envelope_connect.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-connect envelope drifted from %s (regenerate deliberately with -update):\n--- got\n%s--- want\n%s",
			golden, got, want)
	}
}

// -shared cannot travel to a remote coordinator (the shared testbed is
// this process's memory, and silently dropping it would change report
// content), so combining it with -connect is a usage error.
func TestConnectRejectsShared(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-connect", "http://127.0.0.1:1", "-shared", "table1-model"}, &out, &errOut); code != 2 {
		t.Errorf("run(-connect -shared) = %d, want usage error 2", code)
	}
	if !strings.Contains(errOut.String(), "-shared") {
		t.Errorf("stderr does not explain the -shared conflict: %s", errOut.String())
	}
}

// -h prints usage and must exit 0 (flag.ErrHelp is not a parse error).
func TestHelpExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("run(-h) = %d, want 0; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "-list") {
		t.Errorf("-h did not print flag usage: %s", errOut.String())
	}
}
