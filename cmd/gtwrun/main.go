// Command gtwrun lists and runs any registered scenario through the
// unified run engine — the generic replacement for per-experiment
// plumbing in the older commands.
//
// Usage:
//
//	gtwrun -list
//	gtwrun [flags] all
//	gtwrun [flags] scenario [scenario ...]
//
// Flags:
//
//	-wan oc12|oc48   backbone generation for engine-built testbeds
//	-extensions      include the section-5 extension sites
//	-pes N           T3E partition size (fMRI scenarios)
//	-frames N        volumes/frames/scans to acquire
//	-flows N         concurrent backbone flows
//	-workers N       engine worker pool size
//	-shared          run every scenario on ONE shared, contended testbed
//	-json            print each report as JSON instead of text
//	-timeout D       cancel the whole run after D (e.g. 30s)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	gtw "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gtwrun: ")
	def := gtw.DefaultOptions()
	defWAN := "oc48"
	if def.WAN == gtw.OC12 {
		defWAN = "oc12"
	}
	list := flag.Bool("list", false, "list registered scenarios and exit")
	wan := flag.String("wan", defWAN,
		"backbone generation for engine-built testbeds: oc12 or oc48 (carrier-sweep scenarios ignore it)")
	ext := flag.Bool("extensions", false, "include the section-5 extension sites")
	pes := flag.Int("pes", def.PEs, "T3E partition size")
	frames := flag.Int("frames", def.Frames, "volumes/frames/scans to acquire")
	flows := flag.Int("flows", def.Flows, "concurrent backbone flows")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	shared := flag.Bool("shared", false,
		"run scenarios on one shared testbed (scenarios that drive their own simulation kernel still run privately)")
	asJSON := flag.Bool("json", false, "print each report as JSON instead of text")
	timeout := flag.Duration("timeout", 0, "cancel the whole run after this duration (0 = none)")
	flag.Parse()

	if *list {
		for _, s := range gtw.Scenarios() {
			fmt.Printf("  %-24s %s\n", s.Name(), s.Description())
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: gtwrun [-list] [flags] all|scenario...")
		os.Exit(2)
	}
	var names []string // nil = every registered scenario
	if !(len(args) == 1 && args[0] == "all") {
		names = args
	}

	opts := []gtw.Option{
		gtw.WithPEs(*pes),
		gtw.WithFrames(*frames),
		gtw.WithFlows(*flows),
		gtw.WithWorkers(*workers),
	}
	if *ext {
		opts = append(opts, gtw.WithExtensions())
	}
	var oc gtw.OC
	switch *wan {
	case "oc12":
		oc = gtw.OC12
	case "oc48":
		oc = gtw.OC48
	default:
		log.Fatalf("unknown -wan %q (want oc12 or oc48)", *wan)
	}
	opts = append(opts, gtw.WithWAN(oc))
	if *shared {
		opts = append(opts, gtw.WithTestbed(gtw.NewTestbed(gtw.Config{WAN: oc, Extensions: *ext})))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	results, err := gtw.RunAll(ctx, names, opts...)
	if err != nil && len(results) == 0 {
		log.Fatal(err)
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "%-24s FAILED after %s: %v\n",
				r.Name, r.Elapsed.Round(time.Millisecond), r.Err)
			continue
		}
		if *asJSON {
			b, jerr := r.Report.JSON()
			if jerr != nil {
				failed++
				fmt.Fprintf(os.Stderr, "%-24s marshal: %v\n", r.Name, jerr)
				continue
			}
			fmt.Printf("{\"scenario\":%q,\"elapsed_ms\":%d,\"report\":%s}\n",
				r.Name, r.Elapsed.Milliseconds(), b)
		} else {
			fmt.Printf("=== %s (%s)\n", r.Name, r.Elapsed.Round(time.Millisecond))
			fmt.Print(r.Report.Text())
			fmt.Println()
		}
	}
	if !*asJSON {
		fmt.Printf("ran %d scenario(s) in %s, %d failed\n",
			len(results), time.Since(start).Round(time.Millisecond), failed)
	}
	if failed > 0 || err != nil {
		os.Exit(1)
	}
}
