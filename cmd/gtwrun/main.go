// Command gtwrun lists and runs any registered scenario through the
// unified run engine — the generic replacement for per-experiment
// plumbing in the older commands.
//
// Usage:
//
//	gtwrun -list
//	gtwrun [flags] all
//	gtwrun [flags] scenario [scenario ...]
//
// Flags:
//
//	-wan oc12|oc48   backbone generation for engine-built testbeds
//	-extensions      include the section-5 extension sites
//	-pes N           T3E partition size (fMRI scenarios)
//	-frames N        volumes/frames/scans to acquire
//	-flows N         concurrent backbone flows
//	-workers N       engine worker pool size
//	-shards N        shards per sweep scenario (0 = GOMAXPROCS)
//	-kernels N       PDES kernels per testbed network (0/1 = single)
//	-shared          run every scenario on ONE shared, contended testbed
//	-contiguous      use PR 3's static contiguous batch dispatch for sweeps
//	-json            print each report as JSON instead of text
//	-timeout D       cancel the whole run after D (e.g. 30s)
//	-serve ADDR      run a distributed-run coordinator instead (see gtwd)
//	-connect URL     run scenarios through a remote coordinator
//	-token TOK       tenant token for a -tenants coordinator (with -connect)
//
// Sweep scenarios (figure1-throughput, backbone-aggregate,
// mixed-traffic, fmri-pe-sweep) lease their parameter grid to -shards
// kernels through a work-stealing queue; with -json their envelope
// carries the participant count and per-shard timings. Neither
// sharding nor distribution ever changes the report itself.
//
// Distributed mode: -serve ADDR turns gtwrun into a coordinator
// (gtwd's engine inside gtwrun); -connect URL submits the named
// scenarios to such a coordinator — with its job queue and result
// cache — and prints the reports exactly as a local run would.
// Connected runs follow each job over the coordinator's /v1/events
// stream (no polling traffic while the job runs) and fall back to
// plain status polling automatically if the stream dies mid-job.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	gtw "repro"

	"repro/internal/dist"
)

// jsonEnvelope is the -json output schema, one object per scenario.
// The golden tests (testdata/envelope.golden, envelope_connect.golden)
// pin it: the report stays byte-identical whatever the shard/worker
// count or cache path, and the envelope carries the execution metadata
// around it.
type jsonEnvelope struct {
	Scenario  string `json:"scenario"`
	ElapsedMS int64  `json:"elapsed_ms"`
	// Workers counts the participants (in-process shards or remote
	// workers) that evaluated at least one grid point; 0 for non-sweep
	// scenarios and for fully cache-served jobs.
	Workers int               `json:"workers,omitempty"`
	Shards  []gtw.ShardTiming `json:"shards,omitempty"`
	// PointHits counts grid points served from the coordinator's
	// content-addressed point store (-connect runs only); Cached marks
	// a job every one of whose points was a hit.
	PointHits int  `json:"point_hits,omitempty"`
	Cached    bool `json:"cached,omitempty"`
	// Error carries the failure text when the scenario failed; the
	// envelope then has no report.
	Error  string          `json:"error,omitempty"`
	Report json.RawMessage `json:"report,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses args, drives the engine
// and reports the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gtwrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := gtw.DefaultOptions()
	defWAN := "oc48"
	if def.WAN == gtw.OC12 {
		defWAN = "oc12"
	}
	list := fs.Bool("list", false, "list registered scenarios and exit")
	wan := fs.String("wan", defWAN,
		"backbone generation for engine-built testbeds: oc12 or oc48 (carrier-sweep scenarios ignore it)")
	ext := fs.Bool("extensions", false, "include the section-5 extension sites")
	pes := fs.Int("pes", def.PEs, "T3E partition size")
	frames := fs.Int("frames", def.Frames, "volumes/frames/scans to acquire")
	flows := fs.Int("flows", def.Flows, "concurrent backbone flows")
	workers := fs.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "shards per sweep scenario (0 = GOMAXPROCS; reports are shard-count independent)")
	kernels := fs.Int("kernels", 0,
		"PDES kernels per testbed network (0/1 = single kernel; reports are kernel-count independent)")
	intra := fs.Bool("intra", false,
		"let -kernels partitioning cut inside a site at switch boundaries when the WAN cut alone cannot reach the requested count")
	shared := fs.Bool("shared", false,
		"run scenarios on one shared testbed (scenarios that drive their own simulation kernel still run privately)")
	contiguous := fs.Bool("contiguous", false,
		"dispatch sweep grids as static contiguous batches instead of work-stealing leases (perf comparison)")
	asJSON := fs.Bool("json", false, "print each report as JSON instead of text")
	timeout := fs.Duration("timeout", 0, "cancel the whole run after this duration (0 = none)")
	serve := fs.String("serve", "",
		"listen address: serve as a distributed-run coordinator instead of running scenarios (see also cmd/gtwd)")
	connect := fs.String("connect", "",
		"coordinator URL: run the named scenarios through a remote coordinator instead of in-process")
	token := fs.String("token", "",
		"tenant token for a -tenants coordinator (with -connect; sent as Authorization: Bearer)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, s := range gtw.Scenarios() {
			fmt.Fprintf(stdout, "  %-24s %s\n", s.Name(), s.Description())
		}
		return 0
	}

	if *serve != "" {
		return runServe(*serve, stderr)
	}

	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(stderr, "usage: gtwrun [-list] [flags] all|scenario...")
		return 2
	}
	var names []string // nil = every registered scenario
	if !(len(rest) == 1 && rest[0] == "all") {
		names = rest
		// Reject unknown names up front with a usable message instead
		// of a per-result failure line.
		for _, name := range names {
			if _, ok := gtw.Lookup(name); !ok {
				fmt.Fprintf(stderr, "gtwrun: unknown scenario %q (try -list)\n", name)
				return 2
			}
		}
	}

	opts := []gtw.Option{
		gtw.WithPEs(*pes),
		gtw.WithFrames(*frames),
		gtw.WithFlows(*flows),
		gtw.WithWorkers(*workers),
		gtw.WithShards(*shards),
		gtw.WithKernels(*kernels),
	}
	if *ext {
		opts = append(opts, gtw.WithExtensions())
	}
	if *intra {
		opts = append(opts, gtw.WithIntra())
	}
	var oc gtw.OC
	switch *wan {
	case "oc12":
		oc = gtw.OC12
	case "oc48":
		oc = gtw.OC48
	default:
		fmt.Fprintf(stderr, "gtwrun: unknown -wan %q (want oc12 or oc48)\n", *wan)
		return 2
	}
	opts = append(opts, gtw.WithWAN(oc))
	if *contiguous {
		opts = append(opts, gtw.WithDispatcher(gtw.NewContiguousDispatcher))
	}
	if *shared {
		opts = append(opts, gtw.WithTestbed(gtw.NewTestbed(gtw.Config{WAN: oc, Extensions: *ext, Kernels: *kernels, Intra: *intra})))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *connect != "" {
		// Options that never reach the wire split two ways: -shards,
		// -workers, -kernels and -contiguous only change wall-clock
		// time and may
		// be dropped silently, but -shared changes report content (the
		// testbed is this process's memory) — dropping it would hand
		// back a different report than the one asked for.
		if *shared {
			fmt.Fprintln(stderr, "gtwrun: -shared cannot be combined with -connect (a shared testbed cannot cross the wire)")
			return 2
		}
		return runConnect(ctx, *connect, *token, names, gtw.NewOptions(opts...), *asJSON, stdout, stderr)
	}

	start := time.Now()
	results, err := gtw.RunAll(ctx, names, opts...)
	if err != nil && len(results) == 0 {
		fmt.Fprintf(stderr, "gtwrun: %v\n", err)
		return 1
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(stderr, "%-24s FAILED after %s: %v\n",
				r.Name, r.Elapsed.Round(time.Millisecond), r.Err)
			continue
		}
		if *asJSON {
			b, jerr := r.Report.JSON()
			if jerr != nil {
				failed++
				fmt.Fprintf(stderr, "%-24s marshal: %v\n", r.Name, jerr)
				continue
			}
			// Sweep scenarios carry their participant count and
			// per-shard timings in the envelope (never in the report,
			// which stays byte-identical to a sequential run).
			env := jsonEnvelope{Scenario: r.Name, ElapsedMS: r.Elapsed.Milliseconds(), Report: b}
			if sr, ok := r.Report.(gtw.ShardedReport); ok {
				env.Shards = sr.ShardTimings()
				env.Workers = gtw.CountWorkers(env.Shards)
			}
			printEnvelope(stdout, stderr, env)
		} else {
			fmt.Fprintf(stdout, "=== %s (%s)\n", r.Name, r.Elapsed.Round(time.Millisecond))
			fmt.Fprint(stdout, r.Report.Text())
			fmt.Fprintln(stdout)
		}
	}
	if !*asJSON {
		fmt.Fprintf(stdout, "ran %d scenario(s) in %s, %d failed\n",
			len(results), time.Since(start).Round(time.Millisecond), failed)
		if *kernels > 1 {
			printPDES(stdout)
		}
	}
	if failed > 0 || err != nil {
		return 1
	}
	return 0
}

// printPDES summarizes the PDES synchronization cost of a -kernels run:
// rounds, null messages, and how the fired events split across kernels
// (the load-balance picture). Execution metadata only — never part of a
// report.
func printPDES(stdout io.Writer) {
	pd := gtw.PDESSnapshot()
	if pd.Rounds == 0 {
		return
	}
	fmt.Fprintf(stdout, "pdes: %d rounds, %d null msgs; events per kernel", pd.Rounds, pd.NullMessages)
	for i, v := range pd.KernelEvents {
		fmt.Fprintf(stdout, " %d:%d", i, v)
	}
	fmt.Fprintln(stdout)
}

// printEnvelope writes one -json line.
func printEnvelope(stdout, stderr io.Writer, env jsonEnvelope) {
	b, err := json.Marshal(env)
	if err != nil {
		fmt.Fprintf(stderr, "%-24s marshal: %v\n", env.Scenario, err)
		return
	}
	fmt.Fprintln(stdout, string(b))
}

// runServe turns gtwrun into a distributed-run coordinator — gtwd's
// engine with gtwrun's defaults. Blocks until the process is killed.
func runServe(addr string, stderr io.Writer) int {
	logger := log.New(stderr, "gtwrun: ", log.LstdFlags)
	c := dist.New(dist.Config{Logf: logger.Printf})
	defer c.Close()
	logger.Printf("coordinator listening on %s (gtwd defaults; run gtwd for tuning flags)", addr)
	if err := http.ListenAndServe(addr, c.Handler()); err != nil {
		fmt.Fprintf(stderr, "gtwrun: -serve %s: %v\n", addr, err)
		return 1
	}
	return 0
}

// runConnect submits the named scenarios to a remote coordinator and
// prints the reports exactly as a local run would: same text layout,
// same -json envelope (the report bytes are byte-identical to a local
// run by the dispatch-invariance guarantee).
//
// Failures surface the coordinator's view, not just a transport status:
// a failed job prints its failure text and how far it got
// (points done/total); a submit-or-poll error after the job was
// accepted re-polls the coordinator for its last known state; and a
// "done" job without a report counts as failed. Every failure path
// exits non-zero, and with -json emits an error envelope so scripted
// consumers see the failure on stdout too.
func runConnect(ctx context.Context, url, token string, names []string, o gtw.Options,
	asJSON bool, stdout, stderr io.Writer) int {
	if len(names) == 0 {
		for _, s := range gtw.Scenarios() {
			names = append(names, s.Name())
		}
	}
	cl := &dist.Client{Base: url, Token: token}
	start := time.Now()
	failed := 0
	fail := func(name, msg string) {
		failed++
		if asJSON {
			printEnvelope(stdout, stderr, jsonEnvelope{Scenario: name, Error: msg})
		}
		fmt.Fprintf(stderr, "%-24s FAILED: %s\n", name, msg)
	}
	for _, name := range names {
		st, err := cl.Submit(ctx, dist.JobRequest{Scenario: name, Opts: dist.FromOptions(o)})
		jobID := ""
		if err == nil {
			jobID = st.ID
			if st.Status != dist.JobDone && st.Status != dist.JobFailed {
				// Follow the job over the event stream; if the stream dies
				// mid-job WaitStream degrades to plain polling on its own.
				st, err = cl.WaitStream(ctx, st.ID, func(cause error) {
					fmt.Fprintf(stderr, "gtwrun: event stream lost (%v); polling %s\n", cause, jobID)
				})
			}
		}
		if err != nil {
			msg := err.Error()
			// The job may still exist (and even still run) on the
			// coordinator: surface its last known state and progress
			// instead of only the transport error.
			if jobID != "" {
				if last := lastStatus(cl, jobID); last != nil {
					msg = fmt.Sprintf("%v (coordinator: job %s %s, %d/%d points done)",
						err, last.ID, last.Status, last.PointsDone, last.PointsTotal)
				}
			}
			fail(name, msg)
			continue
		}
		if st.Status != dist.JobDone {
			msg := st.Error
			if msg == "" {
				msg = "job " + st.Status
			}
			if st.PointsTotal > 0 {
				msg = fmt.Sprintf("%s (%d/%d points done)", msg, st.PointsDone, st.PointsTotal)
			}
			fail(name, fmt.Sprintf("after %s: %s",
				(time.Duration(st.ElapsedMS)*time.Millisecond).Round(time.Millisecond), msg))
			continue
		}
		if len(st.Report) == 0 {
			fail(name, fmt.Sprintf("job %s done but the coordinator returned no report", st.ID))
			continue
		}
		if asJSON {
			printEnvelope(stdout, stderr, jsonEnvelope{
				Scenario: name, ElapsedMS: st.ElapsedMS,
				Workers: st.Workers, Shards: st.Shards,
				PointHits: st.PointHits, Cached: st.Cached,
				Report: st.Report,
			})
		} else {
			cached := ""
			switch {
			case st.Cached:
				cached = ", cached"
			case st.PointHits > 0:
				cached = fmt.Sprintf(", %d/%d points cached", st.PointHits, st.PointsTotal)
			}
			fmt.Fprintf(stdout, "=== %s (%s via %s%s)\n", name,
				(time.Duration(st.ElapsedMS) * time.Millisecond).Round(time.Millisecond), url, cached)
			fmt.Fprint(stdout, st.Text)
			fmt.Fprintln(stdout)
		}
	}
	if !asJSON {
		fmt.Fprintf(stdout, "ran %d scenario(s) in %s via %s, %d failed\n",
			len(names), time.Since(start).Round(time.Millisecond), url, failed)
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// lastStatus fetches a job's status on a fresh short-lived context, for
// error paths where the caller's context is already dead (timeout) or
// the poll just failed transiently. Nil when the coordinator cannot be
// asked.
func lastStatus(cl *dist.Client, jobID string) *dist.JobStatus {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	st, err := cl.Job(ctx, jobID)
	if err != nil {
		return nil
	}
	return st
}
