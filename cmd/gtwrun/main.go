// Command gtwrun lists and runs any registered scenario through the
// unified run engine — the generic replacement for per-experiment
// plumbing in the older commands.
//
// Usage:
//
//	gtwrun -list
//	gtwrun [flags] all
//	gtwrun [flags] scenario [scenario ...]
//
// Flags:
//
//	-wan oc12|oc48   backbone generation for engine-built testbeds
//	-extensions      include the section-5 extension sites
//	-pes N           T3E partition size (fMRI scenarios)
//	-frames N        volumes/frames/scans to acquire
//	-flows N         concurrent backbone flows
//	-workers N       engine worker pool size
//	-shards N        shards per sweep scenario (0 = GOMAXPROCS)
//	-shared          run every scenario on ONE shared, contended testbed
//	-json            print each report as JSON instead of text
//	-timeout D       cancel the whole run after D (e.g. 30s)
//
// Sweep scenarios (figure1-throughput, backbone-aggregate,
// mixed-traffic, fmri-pe-sweep) split their parameter grid across
// -shards kernels; with -json their envelope carries the per-shard
// timings. Sharding never changes the report itself.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	gtw "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses args, drives the engine
// and reports the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gtwrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := gtw.DefaultOptions()
	defWAN := "oc48"
	if def.WAN == gtw.OC12 {
		defWAN = "oc12"
	}
	list := fs.Bool("list", false, "list registered scenarios and exit")
	wan := fs.String("wan", defWAN,
		"backbone generation for engine-built testbeds: oc12 or oc48 (carrier-sweep scenarios ignore it)")
	ext := fs.Bool("extensions", false, "include the section-5 extension sites")
	pes := fs.Int("pes", def.PEs, "T3E partition size")
	frames := fs.Int("frames", def.Frames, "volumes/frames/scans to acquire")
	flows := fs.Int("flows", def.Flows, "concurrent backbone flows")
	workers := fs.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "shards per sweep scenario (0 = GOMAXPROCS; reports are shard-count independent)")
	shared := fs.Bool("shared", false,
		"run scenarios on one shared testbed (scenarios that drive their own simulation kernel still run privately)")
	asJSON := fs.Bool("json", false, "print each report as JSON instead of text")
	timeout := fs.Duration("timeout", 0, "cancel the whole run after this duration (0 = none)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, s := range gtw.Scenarios() {
			fmt.Fprintf(stdout, "  %-24s %s\n", s.Name(), s.Description())
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(stderr, "usage: gtwrun [-list] [flags] all|scenario...")
		return 2
	}
	var names []string // nil = every registered scenario
	if !(len(rest) == 1 && rest[0] == "all") {
		names = rest
		// Reject unknown names up front with a usable message instead
		// of a per-result failure line.
		for _, name := range names {
			if _, ok := gtw.Lookup(name); !ok {
				fmt.Fprintf(stderr, "gtwrun: unknown scenario %q (try -list)\n", name)
				return 2
			}
		}
	}

	opts := []gtw.Option{
		gtw.WithPEs(*pes),
		gtw.WithFrames(*frames),
		gtw.WithFlows(*flows),
		gtw.WithWorkers(*workers),
		gtw.WithShards(*shards),
	}
	if *ext {
		opts = append(opts, gtw.WithExtensions())
	}
	var oc gtw.OC
	switch *wan {
	case "oc12":
		oc = gtw.OC12
	case "oc48":
		oc = gtw.OC48
	default:
		fmt.Fprintf(stderr, "gtwrun: unknown -wan %q (want oc12 or oc48)\n", *wan)
		return 2
	}
	opts = append(opts, gtw.WithWAN(oc))
	if *shared {
		opts = append(opts, gtw.WithTestbed(gtw.NewTestbed(gtw.Config{WAN: oc, Extensions: *ext})))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	results, err := gtw.RunAll(ctx, names, opts...)
	if err != nil && len(results) == 0 {
		fmt.Fprintf(stderr, "gtwrun: %v\n", err)
		return 1
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(stderr, "%-24s FAILED after %s: %v\n",
				r.Name, r.Elapsed.Round(time.Millisecond), r.Err)
			continue
		}
		if *asJSON {
			b, jerr := r.Report.JSON()
			if jerr != nil {
				failed++
				fmt.Fprintf(stderr, "%-24s marshal: %v\n", r.Name, jerr)
				continue
			}
			// Sweep scenarios carry their per-shard timings in the
			// envelope (never in the report, which stays byte-identical
			// to a sequential run).
			if sr, ok := r.Report.(gtw.ShardedReport); ok {
				sb, serr := json.Marshal(sr.ShardTimings())
				if serr == nil {
					fmt.Fprintf(stdout, "{\"scenario\":%q,\"elapsed_ms\":%d,\"shards\":%s,\"report\":%s}\n",
						r.Name, r.Elapsed.Milliseconds(), sb, b)
					continue
				}
			}
			fmt.Fprintf(stdout, "{\"scenario\":%q,\"elapsed_ms\":%d,\"report\":%s}\n",
				r.Name, r.Elapsed.Milliseconds(), b)
		} else {
			fmt.Fprintf(stdout, "=== %s (%s)\n", r.Name, r.Elapsed.Round(time.Millisecond))
			fmt.Fprint(stdout, r.Report.Text())
			fmt.Fprintln(stdout)
		}
	}
	if !*asJSON {
		fmt.Fprintf(stdout, "ran %d scenario(s) in %s, %d failed\n",
			len(results), time.Since(start).Round(time.Millisecond), failed)
	}
	if failed > 0 || err != nil {
		return 1
	}
	return 0
}
