// Command firesim runs a complete realtime-fMRI session: a synthetic
// scanner streams volumes to an RT-server, the RT-client pulls and
// analyses them (correlation against the reference vector), and the
// final overlay is written as a PNG — the figure-3 display.
//
// Usage:
//
//	firesim [-scans 48] [-noise 3] [-clip 0.5] [-out overlay.png]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"repro/internal/fire"
	"repro/internal/mri"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("firesim: ")
	scans := flag.Int("scans", 48, "number of scans in the measurement")
	noise := flag.Float64("noise", 3, "scanner noise std dev")
	clip := flag.Float64("clip", 0.5, "overlay clip level")
	out := flag.String("out", "overlay.png", "output PNG path")
	flag.Parse()

	// Phantom with two activation sites with different hemodynamics.
	acts := []mri.Activation{
		{CX: 32, CY: 28, CZ: 8, Radius: 5, Amplitude: 0.05, HRF: mri.DefaultHRF},
		{CX: 20, CY: 40, CZ: 10, Radius: 4, Amplitude: 0.04, HRF: mri.HRF{Delay: 8, Dispersion: 1.5}},
	}
	ph := mri.NewPhantom(64, 64, 16, acts)
	sc := mri.NewScanner(ph, mri.ScanConfig{
		NX: 64, NY: 64, NZ: 16, TR: 2, NScans: *scans,
		NoiseStd: *noise, DriftPerScan: 0.3, Seed: 7,
	})
	srv := &fire.RTServer{Scanner: sc}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go func() {
		if _, err := srv.ListenAndServe(l); err != nil {
			log.Fatalf("RT-server: %v", err)
		}
	}()

	client, err := fire.DialRT(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	corr := fire.NewCorrelator(sc.Reference(0), 64, 64, 16)
	frames := 0
	for {
		msg, err := client.NextImage()
		if err != nil {
			log.Fatal(err)
		}
		if msg.Type == fire.MsgDone {
			break
		}
		if err := corr.Add(msg.Image); err != nil {
			log.Fatal(err)
		}
		frames++
		if frames%8 == 0 {
			m, err := corr.Map()
			if err == nil {
				n := 0
				for _, v := range m.Data {
					if float64(v) >= *clip {
						n++
					}
				}
				fmt.Printf("scan %2d: %d voxels above clip %.2f\n", frames, n, *clip)
			}
		}
	}
	m, err := corr.Map()
	if err != nil {
		log.Fatal(err)
	}
	img, err := viz.RenderOverlay(ph.Anatomy, m, 8, *clip)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := viz.WritePNG(f, img); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session complete: %d scans analysed, overlay written to %s\n", frames, *out)
}
