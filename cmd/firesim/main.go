// Command firesim runs a complete realtime-fMRI session through the
// "fire-rt-session" scenario: a synthetic scanner (two activation
// sites, drift, mid-session head motion) streams volumes to an
// RT-server over real loopback TCP, the RT-client pulls, motion-corrects
// and correlates them, and the final overlay is written as a PNG — the
// figure-3 display. The measurement configuration is fixed by the
// scenario; the former -noise and -clip knobs are gone.
//
// Usage:
//
//	firesim [-scans 48] [-out overlay.png]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	gtw "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("firesim: ")
	scans := flag.Int("scans", 48, "number of scans in the measurement")
	out := flag.String("out", "overlay.png", "output PNG path")
	flag.Parse()

	rep, err := gtw.Run(context.Background(), "fire-rt-session", gtw.WithFrames(*scans))
	if err != nil {
		log.Fatal(err)
	}
	sess, ok := rep.(*gtw.RTSessionReport)
	if !ok {
		log.Fatalf("unexpected report type %T", rep)
	}
	fmt.Print(sess.Text())
	if err := os.WriteFile(*out, sess.PNG, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session complete: %d scans analysed, overlay written to %s\n", sess.Scans, *out)
}
