// Command gtwd is the distributed-run coordinator: it serves scenario
// runs to any number of concurrent clients through a job queue, and
// fans every scenario's execution plan — sweep grids and one-point
// wrapped applications alike — out to gtwworker processes over the
// lease-based JSON/HTTP protocol of internal/dist.
//
// Local shards and remote workers steal from the same work queue, so a
// coordinator with zero workers still completes every job, and each
// worker that connects simply makes the queue drain faster. Workers
// stream each point's result as it finishes; a lease not heartbeaten
// within -lease-ttl is requeued, but only its unstreamed tail re-runs.
// Killed workers cost time, never results: reports stay byte-identical
// to a single-kernel run at any worker count.
//
// Finished points land in a content-addressed store (-cache entries,
// optionally -cache-bytes total wire bytes with -cache-entry-bytes per
// point, keyed by scenario + grid coordinates + the options the point
// actually depends on), so a later job whose grid overlaps —
// resubmitted, or differing only in irrelevant options — reuses them
// instead of re-simulating; job statuses report the reuse as
// point_hits.
//
// With -data-dir the coordinator is durable: every state transition —
// job lifecycle, each streamed point, worker stats — is journaled to a
// write-ahead log under the directory (compacted into snapshots every
// -snapshot). A gtwd killed mid-sweep — SIGKILL included — and
// restarted on the same -data-dir recovers the store, resumes
// interrupted jobs under their old IDs re-running only never-streamed
// points, keeps finished jobs pollable, and remembers reconnecting
// workers' throughput. Without -data-dir state is in-memory and dies
// with the process, as before.
//
// With -tenants FILE the coordinator is multi-tenant: the JSON file
// maps bearer tokens to named tenants with a priority class (high /
// normal / bulk) and an optional in-flight point cap, every endpoint
// except /healthz requires a configured token, lease grants follow
// weighted fair share across the tenants' queued work, usage is
// accounted per tenant (fresh points vs. store hits, so repeat tenants
// meter as cheap), and every auth rejection and job transition lands
// in the audit log (journaled under -data-dir when set). Without
// -tenants everything runs as a single anonymous tenant, as before.
// Either way, live counters are served at GET /v1/metrics (Prometheus
// text format) and job/worker/lease transitions stream from GET
// /v1/events (SSE).
//
// Usage:
//
//	gtwd [-addr :9191] [-lease-ttl 10s] [-local-shards 1]
//	     [-cache 4096] [-cache-bytes 0] [-cache-entry-bytes 0]
//	     [-jobs 4] [-poll 200ms] [-data-dir DIR] [-snapshot 1m]
//	     [-tenants tenants.json]
//
// Then point workers and clients at it:
//
//	gtwworker -coordinator http://host:9191 [-token TOK]
//	gtwrun -connect http://host:9191 [-token TOK] figure1-throughput
//	gtwtop -coordinator http://host:9191 [-token TOK]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	_ "repro" // register every scenario

	"repro/internal/dist"
	"repro/internal/persist"
	"repro/internal/tenant"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("gtwd: ")
	addr := flag.String("addr", ":9191", "listen address")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second,
		"how long a worker may hold a lease without heartbeating before its points are requeued")
	localShards := flag.Int("local-shards", 1,
		"in-process shards the coordinator contributes to every distributed job (negative = pure remote)")
	kernels := flag.Int("kernels", 0,
		"partition local-shard testbed networks across N PDES kernels (execution policy: reports are kernel-count independent; feeds the gtw_pdes_* metrics)")
	intra := flag.Bool("intra", false,
		"let -kernels partitioning cut inside sites at switch boundaries when the WAN cut alone cannot reach the requested count")
	cacheSize := flag.Int("cache", 4096,
		"content-addressed point-store entries (finished grid points, LRU-evicted)")
	cacheBytes := flag.Int64("cache-bytes", 0,
		"point-store total wire-byte budget, LRU-evicted (0 = entry bound only)")
	cacheEntryBytes := flag.Int("cache-entry-bytes", 0,
		"largest single point result the store will keep, in bytes (0 = no cap)")
	maxJobs := flag.Int("jobs", 4, "concurrently running jobs; further submissions queue FIFO")
	poll := flag.Duration("poll", 200*time.Millisecond, "idle-poll interval hint for workers")
	dataDir := flag.String("data-dir", "",
		"journal coordinator state here (WAL + snapshots) and recover it on restart; empty = in-memory only")
	snapshot := flag.Duration("snapshot", time.Minute,
		"how often to compact the -data-dir journal into a snapshot (negative: only on shutdown and log growth)")
	tenantsFile := flag.String("tenants", "",
		"tenant config file (JSON: token, name, class, max in-flight); enables token auth and fair-share scheduling")
	flag.Parse()

	var tenants *tenant.Registry
	if *tenantsFile != "" {
		var err error
		tenants, err = tenant.Load(*tenantsFile)
		if err != nil {
			log.Fatalf("load -tenants %s: %v", *tenantsFile, err)
		}
	}

	var store persist.Store
	var disk *persist.Disk
	if *dataDir != "" {
		var err error
		disk, err = persist.Open(*dataDir, persist.DiskOptions{
			SnapshotEvery: *snapshot,
			Logf:          log.Printf,
		})
		if err != nil {
			log.Fatalf("open -data-dir %s: %v", *dataDir, err)
		}
		store = disk
	}

	c := dist.New(dist.Config{
		LeaseTTL:        *leaseTTL,
		Poll:            *poll,
		LocalShards:     *localShards,
		ExecKernels:     *kernels,
		ExecIntra:       *intra,
		CacheSize:       *cacheSize,
		CacheBytes:      *cacheBytes,
		CacheEntryBytes: *cacheEntryBytes,
		MaxJobs:         *maxJobs,
		Store:           store,
		Tenants:         tenants,
		Logf:            log.Printf,
	})

	srv := &http.Server{Addr: *addr, Handler: c.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()

	durable := "in-memory state"
	if disk != nil {
		durable = "journaling to " + *dataDir
	}
	auth := "open access"
	if tenants != nil {
		auth = fmt.Sprintf("%d tenant(s), token auth", len(tenants.Tenants()))
	}
	log.Printf("coordinator listening on %s (lease ttl %s, %d local shard(s), point store %d, %s, %s)",
		*addr, *leaseTTL, *localShards, *cacheSize, durable, auth)
	err := srv.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Shutdown order matters for durability: Close() cancels running
	// jobs and waits for them to journal their interrupted state, THEN
	// the disk store compacts its final snapshot.
	c.Close()
	if disk != nil {
		if err := disk.Close(); err != nil {
			log.Fatalf("closing -data-dir journal: %v", err)
		}
	}
	log.Printf("coordinator stopped")
}
