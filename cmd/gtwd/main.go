// Command gtwd is the distributed-run coordinator: it serves scenario
// runs to any number of concurrent clients through a job queue, and
// fans every scenario's execution plan — sweep grids and one-point
// wrapped applications alike — out to gtwworker processes over the
// lease-based JSON/HTTP protocol of internal/dist.
//
// Local shards and remote workers steal from the same work queue, so a
// coordinator with zero workers still completes every job, and each
// worker that connects simply makes the queue drain faster. Workers
// stream each point's result as it finishes; a lease not heartbeaten
// within -lease-ttl is requeued, but only its unstreamed tail re-runs.
// Killed workers cost time, never results: reports stay byte-identical
// to a single-kernel run at any worker count.
//
// Finished points land in a content-addressed store (-cache entries,
// keyed by scenario + grid coordinates + the options the point actually
// depends on), so a later job whose grid overlaps — resubmitted, or
// differing only in irrelevant options — reuses them instead of
// re-simulating; job statuses report the reuse as point_hits.
//
// Usage:
//
//	gtwd [-addr :9191] [-lease-ttl 10s] [-local-shards 1]
//	     [-cache 4096] [-jobs 4] [-poll 200ms]
//
// Then point workers and clients at it:
//
//	gtwworker -coordinator http://host:9191
//	gtwrun -connect http://host:9191 figure1-throughput
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	_ "repro" // register every scenario

	"repro/internal/dist"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("gtwd: ")
	addr := flag.String("addr", ":9191", "listen address")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second,
		"how long a worker may hold a lease without heartbeating before its points are requeued")
	localShards := flag.Int("local-shards", 1,
		"in-process shards the coordinator contributes to every distributed job (negative = pure remote)")
	cacheSize := flag.Int("cache", 4096,
		"content-addressed point-store entries (finished grid points, LRU-evicted)")
	maxJobs := flag.Int("jobs", 4, "concurrently running jobs; further submissions queue FIFO")
	poll := flag.Duration("poll", 200*time.Millisecond, "idle-poll interval hint for workers")
	flag.Parse()

	c := dist.New(dist.Config{
		LeaseTTL:    *leaseTTL,
		Poll:        *poll,
		LocalShards: *localShards,
		CacheSize:   *cacheSize,
		MaxJobs:     *maxJobs,
		Logf:        log.Printf,
	})
	defer c.Close()
	log.Printf("coordinator listening on %s (lease ttl %s, %d local shard(s), point store %d)",
		*addr, *leaseTTL, *localShards, *cacheSize)
	log.Fatal(http.ListenAndServe(*addr, c.Handler()))
}
