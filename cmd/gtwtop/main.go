// Command gtwtop is the control plane's top(1): it connects to a gtwd
// coordinator and renders live jobs, workers, point throughput, store
// hit rates, and per-tenant usage from /v1/status and /v1/metrics,
// with job/worker/lease transitions tailed from the /v1/events SSE
// stream between snapshots.
//
// Usage:
//
//	gtwtop [-coordinator http://host:9191] [-token TOK]
//	       [-refresh 2s] [-once] [-topology]
//
// -once prints a single snapshot and exits (CI-friendly); the default
// mode reprints the snapshot every -refresh and interleaves streamed
// events. Against a gtwd started with -tenants, -token must carry a
// configured tenant token.
//
// -topology restores this command's original job — printing and
// validating the testbed topology (hosts, path MTUs, RTTs; a textual
// Figure 1) without contacting any coordinator.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	gtw "repro"

	"repro/internal/dist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gtwtop: ")
	coord := flag.String("coordinator", "http://127.0.0.1:9191", "coordinator base URL")
	token := flag.String("token", "", "tenant token for a -tenants coordinator (Authorization: Bearer)")
	refresh := flag.Duration("refresh", 2*time.Second, "snapshot interval")
	once := flag.Bool("once", false, "print one snapshot and exit")
	topology := flag.Bool("topology", false, "print the testbed topology instead of connecting to a coordinator")
	ext := flag.Bool("extensions", false, "with -topology: include the section-5 extension sites")
	oc12 := flag.Bool("oc12", false, "with -topology: use the 1997/98 OC-12 backbone instead of OC-48")
	flag.Parse()

	if *topology {
		printTopology(*ext, *oc12)
		return
	}

	cl := &dist.Client{Base: *coord, Token: *token}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if err := snapshot(ctx, cl); err != nil {
		log.Fatal(err)
	}
	if *once {
		return
	}

	go tailEvents(ctx, *coord, *token)
	tick := time.NewTicker(*refresh)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if err := snapshot(ctx, cl); err != nil {
				log.Printf("snapshot: %v", err)
			}
		}
	}
}

// snapshot renders one /v1/status + /v1/metrics dashboard frame.
func snapshot(ctx context.Context, cl *dist.Client) error {
	st, err := cl.Status(ctx)
	if err != nil {
		return err
	}
	met, _ := scrape(ctx, cl) // best-effort: older coordinators lack /v1/metrics

	fmt.Printf("--- %s  %s ---\n", time.Now().Format("15:04:05"), cl.Base)
	fmt.Printf("jobs: %d tracked", st.Jobs)
	if met != nil {
		fmt.Printf("  (running %.0f, queued %.0f, done %.0f, failed %.0f; leases granted %.0f, expired %.0f)",
			met["gtw_jobs_running"], met["gtw_jobs_queued"],
			met[`gtw_jobs_completed_total{status="done"}`], met[`gtw_jobs_completed_total{status="failed"}`],
			met["gtw_leases_granted_total"], met["gtw_leases_expired_total"])
	}
	fmt.Println()

	fmt.Printf("workers: %d\n", len(st.Workers))
	for _, w := range st.Workers {
		fmt.Printf("  %-20s %8d pts  %8.1f pts/s  seen %5.1fs ago\n",
			w.ID, w.Points, w.RatePPS, float64(w.LastSeenMSAgo)/1000)
	}

	lookups := st.StoreHits + st.StoreMisses
	hitRate := 0.0
	if lookups > 0 {
		hitRate = 100 * float64(st.StoreHits) / float64(lookups)
	}
	fmt.Printf("store: %d/%d points, %s", st.StorePoints, st.StoreCap, formatBytes(st.StoreBytes))
	if st.StoreBytesCap > 0 {
		fmt.Printf(" of %s", formatBytes(st.StoreBytesCap))
	}
	fmt.Printf(", hits %d/%d (%.1f%%), evictions %d, rejected %d\n",
		st.StoreHits, lookups, hitRate, st.StoreEvictions, st.StoreRejected)

	printPDES(met)

	if len(st.Tenants) > 0 {
		fmt.Printf("tenants:\n  %-12s %-7s %6s %9s %6s %9s %9s %9s %10s %8s\n",
			"name", "class", "weight", "inflight", "jobs", "run", "hit", "streamed", "bytes", "rejected")
		for _, t := range st.Tenants {
			inflight := strconv.Itoa(t.InFlight)
			if t.MaxInFlight > 0 {
				inflight += "/" + strconv.Itoa(t.MaxInFlight)
			}
			fmt.Printf("  %-12s %-7s %6.0f %9s %6d %9d %9d %9d %10s %8d\n",
				t.Name, t.Class, t.Weight, inflight, t.JobsSubmitted,
				t.PointsRun, t.PointsHit, t.PointsStreamed,
				formatBytes(t.StoreBytes), t.StoreRejected)
		}
	}
	return nil
}

// printPDES renders the per-kernel utilization line for partitioned
// (multi-kernel) simulation runs: each kernel's share of the fired
// events — the load-balance picture — plus its cumulative barrier wait
// when the coordinator collected blocked-time telemetry. Silent when no
// partitioned run has happened.
func printPDES(met map[string]float64) {
	if met == nil {
		return
	}
	var events []float64
	total := 0.0
	for i := 0; ; i++ {
		v, ok := met[fmt.Sprintf(`gtw_pdes_kernel_events_total{kernel="%d"}`, i)]
		if !ok {
			break
		}
		events = append(events, v)
		total += v
	}
	if len(events) == 0 || total == 0 {
		return
	}
	fmt.Printf("pdes: %.0f rounds, %.0f null msgs; kernel util", met["gtw_pdes_rounds_total"], met["gtw_pdes_null_messages_total"])
	for i, v := range events {
		fmt.Printf("  %d:%.1f%%", i, 100*v/total)
		if b, ok := met[fmt.Sprintf(`gtw_pdes_kernel_blocked_seconds{kernel="%d"}`, i)]; ok && b > 0 {
			fmt.Printf(" (blocked %.2fs)", b)
		}
	}
	fmt.Println()
}

// scrape pulls /v1/metrics and parses the sample lines into
// series-with-labels -> value.
func scrape(ctx context.Context, cl *dist.Client) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.Base+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	if cl.Token != "" {
		req.Header.Set("Authorization", "Bearer "+cl.Token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/metrics: %s", resp.Status)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			out[line[:i]] = v
		}
	}
	return out, sc.Err()
}

// tailEvents follows /v1/events, printing one line per transition
// between snapshots. Stream errors are retried until ctx ends — the
// periodic snapshots keep working regardless.
func tailEvents(ctx context.Context, base, token string) {
	for ctx.Err() == nil {
		if err := tailOnce(ctx, base, token); err != nil && ctx.Err() == nil {
			log.Printf("event stream: %v (retrying)", err)
			select {
			case <-time.After(time.Second):
			case <-ctx.Done():
			}
		}
	}
}

func tailOnce(ctx context.Context, base, token string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := (&http.Client{}).Do(req) // no timeout: long-lived stream
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() > 0 {
				var ev dist.Event
				if json.Unmarshal([]byte(data.String()), &ev) == nil {
					printEvent(ev)
				}
				data.Reset()
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return errors.New("stream closed")
}

func printEvent(ev dist.Event) {
	at := time.UnixMilli(ev.TimeMS).Format("15:04:05")
	switch ev.Type {
	case "job":
		line := fmt.Sprintf("%s  job %s (%s) %s", at, ev.Job, ev.Scenario, ev.Status)
		if ev.Tenant != "" {
			line += "  tenant=" + ev.Tenant
		}
		if ev.Error != "" {
			line += "  error=" + ev.Error
		}
		fmt.Println(line)
	case "points":
		fmt.Printf("%s  job %s %d/%d points\n", at, ev.Job, ev.PointsDone, ev.PointsTotal)
	case "worker":
		fmt.Printf("%s  worker %s registered\n", at, ev.Worker)
	case "lease":
		fmt.Printf("%s  lease expired on job %s (worker %s), %d point(s) requeued\n",
			at, ev.Job, ev.Worker, ev.Requeued)
	}
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// printTopology is gtwtop's original mode: a textual Figure 1.
func printTopology(ext, oc12 bool) {
	cfg := gtw.Config{Extensions: ext}
	if oc12 {
		cfg.WAN = gtw.OC12
	}
	tb := gtw.NewTestbed(cfg)

	fmt.Printf("Gigabit Testbed West — backbone %v (payload %.0f Mbit/s)\n",
		tb.Cfg.WAN, tb.Cfg.WAN.PayloadRate()/1e6)
	fmt.Println("\nhosts:")
	for _, name := range tb.HostNames() {
		if spec, ok := tb.Machine(name); ok {
			fmt.Printf("  %-16s %-12s %4d PEs, %5.0f Mflop/s/PE sustained\n",
				name, spec.Kind, spec.PEs, spec.SustainedFlops/1e6)
		} else {
			fmt.Printf("  %-16s (network element / workstation)\n", name)
		}
	}

	fmt.Println("\npath checks:")
	pairs := [][2]string{
		{gtw.HostT3E600, gtw.HostT3E1200},
		{gtw.HostT3E600, gtw.HostSP2},
		{gtw.HostWSJuelich, gtw.HostWSGMD},
		{gtw.HostOnyx2, gtw.HostWSJuelich},
	}
	for _, p := range pairs {
		mtu, err := tb.PathMTU(p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		rtt, err := tb.RTT(p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s -> %-14s  MTU %5d  RTT %8.3f ms\n",
			p[0], p[1], mtu, rtt.Seconds()*1000)
	}

	fmt.Println("\nregistered scenarios:")
	for _, s := range gtw.Scenarios() {
		fmt.Printf("  %-24s %s\n", s.Name(), s.Description())
	}
}
