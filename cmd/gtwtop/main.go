// Command gtwtop prints and validates the testbed topology: hosts,
// machine models, path MTUs and round-trip times — a textual rendering
// of Figure 1, built on the public gtw API.
//
// Usage:
//
//	gtwtop [-extensions] [-oc12]
package main

import (
	"flag"
	"fmt"
	"log"

	gtw "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gtwtop: ")
	ext := flag.Bool("extensions", false, "include the section-5 extension sites")
	oc12 := flag.Bool("oc12", false, "use the 1997/98 OC-12 backbone instead of OC-48")
	flag.Parse()

	cfg := gtw.Config{Extensions: *ext}
	if *oc12 {
		cfg.WAN = gtw.OC12
	}
	tb := gtw.NewTestbed(cfg)

	fmt.Printf("Gigabit Testbed West — backbone %v (payload %.0f Mbit/s)\n",
		tb.Cfg.WAN, tb.Cfg.WAN.PayloadRate()/1e6)
	fmt.Println("\nhosts:")
	for _, name := range tb.HostNames() {
		if spec, ok := tb.Machine(name); ok {
			fmt.Printf("  %-16s %-12s %4d PEs, %5.0f Mflop/s/PE sustained\n",
				name, spec.Kind, spec.PEs, spec.SustainedFlops/1e6)
		} else {
			fmt.Printf("  %-16s (network element / workstation)\n", name)
		}
	}

	fmt.Println("\npath checks:")
	pairs := [][2]string{
		{gtw.HostT3E600, gtw.HostT3E1200},
		{gtw.HostT3E600, gtw.HostSP2},
		{gtw.HostWSJuelich, gtw.HostWSGMD},
		{gtw.HostOnyx2, gtw.HostWSJuelich},
	}
	for _, p := range pairs {
		mtu, err := tb.PathMTU(p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		rtt, err := tb.RTT(p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s -> %-14s  MTU %5d  RTT %8.3f ms\n",
			p[0], p[1], mtu, rtt.Seconds()*1000)
	}

	fmt.Println("\nregistered scenarios:")
	for _, s := range gtw.Scenarios() {
		fmt.Printf("  %-24s %s\n", s.Name(), s.Description())
	}
}
