// Benchmarks regenerating every table and figure of the paper. Each
// benchmark reports the reproduced quantities as custom metrics so
// `go test -bench=. -benchmem` doubles as the experiment harness
// (cmd/gtwbench prints the same data as tables).
package gtw

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fire"
	"repro/internal/machine"
	"repro/internal/meg"
	"repro/internal/mpi"
	"repro/internal/mri"
	"repro/internal/volume"
)

// BenchmarkTable1FIREScaling regenerates Table 1: FIRE module times on
// the modeled T3E-600 for 1..256 PEs. The per-PE sub-benchmarks report
// the modeled total seconds and speedup next to the paper's value.
func BenchmarkTable1FIREScaling(b *testing.B) {
	model := fire.DefaultT3E600()
	for _, paper := range fire.PaperTable1 {
		paper := paper
		b.Run(fmt.Sprintf("PEs=%d", paper.PEs), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total = model.TotalTime(paper.PEs, 64, 64, 16)
			}
			t1 := model.TotalTime(1, 64, 64, 16)
			b.ReportMetric(total, "model-total-s")
			b.ReportMetric(paper.Total, "paper-total-s")
			b.ReportMetric(t1/total, "model-speedup")
			b.ReportMetric(paper.Speedup, "paper-speedup")
		})
	}
}

// BenchmarkFIREModulesReal runs the real analysis algorithms (not the
// cost model) on a reduced volume, giving the per-module compute
// character on the host machine.
func BenchmarkFIREModulesReal(b *testing.B) {
	ph := mri.NewPhantom(32, 32, 8, nil)
	vol := ph.Anatomy
	moved := vol.Shift(0.7, -0.4, 0.2)
	b.Run("median-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fire.MedianFilter3D(vol, 1)
		}
	})
	b.Run("motion-correct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fire.EstimateShift(vol, moved, fire.MotionOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Correlation over a 24-scan series.
	act := mri.Activation{CX: 16, CY: 16, CZ: 4, Radius: 3, Amplitude: 0.05, HRF: mri.DefaultHRF}
	sc := mri.NewScanner(mri.NewPhantom(32, 32, 8, []mri.Activation{act}),
		mri.ScanConfig{NX: 32, NY: 32, NZ: 8, TR: 2, NScans: 24, NoiseStd: 1, Seed: 1})
	var series []*volume.Volume
	for {
		v := sc.Next()
		if v == nil {
			break
		}
		series = append(series, v)
	}
	ref := sc.Reference(0)
	b.Run("correlate-24-scans", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fire.CorrelateSeries(series, ref); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure1Throughput regenerates the section-2 path
// measurements (Figure 1's quantitative content).
func BenchmarkFigure1Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Figure1Throughput()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Mbps, "hippi-local-Mbps")
		b.ReportMetric(rows[1].Mbps, "wan-t3e-sp2-Mbps")
		b.ReportMetric(rows[2].Mbps, "ws-64K-Mbps")
	}
}

// BenchmarkFigure2EndToEnd regenerates the fMRI latency budget.
func BenchmarkFigure2EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Figure2EndToEnd(256, 30)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TotalDelay, "total-delay-s")
		b.ReportMetric(r.Unpipelined, "period-s")
		b.ReportMetric(r.SafeTR, "safe-TR-s")
	}
}

// BenchmarkFigure3Overlay regenerates the GUI overlay experiment.
func BenchmarkFigure3Overlay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Figure3Overlay()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.ActivatedVoxels), "activated-voxels")
		b.ReportMetric(r.PeakCorrelation, "peak-r")
	}
}

// BenchmarkFigure4Workbench regenerates the visualization rates.
func BenchmarkFigure4Workbench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Figure4Workbench()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].FPS, "oc12-clip-fps")
		b.ReportMetric(r.StreamFPS, "measured-stream-fps")
	}
}

// BenchmarkSection3Applications regenerates the application
// requirements table.
func BenchmarkSection3Applications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Section3Applications()
		if err != nil {
			b.Fatal(err)
		}
		ok := 0
		for _, r := range rows {
			if r.OK {
				ok++
			}
		}
		b.ReportMetric(float64(ok), "apps-satisfied")
	}
}

// BenchmarkMPIMicro measures the metacomputing MPI's ping-pong
// behaviour intra-host vs inter-host (the two-level cost structure of
// section 3), using a WAN shaper set to the measured testbed numbers.
func BenchmarkMPIMicro(b *testing.B) {
	shaper := mpi.LinkShaper{Latency: 550 * time.Microsecond, Bps: 260e6}
	for _, tc := range []struct {
		name  string
		hosts []string
		bytes int
	}{
		{"intra-latency-0B", []string{"t3e", "t3e"}, 0},
		{"inter-latency-0B", []string{"t3e", "sp2"}, 0},
		{"intra-bandwidth-1MB", []string{"t3e", "t3e"}, 1 << 20},
		{"inter-bandwidth-1MB", []string{"t3e", "sp2"}, 1 << 20},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			payload := make([]byte, tc.bytes)
			b.SetBytes(int64(tc.bytes))
			b.ResetTimer()
			err := mpi.RunHosts(tc.hosts, shaper, nil, func(c *mpi.Comm) error {
				for i := 0; i < b.N; i++ {
					if c.Rank() == 0 {
						if err := c.Send(1, 1, payload); err != nil {
							return err
						}
						if _, err := c.Recv(1, 2); err != nil {
							return err
						}
					} else {
						if _, err := c.Recv(0, 1); err != nil {
							return err
						}
						if err := c.Send(0, 2, nil); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkPipelineAblation quantifies the pipelining improvement the
// paper identifies as unexploited (X1): unpipelined vs pipelined
// steady-state period at two partition sizes.
func BenchmarkPipelineAblation(b *testing.B) {
	model := fire.DefaultT3E600()
	for _, pes := range []int{64, 256} {
		pes := pes
		st := fire.PaperStageTimes(model, pes)
		b.Run(fmt.Sprintf("PEs=%d", pes), func(b *testing.B) {
			var up, pp fire.SessionResult
			for i := 0; i < b.N; i++ {
				var err error
				up, err = fire.SimulateSession(st, st.UnpipelinedPeriod()+0.05, 40, false)
				if err != nil {
					b.Fatal(err)
				}
				pp, err = fire.SimulateSession(st, st.PipelinedPeriod()+0.05, 40, true)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(up.AchievedPeriod, "unpipelined-period-s")
			b.ReportMetric(pp.AchievedPeriod, "pipelined-period-s")
			b.ReportMetric(up.AchievedPeriod/pp.AchievedPeriod, "speedup")
		})
	}
}

// BenchmarkRVORefinement is the X2 ablation: the planned coarse-raster
// + iterative-refinement RVO against the full raster, comparing work
// (grid evaluations) and result quality.
func BenchmarkRVORefinement(b *testing.B) {
	truth := mri.HRF{Delay: 8.5, Dispersion: 1.4}
	act := mri.Activation{CX: 6, CY: 6, CZ: 3, Radius: 2.5, Amplitude: 0.08, HRF: truth}
	ph := mri.NewPhantom(12, 12, 6, []mri.Activation{act})
	stim := mri.BlockStimulus(40, 8)
	sc := mri.NewScanner(ph, mri.ScanConfig{NX: 12, NY: 12, NZ: 6, TR: 2, NScans: 40,
		Stimulus: stim, NoiseStd: 0.5, Seed: 17})
	var series []*volume.Volume
	for {
		v := sc.Next()
		if v == nil {
			break
		}
		series = append(series, v)
	}
	for _, mode := range []struct {
		name string
		opts fire.RVOOptions
	}{
		{"full-raster", fire.DefaultRVOGrid()},
		{"coarse+refine", fire.CoarseRVOGrid()},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var res *fire.RVOResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = fire.RVO(series, stim, 2.0, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Evaluated), "grid-evals")
			b.ReportMetric(float64(res.Corr.At(6, 6, 3)), "center-r")
		})
	}
}

// BenchmarkFMRIScenarioDES runs the fully derived five-computer fMRI
// dataflow (scanner -> RT-server -> T3E -> client -> Onyx2 ->
// workbench) as a discrete-event simulation over the testbed,
// reporting the end-to-end delay that the F2 budget only asserts.
func BenchmarkFMRIScenarioDES(b *testing.B) {
	for _, pes := range []int{64, 256} {
		pes := pes
		b.Run(fmt.Sprintf("PEs=%d", pes), func(b *testing.B) {
			var res FMRIScenarioResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = RunFMRIScenario(FMRIScenario{PEs: pes, TR: 4.0, Frames: 10})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanGUIDelay, "gui-delay-s")
			b.ReportMetric(res.MeanVRDelay, "vr-delay-s")
			b.ReportMetric(res.WireSeconds, "wire-s")
		})
	}
}

// BenchmarkBackboneUpgrade regenerates the upgrade-motivation
// experiments (U1/U2): aggregate flows and mixed video+bulk traffic on
// both backbone generations.
func BenchmarkBackboneUpgrade(b *testing.B) {
	for _, wan := range []OC{OC12, OC48} {
		wan := wan
		b.Run(fmt.Sprintf("aggregate-%v", wan), func(b *testing.B) {
			var row AggregateRow
			for i := 0; i < b.N; i++ {
				var err error
				row, err = BackboneAggregate(wan, 4)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.AggregateMbps, "aggregate-Mbps")
		})
		b.Run(fmt.Sprintf("mixed-%v", wan), func(b *testing.B) {
			var m MixedTrafficResult
			for i := 0; i < b.N; i++ {
				var err error
				m, err = MixedTraffic(wan)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.Video.OnTime), "video-frames-on-time")
			b.ReportMetric(m.BulkMbps, "bulk-Mbps")
		})
	}
}

// BenchmarkFutureWork regenerates the forward-looking analyses: B-WiN
// saturation (section 1) and multi-echo feasibility (section 4).
func BenchmarkFutureWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := FutureWorkAnalysis()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BWiNSaturation, "bwin-saturation-year")
		b.ReportMetric(r.Acquisitions[1].T3EFullSeconds, "multiecho-512PE-s")
	}
}

// BenchmarkMEGDistribution quantifies the pmusic superlinear-speedup
// claim: MPP-only vs MPP+vector metacomputing.
func BenchmarkMEGDistribution(b *testing.B) {
	m := meg.DistributedModel{
		MPP:        machine.CrayT3E600(),
		Vector:     machine.CrayT90(),
		WANLatency: 550 * time.Microsecond,
		WANBps:     260e6,
		Sensors:    148, Signals: 5, GridPoints: 50000, Iterations: 10,
	}
	for _, pes := range []int{16, 64, 256} {
		pes := pes
		b.Run(fmt.Sprintf("PEs=%d", pes), func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				sp = m.SuperlinearSpeedup(pes)
			}
			b.ReportMetric(sp, "distributed-speedup")
		})
	}
}
