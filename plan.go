package gtw

import (
	"repro/internal/core"
)

// This file is the execution-plane layer of the public API: every
// registered scenario — parameter sweep or one-shot application —
// resolves to a Plan whose unit of work is the grid point, exactly as
// the paper's testbed ran metacomputing sweeps and one-shot coupled
// applications over one distributed infrastructure. A non-sweep
// scenario becomes a one-point sweep behind the same abstraction, so
// the dispatcher, the shard executor and the distributed run service
// (cmd/gtwd, cmd/gtwworker) execute and cache all of them uniformly.

// PointRunner is the point-based execution contract every scenario
// reduces to: enumerate a grid, evaluate points independently, merge in
// grid order, round-trip point results through a wire codec.
type PointRunner = core.PointRunner

// Plan is a scenario resolved to its executable form: the scenario
// itself for sweeps, a synthesized one-point sweep otherwise.
type Plan = core.Plan

// PlanFor resolves any scenario to its execution plan.
func PlanFor(s Scenario) *Plan { return core.PlanFor(s) }

// WireReport is a report reconstructed from its wire form (JSON +
// rendered text) — what a non-sweep scenario's point decodes into after
// remote execution.
type WireReport = core.WireReport

// OptField names one cross-machine Options field for Sweep.PointDeps.
type OptField = core.OptField

// The Options fields a point's content address can depend on.
const (
	OptWAN        = core.OptWAN
	OptExtensions = core.OptExtensions
	OptPEs        = core.OptPEs
	OptFrames     = core.OptFrames
	OptFlows      = core.OptFlows
)
