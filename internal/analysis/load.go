package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the package loader behind gtwvet. The repository is
// deliberately dependency-free, so instead of golang.org/x/tools'
// go/packages the loader drives the go toolchain directly:
//
//	go list -export -deps -json <patterns>
//
// enumerates every package in dependency order and materialises export
// data (in the build cache) for all of them. Packages outside the main
// module are imported from that export data through go/importer's
// lookup hook — never re-type-checked — while the main module's own
// packages are parsed and type-checked from source, in the dependency
// order go list guarantees, so their ASTs and type objects share one
// identity space across packages. That identity sharing is what lets
// the pointdeps analyzer walk a call from internal/core into another
// module package and keep resolving objects.

// Package is one type-checked main-module package.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	// Dir is the package's source directory.
	Dir string
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the source-checked package object.
	Types *types.Package
	// Info carries the type-checker's facts for Files.
	Info *types.Info
}

// Program is a loaded, type-checked view of one module's packages plus
// a global function-declaration index for interprocedural walks.
type Program struct {
	// Fset is the file set shared by every package in the program.
	Fset *token.FileSet
	// Pkgs are the main-module packages in dependency order
	// (dependencies before dependents).
	Pkgs []*Package
	// ModulePath is the main module's path ("repro").
	ModulePath string

	byPath map[string]*Package
	decls  map[*types.Func]*FuncSource
}

// FuncSource locates a function's declaration inside the program.
type FuncSource struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Package resolves a loaded main-module package by import path.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// FuncDecl resolves a function object to its source declaration, or nil
// when the function's body is outside the main module (or it has none).
func (p *Program) FuncDecl(fn *types.Func) *FuncSource { return p.decls[fn] }

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct{ Path, Dir string }
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns under dir (the module root, or any directory
// inside the module) and type-checks every main-module package they
// resolve to. Test files are not loaded: gtwvet checks the shipped
// tree, and fixtures are ordinary non-test packages.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,GoFiles,Module,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var pkgs []listPkg
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		pkgs = append(pkgs, lp)
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		decls:  make(map[*types.Func]*FuncSource),
	}
	// The main module is whichever module the listed source packages
	// belong to (go list resolves patterns against dir's module).
	for _, lp := range pkgs {
		if !lp.Standard && lp.Module != nil {
			prog.ModulePath = lp.Module.Path
			break
		}
	}

	imp := &programImporter{
		prog: prog,
		base: importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("analysis: no export data for %q", path)
			}
			return os.Open(f)
		}),
	}

	for _, lp := range pkgs {
		if lp.Standard || lp.Module == nil || lp.Module.Path != prog.ModulePath {
			continue
		}
		pkg, err := typeCheck(prog, imp, lp)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[pkg.Path] = pkg
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// programImporter resolves main-module imports to their source-checked
// packages and everything else to export data.
type programImporter struct {
	prog *Program
	base types.Importer
}

func (pi *programImporter) Import(path string) (*types.Package, error) {
	if pkg := pi.prog.byPath[path]; pkg != nil {
		return pkg.Types, nil
	}
	return pi.base.Import(path)
}

// typeCheck parses and checks one main-module package from source.
func typeCheck(prog *Program, imp types.Importer, lp listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir, Files: files, Types: tpkg, Info: info}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				prog.decls[fn] = &FuncSource{Decl: fd, Pkg: pkg}
			}
		}
	}
	return pkg, nil
}
