package poolrelease_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolrelease"
)

func TestFixtureDiagnostics(t *testing.T) {
	analysistest.Run(t, "testdata/basic", poolrelease.New())
}
