// Package cut exercises packet ownership at intra-component cut ifaces:
// when a partition boundary runs through a switch, the sender-side
// iface clones each crossing packet into the receiving partition's pool
// and hands the clone to the cut queue. The clone follows the same
// acquire/hand-off discipline as any pooled packet.
package cut

import "fix.poolrelease/netsim"

// Queue is the cut-edge FIFO; Push transfers clone ownership to the
// receiving partition.
type Queue struct{}

func (q *Queue) Push(p *netsim.Packet) {}

// The supported shape: clone into the far pool, push onto the cut
// queue.
func forwardClean(n *netsim.Network, q *Queue, p *netsim.Packet, far netsim.NodeID) {
	c := n.NewPacketAt(far)
	c.Src, c.Dst, c.Bytes = p.Src, p.Dst, p.Bytes
	q.Push(c)
}

// A clone acquired at the cut but never pushed leaks the far
// partition's pool slot.
func forwardAndForget(n *netsim.Network, p *netsim.Packet, far netsim.NodeID) {
	c := n.NewPacketAt(far) // want `packet "c" acquired from the pool but never sent`
	c.Bytes = p.Bytes
}

// Reading the clone after the network consumed it races the far
// partition's pool.
func forwardThenPeek(n *netsim.Network, p *netsim.Packet, far netsim.NodeID) int {
	c := n.NewPacketAt(far)
	c.Src, c.Dst, c.Bytes = p.Src, p.Dst, p.Bytes
	n.Send(c)
	return c.Bytes // want `packet "c" used after Send`
}
