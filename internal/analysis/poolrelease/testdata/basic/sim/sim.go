// Package sim is a miniature of the kernel's pooled, generation-tagged
// event handles.
package sim

type Event struct {
	gen uint64
}

func After(d int64, fn func()) Event { return Event{} }
