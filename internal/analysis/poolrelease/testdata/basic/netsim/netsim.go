// Package netsim is a miniature of the real pooled-packet surface: a
// Network type whose NewPacket draws from a pool and whose Send
// consumes the packet (the network recycles it after the callback).
package netsim

type NodeID int

type Packet struct {
	Src, Dst NodeID
	Bytes    int
}

type Network struct {
	free []*Packet
}

func (n *Network) NewPacket() *Packet {
	if l := len(n.free); l > 0 {
		p := n.free[l-1]
		n.free = n.free[:l-1]
		return p
	}
	return &Packet{}
}

// NewPacketAt is the partition-pool variant: it draws from the pool of
// the partition owning the node.
func (n *Network) NewPacketAt(at NodeID) *Packet {
	return n.NewPacket()
}

func (n *Network) Send(p *Packet) {}
