module fix.poolrelease

go 1.24
