// Package tcp exercises packet ownership, flow release discipline and
// event-handle retention against the poolrelease analyzer.
package tcp

import (
	"fix.poolrelease/netsim"
	"fix.poolrelease/sim"
)

// The supported shape: acquire, fill, hand off.
func sendClean(n *netsim.Network, src, dst netsim.NodeID) {
	p := n.NewPacket()
	p.Src, p.Dst, p.Bytes = src, dst, 1000
	n.Send(p)
}

// Touching the packet after Send reads a recycled record.
func sendThenPeek(n *netsim.Network, src, dst netsim.NodeID) int {
	p := n.NewPacket()
	p.Src, p.Dst, p.Bytes = src, dst, 1000
	n.Send(p)
	return p.Bytes // want `packet "p" used after Send`
}

// Acquiring a packet and dropping it on the floor leaks its pool slot.
func acquireAndForget(n *netsim.Network) {
	p := n.NewPacket() // want `packet "p" acquired from the pool but never sent`
	p.Bytes = 1
}

// The partition-pool variant follows the same ownership rule.
func sendCleanAt(n *netsim.Network, src, dst netsim.NodeID) {
	p := n.NewPacketAt(src)
	p.Src, p.Dst, p.Bytes = src, dst, 1000
	n.Send(p)
}

func acquireAtAndForget(n *netsim.Network, src netsim.NodeID) {
	p := n.NewPacketAt(src) // want `packet "p" acquired from the pool but never sent`
	p.Bytes = 1
}

// Returning the packet transfers ownership to the caller; not a leak.
func acquireForCaller(n *netsim.Network) *netsim.Packet {
	p := n.NewPacket()
	p.Bytes = 1
	return p
}

// Flow is pool-backed: Release returns its sender state to a free
// list.
type Flow struct {
	Delivered int64
}

func (f *Flow) Release() {}

func start() *Flow { return &Flow{} }

// The supported shape: result first, release last.
func transferClean() int64 {
	f := start()
	d := f.Delivered
	f.Release()
	return d
}

// The historical tcpsim shape: an error path released the flow that a
// later line released again, putting one record on the free list
// twice.
func doubleRelease() {
	f := start()
	f.Release()
	f.Release() // want `"f" released twice in one block`
}

// Reading through a released handle races the pool's next GetSender.
func useAfterRelease() int64 {
	f := start()
	f.Release()
	return f.Delivered // want `"f" used after Release`
}

// Releasing a handle declared outside the loop re-releases the same
// record every iteration.
func releaseInLoop(flows []*Flow) {
	f := start()
	for range flows {
		f.Release() // want `"f" released inside a loop but declared outside it`
	}
}

// The per-iteration range variable names a fresh handle each time;
// releasing it is the WaitAll-then-release idiom.
func releaseEach(flows []*Flow) {
	for _, f := range flows {
		f.Release()
	}
}

// Rebinding the variable resets the discipline: two releases of two
// records.
func releaseRebindRelease() {
	f := start()
	f.Release()
	f = start()
	f.Release()
}

// Event handles parked in containers outlive their generation and go
// inert.
type scheduler struct {
	pending sim.Event // a struct-field slot is the supported pattern
	byName  map[string]sim.Event
	queue   []sim.Event
}

func (s *scheduler) park(name string, ev sim.Event) {
	s.pending = ev
	s.byName[name] = ev           // want `sim\.Event handle stored into a container`
	s.queue = append(s.queue, ev) // want `sim\.Event handle appended to a slice`
}

func shipEvent(ch chan sim.Event, ev sim.Event) {
	ch <- ev // want `sim\.Event handle sent on a channel`
}
