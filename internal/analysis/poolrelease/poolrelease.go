// Package poolrelease checks the discipline around pooled handles —
// the bug class PRs 2–5 fixed by hand. Three resources in the tree are
// pool-backed, and each has one ownership rule:
//
//   - netsim packets: Network.NewPacket and Network.NewPacketAt (the
//     partition-pool variant) acquire from a pool and Network.Send
//     transfers ownership to the network, which recycles the packet
//     after the delivery/drop callback returns. A packet
//     that is acquired but never handed off leaks its pool slot; a
//     packet touched after Send is a use-after-recycle.
//   - tcpsim flows: Flow.Release returns the flow's sender state to the
//     pool. Releasing the same handle twice in one straight-line block,
//     or releasing a loop-invariant handle on every iteration, puts one
//     record on the free list twice — the historical double-release.
//     Any use lexically after the Release in the same block is a
//     use-after-release.
//   - sim events: kernel event records are pooled and generation-
//     tagged, so a stale handle is inert rather than unsafe — which is
//     exactly why retention bugs are silent: a handle parked in a map,
//     slice or channel outlives its generation and later Cancels
//     nothing. Keeping the pending handle in a struct field (the
//     CrossTraffic/tcpsim idiom) is the supported pattern and is not
//     flagged.
//
// The analysis is deliberately lexical and intra-function: it reasons
// about straight-line statement order inside one function (including
// its closures) and does not chase handles across calls or model
// branch interleavings. That keeps every diagnostic cheap to verify by
// eye — the property that made the hand-fixed bugs findable in review.
package poolrelease

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"

	"repro/internal/analysis"
)

// New builds the poolrelease analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "poolrelease",
		Doc:  "pooled packets, flows and event handles must be released exactly once and never used after",
		Run:  run,
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPackets(pass, fd)
			checkReleases(pass, fd.Body)
			checkEventRetention(pass, fd.Body)
		}
	}
	return nil
}

// --------------------------------------------------------- packets --

// checkPackets enforces the NewPacket→Send ownership rule inside one
// function. Methods of the pool-owning Network type itself are exempt:
// they are the pool implementation.
func checkPackets(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	if recvNamed(pass, fd) == "Network" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := analysis.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok ||
			(!isPoolMethod(info, call, "NewPacket", "Network") &&
				!isPoolMethod(info, call, "NewPacketAt", "Network")) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			checkOnePacket(pass, fd.Body, as, obj)
		}
		return true
	})
}

// checkOnePacket classifies every use of one acquired packet variable
// relative to the Send call that consumes it.
func checkOnePacket(pass *analysis.Pass, body *ast.BlockStmt, acq *ast.AssignStmt, obj types.Object) {
	info := pass.Pkg.Info
	var sendEnd token.Pos // end of the consuming Send call, if any
	consumed := false     // passed to any call / returned / stored: ownership left

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, a := range call.Args {
			id, ok := analysis.Unparen(a).(*ast.Ident)
			if !ok || info.Uses[id] != obj {
				continue
			}
			consumed = true
			if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Send" && sendEnd == 0 && call.Pos() > acq.Pos() {
				sendEnd = call.End()
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if id, ok := analysis.Unparen(r).(*ast.Ident); ok && info.Uses[id] == obj {
					consumed = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if id, ok := analysis.Unparen(r).(*ast.Ident); ok && info.Uses[id] == obj {
					consumed = true // stored somewhere; ownership intent unclear but not a leak
				}
			}
		case *ast.Ident:
			if info.Uses[x] != obj || sendEnd == 0 || x.Pos() <= sendEnd {
				return true
			}
			pass.Reportf(x.Pos(),
				"packet %q used after Send: the network recycles pooled packets once the delivery callback returns, so this reads a reused record", obj.Name())
		}
		return true
	})

	if !consumed {
		pass.Reportf(acq.Pos(),
			"packet %q acquired from the pool but never sent, returned or handed off: its pool slot leaks", obj.Name())
	}
}

// -------------------------------------------------------- releases --

// checkReleases enforces single-release and no-use-after-release for
// any handle with a niladic Release method, per straight-line block.
func checkReleases(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	var walkBlock func(blk *ast.BlockStmt, loops []*loopCtx)
	walkBlock = func(blk *ast.BlockStmt, loops []*loopCtx) {
		relAt := map[types.Object]token.Pos{}
		for _, stmt := range blk.List {
			// Reassignment resets the handle: it names a fresh record.
			if as, ok := stmt.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							delete(relAt, obj)
						}
						if obj := info.Defs[id]; obj != nil {
							delete(relAt, obj)
						}
					}
				}
			}

			// Uses after a release recorded earlier in this block.
			ast.Inspect(stmt, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				pos, was := relAt[obj]
				if !was || id.Pos() <= pos {
					return true
				}
				if isReleaseCallOn(info, stmt, obj) != nil {
					return true // the double-release diagnostic below covers it
				}
				pass.Reportf(id.Pos(),
					"%q used after Release: the handle's record is back in the pool and may already be reissued", obj.Name())
				return false
			})

			// Release calls directly in this block's statement list.
			if call := releaseCall(info, stmt); call != nil {
				obj := releaseTarget(info, call)
				if obj == nil {
					continue
				}
				if _, twice := relAt[obj]; twice {
					pass.Reportf(call.Pos(),
						"%q released twice in one block: the second Release puts the same record on the free list again", obj.Name())
				}
				relAt[obj] = call.Pos()
				// Releasing a handle that predates an enclosing loop
				// releases the same record every iteration.
				for _, lc := range loops {
					if obj.Pos() < lc.pos || obj.Pos() > lc.end {
						pass.Reportf(call.Pos(),
							"%q released inside a loop but declared outside it: every iteration re-releases the same record", obj.Name())
						break
					}
				}
			}

			// Recurse into nested blocks with loop context.
			switch s := stmt.(type) {
			case *ast.BlockStmt:
				walkBlock(s, loops)
			case *ast.IfStmt:
				walkBlock(s.Body, loops)
				if els, ok := s.Else.(*ast.BlockStmt); ok {
					walkBlock(els, loops)
				}
			case *ast.ForStmt:
				walkBlock(s.Body, append(loops, &loopCtx{s.Pos(), s.End()}))
			case *ast.RangeStmt:
				walkBlock(s.Body, append(loops, &loopCtx{s.Pos(), s.End()}))
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkBlock(&ast.BlockStmt{List: cc.Body}, loops)
					}
				}
			}
		}
	}
	walkBlock(body, nil)
}

type loopCtx struct{ pos, end token.Pos }

// releaseCall extracts a direct x.Release() expression statement, or
// nil. Deferred releases are deliberately skipped: `defer h.Release()`
// is the cleanup idiom for early-return paths and pairing it with the
// statement-order model would only produce noise.
func releaseCall(info *types.Info, stmt ast.Stmt) *ast.CallExpr {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := analysis.Unparen(es.X).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	return call
}

// releaseTarget resolves the identifier a Release call operates on.
func releaseTarget(info *types.Info, call *ast.CallExpr) types.Object {
	sel := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	id, ok := analysis.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// isReleaseCallOn reports the Release call in stmt targeting obj, if
// stmt is exactly that call.
func isReleaseCallOn(info *types.Info, stmt ast.Stmt, obj types.Object) *ast.CallExpr {
	call := releaseCall(info, stmt)
	if call != nil && releaseTarget(info, call) == obj {
		return call
	}
	return nil
}

// ---------------------------------------------------- event handles --

// checkEventRetention flags sim.Event handles parked in maps, slices or
// channels. A struct-field pending-event slot (reassigned as the event
// fires or is cancelled) is the supported pattern and not flagged.
func checkEventRetention(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if _, ok := analysis.Unparen(lhs).(*ast.IndexExpr); !ok {
					continue
				}
				if i < len(x.Rhs) && isEventValue(info, x.Rhs[i]) {
					pass.Reportf(x.Rhs[i].Pos(),
						"sim.Event handle stored into a container: the pooled record is reissued under a new generation and the stored handle silently goes inert")
				}
			}
		case *ast.CallExpr:
			if id, ok := analysis.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
				for _, a := range x.Args[1:] {
					if isEventValue(info, a) {
						pass.Reportf(a.Pos(),
							"sim.Event handle appended to a slice: the pooled record is reissued under a new generation and the stored handle silently goes inert")
					}
				}
			}
		case *ast.SendStmt:
			if isEventValue(info, x.Value) {
				pass.Reportf(x.Value.Pos(),
					"sim.Event handle sent on a channel: the pooled record is reissued under a new generation and the received handle silently goes inert")
			}
		}
		return true
	})
}

// isEventValue reports whether e's type is the kernel's Event handle.
func isEventValue(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[analysis.Unparen(e)]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil && path.Base(obj.Pkg().Path()) == "sim"
}

// ----------------------------------------------------------- helpers --

// isPoolMethod reports whether call invokes a method of the given name
// on a named type.
func isPoolMethod(info *types.Info, call *ast.CallExpr, method, recvType string) bool {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	s := info.Selections[sel]
	if s == nil {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == recvType
}

// recvNamed returns the name of fd's receiver type, or "".
func recvNamed(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	tv, ok := pass.Pkg.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
