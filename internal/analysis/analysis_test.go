package analysis_test

import (
	"go/ast"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// testcheck flags every call to a function literally named flagme —
// just enough analyzer to drive the suppression machinery.
func testcheck() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "testcheck",
		Doc:  "flags calls to flagme",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := analysis.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "flagme" {
						pass.Reportf(call.Pos(), "call to flagme")
					}
					return true
				})
			}
			return nil
		},
	}
}

func TestIgnoreDirectives(t *testing.T) {
	prog, err := analysis.Load("testdata/directives", "./...")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{testcheck()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var got []string
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		got = append(got, d.Analyzer+"@"+strconv.Itoa(pos.Line)+": "+d.Message)
	}

	// Exactly these survive, in position order: the undirected call,
	// the directive naming a different analyzer (reported unused), the
	// call under it (not suppressed), the free-floating unused
	// directive, and the malformed one. The two correctly placed
	// directives (line above, trailing) suppress silently.
	want := []struct{ prefix, contains string }{
		{"testcheck@8:", "call to flagme"},
		{"gtwvet@21:", `unused ignore directive for "othercheck"`},
		{"testcheck@22:", "call to flagme"},
		{"gtwvet@25:", `unused ignore directive for "testcheck"`},
		{"gtwvet@28:", "malformed ignore directive"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i, w := range want {
		if !strings.HasPrefix(got[i], w.prefix) || !strings.Contains(got[i], w.contains) {
			t.Errorf("diagnostic %d = %q, want prefix %q containing %q", i, got[i], w.prefix, w.contains)
		}
	}
}
