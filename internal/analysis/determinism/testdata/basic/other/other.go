// Package other is outside the simulation/report domain: trace
// collectors and CLIs measure wall-clock time on purpose, so nothing
// here is diagnosed.
package other

import (
	"math/rand"
	"time"
)

func Timestamp() time.Time { return time.Now() }

func Jitter() int { return rand.Intn(10) }
