// Package netsim is in the simulation domain: partition assignment is
// recomputed between runs, and the whole rebalancing contract is that
// the cost signal and the resulting assignment are deterministic
// functions of the model — counters and sorted orders, never wall
// clocks or map order.
package netsim

import (
	"sort"
	"time"
)

// Sampling wall clocks as a load estimate makes every rebalance pick a
// different assignment run to run.
func costByWallClock(start time.Time) int64 {
	return time.Now().UnixNano() - start.UnixNano() // want `time.Now in simulation/report code`
}

// The deterministic signal: per-node event counters accumulated in
// virtual time.
func costByCounters(work []int64) int64 {
	var c int64
	for _, w := range work {
		c += w
	}
	return c
}

// Ranging a map of island costs while building the assignment order
// leaks map iteration order into partition membership.
func assignOrder(costs map[int]int64) []int {
	var order []int
	for id := range costs {
		order = append(order, id) // want `append to "order" inside a map range`
	}
	return order
}

// Collect-then-sort erases the map order before assignment.
func assignOrderSorted(costs map[int]int64) []int {
	var order []int
	for id := range costs {
		order = append(order, id)
	}
	sort.Ints(order)
	return order
}
