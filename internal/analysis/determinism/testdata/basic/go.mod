module fix.determinism

go 1.24
