// Package pdes is in the simulation domain: the parallel-simulation
// synchronization layer's whole contract is that reports stay
// byte-identical at any kernel count, so the order partitions are
// assembled or drained in must never depend on map iteration or wall
// clocks.
package pdes

import (
	"sort"
	"time"
)

// A queue-assembly shape: collecting per-partition inputs by ranging a
// map leaks iteration order into the drain order, which is the round
// protocol's determinism contract.
func drainOrder(inputs map[int]string) []string {
	var queues []string
	for _, q := range inputs {
		queues = append(queues, q) // want `append to "queues" inside a map range`
	}
	return queues
}

// Collect-then-sort erases the map order before the drain order is
// fixed.
func sortedDrainOrder(inputs map[int]string) []string {
	var queues []string
	for _, q := range inputs {
		queues = append(queues, q)
	}
	sort.Strings(queues)
	return queues
}

// Wall-clock reads have no place in a virtual-time scheduler.
func roundDeadline() int64 {
	return time.Now().UnixNano() // want `time.Now in simulation/report code`
}
