// Package sim exercises the determinism analyzer: its name puts it in
// the simulation/report domain, so wall clocks, global RNG draws and
// order-leaking map ranges are all diagnosed.
package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want `time.Now in simulation/report code`
	return t.UnixNano()
}

// Engine-side timing that never reaches report bytes is suppressed at
// the site, with the reason recorded; the directive itself must count
// as used or the framework reports it.
func suppressedClock() time.Time {
	//gtwvet:ignore determinism scheduler telemetry, excluded from report bytes
	return time.Now()
}

func globalDraw() int {
	return rand.Intn(6) // want `global math/rand draw \(rand\.Intn\)`
}

func seededDraw(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors are not draws
	return rng.Intn(6)
}

// The map-ordered-report shape: iteration order flows into the joined
// report text.
func orderedReport(hosts map[string]int) string {
	var rows []string
	for name, up := range hosts {
		rows = append(rows, fmt.Sprintf("%s=%d", name, up)) // want `append to "rows" inside a map range`
	}
	return strings.Join(rows, "\n")
}

// Collect-then-sort erases the map order before it can reach output.
func sortedReport(hosts map[string]int) string {
	var names []string
	for name := range hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, "\n")
}

// Writing report bytes directly from inside the range is always
// order-dependent; no later sort can fix a stream.
func streamedReport(hosts map[string]int) string {
	var buf bytes.Buffer
	for name := range hosts {
		buf.WriteString(name) // want `buf\.WriteString inside a map range`
	}
	return buf.String()
}

func printedReport(hosts map[string]int) string {
	var sb strings.Builder
	for name, up := range hosts {
		fmt.Fprintf(&sb, "%s=%d\n", name, up) // want `fmt\.Fprintf into "sb" inside a map range`
	}
	return sb.String()
}

// Order-independent folds over a map are fine.
func total(hosts map[string]int) int {
	sum := 0
	for _, up := range hosts {
		sum += up
	}
	return sum
}

// A slice declared inside the loop dies each iteration; no order
// escapes.
func perEntry(hosts map[string]int) int {
	n := 0
	for name := range hosts {
		var parts []string
		parts = append(parts, name)
		n += len(parts)
	}
	return n
}
