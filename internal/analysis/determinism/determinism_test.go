package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestFixtureDiagnostics(t *testing.T) {
	analysistest.Run(t, "testdata/basic", determinism.New())
}
