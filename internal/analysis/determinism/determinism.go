// Package determinism flags nondeterminism sources in simulation and
// report code. The execution plane's acceptance bar is byte-identical
// reports at any shard and worker count, which dies by a thousand cuts:
// a wall-clock read folded into a result row, an unseeded global RNG, a
// map iteration whose order leaks into merged output. The analyzer
// checks three patterns inside the simulation/report domain packages:
//
//  1. time.Now — wall-clock reads. Engine timing that is deliberately
//     excluded from report bytes carries a //gtwvet:ignore directive
//     explaining exactly that.
//  2. Package-level math/rand (and math/rand/v2) calls — rand.Intn et
//     al. draw from the process-global source; every simulation RNG
//     must be an explicitly seeded *rand.Rand (rand.New/NewSource and
//     friends are constructors, not draws, and stay legal).
//  3. Ranging over a map while appending to an outer slice or writing
//     to an outer builder/buffer/writer/hash — iteration order flows
//     into output bytes. The canonical collect-then-sort pattern is
//     recognised: if the collected slice is later passed to a sort
//     call in the same function, the range is clean.
//
// The check is domain-restricted (see domainPkgs): internal/mpi and
// internal/mpitrace are excluded by design — VAMPIR-style trace
// timestamps are wall-clock measurements, which is their whole point —
// and the dist/persist planes legitimately deal in lease clocks.
package determinism

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"repro/internal/analysis"
)

// domainPkgs are the final import-path elements of packages whose code
// feeds simulated results or report bytes.
var domainPkgs = map[string]bool{
	"sim": true, "pdes": true, "netsim": true, "tcpsim": true, "atm": true,
	"hippi": true, "machine": true, "bwin": true, "core": true,
	"video": true, "viz": true, "volume": true, "mri": true,
	"meg": true, "climate": true, "groundwater": true, "linalg": true,
	"fire": true, "cocolib": true,
}

// randConstructors are math/rand selectors that build or seed explicit
// generators rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// New builds the determinism analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "determinism",
		Doc:  "simulation and report code must not read wall clocks, global RNGs, or map order",
		Run:  run,
	}
}

func run(pass *analysis.Pass) error {
	if !domainPkgs[path.Base(pass.Pkg.Path)] {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, x)
			case *ast.FuncDecl:
				if x.Body != nil {
					checkMapRanges(pass, x.Body)
				}
			}
			return true
		})
	}
	return nil
}

// checkCall flags time.Now and global math/rand draws.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := analysis.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		if sel.Sel.Name == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now in simulation/report code: wall-clock values differ across runs and shards; derive timing from the simulated clock or keep it out of report bytes")
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"global math/rand draw (rand.%s): the process-wide source makes runs irreproducible; use an explicitly seeded *rand.Rand", sel.Sel.Name)
		}
	}
}

// checkMapRanges scans one function body for map-range statements whose
// iteration order escapes into ordered output.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkOneMapRange(pass, body, rng)
		return true
	})
}

// checkOneMapRange flags order-dependent sinks inside a single map
// range. A sink is order-dependent when it produces a sequence — an
// append to a slice declared outside the loop, or a write to an outside
// builder/buffer/writer/hash. Writes into other maps or scalar
// accumulation (sums, counters) are order-independent and ignored.
func checkOneMapRange(pass *analysis.Pass, fn *ast.BlockStmt, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// append(outer, ...) assigned back to the same outer slice.
		if id, ok := analysis.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if len(call.Args) == 0 {
				return true
			}
			target := analysis.RootIdent(call.Args[0])
			if target == nil {
				return true
			}
			obj := info.Uses[target]
			if obj == nil || !declaredOutside(obj, rng) {
				return true
			}
			if sortedLater(pass, fn, rng, obj) {
				return true
			}
			pass.Reportf(call.Pos(),
				"append to %q inside a map range: iteration order flows into the slice; collect and sort, or iterate sorted keys", obj.Name())
			return true
		}

		// method write on an outer builder/buffer/hash, or fmt.Fprint*
		// to an outer writer.
		sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if recv := analysis.RootIdent(sel.X); recv != nil {
			if obj := info.Uses[recv]; obj != nil && declaredOutside(obj, rng) &&
				isOrderedWrite(sel.Sel.Name) && isStreamType(obj.Type()) {
				pass.Reportf(call.Pos(),
					"%s.%s inside a map range: iteration order flows into the output bytes; iterate sorted keys instead", recv.Name, sel.Sel.Name)
				return true
			}
			// fmt.Fprint*(w, ...) with an outer writer argument.
			if pkgName, ok := info.Uses[recv].(*types.PkgName); ok &&
				pkgName.Imported().Path() == "fmt" && strings.HasPrefix(sel.Sel.Name, "Fprint") &&
				len(call.Args) > 0 {
				if w := analysis.RootIdent(call.Args[0]); w != nil {
					if obj := info.Uses[w]; obj != nil && declaredOutside(obj, rng) {
						pass.Reportf(call.Pos(),
							"fmt.%s into %q inside a map range: iteration order flows into the output bytes; iterate sorted keys instead", sel.Sel.Name, w.Name)
					}
				}
			}
		}
		return true
	})
}

// orderedWriteMethods are methods that append to a byte/string stream.
var orderedWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
}

func isOrderedWrite(name string) bool { return orderedWriteMethods[name] }

// isStreamType reports whether t is a stream accumulator: a
// strings.Builder, bytes.Buffer, hash.Hash implementation, encoder, or
// io.Writer-shaped named type.
func isStreamType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "strings", "bytes", "bufio", "encoding/json", "hash":
		return true
	}
	// Concrete hash implementations (crypto/sha256 etc.) and anything
	// with a Write([]byte) (int, error) method.
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Write" {
			return true
		}
	}
	return false
}

// declaredOutside reports whether obj is declared outside the range
// statement (so writes to it survive the loop).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedLater recognises the collect-then-sort idiom: after the range,
// the collected slice is passed to a sort.* or slices.* call in the
// same function, which erases the map's iteration order.
func sortedLater(pass *analysis.Pass, fn *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := analysis.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, a := range call.Args {
			if root := analysis.RootIdent(a); root != nil && info.Uses[root] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
