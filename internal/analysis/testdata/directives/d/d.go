// Package d exercises the //gtwvet:ignore machinery against a test
// analyzer that flags every call to flagme.
package d

func flagme() {}

func unsuppressed() {
	flagme() // diagnosed: no directive
}

func suppressedAbove() {
	//gtwvet:ignore testcheck reviewed, deliberate in this harness
	flagme()
}

func suppressedSameLine() {
	flagme() //gtwvet:ignore testcheck reviewed, trailing form
}

func wrongAnalyzer() {
	//gtwvet:ignore othercheck directive names a different analyzer
	flagme() // still diagnosed, and the directive is reported unused
}

//gtwvet:ignore testcheck this directive suppresses nothing and is reported unused
func nothingHere() {}

//gtwvet:ignore
func malformed() {}
