module fix.directives

go 1.24
