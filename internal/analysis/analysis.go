// Package analysis is the repository's static-analysis framework: a
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis shape (Analyzer, Pass, Diagnostic, a fixture-driven test
// harness) on top of go/ast and go/types, loaded through the go
// toolchain (see load.go). It exists because the execution plane rests
// on invariants no compiler checks — byte-identical reports at any
// shard count, PointDeps declarations matching real Options reads,
// pooled handles released on every path — and those must be enforced by
// machines on every commit, not re-derived by reviewers.
//
// The three shipped analyzers live in the pointdeps, determinism and
// poolrelease subpackages; cmd/gtwvet is the multichecker binary.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	// Pos is the finding's position in the program's file set.
	Pos token.Pos
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message states the defect and its consequence.
	Message string
}

// Analyzer is one invariant checker. Run is invoked once per
// main-module package; interprocedural analyzers reach the rest of the
// program through pass.Prog.
type Analyzer struct {
	// Name is the directive key (`//gtwvet:ignore <name> <reason>`).
	Name string
	// Doc is the one-line description shown by gtwvet -list.
	Doc string
	// Run reports the package's findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass is one (analyzer, package) execution.
type Pass struct {
	// Prog is the whole loaded program, for interprocedural walks.
	Prog *Program
	// Pkg is the package under analysis.
	Pkg *Package

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos: pos, Analyzer: p.analyzer.Name, Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over every package of the program, applies
// //gtwvet:ignore suppression, and returns the surviving diagnostics in
// file/position order.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Pkgs {
			pass := &Pass{Prog: prog, Pkg: pkg, analyzer: a, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	diags = suppress(prog, diags)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ignoreDirective is one parsed `//gtwvet:ignore <analyzer> <reason>`
// comment. A directive suppresses matching diagnostics on its own line
// and on the line immediately below it (so it can ride above a
// statement or trail one). The reason is mandatory: a suppression with
// no recorded justification is itself diagnosed.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

const directivePrefix = "//gtwvet:ignore"

// suppress drops diagnostics covered by ignore directives and appends a
// diagnostic for every malformed or unused directive, so directives
// cannot silently rot.
func suppress(prog *Program, diags []Diagnostic) []Diagnostic {
	var directives []ignoreDirective
	var malformed []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, directivePrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Pos: c.Pos(), Analyzer: "gtwvet",
							Message: "malformed ignore directive: want //gtwvet:ignore <analyzer> <reason>",
						})
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					directives = append(directives, ignoreDirective{
						file: pos.Filename, line: pos.Line,
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
						pos:      c.Pos(),
					})
				}
			}
		}
	}

	used := make([]bool, len(directives))
	var out []Diagnostic
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		matched := false
		for i, dir := range directives {
			if dir.analyzer != d.Analyzer || dir.file != pos.Filename {
				continue
			}
			if dir.line == pos.Line || dir.line == pos.Line-1 {
				used[i] = true
				matched = true
			}
		}
		if !matched {
			out = append(out, d)
		}
	}
	for i, dir := range directives {
		if !used[i] {
			out = append(out, Diagnostic{
				Pos: dir.pos, Analyzer: "gtwvet",
				Message: fmt.Sprintf("unused ignore directive for %q: nothing to suppress here", dir.analyzer),
			})
		}
	}
	return append(out, malformed...)
}

// ---------------------------------------------------------- ast utils --

// Unparen strips any number of parentheses from an expression.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// RootIdent returns the leftmost identifier of a selector/index chain
// (`a` for `a.b.c[i].d`, or `&a.b`), or nil when the chain is not
// rooted in one.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
