// Package core is a miniature of the real internal/core surface the
// pointdeps analyzer consumes: Options, the OptField tokens, the
// NewSweep/NewScenario constructors with their builder chains, and a
// shard-testbed constructor whose Options reads define the
// testbed-path dependencies.
package core

import "context"

type Options struct {
	WAN        int
	Extensions bool
	PEs        int
	Frames     int
	Flows      int

	Workers int // not a wire field: must never appear in a derived set
}

type OptField string

const (
	OptWAN        OptField = "wan"
	OptExtensions OptField = "ext"
	OptPEs        OptField = "pes"
	OptFrames     OptField = "frames"
	OptFlows      OptField = "flows"
)

type Testbed struct{ WAN int }

type Point struct{ Idx int }

type PointFunc func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error)

type MergeFunc func(rows []any) string

type Sweep struct {
	name      string
	run       PointFunc
	merge     MergeFunc
	noTestbed bool
	keyDeps   []OptField
}

func NewSweep(name, doc string, grid func(Options) []Point, run PointFunc, merge MergeFunc) *Sweep {
	return &Sweep{name: name, run: run, merge: merge}
}

func (s *Sweep) NoShardTestbed() *Sweep { s.noTestbed = true; return s }

func (s *Sweep) WirePoint(proto any) *Sweep { return s }

func (s *Sweep) PointDeps(fields ...OptField) *Sweep { s.keyDeps = fields; return s }

// NewShardTestbed is the shard-side testbed constructor; the fields it
// reads here are derived as the testbed-path dependencies of every
// sweep that does not opt out with NoShardTestbed.
func (s *Sweep) NewShardTestbed(opts Options) *Testbed {
	return &Testbed{WAN: opts.WAN}
}

type Scenario interface{ Name() string }

type runScenario struct {
	name string
	run  func(ctx context.Context, tb *Testbed, opts Options) (string, error)
}

func (s *runScenario) Name() string { return s.name }

func NewScenario(name, doc string, run func(ctx context.Context, tb *Testbed, opts Options) (string, error)) Scenario {
	return &runScenario{name: name, run: run}
}

func MustRegister(s any) {}
