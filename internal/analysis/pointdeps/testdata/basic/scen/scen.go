// Package scen registers sweeps whose PointDeps declarations range
// from exactly right to stale in both directions.
package scen

import (
	"context"
	"fmt"

	"fix.pointdeps/core"
)

func grid(core.Options) []core.Point { return nil }

func merge(rows []any) string { return fmt.Sprint(len(rows)) }

// Correct: the point reads Frames directly and Flows through a helper,
// runs on no shard testbed, and declares exactly that.
func init() {
	core.MustRegister(core.NewSweep("clean", "doc", grid,
		func(ctx context.Context, tb *core.Testbed, opts core.Options, pt core.Point) (any, error) {
			return opts.Frames + flowBudget(opts), nil
		}, merge).
		NoShardTestbed().
		WirePoint(0).
		PointDeps(core.OptFrames, core.OptFlows))
}

// flowBudget reads Options.Flows on behalf of its callers: the
// derivation must follow the call.
func flowBudget(o core.Options) int { return o.Flows * 2 }

// Under-declared: the point reads PEs (interprocedurally, through an
// alias) but the declaration omits it — the stale-cache bug.
func init() {
	core.MustRegister(core.NewSweep("stale", "doc", grid,
		func(ctx context.Context, tb *core.Testbed, opts core.Options, pt core.Point) (any, error) {
			o := opts
			return o.PEs + opts.Frames, nil
		}, merge).
		NoShardTestbed().
		WirePoint(0).
		PointDeps(core.OptFrames)) // want `sweep "stale": PointDeps omits fields its points read: pes`
}

// Over-declared: Flows is declared but nothing reads it — lost reuse,
// not a correctness bug, and diagnosed as such.
func init() {
	core.MustRegister(core.NewSweep("padded", "doc", grid,
		func(ctx context.Context, tb *core.Testbed, opts core.Options, pt core.Point) (any, error) {
			return opts.Frames, nil
		}, merge).
		NoShardTestbed().
		WirePoint(0).
		PointDeps(core.OptFrames, core.OptFlows)) // want `sweep "padded": PointDeps declares fields its points never read: flows`
}

// Shard-testbed path: the point itself reads nothing from opts, but it
// runs on a testbed the shard constructs from Options — the WAN read
// inside core.NewShardTestbed is part of its key.
func init() {
	core.MustRegister(core.NewSweep("shardtb", "doc", grid,
		func(ctx context.Context, tb *core.Testbed, opts core.Options, pt core.Point) (any, error) {
			return tb.WAN * pt.Idx, nil
		}, merge).
		WirePoint(0).
		PointDeps()) // want `sweep "shardtb": PointDeps omits fields its points read: wan`
}

// Reading a non-wire field (Workers) is not a dependency; declaring
// nothing is exactly right.
func init() {
	core.MustRegister(core.NewSweep("localonly", "doc", grid,
		func(ctx context.Context, tb *core.Testbed, opts core.Options, pt core.Point) (any, error) {
			return opts.Workers, nil
		}, merge).
		NoShardTestbed().
		WirePoint(0).
		PointDeps())
}

// A wrapped scenario has no declaration to check: it is audited (the
// report shows its derived reads) but never diagnosed.
func init() {
	core.MustRegister(core.NewScenario("wrapped", "doc",
		func(ctx context.Context, tb *core.Testbed, opts core.Options) (string, error) {
			return fmt.Sprint(opts.PEs), nil
		}))
}
