module fix.pointdeps

go 1.24
