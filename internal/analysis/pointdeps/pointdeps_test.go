package pointdeps_test

import (
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pointdeps"
)

func TestFixtureDiagnostics(t *testing.T) {
	analysistest.Run(t, "testdata/basic",
		pointdeps.New(pointdeps.Config{CorePath: "fix.pointdeps/core"}))
}

// The audit must expose declared vs. derived for every registration in
// the fixture, including the ones that diagnose clean.
func TestFixtureAudit(t *testing.T) {
	prog, err := analysis.Load("testdata/basic", "./...")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	entries, err := pointdeps.Audit(prog, pointdeps.Config{CorePath: "fix.pointdeps/core"})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}

	byName := map[string]pointdeps.Entry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	cases := []struct {
		name     string
		declared []string
		derived  []string
	}{
		{"clean", []string{"frames", "flows"}, []string{"frames", "flows"}},
		{"stale", []string{"frames"}, []string{"pes", "frames"}},
		{"padded", []string{"frames", "flows"}, []string{"frames"}},
		{"shardtb", []string{}, []string{"wan"}},
		{"localonly", []string{}, []string{}},
		{"wrapped", nil, []string{"pes"}},
	}
	for _, c := range cases {
		e, ok := byName[c.name]
		if !ok {
			t.Errorf("registration %q missing from audit", c.name)
			continue
		}
		if !reflect.DeepEqual(e.Declared, c.declared) {
			t.Errorf("%s: declared = %v, want %v", c.name, e.Declared, c.declared)
		}
		if !reflect.DeepEqual(e.Derived, c.derived) {
			t.Errorf("%s: derived = %v, want %v", c.name, e.Derived, c.derived)
		}
		if e.Escaped {
			t.Errorf("%s: unexpectedly escaped", c.name)
		}
	}
	if len(entries) != len(cases) {
		t.Errorf("audit found %d registrations, want %d", len(entries), len(cases))
	}
}
