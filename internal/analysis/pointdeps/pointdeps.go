// Package pointdeps derives, for every registered scenario, the set of
// cross-machine Options fields its grid points actually read, and
// checks the sweep's PointDeps(...) declaration against it.
//
// PointDeps narrows a grid point's content address in the
// coordinator's point store. The two failure modes are asymmetric:
//
//   - An under-declared field (the points read it, the declaration
//     omits it) is a correctness bug — two jobs differing only in that
//     field produce the same point key, so one silently receives the
//     other's cached results.
//   - An over-declared field (declared but never read) only loses
//     reuse — jobs that differ in an irrelevant option stop sharing
//     finished points.
//
// The derivation walks the point function interprocedurally: a read is
// a selector on the Options parameter (or any alias of it) naming one
// of the wire fields, in the function itself or in any main-module
// function the parameter is passed to. Sweeps that run on a shard-built
// testbed additionally inherit the fields the testbed constructor reads
// (derived from core's Sweep.NewShardTestbed, not hard-coded). If the
// Options value escapes into code the loader cannot see, the deriver
// goes conservative: every field is assumed read.
package pointdeps

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Config points the analyzer at the package that declares Options,
// NewSweep and NewScenario. Fixtures substitute their own mini core.
type Config struct {
	// CorePath is the import path of the core package
	// (default "repro/internal/core").
	CorePath string
}

// DefaultCorePath is the real repository's core package.
const DefaultCorePath = "repro/internal/core"

// optionFields maps Options struct fields to their OptField wire
// tokens, mirroring the constants in core/sweep.go. Only these fields
// participate in point content addresses; Testbed/Workers/Shards and
// the dispatcher never cross the wire.
var optionFields = map[string]string{
	"WAN":        "wan",
	"Extensions": "ext",
	"PEs":        "pes",
	"Frames":     "frames",
	"Flows":      "flows",
}

// depOrder is the canonical presentation order of derived sets.
var depOrder = []string{"wan", "ext", "pes", "frames", "flows"}

// New builds the pointdeps analyzer.
func New(cfg Config) *analysis.Analyzer {
	if cfg.CorePath == "" {
		cfg.CorePath = DefaultCorePath
	}
	return &analysis.Analyzer{
		Name: "pointdeps",
		Doc:  "PointDeps declarations must match the Options fields grid points actually read",
		Run: func(pass *analysis.Pass) error {
			regs, err := scanPackage(pass.Prog, pass.Pkg, cfg)
			if err != nil {
				return err
			}
			for _, r := range regs {
				diagnose(pass, r)
			}
			return nil
		},
	}
}

// Entry is one audited registration: declared vs. derived dependencies.
type Entry struct {
	// Name is the registered scenario name.
	Name string `json:"name"`
	// Kind is "sweep" (native grid) or "scenario" (wrapped one-point
	// plan, keyed on every field because it cannot declare).
	Kind string `json:"kind"`
	// Declared is the PointDeps declaration in canonical order; nil
	// means no declaration (the conservative every-field default).
	Declared []string `json:"declared"`
	// Derived is the analyzer's computed read set in canonical order.
	Derived []string `json:"derived"`
	// ShardTestbed reports whether points run on a shard-built testbed
	// (false after NoShardTestbed, and for scenarios that ignore tb).
	ShardTestbed bool `json:"shard_testbed"`
	// Escaped reports that the Options value reached code outside the
	// module, forcing the conservative every-field derivation.
	Escaped bool `json:"escaped,omitempty"`
	// Pos is the registration's source position.
	Pos string `json:"pos"`
}

// registration is one scanned Register/MustRegister chain plus its
// derivation, before presentation.
type registration struct {
	entry       Entry
	declared    map[string]bool
	hasDecl     bool
	derived     map[string]bool
	declPos     token.Pos // PointDeps call (or base call) position
	escapeNotes []string
}

// Audit scans every main-module package for scenario registrations and
// returns their declared-vs-derived entries sorted by name — the data
// behind `gtwvet -pointdeps-report` and the pinned audit test in
// internal/core.
func Audit(prog *analysis.Program, cfg Config) ([]Entry, error) {
	if cfg.CorePath == "" {
		cfg.CorePath = DefaultCorePath
	}
	var out []Entry
	for _, pkg := range prog.Pkgs {
		regs, err := scanPackage(prog, pkg, cfg)
		if err != nil {
			return nil, err
		}
		for _, r := range regs {
			out = append(out, r.entry)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// diagnose reports declared-vs-derived mismatches for one registration.
// Only sweeps with an explicit PointDeps declaration are diagnosed: an
// undeclared sweep keys on every field, which is always correct, and a
// wrapped scenario has nothing to declare.
func diagnose(pass *analysis.Pass, r *registration) {
	if !r.hasDecl {
		return
	}
	var missing, extra []string
	for _, dep := range depOrder {
		if r.derived[dep] && !r.declared[dep] {
			missing = append(missing, dep)
		}
		if r.declared[dep] && !r.derived[dep] {
			extra = append(extra, dep)
		}
	}
	if len(missing) > 0 {
		note := ""
		if r.entry.Escaped {
			note = fmt.Sprintf(" (conservative: options escape analysis at %s)", strings.Join(r.escapeNotes, "; "))
		}
		pass.Reportf(r.declPos,
			"sweep %q: PointDeps omits fields its points read: %s — an under-declaration serves stale cached points across jobs%s",
			r.entry.Name, strings.Join(missing, ", "), note)
	}
	if len(extra) > 0 {
		pass.Reportf(r.declPos,
			"sweep %q: PointDeps declares fields its points never read: %s — over-declaration loses point-store reuse",
			r.entry.Name, strings.Join(extra, ", "))
	}
}

// ----------------------------------------------------------- scanning --

// scanPackage finds every Register/MustRegister call in pkg whose
// argument is a NewSweep/NewScenario construction chain and derives its
// dependencies.
func scanPackage(prog *analysis.Program, pkg *analysis.Package, cfg Config) ([]*registration, error) {
	core := prog.Package(cfg.CorePath)
	if core == nil {
		return nil, nil // core not in this load; nothing to check
	}
	optType := lookupType(core, "Options")
	if optType == nil {
		return nil, fmt.Errorf("pointdeps: %s has no Options type", cfg.CorePath)
	}
	tbDeps, tbErr := testbedDeps(prog, core, optType)
	if tbErr != nil {
		return nil, tbErr
	}

	var regs []*registration
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			callee := calleeFunc(pkg, call)
			if callee == nil || (callee.Name() != "Register" && callee.Name() != "MustRegister") {
				return true
			}
			r, err := scanChain(prog, pkg, cfg, optType, tbDeps, call.Args[0])
			if err == nil && r != nil {
				regs = append(regs, r)
			}
			return true
		})
	}
	return regs, nil
}

// scanChain decomposes `NewSweep(...).NoShardTestbed().WirePoint(x).
// PointDeps(...)`-style chains (and plain NewScenario calls) into a
// registration. A nil, nil return means the argument is not a
// recognisable construction chain (e.g. a variable).
func scanChain(prog *analysis.Program, pkg *analysis.Package, cfg Config,
	optType types.Type, tbDeps map[string]bool, arg ast.Expr) (*registration, error) {

	noShardTestbed := false
	var declArgs []ast.Expr
	hasDecl := false
	var declPos token.Pos

	cur, ok := analysis.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	var base *ast.CallExpr
	for {
		fn := calleeFunc(pkg, cur)
		if fn == nil {
			return nil, nil
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == cfg.CorePath &&
			(fn.Name() == "NewSweep" || fn.Name() == "NewScenario") {
			base = cur
			break
		}
		// A chained builder method: record it and descend into its
		// receiver, which must itself be a call.
		sel, ok := cur.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		switch fn.Name() {
		case "PointDeps":
			if !hasDecl { // outermost declaration wins
				hasDecl = true
				declArgs = cur.Args
				declPos = sel.Sel.Pos()
			}
		case "NoShardTestbed":
			noShardTestbed = true
		}
		recv, ok := analysis.Unparen(sel.X).(*ast.CallExpr)
		if !ok {
			return nil, nil
		}
		cur = recv
	}

	baseFn := calleeFunc(pkg, base)
	isSweep := baseFn.Name() == "NewSweep"
	name := constString(pkg, base.Args[0])
	if name == "" {
		return nil, nil
	}
	var runExpr ast.Expr
	if isSweep {
		if len(base.Args) < 5 {
			return nil, nil
		}
		runExpr = base.Args[3]
	} else {
		if len(base.Args) < 3 {
			return nil, nil
		}
		runExpr = base.Args[2]
	}

	d := &deriver{prog: prog, optType: optType, deps: make(map[string]bool),
		visited: make(map[visitKey]bool)}
	// Options parameter position: NewSweep's PointFunc is
	// (ctx, tb, opts, pt); NewScenario's run is (ctx, tb, opts).
	tbUsed := d.deriveRun(pkg, runExpr, 2, 1)

	r := &registration{
		derived: d.deps, hasDecl: hasDecl, declPos: declPos,
		declared: make(map[string]bool), escapeNotes: d.escapeNotes,
	}
	if !hasDecl {
		r.declPos = base.Pos()
	}
	for _, a := range declArgs {
		if v := constString(pkg, a); v != "" {
			r.declared[v] = true
		}
	}

	shardTestbed := isSweep && !noShardTestbed
	if shardTestbed && tbUsed {
		// Points run on a testbed the shard builds from Options; the
		// constructor's own reads are part of every point's key.
		for dep := range tbDeps {
			d.deps[dep] = true
		}
	}
	if !isSweep && tbUsed {
		// A wrapped scenario's single point runs on an engine-built
		// testbed constructed the same way.
		for dep := range tbDeps {
			d.deps[dep] = true
		}
	}

	kind := "scenario"
	if isSweep {
		kind = "sweep"
	}
	r.entry = Entry{
		Name: name, Kind: kind,
		Derived:      canonical(d.deps),
		ShardTestbed: shardTestbed && tbUsed,
		Escaped:      d.escaped,
		Pos:          prog.Fset.Position(base.Pos()).String(),
	}
	if hasDecl {
		r.entry.Declared = canonical(r.declared)
	}
	return r, nil
}

// testbedDeps derives the Options fields the shard-testbed construction
// path reads, from core's own Sweep.NewShardTestbed source — so a
// future edit to the constructor cannot silently widen real
// dependencies past declared ones.
func testbedDeps(prog *analysis.Program, core *analysis.Package, optType types.Type) (map[string]bool, error) {
	for fn, src := range allMethods(prog, core, "NewShardTestbed") {
		d := &deriver{prog: prog, optType: optType, deps: make(map[string]bool),
			visited: make(map[visitKey]bool)}
		d.walkFuncDecl(src, fn, 0)
		return d.deps, nil
	}
	// Fixture cores without the method: shard testbeds contribute
	// nothing, which keeps small fixtures small.
	return map[string]bool{}, nil
}

// allMethods yields (fn, source) for every method of the given name
// declared in pkg.
func allMethods(prog *analysis.Program, pkg *analysis.Package, name string) map[*types.Func]*analysis.FuncSource {
	out := make(map[*types.Func]*analysis.FuncSource)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != name {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = &analysis.FuncSource{Decl: fd, Pkg: pkg}
			}
		}
	}
	return out
}

// ---------------------------------------------------------- derivation --

// visitKey guards interprocedural recursion: one visit per
// (function, options-parameter) pair.
type visitKey struct {
	fn    *types.Func
	param int
}

// deriver accumulates the Options fields read along one point path.
type deriver struct {
	prog        *analysis.Program
	optType     types.Type
	deps        map[string]bool
	escaped     bool
	escapeNotes []string
	visited     map[visitKey]bool
}

// maxDepth bounds interprocedural recursion; point paths in the tree
// are at most a few calls deep, and a runaway recursion means the
// derivation is effectively global anyway.
const maxDepth = 12

// deriveRun walks a run-function expression (func literal or reference)
// whose parameter optIdx is the Options value, and reports whether the
// testbed parameter tbIdx is used at all.
func (d *deriver) deriveRun(pkg *analysis.Package, runExpr ast.Expr, optIdx, tbIdx int) (tbUsed bool) {
	var body *ast.BlockStmt
	var params []*types.Var
	switch e := analysis.Unparen(runExpr).(type) {
	case *ast.FuncLit:
		body = e.Body
		params = litParams(pkg, e)
	default:
		if fn := resolveFuncExpr(pkg, runExpr); fn != nil {
			if src := d.prog.FuncDecl(fn); src != nil {
				body = src.Decl.Body
				params = declParams(src)
				pkg = src.Pkg
			}
		}
	}
	if body == nil || len(params) <= optIdx {
		d.escape("unresolvable run function")
		return true
	}
	d.walk(pkg, body, map[types.Object]bool{params[optIdx]: true}, 0)
	if tbIdx < len(params) && params[tbIdx] != nil {
		tbUsed = objUsed(pkg, body, params[tbIdx])
	}
	return tbUsed
}

// walkFuncDecl derives the reads of fn's Options parameter at position
// param.
func (d *deriver) walkFuncDecl(src *analysis.FuncSource, fn *types.Func, param int) {
	key := visitKey{fn, param}
	if d.visited[key] || src.Decl.Body == nil {
		return
	}
	d.visited[key] = true
	params := declParams(src)
	if param >= len(params) || params[param] == nil {
		return
	}
	d.walk(src.Pkg, src.Decl.Body, map[types.Object]bool{params[param]: true}, 0)
}

// walk scans body for reads of the tracked Options objects: direct
// field selectors, aliases, and calls that forward the value. Any
// other use of a tracked object is an escape, which degrades the
// derivation to "every field".
func (d *deriver) walk(pkg *analysis.Package, body ast.Node, tracked map[types.Object]bool, depth int) {
	if depth > maxDepth {
		d.escape("recursion limit")
		return
	}
	handled := make(map[*ast.Ident]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := analysis.Unparen(x.X).(*ast.Ident); ok && tracked[pkg.Info.Uses[id]] {
				handled[id] = true
				if dep, ok := optionFields[x.Sel.Name]; ok {
					d.deps[dep] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				id, ok := analysis.Unparen(rhs).(*ast.Ident)
				if !ok || !tracked[pkg.Info.Uses[id]] || i >= len(x.Lhs) {
					continue
				}
				handled[id] = true
				if lhs, ok := x.Lhs[i].(*ast.Ident); ok {
					if obj := pkg.Info.Defs[lhs]; obj != nil {
						tracked[obj] = true // alias via :=
					} else if obj := pkg.Info.Uses[lhs]; obj != nil {
						tracked[obj] = true // alias via =
					}
				} else {
					d.escape(d.prog.Fset.Position(rhs.Pos()).String())
				}
			}
		case *ast.CallExpr:
			for argIdx, a := range x.Args {
				id := trackedArg(pkg, tracked, a)
				if id == nil {
					continue
				}
				handled[id] = true
				d.forward(pkg, x, argIdx, depth)
			}
		}
		return true
	})

	// Any remaining mention of a tracked object is a use the deriver
	// does not model (stored whole into a struct, returned, sent on a
	// channel, captured address …) — go conservative.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || handled[id] {
			return true
		}
		if tracked[pkg.Info.Uses[id]] {
			d.escape(d.prog.Fset.Position(id.Pos()).String())
		}
		return true
	})
}

// forward recurses into the callee receiving a tracked Options value at
// argument position argIdx.
func (d *deriver) forward(pkg *analysis.Package, call *ast.CallExpr, argIdx int, depth int) {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		d.escape(d.prog.Fset.Position(call.Pos()).String())
		return
	}
	src := d.prog.FuncDecl(fn)
	if src == nil || src.Decl.Body == nil {
		d.escape(fmt.Sprintf("%s calls %s", d.prog.Fset.Position(call.Pos()), fn.FullName()))
		return
	}
	key := visitKey{fn, argIdx}
	if d.visited[key] {
		return
	}
	d.visited[key] = true
	params := declParams(src)
	if argIdx >= len(params) || params[argIdx] == nil {
		d.escape(fmt.Sprintf("variadic or mismatched call at %s", d.prog.Fset.Position(call.Pos())))
		return
	}
	d.walk(src.Pkg, src.Decl.Body, map[types.Object]bool{params[argIdx]: true}, depth+1)
}

// escape records why the deriver went conservative and marks every
// field as read.
func (d *deriver) escape(note string) {
	d.escaped = true
	if len(d.escapeNotes) < 4 {
		d.escapeNotes = append(d.escapeNotes, note)
	}
	for _, dep := range optionFields {
		d.deps[dep] = true
	}
}

// ------------------------------------------------------------- helpers --

// calleeFunc resolves a call's callee to its function object (plain
// call, package-qualified call, or method call).
func calleeFunc(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch fun := analysis.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[fun]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// resolveFuncExpr resolves an identifier or selector naming a function.
func resolveFuncExpr(pkg *analysis.Package, e ast.Expr) *types.Func {
	switch x := analysis.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[x].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[x.Sel].(*types.Func)
		return fn
	}
	return nil
}

// trackedArg reports the tracked identifier passed (directly or by
// address) as this argument, or nil.
func trackedArg(pkg *analysis.Package, tracked map[types.Object]bool, a ast.Expr) *ast.Ident {
	e := analysis.Unparen(a)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = analysis.Unparen(u.X)
	}
	if id, ok := e.(*ast.Ident); ok && tracked[pkg.Info.Uses[id]] {
		return id
	}
	return nil
}

// litParams flattens a func literal's parameter objects in order.
func litParams(pkg *analysis.Package, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	for _, field := range lit.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			v, _ := pkg.Info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// declParams flattens a declared function's parameter objects in order.
func declParams(src *analysis.FuncSource) []*types.Var {
	var out []*types.Var
	for _, field := range src.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			v, _ := src.Pkg.Info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// objUsed reports whether obj is mentioned anywhere in body.
func objUsed(pkg *analysis.Package, body ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// constString evaluates a constant string expression, or returns "".
func constString(pkg *analysis.Package, e ast.Expr) string {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

// canonical renders a dep set in wan/ext/pes/frames/flows order.
func canonical(set map[string]bool) []string {
	out := []string{}
	for _, dep := range depOrder {
		if set[dep] {
			out = append(out, dep)
		}
	}
	return out
}

// lookupType resolves a named type declared in pkg.
func lookupType(pkg *analysis.Package, name string) types.Type {
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	return obj.Type()
}
