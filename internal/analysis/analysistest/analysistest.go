// Package analysistest runs analyzers over self-contained fixture
// modules and checks their diagnostics against `// want` comments,
// mirroring the golang.org/x/tools harness of the same name on the
// repository's dependency-free framework.
//
// A fixture is a directory with its own go.mod (stdlib imports only,
// so tests run offline) whose sources annotate every expected
// diagnostic on the line it is reported:
//
//	rand.Intn(6) // want `global math/rand draw`
//
// The quoted text is a regular expression matched against the
// diagnostic message. Every diagnostic must be annotated and every
// annotation must fire; either direction of drift fails the test.
package analysistest

import (
	"regexp"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the quoted patterns of a want comment. Both string
// forms are allowed: `// want "re"` and "// want `re`".
var wantRe = regexp.MustCompile(`//\s*want\s+(.+)`)

var patRe = regexp.MustCompile("\"([^\"]*)\"|`([^`]*)`")

// expectation is one want pattern at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture module rooted at dir, executes the analyzers,
// and matches diagnostics against the fixture's want annotations.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	prog, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	var wants []*expectation
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, pm := range patRe.FindAllStringSubmatch(m[1], -1) {
						pat := pm[1]
						if pat == "" {
							pat = pm[2] // backtick-quoted alternative
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{
							file: pos.Filename, line: pos.Line, re: re, raw: pat,
						})
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
