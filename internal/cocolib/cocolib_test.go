package cocolib

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mpi"
)

func TestUniformMesh(t *testing.T) {
	m := UniformMesh(5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Nodes[0] != 0 || m.Nodes[4] != 1 || m.Nodes[2] != 0.5 {
		t.Errorf("nodes = %v", m.Nodes)
	}
}

func TestMeshValidation(t *testing.T) {
	if err := (InterfaceMesh{Nodes: []float64{0}}).Validate(); err == nil {
		t.Error("single node accepted")
	}
	if err := (InterfaceMesh{Nodes: []float64{0, 0.5, 0.5, 1}}).Validate(); err == nil {
		t.Error("duplicate nodes accepted")
	}
	if err := (InterfaceMesh{Nodes: []float64{-0.1, 1}}).Validate(); err == nil {
		t.Error("out-of-range nodes accepted")
	}
}

func TestInterpolateExactForLinear(t *testing.T) {
	src := UniformMesh(11)
	dst := UniformMesh(7)
	field := make([]float64, 11)
	for i, x := range src.Nodes {
		field[i] = 3 + 2*x
	}
	out, err := Interpolate(src, field, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range dst.Nodes {
		want := 3 + 2*x
		if math.Abs(out[i]-want) > 1e-12 {
			t.Fatalf("linear field not exact at %v: %v vs %v", x, out[i], want)
		}
	}
}

// Property: interpolation of a constant field onto any target mesh is
// exactly the constant, and values never exceed the source bounds
// (linear interpolation is monotonicity-preserving per segment).
func TestInterpolateProperties(t *testing.T) {
	f := func(vals []float64, nDstRaw uint8) bool {
		if len(vals) < 2 {
			return true
		}
		if len(vals) > 32 {
			vals = vals[:32]
		}
		for i := range vals {
			if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
				return true
			}
		}
		src := UniformMesh(len(vals))
		dst := UniformMesh(2 + int(nDstRaw%40))
		out, err := Interpolate(src, vals, dst)
		if err != nil {
			return false
		}
		min, max := vals[0], vals[0]
		for _, v := range vals {
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		for _, v := range out {
			if v < min-1e-9 || v > max+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInterpolateValidation(t *testing.T) {
	if _, err := Interpolate(UniformMesh(4), make([]float64, 3), UniformMesh(4)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestIntegralOn(t *testing.T) {
	m := UniformMesh(101)
	field := make([]float64, 101)
	for i, x := range m.Nodes {
		field[i] = x // integral of x over [0,1] = 0.5
	}
	if got := IntegralOn(m, field); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("integral = %v", got)
	}
}

func TestCouplerHandshakeAndExchange(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		var mesh InterfaceMesh
		if c.Rank() == 0 {
			mesh = UniformMesh(11)
		} else {
			mesh = UniformMesh(17) // non-matching
		}
		cp, err := NewCoupler(c, 1-c.Rank(), 9, mesh)
		if err != nil {
			return err
		}
		field := make([]float64, len(mesh.Nodes))
		for i, x := range mesh.Nodes {
			field[i] = float64(c.Rank()+1) * x // rank 0 sends x, rank 1 sends 2x
		}
		got, err := cp.Exchange(field)
		if err != nil {
			return err
		}
		// Linear fields cross the non-matching interface exactly.
		wantScale := 2.0
		if c.Rank() == 1 {
			wantScale = 1.0
		}
		for i, x := range mesh.Nodes {
			if math.Abs(got[i]-wantScale*x) > 1e-12 {
				t.Errorf("rank %d node %v: got %v want %v", c.Rank(), x, got[i], wantScale*x)
			}
		}
		steps, bytes := cp.Stats()
		if steps != 1 || bytes == 0 {
			t.Errorf("stats = %d, %d", steps, bytes)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanelDeflectsUnderUniformLoad(t *testing.T) {
	m := UniformMesh(21)
	p := NewPanelSolver(m)
	load := make([]float64, 21)
	for i := range load {
		load[i] = 1
	}
	for s := 0; s < 3000; s++ {
		if err := p.Step(0.001, load); err != nil {
			t.Fatal(err)
		}
	}
	// Pinned ends, maximum near the center, symmetric.
	if p.W[0] != 0 || p.W[20] != 0 {
		t.Error("pinned ends moved")
	}
	if p.W[10] <= 0 {
		t.Errorf("center deflection %v, want > 0 under positive load", p.W[10])
	}
	if math.Abs(p.W[5]-p.W[15]) > 1e-6 {
		t.Errorf("asymmetric deflection: %v vs %v", p.W[5], p.W[15])
	}
	if p.W[10] <= p.W[5] {
		t.Error("deflection not peaked at center")
	}
}

func TestPanelValidation(t *testing.T) {
	p := NewPanelSolver(UniformMesh(5))
	if err := p.Step(0.01, make([]float64, 3)); err == nil {
		t.Error("bad load length accepted")
	}
}

func TestChannelPressureRespondsToDeflection(t *testing.T) {
	m := UniformMesh(11)
	f := NewChannelSolver(m, 1.0)
	flat := make([]float64, 11)
	if err := f.Step(flat); err != nil {
		t.Fatal(err)
	}
	base := append([]float64(nil), f.Pressure...)
	// Pressure drops along the channel.
	if base[10] >= base[0] {
		t.Error("no streamwise pressure drop")
	}
	// An opened channel (positive deflection) lowers the pressure.
	open := make([]float64, 11)
	open[5] = 0.5
	if err := f.Step(open); err != nil {
		t.Fatal(err)
	}
	if f.Pressure[5] >= base[5] {
		t.Error("deflection did not lower local pressure")
	}
	if err := f.Step(make([]float64, 3)); err == nil {
		t.Error("bad deflection length accepted")
	}
}

func TestRunFSIConverges(t *testing.T) {
	shaper := mpi.LinkShaper{Latency: 20 * time.Microsecond, Bps: 1e9}
	res, err := RunFSI([2]string{"vpp-fluid", "t3e-structure"}, shaper, 33, 21, 2000, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDeflection <= 0 {
		t.Error("panel did not deflect under flow pressure")
	}
	// Static aeroelastic equilibrium: the per-step change has decayed
	// to noise level.
	if res.TipResidual > 1e-4 {
		t.Errorf("FSI not converged: residual %g", res.TipResidual)
	}
	if res.Steps != 2000 || res.BytesExchanged == 0 {
		t.Errorf("exchange stats: %d steps, %d bytes", res.Steps, res.BytesExchanged)
	}
}

func TestRunFSIValidation(t *testing.T) {
	if _, err := RunFSI([2]string{"a", "b"}, nil, 10, 10, 0, 0.01); err == nil {
		t.Error("zero steps accepted")
	}
}
