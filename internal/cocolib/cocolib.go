// Package cocolib reimplements the MetaCISPAR project's coupling
// interface: COCOLIB, "an open interface that allows the coupling of
// industrial structural mechanics and fluid dynamics codes", ported to
// the metacomputing environment (section 3 of the paper).
//
// The library couples two independently written solvers through a
// shared interface mesh: each solver registers the quantities it
// produces and consumes on the coupling boundary; the library
// interpolates between the (generally non-matching) surface
// discretizations and performs the exchange over the metacomputing MPI,
// so the codes can run on different machines of the metacomputer.
//
// A complete fluid-structure-interaction pair is included: a 1-D
// channel-flow pressure solver (the "CFD code") and an elastic-panel
// solver (the "structural mechanics code"), coupled through COCOLIB the
// way MetaCISPAR coupled industrial codes.
package cocolib

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// InterfaceMesh is a 1-D parameterization of the coupling surface:
// node positions in [0, 1] (sorted, unique).
type InterfaceMesh struct {
	Nodes []float64
}

// UniformMesh builds an n-node uniform interface mesh.
func UniformMesh(n int) InterfaceMesh {
	if n < 2 {
		panic("cocolib: interface mesh needs >= 2 nodes")
	}
	nodes := make([]float64, n)
	for i := range nodes {
		nodes[i] = float64(i) / float64(n-1)
	}
	return InterfaceMesh{Nodes: nodes}
}

// Validate checks mesh invariants.
func (m InterfaceMesh) Validate() error {
	if len(m.Nodes) < 2 {
		return fmt.Errorf("cocolib: mesh has %d nodes, need >= 2", len(m.Nodes))
	}
	for i := 1; i < len(m.Nodes); i++ {
		if m.Nodes[i] <= m.Nodes[i-1] {
			return fmt.Errorf("cocolib: mesh nodes not strictly increasing at %d", i)
		}
	}
	if m.Nodes[0] < 0 || m.Nodes[len(m.Nodes)-1] > 1 {
		return fmt.Errorf("cocolib: mesh nodes outside [0,1]")
	}
	return nil
}

// Interpolate maps a nodal field from mesh src onto mesh dst by
// piecewise-linear interpolation (clamped at the ends). Constant
// fields map exactly; linear fields map exactly on interior nodes.
func Interpolate(src InterfaceMesh, field []float64, dst InterfaceMesh) ([]float64, error) {
	if len(field) != len(src.Nodes) {
		return nil, fmt.Errorf("cocolib: field length %d != %d mesh nodes", len(field), len(src.Nodes))
	}
	out := make([]float64, len(dst.Nodes))
	for i, x := range dst.Nodes {
		out[i] = sample(src, field, x)
	}
	return out, nil
}

func sample(m InterfaceMesh, field []float64, x float64) float64 {
	n := len(m.Nodes)
	if x <= m.Nodes[0] {
		return field[0]
	}
	if x >= m.Nodes[n-1] {
		return field[n-1]
	}
	// Binary search for the segment.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if m.Nodes[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - m.Nodes[lo]) / (m.Nodes[hi] - m.Nodes[lo])
	return field[lo]*(1-t) + field[hi]*t
}

// IntegralOn computes the trapezoidal integral of a nodal field over
// its mesh — used to check load conservation across the coupling.
func IntegralOn(m InterfaceMesh, field []float64) float64 {
	var s float64
	for i := 1; i < len(m.Nodes); i++ {
		s += 0.5 * (field[i] + field[i-1]) * (m.Nodes[i] - m.Nodes[i-1])
	}
	return s
}

// Coupler is one side's handle on a COCOLIB coupling: it knows the
// local and remote interface meshes and exchanges nodal fields over an
// MPI communicator with a fixed peer rank.
type Coupler struct {
	comm   *mpi.Comm
	peer   int
	local  InterfaceMesh
	remote InterfaceMesh
	tag    int
	steps  int
	bytes  int64
}

// meshTag is the handshake tag for mesh exchange.
const meshTag = 31

// NewCoupler creates the coupling handle and performs the mesh
// handshake: both sides exchange their interface discretizations, so
// each side can interpolate incoming fields itself (COCOLIB's
// "loose coupling of non-matching grids").
func NewCoupler(c *mpi.Comm, peer, tag int, local InterfaceMesh) (*Coupler, error) {
	if err := local.Validate(); err != nil {
		return nil, err
	}
	if err := c.SendFloat64s(peer, meshTag, local.Nodes); err != nil {
		return nil, err
	}
	nodes, err := c.RecvFloat64s(peer, meshTag)
	if err != nil {
		return nil, err
	}
	remote := InterfaceMesh{Nodes: nodes}
	if err := remote.Validate(); err != nil {
		return nil, fmt.Errorf("cocolib: peer sent invalid mesh: %w", err)
	}
	return &Coupler{comm: c, peer: peer, local: local, remote: remote, tag: tag}, nil
}

// Exchange sends the local nodal field and receives the peer's,
// interpolated onto the local mesh. Both sides must call Exchange the
// same number of times (classic coupled-timestep lockstep).
func (cp *Coupler) Exchange(field []float64) ([]float64, error) {
	if len(field) != len(cp.local.Nodes) {
		return nil, fmt.Errorf("cocolib: field length %d != local mesh %d", len(field), len(cp.local.Nodes))
	}
	msg, err := cp.comm.Sendrecv(cp.peer, cp.tag, mpi.Float64sToBytes(field), cp.peer, cp.tag)
	if err != nil {
		return nil, err
	}
	incoming, err := mpi.BytesToFloat64s(msg.Data)
	if err != nil {
		return nil, err
	}
	if len(incoming) != len(cp.remote.Nodes) {
		return nil, fmt.Errorf("cocolib: peer field length %d != remote mesh %d", len(incoming), len(cp.remote.Nodes))
	}
	cp.steps++
	cp.bytes += int64(8 * (len(field) + len(incoming)))
	return Interpolate(cp.remote, incoming, cp.local)
}

// Stats reports exchanges performed and bytes moved.
func (cp *Coupler) Stats() (steps int, bytes int64) { return cp.steps, cp.bytes }

// ---------------------------------------------------------------------
// The demonstration FSI pair.

// PanelSolver is the "structural mechanics code": an elastic panel
// (pinned at both ends) deflecting under a pressure load, integrated
// with damped explicit dynamics of the discrete Laplacian.
type PanelSolver struct {
	Mesh      InterfaceMesh
	W         []float64 // deflection at nodes
	v         []float64 // velocity
	Stiffness float64
	Damping   float64
}

// NewPanelSolver builds a panel on the given mesh.
func NewPanelSolver(m InterfaceMesh) *PanelSolver {
	return &PanelSolver{
		Mesh:      m,
		W:         make([]float64, len(m.Nodes)),
		v:         make([]float64, len(m.Nodes)),
		Stiffness: 4000, Damping: 8,
	}
}

// Step advances the panel by dt under the nodal pressure load.
func (p *PanelSolver) Step(dt float64, pressure []float64) error {
	n := len(p.Mesh.Nodes)
	if len(pressure) != n {
		return fmt.Errorf("cocolib: pressure length %d != %d", len(pressure), n)
	}
	h := 1.0 / float64(n-1)
	for i := 1; i < n-1; i++ {
		lap := (p.W[i-1] - 2*p.W[i] + p.W[i+1]) / (h * h)
		acc := p.Stiffness*lap/1e4 + pressure[i] - p.Damping*p.v[i]
		p.v[i] += dt * acc
	}
	for i := 1; i < n-1; i++ {
		p.W[i] += dt * p.v[i]
	}
	p.W[0], p.W[n-1] = 0, 0 // pinned
	return nil
}

// ChannelSolver is the "fluid dynamics code": quasi-1-D channel flow
// whose local pressure rises where the deflected panel narrows the
// channel (linearized Bernoulli closure).
type ChannelSolver struct {
	Mesh     InterfaceMesh
	Inlet    float64 // inlet pressure
	Gain     float64 // pressure response to narrowing
	Pressure []float64
}

// NewChannelSolver builds the fluid side on the given mesh.
func NewChannelSolver(m InterfaceMesh, inlet float64) *ChannelSolver {
	return &ChannelSolver{
		Mesh: m, Inlet: inlet, Gain: 0.5,
		Pressure: make([]float64, len(m.Nodes)),
	}
}

// Step computes the pressure field given the panel deflection sampled
// on the fluid mesh (positive deflection opens the channel and lowers
// the pressure).
func (f *ChannelSolver) Step(deflection []float64) error {
	n := len(f.Mesh.Nodes)
	if len(deflection) != n {
		return fmt.Errorf("cocolib: deflection length %d != %d", len(deflection), n)
	}
	for i := 0; i < n; i++ {
		x := f.Mesh.Nodes[i]
		base := f.Inlet * (1 - 0.3*x) // streamwise pressure drop
		f.Pressure[i] = base - f.Gain*f.Inlet*deflection[i]
	}
	return nil
}

// FSIResult summarizes a coupled MetaCISPAR-style run.
type FSIResult struct {
	Steps          int
	BytesExchanged int64
	MaxDeflection  float64
	TipResidual    float64 // last-step deflection change (convergence)
}

// RunFSI couples the two solvers over MPI (rank 0 = fluid, rank 1 =
// structure) on the given hosts with WAN shaping, using non-matching
// interface meshes, and returns the converged state.
func RunFSI(hosts [2]string, shaper mpi.Shaper, fluidNodes, structNodes, steps int, dt float64) (FSIResult, error) {
	if steps <= 0 || dt <= 0 {
		return FSIResult{}, fmt.Errorf("cocolib: bad FSI parameters steps=%d dt=%v", steps, dt)
	}
	var res FSIResult
	err := mpi.RunHosts(hosts[:], shaper, nil, func(c *mpi.Comm) error {
		switch c.Rank() {
		case 0: // fluid
			mesh := UniformMesh(fluidNodes)
			cp, err := NewCoupler(c, 1, 41, mesh)
			if err != nil {
				return err
			}
			fluid := NewChannelSolver(mesh, 1.0)
			deflection := make([]float64, fluidNodes)
			for s := 0; s < steps; s++ {
				if err := fluid.Step(deflection); err != nil {
					return err
				}
				// Send pressure, receive deflection.
				deflection, err = cp.Exchange(fluid.Pressure)
				if err != nil {
					return err
				}
			}
			return nil
		case 1: // structure
			mesh := UniformMesh(structNodes)
			cp, err := NewCoupler(c, 0, 41, mesh)
			if err != nil {
				return err
			}
			panel := NewPanelSolver(mesh)
			var prevMax float64
			for s := 0; s < steps; s++ {
				// Send deflection, receive pressure.
				pressure, err := cp.Exchange(panel.W)
				if err != nil {
					return err
				}
				if err := panel.Step(dt, pressure); err != nil {
					return err
				}
				var max float64
				for _, w := range panel.W {
					if math.Abs(w) > max {
						max = math.Abs(w)
					}
				}
				if s == steps-1 {
					res.TipResidual = math.Abs(max - prevMax)
					res.MaxDeflection = max
				}
				prevMax = max
			}
			res.Steps, res.BytesExchanged = cp.Stats()
			return nil
		}
		return nil
	})
	return res, err
}
