package fire

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/volume"
)

// MotionOptions tunes EstimateShift.
type MotionOptions struct {
	// MaxIter bounds the Gauss-Newton iterations (default 8).
	MaxIter int
	// Tol stops iterating when the update norm falls below it
	// (default 1e-3 voxels).
	Tol float64
	// Border excludes this many voxels at each face from the fit
	// (default 2), avoiding clamped-edge artifacts.
	Border int
}

func (o *MotionOptions) fill() {
	if o.MaxIter == 0 {
		o.MaxIter = 8
	}
	if o.Tol == 0 {
		o.Tol = 1e-3
	}
	if o.Border == 0 {
		o.Border = 2
	}
}

// EstimateShift estimates the rigid translation (in voxels) that maps
// ref onto cur, using the iterative linear scheme the paper describes:
// linearize the image around the current estimate with spatial
// gradients and solve the 3x3 normal equations, then re-resample.
// Small head movements (a few voxels) are the intended regime.
func EstimateShift(ref, cur *volume.Volume, opts MotionOptions) ([3]float64, error) {
	if !ref.SameShape(cur) {
		return [3]float64{}, fmt.Errorf("fire: shape mismatch %dx%dx%d vs %dx%dx%d",
			ref.NX, ref.NY, ref.NZ, cur.NX, cur.NY, cur.NZ)
	}
	opts.fill()
	var d [3]float64
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Resample cur back by the current estimate.
		moved := cur.Shift(-d[0], -d[1], -d[2])
		// Accumulate J^T J and J^T r over interior voxels, where J
		// columns are the spatial gradients of the moved image and
		// r is the intensity residual vs. the reference.
		var jtj [3][3]float64
		var jtr [3]float64
		b := opts.Border
		for z := b; z < ref.NZ-b; z++ {
			for y := b; y < ref.NY-b; y++ {
				for x := b; x < ref.NX-b; x++ {
					gx, gy, gz := moved.Gradient(x, y, z)
					r := float64(ref.At(x, y, z) - moved.At(x, y, z))
					g := [3]float64{gx, gy, gz}
					for i := 0; i < 3; i++ {
						for j := 0; j < 3; j++ {
							jtj[i][j] += g[i] * g[j]
						}
						jtr[i] += g[i] * r
					}
				}
			}
		}
		a := linalg.NewMat(3, 3)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a.Set(i, j, jtj[i][j])
			}
		}
		delta, err := linalg.Solve(a, jtr[:])
		if err != nil {
			return d, fmt.Errorf("fire: motion normal equations singular (featureless image?): %w", err)
		}
		d[0] += delta[0]
		d[1] += delta[1]
		d[2] += delta[2]
		if math.Sqrt(delta[0]*delta[0]+delta[1]*delta[1]+delta[2]*delta[2]) < opts.Tol {
			break
		}
	}
	return d, nil
}

// MotionCorrect estimates the shift of cur relative to ref and returns
// the corrected (resampled) volume together with the estimate.
func MotionCorrect(ref, cur *volume.Volume, opts MotionOptions) (*volume.Volume, [3]float64, error) {
	d, err := EstimateShift(ref, cur, opts)
	if err != nil {
		return nil, d, err
	}
	return cur.Shift(-d[0], -d[1], -d[2]), d, nil
}
