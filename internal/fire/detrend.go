package fire

import (
	"fmt"

	"repro/internal/linalg"
)

// Detrender removes slow baseline drifts from voxel time series by
// least-squares projection onto a small set of detrending vectors
// (polynomial drift terms), exactly as FIRE's detrending module does.
// The constant term is retained so the signal keeps its baseline level.
type Detrender struct {
	nScans int
	basis  *linalg.Mat // nScans x (order+1); column 0 is the constant
	proj   *linalg.Mat // (order+1) x nScans: (B^T B)^-1 B^T
}

// NewDetrender builds a detrender for series of nScans samples using
// polynomial drift terms up to the given order (order >= 1; order 1 is
// linear drift, the common case).
func NewDetrender(nScans, order int) (*Detrender, error) {
	if nScans < order+2 {
		return nil, fmt.Errorf("fire: %d scans too few for order-%d detrending", nScans, order)
	}
	if order < 1 {
		return nil, fmt.Errorf("fire: detrend order %d < 1", order)
	}
	b := linalg.NewMat(nScans, order+1)
	for i := 0; i < nScans; i++ {
		// Scale t to [-1, 1] to keep the basis well conditioned.
		t := 2*float64(i)/float64(nScans-1) - 1
		v := 1.0
		for j := 0; j <= order; j++ {
			b.Set(i, j, v)
			v *= t
		}
	}
	// proj = (B^T B)^-1 B^T, solved column by column.
	bt := b.T()
	btb := bt.Mul(b)
	proj := linalg.NewMat(order+1, nScans)
	col := make([]float64, order+1)
	for j := 0; j < nScans; j++ {
		for i := 0; i <= order; i++ {
			col[i] = bt.At(i, j)
		}
		x, err := linalg.Solve(btb, col)
		if err != nil {
			return nil, fmt.Errorf("fire: detrend basis singular: %w", err)
		}
		for i := 0; i <= order; i++ {
			proj.Set(i, j, x[i])
		}
	}
	return &Detrender{nScans: nScans, basis: b, proj: proj}, nil
}

// Apply removes the fitted drift (all basis terms except the constant)
// from y in place and returns y.
func (d *Detrender) Apply(y []float64) ([]float64, error) {
	if len(y) != d.nScans {
		return nil, fmt.Errorf("fire: series length %d != %d", len(y), d.nScans)
	}
	beta := d.proj.MulVec(y)
	for i := range y {
		var drift float64
		for j := 1; j < d.basis.Cols; j++ { // skip constant
			drift += d.basis.At(i, j) * beta[j]
		}
		y[i] -= drift
	}
	return y, nil
}
