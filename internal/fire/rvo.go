package fire

import (
	"math"

	"repro/internal/mri"
	"repro/internal/volume"
)

// RVOOptions configures reference-vector optimization: the raster of
// the (delay, dispersion) parameter space the paper describes, plus the
// planned coarse-grid + iterative refinement.
type RVOOptions struct {
	// Delays are the candidate HRF delays in seconds.
	Delays []float64
	// Dispersions are the candidate HRF dispersions in seconds.
	Dispersions []float64
	// Refine enables local Gauss-Newton refinement of the grid
	// optimum — the optimization the paper plans ("the resolution of
	// the grid can be reduced and the solution refined").
	Refine bool
	// RefineIters bounds refinement iterations (default 6).
	RefineIters int
	// MinStd skips voxels whose temporal standard deviation is below
	// this threshold (air/background), in signal units.
	MinStd float64
	// DetrendOrder applies FIRE's detrending module to each voxel
	// series before fitting (0 = off; 1 = linear drift removal, the
	// common configuration).
	DetrendOrder int
}

// DefaultRVOGrid returns the full-resolution raster used by the T3E
// implementation: 24 delays x 18 dispersions.
func DefaultRVOGrid() RVOOptions {
	return RVOOptions{
		Delays:      linspace(2.0, 13.5, 24),
		Dispersions: linspace(0.4, 3.8, 18),
		MinStd:      1e-6,
	}
}

// CoarseRVOGrid returns the reduced raster (6 x 5) meant to be combined
// with Refine — the paper's planned optimization.
func CoarseRVOGrid() RVOOptions {
	return RVOOptions{
		Delays:      linspace(2.0, 13.5, 6),
		Dispersions: linspace(0.4, 3.8, 5),
		Refine:      true,
		MinStd:      1e-6,
	}
}

func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// RVOResult holds per-voxel optimized hemodynamic parameters.
type RVOResult struct {
	// Corr is the correlation against the per-voxel best reference.
	Corr *volume.Volume
	// Delay and Dispersion are the fitted HRF parameters (0 where
	// skipped).
	Delay      *volume.Volume
	Dispersion *volume.Volume
	// Evaluated counts voxel-gridpoint correlation evaluations (the
	// work measure the cost model charges for).
	Evaluated int64
}

// gridRef is one precomputed (delay, dispersion) reference vector.
type gridRef struct {
	delay, disp float64
	ref         []float64
}

// RVO rasters the HRF parameter space per voxel: for every (delay,
// dispersion) grid point the stimulus is convolved into a normalized
// reference, and the voxel's (demeaned) series is correlated against
// it; the parameters with the highest correlation win. With
// opts.Refine, the grid optimum is polished by Gauss-Newton on the
// correlation objective.
//
// series must all share one shape and len(series) <= len(stim).
// ParallelRVO distributes the same computation over goroutines.
func RVO(series []*volume.Volume, stim []float64, tr float64, opts RVOOptions) (*RVOResult, error) {
	if err := validateRVOInputs(series, stim, opts); err != nil {
		return nil, err
	}
	if opts.RefineIters == 0 {
		opts.RefineIters = 6
	}
	nt := len(series)
	shape := series[0]
	refs := buildRVORefs(stim[:nt], tr, opts)
	det, err := detrenderFor(opts, nt)
	if err != nil {
		return nil, err
	}
	res := &RVOResult{
		Corr:       volume.New(shape.NX, shape.NY, shape.NZ),
		Delay:      volume.New(shape.NX, shape.NY, shape.NZ),
		Dispersion: volume.New(shape.NX, shape.NY, shape.NZ),
	}
	res.Evaluated = rvoVoxelRange(series, stim[:nt], tr, refs, det, opts, res, 0, shape.Voxels())
	return res, nil
}

// detrenderFor builds the optional per-voxel detrender. The returned
// Detrender is safe for concurrent use (its state is read-only after
// construction).
func detrenderFor(opts RVOOptions, nt int) (*Detrender, error) {
	if opts.DetrendOrder <= 0 {
		return nil, nil
	}
	return NewDetrender(nt, opts.DetrendOrder)
}

// rvoVoxelRange processes voxels [lo, hi) into res and returns the
// number of grid evaluations. Disjoint ranges may run concurrently:
// each voxel writes only its own output elements.
func rvoVoxelRange(series []*volume.Volume, stim []float64, tr float64, refs []gridRef, det *Detrender, opts RVOOptions, res *RVOResult, lo, hi int) int64 {
	nt := len(series)
	y := make([]float64, nt)
	var evaluated int64
	for vi := lo; vi < hi; vi++ {
		// Gather the voxel series, optionally detrend, then demean.
		for t, v := range series {
			y[t] = float64(v.Data[vi])
		}
		if det != nil {
			// Apply cannot fail here: the length matches by
			// construction.
			_, _ = det.Apply(y)
		}
		var mean float64
		for t := range y {
			mean += y[t]
		}
		mean /= float64(nt)
		var ss float64
		for t := range y {
			y[t] -= mean
			ss += y[t] * y[t]
		}
		std := math.Sqrt(ss / float64(nt))
		if std < opts.MinStd {
			continue
		}
		norm := math.Sqrt(ss)
		best, bestIdx := -2.0, -1
		for ri := range refs {
			var dot float64
			r := refs[ri].ref
			for t := range y {
				dot += y[t] * r[t]
			}
			evaluated++
			// ref is unit-variance with n samples: ||ref|| = sqrt(n).
			c := dot / (norm * math.Sqrt(float64(nt)))
			if c > best {
				best, bestIdx = c, ri
			}
		}
		delay, disp := refs[bestIdx].delay, refs[bestIdx].disp
		if opts.Refine {
			delay, disp, best = refineVoxel(y, norm, stim, tr, delay, disp, best, opts.RefineIters)
		}
		res.Corr.Data[vi] = float32(best)
		res.Delay.Data[vi] = float32(delay)
		res.Dispersion.Data[vi] = float32(disp)
	}
	return evaluated
}

// corrAt evaluates the correlation of the demeaned series y against the
// reference generated by (delay, disp).
func corrAt(y []float64, norm float64, stim []float64, tr, delay, disp float64) float64 {
	ref := mri.HRF{Delay: delay, Dispersion: disp}.Convolve(stim, tr)
	var dot float64
	for t := range y {
		dot += y[t] * ref[t]
	}
	return dot / (norm * math.Sqrt(float64(len(y))))
}

// refineVoxel polishes a grid optimum with damped Newton steps on the
// 2-parameter correlation surface, using finite differences.
func refineVoxel(y []float64, norm float64, stim []float64, tr, delay, disp, cur float64, iters int) (float64, float64, float64) {
	const hD, hW = 0.05, 0.02
	for it := 0; it < iters; it++ {
		f0 := cur
		fdp := corrAt(y, norm, stim, tr, delay+hD, disp)
		fdm := corrAt(y, norm, stim, tr, delay-hD, disp)
		fwp := corrAt(y, norm, stim, tr, delay, disp+hW)
		fwm := corrAt(y, norm, stim, tr, delay, disp-hW)
		gd := (fdp - fdm) / (2 * hD)
		gw := (fwp - fwm) / (2 * hW)
		hdd := (fdp - 2*f0 + fdm) / (hD * hD)
		hww := (fwp - 2*f0 + fwm) / (hW * hW)
		// Diagonal damped Newton: negative curvature required for a
		// maximum; otherwise fall back to gradient ascent.
		var sd, sw float64
		if hdd < -1e-9 {
			sd = -gd / hdd
		} else {
			sd = gd * 0.5
		}
		if hww < -1e-9 {
			sw = -gw / hww
		} else {
			sw = gw * 0.1
		}
		// Trust region: cap step size.
		sd = clampF(sd, -1.0, 1.0)
		sw = clampF(sw, -0.4, 0.4)
		nd := math.Max(0.1, delay+sd)
		nw := math.Max(0.05, disp+sw)
		f1 := corrAt(y, norm, stim, tr, nd, nw)
		if f1 <= cur+1e-9 {
			break
		}
		delay, disp, cur = nd, nw, f1
	}
	return delay, disp, cur
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
