package fire

import (
	"sort"

	"repro/internal/volume"
)

// MedianFilter3D applies a (2r+1)^3 median filter with edge clamping —
// FIRE's noise-reduction stage for unprocessed images.
func MedianFilter3D(v *volume.Volume, r int) *volume.Volume {
	if r <= 0 {
		return v.Clone()
	}
	out := volume.New(v.NX, v.NY, v.NZ)
	win := make([]float32, 0, (2*r+1)*(2*r+1)*(2*r+1))
	for z := 0; z < v.NZ; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				win = win[:0]
				for dz := -r; dz <= r; dz++ {
					zz := clampIdx(z+dz, v.NZ)
					for dy := -r; dy <= r; dy++ {
						yy := clampIdx(y+dy, v.NY)
						for dx := -r; dx <= r; dx++ {
							xx := clampIdx(x+dx, v.NX)
							win = append(win, v.At(xx, yy, zz))
						}
					}
				}
				sort.Slice(win, func(i, j int) bool { return win[i] < win[j] })
				out.Set(x, y, z, win[len(win)/2])
			}
		}
	}
	return out
}

// AverageFilter3D applies a (2r+1)^3 box average with edge clamping —
// FIRE's post-pipeline smoothing stage.
func AverageFilter3D(v *volume.Volume, r int) *volume.Volume {
	if r <= 0 {
		return v.Clone()
	}
	out := volume.New(v.NX, v.NY, v.NZ)
	for z := 0; z < v.NZ; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				var sum float64
				var n int
				for dz := -r; dz <= r; dz++ {
					zz := clampIdx(z+dz, v.NZ)
					for dy := -r; dy <= r; dy++ {
						yy := clampIdx(y+dy, v.NY)
						for dx := -r; dx <= r; dx++ {
							xx := clampIdx(x+dx, v.NX)
							sum += float64(v.At(xx, yy, zz))
							n++
						}
					}
				}
				out.Set(x, y, z, float32(sum/float64(n)))
			}
		}
	}
	return out
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
