package fire

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/mri"
	"repro/internal/volume"
)

// This file parallelizes the voxel-independent FIRE modules with real
// goroutines, mirroring the domain decomposition the T3E implementation
// used. Results are bit-identical to the serial paths (voxels are
// independent; each worker owns a disjoint output range).

// ParallelMedianFilter3D is MedianFilter3D with the volume's z-slabs
// distributed over workers goroutines (workers <= 0 uses GOMAXPROCS).
func ParallelMedianFilter3D(v *volume.Volume, r, workers int) *volume.Volume {
	if r <= 0 {
		return v.Clone()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := volume.New(v.NX, v.NY, v.NZ)
	slabs := volume.SlabDecomp(v.NZ, workers)
	var wg sync.WaitGroup
	for _, s := range slabs {
		if s.Slices() == 0 {
			continue
		}
		wg.Add(1)
		go func(s volume.Slab) {
			defer wg.Done()
			medianSlab(v, out, r, s.Z0, s.Z1)
		}(s)
	}
	wg.Wait()
	return out
}

// medianSlab filters slices [z0, z1) of v into out.
func medianSlab(v, out *volume.Volume, r, z0, z1 int) {
	win := make([]float32, 0, (2*r+1)*(2*r+1)*(2*r+1))
	for z := z0; z < z1; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				win = win[:0]
				for dz := -r; dz <= r; dz++ {
					zz := clampIdx(z+dz, v.NZ)
					for dy := -r; dy <= r; dy++ {
						yy := clampIdx(y+dy, v.NY)
						for dx := -r; dx <= r; dx++ {
							xx := clampIdx(x+dx, v.NX)
							win = append(win, v.At(xx, yy, zz))
						}
					}
				}
				insertionSort(win)
				out.Set(x, y, z, win[len(win)/2])
			}
		}
	}
}

// insertionSort is faster than sort.Slice for the small (27..125
// element) filter windows and allocation-free.
func insertionSort(a []float32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// ParallelRVO is RVO with the voxel loop split across workers
// goroutines. Results are identical to the serial RVO.
func ParallelRVO(series []*volume.Volume, stim []float64, tr float64, opts RVOOptions, workers int) (*RVOResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return RVO(series, stim, tr, opts)
	}
	if err := validateRVOInputs(series, stim, opts); err != nil {
		return nil, err
	}
	if opts.RefineIters == 0 {
		opts.RefineIters = 6
	}
	nt := len(series)
	shape := series[0]
	refs := buildRVORefs(stim[:nt], tr, opts)
	det, err := detrenderFor(opts, nt)
	if err != nil {
		return nil, err
	}
	res := &RVOResult{
		Corr:       volume.New(shape.NX, shape.NY, shape.NZ),
		Delay:      volume.New(shape.NX, shape.NY, shape.NZ),
		Dispersion: volume.New(shape.NX, shape.NY, shape.NZ),
	}
	nvox := shape.Voxels()
	var evaluated int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * nvox / workers
		hi := (w + 1) * nvox / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			n := rvoVoxelRange(series, stim[:nt], tr, refs, det, opts, res, lo, hi)
			atomic.AddInt64(&evaluated, n)
		}(lo, hi)
	}
	wg.Wait()
	res.Evaluated = evaluated
	return res, nil
}

// T3EExecutor runs the full module chain with real goroutine
// parallelism while reporting what the same work would have cost on the
// modeled Cray partition — the dual view the reproduction offers.
type T3EExecutor struct {
	Model   *T3EModel
	PEs     int
	Workers int
}

// ProcessedScan is the executor's output for one raw scan.
type ProcessedScan struct {
	Filtered *volume.Volume
	// ModeledSeconds is the Table-1-calibrated T3E time for the
	// filter+motion+RVO chain at the executor's PE count.
	ModeledSeconds float64
}

// Process runs the realtime per-scan work (median filter; motion
// estimation against ref when ref != nil) and reports the modeled T3E
// chain time for the scan's dimensions.
func (e *T3EExecutor) Process(ref, raw *volume.Volume) (*ProcessedScan, error) {
	if e.Model == nil || e.PEs < 1 {
		return nil, fmt.Errorf("fire: executor not configured (model=%v pes=%d)", e.Model != nil, e.PEs)
	}
	out := &ProcessedScan{}
	out.Filtered = ParallelMedianFilter3D(raw, 1, e.Workers)
	if ref != nil {
		fixed, _, err := MotionCorrect(ref, out.Filtered, MotionOptions{})
		if err != nil {
			return nil, err
		}
		out.Filtered = fixed
	}
	out.ModeledSeconds = e.Model.TotalTime(e.PEs, raw.NX, raw.NY, raw.NZ)
	return out, nil
}

// validateRVOInputs factors the RVO precondition checks.
func validateRVOInputs(series []*volume.Volume, stim []float64, opts RVOOptions) error {
	if len(series) < 4 {
		return fmt.Errorf("fire: RVO needs >= 4 scans, have %d", len(series))
	}
	if len(opts.Delays) == 0 || len(opts.Dispersions) == 0 {
		return fmt.Errorf("fire: empty RVO grid")
	}
	if len(stim) < len(series) {
		return fmt.Errorf("fire: stimulus shorter (%d) than series (%d)", len(stim), len(series))
	}
	shape := series[0]
	for _, v := range series {
		if !v.SameShape(shape) {
			return fmt.Errorf("fire: inconsistent series shapes")
		}
	}
	return nil
}

// buildRVORefs precomputes the normalized grid references.
func buildRVORefs(stim []float64, tr float64, opts RVOOptions) []gridRef {
	refs := make([]gridRef, 0, len(opts.Delays)*len(opts.Dispersions))
	for _, d := range opts.Delays {
		for _, w := range opts.Dispersions {
			refs = append(refs, gridRef{d, w, mri.HRF{Delay: d, Dispersion: w}.Convolve(stim, tr)})
		}
	}
	return refs
}
