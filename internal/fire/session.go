package fire

import (
	"fmt"

	"repro/internal/volume"
)

// RealtimeSession is the complete RT-client processing loop as a
// library component: pull raw images from an RT-server, run the
// realtime module chain (optional median filter, optional 3-D motion
// correction against a reference), fold each scan into the incremental
// correlation analysis, and hand every updated result to the display
// callback — the loop the FIRE GUI runs within the 2-second acquisition
// time.
type RealtimeSession struct {
	// Client is the connected RT image source.
	Client *RTClient
	// Reference is the normalized reference vector to correlate
	// against.
	Reference []float64
	// NX, NY, NZ is the expected acquisition matrix.
	NX, NY, NZ int

	// FilterRadius applies the median filter with this radius before
	// analysis (0 = off).
	FilterRadius int
	// MotionRef enables 3-D movement correction against this volume
	// (nil = off). Typically the first scan of the measurement.
	MotionRef *volume.Volume
	// Workers parallelizes the filter (0 = GOMAXPROCS).
	Workers int
	// MinScansForMap is the first scan count at which correlation
	// maps are produced (default 3, the statistical minimum).
	MinScansForMap int

	// OnFrame, if set, is called after every processed scan with the
	// current analysis state. A nil Corr means too few scans so far.
	OnFrame func(scan int, r *Result)
}

// Run processes the whole measurement and returns the number of scans
// analysed together with the final correlation result.
func (s *RealtimeSession) Run() (int, *Result, error) {
	if s.Client == nil {
		return 0, nil, fmt.Errorf("fire: session has no RT client")
	}
	if len(s.Reference) == 0 {
		return 0, nil, fmt.Errorf("fire: session has no reference vector")
	}
	if s.NX <= 0 || s.NY <= 0 || s.NZ <= 0 {
		return 0, nil, fmt.Errorf("fire: session matrix %dx%dx%d invalid", s.NX, s.NY, s.NZ)
	}
	if s.MinScansForMap == 0 {
		s.MinScansForMap = 3
	}
	corr := NewCorrelator(s.Reference, s.NX, s.NY, s.NZ)
	frames := 0
	var last *Result
	for {
		msg, err := s.Client.NextImage()
		if err != nil {
			return frames, last, err
		}
		if msg.Type == MsgDone {
			return frames, last, nil
		}
		img := msg.Image
		if img.NX != s.NX || img.NY != s.NY || img.NZ != s.NZ {
			return frames, last, fmt.Errorf("fire: scan %d has shape %dx%dx%d, session expects %dx%dx%d",
				msg.Scan, img.NX, img.NY, img.NZ, s.NX, s.NY, s.NZ)
		}
		if s.FilterRadius > 0 {
			img = ParallelMedianFilter3D(img, s.FilterRadius, s.Workers)
		}
		res := &Result{}
		if s.MotionRef != nil {
			fixed, shift, err := MotionCorrect(s.MotionRef, img, MotionOptions{})
			if err != nil {
				return frames, last, fmt.Errorf("fire: scan %d motion correction: %w", msg.Scan, err)
			}
			img = fixed
			res.Shift = shift
		}
		if err := corr.Add(img); err != nil {
			return frames, last, err
		}
		frames++
		res.ScansUsed = corr.Scans()
		if corr.Scans() >= s.MinScansForMap {
			m, err := corr.Map()
			if err != nil {
				return frames, last, err
			}
			res.Corr = m
			last = res
		}
		if s.OnFrame != nil {
			s.OnFrame(msg.Scan, res)
		}
	}
}
