package fire

import (
	"fmt"

	"repro/internal/sim"
)

// StageTimes captures the section-4 latency budget of the realtime fMRI
// dataflow (all in seconds):
//
//	scan end -> RT-server:        ~1.5 s  (ScanToServer)
//	transfers + control messages: ~1.1 s  (Transfers: server->T3E->client)
//	T3E processing:               Table 1 (Compute, depends on PEs)
//	client display:               ~0.6 s  (Display)
type StageTimes struct {
	ScanToServer float64
	Transfers    float64
	Compute      float64
	Display      float64
}

// PaperStageTimes returns the budget quoted in section 4 with the T3E
// compute time for the given PE count filled in from the cost model.
func PaperStageTimes(model *T3EModel, pes int) StageTimes {
	return StageTimes{
		ScanToServer: 1.5,
		Transfers:    1.1,
		Compute:      model.TotalTime(pes, 64, 64, 16),
		Display:      0.6,
	}
}

// TotalDelay reports the end-to-end delay from the end of an MR scan to
// the correlation map appearing on the 2-D GUI. The paper: "less than
// 5 seconds" at 256 PEs.
func (st StageTimes) TotalDelay() float64 {
	return st.ScanToServer + st.Transfers + st.Compute + st.Display
}

// UnpipelinedPeriod reports the steady-state time between processed
// images in the current (sequential) implementation: a new image is
// requested only after processing and display of the previous one, so
// the period is the sum of the client- and T3E-side delays ("2.7
// seconds in the above example").
func (st StageTimes) UnpipelinedPeriod() float64 {
	return st.Transfers + st.Compute + st.Display
}

// PipelinedPeriod reports the steady-state period if the stages were
// pipelined (the improvement the paper identifies as unexploited): the
// slowest stage dominates.
func (st StageTimes) PipelinedPeriod() float64 {
	m := st.Transfers
	if st.Compute > m {
		m = st.Compute
	}
	if st.Display > m {
		m = st.Display
	}
	return m
}

// SafeTR reports the smallest scanner repetition time the analysis
// keeps up with: the processing period rounded up to the next half
// second (scanner TRs are configured in 0.5 s steps).
func SafeTR(period float64) float64 {
	steps := int(period / 0.5)
	tr := float64(steps) * 0.5
	if tr < period {
		tr += 0.5
	}
	return tr
}

// SessionResult summarizes a simulated realtime session.
type SessionResult struct {
	Frames         int
	MeanDelay      float64 // mean scan-end -> display delay, seconds
	MaxDelay       float64
	AchievedPeriod float64 // steady-state seconds per displayed frame
	DroppedScans   int     // scans the analysis could not keep up with
}

// SimulateSession runs the fMRI dataflow in virtual time on a DES
// kernel: the scanner produces a volume every tr seconds; images become
// available at the RT-server ScanToServer later; the analysis chain
// (transfers + compute + display) services them either unpipelined
// (request next only after display) or pipelined (stages overlap, the
// slowest stage is the bottleneck). When the analysis falls behind, the
// realtime system skips to the newest available scan and counts the
// missed ones as dropped — exactly what an online display must do.
func SimulateSession(st StageTimes, tr float64, frames int, pipelined bool) (SessionResult, error) {
	if frames <= 0 || tr <= 0 {
		return SessionResult{}, fmt.Errorf("fire: bad session parameters tr=%v frames=%d", tr, frames)
	}
	k := sim.NewKernel()
	type scanEvent struct {
		idx int
		end sim.Time // when the scan finished
	}
	available := sim.NewChan[scanEvent](k, 0)

	// Scanner process: one scan every tr, available ScanToServer later.
	k.Go("scanner", func(p *sim.Proc) {
		for i := 0; i < frames; i++ {
			p.Sleep(sim.Duration(tr))
			ev := scanEvent{idx: i, end: p.Now()}
			k.After(sim.Duration(st.ScanToServer), func() { available.TrySend(ev) })
		}
	})

	var res SessionResult
	var delays []float64
	var displayTimes []sim.Time

	// Analysis process.
	k.Go("analysis", func(p *sim.Proc) {
		for done := 0; done < frames-res.DroppedScans; {
			ev := available.Recv(p)
			// Realtime skip: drain to the newest available scan.
			for {
				next, ok := available.TryRecv()
				if !ok {
					break
				}
				res.DroppedScans++
				ev = next
			}
			if pipelined {
				// Stages overlap across frames; each frame still
				// traverses every stage, but the service rate is the
				// slowest stage. Model: occupy the bottleneck stage
				// for its duration, then complete after the remaining
				// pipeline latency in the background.
				bottleneck := st.PipelinedPeriod()
				p.Sleep(sim.Duration(bottleneck))
				rest := st.Transfers + st.Compute + st.Display - bottleneck
				end := ev.end
				k.After(sim.Duration(rest), func() {
					now := k.Now()
					delays = append(delays, now.Sub(end).Seconds())
					displayTimes = append(displayTimes, now)
				})
			} else {
				p.Sleep(sim.Duration(st.Transfers + st.Compute + st.Display))
				now := p.Now()
				delays = append(delays, now.Sub(ev.end).Seconds())
				displayTimes = append(displayTimes, now)
			}
			done++
		}
	})
	k.Run()

	res.Frames = len(delays)
	if res.Frames == 0 {
		return res, fmt.Errorf("fire: session displayed no frames")
	}
	var sum float64
	for _, d := range delays {
		sum += d
		if d > res.MaxDelay {
			res.MaxDelay = d
		}
	}
	res.MeanDelay = sum / float64(res.Frames)
	if res.Frames >= 2 {
		span := displayTimes[len(displayTimes)-1].Sub(displayTimes[0]).Seconds()
		res.AchievedPeriod = span / float64(res.Frames-1)
	}
	return res, nil
}
