// Package fire reimplements FIRE (Functional Imaging in REaltime), the
// software package developed at the Institute of Medicine of the
// Research Centre Jülich for online analysis of fMRI measurements, as
// described in section 4 of the paper.
//
// The analysis modules are real algorithms operating on real (synthetic)
// data:
//
//   - spatial filters: a 3-D median filter for raw-image denoising and
//     an averaging filter for post-pipeline smoothing,
//   - 3-D movement correction by an iterative linear (Gauss-Newton)
//     scheme,
//   - detrending against a small set of drift basis vectors,
//   - voxel-wise correlation of the measured signal with a reference
//     vector (the stimulation time course convolved with a hemodynamic
//     response function), and
//   - reference-vector optimization (RVO): a per-voxel least-squares
//     fit of HRF delay and dispersion by rastering the parameter space,
//     with the grid-refinement scheme the paper plans as future work.
//
// The package also contains the RT-server/RT-client pair (a TCP
// protocol mirroring FIRE's scanner front-end interface), pipelined and
// unpipelined session drivers, and the calibrated Cray T3E-600 cost
// model that reproduces Table 1.
package fire

import (
	"math"

	"repro/internal/volume"
)

// Result of processing one scan through the module chain.
type Result struct {
	// Corr is the voxel-wise correlation coefficient map in [-1, 1].
	Corr *volume.Volume
	// Shift is the rigid motion estimate removed from this scan.
	Shift [3]float64
	// ScansUsed is the number of scans the correlation is based on.
	ScansUsed int
}

// ClipMap returns the overlay mask for a clip level: voxels whose
// correlation magnitude meets or exceeds clip, as the FIRE GUI overlays
// them on the anatomy (figure 3).
func (r *Result) ClipMap(clip float64) []bool {
	out := make([]bool, r.Corr.Voxels())
	for i, v := range r.Corr.Data {
		if math.Abs(float64(v)) >= clip {
			out[i] = true
		}
	}
	return out
}
