package fire

import (
	"net"
	"testing"

	"repro/internal/mri"
	"repro/internal/volume"
)

// startServer launches an RT-server for a fresh synthetic measurement
// and returns a connected client plus the scanner.
func startServer(t *testing.T, withMotion bool, nScans int) (*RTClient, *mri.Scanner) {
	t.Helper()
	act := mri.Activation{CX: 8, CY: 8, CZ: 4, Radius: 2.5, Amplitude: 0.06, HRF: mri.DefaultHRF}
	ph := mri.NewPhantom(16, 16, 8, []mri.Activation{act})
	cfg := mri.ScanConfig{NX: 16, NY: 16, NZ: 8, TR: 2, NScans: nScans, NoiseStd: 1, Seed: 31}
	if withMotion {
		cfg.Motion = make([]mri.Shift, nScans)
		for i := nScans / 2; i < nScans; i++ {
			cfg.Motion[i] = mri.Shift{DX: 0.6, DY: -0.3}
		}
	}
	sc := mri.NewScanner(ph, cfg)
	srv := &RTServer{Scanner: sc}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.ListenAndServe(l)
	client, err := DialRT(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, sc
}

func TestRealtimeSessionEndToEnd(t *testing.T) {
	client, sc := startServer(t, false, 24)
	var callbacks int
	sess := &RealtimeSession{
		Client:    client,
		Reference: sc.Reference(0),
		NX:        16, NY: 16, NZ: 8,
		FilterRadius: 1,
		OnFrame:      func(scan int, r *Result) { callbacks++ },
	}
	frames, last, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if frames != 24 || callbacks != 24 {
		t.Errorf("frames=%d callbacks=%d", frames, callbacks)
	}
	if last == nil || last.Corr == nil {
		t.Fatal("no final correlation map")
	}
	if r := last.Corr.At(8, 8, 4); r < 0.6 {
		t.Errorf("activation correlation %.3f (median-filtered path)", r)
	}
	if last.ScansUsed != 24 {
		t.Errorf("ScansUsed = %d", last.ScansUsed)
	}
}

func TestRealtimeSessionWithMotionCorrection(t *testing.T) {
	client, sc := startServer(t, true, 24)
	ph := mri.NewPhantom(16, 16, 8, nil)
	var lastShift [3]float64
	sess := &RealtimeSession{
		Client:    client,
		Reference: sc.Reference(0),
		NX:        16, NY: 16, NZ: 8,
		MotionRef: ph.Anatomy,
		OnFrame: func(scan int, r *Result) {
			if scan == 20 {
				lastShift = r.Shift
			}
		},
	}
	frames, last, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if frames != 24 {
		t.Fatalf("frames = %d", frames)
	}
	// The injected subject motion (0.6, -0.3, 0) is recovered.
	if d := lastShift[0] - 0.6; d > 0.15 || d < -0.15 {
		t.Errorf("estimated dx = %.2f, want ~0.6", lastShift[0])
	}
	if last.Corr.At(8, 8, 4) < 0.6 {
		t.Errorf("correlation after motion correction = %.3f", last.Corr.At(8, 8, 4))
	}
}

func TestRealtimeSessionValidation(t *testing.T) {
	if _, _, err := (&RealtimeSession{}).Run(); err == nil {
		t.Error("empty session accepted")
	}
	client, sc := startServer(t, false, 2)
	if _, _, err := (&RealtimeSession{Client: client}).Run(); err == nil {
		t.Error("session without reference accepted")
	}
	if _, _, err := (&RealtimeSession{Client: client, Reference: sc.Reference(0)}).Run(); err == nil {
		t.Error("session without matrix accepted")
	}
}

func TestRealtimeSessionShapeMismatch(t *testing.T) {
	client, sc := startServer(t, false, 4)
	sess := &RealtimeSession{
		Client:    client,
		Reference: sc.Reference(0),
		NX:        32, NY: 32, NZ: 8, // wrong matrix
	}
	if _, _, err := sess.Run(); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestRealtimeSessionFeedsVolume(t *testing.T) {
	// The session's last map shares the analysis chain with a direct
	// correlator over the same data (no filter, no motion).
	client, sc := startServer(t, false, 16)
	sess := &RealtimeSession{
		Client:    client,
		Reference: sc.Reference(0),
		NX:        16, NY: 16, NZ: 8,
	}
	_, last, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	var want *volume.Volume
	{
		// Re-generate the same measurement deterministically.
		act := mri.Activation{CX: 8, CY: 8, CZ: 4, Radius: 2.5, Amplitude: 0.06, HRF: mri.DefaultHRF}
		ph := mri.NewPhantom(16, 16, 8, []mri.Activation{act})
		sc2 := mri.NewScanner(ph, mri.ScanConfig{NX: 16, NY: 16, NZ: 8, TR: 2, NScans: 16, NoiseStd: 1, Seed: 31})
		c := NewCorrelator(sc2.Reference(0), 16, 16, 8)
		for {
			v := sc2.Next()
			if v == nil {
				break
			}
			c.Add(v)
		}
		want, _ = c.Map()
	}
	for i := range want.Data {
		if last.Corr.Data[i] != want.Data[i] {
			t.Fatalf("session map differs from direct analysis at %d", i)
		}
	}
}
