package fire

import (
	"fmt"
	"testing"

	"repro/internal/mri"
	"repro/internal/volume"
)

// benchSeries builds a small measurement once for the RVO benches.
func benchSeries(b *testing.B) ([]*volume.Volume, []float64, float64) {
	b.Helper()
	act := mri.Activation{CX: 8, CY: 8, CZ: 4, Radius: 3, Amplitude: 0.06, HRF: mri.DefaultHRF}
	ph := mri.NewPhantom(16, 16, 8, []mri.Activation{act})
	stim := mri.BlockStimulus(32, 8)
	sc := mri.NewScanner(ph, mri.ScanConfig{NX: 16, NY: 16, NZ: 8, TR: 2, NScans: 32,
		Stimulus: stim, NoiseStd: 1, Seed: 4})
	var series []*volume.Volume
	for {
		v := sc.Next()
		if v == nil {
			break
		}
		series = append(series, v)
	}
	return series, stim, 2.0
}

// BenchmarkParallelRVOScaling shows the real goroutine speedup of the
// voxel raster — the host-machine analogue of Table 1's scaling.
func BenchmarkParallelRVOScaling(b *testing.B) {
	series, stim, tr := benchSeries(b)
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ParallelRVO(series, stim, tr, DefaultRVOGrid(), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMedianFilterParallel compares the serial and parallel
// median filter on a full-size 64x64x16 scan.
func BenchmarkMedianFilterParallel(b *testing.B) {
	ph := mri.NewPhantom(64, 64, 16, nil)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MedianFilter3D(ph.Anatomy, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelMedianFilter3D(ph.Anatomy, 1, 0)
		}
	})
}

// BenchmarkCorrelatorAdd measures the per-scan realtime analysis cost
// at the paper's acquisition size.
func BenchmarkCorrelatorAdd(b *testing.B) {
	ph := mri.NewPhantom(64, 64, 16, nil)
	ref := make([]float64, 1<<20) // effectively unlimited scans
	for i := range ref {
		ref[i] = float64(i%16) - 8
	}
	c := NewCorrelator(ref, 64, 64, 16)
	b.SetBytes(int64(ph.Anatomy.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Add(ph.Anatomy); err != nil {
			b.Fatal(err)
		}
	}
}
