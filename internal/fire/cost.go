package fire

import (
	"math"

	"repro/internal/volume"
)

// Table1Row is one row of the paper's Table 1: seconds spent processing
// a 64x64x16 image on the Cray T3E-600 per module, for a given PE count.
type Table1Row struct {
	PEs     int
	Filter  float64
	Motion  float64
	RVO     float64
	Total   float64
	Speedup float64
}

// PaperTable1 reproduces Table 1 exactly as printed.
var PaperTable1 = []Table1Row{
	{1, 0.18, 1.55, 109.27, 111.00, 1.0},
	{2, 0.09, 0.91, 54.65, 55.65, 2.0},
	{4, 0.05, 0.56, 27.36, 27.97, 4.0},
	{8, 0.03, 0.46, 13.74, 14.23, 7.8},
	{16, 0.02, 0.35, 6.93, 7.30, 15.2},
	{32, 0.02, 0.33, 3.51, 3.86, 28.7},
	{64, 0.03, 0.35, 1.85, 2.22, 50.0},
	{128, 0.03, 0.34, 1.00, 1.37, 81.1},
	{256, 0.04, 0.40, 0.59, 1.01, 110.5},
}

// moduleCost parameterizes one FIRE module's execution time on p PEs:
//
//	t(p) = Serial + Work*imbalance(p)/p + PerStep*log2(p) + PerPE*p
//
// Serial is the replicated/sequential fraction, Work the perfectly
// parallel part (proportional to voxel count), PerStep the per-stage
// collective cost (log2 p stages of broadcast/reduce on the T3E torus),
// and PerPE small per-PE bookkeeping that grows with the partition.
type moduleCost struct {
	Serial  float64
	Work    float64
	PerStep float64
	PerPE   float64
}

func (c moduleCost) time(p int, imb float64) float64 {
	return c.Serial + c.Work*imb/float64(p) + c.PerStep*log2(p) + c.PerPE*float64(p)
}

func log2(p int) float64 { return math.Log2(float64(p)) }

// T3EModel is the calibrated Cray T3E-600 performance model for the
// FIRE modules. Work terms scale with voxel count relative to the
// 64x64x16 reference image, which also reproduces the paper's remark
// that "larger images take more time, but achieve better speedups" —
// the log-shaped overheads stay fixed while the parallel work grows.
type T3EModel struct {
	filter moduleCost
	motion moduleCost
	rvo    moduleCost

	// SustainedFlopsPerPE documents the implied per-PE sustained
	// rate; the RVO raster at the reference size is ~4.7 Gflop, and
	// 109.27 s at one PE corresponds to ~43 Mflop/s — a realistic
	// sustained fraction of the 600 Mflop/s EV5 peak.
	SustainedFlopsPerPE float64
}

// refVoxels is the voxel count of the reference 64x64x16 image.
const refVoxels = 64 * 64 * 16

// DefaultT3E600 returns the model calibrated against Table 1
// (worst-case deviation < 8% per module, < 2% on totals).
func DefaultT3E600() *T3EModel {
	return &T3EModel{
		filter:              moduleCost{Serial: 0.002, Work: 0.178, PerStep: 0.0025, PerPE: 8e-5},
		motion:              moduleCost{Serial: 0.27, Work: 1.28, PerStep: 0.004, PerPE: 2.5e-4},
		rvo:                 moduleCost{Serial: 0, Work: 109.27, PerStep: 0.02, PerPE: 0},
		SustainedFlopsPerPE: 43e6,
	}
}

// scaleAndImbalance reports the work scale factor for an image of the
// given dims relative to the reference image, and the slab-decomposition
// load imbalance for p PEs (>= 1; 1 means perfectly balanced).
func scaleAndImbalance(nx, ny, nz, p int) (scale, imb float64) {
	vox := nx * ny * nz
	scale = float64(vox) / float64(refVoxels)
	// FIRE decomposes the brain in slabs; when p <= nz the busiest PE
	// holds ceil(nz/p) slices. Beyond nz PEs, slices split in-plane
	// and balance is limited by row granularity.
	perPE := volume.MaxSlabVoxels(nx, ny, nz, minInt(p, nz))
	if p > nz {
		rows := ny * nz // decomposable row units
		perRow := vox / rows
		rowsPerPE := (rows + p - 1) / p
		perPE = rowsPerPE * perRow
	}
	ideal := float64(vox) / float64(p)
	imb = float64(perPE) / ideal
	return scale, imb
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FilterTime models the spatial-filter module on p PEs for an
// nx*ny*nz image (seconds).
func (m *T3EModel) FilterTime(p, nx, ny, nz int) float64 {
	s, imb := scaleAndImbalance(nx, ny, nz, p)
	c := m.filter
	c.Work *= s
	return c.time(p, imb)
}

// MotionTime models the 3-D movement-correction module (seconds).
func (m *T3EModel) MotionTime(p, nx, ny, nz int) float64 {
	s, imb := scaleAndImbalance(nx, ny, nz, p)
	c := m.motion
	c.Work *= s
	return c.time(p, imb)
}

// RVOTime models the reference-vector-optimization module (seconds).
func (m *T3EModel) RVOTime(p, nx, ny, nz int) float64 {
	s, imb := scaleAndImbalance(nx, ny, nz, p)
	c := m.rvo
	c.Work *= s
	return c.time(p, imb)
}

// TotalTime models the full module chain (seconds).
func (m *T3EModel) TotalTime(p, nx, ny, nz int) float64 {
	return m.FilterTime(p, nx, ny, nz) + m.MotionTime(p, nx, ny, nz) + m.RVOTime(p, nx, ny, nz)
}

// ModelTable1 evaluates the model at the paper's PE counts for the
// reference image, producing rows comparable to PaperTable1.
func (m *T3EModel) ModelTable1() []Table1Row {
	t1 := m.TotalTime(1, 64, 64, 16)
	out := make([]Table1Row, 0, len(PaperTable1))
	for _, row := range PaperTable1 {
		p := row.PEs
		f := m.FilterTime(p, 64, 64, 16)
		mo := m.MotionTime(p, 64, 64, 16)
		r := m.RVOTime(p, 64, 64, 16)
		tot := f + mo + r
		out = append(out, Table1Row{
			PEs: p, Filter: f, Motion: mo, RVO: r, Total: tot, Speedup: t1 / tot,
		})
	}
	return out
}

// RVOFlops estimates the floating-point work of the full RVO raster for
// an image: gridPoints correlation fits of length nScans over the
// brain voxels (~65% of the volume), at ~3 flops per sample plus the fit
// bookkeeping. Used to sanity-check the SustainedFlopsPerPE constant.
func RVOFlops(nx, ny, nz, gridPoints, nScans int) float64 {
	brainVox := 0.65 * float64(nx*ny*nz)
	perFit := 3.0*float64(nScans) + 12
	return brainVox * float64(gridPoints) * perFit
}
