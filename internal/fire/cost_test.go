package fire

import (
	"math"
	"testing"
)

// Table 1 is the reproduction target: the calibrated model must land
// within tolerance of every printed value. Filter entries are printed
// with only two decimals (quantization up to 0.005), so they get an
// absolute floor on the tolerance.
func TestModelReproducesTable1(t *testing.T) {
	model := DefaultT3E600()
	rows := model.ModelTable1()
	if len(rows) != len(PaperTable1) {
		t.Fatalf("%d rows", len(rows))
	}
	check := func(pes int, name string, got, want, relTol, absTol float64) {
		diff := math.Abs(got - want)
		if diff > absTol && diff/want > relTol {
			t.Errorf("PEs=%d %s: model %.4f vs paper %.4f (%.1f%% off)",
				pes, name, got, want, 100*diff/want)
		}
	}
	for i, row := range rows {
		paper := PaperTable1[i]
		check(paper.PEs, "filter", row.Filter, paper.Filter, 0.10, 0.006)
		check(paper.PEs, "motion", row.Motion, paper.Motion, 0.10, 0.01)
		check(paper.PEs, "rvo", row.RVO, paper.RVO, 0.03, 0.01)
		check(paper.PEs, "total", row.Total, paper.Total, 0.03, 0.02)
		check(paper.PEs, "speedup", row.Speedup, paper.Speedup, 0.04, 0.2)
	}
}

func TestSpeedupShapeMatchesPaper(t *testing.T) {
	model := DefaultT3E600()
	rows := model.ModelTable1()
	// Headline claims: "a reasonable speedup is achieved for up to
	// 128 PEs" (81.1x) and 110.5x at 256.
	last := rows[len(rows)-1]
	if last.Speedup < 105 || last.Speedup > 116 {
		t.Errorf("256-PE speedup = %.1f, want ~110.5", last.Speedup)
	}
	// Efficiency decays monotonically with PE count.
	for i := 1; i < len(rows); i++ {
		effPrev := rows[i-1].Speedup / float64(rows[i-1].PEs)
		eff := rows[i].Speedup / float64(rows[i].PEs)
		if eff > effPrev+1e-9 {
			t.Errorf("efficiency increased from %d to %d PEs", rows[i-1].PEs, rows[i].PEs)
		}
	}
	// Total time strictly decreases with more PEs across Table 1.
	for i := 1; i < len(rows); i++ {
		if rows[i].Total >= rows[i-1].Total {
			t.Errorf("total time did not decrease at %d PEs", rows[i].PEs)
		}
	}
}

func TestLargerImagesBetterSpeedup(t *testing.T) {
	// "Larger images take more time, but achieve better speedups."
	model := DefaultT3E600()
	p := 256
	smallT1 := model.TotalTime(1, 64, 64, 16)
	smallTp := model.TotalTime(p, 64, 64, 16)
	bigT1 := model.TotalTime(1, 128, 128, 32)
	bigTp := model.TotalTime(p, 128, 128, 32)
	if bigT1 <= smallT1 || bigTp <= smallTp {
		t.Error("larger image should take more time")
	}
	if bigT1/bigTp <= smallT1/smallTp {
		t.Errorf("larger image speedup %.1f should beat smaller %.1f",
			bigT1/bigTp, smallT1/smallTp)
	}
}

func TestRVODominatesSerialTime(t *testing.T) {
	// "The most time consuming module is the RVO."
	model := DefaultT3E600()
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		r := model.RVOTime(p, 64, 64, 16)
		f := model.FilterTime(p, 64, 64, 16)
		m := model.MotionTime(p, 64, 64, 16)
		if r < f || r < m {
			t.Errorf("PEs=%d: RVO (%.3f) not dominant (filter %.3f, motion %.3f)", p, r, f, m)
		}
	}
}

func TestImbalanceForNonPowerOfTwo(t *testing.T) {
	// 16 slices on 3 PEs: busiest PE has 6 of 16 slices -> imb = 1.125.
	_, imb := scaleAndImbalance(64, 64, 16, 3)
	if math.Abs(imb-6.0/16.0*3.0) > 1e-12 {
		t.Errorf("imbalance = %v, want 1.125", imb)
	}
	// Powers of two divide evenly.
	for _, p := range []int{1, 2, 4, 8, 16, 32, 256} {
		_, imb := scaleAndImbalance(64, 64, 16, p)
		if imb != 1 {
			t.Errorf("p=%d imbalance = %v, want 1", p, imb)
		}
	}
}

// Property: for every PE count 1..512 the modeled chain is never
// slower than serial, never faster than perfectly linear, and the
// speedup is positive.
func TestCostModelBoundsProperty(t *testing.T) {
	model := DefaultT3E600()
	t1 := model.TotalTime(1, 64, 64, 16)
	for p := 1; p <= 512; p++ {
		tp := model.TotalTime(p, 64, 64, 16)
		if tp <= 0 {
			t.Fatalf("p=%d: non-positive time %v", p, tp)
		}
		if tp > t1*1.001 {
			t.Fatalf("p=%d: slower (%v) than serial (%v)", p, tp, t1)
		}
		if sp := t1 / tp; sp > float64(p)*1.05 {
			t.Fatalf("p=%d: super-linear speedup %.1f from a cost model", p, sp)
		}
	}
}

func TestRVOFlopsImplySustainedRate(t *testing.T) {
	// The calibration story: full raster (432 grid points, 64 scans)
	// over the brain at one PE in ~109 s implies ~40-50 Mflop/s.
	flops := RVOFlops(64, 64, 16, 432, 64)
	rate := flops / 109.27
	if rate < 30e6 || rate > 60e6 {
		t.Errorf("implied sustained rate = %.1f Mflop/s, want 30-60", rate/1e6)
	}
	model := DefaultT3E600()
	if math.Abs(rate-model.SustainedFlopsPerPE)/model.SustainedFlopsPerPE > 0.25 {
		t.Errorf("documented rate %.1f Mflop/s inconsistent with implied %.1f",
			model.SustainedFlopsPerPE/1e6, rate/1e6)
	}
}
