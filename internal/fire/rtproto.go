package fire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/volume"
)

// The RT protocol is the interface between FIRE's RT-server (running on
// the scanner front-end workstation) and the RT-client. The client
// pulls: it requests the next image and the server answers with the raw
// volume or an end-of-measurement marker. All integers are little
// endian; voxels are float32.

// Message types.
const (
	MsgRequest uint8 = 1 // client -> server: send next image
	MsgImage   uint8 = 2 // server -> client: raw image payload
	MsgDone    uint8 = 3 // server -> client: measurement finished
)

// rtMagic guards against protocol confusion on the wire.
const rtMagic uint32 = 0x46495245 // "FIRE"

// header is the fixed-size preamble of every RT message.
type header struct {
	Magic   uint32
	Type    uint8
	_       [3]uint8 // pad
	Scan    uint32
	NX      uint16
	NY      uint16
	NZ      uint16
	_       uint16 // pad
	Payload uint32 // bytes following the header
}

const headerSize = 24

func writeHeader(w io.Writer, h header) error {
	buf := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(buf[0:], h.Magic)
	buf[4] = h.Type
	binary.LittleEndian.PutUint32(buf[8:], h.Scan)
	binary.LittleEndian.PutUint16(buf[12:], h.NX)
	binary.LittleEndian.PutUint16(buf[14:], h.NY)
	binary.LittleEndian.PutUint16(buf[16:], h.NZ)
	binary.LittleEndian.PutUint32(buf[20:], h.Payload)
	_, err := w.Write(buf)
	return err
}

func readHeader(r io.Reader) (header, error) {
	buf := make([]byte, headerSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return header{}, err
	}
	h := header{
		Magic:   binary.LittleEndian.Uint32(buf[0:]),
		Type:    buf[4],
		Scan:    binary.LittleEndian.Uint32(buf[8:]),
		NX:      binary.LittleEndian.Uint16(buf[12:]),
		NY:      binary.LittleEndian.Uint16(buf[14:]),
		NZ:      binary.LittleEndian.Uint16(buf[16:]),
		Payload: binary.LittleEndian.Uint32(buf[20:]),
	}
	if h.Magic != rtMagic {
		return header{}, fmt.Errorf("fire: bad RT magic %#x", h.Magic)
	}
	return h, nil
}

// WriteRequest sends a next-image request.
func WriteRequest(w io.Writer) error {
	return writeHeader(w, header{Magic: rtMagic, Type: MsgRequest})
}

// WriteDone sends the end-of-measurement marker.
func WriteDone(w io.Writer) error {
	return writeHeader(w, header{Magic: rtMagic, Type: MsgDone})
}

// WriteImage sends one raw image with its scan index.
func WriteImage(w io.Writer, scan int, v *volume.Volume) error {
	h := header{
		Magic: rtMagic, Type: MsgImage, Scan: uint32(scan),
		NX: uint16(v.NX), NY: uint16(v.NY), NZ: uint16(v.NZ),
		Payload: uint32(4 * v.Voxels()),
	}
	if err := writeHeader(w, h); err != nil {
		return err
	}
	buf := make([]byte, 4*v.Voxels())
	for i, f := range v.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(f))
	}
	_, err := w.Write(buf)
	return err
}

// RTMessage is a decoded protocol message.
type RTMessage struct {
	Type  uint8
	Scan  int
	Image *volume.Volume // non-nil for MsgImage
}

// ReadMessage reads and decodes one message.
func ReadMessage(r io.Reader) (RTMessage, error) {
	h, err := readHeader(r)
	if err != nil {
		return RTMessage{}, err
	}
	msg := RTMessage{Type: h.Type, Scan: int(h.Scan)}
	switch h.Type {
	case MsgRequest, MsgDone:
		if h.Payload != 0 {
			return RTMessage{}, fmt.Errorf("fire: unexpected payload %d on message type %d", h.Payload, h.Type)
		}
		return msg, nil
	case MsgImage:
		nvox := int(h.NX) * int(h.NY) * int(h.NZ)
		if nvox == 0 || h.Payload != uint32(4*nvox) {
			return RTMessage{}, fmt.Errorf("fire: image payload %d inconsistent with dims %dx%dx%d",
				h.Payload, h.NX, h.NY, h.NZ)
		}
		buf := make([]byte, h.Payload)
		if _, err := io.ReadFull(r, buf); err != nil {
			return RTMessage{}, err
		}
		v := volume.New(int(h.NX), int(h.NY), int(h.NZ))
		for i := range v.Data {
			v.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		msg.Image = v
		return msg, nil
	default:
		return RTMessage{}, fmt.Errorf("fire: unknown RT message type %d", h.Type)
	}
}
