package fire

import (
	"math"
	"testing"

	"repro/internal/mri"
	"repro/internal/volume"
)

func TestMedianFilterRemovesImpulse(t *testing.T) {
	v := volume.New(8, 8, 8)
	v.Fill(100)
	v.Set(4, 4, 4, 10000) // hot voxel
	out := MedianFilter3D(v, 1)
	if out.At(4, 4, 4) != 100 {
		t.Errorf("impulse survived median filter: %v", out.At(4, 4, 4))
	}
}

func TestMedianFilterIdempotentOnConstant(t *testing.T) {
	v := volume.New(6, 6, 6)
	v.Fill(42)
	out := MedianFilter3D(v, 1)
	for i, x := range out.Data {
		if x != 42 {
			t.Fatalf("constant field changed at %d: %v", i, x)
		}
	}
}

func TestMedianFilterPreservesStep(t *testing.T) {
	// A median filter preserves edges better than averaging: voxels
	// well inside each half keep their value exactly.
	v := volume.New(8, 8, 8)
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				if x < 4 {
					v.Set(x, y, z, 10)
				} else {
					v.Set(x, y, z, 20)
				}
			}
		}
	}
	out := MedianFilter3D(v, 1)
	if out.At(1, 4, 4) != 10 || out.At(6, 4, 4) != 20 {
		t.Error("median filter destroyed a clean step edge")
	}
}

func TestMedianFilterZeroRadiusClones(t *testing.T) {
	v := volume.New(4, 4, 4)
	v.Set(1, 1, 1, 5)
	out := MedianFilter3D(v, 0)
	if out.At(1, 1, 1) != 5 {
		t.Error("r=0 should copy")
	}
	out.Set(1, 1, 1, 9)
	if v.At(1, 1, 1) != 5 {
		t.Error("r=0 result aliases input")
	}
}

func TestAverageFilterSmooths(t *testing.T) {
	v := volume.New(8, 8, 8)
	v.Set(4, 4, 4, 27)
	out := AverageFilter3D(v, 1)
	// 27 spread over a 27-voxel window -> 1 at center.
	if math.Abs(float64(out.At(4, 4, 4))-1) > 1e-6 {
		t.Errorf("center = %v, want 1", out.At(4, 4, 4))
	}
	if math.Abs(float64(out.At(3, 4, 4))-1) > 1e-6 {
		t.Errorf("neighbor = %v, want 1", out.At(3, 4, 4))
	}
	if out.At(0, 0, 0) != 0 {
		t.Errorf("far voxel = %v, want 0", out.At(0, 0, 0))
	}
}

func TestAverageFilterPreservesMeanOnConstant(t *testing.T) {
	v := volume.New(5, 5, 5)
	v.Fill(7)
	out := AverageFilter3D(v, 2)
	for _, x := range out.Data {
		if math.Abs(float64(x)-7) > 1e-5 {
			t.Fatalf("constant not preserved: %v", x)
		}
	}
}

func phantomVolume() *volume.Volume {
	ph := mri.NewPhantom(24, 24, 12, nil)
	return ph.Anatomy
}

func TestEstimateShiftRecoversKnownMotion(t *testing.T) {
	ref := phantomVolume()
	for _, want := range [][3]float64{
		{1.0, 0, 0},
		{0.5, -0.7, 0.3},
		{-1.2, 0.4, -0.5},
	} {
		cur := ref.Shift(want[0], want[1], want[2])
		got, err := EstimateShift(ref, cur, MotionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if math.Abs(got[i]-want[i]) > 0.08 {
				t.Errorf("shift %v: estimated %v (axis %d off by %.3f)",
					want, got, i, math.Abs(got[i]-want[i]))
			}
		}
	}
}

func TestMotionCorrectRestoresImage(t *testing.T) {
	ref := phantomVolume()
	cur := ref.Shift(0.8, -0.6, 0.2)
	fixed, d, err := MotionCorrect(ref, cur, MotionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[0]-0.8) > 0.1 {
		t.Errorf("estimated dx = %v", d[0])
	}
	// Interior voxels should match the reference closely after
	// correction.
	var rms, norm float64
	for z := 3; z < ref.NZ-3; z++ {
		for y := 3; y < ref.NY-3; y++ {
			for x := 3; x < ref.NX-3; x++ {
				diff := float64(fixed.At(x, y, z) - ref.At(x, y, z))
				rms += diff * diff
				norm += float64(ref.At(x, y, z)) * float64(ref.At(x, y, z))
			}
		}
	}
	// Compare against the ideal correction (true shift, same double
	// resampling): the estimator must be nearly as good. Comparing
	// against the raw reference instead would mostly measure the
	// trilinear low-pass loss at the phantom's sharp skull edges.
	ideal := cur.Shift(-0.8, 0.6, -0.2)
	var idealRms float64
	for z := 3; z < ref.NZ-3; z++ {
		for y := 3; y < ref.NY-3; y++ {
			for x := 3; x < ref.NX-3; x++ {
				d := float64(ideal.At(x, y, z) - ref.At(x, y, z))
				idealRms += d * d
			}
		}
	}
	if rms > idealRms*1.1+1e-12 {
		t.Errorf("correction residual %.3e worse than ideal-shift residual %.3e", rms/norm, idealRms/norm)
	}
}

func TestEstimateShiftShapeMismatch(t *testing.T) {
	a := volume.New(4, 4, 4)
	b := volume.New(4, 4, 5)
	if _, err := EstimateShift(a, b, MotionOptions{}); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestEstimateShiftFeaturelessErrors(t *testing.T) {
	a := volume.New(8, 8, 8) // all zeros: no gradients anywhere
	b := volume.New(8, 8, 8)
	if _, err := EstimateShift(a, b, MotionOptions{}); err == nil {
		t.Error("featureless image should error (singular normal equations)")
	}
}

func TestDetrendRemovesLinearDrift(t *testing.T) {
	n := 40
	d, err := NewDetrender(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = 100 + 0.5*float64(i) // baseline + drift
	}
	out, err := d.Apply(y)
	if err != nil {
		t.Fatal(err)
	}
	// Drift gone, baseline (mean) retained.
	var mean float64
	for _, v := range out {
		mean += v
	}
	mean /= float64(n)
	if math.Abs(mean-100-0.5*float64(n-1)/2) > 1e-9 {
		t.Errorf("mean after detrend = %v", mean)
	}
	for i := 1; i < n; i++ {
		if math.Abs(out[i]-out[0]) > 1e-9 {
			t.Fatalf("residual drift at %d: %v vs %v", i, out[i], out[0])
		}
	}
}

func TestDetrendPreservesSignal(t *testing.T) {
	// A zero-mean oscillation orthogonal-ish to the drift terms
	// should survive detrending nearly unchanged.
	n := 64
	d, err := NewDetrender(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, n)
	sig := make([]float64, n)
	for i := range y {
		sig[i] = math.Sin(2 * math.Pi * float64(i) / 8)
		y[i] = sig[i] + 3 + 0.2*float64(i)
	}
	out, _ := d.Apply(y)
	// Compare detrended signal shape against the pure oscillation.
	var dot, ss float64
	for i := range out {
		c := out[i] - 3 - 0.2*float64(n-1)/2 // remove retained baseline
		dot += c * sig[i]
		ss += sig[i] * sig[i]
	}
	if dot/ss < 0.95 {
		t.Errorf("signal attenuated by detrend: projection %.3f", dot/ss)
	}
}

func TestDetrenderValidation(t *testing.T) {
	if _, err := NewDetrender(3, 2); err == nil {
		t.Error("too-short series accepted")
	}
	if _, err := NewDetrender(10, 0); err == nil {
		t.Error("order 0 accepted")
	}
	d, _ := NewDetrender(10, 1)
	if _, err := d.Apply(make([]float64, 5)); err == nil {
		t.Error("wrong-length series accepted")
	}
}

func TestCorrelatorFindsActivation(t *testing.T) {
	act := mri.Activation{CX: 12, CY: 12, CZ: 6, Radius: 3, Amplitude: 0.05, HRF: mri.DefaultHRF}
	ph := mri.NewPhantom(24, 24, 12, []mri.Activation{act})
	cfg := mri.ScanConfig{NX: 24, NY: 24, NZ: 12, TR: 2, NScans: 48, NoiseStd: 2, Seed: 3}
	sc := mri.NewScanner(ph, cfg)
	ref := sc.Reference(0)
	c := NewCorrelator(ref, 24, 24, 12)
	for {
		v := sc.Next()
		if v == nil {
			break
		}
		if err := c.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Map()
	if err != nil {
		t.Fatal(err)
	}
	if r := m.At(12, 12, 6); r < 0.8 {
		t.Errorf("activation center correlation = %.3f, want > 0.8", r)
	}
	if r := math.Abs(float64(m.At(3, 3, 2))); r > 0.6 {
		t.Errorf("background correlation = %.3f, want low", r)
	}
	// Correlations bounded in [-1, 1].
	for i, v := range m.Data {
		if v < -1 || v > 1 {
			t.Fatalf("correlation out of range at %d: %v", i, v)
		}
	}
}

func TestCorrelatorValidation(t *testing.T) {
	c := NewCorrelator(make([]float64, 4), 4, 4, 4)
	if _, err := c.Map(); err == nil {
		t.Error("Map with too few scans accepted")
	}
	if err := c.Add(volume.New(5, 4, 4)); err == nil {
		t.Error("wrong shape accepted")
	}
	v := volume.New(4, 4, 4)
	for i := 0; i < 4; i++ {
		if err := c.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Add(v); err == nil {
		t.Error("scan beyond reference length accepted")
	}
}

func TestCorrelateSeriesMatchesIncremental(t *testing.T) {
	act := mri.Activation{CX: 8, CY: 8, CZ: 4, Radius: 2, Amplitude: 0.04, HRF: mri.DefaultHRF}
	ph := mri.NewPhantom(16, 16, 8, []mri.Activation{act})
	cfg := mri.ScanConfig{NX: 16, NY: 16, NZ: 8, TR: 2, NScans: 32, NoiseStd: 1, Seed: 9}
	sc := mri.NewScanner(ph, cfg)
	var series []*volume.Volume
	for {
		v := sc.Next()
		if v == nil {
			break
		}
		series = append(series, v)
	}
	ref := sc.Reference(0)
	batch, err := CorrelateSeries(series, ref)
	if err != nil {
		t.Fatal(err)
	}
	inc := NewCorrelator(ref, 16, 16, 8)
	for _, v := range series {
		inc.Add(v)
	}
	m, _ := inc.Map()
	for i := range m.Data {
		if math.Abs(float64(m.Data[i]-batch.Data[i])) > 1e-6 {
			t.Fatalf("incremental and batch maps differ at %d", i)
		}
	}
}

func TestROITimeCourse(t *testing.T) {
	series := []*volume.Volume{volume.New(2, 2, 1), volume.New(2, 2, 1)}
	series[0].Data = []float32{1, 2, 3, 4}
	series[1].Data = []float32{5, 6, 7, 8}
	roi := []bool{true, false, false, true}
	tc, err := ROITimeCourse(series, roi)
	if err != nil {
		t.Fatal(err)
	}
	if tc[0] != 2.5 || tc[1] != 6.5 {
		t.Errorf("time course = %v", tc)
	}
	if _, err := ROITimeCourse(series, []bool{true}); err == nil {
		t.Error("bad mask length accepted")
	}
	if _, err := ROITimeCourse(series, make([]bool, 4)); err == nil {
		t.Error("empty ROI accepted")
	}
	if _, err := ROITimeCourse(nil, roi); err == nil {
		t.Error("empty series accepted")
	}
}

func TestClipMap(t *testing.T) {
	r := &Result{Corr: volume.New(2, 1, 1)}
	r.Corr.Data[0] = 0.7
	r.Corr.Data[1] = -0.8
	m := r.ClipMap(0.75)
	if m[0] || !m[1] {
		t.Errorf("clip map = %v", m)
	}
}
