package fire

import (
	"fmt"
	"math"

	"repro/internal/volume"
)

// Correlator accumulates voxel-wise Pearson correlation between the
// measured signal and a fixed reference vector, scan by scan — the
// core analysis step FIRE performs within the 2-second acquisition
// time. Sums are accumulated incrementally so each new scan costs one
// pass over the volume.
type Correlator struct {
	ref        []float64
	nx, ny, nz int
	n          int       // scans folded in
	sx         float64   // sum of ref over folded scans
	sxx        float64   // sum of ref^2
	sy         []float64 // per-voxel sum of signal
	syy        []float64 // per-voxel sum of signal^2
	sxy        []float64 // per-voxel sum of ref*signal
}

// NewCorrelator creates a correlator against the given reference
// vector for volumes of the given shape.
func NewCorrelator(ref []float64, nx, ny, nz int) *Correlator {
	nvox := nx * ny * nz
	return &Correlator{
		ref: ref, nx: nx, ny: ny, nz: nz,
		sy: make([]float64, nvox), syy: make([]float64, nvox), sxy: make([]float64, nvox),
	}
}

// Scans reports how many scans have been folded in.
func (c *Correlator) Scans() int { return c.n }

// Add folds in the next scan.
func (c *Correlator) Add(v *volume.Volume) error {
	if v.NX != c.nx || v.NY != c.ny || v.NZ != c.nz {
		return fmt.Errorf("fire: scan shape %dx%dx%d != correlator shape %dx%dx%d",
			v.NX, v.NY, v.NZ, c.nx, c.ny, c.nz)
	}
	if c.n >= len(c.ref) {
		return fmt.Errorf("fire: more scans (%d) than reference samples (%d)", c.n+1, len(c.ref))
	}
	x := c.ref[c.n]
	c.sx += x
	c.sxx += x * x
	for i, raw := range v.Data {
		y := float64(raw)
		c.sy[i] += y
		c.syy[i] += y * y
		c.sxy[i] += x * y
	}
	c.n++
	return nil
}

// Map returns the current correlation-coefficient volume. Voxels with
// (near-)constant signal get correlation 0. At least 3 scans are
// required.
func (c *Correlator) Map() (*volume.Volume, error) {
	if c.n < 3 {
		return nil, fmt.Errorf("fire: need >= 3 scans for a correlation map, have %d", c.n)
	}
	out := volume.New(c.nx, c.ny, c.nz)
	fn := float64(c.n)
	varX := fn*c.sxx - c.sx*c.sx
	if varX <= 0 {
		return out, nil // constant reference so far: all zeros
	}
	for i := range out.Data {
		varY := fn*c.syy[i] - c.sy[i]*c.sy[i]
		if varY <= 1e-12 {
			continue
		}
		cov := fn*c.sxy[i] - c.sx*c.sy[i]
		r := cov / math.Sqrt(varX*varY)
		// Clamp FP excursions so downstream clip levels behave.
		if r > 1 {
			r = 1
		} else if r < -1 {
			r = -1
		}
		out.Data[i] = float32(r)
	}
	return out, nil
}

// CorrelateSeries computes the correlation map of a complete series in
// one call (the offline path; the realtime path uses Add incrementally).
func CorrelateSeries(series []*volume.Volume, ref []float64) (*volume.Volume, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("fire: empty series")
	}
	c := NewCorrelator(ref, series[0].NX, series[0].NY, series[0].NZ)
	for _, v := range series {
		if err := c.Add(v); err != nil {
			return nil, err
		}
	}
	return c.Map()
}

// ROITimeCourse extracts the mean signal time course of a region of
// interest — the upper-right display of the FIRE GUI (figure 3).
func ROITimeCourse(series []*volume.Volume, roi []bool) ([]float64, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("fire: empty series")
	}
	if len(roi) != series[0].Voxels() {
		return nil, fmt.Errorf("fire: ROI mask length %d != voxels %d", len(roi), series[0].Voxels())
	}
	var count int
	for _, b := range roi {
		if b {
			count++
		}
	}
	if count == 0 {
		return nil, fmt.Errorf("fire: empty ROI")
	}
	out := make([]float64, len(series))
	for t, v := range series {
		var s float64
		for i, b := range roi {
			if b {
				s += float64(v.Data[i])
			}
		}
		out[t] = s / float64(count)
	}
	return out, nil
}
