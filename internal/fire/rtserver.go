package fire

import (
	"fmt"
	"net"
	"time"

	"repro/internal/mri"
)

// RTServer mirrors FIRE's RT-server: it runs on the scanner's front-end
// workstation and hands raw images to the RT-client on request. Here
// the scanner is the mri.Scanner simulator; AvailabilityDelay models
// the ~1.5 s between the end of a scan and the image being ready at the
// server (section 4, step 1).
type RTServer struct {
	Scanner *mri.Scanner
	// AvailabilityDelay is wall-clock delay applied before each image
	// is released (0 in tests, mri.AvailabilityDelay seconds scaled
	// down in demos).
	AvailabilityDelay time.Duration
}

// ServeConn answers requests on one client connection until the
// measurement ends or the client disconnects. It returns the number of
// images served.
func (s *RTServer) ServeConn(conn net.Conn) (int, error) {
	served := 0
	for {
		msg, err := ReadMessage(conn)
		if err != nil {
			return served, fmt.Errorf("fire: RT-server read: %w", err)
		}
		if msg.Type != MsgRequest {
			return served, fmt.Errorf("fire: RT-server got message type %d, want request", msg.Type)
		}
		v := s.Scanner.Next()
		if v == nil {
			if err := WriteDone(conn); err != nil {
				return served, err
			}
			return served, nil
		}
		if s.AvailabilityDelay > 0 {
			time.Sleep(s.AvailabilityDelay)
		}
		if err := WriteImage(conn, s.Scanner.ScansDone()-1, v); err != nil {
			return served, fmt.Errorf("fire: RT-server write: %w", err)
		}
		served++
	}
}

// ListenAndServe accepts a single client on l and serves it. It is the
// one-experiment-at-a-time model the real setup had: one scanner, one
// RT-client.
func (s *RTServer) ListenAndServe(l net.Listener) (int, error) {
	conn, err := l.Accept()
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	return s.ServeConn(conn)
}

// RTClient pulls raw images from an RT-server and runs them through the
// processing chain.
type RTClient struct {
	conn net.Conn
}

// NewRTClient wraps an established connection.
func NewRTClient(conn net.Conn) *RTClient { return &RTClient{conn: conn} }

// DialRT connects to an RT-server.
func DialRT(addr string) (*RTClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fire: RT dial: %w", err)
	}
	return &RTClient{conn: conn}, nil
}

// Close closes the connection.
func (c *RTClient) Close() error { return c.conn.Close() }

// NextImage requests and receives the next raw image. It returns
// (nil, scan, nil) at the end of the measurement.
func (c *RTClient) NextImage() (*RTMessage, error) {
	if err := WriteRequest(c.conn); err != nil {
		return nil, err
	}
	msg, err := ReadMessage(c.conn)
	if err != nil {
		return nil, err
	}
	if msg.Type != MsgImage && msg.Type != MsgDone {
		return nil, fmt.Errorf("fire: unexpected message type %d from RT-server", msg.Type)
	}
	return &msg, nil
}
