package fire

import (
	"testing"

	"repro/internal/mri"
	"repro/internal/volume"
)

func TestParallelMedianMatchesSerial(t *testing.T) {
	ph := mri.NewPhantom(24, 24, 12, nil)
	v := ph.Anatomy
	serial := MedianFilter3D(v, 1)
	for _, workers := range []int{1, 2, 3, 4, 16} {
		par := ParallelMedianFilter3D(v, 1, workers)
		for i := range serial.Data {
			if par.Data[i] != serial.Data[i] {
				t.Fatalf("workers=%d: voxel %d differs (%v vs %v)",
					workers, i, par.Data[i], serial.Data[i])
			}
		}
	}
	// Zero radius clones.
	c := ParallelMedianFilter3D(v, 0, 4)
	if c.At(12, 12, 6) != v.At(12, 12, 6) {
		t.Error("r=0 should copy")
	}
}

func TestParallelRVOMatchesSerial(t *testing.T) {
	series, stim, tr, center := rvoSeries(t, mri.HRF{Delay: 7, Dispersion: 1.2})
	serial, err := RVO(series, stim, tr, DefaultRVOGrid())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		par, err := ParallelRVO(series, stim, tr, DefaultRVOGrid(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Evaluated != serial.Evaluated {
			t.Errorf("workers=%d: %d evaluations vs serial %d", workers, par.Evaluated, serial.Evaluated)
		}
		for i := range serial.Corr.Data {
			if par.Corr.Data[i] != serial.Corr.Data[i] ||
				par.Delay.Data[i] != serial.Delay.Data[i] ||
				par.Dispersion.Data[i] != serial.Dispersion.Data[i] {
				t.Fatalf("workers=%d: voxel %d differs", workers, i)
			}
		}
	}
	_ = center
}

func TestParallelRVOWorkersDefault(t *testing.T) {
	series, stim, tr, _ := rvoSeries(t, mri.DefaultHRF)
	// workers <= 0 -> GOMAXPROCS; must still validate inputs.
	if _, err := ParallelRVO(series[:2], stim, tr, DefaultRVOGrid(), 0); err == nil {
		t.Error("short series accepted")
	}
	res, err := ParallelRVO(series, stim, tr, CoarseRVOGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated == 0 {
		t.Error("no work done")
	}
}

func TestT3EExecutor(t *testing.T) {
	ph := mri.NewPhantom(32, 32, 8, nil)
	raw := ph.Anatomy.Shift(0.5, -0.3, 0.1)
	ex := &T3EExecutor{Model: DefaultT3E600(), PEs: 128, Workers: 2}
	out, err := ex.Process(ph.Anatomy, raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Filtered == nil || !out.Filtered.SameShape(raw) {
		t.Fatal("no filtered output")
	}
	// Modeled time scales with image size relative to the Table-1
	// reference (32x32x8 is 1/16 the work).
	ref := DefaultT3E600().TotalTime(128, 32, 32, 8)
	if out.ModeledSeconds != ref {
		t.Errorf("modeled %.4f s, want %.4f", out.ModeledSeconds, ref)
	}
	// Unconfigured executor errors.
	bad := &T3EExecutor{}
	if _, err := bad.Process(nil, raw); err == nil {
		t.Error("unconfigured executor accepted work")
	}
	// Without a reference, motion correction is skipped but filtering
	// still happens.
	out2, err := ex.Process(nil, raw)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Filtered == nil {
		t.Error("no output without reference")
	}
}

func TestInsertionSortCorrect(t *testing.T) {
	a := []float32{5, 1, 4, 2, 3, 3, -1}
	insertionSort(a)
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			t.Fatalf("not sorted: %v", a)
		}
	}
	empty := []float32{}
	insertionSort(empty) // must not panic
	one := []float32{7}
	insertionSort(one)
	if one[0] != 7 {
		t.Error("single element corrupted")
	}
}

func TestParallelFilterOddSlabCounts(t *testing.T) {
	// More workers than slices: some slabs are empty and must be
	// skipped cleanly.
	v := volume.New(8, 8, 3)
	for i := range v.Data {
		v.Data[i] = float32(i % 7)
	}
	serial := MedianFilter3D(v, 1)
	par := ParallelMedianFilter3D(v, 1, 16)
	for i := range serial.Data {
		if serial.Data[i] != par.Data[i] {
			t.Fatalf("voxel %d differs", i)
		}
	}
}
