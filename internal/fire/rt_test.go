package fire

import (
	"bytes"
	"math"
	"net"
	"testing"

	"repro/internal/mri"
	"repro/internal/volume"
)

func TestProtoImageRoundTrip(t *testing.T) {
	v := volume.New(4, 3, 2)
	for i := range v.Data {
		v.Data[i] = float32(i) * 1.5
	}
	var buf bytes.Buffer
	if err := WriteImage(&buf, 7, v); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgImage || msg.Scan != 7 {
		t.Fatalf("msg = %+v", msg)
	}
	if !msg.Image.SameShape(v) {
		t.Fatal("shape lost")
	}
	for i := range v.Data {
		if msg.Image.Data[i] != v.Data[i] {
			t.Fatalf("voxel %d: %v != %v", i, msg.Image.Data[i], v.Data[i])
		}
	}
}

func TestProtoControlRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf); err != nil {
		t.Fatal(err)
	}
	if err := WriteDone(&buf); err != nil {
		t.Fatal(err)
	}
	m1, err := ReadMessage(&buf)
	if err != nil || m1.Type != MsgRequest {
		t.Fatalf("m1 = %+v err=%v", m1, err)
	}
	m2, err := ReadMessage(&buf)
	if err != nil || m2.Type != MsgDone {
		t.Fatalf("m2 = %+v err=%v", m2, err)
	}
}

func TestProtoRejectsGarbage(t *testing.T) {
	buf := bytes.NewBuffer(make([]byte, headerSize)) // zero magic
	if _, err := ReadMessage(buf); err == nil {
		t.Error("zero-magic header accepted")
	}
}

func TestProtoRejectsTruncated(t *testing.T) {
	v := volume.New(4, 4, 4)
	var buf bytes.Buffer
	if err := WriteImage(&buf, 0, v); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewBuffer(buf.Bytes()[:buf.Len()-10])
	if _, err := ReadMessage(trunc); err == nil {
		t.Error("truncated image accepted")
	}
}

// TestRTServerClientEndToEnd runs a real scanner -> RT-server ->
// RT-client -> correlation session over TCP on localhost.
func TestRTServerClientEndToEnd(t *testing.T) {
	act := mri.Activation{CX: 8, CY: 8, CZ: 4, Radius: 2.5, Amplitude: 0.06, HRF: mri.DefaultHRF}
	ph := mri.NewPhantom(16, 16, 8, []mri.Activation{act})
	nScans := 24
	cfg := mri.ScanConfig{NX: 16, NY: 16, NZ: 8, TR: 2, NScans: nScans, NoiseStd: 1, Seed: 21}
	sc := mri.NewScanner(ph, cfg)
	srv := &RTServer{Scanner: sc}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveErr := make(chan error, 1)
	served := make(chan int, 1)
	go func() {
		n, err := srv.ListenAndServe(l)
		served <- n
		serveErr <- err
	}()

	client, err := DialRT(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ref := sc.Reference(0)
	corr := NewCorrelator(ref, 16, 16, 8)
	frames := 0
	for {
		msg, err := client.NextImage()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Type == MsgDone {
			break
		}
		if msg.Scan != frames {
			t.Fatalf("scan index %d, want %d", msg.Scan, frames)
		}
		if err := corr.Add(msg.Image); err != nil {
			t.Fatal(err)
		}
		frames++
	}
	if frames != nScans {
		t.Fatalf("received %d frames, want %d", frames, nScans)
	}
	if n := <-served; n != nScans {
		t.Errorf("server served %d", n)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("server error: %v", err)
	}
	m, err := corr.Map()
	if err != nil {
		t.Fatal(err)
	}
	if r := m.At(8, 8, 4); r < 0.7 {
		t.Errorf("end-to-end correlation at activation = %.3f", r)
	}
}

func TestPaperStageTimes(t *testing.T) {
	model := DefaultT3E600()
	st := PaperStageTimes(model, 256)
	// "a total delay of less than 5 seconds" with 256 PEs.
	if d := st.TotalDelay(); d >= 5.0 || d < 4.0 {
		t.Errorf("total delay at 256 PEs = %.2f s, want in [4, 5)", d)
	}
	// "the sum of the delays in the RT-client and the T3E, which is
	// 2.7 seconds in the above example".
	if p := st.UnpipelinedPeriod(); math.Abs(p-2.7) > 0.1 {
		t.Errorf("unpipelined period = %.2f s, want ~2.7", p)
	}
	// "the scanner can safely be operated with a repetition rate of
	// 3 seconds".
	if tr := SafeTR(st.UnpipelinedPeriod()); tr != 3.0 {
		t.Errorf("safe TR = %.1f s, want 3.0", tr)
	}
	// Pipelining would push the period down to the transfer stage.
	if p := st.PipelinedPeriod(); math.Abs(p-st.Transfers) > 1e-9 {
		t.Errorf("pipelined period = %.2f, want transfers-dominated %.2f", p, st.Transfers)
	}
}

func TestSimulateSessionUnpipelined(t *testing.T) {
	model := DefaultT3E600()
	st := PaperStageTimes(model, 256)
	res, err := SimulateSession(st, 3.0, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	// At TR = 3 s the unpipelined chain (2.7 s) keeps up: no drops.
	if res.DroppedScans != 0 {
		t.Errorf("dropped %d scans at TR=3", res.DroppedScans)
	}
	if res.MaxDelay >= 5.0 {
		t.Errorf("max delay %.2f s, want < 5", res.MaxDelay)
	}
	if math.Abs(res.AchievedPeriod-3.0) > 0.05 {
		t.Errorf("achieved period %.2f, want scanner-limited 3.0", res.AchievedPeriod)
	}
}

func TestSimulateSessionDropsAtFastTR(t *testing.T) {
	model := DefaultT3E600()
	st := PaperStageTimes(model, 256)
	// TR = 2 s is faster than the 2.7 s unpipelined period: the
	// online analysis must skip scans.
	res, err := SimulateSession(st, 2.0, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedScans == 0 {
		t.Error("expected dropped scans at TR=2 with 2.7 s period")
	}
}

func TestSimulateSessionPipelinedKeepsUp(t *testing.T) {
	model := DefaultT3E600()
	st := PaperStageTimes(model, 256)
	// Pipelined, the bottleneck stage is 1.1 s < TR = 2 s: no drops.
	res, err := SimulateSession(st, 2.0, 40, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedScans != 0 {
		t.Errorf("pipelined session dropped %d scans at TR=2", res.DroppedScans)
	}
	if math.Abs(res.AchievedPeriod-2.0) > 0.05 {
		t.Errorf("pipelined achieved period %.2f, want 2.0", res.AchievedPeriod)
	}
}

func TestSimulateSessionValidation(t *testing.T) {
	st := StageTimes{ScanToServer: 1, Transfers: 1, Compute: 1, Display: 1}
	if _, err := SimulateSession(st, 0, 10, false); err == nil {
		t.Error("tr=0 accepted")
	}
	if _, err := SimulateSession(st, 2, 0, false); err == nil {
		t.Error("frames=0 accepted")
	}
}

func TestSafeTRRounding(t *testing.T) {
	if SafeTR(2.7) != 3.0 {
		t.Errorf("SafeTR(2.7) = %v", SafeTR(2.7))
	}
	if SafeTR(3.0) != 3.0 {
		t.Errorf("SafeTR(3.0) = %v", SafeTR(3.0))
	}
	if SafeTR(3.01) != 3.5 {
		t.Errorf("SafeTR(3.01) = %v", SafeTR(3.01))
	}
}
