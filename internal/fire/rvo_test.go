package fire

import (
	"math"
	"testing"

	"repro/internal/mri"
	"repro/internal/volume"
)

// rvoSeries builds a small synthetic series with a single activation of
// known hemodynamics.
func rvoSeries(t *testing.T, h mri.HRF) ([]*volume.Volume, []float64, float64, [3]int) {
	t.Helper()
	act := mri.Activation{CX: 6, CY: 6, CZ: 3, Radius: 2.5, Amplitude: 0.08, HRF: h}
	ph := mri.NewPhantom(12, 12, 6, []mri.Activation{act})
	tr := 2.0
	nScans := 40
	stim := mri.BlockStimulus(nScans, 8)
	cfg := mri.ScanConfig{NX: 12, NY: 12, NZ: 6, TR: tr, NScans: nScans,
		Stimulus: stim, NoiseStd: 0.5, Seed: 17}
	sc := mri.NewScanner(ph, cfg)
	var series []*volume.Volume
	for {
		v := sc.Next()
		if v == nil {
			break
		}
		series = append(series, v)
	}
	return series, stim, tr, [3]int{6, 6, 3}
}

func TestRVORecoversDelay(t *testing.T) {
	truth := mri.HRF{Delay: 8.0, Dispersion: 1.2}
	series, stim, tr, center := rvoSeries(t, truth)
	res, err := RVO(series, stim, tr, DefaultRVOGrid())
	if err != nil {
		t.Fatal(err)
	}
	cx, cy, cz := center[0], center[1], center[2]
	if r := res.Corr.At(cx, cy, cz); r < 0.8 {
		t.Fatalf("center correlation after RVO = %.3f", r)
	}
	d := float64(res.Delay.At(cx, cy, cz))
	if math.Abs(d-truth.Delay) > 1.5 {
		t.Errorf("fitted delay = %.2f, want %.1f +- 1.5", d, truth.Delay)
	}
	if res.Evaluated == 0 {
		t.Error("no grid evaluations counted")
	}
}

func TestRVOImprovesOverFixedReference(t *testing.T) {
	// Signal with a late HRF: a fixed default reference correlates
	// worse than the RVO-optimized one. This is the sensitivity
	// improvement the paper attributes to RVO.
	truth := mri.HRF{Delay: 11.0, Dispersion: 2.2}
	series, stim, tr, center := rvoSeries(t, truth)
	fixedRef := mri.DefaultHRF.Convolve(stim[:len(series)], tr)
	fixed, err := CorrelateSeries(series, fixedRef)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RVO(series, stim, tr, DefaultRVOGrid())
	if err != nil {
		t.Fatal(err)
	}
	cx, cy, cz := center[0], center[1], center[2]
	rFixed := float64(fixed.At(cx, cy, cz))
	rOpt := float64(res.Corr.At(cx, cy, cz))
	if rOpt <= rFixed {
		t.Errorf("RVO (%.3f) should beat the fixed default reference (%.3f)", rOpt, rFixed)
	}
}

func TestCoarseGridWithRefinementApproachesFullRaster(t *testing.T) {
	truth := mri.HRF{Delay: 7.5, Dispersion: 1.5}
	series, stim, tr, center := rvoSeries(t, truth)
	full, err := RVO(series, stim, tr, DefaultRVOGrid())
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := RVO(series, stim, tr, CoarseRVOGrid())
	if err != nil {
		t.Fatal(err)
	}
	cx, cy, cz := center[0], center[1], center[2]
	rFull := float64(full.Corr.At(cx, cy, cz))
	rCoarse := float64(coarse.Corr.At(cx, cy, cz))
	if rCoarse < rFull-0.02 {
		t.Errorf("coarse+refine correlation %.4f much worse than full raster %.4f", rCoarse, rFull)
	}
	// And it does far less raster work: 30 vs 432 grid points.
	if coarse.Evaluated >= full.Evaluated/5 {
		t.Errorf("coarse grid evaluated %d points vs full %d — too many", coarse.Evaluated, full.Evaluated)
	}
}

func TestRVOValidation(t *testing.T) {
	series, stim, tr, _ := rvoSeries(t, mri.DefaultHRF)
	if _, err := RVO(series[:2], stim, tr, DefaultRVOGrid()); err == nil {
		t.Error("too-short series accepted")
	}
	if _, err := RVO(series, stim, tr, RVOOptions{}); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := RVO(series, stim[:3], tr, DefaultRVOGrid()); err == nil {
		t.Error("short stimulus accepted")
	}
	bad := append([]*volume.Volume{}, series...)
	bad[1] = volume.New(3, 3, 3)
	if _, err := RVO(bad, stim, tr, DefaultRVOGrid()); err == nil {
		t.Error("inconsistent shapes accepted")
	}
}

func TestRVODetrendingImprovesDriftedData(t *testing.T) {
	// Strong baseline drift contaminates the correlation; enabling
	// FIRE's detrending module inside RVO must recover it.
	act := mri.Activation{CX: 6, CY: 6, CZ: 3, Radius: 2.5, Amplitude: 0.06, HRF: mri.DefaultHRF}
	ph := mri.NewPhantom(12, 12, 6, []mri.Activation{act})
	tr := 2.0
	nScans := 40
	stim := mri.BlockStimulus(nScans, 8)
	cfg := mri.ScanConfig{NX: 12, NY: 12, NZ: 6, TR: tr, NScans: nScans,
		Stimulus: stim, NoiseStd: 0.5, DriftPerScan: 3.0, Seed: 23}
	sc := mri.NewScanner(ph, cfg)
	var series []*volume.Volume
	for {
		v := sc.Next()
		if v == nil {
			break
		}
		series = append(series, v)
	}
	plain := DefaultRVOGrid()
	res, err := RVO(series, stim, tr, plain)
	if err != nil {
		t.Fatal(err)
	}
	detrended := DefaultRVOGrid()
	detrended.DetrendOrder = 1
	resDet, err := RVO(series, stim, tr, detrended)
	if err != nil {
		t.Fatal(err)
	}
	rPlain := float64(res.Corr.At(6, 6, 3))
	rDet := float64(resDet.Corr.At(6, 6, 3))
	if rDet <= rPlain {
		t.Errorf("detrended correlation %.3f should beat plain %.3f on drifted data", rDet, rPlain)
	}
	if rDet < 0.75 {
		t.Errorf("detrended correlation only %.3f", rDet)
	}
	// Parallel path agrees with the serial path when detrending.
	par, err := ParallelRVO(series, stim, tr, detrended, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resDet.Corr.Data {
		if par.Corr.Data[i] != resDet.Corr.Data[i] {
			t.Fatalf("parallel detrended RVO differs at %d", i)
		}
	}
}

func TestLinspace(t *testing.T) {
	v := linspace(1, 3, 5)
	want := []float64{1, 1.5, 2, 2.5, 3}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Errorf("linspace[%d] = %v", i, v[i])
		}
	}
	if one := linspace(2, 9, 1); len(one) != 1 || one[0] != 2 {
		t.Errorf("linspace n=1 = %v", one)
	}
}
