package tcpsim_test

import (
	"testing"
	"time"

	"repro/internal/benchkit"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// BenchmarkTCPTransfer measures a full end-to-end 1 MiB TCP bulk
// transfer over a gigabit link; the body lives in internal/benchkit so
// cmd/gtwbench can run the identical code and emit BENCH_kernel.json.
func BenchmarkTCPTransfer(b *testing.B) { benchkit.TCPTransfer(b) }

// The flow pool must leave a warmed Transfer with zero allocations per
// op: sender, Flow handle and send-timestamp ring all recycle, and the
// packet/event pools below them are already allocation-free. This is
// the regression gate for BenchmarkTCPTransfer's allocs/op.
func TestTCPTransferSteadyStateZeroAllocs(t *testing.T) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddNode("a")
	z := n.AddNode("z")
	n.Connect(a, z, netsim.LinkConfig{Bps: 1e9, Delay: 500 * time.Microsecond, MTU: 9180, QueueBytes: 1 << 30})
	n.ComputeRoutes()
	xfer := func() {
		if _, err := tcpsim.Transfer(n, a.ID, z.ID, 1<<20, tcpsim.Config{}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the flow, packet and event pools.
	xfer()
	xfer()
	if avg := testing.AllocsPerRun(10, xfer); avg > 0 {
		t.Errorf("steady-state TCP transfer allocates %.1f times/op, want 0 (flow pool regression)", avg)
	}
}
