package tcpsim_test

import (
	"testing"

	"repro/internal/benchkit"
)

// BenchmarkTCPTransfer measures a full end-to-end 1 MiB TCP bulk
// transfer over a gigabit link; the body lives in internal/benchkit so
// cmd/gtwbench can run the identical code and emit BENCH_kernel.json.
func BenchmarkTCPTransfer(b *testing.B) { benchkit.TCPTransfer(b) }
