package tcpsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Property: for arbitrary (bounded) link rates, windows and MTUs, a
// completed transfer never exceeds the link's payload capacity, and
// always makes progress.
func TestThroughputNeverExceedsCapacity(t *testing.T) {
	f := func(rateRaw, winRaw, mtuRaw uint16) bool {
		bps := 10e6 + float64(rateRaw)*10e3 // 10..665 Mbit/s
		win := 64<<10 + int(winRaw)*16      // 64KiB..1.1MiB
		mtu := 1500 + int(mtuRaw)%64000     // 1500..65500
		k := sim.NewKernel()
		n := netsim.New(k)
		a := n.AddNode("a")
		b := n.AddNode("b")
		n.Connect(a, b, netsim.LinkConfig{
			Bps: bps, Delay: time.Millisecond, MTU: mtu, QueueBytes: 32 << 20,
		})
		n.ComputeRoutes()
		res, err := Transfer(n, a.ID, b.ID, 4<<20, Config{WindowBytes: win})
		if err != nil {
			return false
		}
		if res.ThroughputBps <= 0 {
			return false
		}
		// Goodput strictly below raw link rate (headers + ACK RTTs).
		return res.ThroughputBps < bps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: throughput is monotone (non-strictly) in window size on a
// long-RTT path, up to the BDP.
func TestWindowMonotonicity(t *testing.T) {
	measure := func(win int) float64 {
		k := sim.NewKernel()
		n := netsim.New(k)
		a := n.AddNode("a")
		b := n.AddNode("b")
		n.Connect(a, b, netsim.LinkConfig{
			Bps: 622e6, Delay: 5 * time.Millisecond, MTU: 65536, QueueBytes: 64 << 20,
		})
		n.ComputeRoutes()
		res, err := Transfer(n, a.ID, b.ID, 32<<20, Config{WindowBytes: win})
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputBps
	}
	prev := 0.0
	for _, win := range []int{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		cur := measure(win)
		if cur < prev*0.98 { // allow 2% numerical slack
			t.Errorf("window %d KiB: throughput %.1f Mbit/s dropped below %.1f",
				win>>10, cur/1e6, prev/1e6)
		}
		prev = cur
	}
}
