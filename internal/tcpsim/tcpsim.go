// Package tcpsim models TCP bulk transfers over the internal/netsim
// packet network: slow start, congestion avoidance, cumulative ACKs,
// fast retransmit and RTO-based go-back-N recovery. The model's purpose
// is faithful *throughput shaping* — window limits, MTU effects (the
// paper's 64 KByte MTU vs. Classical-IP defaults), bandwidth-delay
// products over the 100 km WAN, and the interaction with gateway and
// host-I/O bottlenecks — not byte-accurate protocol emulation.
package tcpsim

import (
	"fmt"
	"time"
	"unsafe"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// HeaderBytes is the TCP/IP header size assumed for every segment.
const HeaderBytes = 40

// AckBytes is the wire size of a pure ACK at the network layer.
const AckBytes = 40

// Config tunes a Transfer.
type Config struct {
	// MSS overrides the maximum segment size. Zero derives it from
	// the path MTU minus HeaderBytes.
	MSS int
	// WindowBytes is the send/receive window (socket buffer). Zero
	// defaults to 1 MiB — a typical well-tuned 1999 configuration.
	// A window smaller than one segment is clamped up to one MSS at
	// send time (a real stack still sends one segment), so tiny
	// socket buffers degrade to stop-and-wait instead of stalling.
	WindowBytes int
	// InitialCwndSegs is the initial congestion window in segments
	// (default 2).
	InitialCwndSegs int
	// RTOMin floors the retransmission timeout (default 200 ms).
	RTOMin time.Duration
	// MaxRetries bounds consecutive RTO retransmissions of the same
	// data before the transfer errors out (default 8).
	MaxRetries int
}

func (c *Config) fill() {
	if c.WindowBytes == 0 {
		c.WindowBytes = 1 << 20
	}
	if c.InitialCwndSegs == 0 {
		c.InitialCwndSegs = 2
	}
	if c.RTOMin == 0 {
		c.RTOMin = 200 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
}

// Result reports the outcome of a Transfer.
type Result struct {
	Bytes         int64
	Duration      time.Duration
	ThroughputBps float64 // goodput: payload bits per second
	MSS           int
	Retransmits   int
	SRTT          time.Duration // smoothed RTT estimate at completion
}

func (r Result) String() string {
	return fmt.Sprintf("%d bytes in %v = %.1f Mbit/s (mss %d, %d rtx)",
		r.Bytes, r.Duration.Round(time.Microsecond), r.ThroughputBps/1e6, r.MSS, r.Retransmits)
}

// tsEntry is one slot of the send-timestamp ring buffer. A slot is
// valid for sequence seq only while gen matches the sender's current
// go-back-N generation; bumping the generation invalidates every slot
// at once, which is what the old map's clear() did, without the O(n)
// wipe or the per-segment map insert.
type tsEntry struct {
	seq int64
	ts  sim.Time
	gen uint32
}

// dataPath and ackPath give the sender two distinct netsim.Handler
// identities without allocating per-packet closures: data segments
// carry [Seq, Aux) = [seq, end), pure ACKs carry Seq = ackNo.
type dataPath struct{ s *sender }

func (h dataPath) HandleDeliver(p *netsim.Packet) { h.s.onDataArrive(p.Seq, p.Aux) }
func (h dataPath) HandleDrop(*netsim.Packet)      {} // recovered by RTO

type ackPath struct{ s *sender }

func (h ackPath) HandleDeliver(p *netsim.Packet) { h.s.onAck(p.Seq) }
func (h ackPath) HandleDrop(*netsim.Packet)      {} // cumulative ACKs are redundant

type sender struct {
	n        *netsim.Network
	src, dst netsim.NodeID
	cfg      Config
	total    int64

	// kSrc is the kernel owning src. All sender-side state (everything
	// but rcvNext) is read and written only on this kernel; on a
	// partitioned network the receiver side runs on dst's kernel and
	// touches rcvNext alone, so the two sides never race.
	kSrc *sim.Kernel

	mss      int
	ackSeq   int64 // cumulative bytes acknowledged (sender view)
	rcvNext  int64 // highest contiguous byte received (receiver view)
	nextSeq  int64 // next byte to send
	cwnd     float64
	ssthresh float64
	dupAcks  int
	rtx      int
	retries  int

	srtt   time.Duration
	rttvar time.Duration
	// sendTS rings over the outstanding window: the slot for a segment
	// starting at seq is seq/mss modulo the ring size. Segments are
	// always mss-aligned (cumulative ACKs land on segment boundaries,
	// and go-back-N rewinds to one), so live slots never collide.
	sendTS []tsEntry
	tsGen  uint32

	dataH dataPath
	ackH  ackPath

	rtoEv  sim.Event
	done   bool
	start  sim.Time
	finish sim.Time
	err    error

	// handle is the caller-facing Flow, allocated together with the
	// sender so a pooled sender brings its handle along; released
	// guards against double-Release.
	handle   Flow
	released bool
}

// Transfer simulates a one-directional TCP bulk transfer of nbytes from
// src to dst and runs the kernel until it completes (or stalls). Other
// traffic already scheduled on the kernel proceeds concurrently. For
// several simultaneous transfers, use Start + WaitAll.
func Transfer(n *netsim.Network, src, dst netsim.NodeID, nbytes int64, cfg Config) (Result, error) {
	f, err := Start(n, src, dst, nbytes, cfg)
	if err != nil {
		return Result{}, err
	}
	if err := WaitAll(n, f); err != nil {
		return Result{}, err
	}
	res, err := f.Result()
	if err == nil {
		// The handle never escapes and the kernel has run dry, so the
		// flow state can go straight back to the pool.
		f.Release()
	}
	return res, err
}

// window reports the current effective window in bytes, never less
// than one segment: with WindowBytes below the MSS (an 8 KiB socket
// buffer over the default 9180-byte MTU, say) the admission check in
// pump could otherwise never pass and the flow would silently stall.
func (s *sender) window() int64 {
	w := s.cwnd
	if float64(s.cfg.WindowBytes) < w {
		w = float64(s.cfg.WindowBytes)
	}
	iw := int64(w)
	if m := int64(s.mss); iw < m {
		iw = m
	}
	return iw
}

// pump sends as many segments as the window allows.
func (s *sender) pump() {
	if s.done || s.err != nil {
		return
	}
	for s.nextSeq < s.total && s.nextSeq-s.ackSeq+int64(s.mss) <= s.window() {
		s.sendSegment(s.nextSeq)
		seg := int64(s.mss)
		if s.nextSeq+seg > s.total {
			seg = s.total - s.nextSeq
		}
		s.nextSeq += seg
	}
	s.armRTO()
}

// recordSendTS stamps the transmission of the segment at seq. Every
// retransmission goes through goBackN, which bumps tsGen, so a segment
// is sent at most once per generation and the slot can be overwritten
// unconditionally (stale occupants are either acked or invalidated).
func (s *sender) recordSendTS(seq int64) {
	e := &s.sendTS[(seq/int64(s.mss))%int64(len(s.sendTS))]
	e.seq, e.gen, e.ts = seq, s.tsGen, s.kSrc.Now()
}

// lookupSendTS reports the send time of the segment at seq, if it was
// stamped in the current generation.
func (s *sender) lookupSendTS(seq int64) (sim.Time, bool) {
	e := &s.sendTS[(seq/int64(s.mss))%int64(len(s.sendTS))]
	if e.seq == seq && e.gen == s.tsGen {
		return e.ts, true
	}
	return 0, false
}

// sendSegment transmits the segment starting at seq.
func (s *sender) sendSegment(seq int64) {
	payload := int64(s.mss)
	if seq+payload > s.total {
		payload = s.total - seq
	}
	end := seq + payload
	s.recordSendTS(seq)
	pkt := s.n.NewPacketAt(s.src)
	pkt.Src, pkt.Dst = s.src, s.dst
	pkt.Bytes = int(payload) + HeaderBytes
	pkt.Seq, pkt.Aux = seq, end
	pkt.Handler = s.dataH
	s.n.Send(pkt)
}

// onDataArrive runs at the receiver: generate a cumulative ACK.
// The simulated network preserves per-path FIFO order, so the receiver
// only needs the highest contiguous byte; holes appear solely through
// drops, which go-back-N recovery fills by resending from ackSeq.
func (s *sender) onDataArrive(seq, end int64) {
	if seq <= s.rcvNext && end > s.rcvNext {
		s.rcvNext = end
	}
	// Running at dst: the ACK allocation must come from dst's pool.
	ack := s.n.NewPacketAt(s.dst)
	ack.Src, ack.Dst = s.dst, s.src
	ack.Bytes = AckBytes
	ack.Seq = s.rcvNext
	ack.Handler = s.ackH
	s.n.Send(ack)
}

// onAck runs at the sender.
func (s *sender) onAck(ackNo int64) {
	if s.done || s.err != nil {
		return
	}
	if ackNo > s.ackSeq {
		// RTT sample from the oldest outstanding segment.
		if ts, ok := s.lookupSendTS(s.ackSeq); ok {
			s.rttSample(s.kSrc.Now().Sub(ts))
		}
		acked := ackNo - s.ackSeq
		s.ackSeq = ackNo
		s.dupAcks = 0
		s.retries = 0
		// Congestion window growth.
		if s.cwnd < s.ssthresh {
			s.cwnd += float64(acked) // slow start
		} else {
			s.cwnd += float64(s.mss) * float64(acked) / s.cwnd // CA
		}
		if s.ackSeq >= s.total {
			s.complete()
			return
		}
		s.pump()
		return
	}
	// Duplicate ACK.
	s.dupAcks++
	if s.dupAcks == 3 {
		// Fast retransmit + multiplicative decrease.
		s.ssthresh = maxf(float64(s.nextSeq-s.ackSeq)/2, float64(2*s.mss))
		s.cwnd = s.ssthresh
		s.rtx++
		s.goBackN()
	}
}

// goBackN rewinds the send pointer to the cumulative ACK and resumes.
// Bumping tsGen invalidates every send timestamp in O(1), so the
// retransmissions stamp fresh times (Karn-style: no samples across a
// retransmit).
func (s *sender) goBackN() {
	s.nextSeq = s.ackSeq
	s.tsGen++
	s.pump()
}

func (s *sender) rttSample(d time.Duration) {
	if s.srtt == 0 {
		s.srtt = d
		s.rttvar = d / 2
		return
	}
	diff := s.srtt - d
	if diff < 0 {
		diff = -diff
	}
	s.rttvar = (3*s.rttvar + diff) / 4
	s.srtt = (7*s.srtt + d) / 8
}

func (s *sender) rto() time.Duration {
	r := s.srtt + 4*s.rttvar
	if r < s.cfg.RTOMin {
		r = s.cfg.RTOMin
	}
	return r
}

// fireRTO is the closure-free RTO trampoline; the sender rides in the
// event record.
func fireRTO(a0, _ unsafe.Pointer) { (*sender)(a0).onRTO() }

func (s *sender) armRTO() {
	s.kSrc.Cancel(s.rtoEv)
	s.rtoEv = sim.Event{}
	if s.done || s.ackSeq >= s.nextSeq {
		return // nothing outstanding
	}
	s.rtoEv = s.kSrc.AfterFunc(s.rto(), fireRTO, unsafe.Pointer(s), nil)
}

func (s *sender) onRTO() {
	if s.done || s.err != nil {
		return
	}
	s.retries++
	if s.retries > s.cfg.MaxRetries {
		s.err = fmt.Errorf("tcpsim: %d consecutive RTOs, giving up at %d/%d bytes",
			s.retries, s.ackSeq, s.total)
		return
	}
	s.rtx++
	s.ssthresh = maxf(float64(s.nextSeq-s.ackSeq)/2, float64(2*s.mss))
	s.cwnd = float64(s.mss) // restart from slow start
	s.goBackN()
}

func (s *sender) complete() {
	s.done = true
	s.finish = s.kSrc.Now()
	s.kSrc.Cancel(s.rtoEv)
	s.rtoEv = sim.Event{}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
