package tcpsim

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Flow is a handle on an in-progress transfer, allowing several
// transfers to share the network concurrently (e.g. filling the OC-48
// backbone with parallel streams, or running bulk data against a video
// stream). Start schedules the flow; WaitAll drives the kernel.
type Flow struct {
	s *sender
}

// Start schedules a TCP transfer without running the kernel.
func Start(n *netsim.Network, src, dst netsim.NodeID, nbytes int64, cfg Config) (*Flow, error) {
	cfg.fill()
	mss := cfg.MSS
	if mss == 0 {
		mtu, err := n.PathMTU(src, dst)
		if err != nil {
			return nil, err
		}
		mss = mtu - HeaderBytes
	}
	if mss <= 0 {
		return nil, fmt.Errorf("tcpsim: non-positive MSS %d", mss)
	}
	s := &sender{
		n: n, src: src, dst: dst, cfg: cfg, total: nbytes,
		mss:      mss,
		cwnd:     float64(cfg.InitialCwndSegs * mss),
		ssthresh: float64(cfg.WindowBytes),
		sendTS:   make(map[int64]sim.Time),
		start:    n.K.Now(),
	}
	n.K.At(n.K.Now(), func() { s.pump() })
	return &Flow{s: s}, nil
}

// Done reports whether the flow has completed successfully.
func (f *Flow) Done() bool { return f.s.done }

// Err reports a terminal flow error, if any.
func (f *Flow) Err() error { return f.s.err }

// Result returns the transfer outcome. It errors if the flow has not
// completed.
func (f *Flow) Result() (Result, error) {
	if f.s.err != nil {
		return Result{}, f.s.err
	}
	if !f.s.done {
		return Result{}, fmt.Errorf("tcpsim: flow still in progress (%d/%d bytes)", f.s.ackSeq, f.s.total)
	}
	dur := f.s.finish.Sub(f.s.start)
	res := Result{
		Bytes: f.s.total, Duration: dur, MSS: f.s.mss,
		Retransmits: f.s.rtx, SRTT: f.s.srtt,
	}
	if dur > 0 {
		res.ThroughputBps = float64(f.s.total) * 8 / dur.Seconds()
	}
	return res, nil
}

// WaitAll runs the kernel until every flow has completed (or one
// stalls with no pending events).
func WaitAll(n *netsim.Network, flows ...*Flow) error {
	for {
		n.K.Run()
		pending := 0
		for _, f := range flows {
			if f.s.err != nil {
				return f.s.err
			}
			if !f.s.done {
				pending++
			}
		}
		if pending == 0 {
			return nil
		}
		if n.K.Pending() == 0 {
			return fmt.Errorf("tcpsim: %d flows stalled with no pending events", pending)
		}
	}
}
