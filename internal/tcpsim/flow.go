package tcpsim

import (
	"fmt"
	"sync"
	"unsafe"

	"repro/internal/netsim"
)

// Flow is a handle on an in-progress transfer, allowing several
// transfers to share the network concurrently (e.g. filling the OC-48
// backbone with parallel streams, or running bulk data against a video
// stream). Start schedules the flow; WaitAll drives the kernel.
type Flow struct {
	s *sender
}

// flowFree pools sender records (each carrying its Flow handle and
// send-timestamp ring) across transfers, so scenarios that open many
// short flows pay no per-flow allocation in steady state. The pool is
// shared across kernels; a mutex (rather than sync.Pool) keeps the
// steady-state alloc count deterministic.
var flowFree struct {
	sync.Mutex
	free []*sender
}

// getSender returns a reset sender from the pool (keeping its timestamp
// ring for reuse) or a fresh one.
func getSender() *sender {
	flowFree.Lock()
	var s *sender
	if n := len(flowFree.free); n > 0 {
		s = flowFree.free[n-1]
		flowFree.free[n-1] = nil
		flowFree.free = flowFree.free[:n-1]
	}
	flowFree.Unlock()
	if s == nil {
		s = &sender{}
	}
	ring := s.sendTS
	*s = sender{sendTS: ring}
	s.handle = Flow{s: s}
	s.dataH = dataPath{s}
	s.ackH = ackPath{s}
	return s
}

// Release returns the flow's state to the package pool. Call it only
// after the flow has completed (or errored) and its kernel has run dry
// — e.g. after WaitAll — and never use the handle again afterwards: the
// state will be reused by a future Start. Releasing is optional (an
// unreleased flow is simply garbage-collected) and idempotent.
func (f *Flow) Release() {
	s := f.s
	if s == nil {
		return
	}
	flowFree.Lock()
	defer flowFree.Unlock()
	// The released check lives under the pool lock so concurrent
	// Release calls on one flow cannot both insert it.
	if s.released {
		return
	}
	s.released = true
	flowFree.free = append(flowFree.free, s)
}

// Start schedules a TCP transfer without running the kernel. A
// zero-byte transfer completes immediately; a negative size is an
// error. (Without the guard, a flow with nothing to send would never
// see an ACK and WaitAll would stall.)
func Start(n *netsim.Network, src, dst netsim.NodeID, nbytes int64, cfg Config) (*Flow, error) {
	if nbytes < 0 {
		return nil, fmt.Errorf("tcpsim: negative transfer size %d", nbytes)
	}
	cfg.fill()
	mss := cfg.MSS
	if mss == 0 {
		mtu, err := n.PathMTU(src, dst)
		if err != nil {
			return nil, err
		}
		mss = mtu - HeaderBytes
	}
	if mss <= 0 {
		return nil, fmt.Errorf("tcpsim: non-positive MSS %d", mss)
	}
	// The send-timestamp ring needs one slot per outstanding segment;
	// the window admits at most WindowBytes/mss of them (plus one for
	// the sub-MSS clamp), so size it once here and never touch a map
	// or clear() on the data path again.
	ringSize := cfg.WindowBytes/mss + 2
	if ringSize < 4 {
		ringSize = 4
	}
	s := getSender()
	s.n, s.src, s.dst, s.cfg, s.total = n, src, dst, cfg, nbytes
	s.kSrc = n.KernelOf(src)
	s.mss = mss
	s.cwnd = float64(cfg.InitialCwndSegs * mss)
	s.ssthresh = float64(cfg.WindowBytes)
	s.start = s.kSrc.Now()
	if cap(s.sendTS) >= ringSize {
		s.sendTS = s.sendTS[:ringSize]
	} else {
		s.sendTS = make([]tsEntry, ringSize)
	}
	for i := range s.sendTS {
		s.sendTS[i] = tsEntry{seq: -1}
	}
	if nbytes == 0 {
		s.done = true
		s.finish = s.start
		return &s.handle, nil
	}
	s.kSrc.AtFunc(s.kSrc.Now(), startPump, unsafe.Pointer(s), nil)
	return &s.handle, nil
}

// startPump is the closure-free initial-pump trampoline.
func startPump(a0, _ unsafe.Pointer) { (*sender)(a0).pump() }

// Done reports whether the flow has completed successfully.
func (f *Flow) Done() bool { return f.s.done }

// Err reports a terminal flow error, if any.
func (f *Flow) Err() error { return f.s.err }

// Result returns the transfer outcome. It errors if the flow has not
// completed.
func (f *Flow) Result() (Result, error) {
	if f.s.err != nil {
		return Result{}, f.s.err
	}
	if !f.s.done {
		return Result{}, fmt.Errorf("tcpsim: flow still in progress (%d/%d bytes)", f.s.ackSeq, f.s.total)
	}
	dur := f.s.finish.Sub(f.s.start)
	res := Result{
		Bytes: f.s.total, Duration: dur, MSS: f.s.mss,
		Retransmits: f.s.rtx, SRTT: f.s.srtt,
	}
	if dur > 0 {
		res.ThroughputBps = float64(f.s.total) * 8 / dur.Seconds()
	}
	return res, nil
}

// WaitAll runs the kernel until every flow has completed (or one
// stalls with no pending events).
func WaitAll(n *netsim.Network, flows ...*Flow) error {
	for {
		n.Run()
		pending := 0
		for _, f := range flows {
			if f.s.err != nil {
				return f.s.err
			}
			if !f.s.done {
				pending++
			}
		}
		if pending == 0 {
			return nil
		}
		if n.Pending() == 0 {
			return fmt.Errorf("tcpsim: %d flows stalled with no pending events", pending)
		}
	}
}
