package tcpsim

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// atmFramer adapts CLIP-over-AAL5 framing to netsim.
type atmFramer struct{}

func (atmFramer) WireSize(n int) int { return atm.CLIPWireBytes(n) }
func (atmFramer) Name() string       { return "atm-clip" }

func wanPair(mtu int, hostBps float64) (*netsim.Network, netsim.NodeID, netsim.NodeID) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddNode("juelich")
	var b *netsim.Node
	if hostBps > 0 {
		b = n.AddNode("staugustin", netsim.WithHostBps(hostBps))
	} else {
		b = n.AddNode("staugustin")
	}
	// OC-12 payload rate, 100 km of fiber (~0.5 ms one way).
	n.Connect(a, b, netsim.LinkConfig{
		Bps: atm.OC12.PayloadRate(), Delay: 500 * time.Microsecond,
		MTU: mtu, Framer: atmFramer{}, QueueBytes: 16 << 20,
	})
	n.ComputeRoutes()
	return n, a.ID, b.ID
}

func TestBulkTransferNearLinkRate(t *testing.T) {
	n, a, b := wanPair(65536, 0)
	res, err := Transfer(n, a, b, 256<<20, Config{WindowBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// OC-12 ATM payload is ~542 Mbit/s; minus AAL5/LLC/TCP overhead
	// a big-window 64K-MTU transfer should land between 500 and 542.
	if res.ThroughputBps < 500e6 || res.ThroughputBps > 545e6 {
		t.Errorf("throughput = %.1f Mbit/s, want ~500-545", res.ThroughputBps/1e6)
	}
	if res.Retransmits != 0 {
		t.Errorf("%d retransmits on a clean path", res.Retransmits)
	}
}

func TestSmallMTUHurtsThroughput(t *testing.T) {
	big, a, b := wanPair(65536, 0)
	resBig, err := Transfer(big, a, b, 64<<20, Config{WindowBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	small, c, d := wanPair(1500, 0)
	resSmall, err := Transfer(small, c, d, 64<<20, Config{WindowBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if resSmall.ThroughputBps >= resBig.ThroughputBps {
		t.Errorf("1500-MTU (%.1f) should be slower than 64K-MTU (%.1f) Mbit/s",
			resSmall.ThroughputBps/1e6, resBig.ThroughputBps/1e6)
	}
	if resSmall.MSS != 1460 || resBig.MSS != 65496 {
		t.Errorf("MSS derivation: got %d and %d", resSmall.MSS, resBig.MSS)
	}
}

func TestWindowLimitsThroughput(t *testing.T) {
	// With a tiny window, throughput ~= W/RTT regardless of link rate.
	n, a, b := wanPair(65536, 0)
	res, err := Transfer(n, a, b, 16<<20, Config{WindowBytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rtt := res.SRTT.Seconds()
	if rtt <= 0 {
		t.Fatal("no RTT estimate")
	}
	predicted := float64(128<<10) * 8 / rtt
	ratio := res.ThroughputBps / predicted
	if ratio < 0.5 || ratio > 1.2 {
		t.Errorf("window-limited: got %.1f Mbit/s, W/RTT predicts %.1f (ratio %.2f)",
			res.ThroughputBps/1e6, predicted/1e6, ratio)
	}
}

func TestHostIOCapsTransfer(t *testing.T) {
	// SP2 microchannel model: 264 Mbit/s host cap on a 599 Mbit/s
	// link — the paper's ">260 Mbit/s T3E to SP2" observation.
	n, a, b := wanPair(65536, 264e6)
	res, err := Transfer(n, a, b, 128<<20, Config{WindowBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputBps > 266e6 || res.ThroughputBps < 240e6 {
		t.Errorf("host-capped throughput = %.1f Mbit/s, want ~250-265", res.ThroughputBps/1e6)
	}
}

func TestTinyTransfer(t *testing.T) {
	n, a, b := wanPair(65536, 0)
	res, err := Transfer(n, a, b, 100, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 100 {
		t.Errorf("bytes = %d", res.Bytes)
	}
	// One segment + ACK: duration ~ 1 RTT.
	if res.Duration < time.Millisecond || res.Duration > 5*time.Millisecond {
		t.Errorf("100-byte transfer took %v, want ~1 ms RTT", res.Duration)
	}
}

func TestRecoveryFromDrops(t *testing.T) {
	// Constrain the queue so slow start overshoots and drops, then
	// verify the transfer still completes with retransmits.
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.Connect(a, b, netsim.LinkConfig{
		Bps: 100e6, Delay: 2 * time.Millisecond, MTU: 9180,
		QueueBytes: 64 << 10, // only ~7 packets of buffer
	})
	n.ComputeRoutes()
	res, err := Transfer(n, a.ID, b.ID, 16<<20, Config{WindowBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmits == 0 {
		t.Error("expected drops and retransmits with a 64 KiB queue")
	}
	if res.ThroughputBps <= 0 {
		t.Error("no forward progress")
	}
}

func TestUnreachableErrors(t *testing.T) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.ComputeRoutes()
	if _, err := Transfer(n, a.ID, b.ID, 1000, Config{}); err == nil {
		t.Error("transfer to unreachable host should error")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Bytes: 1 << 20, Duration: time.Second, ThroughputBps: 8e6, MSS: 1460}
	if r.String() == "" {
		t.Error("empty String")
	}
}

// A socket buffer smaller than one segment (8 KiB window over the
// default 9180-byte CLIP MTU) used to stall silently: pump's admission
// check nextSeq-ackSeq+mss <= window could never pass, and WaitAll
// died with "flows stalled with no pending events". The effective
// window is now clamped to one MSS, degrading to stop-and-wait.
func TestSubMSSWindowDoesNotStall(t *testing.T) {
	n, a, b := wanPair(9180, 0)
	res, err := Transfer(n, a, b, 1<<20, Config{WindowBytes: 8 << 10})
	if err != nil {
		t.Fatalf("sub-MSS window transfer failed: %v", err)
	}
	if res.Bytes != 1<<20 {
		t.Errorf("transferred %d bytes, want %d", res.Bytes, 1<<20)
	}
	// Stop-and-wait over a ~1 ms RTT path: one MSS per RTT, far below
	// link rate but decidedly nonzero.
	if res.ThroughputBps <= 0 {
		t.Errorf("throughput = %v, want > 0", res.ThroughputBps)
	}
	// The clamp must not let a tiny window outperform a real one.
	wide, c, d := wanPair(9180, 0)
	resWide, err := Transfer(wide, c, d, 1<<20, Config{WindowBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputBps >= resWide.ThroughputBps {
		t.Errorf("sub-MSS window %.1f Mbit/s >= 1 MiB window %.1f Mbit/s",
			res.ThroughputBps/1e6, resWide.ThroughputBps/1e6)
	}
}

// The send-timestamp ring must survive window growth, wraparound and
// go-back-N generations without mixing up segments; an end-to-end
// transfer with forced drops exercises all three (this pins the
// map -> ring replacement).
func TestSendTSRingSurvivesRetransmits(t *testing.T) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	// A queue this small overflows mid-slow-start, forcing drops and
	// go-back-N generation bumps.
	n.Connect(a, b, netsim.LinkConfig{
		Bps: 100e6, Delay: 500 * time.Microsecond,
		MTU: 9180, QueueBytes: 64 << 10,
	})
	n.ComputeRoutes()
	res, err := Transfer(n, a.ID, b.ID, 8<<20, Config{WindowBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmits == 0 {
		t.Fatal("no retransmits; the go-back-N generation path was not exercised")
	}
	if res.SRTT <= 0 {
		t.Errorf("no RTT samples surfaced: SRTT = %v", res.SRTT)
	}
}

// A zero-byte transfer must complete immediately (nothing to send, so
// no ACK will ever arrive to drive completion), and a negative size is
// a config error — neither may stall WaitAll.
func TestDegenerateTransferSizes(t *testing.T) {
	n, a, b := wanPair(9180, 0)
	res, err := Transfer(n, a, b, 0, Config{})
	if err != nil {
		t.Fatalf("zero-byte transfer: %v", err)
	}
	if res.Bytes != 0 || res.Duration != 0 || res.ThroughputBps != 0 {
		t.Errorf("zero-byte result = %+v, want all-zero", res)
	}
	if _, err := Start(n, a, b, -1, Config{}); err == nil {
		t.Error("negative transfer size accepted")
	}
}
