package tcpsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// sharedLink builds two host pairs contending for one bottleneck link:
// a1 -> b1 and a2 -> b2 both traverse s1 -- s2.
func sharedLink(bottleneckBps float64) (*netsim.Network, [2]netsim.NodeID, [2]netsim.NodeID) {
	k := sim.NewKernel()
	n := netsim.New(k)
	s1 := n.AddNode("s1", netsim.WithForwardCost(time.Microsecond, 0))
	s2 := n.AddNode("s2", netsim.WithForwardCost(time.Microsecond, 0))
	edge := netsim.LinkConfig{Bps: 1e9, Delay: 10 * time.Microsecond, MTU: 65536, QueueBytes: 16 << 20}
	var srcs, dsts [2]netsim.NodeID
	for i := 0; i < 2; i++ {
		a := n.AddNode("a")
		b := n.AddNode("b")
		n.Connect(a, s1, edge)
		n.Connect(s2, b, edge)
		srcs[i], dsts[i] = a.ID, b.ID
	}
	n.Connect(s1, s2, netsim.LinkConfig{
		Bps: bottleneckBps, Delay: 500 * time.Microsecond, MTU: 65536, QueueBytes: 16 << 20,
	})
	n.ComputeRoutes()
	return n, srcs, dsts
}

func TestConcurrentFlowsShareBottleneck(t *testing.T) {
	n, srcs, dsts := sharedLink(500e6)
	f1, err := Start(n, srcs[0], dsts[0], 32<<20, Config{WindowBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Start(n, srcs[1], dsts[1], 32<<20, Config{WindowBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(n, f1, f2); err != nil {
		t.Fatal(err)
	}
	r1, err := f1.Result()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f2.Result()
	if err != nil {
		t.Fatal(err)
	}
	// The two flows split the bottleneck roughly evenly and their sum
	// approaches (but cannot exceed) the link rate.
	sum := r1.ThroughputBps + r2.ThroughputBps
	if sum > 510e6 {
		t.Errorf("aggregate %.1f Mbit/s exceeds the 500 Mbit/s bottleneck", sum/1e6)
	}
	if sum < 380e6 {
		t.Errorf("aggregate %.1f Mbit/s, poor utilization of the bottleneck", sum/1e6)
	}
	ratio := r1.ThroughputBps / r2.ThroughputBps
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("unfair split: %.1f vs %.1f Mbit/s", r1.ThroughputBps/1e6, r2.ThroughputBps/1e6)
	}
}

func TestFlowResultBeforeCompletion(t *testing.T) {
	n, srcs, dsts := sharedLink(500e6)
	f, err := Start(n, srcs[0], dsts[0], 1<<20, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Done() {
		t.Error("flow done before kernel ran")
	}
	if _, err := f.Result(); err == nil {
		t.Error("Result before completion should error")
	}
	if err := WaitAll(n, f); err != nil {
		t.Fatal(err)
	}
	if !f.Done() || f.Err() != nil {
		t.Error("flow should be cleanly done")
	}
}

func TestStartUnreachable(t *testing.T) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.ComputeRoutes()
	if _, err := Start(n, a.ID, b.ID, 1000, Config{}); err == nil {
		t.Error("unreachable start accepted")
	}
}

func TestSequentialEqualsSingleTransfer(t *testing.T) {
	// A Flow driven via WaitAll matches Transfer's numbers.
	n1, s1, d1 := sharedLink(500e6)
	r1, err := Transfer(n1, s1[0], d1[0], 16<<20, Config{WindowBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	n2, s2, d2 := sharedLink(500e6)
	f, err := Start(n2, s2[0], d2[0], 16<<20, Config{WindowBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(n2, f); err != nil {
		t.Fatal(err)
	}
	r2, err := f.Result()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.ThroughputBps-r2.ThroughputBps) > 1 {
		t.Errorf("Transfer %.3f vs Flow %.3f Mbit/s", r1.ThroughputBps/1e6, r2.ThroughputBps/1e6)
	}
}
