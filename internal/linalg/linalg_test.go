package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v", m.At(1, 0))
	}
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Errorf("Set failed")
	}
	tr := m.T()
	if tr.At(0, 1) != 7 {
		t.Errorf("T: got %v", tr.At(0, 1))
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone aliases")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestIdentityIsNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMat(5, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	p := a.Mul(Identity(5))
	if MaxAbsDiff(p.Data, a.Data) != 0 {
		t.Error("A*I != A")
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{3, 4}
	if Norm2(a) != 5 {
		t.Errorf("Norm2 = %v", Norm2(a))
	}
	y := []float64{1, 1}
	Axpy(2, a, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 {
		t.Errorf("Scale = %v", y)
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot")
	}
}

func TestQRSolvesExactSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}, {0, 1}})
	xTrue := []float64{1.5, -2}
	b := a.MulVec(xTrue)
	x, err := LstSq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(x, xTrue) > 1e-12 {
		t.Errorf("x = %v, want %v", x, xTrue)
	}
}

func TestQRLeastSquaresResidualOrthogonal(t *testing.T) {
	// Least-squares residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(7))
	a := NewMat(20, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := make([]float64, 20)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := LstSq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pred := a.MulVec(x)
	res := make([]float64, 20)
	for i := range res {
		res[i] = b[i] - pred[i]
	}
	at := a.T()
	proj := at.MulVec(res)
	for j, v := range proj {
		if math.Abs(v) > 1e-10 {
			t.Errorf("residual not orthogonal to column %d: %g", j, v)
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}}) // col2 = 2*col1
	if _, err := LstSq(a, []float64{1, 2, 3}); err == nil {
		t.Error("rank-deficient system did not error")
	}
}

func TestQRUnderdetermined(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}})
	if _, err := NewQR(a); err == nil {
		t.Error("underdetermined QR did not error")
	}
}

func TestFitLinear(t *testing.T) {
	// y = 2 + 3t with noise-free data.
	n := 10
	x := NewMat(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		tv := float64(i)
		x.Set(i, 0, 1)
		x.Set(i, 1, tv)
		y[i] = 2 + 3*tv
	}
	beta, rss, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(beta[0], 2, 1e-10) || !almostEq(beta[1], 3, 1e-10) {
		t.Errorf("beta = %v", beta)
	}
	if rss > 1e-18 {
		t.Errorf("rss = %g", rss)
	}
}

func TestEigSymKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Errorf("vals = %v", vals)
	}
	// Check A v = lambda v for each.
	for k := 0; k < 2; k++ {
		v := []float64{vecs.At(0, k), vecs.At(1, k)}
		av := a.MulVec(v)
		for i := range av {
			if !almostEq(av[i], vals[k]*v[i], 1e-10) {
				t.Errorf("eigenpair %d violated: Av=%v lambda*v=%v", k, av[i], vals[k]*v[i])
			}
		}
	}
}

// Property: for random symmetric matrices, EigSym returns orthonormal
// eigenvectors and satisfies A V = V diag(vals).
func TestEigSymProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		a := NewMat(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigSym(a)
		if err != nil {
			t.Fatal(err)
		}
		// Descending order.
		for k := 1; k < n; k++ {
			if vals[k] > vals[k-1]+1e-12 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
		// Orthonormal columns.
		vtv := vecs.T().Mul(vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(vtv.At(i, j), want, 1e-8) {
					t.Fatalf("V^T V (%d,%d) = %v", i, j, vtv.At(i, j))
				}
			}
		}
		// A V = V D.
		av := a.Mul(vecs)
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				if !almostEq(av.At(i, k), vals[k]*vecs.At(i, k), 1e-8) {
					t.Fatalf("AV != VD at (%d,%d)", i, k)
				}
			}
		}
	}
}

func TestEigSymRejectsNonSquareAndAsymmetric(t *testing.T) {
	if _, _, err := EigSym(NewMat(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
	a := FromRows([][]float64{{1, 2}, {0, 1}})
	if _, _, err := EigSym(a); err == nil {
		t.Error("asymmetric accepted")
	}
}

func TestCGSolvesPoisson(t *testing.T) {
	// 1-D Poisson: tridiagonal [-1 2 -1], SPD.
	n := 50
	op := func(dst, src []float64) {
		for i := 0; i < n; i++ {
			v := 2 * src[i]
			if i > 0 {
				v -= src[i-1]
			}
			if i < n-1 {
				v -= src[i+1]
			}
			dst[i] = v
		}
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i) / 5)
	}
	b := make([]float64, n)
	op(b, xTrue)
	x := make([]float64, n)
	res, err := CG(op, x, b, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	if MaxAbsDiff(x, xTrue) > 1e-8 {
		t.Errorf("CG error %g", MaxAbsDiff(x, xTrue))
	}
}

func TestCGZeroRHS(t *testing.T) {
	op := func(dst, src []float64) { copy(dst, src) }
	x := []float64{5, 5}
	res, err := CG(op, x, []float64{0, 0}, 1e-10, 10)
	if err != nil || !res.Converged {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if x[0] != 0 || x[1] != 0 {
		t.Errorf("x = %v, want zeros", x)
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	op := func(dst, src []float64) {
		dst[0] = -src[0]
		dst[1] = -src[1]
	}
	x := make([]float64, 2)
	if _, err := CG(op, x, []float64{1, 1}, 1e-10, 10); err == nil {
		t.Error("indefinite operator accepted")
	}
}

func TestCGDimMismatch(t *testing.T) {
	op := func(dst, src []float64) { copy(dst, src) }
	if _, err := CG(op, make([]float64, 3), make([]float64, 2), 0, 0); err == nil {
		t.Error("dim mismatch accepted")
	}
}

// Property: QR factorization solves random consistent systems.
func TestQRProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := n + rng.Intn(10)
		a := NewMat(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x, err := LstSq(a, b)
		if err != nil {
			return true // rank-deficient random draw: fine to reject
		}
		return MaxAbsDiff(x, xTrue) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
