package linalg

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m x n matrix (m >= n).
type QR struct {
	qr    *Mat      // packed Householder vectors + R
	rdiag []float64 // diagonal of R
}

// NewQR factorizes a (copied; a is not modified).
func NewQR(a *Mat) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("linalg: QR needs rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	// Scale for the rank test: a column whose remaining norm is
	// negligible relative to the whole matrix is linearly dependent.
	var frob float64
	for _, v := range qr.Data {
		frob += v * v
	}
	rankTol := 1e-12 * math.Sqrt(frob)
	for k := 0; k < n; k++ {
		// Householder vector for column k.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm <= rankTol {
			return nil, fmt.Errorf("linalg: rank-deficient matrix (column %d)", k)
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag}, nil
}

// Solve returns the least-squares solution x minimizing ||A x - b||2.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: rhs length %d != rows %d", len(b), m)
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Householder reflections: y = Q^T b.
	for k := 0; k < n; k++ {
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution R x = y[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// LstSq solves min ||A x - b||2 by QR.
func LstSq(a *Mat, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// FitLinear fits y ≈ X beta and returns beta along with the residual
// sum of squares. X columns are the regressors.
func FitLinear(x *Mat, y []float64) (beta []float64, rss float64, err error) {
	beta, err = LstSq(x, y)
	if err != nil {
		return nil, 0, err
	}
	pred := x.MulVec(beta)
	for i := range y {
		d := y[i] - pred[i]
		rss += d * d
	}
	return beta, rss, nil
}
