package linalg

import (
	"math/rand"
	"testing"
)

func randomMat(rows, cols int, seed int64) *Mat {
	rng := rand.New(rand.NewSource(seed))
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// BenchmarkQRLeastSquares measures the RVO-style fit (64 samples, 3
// regressors).
func BenchmarkQRLeastSquares(b *testing.B) {
	a := randomMat(64, 3, 1)
	y := make([]float64, 64)
	for i := range y {
		y[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LstSq(a, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEigSym measures the MUSIC-scale eigendecomposition
// (148 sensors).
func BenchmarkEigSym(b *testing.B) {
	g := randomMat(148, 148, 2)
	cov := g.Mul(g.T()) // SPD
	// Symmetrize roundoff.
	for i := 0; i < cov.Rows; i++ {
		for j := i + 1; j < cov.Cols; j++ {
			v := (cov.At(i, j) + cov.At(j, i)) / 2
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigSym(cov); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCGPoisson measures the TRACE-style solve (3-D Poisson,
// 20x8x6 unknowns).
func BenchmarkCGPoisson(b *testing.B) {
	nx, ny, nz := 18, 8, 6
	n := nx * ny * nz
	op := func(dst, src []float64) {
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					i := x + nx*(y+ny*z)
					v := 6 * src[i]
					if x > 0 {
						v -= src[i-1]
					}
					if x < nx-1 {
						v -= src[i+1]
					}
					if y > 0 {
						v -= src[i-nx]
					}
					if y < ny-1 {
						v -= src[i+nx]
					}
					if z > 0 {
						v -= src[i-nx*ny]
					}
					if z < nz-1 {
						v -= src[i+nx*ny]
					}
					dst[i] = v + 1e-3*src[i]
				}
			}
		}
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i % 13)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		if _, err := CG(op, x, rhs, 1e-8, 0); err != nil {
			b.Fatal(err)
		}
	}
}
