package linalg

import (
	"fmt"
	"math"
)

// Solve solves the square system A x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func Solve(a *Mat, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Solve needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d != %d", len(b), n)
	}
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		// Partial pivot.
		piv := k
		best := math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m.At(i, k)); v > best {
				best, piv = v, i
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", k)
		}
		if piv != k {
			for j := 0; j < n; j++ {
				m.Data[k*n+j], m.Data[piv*n+j] = m.Data[piv*n+j], m.Data[k*n+j]
			}
			x[k], x[piv] = x[piv], x[k]
		}
		inv := 1 / m.At(k, k)
		for i := k + 1; i < n; i++ {
			f := m.At(i, k) * inv
			if f == 0 {
				continue
			}
			for j := k; j < n; j++ {
				m.Set(i, j, m.At(i, j)-f*m.At(k, j))
			}
			x[i] -= f * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}
