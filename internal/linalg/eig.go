package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigSym computes the eigendecomposition of a symmetric matrix with the
// cyclic Jacobi method. It returns eigenvalues in descending order and
// the matching eigenvectors as the columns of the returned matrix.
func EigSym(a *Mat) (vals []float64, vecs *Mat, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("linalg: EigSym needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	// Verify symmetry within roundoff; MUSIC covariance matrices are
	// symmetric by construction, so real asymmetry is a caller bug.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := math.Abs(a.At(i, j) - a.At(j, i)); d > 1e-8*(1+math.Abs(a.At(i, j))) {
				return nil, nil, fmt.Errorf("linalg: matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	w := a.Clone()
	v := Identity(n)
	// Convergence is judged relative to the matrix magnitude so that
	// physically tiny matrices (e.g. MEG covariances, ~1e-21 Tesla^2)
	// are rotated just as thoroughly as O(1) ones.
	var fro float64
	for _, x := range w.Data {
		fro += x * x
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off <= 1e-28*fro {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q of w.
				for i := 0; i < n; i++ {
					wip, wiq := w.At(i, p), w.At(i, q)
					w.Set(i, p, c*wip-s*wiq)
					w.Set(i, q, s*wip+c*wiq)
				}
				for i := 0; i < n; i++ {
					wpi, wqi := w.At(p, i), w.At(q, i)
					w.Set(p, i, c*wpi-s*wqi)
					w.Set(q, i, s*wpi+c*wqi)
				}
				// Accumulate eigenvectors.
				for i := 0; i < n; i++ {
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vip-s*viq)
					v.Set(i, q, s*vip+c*viq)
				}
			}
		}
	}
	// Extract and sort descending.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })
	vals = make([]float64, n)
	vecs = NewMat(n, n)
	for k, pr := range pairs {
		vals[k] = pr.val
		for i := 0; i < n; i++ {
			vecs.Set(i, k, v.At(i, pr.idx))
		}
	}
	return vals, vecs, nil
}
