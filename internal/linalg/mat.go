// Package linalg provides the small dense linear-algebra kernels the
// application codes need: matrix/vector arithmetic, Householder QR
// least squares (reference-vector fitting in FIRE), a cyclic Jacobi
// eigensolver for symmetric matrices (signal-subspace extraction in the
// MUSIC dipole analysis), and a conjugate-gradient solver for symmetric
// positive-definite operators (the TRACE groundwater flow solver and the
// planned RVO refinement).
//
// Everything is stdlib-only, row-major float64, and sized for the
// problem dimensions in the paper (tens to a few hundreds), not BLAS
// scale.
package linalg

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMat allocates a zero matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (all the same length).
func FromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns m * b.
func (m *Mat) Mul(b *Mat) *Mat {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dim mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMat(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for kk, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Data[kk*b.Cols : (kk+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns m * x.
func (m *Mat) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: dim mismatch %dx%d * vec(%d)", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Identity returns the n x n identity.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference
// between two equal-length vectors; a convenience for tests and
// convergence checks.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
