package linalg

import (
	"fmt"
	"math"
)

// Operator applies a symmetric positive-definite linear operator:
// dst = A src. dst and src never alias.
type Operator func(dst, src []float64)

// CGResult reports conjugate-gradient convergence.
type CGResult struct {
	Iterations int
	Residual   float64 // final ||r|| / ||b||
	Converged  bool
}

// CG solves A x = b for SPD A using the conjugate-gradient method,
// starting from x (which it updates in place). It stops when the
// relative residual falls below tol or maxIter iterations elapse.
func CG(a Operator, x, b []float64, tol float64, maxIter int) (CGResult, error) {
	n := len(b)
	if len(x) != n {
		return CGResult{}, fmt.Errorf("linalg: CG dim mismatch x=%d b=%d", len(x), n)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return CGResult{Converged: true}, nil
	}
	r := make([]float64, n)
	ax := make([]float64, n)
	a(ax, x)
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	p := make([]float64, n)
	copy(p, r)
	ap := make([]float64, n)
	rs := Dot(r, r)
	var it int
	for it = 0; it < maxIter; it++ {
		if math.Sqrt(rs)/bnorm < tol {
			return CGResult{Iterations: it, Residual: math.Sqrt(rs) / bnorm, Converged: true}, nil
		}
		a(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 {
			return CGResult{Iterations: it, Residual: math.Sqrt(rs) / bnorm},
				fmt.Errorf("linalg: CG operator not positive definite (pAp=%g)", pap)
		}
		alpha := rs / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		rsNew := Dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return CGResult{Iterations: it, Residual: math.Sqrt(rs) / bnorm, Converged: math.Sqrt(rs)/bnorm < tol}, nil
}
