package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Disk is the disk-backed Store: an append-only write-ahead log of
// state mutations plus periodic full-state snapshots that truncate the
// log. The layout inside the data directory is
//
//	snapshot.json   last full state, with the generation of its log
//	wal-<gen>.log   CRC-framed mutation records since that snapshot
//
// Recovery loads the snapshot and replays the matching log. Each log
// record is [4-byte length | 4-byte CRC32 | JSON payload]: a record cut
// short by a crash, or one whose checksum no longer matches, ends the
// replay at the last good entry with a warning — never an error — and
// the log is truncated there so appends resume from a clean tail.
//
// Snapshots are atomic: the new state is written to a temp file, synced
// and renamed over snapshot.json, and only then is the old log deleted.
// A crash between those steps leaves either the old snapshot+log or the
// new snapshot (plus a stale log the next open ignores and removes) —
// both recover correctly.
type Disk struct {
	dir string
	opt DiskOptions

	mu       sync.Mutex
	m        *mirror
	gen      uint64
	wal      *os.File
	walBytes int64
	closed   bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// DiskOptions tunes a Disk store.
type DiskOptions struct {
	// SnapshotEvery compacts the log on this interval (default 1m;
	// negative disables the timer — snapshots then happen only on Close,
	// on Snapshot calls, and past SnapshotBytes).
	SnapshotEvery time.Duration
	// SnapshotBytes compacts the log when it grows past this many bytes
	// (default 8 MiB; negative disables the size trigger).
	SnapshotBytes int64
	// Logf receives warnings (corrupt log tails, failed appends). Nil
	// discards.
	Logf func(format string, args ...any)
}

func (o DiskOptions) withDefaults() DiskOptions {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = time.Minute
	}
	if o.SnapshotBytes == 0 {
		o.SnapshotBytes = 8 << 20
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// walRecord is one journaled mutation.
type walRecord struct {
	Op     string        `json:"op"` // point | delpoint | job | deljob | worker | audit
	Key    string        `json:"key,omitempty"`
	Val    []byte        `json:"val,omitempty"`
	Job    *JobRecord    `json:"job,omitempty"`
	Worker *WorkerRecord `json:"worker,omitempty"`
	Audit  *AuditRecord  `json:"audit,omitempty"`
}

// diskSnapshot is the snapshot.json schema.
type diskSnapshot struct {
	Gen   uint64 `json:"gen"`
	State *State `json:"state"`
}

const (
	walHeader    = 8        // uint32 length + uint32 crc32, little endian
	maxWalRecord = 64 << 20 // sanity bound: a larger length field is corruption
)

// Open opens (or initializes) a disk store in dir, recovering
// snapshot+log state. The directory is created if missing.
func Open(dir string, opt DiskOptions) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	d := &Disk{
		dir: dir, opt: opt.withDefaults(), m: newMirror(),
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	go d.snapshotLoop()
	return d, nil
}

func (d *Disk) snapshotPath() string { return filepath.Join(d.dir, "snapshot.json") }
func (d *Disk) walPath(gen uint64) string {
	return filepath.Join(d.dir, fmt.Sprintf("wal-%d.log", gen))
}

// recover loads snapshot.json, replays its log, truncates any corrupt
// tail, opens the log for append and removes stale logs from other
// generations.
func (d *Disk) recover() error {
	b, err := os.ReadFile(d.snapshotPath())
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh directory: generation 0, empty state.
	case err != nil:
		return fmt.Errorf("persist: reading snapshot: %w", err)
	default:
		var snap diskSnapshot
		if jerr := json.Unmarshal(b, &snap); jerr != nil {
			return fmt.Errorf("persist: snapshot %s is unreadable: %w", d.snapshotPath(), jerr)
		}
		d.gen = snap.Gen
		d.m.load(snap.State)
	}
	good, err := d.replayWAL(d.walPath(d.gen))
	if err != nil {
		return err
	}
	f, err := os.OpenFile(d.walPath(d.gen), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: opening log: %w", err)
	}
	// Truncate past the last good record (no-op on a clean log), then
	// seek to the new tail for appends.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return fmt.Errorf("persist: truncating corrupt log tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	d.wal, d.walBytes = f, good
	d.removeStaleWALs()
	return nil
}

// replayWAL applies every intact record of the log at path to the
// mirror and returns the byte offset just past the last good record.
// Corruption — a truncated final record, or a checksum mismatch — ends
// the replay there with a warning; it is the expected shape of a log
// whose writer was killed mid-append, not an error.
func (d *Disk) replayWAL(path string) (good int64, err error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("persist: reading log: %w", err)
	}
	off := int64(0)
	records := 0
	for {
		rest := b[off:]
		if len(rest) == 0 {
			return off, nil // clean end
		}
		if len(rest) < walHeader {
			d.opt.Logf("persist: log %s: truncated record header at offset %d; recovering to last good entry (%d record(s))",
				path, off, records)
			return off, nil
		}
		length := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if length == 0 || length > maxWalRecord {
			d.opt.Logf("persist: log %s: implausible record length %d at offset %d; recovering to last good entry (%d record(s))",
				path, length, off, records)
			return off, nil
		}
		if int64(len(rest)) < walHeader+int64(length) {
			d.opt.Logf("persist: log %s: truncated record payload at offset %d (%d of %d bytes); recovering to last good entry (%d record(s))",
				path, off, len(rest)-walHeader, length, records)
			return off, nil
		}
		payload := rest[walHeader : walHeader+int64(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			d.opt.Logf("persist: log %s: checksum mismatch at offset %d; recovering to last good entry (%d record(s))",
				path, off, records)
			return off, nil
		}
		var rec walRecord
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			d.opt.Logf("persist: log %s: unparseable record at offset %d: %v; recovering to last good entry (%d record(s))",
				path, off, jerr, records)
			return off, nil
		}
		d.applyLocked(rec)
		off += walHeader + int64(length)
		records++
	}
}

// applyLocked applies one journal record to the mirror.
func (d *Disk) applyLocked(rec walRecord) {
	switch rec.Op {
	case "point":
		d.m.putPoint(rec.Key, rec.Val)
	case "delpoint":
		d.m.deletePoint(rec.Key)
	case "job":
		if rec.Job != nil {
			d.m.putJob(*rec.Job)
		}
	case "deljob":
		d.m.deleteJob(rec.Key)
	case "worker":
		if rec.Worker != nil {
			d.m.putWorker(*rec.Worker)
		}
	case "audit":
		if rec.Audit != nil {
			d.m.appendAudit(*rec.Audit)
		}
	}
}

// removeStaleWALs deletes logs from other generations — leftovers of a
// crash between a snapshot rename and its log cleanup.
func (d *Disk) removeStaleWALs() {
	matches, _ := filepath.Glob(filepath.Join(d.dir, "wal-*.log"))
	cur := d.walPath(d.gen)
	for _, m := range matches {
		if m != cur {
			os.Remove(m)
		}
	}
}

// append journals one mutation and applies it to the mirror. Write
// failures degrade durability, not service: they are logged and the
// in-memory mirror stays authoritative for later snapshots.
func (d *Disk) append(rec walRecord) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.applyLocked(rec)
	payload, err := json.Marshal(rec)
	if err != nil {
		d.opt.Logf("persist: marshaling %s record: %v", rec.Op, err)
		return
	}
	frame := make([]byte, walHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[walHeader:], payload)
	if _, err := d.wal.Write(frame); err != nil {
		d.opt.Logf("persist: appending %s record: %v", rec.Op, err)
		return
	}
	d.walBytes += int64(len(frame))
	if d.opt.SnapshotBytes > 0 && d.walBytes >= d.opt.SnapshotBytes {
		if err := d.snapshotLocked(); err != nil {
			d.opt.Logf("persist: size-triggered snapshot: %v", err)
		}
	}
}

// Load implements Store.
func (d *Disk) Load() *State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m.state()
}

// PutPoint implements Store.
func (d *Disk) PutPoint(key string, val []byte) {
	d.append(walRecord{Op: "point", Key: key, Val: val})
}

// DeletePoint implements Store.
func (d *Disk) DeletePoint(key string) {
	d.append(walRecord{Op: "delpoint", Key: key})
}

// PutJob implements Store.
func (d *Disk) PutJob(rec JobRecord) {
	d.append(walRecord{Op: "job", Job: &rec})
}

// DeleteJob implements Store.
func (d *Disk) DeleteJob(id string) {
	d.append(walRecord{Op: "deljob", Key: id})
}

// PutWorker implements Store.
func (d *Disk) PutWorker(rec WorkerRecord) {
	d.append(walRecord{Op: "worker", Worker: &rec})
}

// AppendAudit implements Store.
func (d *Disk) AppendAudit(rec AuditRecord) {
	d.append(walRecord{Op: "audit", Audit: &rec})
}

// Snapshot implements Store: compact the log into a fresh snapshot now.
func (d *Disk) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	return d.snapshotLocked()
}

// snapshotLocked writes the mirror as generation gen+1 and swings the
// log over: tmp-write + fsync + rename the snapshot, open the new
// (empty) log, delete the old one.
func (d *Disk) snapshotLocked() error {
	next := d.gen + 1
	snap := diskSnapshot{Gen: next, State: d.m.state()}
	b, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("persist: marshaling snapshot: %w", err)
	}
	tmp := d.snapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err = f.Write(b); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, d.snapshotPath()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	nw, err := os.OpenFile(d.walPath(next), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: opening log for generation %d: %w", next, err)
	}
	old := d.wal
	oldPath := d.walPath(d.gen)
	d.wal, d.walBytes, d.gen = nw, 0, next
	if old != nil {
		old.Close()
	}
	os.Remove(oldPath)
	return nil
}

// snapshotLoop compacts the log on the configured interval.
func (d *Disk) snapshotLoop() {
	defer close(d.done)
	if d.opt.SnapshotEvery <= 0 {
		<-d.stop
		return
	}
	t := time.NewTicker(d.opt.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if err := d.Snapshot(); err != nil {
				d.opt.Logf("persist: periodic snapshot: %v", err)
			}
		}
	}
}

// Close implements Store: stop the timer, take a final snapshot, close
// the log. Mutations after Close are ignored.
func (d *Disk) Close() error {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	err := d.snapshotLocked()
	d.closed = true
	if d.wal != nil {
		if cerr := d.wal.Close(); err == nil {
			err = cerr
		}
		d.wal = nil
	}
	return err
}
