package persist

import "sync"

// Mem is the in-memory Store: the coordinator's pre-durability maps
// refactored behind the Store contract. It is the default for
// coordinators running without -data-dir, and the recovery-logic test
// double — hand the same Mem to a second coordinator and it sees
// exactly the state a disk store would have recovered.
type Mem struct {
	mu sync.Mutex
	m  *mirror
}

// NewMem builds an empty in-memory store.
func NewMem() *Mem {
	return &Mem{m: newMirror()}
}

// Load implements Store.
func (s *Mem) Load() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.state()
}

// PutPoint implements Store.
func (s *Mem) PutPoint(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.putPoint(key, val)
}

// DeletePoint implements Store.
func (s *Mem) DeletePoint(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.deletePoint(key)
}

// PutJob implements Store.
func (s *Mem) PutJob(rec JobRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.putJob(rec)
}

// DeleteJob implements Store.
func (s *Mem) DeleteJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.deleteJob(id)
}

// PutWorker implements Store.
func (s *Mem) PutWorker(rec WorkerRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.putWorker(rec)
}

// AppendAudit implements Store.
func (s *Mem) AppendAudit(rec AuditRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.appendAudit(rec)
}

// Snapshot implements Store: the mirror is the state; nothing to
// compact.
func (s *Mem) Snapshot() error { return nil }

// Close implements Store. The state stays readable (Load) afterwards,
// which is what lets a test restart a coordinator on the same Mem.
func (s *Mem) Close() error { return nil }
