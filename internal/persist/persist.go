// Package persist is the coordinator's durable state engine: a
// pluggable Store holding everything gtwd must not lose across a
// process death — submitted jobs (with their reports once finished),
// the content-addressed point store, and per-worker identity and
// throughput statistics.
//
// Two implementations share one contract. Mem keeps the state in
// process memory: it is the default for ephemeral coordinators and the
// test double for recovery logic (hand the same Mem to a second
// coordinator and it "restarts"). Disk journals every mutation to an
// append-only write-ahead log with CRC-framed records and periodically
// compacts the log into an atomic snapshot, so a coordinator killed at
// any instant recovers to its last journaled state: finished points are
// served from cache, interrupted jobs resume with only their
// unjournaled tails re-run, and reconnecting workers keep their sticky
// IDs and EWMAs.
//
// The unit of durability is the mutation, not the transaction: every
// record is idempotent to replay (puts are upserts, deletes of absent
// keys are no-ops), so a log truncated mid-record simply recovers to
// the last complete entry.
package persist

import (
	"container/list"
	"encoding/json"
)

// JobRecord is one submitted job as the store keeps it. Non-terminal
// records (status queued/running) are re-enqueued on recovery; terminal
// ones (done/failed) are restored as pollable history. Opts and the
// report fields are kept as raw JSON so the store does not depend on
// the coordinator's wire types.
type JobRecord struct {
	ID       string          `json:"id"`
	Scenario string          `json:"scenario"`
	Tenant   string          `json:"tenant,omitempty"`
	Opts     json.RawMessage `json:"opts,omitempty"`
	Status   string          `json:"status"`
	Error    string          `json:"error,omitempty"`
	Report   json.RawMessage `json:"report,omitempty"`
	Text     string          `json:"text,omitempty"`
	Timings  json.RawMessage `json:"timings,omitempty"`

	ElapsedMS   int64 `json:"elapsed_ms,omitempty"`
	PointsTotal int   `json:"points_total,omitempty"`
	PointsDone  int   `json:"points_done,omitempty"`
	PointHits   int   `json:"point_hits,omitempty"`
	Cached      bool  `json:"cached,omitempty"`
}

// WorkerRecord is one sticky worker identity: its lifetime point tally
// and its cross-job throughput EWMA, which steers lease sizing from the
// worker's first ask after a coordinator restart.
type WorkerRecord struct {
	ID      string  `json:"id"`
	Points  int     `json:"points,omitempty"`
	RatePPS float64 `json:"rate_pps,omitempty"`
}

// PointRecord is one finished grid point: its content address and the
// wire bytes a worker uploaded (or the coordinator encoded locally).
type PointRecord struct {
	Key string `json:"key"`
	Val []byte `json:"val"`
}

// AuditRecord is one entry of the coordinator's append-only audit
// trail: who did what, when. Timestamps are unix milliseconds set by
// the coordinator at append time.
type AuditRecord struct {
	TimeMS int64  `json:"t"`
	Tenant string `json:"tenant,omitempty"`
	Action string `json:"action"` // e.g. job-submit, job-done, job-failed, worker-register, auth-reject
	JobID  string `json:"job,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// maxAuditRecords bounds the audit trail a store retains: the log is
// append-only in spirit, but snapshots keep only the newest window so
// durable state stays proportional to live work, not to history.
const maxAuditRecords = 4096

// State is a full snapshot of the durable coordinator state. Points are
// ordered least-recently-stored first, so reloading them in order
// reconstructs the point store's eviction order. Audit entries are
// oldest-first, capped at maxAuditRecords.
type State struct {
	Jobs    []JobRecord    `json:"jobs,omitempty"`
	Workers []WorkerRecord `json:"workers,omitempty"`
	Points  []PointRecord  `json:"points,omitempty"`
	Audit   []AuditRecord  `json:"audit,omitempty"`
}

// Store is the durable state engine behind a coordinator. Mutation
// methods are durability best-effort: implementations log failures and
// keep serving (an unwritable disk degrades gtwd to an ephemeral
// coordinator, it does not take it down). All methods are safe for
// concurrent use.
type Store interface {
	// Load returns the state the store recovered at open. Call once,
	// before any mutation.
	Load() *State
	// PutPoint upserts one finished point's wire bytes.
	PutPoint(key string, val []byte)
	// DeletePoint forgets an evicted point, so snapshots stay bounded by
	// the live store, not by everything ever computed.
	DeletePoint(key string)
	// PutJob upserts a job record (submit, finish, resume).
	PutJob(rec JobRecord)
	// DeleteJob forgets a pruned job.
	DeleteJob(id string)
	// PutWorker upserts a worker's identity and statistics.
	PutWorker(rec WorkerRecord)
	// AppendAudit appends one audit-trail entry. Stores retain only the
	// newest maxAuditRecords entries across snapshots.
	AppendAudit(rec AuditRecord)
	// Snapshot compacts the journal into a full-state snapshot now (Disk
	// also snapshots on a timer and on Close; Mem has nothing to do).
	Snapshot() error
	// Close flushes (Disk: a final snapshot) and releases the store.
	Close() error
}

// mirror is the live full-state image both implementations maintain:
// Mem serves Load straight from it, Disk serializes it into snapshots
// so compaction never has to re-read its own log.
type mirror struct {
	jobs    map[string]*JobRecord
	jobIDs  []string // insertion order, so recovery resubmits in order
	workers map[string]*WorkerRecord
	points  *list.List // *PointRecord, back = least recently stored
	byKey   map[string]*list.Element
	audit   []AuditRecord // oldest first, bounded by maxAuditRecords
}

func newMirror() *mirror {
	return &mirror{
		jobs:    make(map[string]*JobRecord),
		workers: make(map[string]*WorkerRecord),
		points:  list.New(),
		byKey:   make(map[string]*list.Element),
	}
}

func (m *mirror) putPoint(key string, val []byte) {
	if el, ok := m.byKey[key]; ok {
		el.Value.(*PointRecord).Val = val
		m.points.MoveToFront(el)
		return
	}
	m.byKey[key] = m.points.PushFront(&PointRecord{Key: key, Val: val})
}

func (m *mirror) deletePoint(key string) {
	if el, ok := m.byKey[key]; ok {
		m.points.Remove(el)
		delete(m.byKey, key)
	}
}

func (m *mirror) putJob(rec JobRecord) {
	if _, ok := m.jobs[rec.ID]; !ok {
		m.jobIDs = append(m.jobIDs, rec.ID)
	}
	cp := rec
	m.jobs[rec.ID] = &cp
}

func (m *mirror) deleteJob(id string) {
	if _, ok := m.jobs[id]; !ok {
		return
	}
	delete(m.jobs, id)
	for i, jid := range m.jobIDs {
		if jid == id {
			m.jobIDs = append(m.jobIDs[:i], m.jobIDs[i+1:]...)
			break
		}
	}
}

func (m *mirror) putWorker(rec WorkerRecord) {
	cp := rec
	m.workers[rec.ID] = &cp
}

func (m *mirror) appendAudit(rec AuditRecord) {
	m.audit = append(m.audit, rec)
	if over := len(m.audit) - maxAuditRecords; over > 0 {
		m.audit = append(m.audit[:0], m.audit[over:]...)
	}
}

// load replaces the mirror's contents with a snapshot state.
func (m *mirror) load(s *State) {
	*m = *newMirror()
	if s == nil {
		return
	}
	for _, j := range s.Jobs {
		m.putJob(j)
	}
	for _, w := range s.Workers {
		m.putWorker(w)
	}
	for _, p := range s.Points { // oldest first: PushFront keeps order
		m.putPoint(p.Key, p.Val)
	}
	for _, a := range s.Audit {
		m.appendAudit(a)
	}
}

// state snapshots the mirror. Points come out oldest-first so load
// round-trips the store order.
func (m *mirror) state() *State {
	s := &State{}
	for _, id := range m.jobIDs {
		s.Jobs = append(s.Jobs, *m.jobs[id])
	}
	for _, w := range sortedKeys(m.workers) {
		s.Workers = append(s.Workers, *m.workers[w])
	}
	for el := m.points.Back(); el != nil; el = el.Prev() {
		s.Points = append(s.Points, *el.Value.(*PointRecord))
	}
	s.Audit = append(s.Audit, m.audit...)
	return s
}

func sortedKeys(m map[string]*WorkerRecord) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort: worker counts are small
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
