package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fill applies a representative set of mutations to any Store.
func fill(s Store) {
	s.PutJob(JobRecord{ID: "job-1", Scenario: "sweep-a", Status: "running",
		Opts: json.RawMessage(`{"frames":3}`)})
	s.PutJob(JobRecord{ID: "job-2", Scenario: "sweep-b", Status: "done",
		Report: json.RawMessage(`{"rows":[1,2]}`), Text: "table", PointsTotal: 4, PointsDone: 4})
	s.PutWorker(WorkerRecord{ID: "w-aa", Points: 12, RatePPS: 40.5})
	s.PutPoint("k1", []byte("v1"))
	s.PutPoint("k2", []byte("v2"))
	s.PutPoint("k3", []byte("v3"))
	s.DeletePoint("k2")
	s.PutPoint("k1", []byte("v1b")) // upsert refreshes recency
	s.AppendAudit(AuditRecord{TimeMS: 100, Tenant: "climate", Action: "job-submit", JobID: "job-1"})
	s.AppendAudit(AuditRecord{TimeMS: 200, Tenant: "climate", Action: "job-done", JobID: "job-1", Detail: "4 points"})
}

// wantFilled asserts the state fill produces, on any Store.
func wantFilled(t *testing.T, st *State) {
	t.Helper()
	if len(st.Jobs) != 2 || st.Jobs[0].ID != "job-1" || st.Jobs[1].ID != "job-2" {
		t.Fatalf("jobs = %+v, want job-1 then job-2", st.Jobs)
	}
	if st.Jobs[0].Status != "running" || string(st.Jobs[1].Report) != `{"rows":[1,2]}` {
		t.Errorf("job fields lost: %+v", st.Jobs)
	}
	if len(st.Workers) != 1 || st.Workers[0].RatePPS != 40.5 || st.Workers[0].Points != 12 {
		t.Errorf("workers = %+v", st.Workers)
	}
	// k2 deleted; k1 refreshed after k3, so oldest-first order is k3, k1.
	if len(st.Points) != 2 || st.Points[0].Key != "k3" || st.Points[1].Key != "k1" {
		t.Fatalf("points = %+v, want [k3 k1] oldest-first", st.Points)
	}
	if !bytes.Equal(st.Points[1].Val, []byte("v1b")) {
		t.Errorf("k1 = %q, want upserted v1b", st.Points[1].Val)
	}
	if len(st.Audit) != 2 || st.Audit[0].Action != "job-submit" || st.Audit[1].Action != "job-done" {
		t.Fatalf("audit = %+v, want [job-submit job-done] oldest-first", st.Audit)
	}
	if st.Audit[1].Tenant != "climate" || st.Audit[1].JobID != "job-1" || st.Audit[1].TimeMS != 200 {
		t.Errorf("audit fields lost: %+v", st.Audit[1])
	}
}

// The audit trail is bounded: only the newest maxAuditRecords entries
// survive, in both implementations and across snapshot round-trips.
func TestAuditTrailBounded(t *testing.T) {
	mem := NewMem()
	for i := 0; i < maxAuditRecords+10; i++ {
		mem.AppendAudit(AuditRecord{TimeMS: int64(i), Action: "job-submit"})
	}
	st := mem.Load()
	if len(st.Audit) != maxAuditRecords {
		t.Fatalf("mem audit len = %d, want %d", len(st.Audit), maxAuditRecords)
	}
	if st.Audit[0].TimeMS != 10 || st.Audit[len(st.Audit)-1].TimeMS != int64(maxAuditRecords+9) {
		t.Fatalf("mem audit window = [%d..%d], want newest window",
			st.Audit[0].TimeMS, st.Audit[len(st.Audit)-1].TimeMS)
	}

	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{SnapshotEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxAuditRecords+10; i++ {
		d.AppendAudit(AuditRecord{TimeMS: int64(i), Action: "job-submit"})
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, DiskOptions{SnapshotEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st = re.Load()
	if len(st.Audit) != maxAuditRecords || st.Audit[0].TimeMS != 10 {
		t.Fatalf("disk audit after reopen: len=%d first=%d, want len=%d first=10",
			len(st.Audit), st.Audit[0].TimeMS, maxAuditRecords)
	}
}

// The two implementations agree on the contract: the same mutation
// sequence loads back as the same state.
func TestMemAndDiskAgreeOnState(t *testing.T) {
	mem := NewMem()
	fill(mem)
	wantFilled(t, mem.Load())

	dir := t.TempDir()
	disk, err := Open(dir, DiskOptions{SnapshotEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	fill(disk)
	wantFilled(t, disk.Load())
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the final snapshot alone must reproduce the state.
	re, err := Open(dir, DiskOptions{SnapshotEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	wantFilled(t, re.Load())
}

// A store whose process dies without Close (no final snapshot) recovers
// everything from the log alone.
func TestDiskRecoversFromWALWithoutClose(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{SnapshotEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	fill(d)
	// Simulate a kill: drop the handle without snapshotting.
	d.mu.Lock()
	d.wal.Close()
	d.closed = true
	d.mu.Unlock()
	d.stopOnce.Do(func() { close(d.stop) })

	re, err := Open(dir, DiskOptions{SnapshotEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	wantFilled(t, re.Load())
}

// Snapshots compact: after Snapshot the log restarts empty, the old
// generation's log is gone, and mutations after the snapshot land in
// the new log and survive a reopen.
func TestDiskSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{SnapshotEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	fill(d)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	logs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(logs) != 1 {
		t.Fatalf("logs after snapshot: %v, want exactly the new generation", logs)
	}
	if fi, err := os.Stat(logs[0]); err != nil || fi.Size() != 0 {
		t.Fatalf("new log %s not empty: %v %v", logs[0], fi.Size(), err)
	}
	d.PutPoint("k4", []byte("v4"))
	// Kill without Close again: snapshot + one-record log.
	d.mu.Lock()
	d.wal.Close()
	d.closed = true
	d.mu.Unlock()
	d.stopOnce.Do(func() { close(d.stop) })

	re, err := Open(dir, DiskOptions{SnapshotEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Load()
	if len(st.Points) != 3 || st.Points[2].Key != "k4" {
		t.Fatalf("post-snapshot mutation lost: %+v", st.Points)
	}
}

// The log grows past SnapshotBytes → the store compacts on its own.
func TestDiskSizeTriggeredSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{SnapshotEvery: -1, SnapshotBytes: 256, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 64; i++ {
		d.PutPoint(fmt.Sprintf("k%03d", i), bytes.Repeat([]byte("x"), 32))
	}
	d.mu.Lock()
	gen, walBytes := d.gen, d.walBytes
	d.mu.Unlock()
	if gen == 0 {
		t.Fatal("no size-triggered snapshot happened")
	}
	if walBytes >= 256+128 {
		t.Errorf("log not reset after snapshot: %d bytes", walBytes)
	}
}

// Corruption tolerance, regression tests for the two crash shapes:
//
// A final record cut short by a dying writer — header alone, or header
// plus partial payload — recovers to the last good entry with a
// warning, and the truncated tail is discarded so appends resume clean.
func TestWALTruncatedFinalRecordTolerated(t *testing.T) {
	for _, cut := range []struct {
		name string
		keep int64 // bytes to keep beyond the last good record
	}{
		{"header-only", 5},
		{"partial-payload", walHeader + 3},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := Open(dir, DiskOptions{SnapshotEvery: -1, Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			d.PutPoint("good-1", []byte("aaa"))
			d.PutPoint("good-2", []byte("bbb"))
			d.mu.Lock()
			goodEnd := d.walBytes
			d.mu.Unlock()
			d.PutPoint("doomed", []byte("this record will be cut short"))
			d.mu.Lock()
			d.wal.Close()
			d.closed = true
			d.mu.Unlock()
			d.stopOnce.Do(func() { close(d.stop) })

			walFile := filepath.Join(dir, "wal-0.log")
			if err := os.Truncate(walFile, goodEnd+cut.keep); err != nil {
				t.Fatal(err)
			}
			var warned []string
			logf := func(f string, a ...any) { warned = append(warned, fmt.Sprintf(f, a...)) }
			re, err := Open(dir, DiskOptions{SnapshotEvery: -1, Logf: logf})
			if err != nil {
				t.Fatalf("truncated log must open, got %v", err)
			}
			defer re.Close()
			st := re.Load()
			if len(st.Points) != 2 || st.Points[0].Key != "good-1" || st.Points[1].Key != "good-2" {
				t.Fatalf("recovered points = %+v, want the two good entries", st.Points)
			}
			if len(warned) == 0 || !strings.Contains(strings.Join(warned, "\n"), "truncated") {
				t.Errorf("no truncation warning logged: %v", warned)
			}
			// The tail was discarded: the log is appendable again and a
			// new mutation survives the next open.
			re.PutPoint("after", []byte("ccc"))
			if fi, err := os.Stat(walFile); err != nil || fi.Size() <= goodEnd {
				t.Errorf("append after recovery did not grow the log: %v %v", fi, err)
			}
		})
	}
}

// A record whose payload was corrupted in place (checksum mismatch)
// ends the replay at the last good entry with a warning.
func TestWALChecksumMismatchTolerated(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{SnapshotEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	d.PutPoint("good", []byte("aaa"))
	d.mu.Lock()
	goodEnd := d.walBytes
	d.mu.Unlock()
	d.PutPoint("flipped", []byte("bbb"))
	d.PutPoint("shadowed", []byte("ccc")) // intact, but after the corruption: must not replay
	d.mu.Lock()
	d.wal.Close()
	d.closed = true
	d.mu.Unlock()
	d.stopOnce.Do(func() { close(d.stop) })

	walFile := filepath.Join(dir, "wal-0.log")
	b, err := os.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}
	b[goodEnd+walHeader+2] ^= 0xff // flip a payload byte of the second record
	if err := os.WriteFile(walFile, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var warned []string
	logf := func(f string, a ...any) { warned = append(warned, fmt.Sprintf(f, a...)) }
	re, err := Open(dir, DiskOptions{SnapshotEvery: -1, Logf: logf})
	if err != nil {
		t.Fatalf("corrupt log must open, got %v", err)
	}
	defer re.Close()
	st := re.Load()
	if len(st.Points) != 1 || st.Points[0].Key != "good" {
		t.Fatalf("recovered points = %+v, want only the pre-corruption entry", st.Points)
	}
	if len(warned) == 0 || !strings.Contains(strings.Join(warned, "\n"), "checksum") {
		t.Errorf("no checksum warning logged: %v", warned)
	}
}

// Concurrent mutation is safe (the coordinator journals from HTTP
// handlers, shard goroutines and the reaper at once).
func TestDiskConcurrentAppends(t *testing.T) {
	d, err := Open(t.TempDir(), DiskOptions{SnapshotEvery: time.Millisecond, SnapshotBytes: 2048, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d.PutPoint(fmt.Sprintf("g%d-k%d", g, i), []byte("v"))
				d.PutWorker(WorkerRecord{ID: fmt.Sprintf("w-%d", g), Points: i})
			}
		}(g)
	}
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if st := d.Load(); len(st.Points) != 8*50 {
		t.Errorf("points after concurrent appends = %d, want %d", len(st.Points), 8*50)
	}
}
