// Package machine describes the computers attached to the Gigabit
// Testbed West (section 1 of the paper) as parameterized performance
// models: peak and sustained per-PE compute rates, internal network
// characteristics, and the host I/O limits that shaped the measured WAN
// throughput (the SP2's microchannel being the canonical example).
package machine

import (
	"fmt"
	"math"
	"time"
)

// Kind classifies an architecture.
type Kind int

// Architectures present in the testbed.
const (
	MPP Kind = iota // massively parallel (T3E, SP2)
	Vector
	SMP
	Workstation
)

func (k Kind) String() string {
	switch k {
	case MPP:
		return "MPP"
	case Vector:
		return "vector"
	case SMP:
		return "SMP"
	case Workstation:
		return "workstation"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Spec is a machine performance model.
type Spec struct {
	Name string
	Kind Kind
	// PEs is the number of processing elements.
	PEs int
	// SustainedFlops is the realistic per-PE sustained rate (flop/s)
	// on the workloads of interest, not the peak.
	SustainedFlops float64
	// NetLatency is the internal network's point-to-point latency.
	NetLatency time.Duration
	// NetBps is the internal per-link bandwidth in bit/s.
	NetBps float64
	// IOBps caps external network I/O in bit/s (0 = not the
	// bottleneck).
	IOBps float64
}

// Testbed machines (values representative of the 1999 installations).
func CrayT3E600() Spec {
	return Spec{Name: "cray-t3e-600", Kind: MPP, PEs: 512,
		SustainedFlops: 43e6, NetLatency: 2 * time.Microsecond, NetBps: 2.4e9}
}

func CrayT3E1200() Spec {
	return Spec{Name: "cray-t3e-1200", Kind: MPP, PEs: 512,
		SustainedFlops: 86e6, NetLatency: 2 * time.Microsecond, NetBps: 2.4e9}
}

func CrayT90() Spec {
	return Spec{Name: "cray-t90", Kind: Vector, PEs: 10,
		SustainedFlops: 900e6, NetLatency: time.Microsecond, NetBps: 8e9}
}

// IBMSP2 models the microchannel-based SP nodes whose I/O system limited
// the WAN throughput to ~260 Mbit/s (section 2).
func IBMSP2() Spec {
	return Spec{Name: "ibm-sp2", Kind: MPP, PEs: 32,
		SustainedFlops: 60e6, NetLatency: 30 * time.Microsecond, NetBps: 320e6,
		IOBps: 264e6}
}

func SGIOnyx2() Spec {
	return Spec{Name: "sgi-onyx2", Kind: SMP, PEs: 12,
		SustainedFlops: 120e6, NetLatency: time.Microsecond, NetBps: 6.2e9}
}

func SunE5000() Spec {
	return Spec{Name: "sun-e5000", Kind: SMP, PEs: 8,
		SustainedFlops: 80e6, NetLatency: 2 * time.Microsecond, NetBps: 2.6e9}
}

// ComputeTime reports the modeled wall time for the given total flops
// spread perfectly over p PEs (capped at the machine size).
func (s Spec) ComputeTime(flops float64, p int) time.Duration {
	if p < 1 {
		p = 1
	}
	if p > s.PEs {
		p = s.PEs
	}
	sec := flops / (s.SustainedFlops * float64(p))
	return time.Duration(sec * 1e9)
}

// CollectiveTime reports the modeled cost of a tree collective (e.g.
// broadcast or reduce) of the given payload over p PEs: log2(p) stages
// of latency + serialization.
func (s Spec) CollectiveTime(bytes, p int) time.Duration {
	if p <= 1 {
		return 0
	}
	stages := math.Ceil(math.Log2(float64(p)))
	per := float64(s.NetLatency) + float64(bytes)*8/s.NetBps*1e9
	return time.Duration(stages * per)
}

// ExchangeTime reports the modeled cost of a neighbor (halo) exchange
// of the given payload per PE pair.
func (s Spec) ExchangeTime(bytes int) time.Duration {
	return s.NetLatency + time.Duration(float64(bytes)*8/s.NetBps*1e9)
}
