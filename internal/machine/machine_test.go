package machine

import (
	"strings"
	"testing"
	"time"
)

func TestSpecsSanity(t *testing.T) {
	specs := []Spec{CrayT3E600(), CrayT3E1200(), CrayT90(), IBMSP2(), SGIOnyx2(), SunE5000()}
	for _, s := range specs {
		if s.Name == "" || s.PEs <= 0 || s.SustainedFlops <= 0 || s.NetBps <= 0 {
			t.Errorf("spec %+v incomplete", s)
		}
	}
	// The T3E-1200 is twice the T3E-600 per PE.
	if CrayT3E1200().SustainedFlops != 2*CrayT3E600().SustainedFlops {
		t.Error("T3E-1200 should double the T3E-600 per-PE rate")
	}
	// The SP2's I/O cap matches the ~260 Mbit/s observation.
	if io := IBMSP2().IOBps; io < 255e6 || io > 275e6 {
		t.Errorf("SP2 IOBps = %v", io)
	}
}

func TestComputeTimeScaling(t *testing.T) {
	s := CrayT3E600()
	t1 := s.ComputeTime(4.3e9, 1) // 100 s at 43 Mflop/s
	if d := t1.Seconds(); d < 99 || d > 101 {
		t.Errorf("1-PE time = %v", d)
	}
	t100 := s.ComputeTime(4.3e9, 100)
	if d := t100.Seconds(); d < 0.99 || d > 1.01 {
		t.Errorf("100-PE time = %v", d)
	}
	// PEs capped at machine size.
	tBig := s.ComputeTime(4.3e9, 10000)
	if tBig != s.ComputeTime(4.3e9, s.PEs) {
		t.Error("PE count not capped at machine size")
	}
	// p < 1 clamps to 1.
	if s.ComputeTime(4.3e9, 0) != t1 {
		t.Error("p=0 not clamped")
	}
}

func TestCollectiveTime(t *testing.T) {
	s := CrayT3E600()
	if s.CollectiveTime(1024, 1) != 0 {
		t.Error("1-PE collective should be free")
	}
	c2 := s.CollectiveTime(1024, 2)
	c256 := s.CollectiveTime(1024, 256)
	diff := c256 - 8*c2
	if diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("256-PE collective = %v, want ~8 x %v (log2 stages)", c256, c2)
	}
}

func TestExchangeTime(t *testing.T) {
	s := CrayT3E600()
	d := s.ExchangeTime(64 * 64 * 4) // one 64x64 float32 halo slice
	if d <= s.NetLatency {
		t.Error("exchange should cost more than latency alone")
	}
	if d > time.Millisecond {
		t.Errorf("halo exchange = %v, implausibly slow for a T3E", d)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{MPP: "MPP", Vector: "vector", SMP: "SMP", Workstation: "workstation"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", int(k), k.String())
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Error("unknown kind should format numerically")
	}
}
