package dist

import "testing"

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU(2)
	a, b, d := &cachedResult{text: "a"}, &cachedResult{text: "b"}, &cachedResult{text: "d"}
	c.add("a", a)
	c.add("b", b)
	// Touch "a" so "b" becomes the eviction candidate.
	if got, ok := c.get("a"); !ok || got != a {
		t.Fatal("get(a) failed")
	}
	c.add("d", d)
	if _, ok := c.get("b"); ok {
		t.Error("least recently used entry survived past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently used entry was evicted")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestLRURefreshReplacesValue(t *testing.T) {
	c := newLRU(2)
	c.add("k", &cachedResult{text: "old"})
	c.add("k", &cachedResult{text: "new"})
	if got, _ := c.get("k"); got.text != "new" {
		t.Errorf("refresh kept %q", got.text)
	}
	if c.len() != 1 {
		t.Errorf("len = %d after refresh, want 1", c.len())
	}
}
