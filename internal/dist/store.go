package dist

import (
	"container/list"
	"sync"
)

// pointStore is the coordinator's content-addressed result store: the
// wire bytes of finished grid points, keyed by the point's content
// address (core.Sweep.PointKey — a hash of scenario, grid coordinates
// and the option fields the point depends on). It replaces the old
// whole-report LRU: caching at point granularity means two jobs whose
// grids merely overlap reuse each other's finished points, a job
// resubmitted with different-but-irrelevant options is served entirely
// from the store, and a job that fails or is cancelled still leaves its
// completed points behind for the next submission.
//
// Eviction is least-recently-used over a bounded entry count. The store
// keeps encoded wire bytes, not live values: what a worker uploads is
// stored verbatim, and a hit decodes exactly as a fresh upload would —
// which is what keeps reports assembled from cached points
// byte-identical to freshly computed ones.
type pointStore struct {
	mu           sync.Mutex
	cap          int
	order        *list.List // front = most recently used
	byKey        map[string]*list.Element
	hits, misses int64
}

type storeEntry struct {
	key string
	val []byte
}

func newPointStore(capacity int) *pointStore {
	if capacity < 1 {
		capacity = 1
	}
	return &pointStore{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the stored wire bytes for a point key and marks the entry
// most recently used. The empty key (an unkeyable point) never hits.
func (s *pointStore) get(key string) ([]byte, bool) {
	if key == "" {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*storeEntry).val, true
}

// contains reports residency without touching the LRU order or the
// hit/miss counters — for callers deciding whether a put is needed,
// not serving a result.
func (s *pointStore) contains(key string) bool {
	if key == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.byKey[key]
	return ok
}

// put inserts (or refreshes) a point's wire bytes, evicting the least
// recently used entry past capacity. Empty keys and empty values are
// ignored.
func (s *pointStore) put(key string, val []byte) {
	if key == "" || len(val) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		el.Value.(*storeEntry).val = val
		s.order.MoveToFront(el)
		return
	}
	s.byKey[key] = s.order.PushFront(&storeEntry{key: key, val: val})
	if s.order.Len() > s.cap {
		last := s.order.Back()
		s.order.Remove(last)
		delete(s.byKey, last.Value.(*storeEntry).key)
	}
}

// stats snapshots the store for /v1/status.
func (s *pointStore) stats() (points, capacity int, hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len(), s.cap, s.hits, s.misses
}
