package dist

import (
	"container/list"
	"sync"
)

// pointStore is the coordinator's content-addressed result store: the
// wire bytes of finished grid points, keyed by the point's content
// address (core.Sweep.PointKey — a hash of scenario, grid coordinates
// and the option fields the point depends on). It replaces the old
// whole-report LRU: caching at point granularity means two jobs whose
// grids merely overlap reuse each other's finished points, a job
// resubmitted with different-but-irrelevant options is served entirely
// from the store, and a job that fails or is cancelled still leaves its
// completed points behind for the next submission.
//
// Eviction is least-recently-used over a bounded entry count and,
// optionally, a total byte budget over the stored wire bytes; a
// per-entry size cap rejects single oversized results outright. The
// store keeps encoded wire bytes, not live values: what a worker
// uploads is stored verbatim, and a hit decodes exactly as a fresh
// upload would — which is what keeps reports assembled from cached
// points byte-identical to freshly computed ones.
//
// onPut/onEvict, when set, observe every accepted insert/update and
// every eviction (both called with the store lock held) — the
// coordinator journals them to its persistence store, so the durable
// image tracks residency and a restart never resurrects evicted
// points.
type pointStore struct {
	mu                     sync.Mutex
	cap                    int
	capBytes               int64 // total wire-byte budget; 0 = entries-only bound
	entryCap               int   // per-entry wire-byte cap; 0 = uncapped
	bytes                  int64
	order                  *list.List // front = most recently used
	byKey                  map[string]*list.Element
	hits, misses, rejected int64
	evictions              int64

	onPut   func(key string, val []byte)
	onEvict func(key string)
}

type storeEntry struct {
	key string
	val []byte
}

// storeStats is one consistent snapshot of the store's counters.
type storeStats struct {
	points, cap     int
	bytes, capBytes int64
	entryCap        int
	hits, misses    int64
	rejected        int64
	evictions       int64
}

func newPointStore(capacity int, capBytes int64, entryCap int) *pointStore {
	if capacity < 1 {
		capacity = 1
	}
	if capBytes < 0 {
		capBytes = 0
	}
	if entryCap < 0 {
		entryCap = 0
	}
	return &pointStore{
		cap: capacity, capBytes: capBytes, entryCap: entryCap,
		order: list.New(), byKey: make(map[string]*list.Element),
	}
}

// get returns the stored wire bytes for a point key and marks the entry
// most recently used. The empty key (an unkeyable point) never hits.
func (s *pointStore) get(key string) ([]byte, bool) {
	if key == "" {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*storeEntry).val, true
}

// contains reports residency without touching the LRU order or the
// hit/miss counters — for callers deciding whether a put is needed,
// not serving a result.
func (s *pointStore) contains(key string) bool {
	if key == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.byKey[key]
	return ok
}

// put inserts (or refreshes) a point's wire bytes, evicting least
// recently used entries past the entry or byte bound. Empty keys, empty
// values and values past the per-entry cap are ignored (a result too
// large to budget for must not evict the whole store to fit). The
// returns surface what happened — accepted (inserted or updated) and
// rejected (refused under the per-entry cap) — so callers that know
// which tenant produced the point can attribute store bytes and
// budget rejections to it.
func (s *pointStore) put(key string, val []byte) (accepted, rejected bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.rejected
	accepted = s.insertLocked(key, val)
	if accepted && s.onPut != nil {
		s.onPut(key, val)
	}
	return accepted, s.rejected > before
}

// seed is put without the onPut journal hook: the recovery path, where
// the bytes came FROM the journal and re-recording them would rewrite
// the log on every restart. Evictions (a store reopened with a smaller
// budget) still reach onEvict, so the durable image shrinks with the
// configuration.
func (s *pointStore) seed(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(key, val)
}

// insertLocked is the shared put body; true means the entry was
// accepted (inserted or updated).
func (s *pointStore) insertLocked(key string, val []byte) bool {
	if key == "" || len(val) == 0 {
		return false
	}
	if s.entryCap > 0 && len(val) > s.entryCap {
		s.rejected++
		return false
	}
	if el, ok := s.byKey[key]; ok {
		ent := el.Value.(*storeEntry)
		s.bytes += int64(len(val)) - int64(len(ent.val))
		ent.val = val
		s.order.MoveToFront(el)
		s.evictLocked()
		return true
	}
	s.byKey[key] = s.order.PushFront(&storeEntry{key: key, val: val})
	s.bytes += int64(len(val))
	s.evictLocked()
	return true
}

// evictLocked drops least-recently-used entries until both bounds hold.
// The most recent entry is never evicted, so a put can always land.
func (s *pointStore) evictLocked() {
	for s.order.Len() > 1 &&
		(s.order.Len() > s.cap || (s.capBytes > 0 && s.bytes > s.capBytes)) {
		last := s.order.Back()
		ent := last.Value.(*storeEntry)
		s.order.Remove(last)
		delete(s.byKey, ent.key)
		s.bytes -= int64(len(ent.val))
		s.evictions++
		if s.onEvict != nil {
			s.onEvict(ent.key)
		}
	}
}

// stats snapshots the store for /v1/status.
func (s *pointStore) stats() storeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return storeStats{
		points: s.order.Len(), cap: s.cap,
		bytes: s.bytes, capBytes: s.capBytes, entryCap: s.entryCap,
		hits: s.hits, misses: s.misses, rejected: s.rejected,
		evictions: s.evictions,
	}
}
