package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is the coordinator's job-side API: submit scenario runs, poll
// them to completion. cmd/gtwrun's -connect mode and the test suite
// drive coordinators through it.
type Client struct {
	// Base is the coordinator URL, e.g. "http://127.0.0.1:9191".
	Base string
	// HTTP is the client to use (default: 30s-timeout client).
	HTTP *http.Client
	// Poll is the job-poll interval (default 100ms).
	Poll time.Duration
}

// defaultHTTPClient serves Clients and Workers that did not bring
// their own; a shared value keeps concurrent use race-free.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

func (cl *Client) http() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return defaultHTTPClient
}

func (cl *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, cl.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("dist: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job and returns its (possibly already finished)
// status.
func (cl *Client) Submit(ctx context.Context, req JobRequest) (*JobStatus, error) {
	var st JobStatus
	if err := cl.do(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches a job's current status.
func (cl *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := cl.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls the job until it reaches a terminal state or ctx ends.
func (cl *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	poll := cl.Poll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := cl.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Status == JobDone || st.Status == JobFailed {
			return st, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Run submits a job and waits for it.
func (cl *Client) Run(ctx context.Context, req JobRequest) (*JobStatus, error) {
	st, err := cl.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	if st.Status == JobDone || st.Status == JobFailed {
		return st, nil
	}
	return cl.Wait(ctx, st.ID)
}

// Status fetches the coordinator snapshot.
func (cl *Client) Status(ctx context.Context) (*StatusReply, error) {
	var st StatusReply
	if err := cl.do(ctx, http.MethodGet, "/v1/status", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
