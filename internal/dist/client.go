package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is the coordinator's job-side API: submit scenario runs, poll
// them to completion. cmd/gtwrun's -connect mode and the test suite
// drive coordinators through it.
type Client struct {
	// Base is the coordinator URL, e.g. "http://127.0.0.1:9191".
	Base string
	// Token authenticates against a multi-tenant coordinator (gtwd
	// -tenants); sent as "Authorization: Bearer <token>" on every
	// request. Empty sends no header (fine for tenantless coordinators).
	Token string
	// HTTP is the client to use (default: 30s-timeout client).
	HTTP *http.Client
	// Poll is the job-poll interval (default 100ms).
	Poll time.Duration
}

// defaultHTTPClient serves Clients and Workers that did not bring
// their own; a shared value keeps concurrent use race-free.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

func (cl *Client) http() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return defaultHTTPClient
}

func (cl *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, cl.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if cl.Token != "" {
		req.Header.Set("Authorization", "Bearer "+cl.Token)
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("dist: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job and returns its (possibly already finished)
// status.
func (cl *Client) Submit(ctx context.Context, req JobRequest) (*JobStatus, error) {
	var st JobStatus
	if err := cl.do(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches a job's current status.
func (cl *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := cl.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls the job until it reaches a terminal state or ctx ends.
func (cl *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	poll := cl.Poll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := cl.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Status == JobDone || st.Status == JobFailed {
			return st, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// streamHTTP builds the dedicated client for /v1/events: the regular
// request client enforces a whole-request timeout, which would kill a
// long-lived stream mid-job, so the stream reuses its transport but
// drops the deadline (lifetime is governed by ctx instead).
func (cl *Client) streamHTTP() *http.Client {
	sc := &http.Client{}
	if cl.HTTP != nil {
		sc.Transport = cl.HTTP.Transport
	}
	return sc
}

// WaitStream waits for a job by consuming the coordinator's /v1/events
// SSE stream, falling back to plain polling (Wait) if the stream
// cannot be opened or dies mid-job; onFallback, when non-nil, observes
// the error that triggered the fallback. The subscribe-then-poll race is
// closed by order of operations: the server writes an opening comment
// the moment the subscription is live, and WaitStream re-polls the job
// after reading it — any transition before the subscription was live
// is caught by that poll, and any transition after it arrives on the
// stream (or visibly breaks it, triggering the fallback).
func (cl *Client) WaitStream(ctx context.Context, id string, onFallback func(error)) (*JobStatus, error) {
	if st, err := cl.Job(ctx, id); err != nil {
		return nil, err
	} else if st.Status == JobDone || st.Status == JobFailed {
		return st, nil
	}
	fallback := func(cause error) (*JobStatus, error) {
		if onFallback != nil {
			onFallback(cause)
		}
		return cl.Wait(ctx, id)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.Base+"/v1/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if cl.Token != "" {
		req.Header.Set("Authorization", "Bearer "+cl.Token)
	}
	resp, err := cl.streamHTTP().Do(req)
	if err != nil {
		return fallback(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fallback(fmt.Errorf("dist: GET /v1/events: %s: %s", resp.Status, bytes.TrimSpace(msg)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	// The server's first line is the opening comment — once read, the
	// subscription is live and the re-poll below closes the race.
	if !sc.Scan() {
		return fallback(fmt.Errorf("dist: event stream closed before the opening comment: %w", sc.Err()))
	}
	if st, err := cl.Job(ctx, id); err != nil {
		return nil, err
	} else if st.Status == JobDone || st.Status == JobFailed {
		return st, nil
	}
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			var ev Event
			if data.Len() > 0 && json.Unmarshal([]byte(data.String()), &ev) == nil &&
				ev.Type == "job" && ev.Job == id &&
				(ev.Status == JobDone || ev.Status == JobFailed) {
				// Terminal transition seen: fetch the full status (the
				// event carries no report bytes).
				return cl.Job(ctx, id)
			}
			data.Reset()
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
	err = sc.Err()
	if err == nil {
		err = io.ErrUnexpectedEOF // server dropped the stream mid-job
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return fallback(err)
}

// Run submits a job and waits for it.
func (cl *Client) Run(ctx context.Context, req JobRequest) (*JobStatus, error) {
	st, err := cl.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	if st.Status == JobDone || st.Status == JobFailed {
		return st, nil
	}
	return cl.Wait(ctx, st.ID)
}

// Status fetches the coordinator snapshot.
func (cl *Client) Status(ctx context.Context) (*StatusReply, error) {
	var st StatusReply
	if err := cl.do(ctx, http.MethodGet, "/v1/status", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
