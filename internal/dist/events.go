package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// eventHub fans coordinator transitions out to /v1/events subscribers.
// Publishing never blocks the control plane: each subscriber has a
// buffered channel and a slow consumer simply loses frames (its
// channel is full — SSE is a live view, not a durable log; the polling
// endpoints remain the source of truth). dropAll disconnects every
// subscriber, which is both the shutdown path and the fault-injection
// hook behind the gtwrun -connect fallback test.
type eventHub struct {
	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
}

// subBuffer is each subscriber's frame buffer; a dashboard that falls
// this many frames behind starts losing intermediate progress updates.
const subBuffer = 64

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[chan []byte]struct{})}
}

// subscribe registers a new subscriber channel (nil if the hub is
// closed). The channel is closed by unsubscribe or dropAll.
func (h *eventHub) subscribe() chan []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	ch := make(chan []byte, subBuffer)
	h.subs[ch] = struct{}{}
	return ch
}

// unsubscribe removes and closes a subscriber channel.
func (h *eventHub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
	}
}

// subscribers reports the current subscriber count (for metrics).
func (h *eventHub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// publish renders one event as an SSE frame and offers it to every
// subscriber, dropping it for any whose buffer is full.
func (h *eventHub) publish(ev Event) {
	ev.TimeMS = time.Now().UnixMilli()
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	frame := []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", ev.Type, data))
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- frame:
		default: // slow consumer: drop the frame, never block
		}
	}
}

// dropAll disconnects every subscriber. With stop=true the hub also
// refuses new subscriptions (coordinator shutdown); with false it is
// the mid-stream kill used by fault-injection tests — clients are cut
// off but may reconnect.
func (h *eventHub) dropAll(stop bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if stop {
		h.closed = true
	}
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}

// eventHeartbeat is how often an idle /v1/events stream emits an SSE
// comment to prove liveness through proxies and dead-peer detection.
const eventHeartbeat = 10 * time.Second

// handleEvents serves GET /v1/events: an SSE stream of Event frames.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	ch := c.events.subscribe()
	if ch == nil {
		http.Error(w, "coordinator shutting down", http.StatusServiceUnavailable)
		return
	}
	defer c.events.unsubscribe(ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	// The opening comment tells the client its subscription is live:
	// any transition after this line will be delivered (or the stream
	// will visibly break), which is what lets clients close the
	// subscribe-then-poll race.
	fmt.Fprintf(w, ": gtwd events\nretry: 1000\n\n")
	fl.Flush()
	hb := time.NewTicker(eventHeartbeat)
	defer hb.Stop()
	for {
		select {
		case frame, open := <-ch:
			if !open {
				return // hub dropped us (shutdown or injected kill)
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		case <-hb.C:
			if _, err := fmt.Fprintf(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-c.stopped:
			return
		}
	}
}
