package dist

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/core"
)

// evalCounts tracks per-point evaluation counts for the counting
// sweeps. It is process-global because the scenario registry keeps the
// first registration's point function for the test binary's lifetime
// (including -count repeats).
var evalCounts = struct {
	sync.Mutex
	m map[string]map[int]int
}{m: make(map[string]map[int]int)}

// registerCountingSweep registers an option-independent distributable
// sweep whose point function counts how many times each grid index is
// evaluated — the oracle for "streamed points are never re-run". The
// returned counts function reports evaluations since this call, so
// repeated test runs see only their own.
func registerCountingSweep(name string, points int, delay time.Duration) (counts func(i int) int) {
	evalCounts.Lock()
	if evalCounts.m[name] == nil {
		evalCounts.m[name] = make(map[int]int)
	}
	base := make(map[int]int, len(evalCounts.m[name]))
	for i, n := range evalCounts.m[name] {
		base[i] = n
	}
	evalCounts.Unlock()
	counts = func(i int) int {
		evalCounts.Lock()
		defer evalCounts.Unlock()
		return evalCounts.m[name][i] - base[i]
	}
	if _, ok := core.Lookup(name); ok {
		return counts
	}
	vals := make([]any, points)
	for i := range vals {
		vals[i] = i
	}
	core.MustRegister(core.NewSweep(name, "streaming test sweep",
		[]core.Axis{{Name: "i", Values: vals}},
		func(ctx context.Context, tb *core.Testbed, opts core.Options, pt core.Point) (any, error) {
			evalCounts.Lock()
			evalCounts.m[name][pt.Index]++
			evalCounts.Unlock()
			if delay > 0 {
				time.Sleep(delay)
			}
			return core.Figure1Row{
				Path: fmt.Sprintf("point %d", pt.Index),
				Mbps: float64(pt.Index*3) + 0.5,
			}, nil
		},
		func(opts core.Options, results []any) (core.Report, error) {
			rep := &core.Figure1Report{}
			for _, r := range results {
				rep.Rows = append(rep.Rows, r.(core.Figure1Row))
			}
			return rep, nil
		}).NoShardTestbed().WirePoint(core.Figure1Row{}).PointDeps())
	return counts
}

// Cross-job point reuse: a job resubmitted with different-but-
// irrelevant options is served every point from the content-addressed
// store (cache hits > 0, flagged Cached), byte-identical to a fresh
// single-kernel run.
func TestCrossJobPointReuseServesOverlappingGrids(t *testing.T) {
	registerCountingSweep("dist-test-reuse", 6, 0)
	tc := newCluster(t, Config{LocalShards: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	first, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-reuse", Opts: WireOptions{Frames: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != JobDone || first.PointHits != 0 {
		t.Fatalf("first run: %s, %d hits", first.Status, first.PointHits)
	}
	// Different Frames — irrelevant to the points (PointDeps()) — so the
	// grids overlap completely.
	second, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-reuse", Opts: WireOptions{Frames: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if second.PointHits != 6 || !second.Cached {
		t.Errorf("second run: %d point hits (cached=%v), want all 6 from the store",
			second.PointHits, second.Cached)
	}
	if !bytes.Equal(first.Report, second.Report) {
		t.Errorf("store-served report differs:\n%s\nvs\n%s", second.Report, first.Report)
	}
	wantJSON, _ := localReport(t, "dist-test-reuse", WireOptions{Frames: 2}.Options())
	if !bytes.Equal(second.Report, wantJSON) {
		t.Errorf("store-served report differs from single-kernel run:\n%s\nvs\n%s", second.Report, wantJSON)
	}
	st, err := tc.cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoreHits == 0 || st.StorePoints == 0 {
		t.Errorf("status does not reflect the store: %+v", st)
	}
}

// Partial overlap: with a store too small to hold the whole grid, a
// resubmission hits the resident points, re-runs only the evicted ones,
// and still merges byte-identically.
func TestPointStorePartialOverlapAfterEviction(t *testing.T) {
	registerCountingSweep("dist-test-evict", 8, 0)
	tc := newCluster(t, Config{LocalShards: 2, CacheSize: 5})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	first, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-evict"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-evict"})
	if err != nil {
		t.Fatal(err)
	}
	if second.PointHits == 0 || second.PointHits >= 8 {
		t.Errorf("second run hit %d points, want a partial overlap (store capacity 5 < grid 8)",
			second.PointHits)
	}
	if second.Cached {
		t.Error("partially served job flagged fully cached")
	}
	if !bytes.Equal(first.Report, second.Report) {
		t.Errorf("partially store-served report differs:\n%s\nvs\n%s", second.Report, first.Report)
	}
}

// The acceptance bar of the unified execution plane: a NON-sweep
// scenario executes on remote workers — as a one-point plan through the
// same lease queue — and its report is byte-identical to the local
// single-process run.
func TestNonSweepScenarioExecutesOnWorkers(t *testing.T) {
	tc := newCluster(t, Config{LocalShards: -1}) // pure remote: the point must cross the wire
	tc.startWorker(t, NewWorker(""))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := tc.cl.Run(ctx, JobRequest{Scenario: "table1-model"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != JobDone {
		t.Fatalf("non-sweep job over workers: %s (%s)", st.Status, st.Error)
	}
	if st.Workers != 1 {
		t.Errorf("workers = %d, want the remote worker to have run the point (timings %+v)",
			st.Workers, st.Shards)
	}
	wantJSON, wantText := localReport(t, "table1-model", WireOptions{}.Options())
	if !bytes.Equal(st.Report, wantJSON) {
		t.Errorf("remote non-sweep report differs from local run:\n%s\nvs\n%s", st.Report, wantJSON)
	}
	if st.Text != wantText {
		t.Errorf("remote non-sweep text differs from local run")
	}
	// The wrapped point is stored too: a resubmission is served without
	// any worker involvement.
	again, err := tc.cl.Run(ctx, JobRequest{Scenario: "table1-model"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.PointHits != 1 {
		t.Errorf("resubmitted non-sweep job not served from the point store: %+v", again)
	}
	if !bytes.Equal(again.Report, wantJSON) {
		t.Error("store-served non-sweep report differs")
	}
}

// Fault injection for the streaming protocol, driven through the real
// Worker: a worker that streams part of its lease and then dies loses
// only its unstreamed tail — the streamed points are never re-run
// anywhere, every grid point is evaluated exactly once, and the merged
// report stays byte-identical to the single-kernel run.
func TestWorkerDeathAfterStreamingReRunsOnlyTail(t *testing.T) {
	counts := registerCountingSweep("dist-test-stream-kill", 12, 20*time.Millisecond)
	tc := newCluster(t, Config{LocalShards: -1, LeaseTTL: 250 * time.Millisecond})

	var streamedLo, streamedN atomic.Int64
	var died atomic.Bool
	victim := NewWorker("")
	victim.DropAfterPoints = func(l LeaseReply, streamed int) bool {
		// Die once, after streaming two points of a multi-point lease;
		// afterwards the worker serves normally (a restart).
		if streamed >= 2 && l.Hi-l.Lo > 2 && died.CompareAndSwap(false, true) {
			streamedLo.Store(int64(l.Lo))
			streamedN.Store(int64(streamed))
			return true
		}
		return false
	}
	tc.startWorker(t, victim)
	tc.startWorker(t, NewWorker(""))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-stream-kill"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != JobDone {
		t.Fatalf("job did not survive the mid-stream death: %s (%s)", st.Status, st.Error)
	}
	if !died.Load() {
		t.Fatal("fault was never injected; test proved nothing")
	}
	lo, n := int(streamedLo.Load()), int(streamedN.Load())
	for i := 0; i < 12; i++ {
		got := counts(i)
		if got != 1 {
			t.Errorf("point %d evaluated %d times, want exactly once "+
				"(victim streamed [%d,%d) before dying)", i, got, lo, lo+n)
		}
	}
	wantJSON, wantText := localReport(t, "dist-test-stream-kill", WireOptions{}.Options())
	if !bytes.Equal(st.Report, wantJSON) {
		t.Errorf("report after mid-stream death differs:\n%s\nvs\n%s", st.Report, wantJSON)
	}
	if st.Text != wantText {
		t.Errorf("text after mid-stream death differs")
	}
}

// The same fault driven at the protocol level, deterministically: a
// hand-pumped worker streams a prefix of its lease, never completes it,
// and the re-leases after expiry must exclude exactly the streamed
// points. Partial progress is visible in the job status while the dead
// lease is still pending.
func TestExpiredStreamedLeaseReLeasesOnlyUnstreamedPoints(t *testing.T) {
	registerCountingSweep("dist-test-stream-expire", 12, 0)
	s, _ := core.Lookup("dist-test-stream-expire")
	sw := s.(*core.Sweep)
	tc := newCluster(t, Config{LocalShards: -1, LeaseTTL: 300 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st, err := tc.cl.Submit(ctx, JobRequest{Scenario: "dist-test-stream-expire"})
	if err != nil {
		t.Fatal(err)
	}
	// Pull the first lease and stream its first three points without
	// ever completing it.
	var lease LeaseReply
	deadline := time.Now().Add(10 * time.Second)
	for {
		if postJSONT(t, tc, "/v1/workers/lease", LeaseRequest{WorkerID: "victim"}, &lease) == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease became available")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lease.Hi-lease.Lo < 4 {
		t.Fatalf("first lease [%d,%d) too small to stream a strict prefix", lease.Lo, lease.Hi)
	}
	streamed := []int{lease.Lo, lease.Lo + 1, lease.Lo + 2}
	vals, errStrs, err := sw.RunLease(context.Background(), lease.Opts.Options(), lease.Lo, lease.Lo+3)
	if err != nil {
		t.Fatal(err)
	}
	up := PointsUpload{WorkerID: "victim", JobID: lease.JobID, Seq: lease.Seq}
	for k := range vals {
		b, err := sw.EncodePoint(vals[k])
		if err != nil {
			t.Fatal(err)
		}
		up.Points = append(up.Points, PointResult{Index: lease.Lo + k, Value: b, Error: errStrs[k]})
	}
	var preply PointsReply
	postJSONT(t, tc, "/v1/workers/points", up, &preply)
	if !preply.OK {
		t.Fatal("stream upload for a held lease rejected")
	}
	// Partial progress is visible while the lease is still held.
	mid, err := tc.cl.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.PointsDone != 3 || mid.PointsTotal != 12 {
		t.Errorf("mid-lease progress %d/%d, want 3/12", mid.PointsDone, mid.PointsTotal)
	}
	// Let the lease expire, then drain the rest as a healthy worker;
	// no re-lease may contain a streamed point.
	for time.Now().Before(deadline) {
		var nl LeaseReply
		code := postJSONT(t, tc, "/v1/workers/lease", LeaseRequest{WorkerID: "rescuer"}, &nl)
		if code == http.StatusNoContent {
			// Drained — or the expiry has not happened yet.
			if done, err := tc.cl.Job(ctx, st.ID); err == nil && done.Status == JobDone {
				break
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		for _, idx := range streamed {
			if idx >= nl.Lo && idx < nl.Hi {
				t.Fatalf("re-lease [%d,%d) includes streamed point %d", nl.Lo, nl.Hi, idx)
			}
		}
		rvals, rerrs, err := sw.RunLease(context.Background(), nl.Opts.Options(), nl.Lo, nl.Hi)
		if err != nil {
			t.Fatal(err)
		}
		rup := ResultUpload{WorkerID: "rescuer", JobID: nl.JobID, Seq: nl.Seq, Lo: nl.Lo, Hi: nl.Hi,
			ElapsedNS: int64(time.Millisecond)}
		for k := range rvals {
			b, err := sw.EncodePoint(rvals[k])
			if err != nil {
				t.Fatal(err)
			}
			rup.Points = append(rup.Points, PointResult{Index: nl.Lo + k, Value: b, Error: rerrs[k]})
		}
		var rreply ResultReply
		postJSONT(t, tc, "/v1/workers/result", rup, &rreply)
	}
	final, err := tc.cl.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobDone {
		t.Fatalf("job after streamed-lease expiry: %s (%s)", final.Status, final.Error)
	}
	wantJSON, _ := localReport(t, "dist-test-stream-expire", WireOptions{}.Options())
	if !bytes.Equal(final.Report, wantJSON) {
		t.Errorf("report after streamed-lease expiry differs:\n%s\nvs\n%s", final.Report, wantJSON)
	}
}

// The worker's testbed LRU: leases reuse one testbed per Config across
// jobs, NoShardTestbed sweeps get none, and a scenario-registry change
// (epoch bump) invalidates cached instances.
func TestWorkerTestbedCacheReuse(t *testing.T) {
	w := &Worker{}
	needs := core.NewSweep("tbcache-needs", "",
		[]core.Axis{{Name: "i", Values: []any{1}}},
		func(ctx context.Context, tb *core.Testbed, opts core.Options, pt core.Point) (any, error) {
			return nil, nil
		}, nil)
	none := core.NewSweep("tbcache-none", "", nil, nil, nil).NoShardTestbed()

	opts := core.Options{}
	tb1 := w.leaseTestbed(needs, opts)
	if tb1 == nil {
		t.Fatal("no testbed for a sweep that needs one")
	}
	if tb2 := w.leaseTestbed(needs, opts); tb2 != tb1 {
		t.Error("back-to-back lease with the same Config rebuilt the testbed")
	}
	if tb3 := w.leaseTestbed(needs, core.Options{WAN: atm.OC12}); tb3 == tb1 {
		t.Error("a different Config was handed the cached testbed")
	}
	if tb := w.leaseTestbed(none, opts); tb != nil {
		t.Error("NoShardTestbed sweep was handed a testbed")
	}

	// Registering a scenario bumps the epoch: the cached instance may
	// not have seen the new scenario's shared state, so it is stale.
	if err := core.Register(core.NewScenario("tbcache-epoch-bump", "",
		func(ctx context.Context, tb *core.Testbed, opts core.Options) (core.Report, error) {
			return nil, nil
		})); err != nil {
		t.Fatal(err)
	}
	if tb4 := w.leaseTestbed(needs, opts); tb4 == tb1 {
		t.Error("epoch bump did not invalidate the cached testbed")
	}
}

// The testbed LRU evicts the least-recently-used Config beyond
// TestbedCacheSize, and touching an entry refreshes its recency.
func TestWorkerTestbedCacheEviction(t *testing.T) {
	w := &Worker{TestbedCacheSize: 2}
	needs := core.NewSweep("tbcache-evict", "",
		[]core.Axis{{Name: "i", Values: []any{1}}},
		func(ctx context.Context, tb *core.Testbed, opts core.Options, pt core.Point) (any, error) {
			return nil, nil
		}, nil)

	oc3 := core.Options{WAN: atm.OC3}
	oc12 := core.Options{WAN: atm.OC12}
	oc48 := core.Options{WAN: atm.OC48}

	tbOC3 := w.leaseTestbed(needs, oc3)
	tbOC12 := w.leaseTestbed(needs, oc12)
	w.leaseTestbed(needs, oc3) // refresh OC3: OC12 is now the LRU entry

	if tb := w.leaseTestbed(needs, oc48); tb == nil { // evicts OC12
		t.Fatal("no testbed for the third Config")
	}
	if got := w.leaseTestbed(needs, oc3); got != tbOC3 {
		t.Error("recently touched entry was evicted")
	}
	if got := w.leaseTestbed(needs, oc12); got == tbOC12 {
		t.Error("LRU entry survived eviction")
	}
	if n := len(w.tbCache); n != 2 {
		t.Errorf("cache holds %d entries, want 2", n)
	}
}
