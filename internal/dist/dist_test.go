package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// registerWireSweep registers a fast, deterministic, distributable
// sweep: `points` grid points, each sleeping `delay` of wall time (to
// force leases to spread across workers) and producing a value derived
// from its index. Names must be unique per test; the process-global
// registry keeps them for the test binary's lifetime (re-registration
// under -count>1 is tolerated: the sweep body is deterministic, so the
// first registration serves every repeat).
func registerWireSweep(name string, points int, delay time.Duration) {
	if _, ok := core.Lookup(name); ok {
		return
	}
	vals := make([]any, points)
	for i := range vals {
		vals[i] = i
	}
	core.MustRegister(core.NewSweep(name, "dist test sweep",
		[]core.Axis{{Name: "i", Values: vals}},
		func(ctx context.Context, tb *core.Testbed, opts core.Options, pt core.Point) (any, error) {
			if delay > 0 {
				time.Sleep(delay)
			}
			i := pt.Coord(0).(int)
			return core.Figure1Row{
				Path: fmt.Sprintf("point %d", i),
				Mbps: float64(i*i) + 0.25,
				Note: fmt.Sprintf("frames=%d", opts.Frames),
			}, nil
		},
		func(opts core.Options, results []any) (core.Report, error) {
			rep := &core.Figure1Report{}
			for _, r := range results {
				rep.Rows = append(rep.Rows, r.(core.Figure1Row))
			}
			return rep, nil
		}).NoShardTestbed().WirePoint(core.Figure1Row{}))
}

// testCluster is a loopback coordinator + HTTP server.
type testCluster struct {
	c   *Coordinator
	srv *httptest.Server
	cl  *Client
}

func newCluster(t *testing.T, cfg Config) *testCluster {
	t.Helper()
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 500 * time.Millisecond
	}
	if cfg.Poll == 0 {
		cfg.Poll = 10 * time.Millisecond
	}
	cfg.Logf = t.Logf
	c := New(cfg)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	return &testCluster{
		c: c, srv: srv,
		cl: &Client{Base: srv.URL, Poll: 10 * time.Millisecond},
	}
}

// startWorker runs w until the test ends.
func (tc *testCluster) startWorker(t *testing.T, w *Worker) {
	t.Helper()
	w.Coordinator = tc.srv.URL
	w.Logf = t.Logf
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// localReport runs the sweep in-process on a single kernel and returns
// its report bytes and text — the byte-identity reference.
func localReport(t *testing.T, name string, o core.Options) ([]byte, string) {
	t.Helper()
	o.Shards = 1
	rep, err := core.RunWith(context.Background(), name, o)
	if err != nil {
		t.Fatalf("local run of %s: %v", name, err)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b, rep.Text()
}

// The acceptance bar of the distributed subsystem: a sweep run through
// a coordinator and two remote workers over loopback HTTP produces a
// report byte-identical to the single-kernel run, with both workers
// participating.
func TestDistributedSweepByteIdenticalWithTwoWorkers(t *testing.T) {
	registerWireSweep("dist-test-identical", 16, 30*time.Millisecond)
	tc := newCluster(t, Config{LocalShards: -1}) // pure remote: every point through a worker
	tc.startWorker(t, NewWorker(""))
	tc.startWorker(t, NewWorker(""))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	opts := WireOptions{Frames: 7}
	st, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-identical", Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != JobDone {
		t.Fatalf("job %s: %s (%s)", st.ID, st.Status, st.Error)
	}
	wantJSON, wantText := localReport(t, "dist-test-identical", opts.Options())
	if !bytes.Equal(st.Report, wantJSON) {
		t.Errorf("distributed report differs from single-kernel run:\n%s\nvs\n%s", st.Report, wantJSON)
	}
	if st.Text != wantText {
		t.Errorf("distributed text differs:\n%s\nvs\n%s", st.Text, wantText)
	}
	if st.Workers < 2 {
		t.Errorf("only %d worker(s) participated, want both (timings: %+v)", st.Workers, st.Shards)
	}
	for _, sh := range st.Shards {
		if sh.Worker == "" {
			t.Errorf("timing without a worker identity: %+v", sh)
		}
	}
}

// A real paper scenario over the wire: figure1-throughput distributed
// across workers must match the local single-kernel run byte for byte
// (the simulation is deterministic and start-time invariant, so where a
// point runs cannot change its value).
func TestFigure1ThroughputDistributedMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("figure1 probes are slow for -short")
	}
	tc := newCluster(t, Config{LocalShards: 1}) // mixed: local shard + remote workers steal from one queue
	tc.startWorker(t, NewWorker(""))
	tc.startWorker(t, NewWorker(""))

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := tc.cl.Run(ctx, JobRequest{Scenario: "figure1-throughput"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != JobDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	wantJSON, wantText := localReport(t, "figure1-throughput", WireOptions{}.Options())
	if !bytes.Equal(st.Report, wantJSON) {
		t.Errorf("distributed figure1 report differs:\n%s\nvs\n%s", st.Report, wantJSON)
	}
	if st.Text != wantText {
		t.Errorf("distributed figure1 text differs")
	}
}

// Fault injection: a worker killed mid-lease (takes the lease, never
// heartbeats, never uploads) must not lose points — the lease expires
// and the points re-run elsewhere, and the merged report stays
// byte-identical to the single-kernel run.
func TestWorkerKilledMidLeaseReRunsElsewhere(t *testing.T) {
	registerWireSweep("dist-test-kill", 12, 20*time.Millisecond)
	tc := newCluster(t, Config{LocalShards: -1, LeaseTTL: 200 * time.Millisecond})

	var dropped atomic.Int32
	victim := NewWorker("")
	victim.DropLease = func(l LeaseReply) bool {
		// Die on the first lease only; afterwards the worker serves
		// normally (a restarted worker with the same sticky ID).
		return dropped.CompareAndSwap(0, 1)
	}
	tc.startWorker(t, victim)
	tc.startWorker(t, NewWorker(""))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-kill"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != JobDone {
		t.Fatalf("job did not survive the killed worker: %s (%s)", st.Status, st.Error)
	}
	if dropped.Load() == 0 {
		t.Fatal("fault was never injected; test proved nothing")
	}
	wantJSON, wantText := localReport(t, "dist-test-kill", WireOptions{}.Options())
	if !bytes.Equal(st.Report, wantJSON) {
		t.Errorf("report after lease expiry differs from single-kernel run:\n%s\nvs\n%s", st.Report, wantJSON)
	}
	if st.Text != wantText {
		t.Errorf("text after lease expiry differs")
	}
}

// leasePump manually drives the worker protocol over HTTP: pull leases,
// evaluate, upload — returning every upload it made so tests can replay
// them.
func leasePump(t *testing.T, tc *testCluster, sw *core.Sweep, workerID string) []ResultUpload {
	t.Helper()
	var uploads []ResultUpload
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var lease LeaseReply
		code := postJSONT(t, tc, "/v1/workers/lease", LeaseRequest{WorkerID: workerID}, &lease)
		if code == http.StatusNoContent {
			return uploads
		}
		vals, errStrs, err := sw.RunLease(context.Background(), lease.Opts.Options(), lease.Lo, lease.Hi)
		if err != nil {
			t.Fatal(err)
		}
		up := ResultUpload{WorkerID: workerID, JobID: lease.JobID, Seq: lease.Seq, Lo: lease.Lo, Hi: lease.Hi,
			ElapsedNS: int64(time.Millisecond)}
		for k := range vals {
			b, err := sw.EncodePoint(vals[k])
			if err != nil {
				t.Fatal(err)
			}
			up.Points = append(up.Points, PointResult{Index: lease.Lo + k, Value: b, Error: errStrs[k]})
		}
		var reply ResultReply
		postJSONT(t, tc, "/v1/workers/result", up, &reply)
		if !reply.Accepted {
			t.Fatalf("first upload of lease %d not accepted: %+v", lease.Seq, reply)
		}
		uploads = append(uploads, up)
	}
	t.Fatal("lease pump never drained the queue")
	return nil
}

func postJSONT(t *testing.T, tc *testCluster, path string, in, out any) int {
	t.Helper()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tc.srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// Idempotency: re-uploading an already-completed lease must be
// acknowledged as a duplicate and change nothing — the job's report
// stays byte-identical to the single-kernel run.
func TestDuplicateResultUploadIgnored(t *testing.T) {
	registerWireSweep("dist-test-dup", 6, 0)
	s, _ := core.Lookup("dist-test-dup")
	sw := s.(*core.Sweep)
	tc := newCluster(t, Config{LocalShards: -1})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := tc.cl.Submit(ctx, JobRequest{Scenario: "dist-test-dup"})
	if err != nil {
		t.Fatal(err)
	}
	// Drain the grid by hand, then replay every upload verbatim.
	uploads := leasePump(t, tc, sw, "pump-worker")
	if len(uploads) == 0 {
		t.Fatal("pump made no uploads")
	}
	for _, up := range uploads {
		var reply ResultReply
		postJSONT(t, tc, "/v1/workers/result", up, &reply)
		if reply.Accepted || !reply.Duplicate {
			t.Errorf("replayed upload of lease %d: accepted=%v duplicate=%v, want rejected duplicate",
				up.Seq, reply.Accepted, reply.Duplicate)
		}
	}
	final, err := tc.cl.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobDone {
		t.Fatalf("job: %s (%s)", final.Status, final.Error)
	}
	wantJSON, _ := localReport(t, "dist-test-dup", WireOptions{}.Options())
	if !bytes.Equal(final.Report, wantJSON) {
		t.Errorf("report after duplicate uploads differs:\n%s\nvs\n%s", final.Report, wantJSON)
	}
}

// The content-addressed point store: an identical second submission is
// served without re-running the simulation (every point hits; only the
// merge recomputes), byte-identical, flagged Cached.
func TestPointStoreServesRepeatJobs(t *testing.T) {
	registerWireSweep("dist-test-cache", 4, 0)
	tc := newCluster(t, Config{LocalShards: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	first, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-cache", Opts: WireOptions{Frames: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != JobDone || first.Cached {
		t.Fatalf("first run: status %s cached %v", first.Status, first.Cached)
	}
	second, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-cache", Opts: WireOptions{Frames: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("identical resubmission was not served from the cache")
	}
	if !bytes.Equal(first.Report, second.Report) {
		t.Error("cached report differs from the original")
	}
	// Different options miss the cache.
	third, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-cache", Opts: WireOptions{Frames: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Error("different options served a stale cached result")
	}
}

// Concurrent identical submissions share one in-flight job instead of
// running the simulation twice.
func TestConcurrentIdenticalSubmissionsShareOneJob(t *testing.T) {
	registerWireSweep("dist-test-share", 8, 20*time.Millisecond)
	tc := newCluster(t, Config{LocalShards: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const clients = 6
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := tc.cl.Submit(ctx, JobRequest{Scenario: "dist-test-share"})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	distinct := map[string]bool{}
	for _, id := range ids {
		if id != "" {
			distinct[id] = true
		}
	}
	if len(distinct) != 1 {
		t.Errorf("%d identical submissions produced %d jobs (%v), want 1", clients, len(distinct), ids)
	}
	for id := range distinct {
		if st, err := tc.cl.Wait(ctx, id); err != nil || st.Status != JobDone {
			t.Errorf("shared job: %v / %+v", err, st)
		}
	}
}

// Finished jobs are pruned past the retention bound, so a long-running
// coordinator's memory does not grow with every submission (cache hits
// synthesize jobs too); in-flight jobs are never pruned.
func TestFinishedJobsPrunedPastRetention(t *testing.T) {
	registerWireSweep("dist-test-prune", 2, 0)
	cfg := Config{LocalShards: 1, RetainJobs: 2}
	tc := newCluster(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var ids []string
	for frames := 1; frames <= 4; frames++ {
		st, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-prune", Opts: WireOptions{Frames: frames}})
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != JobDone {
			t.Fatalf("job %d: %s (%s)", frames, st.Status, st.Error)
		}
		ids = append(ids, st.ID)
	}
	// Newest finished jobs stay pollable; the oldest are gone.
	if _, err := tc.cl.Job(ctx, ids[len(ids)-1]); err != nil {
		t.Errorf("newest finished job pruned: %v", err)
	}
	if _, err := tc.cl.Job(ctx, ids[0]); err == nil {
		t.Errorf("oldest finished job still pollable past RetainJobs=2 (%d submissions)", len(ids))
	}
}

// A non-sweep scenario submitted to a workerless coordinator runs as a
// one-point plan on the local shard and still comes back with report +
// text (the remote-worker path is TestNonSweepScenarioExecutesOnWorkers).
func TestNonSweepScenarioRunsOnCoordinator(t *testing.T) {
	tc := newCluster(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := tc.cl.Run(ctx, JobRequest{Scenario: "table1-model"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != JobDone || len(st.Report) == 0 || st.Text == "" {
		t.Fatalf("table1-model over the wire: %+v", st)
	}
}

// Submitting an unregistered scenario fails fast with 404.
func TestUnknownScenarioRejected(t *testing.T) {
	tc := newCluster(t, Config{})
	_, err := tc.cl.Submit(context.Background(), JobRequest{Scenario: "no-such-scenario"})
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// The status endpoint reports registered workers (the CI smoke job uses
// it as its readiness gate).
func TestStatusReportsWorkers(t *testing.T) {
	tc := newCluster(t, Config{})
	tc.startWorker(t, NewWorker(""))
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := tc.cl.Status(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Workers) == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never appeared in status: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ExecKernels is the observability path's fuel: a coordinator
// configured to run its local shards partitioned must (a) keep reports
// byte-identical — Kernels is execution policy and never reaches point
// keys or worker leases — and (b) move the gtw_pdes_* rows of
// /v1/metrics, which stay zero on a serial coordinator.
func TestExecKernelsLocalShardsFeedPDESMetrics(t *testing.T) {
	tc := newCluster(t, Config{LocalShards: 2, ExecKernels: 2})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := tc.cl.Run(ctx, JobRequest{Scenario: "figure1-throughput"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != JobDone {
		t.Fatalf("job %s: %s (%s)", st.ID, st.Status, st.Error)
	}
	wantJSON, wantText := localReport(t, "figure1-throughput", core.Options{})
	if !bytes.Equal(st.Report, wantJSON) {
		t.Errorf("ExecKernels report differs from serial run:\n%s\nvs\n%s", st.Report, wantJSON)
	}
	if st.Text != wantText {
		t.Errorf("ExecKernels text differs:\n%s\nvs\n%s", st.Text, wantText)
	}

	m := tc.scrapeMetrics(t, "")
	if m["gtw_pdes_rounds_total"] <= 0 {
		t.Errorf("gtw_pdes_rounds_total = %v after a partitioned local run, want > 0", m["gtw_pdes_rounds_total"])
	}
	if m["gtw_pdes_null_messages_total"] <= 0 {
		t.Errorf("gtw_pdes_null_messages_total = %v, want > 0", m["gtw_pdes_null_messages_total"])
	}
	// The standard testbed splits into 2 kernels; both must have fired.
	for _, k := range []string{"0", "1"} {
		if v := m[`gtw_pdes_kernel_events_total{kernel="`+k+`"}`]; v <= 0 {
			t.Errorf("kernel %s fired %v events in the aggregate, want > 0", k, v)
		}
	}
}
