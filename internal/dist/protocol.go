// Package dist is the distributed run service: a coordinator that fans
// any scenario's execution plan out to remote workers over a small
// JSON-over-HTTP protocol, and the worker that executes leased grid
// points on a fresh simulation kernel. The grid point is the universal
// unit of work: parameter sweeps lease their grids, and every other
// scenario travels as a one-point sweep through the same plan
// abstraction (core.PlanFor), so one-shot coupled applications and
// metacomputing sweeps share the queue, the workers and the cache —
// as the paper's applications shared one testbed.
//
// The shape follows the WANify/MPWide pattern from PAPERS.md: a thin
// coordinator owns the work queue and hands out lease-based work units;
// workers with sticky IDs pull leases, heartbeat while computing,
// stream each point's result as it finishes, and complete the lease
// with an idempotent final upload. The lease queue is the same
// work-stealing core.Dispatcher that feeds in-process shards, so the
// coordinator's local shards and any number of remote workers steal
// from one queue, per-worker throughput EWMAs steering larger leases to
// faster workers. Results merge in grid order, so a distributed run's
// report is byte-identical to a single-kernel run.
//
// Finished points land in a content-addressed result store keyed by
// core.Sweep.PointKey (scenario + grid coordinates + the option fields
// the point depends on): a later job whose grid overlaps — resubmitted,
// or differing only in options the points never read — is served the
// stored wire bytes instead of re-simulating, and a job that fails
// still leaves its completed points behind.
//
// Protocol (all bodies JSON unless noted):
//
//	POST /v1/jobs                submit a scenario run  -> JobStatus
//	GET  /v1/jobs/{id}           poll a job             -> JobStatus
//	GET  /v1/status              coordinator snapshot   -> StatusReply
//	GET  /v1/metrics             Prometheus text exposition
//	GET  /v1/events              SSE stream of Event frames
//	GET  /healthz                liveness               -> "ok"
//	POST /v1/workers/register    announce a worker      -> RegisterReply
//	POST /v1/workers/lease       pull a work unit       -> LeaseReply | 204
//	POST /v1/workers/heartbeat   extend a held lease    -> HeartbeatReply
//	POST /v1/workers/points      stream finished points -> PointsReply
//	POST /v1/workers/result      complete a lease       -> ResultReply
//
// A lease not heartbeaten within its TTL is requeued — but points the
// worker already streamed are kept, so a worker dying late in a lease
// costs only its unfinished tail. A result upload for a lease that
// already completed (duplicate, or expired-and-reassigned) is
// acknowledged but ignored.
//
// Multi-tenancy: a coordinator configured with a tenant registry (gtwd
// -tenants) requires "Authorization: Bearer <token>" on every endpoint
// except /healthz, attributes usage to the authenticated tenant, and
// arbitrates the lease queue across tenants by weighted fair share
// (internal/tenant). Without a registry every request is served as the
// anonymous default tenant — the pre-tenancy behavior. Tenancy is
// execution metadata only: it never reaches point keys or report
// bytes, so the point store dedupes across tenants and reports stay
// byte-identical regardless of submitter.
package dist

import (
	"encoding/json"

	"repro/internal/atm"
	"repro/internal/core"
)

// WireOptions is the cross-machine subset of core.Options: the fields
// that parameterize a scenario, without the process-local ones
// (Testbed, Workers, Shards, Dispatcher). It is also the result-cache
// key, because these are exactly the fields that can change report
// bytes.
type WireOptions struct {
	WAN        int  `json:"wan,omitempty"`
	Extensions bool `json:"extensions,omitempty"`
	PEs        int  `json:"pes,omitempty"`
	Frames     int  `json:"frames,omitempty"`
	Flows      int  `json:"flows,omitempty"`
}

// FromOptions extracts the wire fields from a full core.Options.
func FromOptions(o core.Options) WireOptions {
	return WireOptions{
		WAN: int(o.WAN), Extensions: o.Extensions,
		PEs: o.PEs, Frames: o.Frames, Flows: o.Flows,
	}
}

// Options rebuilds a core.Options. Fields map verbatim — the client
// sends fully resolved values (it applied its own defaults), so the
// coordinator and workers evaluate exactly what a local run would.
func (w WireOptions) Options() core.Options {
	return core.Options{
		WAN: atm.OC(w.WAN), Extensions: w.Extensions,
		PEs: w.PEs, Frames: w.Frames, Flows: w.Flows,
	}
}

// JobRequest submits one scenario run.
type JobRequest struct {
	Scenario string      `json:"scenario"`
	Opts     WireOptions `json:"opts"`
}

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the coordinator's view of a job, returned on submit and
// on every poll.
type JobStatus struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	Status   string `json:"status"`
	Error    string `json:"error,omitempty"`
	// Report is the scenario report's JSON (byte-identical to a local
	// run's Report.JSON()); Text its rendered table.
	Report json.RawMessage `json:"report,omitempty"`
	Text   string          `json:"text,omitempty"`
	// Workers counts the distinct participants (local shards + remote
	// workers) that evaluated at least one point.
	Workers int `json:"workers,omitempty"`
	// Shards carries the per-participant timings.
	Shards    []core.ShardTiming `json:"shards,omitempty"`
	ElapsedMS int64              `json:"elapsed_ms"`
	// PointsDone/PointsTotal surface execution progress: grid points
	// with a recorded result (streamed mid-lease, completed, or served
	// from the store) out of the plan's grid. A failed job reports how
	// far it got.
	PointsDone  int `json:"points_done,omitempty"`
	PointsTotal int `json:"points_total,omitempty"`
	// PointHits counts grid points served from the content-addressed
	// point store instead of being re-simulated.
	PointHits int `json:"point_hits,omitempty"`
	// Cached reports a job served entirely from the point store (every
	// grid point was a hit; only the merge ran).
	Cached bool `json:"cached,omitempty"`
	// Tenant and Class attribute the job to its submitter (execution
	// metadata only — never part of point keys or report bytes).
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`
}

// RegisterRequest announces a worker. Worker IDs are sticky: the same
// ID across reconnects keeps the worker's identity (and its throughput
// EWMA) on the coordinator.
type RegisterRequest struct {
	WorkerID string `json:"worker_id"`
}

// RegisterReply tunes the worker's loop.
type RegisterReply struct {
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	PollMS     int64 `json:"poll_ms"`
}

// LeaseRequest pulls the next work unit for a worker.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// LeaseReply is one leased work unit: grid points [Lo, Hi) of the named
// sweep scenario. The worker must heartbeat within TTL or the lease is
// requeued.
type LeaseReply struct {
	JobID    string      `json:"job_id"`
	Scenario string      `json:"scenario"`
	Seq      uint64      `json:"seq"`
	Lo       int         `json:"lo"`
	Hi       int         `json:"hi"`
	Opts     WireOptions `json:"opts"`
	TTLMS    int64       `json:"ttl_ms"`
}

// HeartbeatRequest extends a held lease.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	JobID    string `json:"job_id"`
	Seq      uint64 `json:"seq"`
}

// HeartbeatReply acknowledges a heartbeat. OK=false means the lease is
// gone (expired and reassigned, or the job ended): the worker should
// abandon the work unit.
type HeartbeatReply struct {
	OK bool `json:"ok"`
}

// PointResult is one evaluated grid point on the wire: the sweep's
// wire-typed value as raw JSON, or the error string that evaluation
// produced.
type PointResult struct {
	Index int             `json:"index"`
	Value json.RawMessage `json:"value,omitempty"`
	Error string          `json:"error,omitempty"`
}

// PointsUpload streams finished points of a still-held lease, as each
// point completes — partial progress the coordinator records (and
// caches) immediately, so a worker that dies later in the lease only
// costs its unstreamed tail. Streaming also proves liveness: it extends
// the lease like a heartbeat.
type PointsUpload struct {
	WorkerID string        `json:"worker_id"`
	JobID    string        `json:"job_id"`
	Seq      uint64        `json:"seq"`
	Points   []PointResult `json:"points"`
}

// PointsReply acknowledges a stream upload. OK=false means the lease is
// gone (expired and reassigned, or the job ended): the worker should
// abandon the rest of the lease.
type PointsReply struct {
	OK bool `json:"ok"`
}

// ResultUpload completes a lease: the full per-point results, including
// any points already streamed (re-recording them is idempotent).
type ResultUpload struct {
	WorkerID  string        `json:"worker_id"`
	JobID     string        `json:"job_id"`
	Seq       uint64        `json:"seq"`
	Lo        int           `json:"lo"`
	Hi        int           `json:"hi"`
	ElapsedNS int64         `json:"elapsed_ns"`
	Points    []PointResult `json:"points"`
}

// ResultReply acknowledges an upload. Duplicate=true means the lease
// had already completed (or expired): the upload was ignored, which is
// what makes retried uploads idempotent.
type ResultReply struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// WorkerStatus is one registered worker in the status snapshot.
type WorkerStatus struct {
	ID            string  `json:"id"`
	LastSeenMSAgo int64   `json:"last_seen_ms_ago"`
	Points        int     `json:"points"`
	RatePPS       float64 `json:"rate_pps,omitempty"`
}

// TenantStatus is one tenant's accounting block in the status
// snapshot: scheduling identity plus lifetime usage, including the
// per-tenant store attribution (bytes added, byte-budget rejections).
type TenantStatus struct {
	Name   string  `json:"name"`
	Class  string  `json:"class"`
	Weight float64 `json:"weight"`
	// InFlight is the tenant's currently leased points; MaxInFlight its
	// configured cap (0: unlimited).
	InFlight    int `json:"in_flight"`
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// Usage counters: jobs accepted, points computed fresh, points
	// served from the store, points streamed mid-lease by workers.
	JobsSubmitted  int64 `json:"jobs_submitted"`
	PointsRun      int64 `json:"points_run"`
	PointsHit      int64 `json:"points_hit"`
	PointsStreamed int64 `json:"points_streamed,omitempty"`
	// Store attribution: wire bytes this tenant's fresh points added to
	// the store, and how many of its points the store refused under the
	// per-entry byte cap.
	StoreBytes    int64 `json:"store_bytes,omitempty"`
	StoreRejected int64 `json:"store_rejected,omitempty"`
}

// StatusReply is the coordinator snapshot (GET /v1/status).
type StatusReply struct {
	Workers []WorkerStatus `json:"workers"`
	Jobs    int            `json:"jobs"`
	// The content-addressed point store: resident points, capacity, and
	// lifetime hit/miss counters.
	StorePoints int   `json:"store_points"`
	StoreCap    int   `json:"store_cap"`
	StoreHits   int64 `json:"store_hits"`
	StoreMisses int64 `json:"store_misses"`
	// The store's byte accounting: resident wire bytes, the total byte
	// budget (0: entries-only bound), the per-entry size cap (0: none)
	// and how many oversized results the cap rejected.
	StoreBytes     int64 `json:"store_bytes"`
	StoreBytesCap  int64 `json:"store_bytes_cap,omitempty"`
	StoreEntryCap  int   `json:"store_entry_cap,omitempty"`
	StoreRejected  int64 `json:"store_rejected,omitempty"`
	StoreEvictions int64 `json:"store_evictions,omitempty"`
	// Tenants carries per-tenant accounting — the configured registry,
	// or the single anonymous tenant when auth is disabled.
	Tenants []TenantStatus `json:"tenants,omitempty"`
}

// Event is one frame of the /v1/events SSE stream (the data: payload;
// the SSE event name repeats Type). Subscribers get job transitions,
// coalesced point progress, worker registrations and lease expiries —
// enough to render a live dashboard without polling.
type Event struct {
	Type string `json:"type"` // job | points | worker | lease
	// TimeMS is the coordinator's wall clock at publish, unix ms.
	TimeMS int64 `json:"t"`
	// Job fields (type job, points).
	Job         string `json:"job,omitempty"`
	Scenario    string `json:"scenario,omitempty"`
	Tenant      string `json:"tenant,omitempty"`
	Status      string `json:"status,omitempty"`
	Error       string `json:"error,omitempty"`
	PointsDone  int    `json:"points_done,omitempty"`
	PointsTotal int    `json:"points_total,omitempty"`
	// Worker fields (type worker, lease).
	Worker string `json:"worker,omitempty"`
	// Lease fields (type lease: an expiry — Requeued points went back).
	Requeued int `json:"requeued,omitempty"`
}
