package dist

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
)

// Worker pulls shard leases from a coordinator, evaluates the leased
// grid points on a fresh simulation kernel (a fresh testbed per lease,
// exactly as an in-process shard would), and streams the per-point
// results back. A worker keeps one sticky ID for its lifetime, so the
// coordinator's throughput EWMA and lease accounting survive
// reconnects.
type Worker struct {
	// Coordinator is the coordinator's base URL, e.g.
	// "http://127.0.0.1:9191".
	Coordinator string
	// ID is the sticky worker identity; NewWorker generates one.
	ID string
	// Client is the HTTP client (default: 30s-timeout client).
	Client *http.Client
	// Poll is the idle-poll interval; the coordinator's register reply
	// overrides it.
	Poll time.Duration
	// Logf, when set, receives worker events. Nil discards.
	Logf func(format string, args ...any)

	// DropLease, when set, is consulted before evaluating each lease;
	// returning true makes the worker silently abandon the lease — no
	// evaluation, no heartbeat, no upload — simulating a worker killed
	// mid-lease. Test hook for the fault-injection suite.
	DropLease func(l LeaseReply) bool
	// BeforeUpload, when set, runs after evaluation and before the
	// result upload. Test hook (e.g. to double-upload for idempotency
	// tests).
	BeforeUpload func(up *ResultUpload)

	ttl time.Duration
}

// NewWorker builds a worker with a random sticky ID.
func NewWorker(coordinator string) *Worker {
	b := make([]byte, 4)
	_, _ = rand.Read(b)
	return &Worker{
		Coordinator: coordinator,
		ID:          "w-" + hex.EncodeToString(b),
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return defaultHTTPClient
}

// postJSON posts in and decodes the reply into out (when non-nil and
// the status is 200). Returns the HTTP status code.
func (w *Worker) postJSON(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	if resp.StatusCode >= 400 {
		return resp.StatusCode, fmt.Errorf("dist: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return resp.StatusCode, nil
}

// Run registers with the coordinator and serves leases until ctx is
// cancelled. Transient coordinator errors are retried with the poll
// interval as backoff.
func (w *Worker) Run(ctx context.Context) error {
	if w.Poll <= 0 {
		w.Poll = 200 * time.Millisecond
	}
	for {
		var reg RegisterReply
		_, err := w.postJSON(ctx, "/v1/workers/register", RegisterRequest{WorkerID: w.ID}, &reg)
		if err == nil {
			if reg.PollMS > 0 {
				w.Poll = time.Duration(reg.PollMS) * time.Millisecond
			}
			w.ttl = time.Duration(reg.LeaseTTLMS) * time.Millisecond
			break
		}
		w.logf("dist: worker %s: register: %v (retrying)", w.ID, err)
		if !sleepCtx(ctx, w.Poll) {
			return ctx.Err()
		}
	}
	w.logf("dist: worker %s serving %s (poll %s, lease ttl %s)", w.ID, w.Coordinator, w.Poll, w.ttl)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var lease LeaseReply
		code, err := w.postJSON(ctx, "/v1/workers/lease", LeaseRequest{WorkerID: w.ID}, &lease)
		switch {
		case err != nil:
			w.logf("dist: worker %s: lease poll: %v", w.ID, err)
			fallthrough
		case code == http.StatusNoContent:
			if !sleepCtx(ctx, w.Poll) {
				return ctx.Err()
			}
			continue
		}
		if w.DropLease != nil && w.DropLease(lease) {
			w.logf("dist: worker %s dropping lease %s/%d (fault injection)", w.ID, lease.JobID, lease.Seq)
			continue
		}
		w.serveLease(ctx, lease)
	}
}

// sleepCtx sleeps d or until ctx is done; false means ctx ended.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// serveLease evaluates one lease and uploads its results.
func (w *Worker) serveLease(ctx context.Context, lease LeaseReply) {
	s, ok := core.Lookup(lease.Scenario)
	var sw *core.Sweep
	if ok {
		sw, ok = s.(*core.Sweep)
	}
	up := ResultUpload{
		WorkerID: w.ID, JobID: lease.JobID, Seq: lease.Seq,
		Lo: lease.Lo, Hi: lease.Hi,
	}
	if !ok {
		// A coordinator from a newer build may know sweeps this worker
		// does not; report per-point errors so the job fails loudly
		// rather than hanging.
		for i := lease.Lo; i < lease.Hi; i++ {
			up.Points = append(up.Points, PointResult{
				Index: i, Error: fmt.Sprintf("worker has no sweep scenario %q", lease.Scenario),
			})
		}
		w.upload(ctx, &up)
		return
	}

	// Heartbeat while evaluating, at a third of the lease TTL.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	if w.ttl > 0 {
		go w.heartbeat(hbCtx, lease)
	}

	start := time.Now()
	vals, errStrs, err := sw.RunLease(ctx, lease.Opts.Options(), lease.Lo, lease.Hi)
	if err != nil {
		// Context cancellation mid-lease: abandon, the lease expires
		// and the points re-run elsewhere.
		w.logf("dist: worker %s abandoning lease %s/%d: %v", w.ID, lease.JobID, lease.Seq, err)
		return
	}
	up.ElapsedNS = time.Since(start).Nanoseconds()
	for k := range vals {
		pr := PointResult{Index: lease.Lo + k, Error: errStrs[k]}
		if pr.Error == "" {
			b, err := sw.EncodePoint(vals[k])
			if err != nil {
				pr.Error = "encode: " + err.Error()
			} else {
				pr.Value = b
			}
		}
		up.Points = append(up.Points, pr)
	}
	stopHB()
	if w.BeforeUpload != nil {
		w.BeforeUpload(&up)
	}
	w.upload(ctx, &up)
}

// heartbeat extends the lease every ttl/3 until cancelled.
func (w *Worker) heartbeat(ctx context.Context, lease LeaseReply) {
	iv := w.ttl / 3
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var hb HeartbeatReply
			_, err := w.postJSON(ctx, "/v1/workers/heartbeat",
				HeartbeatRequest{WorkerID: w.ID, JobID: lease.JobID, Seq: lease.Seq}, &hb)
			if err == nil && !hb.OK {
				return // lease is gone; evaluation result will be ignored
			}
		}
	}
}

// upload posts the result, retrying transient failures. Duplicate
// replies are success: the lease completed through another path.
func (w *Worker) upload(ctx context.Context, up *ResultUpload) {
	for attempt := 0; attempt < 5; attempt++ {
		var reply ResultReply
		_, err := w.postJSON(ctx, "/v1/workers/result", up, &reply)
		if err == nil {
			if reply.Duplicate {
				w.logf("dist: worker %s: lease %s/%d already completed (duplicate upload ignored)",
					w.ID, up.JobID, up.Seq)
			}
			return
		}
		if ctx.Err() != nil {
			return
		}
		w.logf("dist: worker %s: upload %s/%d failed: %v (retrying)", w.ID, up.JobID, up.Seq, err)
		if !sleepCtx(ctx, w.Poll) {
			return
		}
	}
}
