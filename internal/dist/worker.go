package dist

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
)

// Worker pulls leases from a coordinator, evaluates the leased grid
// points on its own simulation kernels, and streams each point's result
// back the moment it finishes — so the coordinator sees partial
// progress, and a worker killed late in a lease only costs the points
// it had not streamed yet. Any scenario can arrive: parameter sweeps
// lease grid runs, one-shot applications lease their single wrapped
// point. Testbeds are cached per job (keyed by their Config), so the
// leases of one sweep stop rebuilding the same topology. A worker keeps
// one sticky ID for its lifetime, so the coordinator's throughput EWMA
// and lease accounting survive reconnects.
type Worker struct {
	// Coordinator is the coordinator's base URL, e.g.
	// "http://127.0.0.1:9191".
	Coordinator string
	// ID is the sticky worker identity; NewWorker generates one.
	ID string
	// Token authenticates against a multi-tenant coordinator (gtwd
	// -tenants); sent as "Authorization: Bearer <token>" on every
	// request. Empty sends no header.
	Token string
	// Client is the HTTP client (default: 30s-timeout client).
	Client *http.Client
	// Poll is the idle-poll interval; the coordinator's register reply
	// overrides it.
	Poll time.Duration
	// BatchWindow coalesces points finishing within this window into one
	// streamed POST /v1/workers/points body, cutting the per-point HTTP
	// round trips of fine-grained sweeps. 0 streams each point the
	// moment it finishes (the single-point degenerate case). Points
	// coalesced but not yet flushed when a worker dies are simply part
	// of the unstreamed tail the coordinator re-runs, so batching
	// trades a slightly longer tail for fewer uploads — never
	// correctness.
	BatchWindow time.Duration
	// BatchMax caps the points per streamed body when BatchWindow is set
	// (default 16).
	BatchMax int
	// Logf, when set, receives worker events. Nil discards.
	Logf func(format string, args ...any)

	// DropLease, when set, is consulted before evaluating each lease;
	// returning true makes the worker silently abandon the lease — no
	// evaluation, no heartbeat, no upload — simulating a worker killed
	// mid-lease. Test hook for the fault-injection suite.
	DropLease func(l LeaseReply) bool
	// DropAfterPoints, when set, is consulted after each point is
	// evaluated and streamed; returning true makes the worker abandon
	// the rest of the lease — no further points, no final upload —
	// simulating a worker killed partway through a lease it had been
	// streaming. Test hook for the streamed-tail fault suite.
	DropAfterPoints func(l LeaseReply, streamed int) bool
	// BeforeUpload, when set, runs after evaluation and before the
	// result upload. Test hook (e.g. to double-upload for idempotency
	// tests).
	BeforeUpload func(up *ResultUpload)
	// TestbedCacheSize caps the testbed LRU (default 4 distinct
	// configurations).
	TestbedCacheSize int

	ttl time.Duration

	// Testbed LRU: leases reuse one testbed per (Config, scenario
	// epoch) across jobs, so back-to-back jobs on the same topology —
	// the common resubmission pattern the coordinator's point store
	// optimizes for — skip the topology rebuild too. The epoch
	// invalidates cached instances when the scenario set changes. The
	// worker loop is sequential, so no locking.
	tbCache map[tbKey]*tbEntry
	tbClock uint64
}

// tbKey identifies one cached testbed.
type tbKey struct {
	cfg   core.Config
	epoch uint64
}

// tbEntry is a cached testbed with its LRU tick.
type tbEntry struct {
	tb       *core.Testbed
	lastUsed uint64
}

// NewWorker builds a worker with a random sticky ID.
func NewWorker(coordinator string) *Worker {
	b := make([]byte, 4)
	_, _ = rand.Read(b)
	return &Worker{
		Coordinator: coordinator,
		ID:          "w-" + hex.EncodeToString(b),
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return defaultHTTPClient
}

// postJSON posts in and decodes the reply into out (when non-nil and
// the status is 200). Returns the HTTP status code.
func (w *Worker) postJSON(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.Token)
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	if resp.StatusCode >= 400 {
		return resp.StatusCode, fmt.Errorf("dist: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return resp.StatusCode, nil
}

// Run registers with the coordinator and serves leases until ctx is
// cancelled. Transient coordinator errors are retried with the poll
// interval as backoff.
func (w *Worker) Run(ctx context.Context) error {
	if w.Poll <= 0 {
		w.Poll = 200 * time.Millisecond
	}
	for {
		var reg RegisterReply
		_, err := w.postJSON(ctx, "/v1/workers/register", RegisterRequest{WorkerID: w.ID}, &reg)
		if err == nil {
			if reg.PollMS > 0 {
				w.Poll = time.Duration(reg.PollMS) * time.Millisecond
			}
			w.ttl = time.Duration(reg.LeaseTTLMS) * time.Millisecond
			break
		}
		w.logf("dist: worker %s: register: %v (retrying)", w.ID, err)
		if !sleepCtx(ctx, w.Poll) {
			return ctx.Err()
		}
	}
	w.logf("dist: worker %s serving %s (poll %s, lease ttl %s)", w.ID, w.Coordinator, w.Poll, w.ttl)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var lease LeaseReply
		code, err := w.postJSON(ctx, "/v1/workers/lease", LeaseRequest{WorkerID: w.ID}, &lease)
		switch {
		case err != nil:
			w.logf("dist: worker %s: lease poll: %v", w.ID, err)
			fallthrough
		case code == http.StatusNoContent:
			if !sleepCtx(ctx, w.Poll) {
				return ctx.Err()
			}
			continue
		}
		if w.DropLease != nil && w.DropLease(lease) {
			w.logf("dist: worker %s dropping lease %s/%d (fault injection)", w.ID, lease.JobID, lease.Seq)
			continue
		}
		w.serveLease(ctx, lease)
	}
}

// sleepCtx sleeps d or until ctx is done; false means ctx ended.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// leaseTestbed resolves the testbed a lease's points run on: nil for
// NoShardTestbed sweeps, otherwise one testbed per (Config, scenario
// epoch) from the worker's LRU — reusing a testbed across leases and
// jobs is exactly reusing it across the points of one in-process
// shard, which the byte-identity guarantee already requires to be
// result-invariant. Least-recently-used configurations are evicted
// beyond TestbedCacheSize.
func (w *Worker) leaseTestbed(sw *core.Sweep, opts core.Options) *core.Testbed {
	if !sw.NeedsShardTestbed() {
		return nil
	}
	key := tbKey{
		cfg:   core.Config{WAN: opts.WAN, Extensions: opts.Extensions},
		epoch: core.ScenarioEpoch(),
	}
	if w.tbCache == nil {
		w.tbCache = make(map[tbKey]*tbEntry)
	}
	w.tbClock++
	if e := w.tbCache[key]; e != nil {
		e.lastUsed = w.tbClock
		return e.tb
	}
	size := w.TestbedCacheSize
	if size <= 0 {
		size = 4
	}
	for len(w.tbCache) >= size {
		var oldest tbKey
		first := true
		for k, e := range w.tbCache {
			if first || e.lastUsed < w.tbCache[oldest].lastUsed {
				oldest, first = k, false
			}
		}
		delete(w.tbCache, oldest)
	}
	e := &tbEntry{tb: core.New(key.cfg), lastUsed: w.tbClock}
	w.tbCache[key] = e
	return e.tb
}

// serveLease evaluates one lease point by point, streaming each result
// as it finishes, then completes the lease with the full upload.
func (w *Worker) serveLease(ctx context.Context, lease LeaseReply) {
	s, ok := core.Lookup(lease.Scenario)
	up := ResultUpload{
		WorkerID: w.ID, JobID: lease.JobID, Seq: lease.Seq,
		Lo: lease.Lo, Hi: lease.Hi,
	}
	if !ok {
		// A coordinator from a newer build may know scenarios this
		// worker does not; report per-point errors so the job fails
		// loudly rather than hanging.
		for i := lease.Lo; i < lease.Hi; i++ {
			up.Points = append(up.Points, PointResult{
				Index: i, Error: fmt.Sprintf("worker has no scenario %q", lease.Scenario),
			})
		}
		w.upload(ctx, &up)
		return
	}
	// Every scenario is executable as a plan: sweeps lease grid runs,
	// anything else arrives as its one-point wrapper.
	sw := core.PlanFor(s).Sweep()
	opts := lease.Opts.Options()

	// Heartbeat while evaluating, at a third of the lease TTL.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	if w.ttl > 0 {
		go w.heartbeat(hbCtx, lease)
	}

	tb := w.leaseTestbed(sw, opts)
	stream := lease.Hi-lease.Lo > 1 // a 1-point lease's final upload IS its stream
	batchMax := w.BatchMax
	if batchMax <= 0 {
		batchMax = 16
	}
	// pending coalesces finished points awaiting a streamed upload; with
	// BatchWindow unset every point flushes immediately, so the
	// single-point path is the degenerate one-entry batch.
	var pending []PointResult
	var batchStart time.Time
	flush := func() bool {
		if len(pending) == 0 {
			return true
		}
		ok := w.streamPoints(ctx, lease, pending)
		pending = pending[:0]
		return ok
	}
	start := time.Now()
	for i := lease.Lo; i < lease.Hi; i++ {
		res, err := sw.EvalPoint(ctx, tb, opts, i)
		if ctx.Err() != nil {
			w.logf("dist: worker %s abandoning lease %s/%d: %v", w.ID, lease.JobID, lease.Seq, ctx.Err())
			return
		}
		pr := PointResult{Index: i}
		if err != nil {
			pr.Error = err.Error()
		} else if b, encErr := sw.EncodePoint(res); encErr != nil {
			pr.Error = "encode: " + encErr.Error()
		} else {
			pr.Value = b
		}
		up.Points = append(up.Points, pr)
		if stream {
			if len(pending) == 0 {
				batchStart = time.Now()
			}
			pending = append(pending, pr)
			if w.BatchWindow <= 0 || len(pending) >= batchMax ||
				time.Since(batchStart) >= w.BatchWindow || i == lease.Hi-1 {
				if !flush() {
					w.logf("dist: worker %s: lease %s/%d gone mid-stream; abandoning its tail",
						w.ID, lease.JobID, lease.Seq)
					return
				}
			}
		}
		if w.DropAfterPoints != nil && w.DropAfterPoints(lease, len(up.Points)) {
			w.logf("dist: worker %s dying after streaming %d point(s) of lease %s/%d (fault injection)",
				w.ID, len(up.Points), lease.JobID, lease.Seq)
			return
		}
	}
	up.ElapsedNS = time.Since(start).Nanoseconds()
	stopHB()
	if w.BeforeUpload != nil {
		w.BeforeUpload(&up)
	}
	w.upload(ctx, &up)
}

// streamPoints uploads a batch of finished points of a held lease in
// one body. It reports false only when the coordinator says the lease
// is gone; transient errors are tolerated — the final upload carries
// every point again.
func (w *Worker) streamPoints(ctx context.Context, lease LeaseReply, prs []PointResult) bool {
	var reply PointsReply
	_, err := w.postJSON(ctx, "/v1/workers/points", PointsUpload{
		WorkerID: w.ID, JobID: lease.JobID, Seq: lease.Seq,
		Points: append([]PointResult(nil), prs...),
	}, &reply)
	if err != nil {
		w.logf("dist: worker %s: streaming %d point(s) of lease %s/%d: %v (final upload will cover them)",
			w.ID, len(prs), lease.JobID, lease.Seq, err)
		return true
	}
	return reply.OK
}

// heartbeat extends the lease every ttl/3 until cancelled.
func (w *Worker) heartbeat(ctx context.Context, lease LeaseReply) {
	iv := w.ttl / 3
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var hb HeartbeatReply
			_, err := w.postJSON(ctx, "/v1/workers/heartbeat",
				HeartbeatRequest{WorkerID: w.ID, JobID: lease.JobID, Seq: lease.Seq}, &hb)
			if err == nil && !hb.OK {
				return // lease is gone; evaluation result will be ignored
			}
		}
	}
}

// upload posts the result, retrying transient failures. Duplicate
// replies are success: the lease completed through another path.
func (w *Worker) upload(ctx context.Context, up *ResultUpload) {
	for attempt := 0; attempt < 5; attempt++ {
		var reply ResultReply
		_, err := w.postJSON(ctx, "/v1/workers/result", up, &reply)
		if err == nil {
			if reply.Duplicate {
				w.logf("dist: worker %s: lease %s/%d already completed (duplicate upload ignored)",
					w.ID, up.JobID, up.Seq)
			}
			return
		}
		if ctx.Err() != nil {
			return
		}
		w.logf("dist: worker %s: upload %s/%d failed: %v (retrying)", w.ID, up.JobID, up.Seq, err)
		if !sleepCtx(ctx, w.Poll) {
			return
		}
	}
}
