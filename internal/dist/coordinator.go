package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/tenant"
)

// Config tunes a Coordinator.
type Config struct {
	// LeaseTTL is how long a worker may hold a lease without
	// heartbeating before its points are requeued (default 10s).
	LeaseTTL time.Duration
	// Poll is the idle-poll interval hint handed to workers (default
	// 200ms).
	Poll time.Duration
	// LocalShards is the number of in-process shards the coordinator
	// itself contributes to every distributed job, stealing from the
	// same queue as the remote workers. 0 defaults to 1 (so a
	// coordinator with no workers still makes progress); negative
	// disables local evaluation entirely (pure remote execution).
	LocalShards int
	// ExecKernels > 1 partitions the local shards' testbed networks
	// across that many PDES kernels (core.Options.Kernels). Pure
	// execution policy: it never crosses the wire, never enters point
	// keys, and reports stay byte-identical — but the partitioned runs
	// feed the gtw_pdes_* rows of /v1/metrics (and gtwtop's kernel
	// line), which stay zero on a serial coordinator.
	ExecKernels int
	// ExecIntra lets ExecKernels partitioning additionally cut inside
	// sites at switch boundaries (core.Options.Intra).
	ExecIntra bool
	// CacheSize bounds the content-addressed point store (finished
	// grid points, LRU-evicted; default 4096).
	CacheSize int
	// MaxJobs bounds concurrently running jobs (default 4); further
	// submissions queue FIFO.
	MaxJobs int
	// RetainJobs bounds how many finished (done/failed) jobs stay
	// pollable (default 256). Oldest finished jobs are pruned first;
	// queued and running jobs are never pruned, so coordinator memory
	// stays bounded however many clients submit.
	RetainJobs int
	// CacheBytes bounds the point store's total wire bytes (0: the
	// entry-count bound alone applies).
	CacheBytes int64
	// CacheEntryBytes caps one stored point's wire bytes; larger results
	// are not cached at all (0: no per-entry cap).
	CacheEntryBytes int
	// Store receives every coordinator state transition — job lifecycle,
	// finished points, worker stats — and provides the recovered state at
	// startup: finished points are served from the store again, jobs that
	// were queued or running resume, and reconnecting workers keep their
	// sticky IDs and throughput EWMAs. Nil defaults to a fresh in-memory
	// store (persist.NewMem()), which journals identically but recovers
	// nothing; hand a persist.Disk (gtwd -data-dir) for crash durability,
	// or share one Mem across two Coordinators to test recovery.
	Store persist.Store
	// Tenants, when set, turns on multi-tenant operation: every endpoint
	// except /healthz requires a token from this registry, usage is
	// attributed to the authenticated tenant, and the lease queue is
	// arbitrated by weighted fair share across tenants. Nil serves every
	// request as the anonymous default tenant (the pre-tenancy behavior).
	Tenants *tenant.Registry
	// Metrics, when set, is the obs registry the coordinator instruments
	// itself into (and /v1/metrics renders). Nil allocates a private one,
	// so /v1/metrics works either way.
	Metrics *obs.Registry
	// Logf, when set, receives coordinator events (lease expiries,
	// job transitions). Nil discards.
	Logf func(format string, args ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.LocalShards == 0 {
		cfg.LocalShards = 1
	}
	if cfg.LocalShards < 0 {
		cfg.LocalShards = -1
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 4096
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// job is one submitted scenario run.
type job struct {
	id       string
	scenario string
	wopts    WireOptions
	opts     core.Options
	status   string
	cached   bool
	start    time.Time
	elapsed  time.Duration
	cancel   context.CancelFunc

	// tenant is the submitter (never nil: the anonymous default tenant
	// when auth is off). admitted marks a queued job that already holds
	// an execution slot, so the fair-admission scan skips it.
	tenant   *tenant.Tenant
	admitted bool
	// mRun/mHit/mStreamed are this tenant's point counters, resolved
	// from the metric vecs once at job creation so the per-point hot
	// paths increment pre-resolved atomics (zero allocations).
	mRun, mHit, mStreamed *obs.Counter
	// lastEvent throttles "points" progress events (unix nanos of the
	// last publish, CAS-guarded).
	lastEvent atomic.Int64

	// run is non-nil while a distributable plan is executing: the
	// lease handlers dispatch from run.Dispatcher(). sw is the plan's
	// executable grid (the scenario itself, or its one-point wrapper).
	run *core.SweepRun
	sw  *core.Sweep
	// keys holds each grid point's content address.
	keys []string

	pointsTotal int
	pointsDone  int
	// pointHits counts grid points served from the store — at submit
	// time and at lease-grant pickup. Atomic because grant-time pickups
	// happen inside the dispatcher's lease path, where c.mu is held by
	// the caller (handleLease) or not held at all (local shards).
	pointHits atomic.Int64

	report  []byte
	text    string
	timings []core.ShardTiming
	errStr  string
	done    chan struct{}
}

// leaseKey identifies an outstanding remote lease.
type leaseKey struct {
	jobID string
	seq   uint64
}

// leaseRec tracks a lease checked out by a remote worker. streamed
// marks the points the worker already uploaded mid-lease (index k
// covers grid point lease.Lo+k): if the lease expires, only the
// unstreamed remainder is requeued.
type leaseRec struct {
	job      *job
	lease    core.Lease
	expires  time.Time
	streamed []bool
}

// workerState is the coordinator's record of a sticky worker ID.
type workerState struct {
	id       string
	lastSeen time.Time
	points   int
}

// Coordinator owns the job queue, the result cache, the worker
// registry and the outstanding-lease table, and serves the protocol
// over HTTP. Create with New, mount via Handler, stop with Close.
type Coordinator struct {
	cfg Config
	mux *http.ServeMux

	mu      sync.Mutex
	jobs    map[string]*job
	order   []*job // submit order, for lease scans and status
	workers map[string]*workerState
	leases  map[leaseKey]*leaseRec
	rates   map[string]float64 // cross-job worker throughput EWMAs
	jobSeq  int

	// store is the content-addressed point store; it has its own lock
	// and is safe to touch without c.mu.
	store *pointStore
	// pstore is the persistence journal (never nil: defaults to a fresh
	// persist.Mem). Implementations lock internally; safe without c.mu.
	pstore persist.Store

	// tenants is the auth registry (nil: auth off); defTenant serves
	// unauthenticated coordinators. sched arbitrates the lease queue and
	// job admission across tenants; inflight tracks each tenant's
	// currently leased points (entries persist at zero so the gauge sync
	// sees the drop). All under c.mu except the scheduler, which locks
	// internally.
	tenants   *tenant.Registry
	defTenant *tenant.Tenant
	sched     *tenant.Scheduler
	inflight  map[string]int

	met    *metrics
	events *eventHub

	// Fair admission: running counts jobs holding one of the MaxJobs
	// execution slots; admitCond (on c.mu) wakes queued jobs when a slot
	// frees or shutdown starts.
	running   int
	admitCond *sync.Cond

	wg        sync.WaitGroup // in-flight execute goroutines
	stopped   chan struct{}
	closeOnce sync.Once
	base      context.Context
	baseCxl   context.CancelFunc
}

// New builds a coordinator, recovers any state its Store journaled in a
// previous life (finished points, finished job reports, worker stats,
// and interrupted jobs — which are re-enqueued and resume with their
// already-streamed points served from the store), and starts the lease
// reaper.
func New(cfg Config) *Coordinator {
	// The coordinator is an observability host: partitioned local runs
	// should carry the per-kernel barrier-wait picture /v1/metrics
	// exports.
	core.EnablePDESBlockedTelemetry()
	c := &Coordinator{
		cfg:      cfg.withDefaults(),
		jobs:     make(map[string]*job),
		workers:  make(map[string]*workerState),
		leases:   make(map[leaseKey]*leaseRec),
		rates:    make(map[string]float64),
		inflight: make(map[string]int),
		stopped:  make(chan struct{}),
	}
	c.pstore = c.cfg.Store
	if c.pstore == nil {
		c.pstore = persist.NewMem()
	}
	c.admitCond = sync.NewCond(&c.mu)
	c.tenants = c.cfg.Tenants
	c.defTenant = tenant.DefaultTenant()
	c.sched = tenant.NewScheduler()
	c.sched.SetWeight(c.defTenant.Name, c.defTenant.Weight())
	if c.tenants != nil {
		for _, t := range c.tenants.Tenants() {
			c.sched.SetWeight(t.Name, t.Weight())
		}
	}
	c.met = newMetrics(c.cfg.Metrics)
	c.events = newEventHub()
	c.store = newPointStore(c.cfg.CacheSize, c.cfg.CacheBytes, c.cfg.CacheEntryBytes)
	// Every accepted point and every eviction is journaled, so the
	// durable image tracks the store's residency exactly.
	c.store.onPut = func(key string, val []byte) { c.pstore.PutPoint(key, val) }
	c.store.onEvict = func(key string) { c.pstore.DeletePoint(key) }
	resume := c.recoverState()
	c.base, c.baseCxl = context.WithCancel(context.Background())
	// Shutdown must wake jobs parked in admit, or Close would hang on
	// c.wg behind waiters nobody will ever signal.
	context.AfterFunc(c.base, func() {
		c.mu.Lock()
		c.admitCond.Broadcast()
		c.mu.Unlock()
	})
	// drop adapts tenant-agnostic handlers to the authed signature.
	drop := func(h http.HandlerFunc) func(http.ResponseWriter, *http.Request, *tenant.Tenant) {
		return func(w http.ResponseWriter, r *http.Request, _ *tenant.Tenant) { h(w, r) }
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/jobs", c.authed(c.handleSubmit))
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.authed(drop(c.handleJob)))
	c.mux.HandleFunc("GET /v1/status", c.authed(drop(c.handleStatus)))
	c.mux.HandleFunc("GET /v1/metrics", c.authed(drop(c.handleMetrics)))
	c.mux.HandleFunc("GET /v1/events", c.authed(drop(c.handleEvents)))
	c.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	c.mux.HandleFunc("POST /v1/workers/register", c.authed(c.handleRegister))
	c.mux.HandleFunc("POST /v1/workers/lease", c.authed(drop(c.handleLease)))
	c.mux.HandleFunc("POST /v1/workers/heartbeat", c.authed(drop(c.handleHeartbeat)))
	c.mux.HandleFunc("POST /v1/workers/points", c.authed(drop(c.handlePoints)))
	c.mux.HandleFunc("POST /v1/workers/result", c.authed(drop(c.handleResult)))
	go c.reap()
	for _, j := range resume {
		c.cfg.Logf("dist: resuming %s (%s) recovered from the store", j.id, j.scenario)
		c.startJob(j)
	}
	return c
}

// recoverState seeds the coordinator from the journal's last image.
// Called from New before any handler runs, so no locking. Returns the
// non-terminal jobs to re-enqueue.
func (c *Coordinator) recoverState() []*job {
	st := c.pstore.Load()
	// Oldest-first seeding reproduces the store's LRU order (each seed
	// pushes to the front); a shrunken budget evicts — and journals —
	// the oldest overflow.
	for _, p := range st.Points {
		c.store.seed(p.Key, p.Val)
	}
	now := time.Now()
	for _, w := range st.Workers {
		c.workers[w.ID] = &workerState{id: w.ID, lastSeen: now, points: w.Points}
		if w.RatePPS > 0 {
			c.rates[w.ID] = w.RatePPS
		}
	}
	var resume []*job
	for _, jr := range st.Jobs {
		var wopts WireOptions
		if len(jr.Opts) > 0 {
			_ = json.Unmarshal(jr.Opts, &wopts)
		}
		j := &job{
			id: jr.ID, scenario: jr.Scenario, wopts: wopts, opts: wopts.Options(),
			status: jr.Status, cached: jr.Cached, start: now,
			elapsed:     time.Duration(jr.ElapsedMS) * time.Millisecond,
			pointsTotal: jr.PointsTotal, pointsDone: jr.PointsDone,
			report: jr.Report, text: jr.Text, errStr: jr.Error,
			done: make(chan struct{}),
		}
		// Re-resolve the journaled tenant name against the current
		// registry; a tenant removed from the config (or a journal from a
		// pre-tenancy build) degrades to the anonymous default.
		t := c.defTenant
		if c.tenants != nil && jr.Tenant != "" {
			if rt := c.tenants.ByName(jr.Tenant); rt != nil {
				t = rt
			}
		}
		c.bindTenant(j, t)
		j.pointHits.Store(int64(jr.PointHits))
		if len(jr.Timings) > 0 {
			_ = json.Unmarshal(jr.Timings, &j.timings)
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(jr.ID, "job-")); err == nil && n > c.jobSeq {
			c.jobSeq = n
		}
		switch jr.Status {
		case JobDone, JobFailed:
			close(j.done)
		default:
			// Queued or running at the crash: re-run from the top. The
			// points it streamed before dying are in the store, so the
			// resumed execution prefills them and re-leases only the
			// unstreamed tail.
			j.status = JobQueued
			j.pointsDone, j.report, j.text, j.errStr = 0, nil, "", ""
			j.pointHits.Store(0)
			resume = append(resume, j)
		}
		c.jobs[j.id] = j
		c.order = append(c.order, j)
	}
	return resume
}

// startJob launches a job's execute goroutine, tracked so Close can
// wait for in-flight jobs to wind down before the caller snapshots and
// closes the persistence store.
func (c *Coordinator) startJob(j *job) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.execute(j)
	}()
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Metrics returns the obs registry the coordinator instruments itself
// into (the one /v1/metrics renders).
func (c *Coordinator) Metrics() *obs.Registry { return c.met.reg }

// bindTenant attributes a job to its tenant and resolves the tenant's
// point counters once, so every per-point increment afterwards is a
// pre-resolved atomic add.
func (c *Coordinator) bindTenant(j *job, t *tenant.Tenant) {
	j.tenant = t
	j.mRun = c.met.pointsRun.With(t.Name)
	j.mHit = c.met.pointsHit.With(t.Name)
	j.mStreamed = c.met.pointsStreamed.With(t.Name)
}

// authed gates a handler behind token authentication. With no registry
// configured every request proceeds as the anonymous default tenant;
// with one, a missing or unknown token is a 401 (counted and audited,
// never attributed — there is no tenant to attribute it to).
func (c *Coordinator) authed(h func(http.ResponseWriter, *http.Request, *tenant.Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t := c.defTenant
		if c.tenants != nil {
			var ok bool
			t, ok = c.tenants.Authenticate(r.Header.Get("Authorization"))
			if !ok {
				c.met.authFailures.Inc()
				c.audit("", "auth-reject", "", r.Method+" "+r.URL.Path)
				w.Header().Set("WWW-Authenticate", `Bearer realm="gtwd"`)
				http.Error(w, "unauthorized", http.StatusUnauthorized)
				return
			}
		}
		h(w, r, t)
	}
}

// audit appends one record to the append-only audit trail.
func (c *Coordinator) audit(tenantName, action, jobID, detail string) {
	c.pstore.AppendAudit(persist.AuditRecord{
		TimeMS: time.Now().UnixMilli(),
		Tenant: tenantName, Action: action, JobID: jobID, Detail: detail,
	})
}

// jobEvent publishes a job lifecycle transition.
func (c *Coordinator) jobEvent(j *job, status, errStr string) {
	c.events.publish(Event{
		Type: "job", Job: j.id, Scenario: j.scenario,
		Tenant: j.tenant.Name, Status: status, Error: errStr,
		PointsDone: j.pointsDone, PointsTotal: j.pointsTotal,
	})
}

// progressEvery throttles "points" progress events per job.
const progressEvery = 100 * time.Millisecond

// maybeProgress publishes a coalesced point-progress event. Called from
// the per-point hot path (run.OnPoint), so it bails on an atomic load
// when nobody is subscribed and CAS-throttles to one event per
// progressEvery per job. It deliberately reads progress from the run
// pointer it is handed — never j.run, which is guarded by c.mu.
func (c *Coordinator) maybeProgress(j *job, run *core.SweepRun, total int) {
	if c.events.subscribers() == 0 {
		return
	}
	now := time.Now().UnixNano()
	last := j.lastEvent.Load()
	if now-last < int64(progressEvery) || !j.lastEvent.CompareAndSwap(last, now) {
		return
	}
	done, _ := run.Progress()
	c.events.publish(Event{
		Type: "points", Job: j.id, Scenario: j.scenario, Tenant: j.tenant.Name,
		Status: JobRunning, PointsDone: done, PointsTotal: total,
	})
}

// admit blocks until this job is granted one of the MaxJobs execution
// slots — or shutdown begins, in which case it returns the cause. Slots
// go to the queued job of the tenant the fair-share scheduler picks
// (FIFO within a tenant), not submission order: with MaxJobs saturated
// by one tenant's backlog, another tenant's first job is the next
// admission, not the backlog's tail.
func (c *Coordinator) admit(j *job) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if err := c.base.Err(); err != nil {
			return err
		}
		if c.running < c.cfg.MaxJobs && c.nextAdmitLocked() == j {
			c.running++
			j.admitted = true
			// Other waiters re-evaluate: a second free slot may now go
			// to the next pick.
			c.admitCond.Broadcast()
			return nil
		}
		c.admitCond.Wait()
	}
}

// nextAdmitLocked returns the queued job the next free slot should go
// to: the oldest job of the least-virtual-time tenant among those with
// queued work.
func (c *Coordinator) nextAdmitLocked() *job {
	var names []string
	oldest := make(map[string]*job)
	for _, j := range c.order {
		if j.status != JobQueued || j.admitted {
			continue
		}
		if _, seen := oldest[j.tenant.Name]; !seen {
			oldest[j.tenant.Name] = j
			names = append(names, j.tenant.Name)
		}
	}
	if len(names) == 0 {
		return nil
	}
	return oldest[c.sched.Pick(names)]
}

// release returns an execution slot and wakes admission waiters.
func (c *Coordinator) release() {
	c.mu.Lock()
	c.running--
	c.admitCond.Broadcast()
	c.mu.Unlock()
}

// Close cancels running jobs, stops the reaper, and waits for in-flight
// job goroutines to finish journaling — interrupted jobs are recorded
// as queued, so a restart on the same store resumes them. The caller
// owns the persistence store's lifetime (close it after Close returns,
// so the final snapshot carries every last record).
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		c.baseCxl()
		close(c.stopped)
		c.events.dropAll(true)
	})
	c.wg.Wait()
}

// reaperInterval derives the expiry scan period from the lease TTL.
func (c *Coordinator) reaperInterval() time.Duration {
	iv := c.cfg.LeaseTTL / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	return iv
}

// reap requeues leases whose workers stopped heartbeating, so their
// points are re-run by whoever asks next (another worker or a local
// shard).
func (c *Coordinator) reap() {
	t := time.NewTicker(c.reaperInterval())
	defer t.Stop()
	for {
		select {
		case <-c.stopped:
			return
		case now := <-t.C:
			c.mu.Lock()
			for k, rec := range c.leases {
				if now.Before(rec.expires) {
					continue
				}
				c.retireLeaseLocked(k, rec)
				requeued := rec.lease.Points() - countTrue(rec.streamed)
				// Refund what the dead worker never served: the points
				// are about to be leased — and charged — again, and
				// without the refund the tenant would pay twice and sink
				// behind lower-priority tenants (priority inversion).
				c.sched.Refund(rec.job.tenant.Name, requeued)
				c.met.leasesExpired.Inc()
				if rec.job.run != nil {
					// Points the worker streamed before dying are kept;
					// only the unfinished tail goes back to the queue.
					rec.job.run.Abandon(rec.lease, rec.streamed)
				}
				c.events.publish(Event{
					Type: "lease", Job: k.jobID, Tenant: rec.job.tenant.Name,
					Worker: rec.lease.Worker, Requeued: requeued,
				})
				c.cfg.Logf("dist: lease %s/%d (points [%d,%d), worker %s) expired; requeued %d unstreamed point(s)",
					k.jobID, k.seq, rec.lease.Lo, rec.lease.Hi, rec.lease.Worker, requeued)
			}
			c.mu.Unlock()
		}
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// retireLeaseLocked removes a lease from the outstanding table and
// returns its points to the tenant's in-flight budget. The inflight
// entry stays at zero rather than being deleted, so the scrape-time
// gauge sync sees the drop instead of a stale last value.
func (c *Coordinator) retireLeaseLocked(k leaseKey, rec *leaseRec) {
	delete(c.leases, k)
	name := rec.job.tenant.Name
	if c.inflight[name] -= rec.lease.Points(); c.inflight[name] < 0 {
		c.inflight[name] = 0
	}
}

// jobKey is the tenant+scenario+options identity used to share
// identical in-flight jobs. Workers/shards/dispatch are deliberately
// absent: they change only wall-clock time, never report bytes. The
// tenant prefix keeps sharing within a tenant — two tenants submitting
// the same sweep get separate jobs (honest accounting and fair-share
// billing) whose points still dedupe through the content-addressed
// store.
func jobKey(tenantName, scenario string, w WireOptions) string {
	b, _ := json.Marshal(w)
	return tenantName + "|" + scenario + "|" + string(b)
}

// Submit queues a scenario run (or shares an identical in-flight job)
// as the anonymous default tenant. There is no whole-report cache: a
// repeated submission runs through the point store, where every grid
// point hits and only the merge is recomputed — the same path that
// serves partial overlaps.
func (c *Coordinator) Submit(req JobRequest) (*JobStatus, error) {
	return c.SubmitFor(nil, req)
}

// SubmitFor queues a scenario run attributed to a tenant (nil: the
// anonymous default tenant).
func (c *Coordinator) SubmitFor(t *tenant.Tenant, req JobRequest) (*JobStatus, error) {
	if t == nil {
		t = c.defTenant
	}
	if _, ok := core.Lookup(req.Scenario); !ok {
		return nil, fmt.Errorf("dist: unknown scenario %q", req.Scenario)
	}
	key := jobKey(t.Name, req.Scenario, req.Opts)
	c.mu.Lock()
	defer c.mu.Unlock()
	// Identical job already queued or running for this tenant: share it.
	for _, j := range c.order {
		if j.status != JobDone && j.status != JobFailed && jobKey(j.tenant.Name, j.scenario, j.wopts) == key {
			st := c.statusLocked(j)
			return &st, nil
		}
	}
	j := c.newJobLocked(t, req)
	c.startJob(j)
	st := c.statusLocked(j)
	return &st, nil
}

func (c *Coordinator) newJobLocked(t *tenant.Tenant, req JobRequest) *job {
	c.jobSeq++
	j := &job{
		id:       "job-" + strconv.Itoa(c.jobSeq),
		scenario: req.Scenario,
		wopts:    req.Opts,
		opts:     req.Opts.Options(),
		status:   JobQueued,
		start:    time.Now(),
		done:     make(chan struct{}),
	}
	c.bindTenant(j, t)
	t.Usage.JobsSubmitted.Add(1)
	c.met.jobsSubmitted.With(t.Name).Inc()
	c.jobs[j.id] = j
	c.order = append(c.order, j)
	c.pstore.PutJob(c.jobRecordLocked(j))
	c.audit(t.Name, "job-submit", j.id, j.scenario)
	c.jobEvent(j, JobQueued, "")
	c.pruneJobsLocked()
	return j
}

// optsJSON marshals a job's wire options for its journal record.
func optsJSON(w WireOptions) json.RawMessage {
	b, _ := json.Marshal(w)
	return b
}

// jobRecordLocked builds the journal image of a job's current state.
func (c *Coordinator) jobRecordLocked(j *job) persist.JobRecord {
	rec := persist.JobRecord{
		ID: j.id, Scenario: j.scenario, Opts: optsJSON(j.wopts),
		Status: j.status, Error: j.errStr, Report: j.report, Text: j.text,
		ElapsedMS:   j.elapsed.Milliseconds(),
		PointsTotal: j.pointsTotal, PointsDone: j.pointsDone,
		PointHits: int(j.pointHits.Load()), Cached: j.cached,
		Tenant: j.tenant.Name,
	}
	if len(j.timings) > 0 {
		if b, err := json.Marshal(j.timings); err == nil {
			rec.Timings = b
		}
	}
	return rec
}

// pruneJobsLocked evicts the oldest finished jobs past the retention
// bound, so a long-running coordinator's memory is bounded by
// RetainJobs finished reports plus whatever is actually in flight.
// Queued and running jobs are never pruned (their leases and done
// channels are live).
func (c *Coordinator) pruneJobsLocked() {
	finished := 0
	for _, j := range c.order {
		if j.status == JobDone || j.status == JobFailed {
			finished++
		}
	}
	if finished <= c.cfg.RetainJobs {
		return
	}
	kept := c.order[:0]
	for _, j := range c.order {
		if finished > c.cfg.RetainJobs && (j.status == JobDone || j.status == JobFailed) {
			delete(c.jobs, j.id)
			c.pstore.DeleteJob(j.id)
			finished--
			continue
		}
		kept = append(kept, j)
	}
	// Drop the tail references so pruned jobs are collectable.
	for i := len(kept); i < len(c.order); i++ {
		c.order[i] = nil
	}
	c.order = kept
}

// execute runs one job to completion: every distributable plan — sweep
// grids and one-point-wrapped scenarios alike — goes through the shared
// lease queue and the point store; only sweeps without a wire codec
// fall back to a plain in-process run.
func (c *Coordinator) execute(j *job) {
	if err := c.admit(j); err != nil {
		c.finish(j, nil, err)
		return
	}
	defer c.release()
	ctx, cancel := context.WithCancel(c.base)
	defer cancel()

	// A job recovered from the store may name a scenario this build no
	// longer registers; fail it loudly instead of executing a nil plan.
	s, ok := core.Lookup(j.scenario)
	if !ok {
		c.finish(j, nil, fmt.Errorf("dist: unknown scenario %q (recovered from a different build?)", j.scenario))
		return
	}

	c.mu.Lock()
	j.status = JobRunning
	j.start = time.Now()
	j.cancel = cancel
	plan := core.PlanFor(s)
	c.pstore.PutJob(c.jobRecordLocked(j))
	c.mu.Unlock()
	c.jobEvent(j, JobRunning, "")

	var rep core.Report
	var err error
	if plan.Distributable() {
		rep, err = c.runDistributed(ctx, j, plan)
	} else {
		rep, err = core.RunWith(ctx, j.scenario, j.opts)
	}
	c.finish(j, rep, err)
}

// runDistributed evaluates a plan's grid through the shared
// work-stealing queue: grid points already in the content-addressed
// store are prefilled (never leased), and the coordinator's local
// shards plus every polling worker lease the rest until the grid
// drains.
func (c *Coordinator) runDistributed(ctx context.Context, j *job, plan *core.Plan) (core.Report, error) {
	sw := plan.Sweep()
	points := sw.Points()
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("dist: scenario %q has an empty grid", j.scenario)
	}
	// Content-addressed reuse: a point another job already computed —
	// same scenario, same coordinates, same relevant options — is
	// decoded from its stored wire bytes exactly as a fresh worker
	// upload would be, so reports assembled either way are
	// byte-identical.
	keys := make([]string, n)
	done := make([]bool, n)
	prevals := make([]any, n)
	hits := 0
	for i, pt := range points {
		keys[i] = sw.PointKey(j.opts, pt)
		b, ok := c.store.get(keys[i])
		if !ok {
			continue
		}
		v, err := sw.DecodePoint(b)
		if err != nil {
			continue // stored under an incompatible build: treat as miss
		}
		done[i], prevals[i] = true, v
		hits++
	}
	shards := c.cfg.LocalShards
	if shards < 0 {
		shards = 0
	}
	if shards > n {
		shards = n
	}
	c.mu.Lock()
	sizeHint := shards + len(c.workers)
	c.mu.Unlock()
	inner := core.NewWorkStealingDispatcherSkipping(n, max(sizeHint, 1), done)
	// Seed the queue with what earlier jobs learned about each worker,
	// so a proven-fast worker gets large leases from its first ask.
	if rk, ok := inner.(core.RateKeeper); ok {
		c.mu.Lock()
		for w, r := range c.rates {
			rk.SeedRate(w, r)
		}
		c.mu.Unlock()
	}
	// Grant-time store pickup: a point that landed in the store after
	// this job's submit-time prefill — streamed by a concurrent job with
	// an overlapping grid — is served from the store the moment a lease
	// would cover it, instead of being re-simulated. The filter runs
	// inside the dispatcher's lease path (under c.mu when handleLease is
	// the caller), so it must not take c.mu itself.
	var run *core.SweepRun
	filter := func(l core.Lease) []bool {
		mask := make([]bool, l.Points())
		picked := 0
		for k := range mask {
			i := l.Lo + k
			b, ok := c.store.get(keys[i])
			if !ok {
				continue
			}
			v, err := sw.DecodePoint(b)
			if err != nil {
				continue
			}
			run.Prefill(i, v)
			mask[k] = true
			picked++
		}
		if picked == 0 {
			return nil
		}
		j.pointHits.Add(int64(picked))
		j.mHit.Add(int64(picked))
		j.tenant.Usage.PointsHit.Add(int64(picked))
		c.cfg.Logf("dist: %s (%s) picked up %d stored point(s) at lease grant", j.id, j.scenario, picked)
		return mask
	}
	d := core.NewFilteringDispatcher(inner, filter)
	run = core.NewSweepRun(sw, j.opts, d, shards)
	// Persist each freshly computed point the moment it is recorded —
	// local shard results included — so a crash loses at most the points
	// still being evaluated. Remotely delivered points are already in
	// the store (their wire bytes were put on upload receipt), which the
	// contains probe skips.
	// OnPoint fires outside the run's lock for every freshly recorded
	// error-free point; remotely delivered points are already in the
	// store (put on upload receipt, where they were attributed), which
	// the contains probe skips — so the accounting branch below is
	// exactly the local-shard fresh computes.
	run.OnPoint = func(i int, val any) {
		c.maybeProgress(j, run, n)
		if keys[i] == "" || c.store.contains(keys[i]) {
			return
		}
		b, err := sw.EncodePoint(val)
		if err != nil {
			return
		}
		accepted, rejected := c.store.put(keys[i], b)
		if accepted {
			j.mRun.Inc()
			j.tenant.Usage.PointsRun.Add(1)
			j.tenant.Usage.StoreBytes.Add(int64(len(b)))
		}
		if rejected {
			j.tenant.Usage.StoreRejected.Add(1)
		}
	}
	for i := range done {
		if done[i] {
			run.Prefill(i, prevals[i])
		}
	}
	c.mu.Lock()
	j.run = run
	j.sw = sw
	j.keys = keys
	j.pointsTotal = n
	j.pointHits.Store(int64(hits))
	c.mu.Unlock()
	if hits > 0 {
		j.mHit.Add(int64(hits))
		j.tenant.Usage.PointsHit.Add(int64(hits))
		c.cfg.Logf("dist: %s (%s) reusing %d/%d point(s) from the store", j.id, j.scenario, hits, n)
	}

	stop := context.AfterFunc(ctx, d.Close)
	defer stop()
	var wg sync.WaitGroup
	// Local shards may run partitioned (ExecKernels): the overlay stays
	// out of j.opts so point keys and worker leases never see it —
	// Kernels/Intra are execution policy, and the reports are
	// kernel-count independent by the PDES byte-identity guarantee.
	execOpts := j.opts
	execOpts.Kernels, execOpts.Intra = c.cfg.ExecKernels, c.cfg.ExecIntra
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			run.RunShard(ctx, s, "local-"+strconv.Itoa(s), sw.NewShardTestbed(execOpts))
		}(s)
	}
	waitErr := run.Wait(ctx)
	wg.Wait()

	c.mu.Lock()
	// Harvest throughput observations for the next job's seeding, and
	// retire any leases still pointing at this job. The observations —
	// and each registered worker's points tally — are journaled, so a
	// restarted coordinator seeds its first dispatch with what this one
	// learned (reconnecting workers keep their sticky IDs and EWMAs).
	if rk, ok := d.(core.RateKeeper); ok {
		for w, r := range rk.Rates() {
			c.rates[w] = r
		}
	}
	for id, ws := range c.workers {
		c.pstore.PutWorker(persist.WorkerRecord{ID: id, Points: ws.points, RatePPS: c.rates[id]})
	}
	pd, _ := run.Progress()
	j.pointsDone = pd
	j.run = nil
	for k, rec := range c.leases {
		if rec.job == j {
			c.retireLeaseLocked(k, rec)
			// A lease outliving its job delivered nothing the run
			// waited for; refund the unserved part so the tenant is
			// billed only for work that reached its report.
			c.sched.Refund(rec.job.tenant.Name, rec.lease.Points()-countTrue(rec.streamed))
		}
	}
	c.mu.Unlock()
	if waitErr != nil {
		return nil, waitErr
	}
	return run.Report(ctx)
}

// finish records — and journals — a job's outcome. Freshly computed
// points were already persisted as they were recorded; a job every one
// of whose points came from the store is flagged Cached. A job cut down
// by coordinator shutdown (not its own failure) is journaled as queued,
// so a restart on the same store resumes it instead of reporting a
// phantom failure.
func (c *Coordinator) finish(j *job, rep core.Report, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j.elapsed = time.Since(j.start)
	if err != nil {
		j.status = JobFailed
		j.errStr = err.Error()
		if c.base.Err() != nil {
			c.pstore.PutJob(persist.JobRecord{
				ID: j.id, Scenario: j.scenario, Opts: optsJSON(j.wopts),
				Status: JobQueued, PointsTotal: j.pointsTotal,
				Tenant: j.tenant.Name,
			})
			c.cfg.Logf("dist: %s (%s) interrupted by shutdown after %d/%d point(s); journaled as queued for the next start",
				j.id, j.scenario, j.pointsDone, j.pointsTotal)
		} else {
			c.pstore.PutJob(c.jobRecordLocked(j))
			c.audit(j.tenant.Name, "job-failed", j.id, j.errStr)
			c.cfg.Logf("dist: %s (%s) failed after %s (%d/%d point(s) done): %v",
				j.id, j.scenario, j.elapsed.Round(time.Millisecond), j.pointsDone, j.pointsTotal, err)
		}
		c.finishTelemetryLocked(j)
		close(j.done)
		return
	}
	j.status = JobDone
	j.pointsDone = j.pointsTotal
	j.cached = j.pointsTotal > 0 && int(j.pointHits.Load()) == j.pointsTotal
	j.text = rep.Text()
	if b, jerr := rep.JSON(); jerr == nil {
		j.report = b
	} else {
		j.status = JobFailed
		j.errStr = "marshal: " + jerr.Error()
		c.pstore.PutJob(c.jobRecordLocked(j))
		c.audit(j.tenant.Name, "job-failed", j.id, j.errStr)
		c.finishTelemetryLocked(j)
		close(j.done)
		return
	}
	if sr, ok := rep.(core.ShardedReport); ok {
		j.timings = sr.ShardTimings()
	}
	c.pstore.PutJob(c.jobRecordLocked(j))
	c.audit(j.tenant.Name, "job-done", j.id, j.scenario)
	c.cfg.Logf("dist: %s (%s) done in %s across %d participant(s), %d/%d point(s) from the store",
		j.id, j.scenario, j.elapsed.Round(time.Millisecond), core.CountWorkers(j.timings),
		j.pointHits.Load(), j.pointsTotal)
	c.finishTelemetryLocked(j)
	close(j.done)
}

// finishTelemetryLocked records a job's terminal state in the metrics
// and on the event stream. A job journaled-as-queued by shutdown still
// counts as failed here — this process did not complete it.
func (c *Coordinator) finishTelemetryLocked(j *job) {
	c.met.jobsCompleted.With(j.status).Inc()
	c.met.jobDuration.Observe(j.elapsed.Seconds())
	c.jobEvent(j, j.status, j.errStr)
}

// WaitJob blocks until the job finishes or ctx is done, then returns
// its status.
func (c *Coordinator) WaitJob(ctx context.Context, id string) (*JobStatus, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dist: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.statusLocked(j)
	return &st, nil
}

func (c *Coordinator) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID: j.id, Scenario: j.scenario, Status: j.status,
		Error: j.errStr, Report: j.report, Text: j.text,
		Workers: core.CountWorkers(j.timings), Shards: j.timings,
		ElapsedMS: j.elapsed.Milliseconds(), Cached: j.cached,
		PointsDone: j.pointsDone, PointsTotal: j.pointsTotal,
		PointHits: int(j.pointHits.Load()),
		Tenant:    j.tenant.Name, Class: string(j.tenant.Class),
	}
	if j.status == JobRunning {
		st.ElapsedMS = time.Since(j.start).Milliseconds()
		if j.run != nil {
			st.PointsDone, _ = j.run.Progress()
		}
	}
	return st
}

// ------------------------------------------------------ HTTP handlers --

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	var req JobRequest
	if !readJSON(w, r, &req) {
		return
	}
	st, err := c.SubmitFor(t, req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	var st JobStatus
	if ok {
		st = c.statusLocked(j)
	}
	c.mu.Unlock()
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	var st StatusReply
	ss := c.store.stats()
	st.StorePoints, st.StoreCap, st.StoreHits, st.StoreMisses = ss.points, ss.cap, ss.hits, ss.misses
	st.StoreBytes, st.StoreBytesCap, st.StoreEntryCap, st.StoreRejected = ss.bytes, ss.capBytes, ss.entryCap, ss.rejected
	st.StoreEvictions = ss.evictions
	list := []*tenant.Tenant{c.defTenant}
	if c.tenants != nil {
		list = c.tenants.Tenants()
	}
	c.mu.Lock()
	st.Jobs = len(c.jobs)
	now := time.Now()
	for _, ws := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID: ws.id, LastSeenMSAgo: now.Sub(ws.lastSeen).Milliseconds(),
			Points: ws.points, RatePPS: c.rates[ws.id],
		})
	}
	for _, t := range list {
		st.Tenants = append(st.Tenants, TenantStatus{
			Name: t.Name, Class: string(t.Class), Weight: t.Weight(),
			InFlight: c.inflight[t.Name], MaxInFlight: t.MaxInFlight,
			JobsSubmitted:  t.Usage.JobsSubmitted.Load(),
			PointsRun:      t.Usage.PointsRun.Load(),
			PointsHit:      t.Usage.PointsHit.Load(),
			PointsStreamed: t.Usage.PointsStreamed.Load(),
			StoreBytes:     t.Usage.StoreBytes.Load(),
			StoreRejected:  t.Usage.StoreRejected.Load(),
		})
	}
	c.mu.Unlock()
	sort.Slice(st.Workers, func(i, k int) bool { return st.Workers[i].ID < st.Workers[k].ID })
	writeJSON(w, http.StatusOK, st)
}

// touchWorkerLocked updates the sticky worker record.
func (c *Coordinator) touchWorkerLocked(id string) *workerState {
	ws := c.workers[id]
	if ws == nil {
		ws = &workerState{id: id}
		c.workers[id] = ws
	}
	ws.lastSeen = time.Now()
	return ws
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	var req RegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		http.Error(w, "empty worker_id", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID)
	c.mu.Unlock()
	c.audit(t.Name, "worker-register", "", req.WorkerID)
	c.events.publish(Event{Type: "worker", Worker: req.WorkerID, Tenant: t.Name})
	c.cfg.Logf("dist: worker %s registered", req.WorkerID)
	writeJSON(w, http.StatusOK, RegisterReply{
		LeaseTTLMS: c.cfg.LeaseTTL.Milliseconds(),
		PollMS:     c.cfg.Poll.Milliseconds(),
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		http.Error(w, "empty worker_id", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID)
	// Weighted fair share over tenants with grantable work: group the
	// running distributed jobs by tenant (submit order within a tenant),
	// drop tenants at their in-flight cap or with drained queues, then
	// walk tenants in ascending virtual time — the first TryNext that
	// yields a lease wins and is charged against its tenant's clock.
	var names []string
	byTenant := make(map[string][]*job)
	for _, j := range c.order {
		if j.run == nil || j.status != JobRunning {
			continue
		}
		t := j.tenant
		if t.MaxInFlight > 0 && c.inflight[t.Name] >= t.MaxInFlight {
			continue
		}
		if pr, ok := j.run.Dispatcher().(core.PendingReporter); ok && pr.Pending() == 0 {
			continue
		}
		if _, seen := byTenant[t.Name]; !seen {
			names = append(names, t.Name)
		}
		byTenant[t.Name] = append(byTenant[t.Name], j)
	}
	for _, name := range c.sched.Order(names) {
		for _, j := range byTenant[name] {
			l, ok := j.run.Dispatcher().TryNext(req.WorkerID)
			if !ok {
				continue
			}
			rec := &leaseRec{job: j, lease: l, expires: time.Now().Add(c.cfg.LeaseTTL)}
			c.leases[leaseKey{j.id, l.Seq}] = rec
			c.inflight[name] += l.Points()
			c.sched.Charge(name, l.Points())
			c.met.leasesGranted.Inc()
			reply := LeaseReply{
				JobID: j.id, Scenario: j.scenario, Seq: l.Seq,
				Lo: l.Lo, Hi: l.Hi, Opts: j.wopts,
				TTLMS: c.cfg.LeaseTTL.Milliseconds(),
			}
			c.mu.Unlock()
			writeJSON(w, http.StatusOK, reply)
			return
		}
	}
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID)
	rec, ok := c.leases[leaseKey{req.JobID, req.Seq}]
	if ok {
		rec.expires = time.Now().Add(c.cfg.LeaseTTL)
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, HeartbeatReply{OK: ok})
}

// handlePoints records points streamed mid-lease: each is delivered
// into the run (partial progress the job status surfaces) and its wire
// bytes go into the content-addressed store immediately, so even a job
// that later fails leaves them behind. Streaming proves the worker is
// alive, so it extends the lease like a heartbeat. OK=false tells the
// worker its lease is gone and the rest of the work is wasted.
func (c *Coordinator) handlePoints(w http.ResponseWriter, r *http.Request) {
	var up PointsUpload
	if !readJSON(w, r, &up) {
		return
	}
	key := leaseKey{up.JobID, up.Seq}
	c.mu.Lock()
	if up.WorkerID != "" {
		c.touchWorkerLocked(up.WorkerID)
	}
	rec, ok := c.leases[key]
	var run *core.SweepRun
	var sw *core.Sweep
	var keys []string
	var j *job
	if ok {
		rec.expires = time.Now().Add(c.cfg.LeaseTTL)
		if rec.streamed == nil {
			rec.streamed = make([]bool, rec.lease.Points())
		}
		j = rec.job
		run, sw, keys = j.run, j.sw, j.keys
	}
	c.mu.Unlock()
	if !ok || run == nil || sw == nil {
		writeJSON(w, http.StatusOK, PointsReply{OK: false})
		return
	}
	for _, p := range up.Points {
		k := p.Index - rec.lease.Lo
		if k < 0 || k >= rec.lease.Points() {
			http.Error(w, fmt.Sprintf("point %d outside lease [%d,%d)", p.Index, rec.lease.Lo, rec.lease.Hi),
				http.StatusBadRequest)
			return
		}
		var val any
		if p.Error == "" {
			v, err := sw.DecodePoint(p.Value)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			val = v
			if p.Index < len(keys) {
				// The put precedes DeliverPoint, so run.OnPoint's
				// contains probe sees the point resident and skips its
				// local-compute accounting — this site is the sole
				// attribution point for streamed work.
				accepted, rejected := c.store.put(keys[p.Index], p.Value)
				if accepted {
					j.tenant.Usage.StoreBytes.Add(int64(len(p.Value)))
				}
				if rejected {
					j.tenant.Usage.StoreRejected.Add(1)
				}
			}
			j.mRun.Inc()
			j.mStreamed.Inc()
			j.tenant.Usage.PointsRun.Add(1)
			j.tenant.Usage.PointsStreamed.Add(1)
		}
		run.DeliverPoint(rec.lease, p.Index, val, p.Error)
		c.mu.Lock()
		// Re-check ownership: if the lease expired while we decoded,
		// the point is already delivered (harmless — the value is
		// deterministic) but must not count as streamed on a dead rec.
		if cur := c.leases[key]; cur == rec {
			rec.streamed[k] = true
		}
		c.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, PointsReply{OK: true})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var up ResultUpload
	if !readJSON(w, r, &up) {
		return
	}
	key := leaseKey{up.JobID, up.Seq}
	c.mu.Lock()
	if up.WorkerID != "" {
		c.touchWorkerLocked(up.WorkerID)
	}
	rec, ok := c.leases[key]
	if ok && up.WorkerID != "" {
		// Count points only for uploads that still own a lease, so a
		// retried upload (response lost, worker resent) does not
		// inflate the worker's tally in /v1/status.
		ws := c.workers[up.WorkerID]
		ws.points += len(up.Points)
		c.pstore.PutWorker(persist.WorkerRecord{ID: ws.id, Points: ws.points, RatePPS: c.rates[ws.id]})
	}
	if !ok {
		// Lease already completed (retried upload) or expired and
		// reassigned: acknowledge so the worker stops retrying, but
		// change nothing — idempotency.
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, ResultReply{Accepted: false, Duplicate: true})
		return
	}
	c.retireLeaseLocked(key, rec)
	j := rec.job
	run, sw, keys := j.run, j.sw, j.keys
	c.mu.Unlock()
	if run == nil || sw == nil {
		writeJSON(w, http.StatusOK, ResultReply{Accepted: false, Duplicate: true})
		return
	}
	n := rec.lease.Points()
	vals := make([]any, n)
	errStrs := make([]string, n)
	filled := make([]bool, n)
	for _, p := range up.Points {
		k := p.Index - rec.lease.Lo
		if k < 0 || k >= n {
			http.Error(w, fmt.Sprintf("point %d outside lease [%d,%d)", p.Index, rec.lease.Lo, rec.lease.Hi),
				http.StatusBadRequest)
			c.abandon(rec)
			return
		}
		filled[k] = true
		if p.Error != "" {
			errStrs[k] = p.Error
			continue
		}
		v, err := sw.DecodePoint(p.Value)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			c.abandon(rec)
			return
		}
		vals[k] = v
		fresh := len(rec.streamed) != n || !rec.streamed[k]
		if p.Index < len(keys) {
			accepted, rejected := c.store.put(keys[p.Index], p.Value)
			// Streamed points were attributed on receipt; only the
			// unstreamed remainder is new work (the put above merely
			// refreshes the streamed ones).
			if fresh && accepted {
				j.tenant.Usage.StoreBytes.Add(int64(len(p.Value)))
			}
			if fresh && rejected {
				j.tenant.Usage.StoreRejected.Add(1)
			}
		}
		if fresh {
			j.mRun.Inc()
			j.tenant.Usage.PointsRun.Add(1)
		}
	}
	for k, ok := range filled {
		if !ok {
			http.Error(w, fmt.Sprintf("upload missing point %d", rec.lease.Lo+k), http.StatusBadRequest)
			c.abandon(rec)
			return
		}
	}
	accepted := run.Deliver(rec.lease, vals, errStrs, time.Duration(up.ElapsedNS))
	writeJSON(w, http.StatusOK, ResultReply{Accepted: accepted, Duplicate: !accepted})
}

// abandon returns a lease's unstreamed points to its job's queue after
// a bad upload, so they are re-run rather than lost (points the worker
// streamed earlier are already delivered and stay). The requeued points
// are refunded: they will be charged again when re-leased.
func (c *Coordinator) abandon(rec *leaseRec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sched.Refund(rec.job.tenant.Name, rec.lease.Points()-countTrue(rec.streamed))
	if rec.job.run != nil {
		rec.job.run.Abandon(rec.lease, rec.streamed)
	}
}
