package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
)

// Config tunes a Coordinator.
type Config struct {
	// LeaseTTL is how long a worker may hold a lease without
	// heartbeating before its points are requeued (default 10s).
	LeaseTTL time.Duration
	// Poll is the idle-poll interval hint handed to workers (default
	// 200ms).
	Poll time.Duration
	// LocalShards is the number of in-process shards the coordinator
	// itself contributes to every distributed job, stealing from the
	// same queue as the remote workers. 0 defaults to 1 (so a
	// coordinator with no workers still makes progress); negative
	// disables local evaluation entirely (pure remote execution).
	LocalShards int
	// CacheSize bounds the content-addressed point store (finished
	// grid points, LRU-evicted; default 4096).
	CacheSize int
	// MaxJobs bounds concurrently running jobs (default 4); further
	// submissions queue FIFO.
	MaxJobs int
	// RetainJobs bounds how many finished (done/failed) jobs stay
	// pollable (default 256). Oldest finished jobs are pruned first;
	// queued and running jobs are never pruned, so coordinator memory
	// stays bounded however many clients submit.
	RetainJobs int
	// CacheBytes bounds the point store's total wire bytes (0: the
	// entry-count bound alone applies).
	CacheBytes int64
	// CacheEntryBytes caps one stored point's wire bytes; larger results
	// are not cached at all (0: no per-entry cap).
	CacheEntryBytes int
	// Store receives every coordinator state transition — job lifecycle,
	// finished points, worker stats — and provides the recovered state at
	// startup: finished points are served from the store again, jobs that
	// were queued or running resume, and reconnecting workers keep their
	// sticky IDs and throughput EWMAs. Nil defaults to a fresh in-memory
	// store (persist.NewMem()), which journals identically but recovers
	// nothing; hand a persist.Disk (gtwd -data-dir) for crash durability,
	// or share one Mem across two Coordinators to test recovery.
	Store persist.Store
	// Logf, when set, receives coordinator events (lease expiries,
	// job transitions). Nil discards.
	Logf func(format string, args ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.LocalShards == 0 {
		cfg.LocalShards = 1
	}
	if cfg.LocalShards < 0 {
		cfg.LocalShards = -1
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 4096
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// job is one submitted scenario run.
type job struct {
	id       string
	scenario string
	wopts    WireOptions
	opts     core.Options
	status   string
	cached   bool
	start    time.Time
	elapsed  time.Duration
	cancel   context.CancelFunc

	// run is non-nil while a distributable plan is executing: the
	// lease handlers dispatch from run.Dispatcher(). sw is the plan's
	// executable grid (the scenario itself, or its one-point wrapper).
	run *core.SweepRun
	sw  *core.Sweep
	// keys holds each grid point's content address.
	keys []string

	pointsTotal int
	pointsDone  int
	// pointHits counts grid points served from the store — at submit
	// time and at lease-grant pickup. Atomic because grant-time pickups
	// happen inside the dispatcher's lease path, where c.mu is held by
	// the caller (handleLease) or not held at all (local shards).
	pointHits atomic.Int64

	report  []byte
	text    string
	timings []core.ShardTiming
	errStr  string
	done    chan struct{}
}

// leaseKey identifies an outstanding remote lease.
type leaseKey struct {
	jobID string
	seq   uint64
}

// leaseRec tracks a lease checked out by a remote worker. streamed
// marks the points the worker already uploaded mid-lease (index k
// covers grid point lease.Lo+k): if the lease expires, only the
// unstreamed remainder is requeued.
type leaseRec struct {
	job      *job
	lease    core.Lease
	expires  time.Time
	streamed []bool
}

// workerState is the coordinator's record of a sticky worker ID.
type workerState struct {
	id       string
	lastSeen time.Time
	points   int
}

// Coordinator owns the job queue, the result cache, the worker
// registry and the outstanding-lease table, and serves the protocol
// over HTTP. Create with New, mount via Handler, stop with Close.
type Coordinator struct {
	cfg Config
	mux *http.ServeMux

	mu      sync.Mutex
	jobs    map[string]*job
	order   []*job // submit order, for lease scans and status
	workers map[string]*workerState
	leases  map[leaseKey]*leaseRec
	rates   map[string]float64 // cross-job worker throughput EWMAs
	jobSeq  int

	// store is the content-addressed point store; it has its own lock
	// and is safe to touch without c.mu.
	store *pointStore
	// pstore is the persistence journal (never nil: defaults to a fresh
	// persist.Mem). Implementations lock internally; safe without c.mu.
	pstore persist.Store

	sem       chan struct{}  // job-concurrency tokens
	wg        sync.WaitGroup // in-flight execute goroutines
	stopped   chan struct{}
	closeOnce sync.Once
	base      context.Context
	baseCxl   context.CancelFunc
}

// New builds a coordinator, recovers any state its Store journaled in a
// previous life (finished points, finished job reports, worker stats,
// and interrupted jobs — which are re-enqueued and resume with their
// already-streamed points served from the store), and starts the lease
// reaper.
func New(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:     cfg.withDefaults(),
		jobs:    make(map[string]*job),
		workers: make(map[string]*workerState),
		leases:  make(map[leaseKey]*leaseRec),
		rates:   make(map[string]float64),
		stopped: make(chan struct{}),
	}
	c.pstore = c.cfg.Store
	if c.pstore == nil {
		c.pstore = persist.NewMem()
	}
	c.sem = make(chan struct{}, c.cfg.MaxJobs)
	c.store = newPointStore(c.cfg.CacheSize, c.cfg.CacheBytes, c.cfg.CacheEntryBytes)
	// Every accepted point and every eviction is journaled, so the
	// durable image tracks the store's residency exactly.
	c.store.onPut = func(key string, val []byte) { c.pstore.PutPoint(key, val) }
	c.store.onEvict = func(key string) { c.pstore.DeletePoint(key) }
	resume := c.recoverState()
	c.base, c.baseCxl = context.WithCancel(context.Background())
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	c.mux.HandleFunc("GET /v1/status", c.handleStatus)
	c.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	c.mux.HandleFunc("POST /v1/workers/register", c.handleRegister)
	c.mux.HandleFunc("POST /v1/workers/lease", c.handleLease)
	c.mux.HandleFunc("POST /v1/workers/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /v1/workers/points", c.handlePoints)
	c.mux.HandleFunc("POST /v1/workers/result", c.handleResult)
	go c.reap()
	for _, j := range resume {
		c.cfg.Logf("dist: resuming %s (%s) recovered from the store", j.id, j.scenario)
		c.startJob(j)
	}
	return c
}

// recoverState seeds the coordinator from the journal's last image.
// Called from New before any handler runs, so no locking. Returns the
// non-terminal jobs to re-enqueue.
func (c *Coordinator) recoverState() []*job {
	st := c.pstore.Load()
	// Oldest-first seeding reproduces the store's LRU order (each seed
	// pushes to the front); a shrunken budget evicts — and journals —
	// the oldest overflow.
	for _, p := range st.Points {
		c.store.seed(p.Key, p.Val)
	}
	now := time.Now()
	for _, w := range st.Workers {
		c.workers[w.ID] = &workerState{id: w.ID, lastSeen: now, points: w.Points}
		if w.RatePPS > 0 {
			c.rates[w.ID] = w.RatePPS
		}
	}
	var resume []*job
	for _, jr := range st.Jobs {
		var wopts WireOptions
		if len(jr.Opts) > 0 {
			_ = json.Unmarshal(jr.Opts, &wopts)
		}
		j := &job{
			id: jr.ID, scenario: jr.Scenario, wopts: wopts, opts: wopts.Options(),
			status: jr.Status, cached: jr.Cached, start: now,
			elapsed:     time.Duration(jr.ElapsedMS) * time.Millisecond,
			pointsTotal: jr.PointsTotal, pointsDone: jr.PointsDone,
			report: jr.Report, text: jr.Text, errStr: jr.Error,
			done: make(chan struct{}),
		}
		j.pointHits.Store(int64(jr.PointHits))
		if len(jr.Timings) > 0 {
			_ = json.Unmarshal(jr.Timings, &j.timings)
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(jr.ID, "job-")); err == nil && n > c.jobSeq {
			c.jobSeq = n
		}
		switch jr.Status {
		case JobDone, JobFailed:
			close(j.done)
		default:
			// Queued or running at the crash: re-run from the top. The
			// points it streamed before dying are in the store, so the
			// resumed execution prefills them and re-leases only the
			// unstreamed tail.
			j.status = JobQueued
			j.pointsDone, j.report, j.text, j.errStr = 0, nil, "", ""
			j.pointHits.Store(0)
			resume = append(resume, j)
		}
		c.jobs[j.id] = j
		c.order = append(c.order, j)
	}
	return resume
}

// startJob launches a job's execute goroutine, tracked so Close can
// wait for in-flight jobs to wind down before the caller snapshots and
// closes the persistence store.
func (c *Coordinator) startJob(j *job) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.execute(j)
	}()
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close cancels running jobs, stops the reaper, and waits for in-flight
// job goroutines to finish journaling — interrupted jobs are recorded
// as queued, so a restart on the same store resumes them. The caller
// owns the persistence store's lifetime (close it after Close returns,
// so the final snapshot carries every last record).
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		c.baseCxl()
		close(c.stopped)
	})
	c.wg.Wait()
}

// reaperInterval derives the expiry scan period from the lease TTL.
func (c *Coordinator) reaperInterval() time.Duration {
	iv := c.cfg.LeaseTTL / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	return iv
}

// reap requeues leases whose workers stopped heartbeating, so their
// points are re-run by whoever asks next (another worker or a local
// shard).
func (c *Coordinator) reap() {
	t := time.NewTicker(c.reaperInterval())
	defer t.Stop()
	for {
		select {
		case <-c.stopped:
			return
		case now := <-t.C:
			c.mu.Lock()
			for k, rec := range c.leases {
				if now.Before(rec.expires) {
					continue
				}
				delete(c.leases, k)
				if rec.job.run != nil {
					// Points the worker streamed before dying are kept;
					// only the unfinished tail goes back to the queue.
					rec.job.run.Abandon(rec.lease, rec.streamed)
				}
				c.cfg.Logf("dist: lease %s/%d (points [%d,%d), worker %s) expired; requeued %d unstreamed point(s)",
					k.jobID, k.seq, rec.lease.Lo, rec.lease.Hi, rec.lease.Worker,
					rec.lease.Points()-countTrue(rec.streamed))
			}
			c.mu.Unlock()
		}
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// jobKey is the scenario+options identity used to share identical
// in-flight jobs. Workers/shards/dispatch are deliberately absent: they
// change only wall-clock time, never report bytes.
func jobKey(scenario string, w WireOptions) string {
	b, _ := json.Marshal(w)
	return scenario + "|" + string(b)
}

// Submit queues a scenario run (or shares an identical in-flight job)
// and returns its job ID. There is no whole-report cache: a repeated
// submission runs through the point store, where every grid point hits
// and only the merge is recomputed — the same path that serves partial
// overlaps.
func (c *Coordinator) Submit(req JobRequest) (*JobStatus, error) {
	if _, ok := core.Lookup(req.Scenario); !ok {
		return nil, fmt.Errorf("dist: unknown scenario %q", req.Scenario)
	}
	key := jobKey(req.Scenario, req.Opts)
	c.mu.Lock()
	defer c.mu.Unlock()
	// Identical job already queued or running: share it.
	for _, j := range c.order {
		if j.status != JobDone && j.status != JobFailed && jobKey(j.scenario, j.wopts) == key {
			st := c.statusLocked(j)
			return &st, nil
		}
	}
	j := c.newJobLocked(req)
	c.startJob(j)
	st := c.statusLocked(j)
	return &st, nil
}

func (c *Coordinator) newJobLocked(req JobRequest) *job {
	c.jobSeq++
	j := &job{
		id:       "job-" + strconv.Itoa(c.jobSeq),
		scenario: req.Scenario,
		wopts:    req.Opts,
		opts:     req.Opts.Options(),
		status:   JobQueued,
		start:    time.Now(),
		done:     make(chan struct{}),
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j)
	c.pstore.PutJob(c.jobRecordLocked(j))
	c.pruneJobsLocked()
	return j
}

// optsJSON marshals a job's wire options for its journal record.
func optsJSON(w WireOptions) json.RawMessage {
	b, _ := json.Marshal(w)
	return b
}

// jobRecordLocked builds the journal image of a job's current state.
func (c *Coordinator) jobRecordLocked(j *job) persist.JobRecord {
	rec := persist.JobRecord{
		ID: j.id, Scenario: j.scenario, Opts: optsJSON(j.wopts),
		Status: j.status, Error: j.errStr, Report: j.report, Text: j.text,
		ElapsedMS:   j.elapsed.Milliseconds(),
		PointsTotal: j.pointsTotal, PointsDone: j.pointsDone,
		PointHits: int(j.pointHits.Load()), Cached: j.cached,
	}
	if len(j.timings) > 0 {
		if b, err := json.Marshal(j.timings); err == nil {
			rec.Timings = b
		}
	}
	return rec
}

// pruneJobsLocked evicts the oldest finished jobs past the retention
// bound, so a long-running coordinator's memory is bounded by
// RetainJobs finished reports plus whatever is actually in flight.
// Queued and running jobs are never pruned (their leases and done
// channels are live).
func (c *Coordinator) pruneJobsLocked() {
	finished := 0
	for _, j := range c.order {
		if j.status == JobDone || j.status == JobFailed {
			finished++
		}
	}
	if finished <= c.cfg.RetainJobs {
		return
	}
	kept := c.order[:0]
	for _, j := range c.order {
		if finished > c.cfg.RetainJobs && (j.status == JobDone || j.status == JobFailed) {
			delete(c.jobs, j.id)
			c.pstore.DeleteJob(j.id)
			finished--
			continue
		}
		kept = append(kept, j)
	}
	// Drop the tail references so pruned jobs are collectable.
	for i := len(kept); i < len(c.order); i++ {
		c.order[i] = nil
	}
	c.order = kept
}

// execute runs one job to completion: every distributable plan — sweep
// grids and one-point-wrapped scenarios alike — goes through the shared
// lease queue and the point store; only sweeps without a wire codec
// fall back to a plain in-process run.
func (c *Coordinator) execute(j *job) {
	select {
	case c.sem <- struct{}{}:
		defer func() { <-c.sem }()
	case <-c.base.Done():
		c.finish(j, nil, c.base.Err())
		return
	}
	ctx, cancel := context.WithCancel(c.base)
	defer cancel()

	// A job recovered from the store may name a scenario this build no
	// longer registers; fail it loudly instead of executing a nil plan.
	s, ok := core.Lookup(j.scenario)
	if !ok {
		c.finish(j, nil, fmt.Errorf("dist: unknown scenario %q (recovered from a different build?)", j.scenario))
		return
	}

	c.mu.Lock()
	j.status = JobRunning
	j.start = time.Now()
	j.cancel = cancel
	plan := core.PlanFor(s)
	c.pstore.PutJob(c.jobRecordLocked(j))
	c.mu.Unlock()

	var rep core.Report
	var err error
	if plan.Distributable() {
		rep, err = c.runDistributed(ctx, j, plan)
	} else {
		rep, err = core.RunWith(ctx, j.scenario, j.opts)
	}
	c.finish(j, rep, err)
}

// runDistributed evaluates a plan's grid through the shared
// work-stealing queue: grid points already in the content-addressed
// store are prefilled (never leased), and the coordinator's local
// shards plus every polling worker lease the rest until the grid
// drains.
func (c *Coordinator) runDistributed(ctx context.Context, j *job, plan *core.Plan) (core.Report, error) {
	sw := plan.Sweep()
	points := sw.Points()
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("dist: scenario %q has an empty grid", j.scenario)
	}
	// Content-addressed reuse: a point another job already computed —
	// same scenario, same coordinates, same relevant options — is
	// decoded from its stored wire bytes exactly as a fresh worker
	// upload would be, so reports assembled either way are
	// byte-identical.
	keys := make([]string, n)
	done := make([]bool, n)
	prevals := make([]any, n)
	hits := 0
	for i, pt := range points {
		keys[i] = sw.PointKey(j.opts, pt)
		b, ok := c.store.get(keys[i])
		if !ok {
			continue
		}
		v, err := sw.DecodePoint(b)
		if err != nil {
			continue // stored under an incompatible build: treat as miss
		}
		done[i], prevals[i] = true, v
		hits++
	}
	shards := c.cfg.LocalShards
	if shards < 0 {
		shards = 0
	}
	if shards > n {
		shards = n
	}
	c.mu.Lock()
	sizeHint := shards + len(c.workers)
	c.mu.Unlock()
	inner := core.NewWorkStealingDispatcherSkipping(n, max(sizeHint, 1), done)
	// Seed the queue with what earlier jobs learned about each worker,
	// so a proven-fast worker gets large leases from its first ask.
	if rk, ok := inner.(core.RateKeeper); ok {
		c.mu.Lock()
		for w, r := range c.rates {
			rk.SeedRate(w, r)
		}
		c.mu.Unlock()
	}
	// Grant-time store pickup: a point that landed in the store after
	// this job's submit-time prefill — streamed by a concurrent job with
	// an overlapping grid — is served from the store the moment a lease
	// would cover it, instead of being re-simulated. The filter runs
	// inside the dispatcher's lease path (under c.mu when handleLease is
	// the caller), so it must not take c.mu itself.
	var run *core.SweepRun
	filter := func(l core.Lease) []bool {
		mask := make([]bool, l.Points())
		picked := 0
		for k := range mask {
			i := l.Lo + k
			b, ok := c.store.get(keys[i])
			if !ok {
				continue
			}
			v, err := sw.DecodePoint(b)
			if err != nil {
				continue
			}
			run.Prefill(i, v)
			mask[k] = true
			picked++
		}
		if picked == 0 {
			return nil
		}
		j.pointHits.Add(int64(picked))
		c.cfg.Logf("dist: %s (%s) picked up %d stored point(s) at lease grant", j.id, j.scenario, picked)
		return mask
	}
	d := core.NewFilteringDispatcher(inner, filter)
	run = core.NewSweepRun(sw, j.opts, d, shards)
	// Persist each freshly computed point the moment it is recorded —
	// local shard results included — so a crash loses at most the points
	// still being evaluated. Remotely delivered points are already in
	// the store (their wire bytes were put on upload receipt), which the
	// contains probe skips.
	run.OnPoint = func(i int, val any) {
		if keys[i] == "" || c.store.contains(keys[i]) {
			return
		}
		b, err := sw.EncodePoint(val)
		if err != nil {
			return
		}
		c.store.put(keys[i], b)
	}
	for i := range done {
		if done[i] {
			run.Prefill(i, prevals[i])
		}
	}
	c.mu.Lock()
	j.run = run
	j.sw = sw
	j.keys = keys
	j.pointsTotal = n
	j.pointHits.Store(int64(hits))
	c.mu.Unlock()
	if hits > 0 {
		c.cfg.Logf("dist: %s (%s) reusing %d/%d point(s) from the store", j.id, j.scenario, hits, n)
	}

	stop := context.AfterFunc(ctx, d.Close)
	defer stop()
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			run.RunShard(ctx, s, "local-"+strconv.Itoa(s), sw.NewShardTestbed(j.opts))
		}(s)
	}
	waitErr := run.Wait(ctx)
	wg.Wait()

	c.mu.Lock()
	// Harvest throughput observations for the next job's seeding, and
	// retire any leases still pointing at this job. The observations —
	// and each registered worker's points tally — are journaled, so a
	// restarted coordinator seeds its first dispatch with what this one
	// learned (reconnecting workers keep their sticky IDs and EWMAs).
	if rk, ok := d.(core.RateKeeper); ok {
		for w, r := range rk.Rates() {
			c.rates[w] = r
		}
	}
	for id, ws := range c.workers {
		c.pstore.PutWorker(persist.WorkerRecord{ID: id, Points: ws.points, RatePPS: c.rates[id]})
	}
	pd, _ := run.Progress()
	j.pointsDone = pd
	j.run = nil
	for k, rec := range c.leases {
		if rec.job == j {
			delete(c.leases, k)
		}
	}
	c.mu.Unlock()
	if waitErr != nil {
		return nil, waitErr
	}
	return run.Report(ctx)
}

// finish records — and journals — a job's outcome. Freshly computed
// points were already persisted as they were recorded; a job every one
// of whose points came from the store is flagged Cached. A job cut down
// by coordinator shutdown (not its own failure) is journaled as queued,
// so a restart on the same store resumes it instead of reporting a
// phantom failure.
func (c *Coordinator) finish(j *job, rep core.Report, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j.elapsed = time.Since(j.start)
	if err != nil {
		j.status = JobFailed
		j.errStr = err.Error()
		if c.base.Err() != nil {
			c.pstore.PutJob(persist.JobRecord{
				ID: j.id, Scenario: j.scenario, Opts: optsJSON(j.wopts),
				Status: JobQueued, PointsTotal: j.pointsTotal,
			})
			c.cfg.Logf("dist: %s (%s) interrupted by shutdown after %d/%d point(s); journaled as queued for the next start",
				j.id, j.scenario, j.pointsDone, j.pointsTotal)
		} else {
			c.pstore.PutJob(c.jobRecordLocked(j))
			c.cfg.Logf("dist: %s (%s) failed after %s (%d/%d point(s) done): %v",
				j.id, j.scenario, j.elapsed.Round(time.Millisecond), j.pointsDone, j.pointsTotal, err)
		}
		close(j.done)
		return
	}
	j.status = JobDone
	j.pointsDone = j.pointsTotal
	j.cached = j.pointsTotal > 0 && int(j.pointHits.Load()) == j.pointsTotal
	j.text = rep.Text()
	if b, jerr := rep.JSON(); jerr == nil {
		j.report = b
	} else {
		j.status = JobFailed
		j.errStr = "marshal: " + jerr.Error()
		c.pstore.PutJob(c.jobRecordLocked(j))
		close(j.done)
		return
	}
	if sr, ok := rep.(core.ShardedReport); ok {
		j.timings = sr.ShardTimings()
	}
	c.pstore.PutJob(c.jobRecordLocked(j))
	c.cfg.Logf("dist: %s (%s) done in %s across %d participant(s), %d/%d point(s) from the store",
		j.id, j.scenario, j.elapsed.Round(time.Millisecond), core.CountWorkers(j.timings),
		j.pointHits.Load(), j.pointsTotal)
	close(j.done)
}

// WaitJob blocks until the job finishes or ctx is done, then returns
// its status.
func (c *Coordinator) WaitJob(ctx context.Context, id string) (*JobStatus, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dist: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.statusLocked(j)
	return &st, nil
}

func (c *Coordinator) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID: j.id, Scenario: j.scenario, Status: j.status,
		Error: j.errStr, Report: j.report, Text: j.text,
		Workers: core.CountWorkers(j.timings), Shards: j.timings,
		ElapsedMS: j.elapsed.Milliseconds(), Cached: j.cached,
		PointsDone: j.pointsDone, PointsTotal: j.pointsTotal,
		PointHits: int(j.pointHits.Load()),
	}
	if j.status == JobRunning {
		st.ElapsedMS = time.Since(j.start).Milliseconds()
		if j.run != nil {
			st.PointsDone, _ = j.run.Progress()
		}
	}
	return st
}

// ------------------------------------------------------ HTTP handlers --

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !readJSON(w, r, &req) {
		return
	}
	st, err := c.Submit(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	var st JobStatus
	if ok {
		st = c.statusLocked(j)
	}
	c.mu.Unlock()
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	var st StatusReply
	ss := c.store.stats()
	st.StorePoints, st.StoreCap, st.StoreHits, st.StoreMisses = ss.points, ss.cap, ss.hits, ss.misses
	st.StoreBytes, st.StoreBytesCap, st.StoreEntryCap, st.StoreRejected = ss.bytes, ss.capBytes, ss.entryCap, ss.rejected
	c.mu.Lock()
	st.Jobs = len(c.jobs)
	now := time.Now()
	for _, ws := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID: ws.id, LastSeenMSAgo: now.Sub(ws.lastSeen).Milliseconds(),
			Points: ws.points, RatePPS: c.rates[ws.id],
		})
	}
	c.mu.Unlock()
	sort.Slice(st.Workers, func(i, k int) bool { return st.Workers[i].ID < st.Workers[k].ID })
	writeJSON(w, http.StatusOK, st)
}

// touchWorkerLocked updates the sticky worker record.
func (c *Coordinator) touchWorkerLocked(id string) *workerState {
	ws := c.workers[id]
	if ws == nil {
		ws = &workerState{id: id}
		c.workers[id] = ws
	}
	ws.lastSeen = time.Now()
	return ws
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		http.Error(w, "empty worker_id", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID)
	c.mu.Unlock()
	c.cfg.Logf("dist: worker %s registered", req.WorkerID)
	writeJSON(w, http.StatusOK, RegisterReply{
		LeaseTTLMS: c.cfg.LeaseTTL.Milliseconds(),
		PollMS:     c.cfg.Poll.Milliseconds(),
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		http.Error(w, "empty worker_id", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID)
	// FIFO over running distributed jobs: oldest submitted first.
	for _, j := range c.order {
		if j.run == nil || j.status != JobRunning {
			continue
		}
		l, ok := j.run.Dispatcher().TryNext(req.WorkerID)
		if !ok {
			continue
		}
		rec := &leaseRec{job: j, lease: l, expires: time.Now().Add(c.cfg.LeaseTTL)}
		c.leases[leaseKey{j.id, l.Seq}] = rec
		reply := LeaseReply{
			JobID: j.id, Scenario: j.scenario, Seq: l.Seq,
			Lo: l.Lo, Hi: l.Hi, Opts: j.wopts,
			TTLMS: c.cfg.LeaseTTL.Milliseconds(),
		}
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, reply)
		return
	}
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID)
	rec, ok := c.leases[leaseKey{req.JobID, req.Seq}]
	if ok {
		rec.expires = time.Now().Add(c.cfg.LeaseTTL)
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, HeartbeatReply{OK: ok})
}

// handlePoints records points streamed mid-lease: each is delivered
// into the run (partial progress the job status surfaces) and its wire
// bytes go into the content-addressed store immediately, so even a job
// that later fails leaves them behind. Streaming proves the worker is
// alive, so it extends the lease like a heartbeat. OK=false tells the
// worker its lease is gone and the rest of the work is wasted.
func (c *Coordinator) handlePoints(w http.ResponseWriter, r *http.Request) {
	var up PointsUpload
	if !readJSON(w, r, &up) {
		return
	}
	key := leaseKey{up.JobID, up.Seq}
	c.mu.Lock()
	if up.WorkerID != "" {
		c.touchWorkerLocked(up.WorkerID)
	}
	rec, ok := c.leases[key]
	var run *core.SweepRun
	var sw *core.Sweep
	var keys []string
	if ok {
		rec.expires = time.Now().Add(c.cfg.LeaseTTL)
		if rec.streamed == nil {
			rec.streamed = make([]bool, rec.lease.Points())
		}
		run, sw, keys = rec.job.run, rec.job.sw, rec.job.keys
	}
	c.mu.Unlock()
	if !ok || run == nil || sw == nil {
		writeJSON(w, http.StatusOK, PointsReply{OK: false})
		return
	}
	for _, p := range up.Points {
		k := p.Index - rec.lease.Lo
		if k < 0 || k >= rec.lease.Points() {
			http.Error(w, fmt.Sprintf("point %d outside lease [%d,%d)", p.Index, rec.lease.Lo, rec.lease.Hi),
				http.StatusBadRequest)
			return
		}
		var val any
		if p.Error == "" {
			v, err := sw.DecodePoint(p.Value)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			val = v
			if p.Index < len(keys) {
				c.store.put(keys[p.Index], p.Value)
			}
		}
		run.DeliverPoint(rec.lease, p.Index, val, p.Error)
		c.mu.Lock()
		// Re-check ownership: if the lease expired while we decoded,
		// the point is already delivered (harmless — the value is
		// deterministic) but must not count as streamed on a dead rec.
		if cur := c.leases[key]; cur == rec {
			rec.streamed[k] = true
		}
		c.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, PointsReply{OK: true})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var up ResultUpload
	if !readJSON(w, r, &up) {
		return
	}
	key := leaseKey{up.JobID, up.Seq}
	c.mu.Lock()
	if up.WorkerID != "" {
		c.touchWorkerLocked(up.WorkerID)
	}
	rec, ok := c.leases[key]
	if ok && up.WorkerID != "" {
		// Count points only for uploads that still own a lease, so a
		// retried upload (response lost, worker resent) does not
		// inflate the worker's tally in /v1/status.
		ws := c.workers[up.WorkerID]
		ws.points += len(up.Points)
		c.pstore.PutWorker(persist.WorkerRecord{ID: ws.id, Points: ws.points, RatePPS: c.rates[ws.id]})
	}
	if !ok {
		// Lease already completed (retried upload) or expired and
		// reassigned: acknowledge so the worker stops retrying, but
		// change nothing — idempotency.
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, ResultReply{Accepted: false, Duplicate: true})
		return
	}
	delete(c.leases, key)
	j := rec.job
	run, sw, keys := j.run, j.sw, j.keys
	c.mu.Unlock()
	if run == nil || sw == nil {
		writeJSON(w, http.StatusOK, ResultReply{Accepted: false, Duplicate: true})
		return
	}
	n := rec.lease.Points()
	vals := make([]any, n)
	errStrs := make([]string, n)
	filled := make([]bool, n)
	for _, p := range up.Points {
		k := p.Index - rec.lease.Lo
		if k < 0 || k >= n {
			http.Error(w, fmt.Sprintf("point %d outside lease [%d,%d)", p.Index, rec.lease.Lo, rec.lease.Hi),
				http.StatusBadRequest)
			c.abandon(rec)
			return
		}
		filled[k] = true
		if p.Error != "" {
			errStrs[k] = p.Error
			continue
		}
		v, err := sw.DecodePoint(p.Value)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			c.abandon(rec)
			return
		}
		vals[k] = v
		if p.Index < len(keys) {
			c.store.put(keys[p.Index], p.Value)
		}
	}
	for k, ok := range filled {
		if !ok {
			http.Error(w, fmt.Sprintf("upload missing point %d", rec.lease.Lo+k), http.StatusBadRequest)
			c.abandon(rec)
			return
		}
	}
	accepted := run.Deliver(rec.lease, vals, errStrs, time.Duration(up.ElapsedNS))
	writeJSON(w, http.StatusOK, ResultReply{Accepted: accepted, Duplicate: !accepted})
}

// abandon returns a lease's unstreamed points to its job's queue after
// a bad upload, so they are re-run rather than lost (points the worker
// streamed earlier are already delivered and stay).
func (c *Coordinator) abandon(rec *leaseRec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec.job.run != nil {
		rec.job.run.Abandon(rec.lease, rec.streamed)
	}
}
