package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
)

// This file tests the durable-coordinator subsystem: a coordinator's
// state (finished points, job lifecycle, worker stats) journaled to a
// persist.Store survives a restart, interrupted jobs resume re-running
// only what was never streamed, and the resumed reports stay
// byte-identical to uninterrupted runs. A shared persist.Mem plays the
// role of the surviving disk: handing the same Mem to a second
// Coordinator is exactly the recovery a persist.Disk performs from its
// snapshot+log (TestMemAndDiskAgreeOnState pins that equivalence; the
// disk end-to-end path is TestDiskBackedCoordinatorSurvivesRestart and
// the CI kill-and-restart smoke).

// A coordinator restarted on the same store serves finished points from
// the recovered cache (resubmission hits every point), keeps finished
// job reports pollable under their old IDs, and continues job numbering
// instead of reissuing IDs.
func TestCoordinatorRestartServesRecoveredPoints(t *testing.T) {
	registerCountingSweep("dist-test-recover", 6, 0)
	mem := persist.NewMem()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	a := newCluster(t, Config{LocalShards: 2, Store: mem})
	first, err := a.cl.Run(ctx, JobRequest{Scenario: "dist-test-recover", Opts: WireOptions{Frames: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != JobDone {
		t.Fatalf("first run: %s (%s)", first.Status, first.Error)
	}
	a.c.Close() // clean shutdown; the journal already has every point

	b := newCluster(t, Config{LocalShards: 2, Store: mem})
	// The finished job is pollable on the restarted coordinator, report
	// intact.
	old, err := b.cl.Job(ctx, first.ID)
	if err != nil {
		t.Fatalf("finished job lost across restart: %v", err)
	}
	if old.Status != JobDone || !bytes.Equal(old.Report, first.Report) || old.Text != first.Text {
		t.Errorf("recovered job differs: %+v", old)
	}
	// A resubmission (different-but-irrelevant options, so it is a new
	// job) is served entirely from the recovered store.
	second, err := b.cl.Run(ctx, JobRequest{Scenario: "dist-test-recover", Opts: WireOptions{Frames: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if second.PointHits != 6 || !second.Cached {
		t.Errorf("resubmission after restart: %d point hits (cached=%v), want all 6 from the recovered store",
			second.PointHits, second.Cached)
	}
	if !bytes.Equal(second.Report, first.Report) {
		t.Errorf("recovered-store report differs:\n%s\nvs\n%s", second.Report, first.Report)
	}
	if second.ID == first.ID {
		t.Error("restart reissued a live job ID")
	}
}

// The centerpiece fault injection: the coordinator is killed mid-sweep
// after a worker streamed part of a lease. Restarted on the same store,
// the interrupted job resumes under its old ID, re-runs ONLY the
// never-streamed points (the streamed ones are recovered from the
// store), and its final report is byte-identical to an uninterrupted
// single-kernel run.
func TestCoordinatorKilledMidSweepResumesOnlyUnstreamedTail(t *testing.T) {
	counts := registerCountingSweep("dist-test-coord-kill", 12, 0)
	s, _ := core.Lookup("dist-test-coord-kill")
	sw := s.(*core.Sweep)
	mem := persist.NewMem()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	a := newCluster(t, Config{LocalShards: -1, Store: mem})
	st, err := a.cl.Submit(ctx, JobRequest{Scenario: "dist-test-coord-kill"})
	if err != nil {
		t.Fatal(err)
	}
	// Pull a lease by hand and stream a strict prefix of it, never
	// completing the lease.
	var lease LeaseReply
	deadline := time.Now().Add(10 * time.Second)
	for {
		if postJSONT(t, a, "/v1/workers/lease", LeaseRequest{WorkerID: "doomed"}, &lease) == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease became available")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lease.Hi-lease.Lo < 4 {
		t.Fatalf("first lease [%d,%d) too small to stream a strict prefix", lease.Lo, lease.Hi)
	}
	vals, errStrs, err := sw.RunLease(context.Background(), lease.Opts.Options(), lease.Lo, lease.Lo+3)
	if err != nil {
		t.Fatal(err)
	}
	up := PointsUpload{WorkerID: "doomed", JobID: lease.JobID, Seq: lease.Seq}
	for k := range vals {
		b, err := sw.EncodePoint(vals[k])
		if err != nil {
			t.Fatal(err)
		}
		up.Points = append(up.Points, PointResult{Index: lease.Lo + k, Value: b, Error: errStrs[k]})
	}
	var preply PointsReply
	postJSONT(t, a, "/v1/workers/points", up, &preply)
	if !preply.OK {
		t.Fatal("stream upload rejected")
	}
	// Kill the coordinator mid-job. Close cancels the run and waits for
	// the execute goroutine, which journals the interrupted job as
	// queued.
	a.c.Close()

	// Restart on the same store: the job must come back under its old
	// ID and resume on its own.
	b := newCluster(t, Config{LocalShards: -1, Store: mem})
	b.startWorker(t, NewWorker(""))
	final, err := b.cl.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("interrupted job lost across restart: %v", err)
	}
	if final.Status != JobDone {
		t.Fatalf("resumed job: %s (%s)", final.Status, final.Error)
	}
	if final.PointHits != 3 {
		t.Errorf("resumed job hit %d stored point(s), want exactly the 3 streamed before the kill", final.PointHits)
	}
	for i := 0; i < 12; i++ {
		want := 1
		if got := counts(i); got != want {
			t.Errorf("point %d evaluated %d time(s) across the kill+restart, want exactly once", i, got)
		}
	}
	wantJSON, wantText := localReport(t, "dist-test-coord-kill", WireOptions{}.Options())
	if !bytes.Equal(final.Report, wantJSON) {
		t.Errorf("resumed report differs from uninterrupted run:\n%s\nvs\n%s", final.Report, wantJSON)
	}
	if final.Text != wantText {
		t.Errorf("resumed text differs from uninterrupted run")
	}
}

// The disk store end to end: a coordinator journaling to a persist.Disk
// is killed (store closed without the coordinator finishing cleanly is
// covered by the WAL tests; here the full clean path), reopened, and
// the new coordinator serves the recovered points.
func TestDiskBackedCoordinatorSurvivesRestart(t *testing.T) {
	registerCountingSweep("dist-test-disk", 4, 0)
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	d1, err := persist.Open(dir, persist.DiskOptions{SnapshotEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	a := newCluster(t, Config{LocalShards: 2, Store: d1})
	first, err := a.cl.Run(ctx, JobRequest{Scenario: "dist-test-disk", Opts: WireOptions{Frames: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != JobDone {
		t.Fatalf("first run: %s (%s)", first.Status, first.Error)
	}
	a.c.Close()
	if err := d1.Close(); err != nil { // gtwd's shutdown order: coordinator, then store
		t.Fatal(err)
	}

	d2, err := persist.Open(dir, persist.DiskOptions{SnapshotEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d2.Close() })
	b := newCluster(t, Config{LocalShards: 2, Store: d2})
	second, err := b.cl.Run(ctx, JobRequest{Scenario: "dist-test-disk", Opts: WireOptions{Frames: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if second.PointHits != 4 || !second.Cached {
		t.Errorf("disk-recovered resubmission: %d hits (cached=%v), want all 4", second.PointHits, second.Cached)
	}
	if !bytes.Equal(second.Report, first.Report) {
		t.Errorf("disk-recovered report differs:\n%s\nvs\n%s", second.Report, first.Report)
	}
}

// Worker identity survives the coordinator: a restarted coordinator
// remembers a sticky worker's points tally and throughput EWMA, so a
// reconnecting worker resumes with its earned lease sizing.
func TestWorkerStatsRecoveredAcrossRestart(t *testing.T) {
	registerWireSweep("dist-test-wstats", 8, 5*time.Millisecond)
	mem := persist.NewMem()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	a := newCluster(t, Config{LocalShards: -1, Store: mem})
	w := NewWorker("")
	a.startWorker(t, w)
	if st, err := a.cl.Run(ctx, JobRequest{Scenario: "dist-test-wstats"}); err != nil || st.Status != JobDone {
		t.Fatalf("seed job: %v / %+v", err, st)
	}
	a.c.Close()

	b := newCluster(t, Config{LocalShards: -1, Store: mem})
	st, err := b.cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var found *WorkerStatus
	for i := range st.Workers {
		if st.Workers[i].ID == w.ID {
			found = &st.Workers[i]
		}
	}
	if found == nil {
		t.Fatalf("sticky worker %s lost across restart: %+v", w.ID, st.Workers)
	}
	if found.Points == 0 {
		t.Errorf("recovered worker lost its points tally: %+v", found)
	}
	if found.RatePPS <= 0 {
		t.Errorf("recovered worker lost its throughput EWMA: %+v", found)
	}
}

// Mid-job store pickup, deterministically: points that land in the
// store AFTER a job's submit-time prefill are claimed at lease-grant
// time — granted leases exclude them, they count as hits, and the
// report still assembles byte-identically.
func TestLeaseGrantPicksUpPointsStoredMidJob(t *testing.T) {
	counts := registerCountingSweep("dist-test-pickup", 12, 0)
	s, _ := core.Lookup("dist-test-pickup")
	sw := s.(*core.Sweep)
	tc := newCluster(t, Config{LocalShards: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st, err := tc.cl.Submit(ctx, JobRequest{Scenario: "dist-test-pickup", Opts: WireOptions{Frames: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the run exists (submit-time prefill done — with an
	// empty store it prefills nothing).
	deadline := time.Now().Add(10 * time.Second)
	for {
		mid, err := tc.cl.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if mid.PointsTotal == 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started dispatching")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Now simulate a concurrent overlapping job finishing points 2, 3
	// and 7: their wire bytes land in the store mid-job.
	pts := sw.Points()
	stored := []int{2, 3, 7}
	opts := WireOptions{Frames: 1}.Options()
	for _, i := range stored {
		v, err := sw.EvalPoint(context.Background(), nil, opts, i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sw.EncodePoint(v)
		if err != nil {
			t.Fatal(err)
		}
		tc.c.store.put(sw.PointKey(opts, pts[i]), b)
	}
	// Drain by hand: no granted lease may include a stored point.
	uploads := leasePump(t, tc, sw, "pump")
	for _, up := range uploads {
		for _, p := range up.Points {
			for _, i := range stored {
				if p.Index == i {
					t.Errorf("lease [%d,%d) included point %d, which was in the store at grant time",
						up.Lo, up.Hi, i)
				}
			}
		}
	}
	final, err := tc.cl.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobDone {
		t.Fatalf("job: %s (%s)", final.Status, final.Error)
	}
	if final.PointHits != len(stored) {
		t.Errorf("point hits = %d, want %d grant-time pickups", final.PointHits, len(stored))
	}
	// The stored points were evaluated once (by this test's hand) plus
	// never by the pump; every other point exactly once by the pump.
	for i := 0; i < 12; i++ {
		if got := counts(i); got != 1 {
			t.Errorf("point %d evaluated %d time(s), want 1", i, got)
		}
	}
	wantJSON, _ := localReport(t, "dist-test-pickup", WireOptions{Frames: 1}.Options())
	if !bytes.Equal(final.Report, wantJSON) {
		t.Errorf("report with mid-job pickup differs:\n%s\nvs\n%s", final.Report, wantJSON)
	}
}

// Two overlapping jobs racing: same option-independent sweep submitted
// under different (irrelevant) options, running concurrently across
// workers. Both must complete byte-identically — streamed points of one
// job flowing into the other through the store mid-run must never
// corrupt either report.
func TestOverlappingJobsRacingShareTheStore(t *testing.T) {
	registerCountingSweep("dist-test-race", 10, 10*time.Millisecond)
	tc := newCluster(t, Config{LocalShards: -1, MaxJobs: 2})
	tc.startWorker(t, NewWorker(""))
	tc.startWorker(t, NewWorker(""))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	finals := make([]*JobStatus, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			finals[i], errs[i] = tc.cl.Run(ctx,
				JobRequest{Scenario: "dist-test-race", Opts: WireOptions{Frames: i + 1}})
		}(i)
	}
	wg.Wait()
	wantJSON, _ := localReport(t, "dist-test-race", WireOptions{Frames: 1}.Options())
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if finals[i].Status != JobDone {
			t.Fatalf("job %d: %s (%s)", i, finals[i].Status, finals[i].Error)
		}
		if !bytes.Equal(finals[i].Report, wantJSON) {
			t.Errorf("racing job %d report differs from single-kernel run:\n%s\nvs\n%s",
				i, finals[i].Report, wantJSON)
		}
	}
	t.Logf("racing jobs: hits=%d/%d", finals[0].PointHits, finals[1].PointHits)
}

// Batch streaming: a worker with a batch window coalesces points into
// multi-point stream bodies — strictly fewer uploads than points — and
// the job's report stays byte-identical.
func TestBatchStreamingCoalescesUploads(t *testing.T) {
	registerWireSweep("dist-test-batch", 16, 2*time.Millisecond)
	var bodies, streamed atomic.Int64
	var maxBody atomic.Int64
	cfg := Config{LocalShards: -1, LeaseTTL: 500 * time.Millisecond, Poll: 10 * time.Millisecond, Logf: t.Logf}
	c := New(cfg)
	count := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/workers/points" {
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			r.Body = io.NopCloser(bytes.NewReader(body))
			var up PointsUpload
			if json.Unmarshal(body, &up) == nil {
				bodies.Add(1)
				streamed.Add(int64(len(up.Points)))
				for {
					cur := maxBody.Load()
					if int64(len(up.Points)) <= cur || maxBody.CompareAndSwap(cur, int64(len(up.Points))) {
						break
					}
				}
			}
		}
		c.Handler().ServeHTTP(w, r)
	})
	srv := httptest.NewServer(count)
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	tc := &testCluster{c: c, srv: srv, cl: &Client{Base: srv.URL, Poll: 10 * time.Millisecond}}

	w := NewWorker("")
	w.BatchWindow = 10 * time.Second // points finish in ms: only BatchMax flushes
	w.BatchMax = 4
	tc.startWorker(t, w)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-batch"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != JobDone {
		t.Fatalf("batched job: %s (%s)", st.Status, st.Error)
	}
	if bodies.Load() == 0 || streamed.Load() == 0 {
		t.Fatal("nothing was streamed; batching proved nothing")
	}
	if bodies.Load() >= streamed.Load() {
		t.Errorf("%d stream bodies for %d points: no coalescing happened", bodies.Load(), streamed.Load())
	}
	if maxBody.Load() < 2 || maxBody.Load() > 4 {
		t.Errorf("largest stream body carried %d point(s), want between 2 and BatchMax=4", maxBody.Load())
	}
	wantJSON, _ := localReport(t, "dist-test-batch", WireOptions{}.Options())
	if !bytes.Equal(st.Report, wantJSON) {
		t.Errorf("batched report differs from single-kernel run:\n%s\nvs\n%s", st.Report, wantJSON)
	}
}

// Batch streaming under fault: a worker dies holding coalesced-but-
// unflushed points. Flushed batches are never re-run; the unflushed
// point and the unevaluated tail re-run elsewhere; the report stays
// byte-identical.
func TestBatchStreamingDeathReRunsOnlyUnflushedTail(t *testing.T) {
	counts := registerCountingSweep("dist-test-batch-kill", 12, 10*time.Millisecond)
	tc := newCluster(t, Config{LocalShards: -1, LeaseTTL: 250 * time.Millisecond})

	var died atomic.Bool
	var killLo, killHi atomic.Int64
	w := NewWorker("")
	w.BatchWindow = 10 * time.Second // only BatchMax flushes
	w.BatchMax = 4
	// Die once after evaluating 5 points of a ≥6-point lease: points
	// 0–3 of the lease flushed as one batch, point 4 evaluated but
	// pending, the rest never evaluated.
	w.DropAfterPoints = func(l LeaseReply, evaluated int) bool {
		if evaluated == 5 && l.Hi-l.Lo >= 6 && died.CompareAndSwap(false, true) {
			killLo.Store(int64(l.Lo))
			killHi.Store(int64(l.Hi))
			return true
		}
		return false
	}
	tc.startWorker(t, w)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-batch-kill"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != JobDone {
		t.Fatalf("job did not survive the batched death: %s (%s)", st.Status, st.Error)
	}
	if !died.Load() {
		t.Fatal("fault was never injected; test proved nothing")
	}
	lo := int(killLo.Load())
	for i := 0; i < 12; i++ {
		got := counts(i)
		want := 1
		if i == lo+4 {
			// Evaluated by the victim but never flushed: part of the
			// unstreamed tail, so it re-runs exactly once more.
			want = 2
		}
		if got != want {
			t.Errorf("point %d evaluated %d time(s), want %d (victim held [%d,%d), flushed [%d,%d))",
				i, got, want, lo, killHi.Load(), lo, lo+4)
		}
	}
	wantJSON, _ := localReport(t, "dist-test-batch-kill", WireOptions{}.Options())
	if !bytes.Equal(st.Report, wantJSON) {
		t.Errorf("report after batched death differs:\n%s\nvs\n%s", st.Report, wantJSON)
	}
}
