package dist

import (
	"fmt"
	"testing"
)

// The point store's contract: content hits and misses are counted,
// entries refresh on use, and eviction is least-recently-used over the
// capacity bound.
func TestPointStoreHitMissEviction(t *testing.T) {
	s := newPointStore(3)
	if _, ok := s.get("k1"); ok {
		t.Fatal("empty store served a hit")
	}
	s.put("k1", []byte("v1"))
	s.put("k2", []byte("v2"))
	s.put("k3", []byte("v3"))
	if v, ok := s.get("k1"); !ok || string(v) != "v1" {
		t.Fatalf("get(k1) = %q, %v", v, ok)
	}
	// k1 is now most recently used; inserting a fourth entry evicts k2.
	s.put("k4", []byte("v4"))
	if _, ok := s.get("k2"); ok {
		t.Error("least recently used entry k2 survived past capacity")
	}
	for _, k := range []string{"k1", "k3", "k4"} {
		if _, ok := s.get(k); !ok {
			t.Errorf("entry %s evicted out of LRU order", k)
		}
	}
	points, capacity, hits, misses := s.stats()
	if points != 3 || capacity != 3 {
		t.Errorf("stats: %d/%d entries, want 3/3", points, capacity)
	}
	if hits != 4 || misses != 2 {
		t.Errorf("stats: %d hits %d misses, want 4/2", hits, misses)
	}
}

// Refreshing a key replaces its value without growing the store, and
// unkeyable (empty) entries are ignored.
func TestPointStoreRefreshAndEmptyKey(t *testing.T) {
	s := newPointStore(2)
	s.put("k", []byte("old"))
	s.put("k", []byte("new"))
	if v, _ := s.get("k"); string(v) != "new" {
		t.Errorf("refresh kept %q", v)
	}
	if n, _, _, _ := s.stats(); n != 1 {
		t.Errorf("refresh grew the store to %d entries", n)
	}
	s.put("", []byte("x"))
	s.put("e", nil)
	if n, _, _, _ := s.stats(); n != 1 {
		t.Error("empty key or value was stored")
	}
	if _, ok := s.get(""); ok {
		t.Error("empty key served a hit")
	}
}

// Capacity is bounded under sustained insertion.
func TestPointStoreBounded(t *testing.T) {
	s := newPointStore(8)
	for i := 0; i < 100; i++ {
		s.put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if n, _, _, _ := s.stats(); n != 8 {
		t.Errorf("store holds %d entries past capacity 8", n)
	}
}
