package dist

import (
	"fmt"
	"testing"
)

// The point store's contract: content hits and misses are counted,
// entries refresh on use, and eviction is least-recently-used over the
// capacity bound.
func TestPointStoreHitMissEviction(t *testing.T) {
	s := newPointStore(3, 0, 0)
	if _, ok := s.get("k1"); ok {
		t.Fatal("empty store served a hit")
	}
	s.put("k1", []byte("v1"))
	s.put("k2", []byte("v2"))
	s.put("k3", []byte("v3"))
	if v, ok := s.get("k1"); !ok || string(v) != "v1" {
		t.Fatalf("get(k1) = %q, %v", v, ok)
	}
	// k1 is now most recently used; inserting a fourth entry evicts k2.
	s.put("k4", []byte("v4"))
	if _, ok := s.get("k2"); ok {
		t.Error("least recently used entry k2 survived past capacity")
	}
	for _, k := range []string{"k1", "k3", "k4"} {
		if _, ok := s.get(k); !ok {
			t.Errorf("entry %s evicted out of LRU order", k)
		}
	}
	ss := s.stats()
	if ss.points != 3 || ss.cap != 3 {
		t.Errorf("stats: %d/%d entries, want 3/3", ss.points, ss.cap)
	}
	if ss.hits != 4 || ss.misses != 2 {
		t.Errorf("stats: %d hits %d misses, want 4/2", ss.hits, ss.misses)
	}
}

// Refreshing a key replaces its value without growing the store, and
// unkeyable (empty) entries are ignored.
func TestPointStoreRefreshAndEmptyKey(t *testing.T) {
	s := newPointStore(2, 0, 0)
	s.put("k", []byte("old"))
	s.put("k", []byte("new"))
	if v, _ := s.get("k"); string(v) != "new" {
		t.Errorf("refresh kept %q", v)
	}
	if n := s.stats().points; n != 1 {
		t.Errorf("refresh grew the store to %d entries", n)
	}
	s.put("", []byte("x"))
	s.put("e", nil)
	if n := s.stats().points; n != 1 {
		t.Error("empty key or value was stored")
	}
	if _, ok := s.get(""); ok {
		t.Error("empty key served a hit")
	}
}

// Capacity is bounded under sustained insertion.
func TestPointStoreBounded(t *testing.T) {
	s := newPointStore(8, 0, 0)
	for i := 0; i < 100; i++ {
		s.put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if n := s.stats().points; n != 8 {
		t.Errorf("store holds %d entries past capacity 8", n)
	}
}

// The byte budget: total stored wire bytes stay under the budget via
// LRU eviction, with exact accounting through refreshes, and the
// journal hooks observe every accepted put and every eviction.
func TestPointStoreByteBudgetEvicts(t *testing.T) {
	var puts, evicts []string
	s := newPointStore(100, 30, 0) // entry bound slack: bytes are the binding constraint
	s.onPut = func(key string, val []byte) { puts = append(puts, key) }
	s.onEvict = func(key string) { evicts = append(evicts, key) }

	s.put("a", make([]byte, 10))
	s.put("b", make([]byte, 10))
	s.put("c", make([]byte, 10)) // exactly at budget: nothing evicted
	if ss := s.stats(); ss.points != 3 || ss.bytes != 30 {
		t.Fatalf("at budget: %d entries, %d bytes", ss.points, ss.bytes)
	}
	s.put("d", make([]byte, 10)) // over budget: oldest (a) evicted
	ss := s.stats()
	if ss.points != 3 || ss.bytes != 30 {
		t.Errorf("past budget: %d entries, %d bytes, want 3 entries / 30 bytes", ss.points, ss.bytes)
	}
	if _, ok := s.get("a"); ok {
		t.Error("oldest entry survived the byte budget")
	}
	// Refreshing an entry with a bigger value re-accounts and evicts.
	s.put("d", make([]byte, 25))
	ss = s.stats()
	if ss.bytes > 30 {
		t.Errorf("refresh overflowed the budget: %d bytes", ss.bytes)
	}
	if _, ok := s.get("d"); !ok {
		t.Error("the refreshed (most recent) entry must never be evicted")
	}
	if len(puts) != 5 {
		t.Errorf("onPut observed %d puts (%v), want 5", len(puts), puts)
	}
	if len(evicts) == 0 || evicts[0] != "a" {
		t.Errorf("onEvict observed %v, want a first", evicts)
	}
}

// A single value past the byte budget must not wipe the store to fit:
// the most recent entry always lands, and everything else evicts only
// as far as the budget requires.
func TestPointStoreOversizedPutAlwaysLands(t *testing.T) {
	s := newPointStore(100, 20, 0)
	s.put("a", make([]byte, 10))
	s.put("big", make([]byte, 1000)) // alone over budget: still stored
	if _, ok := s.get("big"); !ok {
		t.Fatal("most recent entry was evicted by its own size")
	}
	if _, ok := s.get("a"); ok {
		t.Error("prior entry survived a budget-blowing insert")
	}
	if ss := s.stats(); ss.points != 1 {
		t.Errorf("%d entries resident, want 1", ss.points)
	}
}

// The per-entry cap rejects oversized results outright — they are never
// stored, never evict anything, and the rejection is counted.
func TestPointStorePerEntryCapRejects(t *testing.T) {
	var evicts int
	s := newPointStore(100, 0, 8)
	s.onEvict = func(string) { evicts++ }
	s.put("ok", make([]byte, 8))
	s.put("big", make([]byte, 9))
	if _, ok := s.get("big"); ok {
		t.Error("entry past the per-entry cap was stored")
	}
	if _, ok := s.get("ok"); !ok {
		t.Error("rejecting an oversized entry disturbed the store")
	}
	ss := s.stats()
	if ss.rejected != 1 {
		t.Errorf("rejected = %d, want 1", ss.rejected)
	}
	if ss.entryCap != 8 || evicts != 0 {
		t.Errorf("entryCap=%d evicts=%d, want 8 and 0", ss.entryCap, evicts)
	}
}
