package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/tenant"
)

// The client-fleet scenario is the control plane's load test: it spins
// up a multi-tenant coordinator on loopback, a pool of workers, and N
// tenant clients with cycling priority classes, then drives two phases
// through the real HTTP protocol:
//
//  1. Contention — every tenant concurrently submits a tenant-unique
//     grid (distinct Frames, so distinct point keys) onto the shared
//     worker pool. When the first job completes, the per-tenant service
//     counters are sampled: under saturation the weighted fair-share
//     scheduler should have served tenants roughly in proportion to
//     their class weights.
//  2. Reuse — one tenant computes a shared grid, then every other
//     tenant submits the identical options. Tenancy never reaches
//     point keys, so the rest must be served entirely from the
//     content-addressed store (Cached=true) without re-simulating.
//
// The report carries the sampled shares and reuse flags; the
// accompanying test asserts the fair-share ordering and full reuse at
// small N, which is also how CI runs it.

// fleetUnitPoints and fleetUnitDelay shape one tenant's sweep: enough
// points, each slow enough, that the tenants' grids overlap in time on
// a small worker pool and the fair-share window is observable.
const (
	fleetUnitPoints = 16
	fleetUnitDelay  = 3 * time.Millisecond
)

func init() {
	vals := make([]any, fleetUnitPoints)
	for i := range vals {
		vals[i] = i
	}
	core.MustRegister(core.NewSweep("client-fleet-unit",
		"One tenant's grid inside the client-fleet load test.",
		[]core.Axis{{Name: "i", Values: vals}},
		func(ctx context.Context, tb *core.Testbed, opts core.Options, pt core.Point) (any, error) {
			// Emulated compute: the sleep forces leases to spread over
			// the pool so tenants actually contend.
			time.Sleep(fleetUnitDelay)
			i := pt.Coord(0).(int)
			return core.Figure1Row{
				Path: fmt.Sprintf("grid %d point %d", opts.Frames, i),
				Mbps: float64((i+1)*(opts.Frames%97)) + 0.5,
				Note: "client-fleet unit",
			}, nil
		},
		func(opts core.Options, results []any) (core.Report, error) {
			rep := &core.Figure1Report{}
			for _, r := range results {
				rep.Rows = append(rep.Rows, r.(core.Figure1Row))
			}
			return rep, nil
		}).NoShardTestbed().WirePoint(core.Figure1Row{}).PointDeps(core.OptFrames))

	core.MustRegister(core.NewScenario("client-fleet",
		"Multi-tenant control-plane load test: N tenants, overlapping sweeps, fair-share and store-reuse measurement.",
		runClientFleet))
}

// FleetTenantRow is one tenant's outcome in the client-fleet report.
type FleetTenantRow struct {
	Name   string  `json:"name"`
	Class  string  `json:"class"`
	Weight float64 `json:"weight"`
	// ContentionRun is the tenant's points computed at the moment the
	// first tenant finished — the fair-share sample.
	ContentionRun int64 `json:"contention_run"`
	// PointsRun/PointsHit are the tenant's lifetime counters at the end
	// of the run.
	PointsRun int64 `json:"points_run"`
	PointsHit int64 `json:"points_hit"`
	// SharedCached reports whether the tenant's phase-2 job was served
	// entirely from the store (always false for the tenant that
	// computed the shared grid).
	SharedCached bool `json:"shared_cached"`
}

// FleetReport is the client-fleet scenario's report. It is operational
// telemetry — a load-test outcome, not a paper figure — so its numbers
// vary run to run; the invariants (fair-share ordering, full reuse)
// are what the fleet test asserts.
type FleetReport struct {
	Tenants    []FleetTenantRow `json:"tenants"`
	Workers    int              `json:"workers"`
	GridPoints int              `json:"grid_points"`
}

// Text renders the fleet outcome as a table.
func (r *FleetReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "client-fleet: %d tenant(s), %d worker(s), %d-point grids\n",
		len(r.Tenants), r.Workers, r.GridPoints)
	fmt.Fprintf(&b, "%-12s %-7s %6s %15s %10s %10s %7s\n",
		"tenant", "class", "weight", "contention_run", "points_run", "points_hit", "cached")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "%-12s %-7s %6.0f %15d %10d %10d %7v\n",
			t.Name, t.Class, t.Weight, t.ContentionRun, t.PointsRun, t.PointsHit, t.SharedCached)
	}
	return b.String()
}

// JSON renders the fleet outcome as JSON.
func (r *FleetReport) JSON() ([]byte, error) { return json.Marshal(r) }

func runClientFleet(ctx context.Context, _ *core.Testbed, opts core.Options) (core.Report, error) {
	// -flows N sets the tenant count, -shards N the worker pool; both
	// stay small by default so the scenario is CI-runnable.
	nTenants := opts.Flows
	if nTenants <= 0 {
		nTenants = 3
	}
	workers := opts.Shards
	if workers <= 0 {
		workers = 2
	}

	classes := []tenant.Class{tenant.High, tenant.Normal, tenant.Bulk}
	tens := make([]*tenant.Tenant, nTenants)
	for i := range tens {
		tens[i] = &tenant.Tenant{
			Name:  fmt.Sprintf("fleet-%d", i),
			Token: fmt.Sprintf("fleet-token-%d", i),
			Class: classes[i%len(classes)],
		}
	}
	reg, err := tenant.NewRegistry(tens)
	if err != nil {
		return nil, fmt.Errorf("client-fleet: %w", err)
	}

	coord := New(Config{
		Tenants:     reg,
		LocalShards: -1, // pure remote: every point through the fair-share lease path
		LeaseTTL:    2 * time.Second,
		Poll:        2 * time.Millisecond,
		MaxJobs:     nTenants + 1, // contention happens at the lease queue, not admission
	})
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("client-fleet: %w", err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	wctx, wcancel := context.WithCancel(ctx)
	var wwg sync.WaitGroup
	defer func() {
		wcancel()
		wwg.Wait()
	}()
	for i := 0; i < workers; i++ {
		w := NewWorker(base)
		w.Token = tens[0].Token
		w.Poll = 2 * time.Millisecond
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			_ = w.Run(wctx)
		}()
	}

	clients := make([]*Client, nTenants)
	for i := range clients {
		clients[i] = &Client{Base: base, Token: tens[i].Token, Poll: 5 * time.Millisecond}
	}

	// Phase 1: contention. Tenant-unique Frames values keep the grids'
	// point keys disjoint, so nothing is served from the store and
	// every point goes through the fair-share lease path.
	var snapOnce sync.Once
	var snapshot *StatusReply
	errs := make([]error, nTenants)
	var jwg sync.WaitGroup
	for i := range clients {
		jwg.Add(1)
		go func(i int) {
			defer jwg.Done()
			st, err := clients[i].Run(ctx, JobRequest{
				Scenario: "client-fleet-unit",
				Opts:     WireOptions{Frames: 1000 + i},
			})
			if err == nil && st.Status != JobDone {
				err = fmt.Errorf("tenant %s job %s: %s (%s)", tens[i].Name, st.ID, st.Status, st.Error)
			}
			errs[i] = err
			snapOnce.Do(func() {
				// First completion: sample every tenant's service while
				// the others are still mid-grid.
				if s, serr := clients[i].Status(ctx); serr == nil {
					snapshot = s
				}
			})
		}(i)
	}
	jwg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("client-fleet contention phase: %w", err)
		}
	}

	// Phase 2: reuse. Tenant 0 computes the shared grid; every other
	// tenant submits the identical options and should come back Cached
	// (tenancy never reaches point keys).
	shared := JobRequest{Scenario: "client-fleet-unit", Opts: WireOptions{Frames: 7}}
	cached := make([]bool, nTenants)
	for i := 0; i < nTenants; i++ {
		st, err := clients[i].Run(ctx, shared)
		if err != nil {
			return nil, fmt.Errorf("client-fleet reuse phase (tenant %s): %w", tens[i].Name, err)
		}
		if st.Status != JobDone {
			return nil, fmt.Errorf("client-fleet reuse phase: tenant %s job %s: %s (%s)",
				tens[i].Name, st.ID, st.Status, st.Error)
		}
		cached[i] = st.Cached
	}

	final, err := clients[0].Status(ctx)
	if err != nil {
		return nil, fmt.Errorf("client-fleet: final status: %w", err)
	}
	contention := make(map[string]int64)
	if snapshot != nil {
		for _, ts := range snapshot.Tenants {
			contention[ts.Name] = ts.PointsRun
		}
	}
	rep := &FleetReport{Workers: workers, GridPoints: fleetUnitPoints}
	for i, t := range tens {
		row := FleetTenantRow{
			Name: t.Name, Class: string(t.Class), Weight: t.Weight(),
			ContentionRun: contention[t.Name],
			SharedCached:  cached[i],
		}
		for _, ts := range final.Tenants {
			if ts.Name == t.Name {
				row.PointsRun, row.PointsHit = ts.PointsRun, ts.PointsHit
			}
		}
		rep.Tenants = append(rep.Tenants, row)
	}
	return rep, nil
}
