package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tenant"
)

// mustRegistry builds a tenant registry or fails the test.
func mustRegistry(t *testing.T, tenants ...*tenant.Tenant) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(tenants)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// authedClient is a Client bound to one tenant's token.
func (tc *testCluster) authedClient(token string) *Client {
	return &Client{Base: tc.srv.URL, Token: token, Poll: 10 * time.Millisecond}
}

// postAs posts a JSON body with a token and returns the status code.
func postAs(t *testing.T, url, token string, in any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// getAs gets a URL with a token and returns the status code and body.
func getAs(t *testing.T, url, token string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// registerFakeWorker announces a worker ID without running a worker
// loop, so lease sizing sees a populated pool.
func (tc *testCluster) registerFakeWorker(t *testing.T, token, id string) {
	t.Helper()
	code, body := postAs(t, tc.srv.URL+"/v1/workers/register", token, RegisterRequest{WorkerID: id})
	if code != http.StatusOK {
		t.Fatalf("register %s: %d: %s", id, code, body)
	}
}

// takeLease pulls one lease as a fake worker; ok=false on 204.
func (tc *testCluster) takeLease(t *testing.T, token, workerID string) (*LeaseReply, bool) {
	t.Helper()
	code, body := postAs(t, tc.srv.URL+"/v1/workers/lease", token, LeaseRequest{WorkerID: workerID})
	switch code {
	case http.StatusNoContent:
		return nil, false
	case http.StatusOK:
		var l LeaseReply
		if err := json.Unmarshal(body, &l); err != nil {
			t.Fatal(err)
		}
		return &l, true
	default:
		t.Fatalf("lease: %d: %s", code, body)
		return nil, false
	}
}

// waitRunning polls a job until its grid is published (run installed).
func waitRunning(t *testing.T, cl *Client, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == JobRunning && st.PointsTotal > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

// scrapeMetrics fetches /v1/metrics and parses the sample lines into
// series name (with labels) -> value.
func (tc *testCluster) scrapeMetrics(t *testing.T, token string) map[string]float64 {
	t.Helper()
	code, body := getAs(t, tc.srv.URL+"/v1/metrics", token)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d: %s", code, body)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

// A coordinator with a tenant registry must reject missing and unknown
// tokens on every endpoint except /healthz, and serve valid ones. The
// rejections surface in the auth-failure counter.
func TestAuthRequiredWhenTenantsConfigured(t *testing.T) {
	registerWireSweep("dist-test-auth", 4, 0)
	reg := mustRegistry(t,
		&tenant.Tenant{Name: "alpha", Token: "tok-alpha", Class: tenant.High},
		&tenant.Tenant{Name: "beta", Token: "tok-beta", Class: tenant.Bulk},
	)
	tc := newCluster(t, Config{Tenants: reg})

	submit := JobRequest{Scenario: "dist-test-auth"}
	if code, _ := postAs(t, tc.srv.URL+"/v1/jobs", "", submit); code != http.StatusUnauthorized {
		t.Errorf("submit without token: %d, want 401", code)
	}
	if code, _ := postAs(t, tc.srv.URL+"/v1/jobs", "tok-wrong", submit); code != http.StatusUnauthorized {
		t.Errorf("submit with unknown token: %d, want 401", code)
	}
	if code, _ := getAs(t, tc.srv.URL+"/v1/status", ""); code != http.StatusUnauthorized {
		t.Errorf("status without token: %d, want 401", code)
	}
	if code, _ := getAs(t, tc.srv.URL+"/v1/metrics", ""); code != http.StatusUnauthorized {
		t.Errorf("metrics without token: %d, want 401", code)
	}
	if code, _ := getAs(t, tc.srv.URL+"/healthz", ""); code != http.StatusOK {
		t.Errorf("healthz must stay open: %d, want 200", code)
	}

	cl := tc.authedClient("tok-alpha")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.Run(ctx, submit)
	if err != nil {
		t.Fatalf("authenticated run: %v", err)
	}
	if st.Status != JobDone {
		t.Fatalf("authenticated job: %s (%s)", st.Status, st.Error)
	}
	if st.Tenant != "alpha" || st.Class != string(tenant.High) {
		t.Errorf("job attribution = %q/%q, want alpha/high", st.Tenant, st.Class)
	}

	m := tc.scrapeMetrics(t, "tok-alpha")
	if m["gtw_auth_failures_total"] < 4 {
		t.Errorf("gtw_auth_failures_total = %v, want >= 4", m["gtw_auth_failures_total"])
	}
}

// Tenancy is execution metadata only: two tenants with different
// priority classes submitting the same scenario get reports
// byte-identical to each other and to a single-kernel local run — even
// though the second submission is largely served from the store.
func TestTwoTenantReportsByteIdentical(t *testing.T) {
	registerWireSweep("dist-test-tenantid", 12, 0)
	reg := mustRegistry(t,
		&tenant.Tenant{Name: "alpha", Token: "tok-alpha", Class: tenant.High},
		&tenant.Tenant{Name: "beta", Token: "tok-beta", Class: tenant.Bulk},
	)
	tc := newCluster(t, Config{Tenants: reg})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	opts := WireOptions{Frames: 3}
	req := JobRequest{Scenario: "dist-test-tenantid", Opts: opts}
	stA, err := tc.authedClient("tok-alpha").Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := tc.authedClient("tok-beta").Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if stA.ID == stB.ID {
		t.Fatalf("tenants shared job %s; identical jobs must not be shared across tenants", stA.ID)
	}
	if stA.Status != JobDone || stB.Status != JobDone {
		t.Fatalf("jobs: %s/%s (%s/%s)", stA.Status, stB.Status, stA.Error, stB.Error)
	}
	wantJSON, wantText := localReport(t, "dist-test-tenantid", opts.Options())
	if !bytes.Equal(stA.Report, wantJSON) || !bytes.Equal(stB.Report, wantJSON) {
		t.Errorf("tenant reports differ from the single-kernel run")
	}
	if stA.Text != wantText || stB.Text != wantText {
		t.Errorf("tenant report texts differ from the single-kernel run")
	}
	if !bytes.Equal(stA.Report, stB.Report) {
		t.Errorf("reports differ across tenants:\n%s\nvs\n%s", stA.Report, stB.Report)
	}
	// The second tenant's grid must have reused the first's points.
	if stB.PointHits == 0 {
		t.Errorf("beta's job reused no stored points; cross-tenant dedup broken")
	}
}

// The lease queue is a weighted fair queue: with a high-weight and a
// bulk tenant both saturated, every grant goes to the tenant with the
// smaller virtual time (served/weight), so service interleaves near
// the 4:1 class ratio — and the bulk tenant is never starved while the
// high tenant has pending work.
func TestLeaseGrantsFollowWeightedFairShare(t *testing.T) {
	registerWireSweep("dist-test-fair", 40, 0)
	reg := mustRegistry(t,
		&tenant.Tenant{Name: "alpha", Token: "tok-alpha", Class: tenant.High},
		&tenant.Tenant{Name: "beta", Token: "tok-beta", Class: tenant.Bulk},
	)
	tc := newCluster(t, Config{Tenants: reg, LocalShards: -1})
	// Populate the pool before submit so lease sizing carves fine
	// leases (several grants per grid) instead of one huge lease.
	for i := 0; i < 4; i++ {
		tc.registerFakeWorker(t, "tok-alpha", fmt.Sprintf("w-%d", i))
	}

	ctx := context.Background()
	clA, clB := tc.authedClient("tok-alpha"), tc.authedClient("tok-beta")
	req := func(f int) JobRequest {
		return JobRequest{Scenario: "dist-test-fair", Opts: WireOptions{Frames: f}}
	}
	stA, err := clA.Submit(ctx, req(1))
	if err != nil {
		t.Fatal(err)
	}
	stB, err := clB.Submit(ctx, req(2))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, clA, stA.ID)
	waitRunning(t, clB, stB.ID)

	wA, wB := tenant.High.Weight(), tenant.Bulk.Weight()
	servedA, servedB := 0, 0
	betaFirstGrantAt := -1
	for grant := 0; ; grant++ {
		l, ok := tc.takeLease(t, "tok-alpha", "w-0")
		if !ok {
			break
		}
		points := l.Hi - l.Lo
		bothPending := servedA < 40 && servedB < 40
		switch l.JobID {
		case stA.ID:
			if bothPending && float64(servedA)/wA > float64(servedB)/wB+1e-9 {
				t.Errorf("grant %d went to alpha at vt %.2f > beta's %.2f",
					grant, float64(servedA)/wA, float64(servedB)/wB)
			}
			servedA += points
		case stB.ID:
			if bothPending && float64(servedB)/wB > float64(servedA)/wA+1e-9 {
				t.Errorf("grant %d went to beta at vt %.2f > alpha's %.2f",
					grant, float64(servedB)/wB, float64(servedA)/wA)
			}
			if betaFirstGrantAt < 0 {
				betaFirstGrantAt = grant
			}
			servedB += points
		default:
			t.Fatalf("lease for unexpected job %s", l.JobID)
		}
	}
	if servedA != 40 || servedB != 40 {
		t.Fatalf("grids not fully granted: alpha %d, beta %d", servedA, servedB)
	}
	// Starvation check: the bulk tenant received service while the
	// high tenant still had pending work (its first grant cannot wait
	// for alpha's grid to drain).
	if betaFirstGrantAt < 0 || betaFirstGrantAt > 8 {
		t.Errorf("beta's first grant came at index %d; bulk tenant starved", betaFirstGrantAt)
	}
	m := tc.scrapeMetrics(t, "tok-alpha")
	if m["gtw_leases_granted_total"] < 2 {
		t.Errorf("gtw_leases_granted_total = %v, want >= 2", m["gtw_leases_granted_total"])
	}
}

// Regression: a lease that expires must refund the tenant's virtual
// time for its unserved points. Without the refund, the high-priority
// tenant stays billed for requeued work and the next grant goes to the
// bulk tenant — the priority inversion.
func TestLeaseExpiryRefundPreventsPriorityInversion(t *testing.T) {
	registerWireSweep("dist-test-inversion", 40, 0)
	reg := mustRegistry(t,
		&tenant.Tenant{Name: "alpha", Token: "tok-alpha", Class: tenant.High},
		&tenant.Tenant{Name: "beta", Token: "tok-beta", Class: tenant.Bulk},
	)
	tc := newCluster(t, Config{Tenants: reg, LocalShards: -1, LeaseTTL: 100 * time.Millisecond})
	clA, clB := tc.authedClient("tok-alpha"), tc.authedClient("tok-beta")
	ctx := context.Background()
	stA, err := clA.Submit(ctx, JobRequest{Scenario: "dist-test-inversion", Opts: WireOptions{Frames: 1}})
	if err != nil {
		t.Fatal(err)
	}
	stB, err := clB.Submit(ctx, JobRequest{Scenario: "dist-test-inversion", Opts: WireOptions{Frames: 2}})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, clA, stA.ID)
	waitRunning(t, clB, stB.ID)

	// Alpha (submitted first) wins the vt tie and takes the first
	// lease; the fake worker then vanishes without heartbeating.
	l, ok := tc.takeLease(t, "tok-alpha", "w-dead")
	if !ok {
		t.Fatal("no lease granted")
	}
	if l.JobID != stA.ID {
		t.Fatalf("first lease went to %s, want alpha's %s", l.JobID, stA.ID)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := tc.scrapeMetrics(t, "tok-alpha"); m["gtw_leases_expired_total"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Refunded, alpha is back at beta's virtual time and wins the
	// FIFO tie again. Without the refund this grant goes to beta.
	l2, ok := tc.takeLease(t, "tok-alpha", "w-live")
	if !ok {
		t.Fatal("no lease granted after expiry")
	}
	if l2.JobID != stA.ID {
		t.Errorf("post-expiry lease went to %s, want alpha's %s (priority inversion)", l2.JobID, stA.ID)
	}
}

// A tenant's MaxInFlight caps its concurrently leased points: once an
// outstanding lease reaches the cap, further asks are refused until
// the lease retires.
func TestMaxInFlightCapsLeasedPoints(t *testing.T) {
	registerWireSweep("dist-test-capped", 40, 0)
	reg := mustRegistry(t,
		&tenant.Tenant{Name: "alpha", Token: "tok-alpha", Class: tenant.Normal, MaxInFlight: 6},
	)
	tc := newCluster(t, Config{Tenants: reg, LocalShards: -1})
	cl := tc.authedClient("tok-alpha")
	st, err := cl.Submit(context.Background(), JobRequest{Scenario: "dist-test-capped"})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, cl, st.ID)

	l, ok := tc.takeLease(t, "tok-alpha", "w-0")
	if !ok {
		t.Fatal("no first lease")
	}
	if l.Hi-l.Lo < 6 {
		t.Skipf("first lease only %d points; cap not reached", l.Hi-l.Lo)
	}
	if _, ok := tc.takeLease(t, "tok-alpha", "w-1"); ok {
		t.Errorf("lease granted past MaxInFlight=6 with %d points outstanding", l.Hi-l.Lo)
	}
}

// gtwrun -connect rides the SSE stream; when the stream dies mid-job
// the client must notice and fall back to polling, and the job must
// still complete.
func TestWaitStreamFallsBackToPollingWhenStreamKilled(t *testing.T) {
	registerWireSweep("dist-test-ssefall", 30, 20*time.Millisecond)
	tc := newCluster(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := tc.cl.Submit(ctx, JobRequest{Scenario: "dist-test-ssefall"})
	if err != nil {
		t.Fatal(err)
	}
	kill := make(chan struct{})
	go func() {
		defer close(kill)
		time.Sleep(150 * time.Millisecond) // mid-job: 30 points x 20ms on one shard
		tc.c.events.dropAll(false)
	}()
	var fallbackErr error
	final, err := tc.cl.WaitStream(ctx, st.ID, func(cause error) { fallbackErr = cause })
	<-kill
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobDone {
		t.Fatalf("job after fallback: %s (%s)", final.Status, final.Error)
	}
	if fallbackErr == nil {
		t.Fatalf("stream was killed mid-job but WaitStream never fell back")
	}
}

// The happy path: WaitStream completes a job via the event stream
// without ever falling back to polling.
func TestWaitStreamCompletesViaEvents(t *testing.T) {
	registerWireSweep("dist-test-ssehappy", 10, 10*time.Millisecond)
	tc := newCluster(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := tc.cl.Submit(ctx, JobRequest{Scenario: "dist-test-ssehappy"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := tc.cl.WaitStream(ctx, st.ID, func(cause error) {
		t.Errorf("unexpected fallback: %v", cause)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobDone {
		t.Fatalf("job: %s (%s)", final.Status, final.Error)
	}
	if len(final.Report) == 0 {
		t.Fatal("final status carries no report")
	}
}

// The metrics endpoint and the status snapshot surface the control
// plane's accounting: lease and point counters move with a real run,
// and the per-tenant block attributes the work.
func TestMetricsAndStatusSurfaceTenantCounters(t *testing.T) {
	registerWireSweep("dist-test-metrics", 16, 5*time.Millisecond)
	tc := newCluster(t, Config{LeaseTTL: 5 * time.Second})
	tc.startWorker(t, NewWorker(""))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := tc.cl.Run(ctx, JobRequest{Scenario: "dist-test-metrics"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != JobDone {
		t.Fatalf("job: %s (%s)", st.Status, st.Error)
	}

	m := tc.scrapeMetrics(t, "")
	if m["gtw_leases_granted_total"] < 1 {
		t.Errorf("gtw_leases_granted_total = %v, want >= 1", m["gtw_leases_granted_total"])
	}
	run := m[`gtw_points_run_total{tenant="default"}`]
	if run != 16 {
		t.Errorf(`gtw_points_run_total{tenant="default"} = %v, want 16`, run)
	}
	if m["gtw_leases_expired_total"] != 0 {
		t.Errorf("gtw_leases_expired_total = %v, want 0", m["gtw_leases_expired_total"])
	}
	if m["gtw_store_points"] < 16 {
		t.Errorf("gtw_store_points = %v, want >= 16", m["gtw_store_points"])
	}
	if _, ok := m[`gtw_jobs_completed_total{status="done"}`]; !ok {
		t.Errorf("gtw_jobs_completed_total{status=done} missing")
	}

	status, err := tc.cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(status.Tenants) != 1 || status.Tenants[0].Name != "default" {
		t.Fatalf("status tenants = %+v, want the single default tenant", status.Tenants)
	}
	ts := status.Tenants[0]
	if ts.PointsRun != 16 {
		t.Errorf("default tenant points_run = %d, want 16", ts.PointsRun)
	}
	if ts.JobsSubmitted < 1 {
		t.Errorf("default tenant jobs_submitted = %d, want >= 1", ts.JobsSubmitted)
	}
	if ts.StoreBytes <= 0 {
		t.Errorf("default tenant store_bytes = %d, want > 0", ts.StoreBytes)
	}
}

// The client-fleet scenario at small N: fair-share ordering across
// priority classes and full cross-tenant reuse of the shared grid.
func TestClientFleetScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet load test is slow for -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := core.RunWith(ctx, "client-fleet", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fr, ok := rep.(*FleetReport)
	if !ok {
		t.Fatalf("report type %T, want *FleetReport", rep)
	}
	if len(fr.Tenants) != 3 {
		t.Fatalf("fleet ran %d tenants, want 3", len(fr.Tenants))
	}
	var high, bulk FleetTenantRow
	var hits int64
	for _, row := range fr.Tenants {
		hits += row.PointsHit
		switch tenant.Class(row.Class) {
		case tenant.High:
			high = row
		case tenant.Bulk:
			bulk = row
		}
	}
	// Fair share during contention: the weight-4 tenant cannot have
	// been served less than the weight-1 tenant.
	if high.ContentionRun < bulk.ContentionRun {
		t.Errorf("contention served high=%d < bulk=%d; fair share inverted",
			high.ContentionRun, bulk.ContentionRun)
	}
	// Cross-tenant reuse: every tenant after the first is served the
	// shared grid entirely from the store.
	for i, row := range fr.Tenants {
		if i == 0 && row.SharedCached {
			t.Errorf("tenant %s computed the shared grid but reports cached", row.Name)
		}
		if i > 0 && !row.SharedCached {
			t.Errorf("tenant %s was not served the shared grid from the store", row.Name)
		}
	}
	if want := int64(2 * fleetUnitPoints); hits < want {
		t.Errorf("total store hits = %d, want >= %d", hits, want)
	}
	if math.IsNaN(high.Weight) || high.Weight <= bulk.Weight {
		t.Errorf("class weights not surfaced: high=%v bulk=%v", high.Weight, bulk.Weight)
	}
	if fr.Text() == "" {
		t.Error("empty fleet report text")
	}
}
