package dist

import (
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/obs"
)

// metrics is the coordinator's instrument bundle. Hot-path instruments
// (points run/hit/streamed, leases granted/expired) are plain atomic
// counters resolved once per job or at wiring time — incrementing them
// is allocation-free. Pull-style values (store residency, worker
// EWMAs, queue depths) are synced into gauges at scrape time by
// syncMetrics, so the hot paths never pay for them.
type metrics struct {
	reg *obs.Registry

	leasesGranted *obs.Counter
	leasesExpired *obs.Counter
	authFailures  *obs.Counter

	pointsRun      *obs.CounterVec // by tenant: computed fresh
	pointsHit      *obs.CounterVec // by tenant: served from the store
	pointsStreamed *obs.CounterVec // by tenant: uploaded mid-lease

	jobsSubmitted *obs.CounterVec // by tenant
	jobsCompleted *obs.CounterVec // by terminal status
	jobDuration   *obs.Histogram

	storeHits, storeMisses        *obs.Counter // synced from the store at scrape
	storeEvictions, storeRejected *obs.Counter

	storePoints, storeBytes *obs.Gauge
	jobsRunning, jobsQueued *obs.Gauge
	workersGauge            *obs.Gauge
	eventSubs               *obs.Gauge
	workerRate              *obs.GaugeVec // by worker: throughput EWMA, points/sec
	tenantInFlight          *obs.GaugeVec // by tenant: leased points

	// PDES synchronization counters, synced from core's process-wide
	// aggregate at scrape time: in-process partitioned runs (the
	// coordinator's local shards) surface their kernel-level load
	// picture next to the job metrics.
	pdesRounds        *obs.Counter
	pdesNulls         *obs.Counter
	pdesKernelEvents  *obs.CounterVec // by kernel index: events fired
	pdesKernelBlocked *obs.GaugeVec   // by kernel index: barrier wait, seconds
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &metrics{
		reg: reg,

		leasesGranted: reg.Counter("gtw_leases_granted_total", "Leases granted to workers."),
		leasesExpired: reg.Counter("gtw_leases_expired_total", "Leases expired without heartbeat and requeued."),
		authFailures:  reg.Counter("gtw_auth_failures_total", "Requests rejected for a missing or unknown token."),

		pointsRun:      reg.CounterVec("gtw_points_run_total", "Grid points computed fresh.", "tenant"),
		pointsHit:      reg.CounterVec("gtw_points_hit_total", "Grid points served from the content-addressed store.", "tenant"),
		pointsStreamed: reg.CounterVec("gtw_points_streamed_total", "Grid points uploaded mid-lease by workers.", "tenant"),

		jobsSubmitted: reg.CounterVec("gtw_jobs_submitted_total", "Jobs accepted.", "tenant"),
		jobsCompleted: reg.CounterVec("gtw_jobs_completed_total", "Jobs reaching a terminal state.", "status"),
		jobDuration:   reg.Histogram("gtw_job_duration_seconds", "Job wall time, submit to terminal state.", nil),

		storeHits:      reg.Counter("gtw_store_hits_total", "Point-store lookups that hit."),
		storeMisses:    reg.Counter("gtw_store_misses_total", "Point-store lookups that missed."),
		storeEvictions: reg.Counter("gtw_store_evictions_total", "Points evicted past the store bounds."),
		storeRejected:  reg.Counter("gtw_store_rejected_total", "Points refused under the per-entry byte cap."),

		storePoints:    reg.Gauge("gtw_store_points", "Resident points in the content-addressed store."),
		storeBytes:     reg.Gauge("gtw_store_bytes", "Resident wire bytes in the content-addressed store."),
		jobsRunning:    reg.Gauge("gtw_jobs_running", "Jobs currently executing."),
		jobsQueued:     reg.Gauge("gtw_jobs_queued", "Jobs waiting for an execution slot."),
		workersGauge:   reg.Gauge("gtw_workers", "Registered workers."),
		eventSubs:      reg.Gauge("gtw_event_subscribers", "Live /v1/events subscribers."),
		workerRate:     reg.GaugeVec("gtw_worker_rate_pps", "Per-worker throughput EWMA, points per second.", "worker"),
		tenantInFlight: reg.GaugeVec("gtw_tenant_inflight_points", "Points currently leased per tenant.", "tenant"),

		pdesRounds:        reg.Counter("gtw_pdes_rounds_total", "PDES synchronization rounds across partitioned runs."),
		pdesNulls:         reg.Counter("gtw_pdes_null_messages_total", "PDES null messages (bound broadcasts) exchanged."),
		pdesKernelEvents:  reg.CounterVec("gtw_pdes_kernel_events_total", "Events fired per PDES kernel index.", "kernel"),
		pdesKernelBlocked: reg.GaugeVec("gtw_pdes_kernel_blocked_seconds", "Cumulative wall-clock barrier wait per PDES kernel index.", "kernel"),
	}
}

// syncCounter advances a counter to a monotonic external value (the
// store's internal tallies) without ever moving it backwards.
func syncCounter(c *obs.Counter, v int64) {
	if d := v - c.Value(); d > 0 {
		c.Add(d)
	}
}

// syncMetrics refreshes the pull-style instruments from live state.
// Called at scrape time, never on a hot path.
func (c *Coordinator) syncMetrics() {
	ss := c.store.stats()
	syncCounter(c.met.storeHits, ss.hits)
	syncCounter(c.met.storeMisses, ss.misses)
	syncCounter(c.met.storeEvictions, ss.evictions)
	syncCounter(c.met.storeRejected, ss.rejected)
	c.met.storePoints.Set(float64(ss.points))
	c.met.storeBytes.Set(float64(ss.bytes))
	c.met.eventSubs.Set(float64(c.events.subscribers()))

	pd := core.PDESSnapshot()
	syncCounter(c.met.pdesRounds, pd.Rounds)
	syncCounter(c.met.pdesNulls, pd.NullMessages)
	for i, v := range pd.KernelEvents {
		syncCounter(c.met.pdesKernelEvents.With(strconv.Itoa(i)), v)
	}
	for i, v := range pd.KernelBlocked {
		c.met.pdesKernelBlocked.With(strconv.Itoa(i)).Set(v.Seconds())
	}

	c.mu.Lock()
	running, queued := 0, 0
	for _, j := range c.order {
		switch j.status {
		case JobRunning:
			running++
		case JobQueued:
			queued++
		}
	}
	c.met.jobsRunning.Set(float64(running))
	c.met.jobsQueued.Set(float64(queued))
	c.met.workersGauge.Set(float64(len(c.workers)))
	for id, r := range c.rates {
		c.met.workerRate.With(id).Set(r)
	}
	for name, n := range c.inflight {
		c.met.tenantInFlight.With(name).Set(float64(n))
	}
	c.mu.Unlock()
}

// handleMetrics serves GET /v1/metrics in the Prometheus text format.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.syncMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = c.met.reg.WriteText(w)
}
