package dist

import "container/list"

// lru is a small least-recently-used cache for finished scenario
// reports, keyed by scenario name + wire options. The coordinator
// serves many clients asking for the same figures; a hit skips the
// whole simulation.
type lru struct {
	cap   int
	order *list.List // front = most recently used
	byKey map[string]*list.Element
}

type lruEntry struct {
	key string
	val *cachedResult
}

// cachedResult is what a cache hit serves: the merged report and the
// timings of the run that produced it (the participant count is
// recomputed from the timings on the way out).
type cachedResult struct {
	report  []byte
	text    string
	timings []shardTimingCopy
}

// shardTimingCopy avoids aliasing the job's live slice.
type shardTimingCopy struct {
	Shard     int
	Worker    string
	Points    int
	ElapsedNS int64
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached value and marks it most recently used.
func (c *lru) get(key string) (*cachedResult, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) a value, evicting the least recently used
// entry past capacity.
func (c *lru) add(key string, val *cachedResult) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*lruEntry).key)
	}
}

// len reports the number of cached entries.
func (c *lru) len() int { return c.order.Len() }
