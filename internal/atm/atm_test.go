package atm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAAL5PDUPadding(t *testing.T) {
	cases := []struct{ n, pdu, cells int }{
		{0, 48, 1},        // trailer alone fits one cell
		{1, 48, 1},        // 1+8 = 9 -> 48
		{40, 48, 1},       // 40+8 = 48 exactly
		{41, 96, 2},       // 41+8 = 49 -> 2 cells
		{48, 96, 2},       // 48+8 = 56 -> 2 cells
		{88, 96, 2},       // 88+8 = 96 exactly
		{89, 144, 3},      // spills to 3
		{9180, 9216, 192}, // default CLIP MTU: 9180+8=9188 -> 192 cells
	}
	for _, c := range cases {
		if got := AAL5PDU(c.n); got != c.pdu {
			t.Errorf("AAL5PDU(%d) = %d, want %d", c.n, got, c.pdu)
		}
		if got := Cells(c.n); got != c.cells {
			t.Errorf("Cells(%d) = %d, want %d", c.n, got, c.cells)
		}
		if got := WireBytes(c.n); got != c.cells*CellSize {
			t.Errorf("WireBytes(%d) = %d, want %d", c.n, got, c.cells*CellSize)
		}
	}
}

// Properties of AAL5 framing for arbitrary payload sizes.
func TestAAL5Properties(t *testing.T) {
	f := func(n uint16) bool {
		size := int(n)
		pdu := AAL5PDU(size)
		// PDU is a whole number of cells and fits payload+trailer.
		if pdu%CellPayload != 0 || pdu < size+AAL5Trailer {
			return false
		}
		// Padding never exceeds one cell minus a byte.
		if pdu-(size+AAL5Trailer) >= CellPayload {
			return false
		}
		// Wire size is 53/48 of the PDU exactly.
		return WireBytes(size)*CellPayload == pdu*CellSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEfficiencyMonotoneAndBounded(t *testing.T) {
	if Efficiency(0) != 0 {
		t.Error("Efficiency(0) != 0")
	}
	asym := float64(CellPayload) / float64(CellSize)
	big := Efficiency(1 << 20)
	if big >= asym || big < asym*0.99 {
		t.Errorf("Efficiency(1MiB) = %.4f, want just under %.4f", big, asym)
	}
	// Worst case just past a cell boundary.
	if e := Efficiency(41); e > 0.5 {
		t.Errorf("Efficiency(41) = %.3f, expected < 0.5 (2 cells for 41 bytes)", e)
	}
}

func TestCLIPWireBytes(t *testing.T) {
	// A 9180-byte IP packet with the 8-byte LLC/SNAP header:
	// 9180+8+8 = 9196 -> 192 cells of payload (9216).
	if got, want := CLIPWireBytes(9180), 192*CellSize; got != want {
		t.Errorf("CLIPWireBytes(9180) = %d, want %d", got, want)
	}
}

func TestSDHRates(t *testing.T) {
	if got := OC12.LineRate(); math.Abs(got-622.08e6) > 1 {
		t.Errorf("OC-12 line rate = %v", got)
	}
	if got := OC48.LineRate(); math.Abs(got-2488.32e6) > 1 {
		t.Errorf("OC-48 line rate = %v", got)
	}
	if got := OC12.PayloadRate(); math.Abs(got-599.04e6) > 1 {
		t.Errorf("OC-12 payload rate = %v", got)
	}
	if got := OC48.PayloadRate(); math.Abs(got-2396.16e6) > 1 {
		t.Errorf("OC-48 payload rate = %v", got)
	}
	// ATM payload on OC-12: 599.04 * 48/53 = 542.5 Mbit/s.
	if got := OC12.ATMPayloadRate(); math.Abs(got-542.49e6) > 0.1e6 {
		t.Errorf("OC-12 ATM payload rate = %v", got)
	}
	if OC48.String() != "OC-48" {
		t.Errorf("String = %q", OC48.String())
	}
}

func TestCBRVC(t *testing.T) {
	// A 270 Mbit/s D1 stream needs 270e6/8/48 cells/s.
	vc := NewCBRVC(270e6)
	wantPCR := 270e6 / 8 / 48
	if math.Abs(vc.PCR-wantPCR) > 1e-6 {
		t.Errorf("PCR = %v, want %v", vc.PCR, wantPCR)
	}
	if math.Abs(vc.PayloadBps()-270e6) > 1 {
		t.Errorf("PayloadBps = %v", vc.PayloadBps())
	}
	if vc.WireBps() <= 270e6 {
		t.Error("wire rate should exceed payload rate")
	}
	if vc.CellInterval() <= 0 {
		t.Error("CellInterval <= 0")
	}
	if (CBRVC{}).CellInterval() != 0 {
		t.Error("zero VC interval != 0")
	}
}
