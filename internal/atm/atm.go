// Package atm models Asynchronous Transfer Mode framing as deployed in
// the Gigabit Testbed West: 53-byte cells, AAL5 segmentation and
// reassembly, LLC/SNAP encapsulation for Classical IP over ATM (CLIP,
// RFC 1577/2225), and the SDH/SONET carrier hierarchy (OC-3 .. OC-48)
// that the testbed's 622 Mbit/s and 2.4 Gbit/s links ran over.
//
// All sizes are in bytes and all rates in bits per second unless stated
// otherwise. The arithmetic here determines the *payload* capacity that
// the network simulator exposes to IP, which is how the paper's observed
// throughputs (e.g. "less than 8 frames/s over a 622 Mbit/s ATM network
// using classical IP") arise from first principles.
package atm

import "fmt"

const (
	// CellSize is the size of an ATM cell on the wire.
	CellSize = 53
	// CellHeader is the ATM cell header size.
	CellHeader = 5
	// CellPayload is the payload carried per cell.
	CellPayload = CellSize - CellHeader // 48

	// AAL5Trailer is the length of the AAL5 CPCS-PDU trailer
	// (UU, CPI, Length, CRC-32).
	AAL5Trailer = 8

	// LLCSNAPHeader is the LLC/SNAP encapsulation header used by
	// Classical IP over ATM (RFC 2684).
	LLCSNAPHeader = 8

	// DefaultCLIPMTU is the default MTU of Classical IP over ATM
	// (RFC 1577). The testbed's FORE adapters supported much larger
	// MTUs; 64 KByte was used for the supercomputer paths.
	DefaultCLIPMTU = 9180

	// MaxCLIPMTU is the 64 KByte MTU the paper reports for the FORE
	// 622 Mbit/s adapters and the HiPPI paths.
	MaxCLIPMTU = 65536
)

// AAL5PDU reports the size of the AAL5 CPCS-PDU for a payload of n
// bytes: payload plus trailer, padded up to a whole number of cells.
func AAL5PDU(n int) int {
	raw := n + AAL5Trailer
	cells := (raw + CellPayload - 1) / CellPayload
	return cells * CellPayload
}

// Cells reports the number of ATM cells needed to carry an n-byte
// AAL5 payload.
func Cells(n int) int {
	return AAL5PDU(n) / CellPayload
}

// WireBytes reports the on-the-wire size (including cell headers) of an
// n-byte AAL5 payload.
func WireBytes(n int) int {
	return Cells(n) * CellSize
}

// Efficiency reports the fraction of wire bandwidth available to an
// n-byte AAL5 payload (0 < e < 1). Large payloads approach 48/53 minus
// the trailer tax.
func Efficiency(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / float64(WireBytes(n))
}

// CLIPWireBytes reports the wire size of an IP packet of n bytes carried
// over LLC/SNAP-encapsulated AAL5, as Classical IP over ATM does.
func CLIPWireBytes(n int) int {
	return WireBytes(n + LLCSNAPHeader)
}

// OC is a SONET/SDH optical carrier level (OC-3, OC-12, OC-48...).
type OC int

// Carrier levels used in the testbed. OC-12 carried the first-year
// 622 Mbit/s link; OC-48 the 2.4 Gbit/s upgrade of August 1998.
const (
	OC3  OC = 3
	OC12 OC = 12
	OC48 OC = 48
)

// baseOC1Line is the OC-1 line rate in bit/s.
const baseOC1Line = 51.84e6

// LineRate reports the gross optical line rate in bit/s.
func (c OC) LineRate() float64 { return baseOC1Line * float64(c) }

// PayloadRate reports the SDH payload (SPE) rate available to the ATM
// cell stream in bit/s: the line rate minus section/line/path overhead.
// For concatenated STS-Nc the payload is 149.76 Mbit/s per STS-3c.
func (c OC) PayloadRate() float64 {
	// 149.76 Mbit/s usable per OC-3 of carrier.
	return 149.76e6 * float64(c) / 3
}

// ATMPayloadRate reports the bandwidth available to AAL5 payloads in
// bit/s after both SDH overhead and the 5/53 cell-header tax.
func (c OC) ATMPayloadRate() float64 {
	return c.PayloadRate() * CellPayload / CellSize
}

func (c OC) String() string { return fmt.Sprintf("OC-%d", int(c)) }

// CBRVC describes a constant-bit-rate virtual circuit, as used for the
// D1 studio-video streams in the multimedia project.
type CBRVC struct {
	// PCR is the peak cell rate in cells per second.
	PCR float64
}

// NewCBRVC builds a CBR VC sized to carry payloadBps of AAL5 payload.
func NewCBRVC(payloadBps float64) CBRVC {
	return CBRVC{PCR: payloadBps / 8 / CellPayload}
}

// CellInterval reports the inter-cell emission interval in seconds.
func (v CBRVC) CellInterval() float64 {
	if v.PCR <= 0 {
		return 0
	}
	return 1 / v.PCR
}

// WireBps reports the wire bandwidth the VC occupies in bit/s.
func (v CBRVC) WireBps() float64 { return v.PCR * CellSize * 8 }

// PayloadBps reports the AAL5 payload bandwidth of the VC in bit/s.
func (v CBRVC) PayloadBps() float64 { return v.PCR * CellPayload * 8 }
