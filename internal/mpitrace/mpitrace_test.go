package mpitrace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
)

func TestRecorderWithRealMPIRun(t *testing.T) {
	rec := NewRecorder()
	err := mpi.RunHosts([]string{"a", "a", "b"}, nil, rec, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, make([]byte, 100)); err != nil {
				return err
			}
			if err := c.Send(2, 1, make([]byte, 200)); err != nil {
				return err
			}
		} else {
			if _, err := c.Recv(0, 1); err != nil {
				return err
			}
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := rec.Stats()
	if len(stats.Ranks) != 3 {
		t.Fatalf("%d ranks in stats", len(stats.Ranks))
	}
	r0 := stats.Ranks[0]
	if r0.BytesSent < 300 {
		t.Errorf("rank 0 sent %d bytes, want >= 300", r0.BytesSent)
	}
	if stats.Matrix[0][1] != 100 || stats.Matrix[0][2] != 200 {
		t.Errorf("matrix = %v", stats.Matrix)
	}
	// Barrier traffic appears as collective events (counted in
	// sends/recvs but not the p2p matrix).
	totalSends := 0
	for _, rs := range stats.Ranks {
		totalSends += rs.Sends
	}
	if totalSends <= 2 {
		t.Errorf("expected collective sends beyond the 2 p2p ones, got %d", totalSends)
	}
	text := FormatStats(stats)
	if !strings.Contains(text, "message matrix") || !strings.Contains(text, "0 -> 1: 100") {
		t.Errorf("FormatStats output missing content:\n%s", text)
	}
}

func TestGanttRendering(t *testing.T) {
	rec := NewRecorder()
	base := time.Now()
	rec.Event(0, "send", 1, 0, 10, base, base.Add(10*time.Millisecond))
	rec.Event(1, "recv", 0, 0, 10, base.Add(5*time.Millisecond), base.Add(20*time.Millisecond))
	g := rec.Gantt(40)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), g)
	}
	if !strings.Contains(lines[1], "#") || !strings.Contains(lines[2], "#") {
		t.Errorf("gantt missing activity bars:\n%s", g)
	}
	// Rank 0's bar starts at the left edge; rank 1's does not.
	r0 := strings.Index(lines[1], "#")
	r1 := strings.Index(lines[2], "#")
	if r0 >= r1 {
		t.Errorf("expected rank 0 activity to start before rank 1:\n%s", g)
	}
}

func TestGanttEmpty(t *testing.T) {
	rec := NewRecorder()
	if g := rec.Gantt(20); !strings.Contains(g, "no events") {
		t.Errorf("empty gantt = %q", g)
	}
}

func TestEventsSorted(t *testing.T) {
	rec := NewRecorder()
	base := time.Now()
	rec.Event(0, "send", 1, 0, 1, base.Add(time.Second), base.Add(2*time.Second))
	rec.Event(1, "send", 0, 0, 1, base, base.Add(time.Second))
	ev := rec.Events()
	if len(ev) != 2 || !ev[0].Start.Before(ev[1].Start) {
		t.Error("events not sorted by start time")
	}
	if ev[0].Duration() != time.Second {
		t.Errorf("duration = %v", ev[0].Duration())
	}
}
