// Package mpitrace is the VAMPIR-analogue for this repository: it
// records the communication events of an internal/mpi program and
// renders per-rank statistics, a source->destination message matrix and
// a text Gantt chart of communication activity. The original testbed
// extended Pallas' VAMPIR tool for the metacomputing MPI library; this
// package provides the same workflow for programs written against
// internal/mpi.
package mpitrace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one recorded communication operation.
type Event struct {
	Rank  int
	Kind  string // "send", "recv", "coll-send", "coll-recv"
	Peer  int
	Tag   int
	Bytes int
	Start time.Time
	End   time.Time
}

// Duration reports the time spent inside the operation.
func (e Event) Duration() time.Duration { return e.End.Sub(e.Start) }

// Recorder collects events; it implements mpi.Tracer and is safe for
// concurrent use by all ranks.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Event implements the mpi.Tracer interface.
func (r *Recorder) Event(rank int, kind string, peer, tag, bytes int, start, end time.Time) {
	r.mu.Lock()
	r.events = append(r.events, Event{rank, kind, peer, tag, bytes, start, end})
	r.mu.Unlock()
}

// Events returns a copy of all recorded events sorted by start time.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// RankStats summarizes one rank's communication behaviour.
type RankStats struct {
	Rank      int
	Sends     int
	Recvs     int
	BytesSent int64
	BytesRecv int64
	CommTime  time.Duration
}

// Stats aggregates the trace.
type Stats struct {
	Ranks []RankStats
	// Matrix[src][dst] is the total user-payload bytes sent src->dst
	// (point-to-point sends only).
	Matrix map[int]map[int]int64
}

// Stats computes per-rank summaries and the message matrix.
func (r *Recorder) Stats() Stats {
	byRank := map[int]*RankStats{}
	matrix := map[int]map[int]int64{}
	for _, e := range r.Events() {
		rs, ok := byRank[e.Rank]
		if !ok {
			rs = &RankStats{Rank: e.Rank}
			byRank[e.Rank] = rs
		}
		rs.CommTime += e.Duration()
		switch e.Kind {
		case "send", "coll-send":
			rs.Sends++
			rs.BytesSent += int64(e.Bytes)
			if e.Kind == "send" {
				row := matrix[e.Rank]
				if row == nil {
					row = map[int]int64{}
					matrix[e.Rank] = row
				}
				row[e.Peer] += int64(e.Bytes)
			}
		case "recv", "coll-recv":
			rs.Recvs++
			rs.BytesRecv += int64(e.Bytes)
		}
	}
	var ranks []RankStats
	for _, rs := range byRank {
		ranks = append(ranks, *rs)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].Rank < ranks[j].Rank })
	return Stats{Ranks: ranks, Matrix: matrix}
}

// Gantt renders a fixed-width text timeline: one row per rank, '#' where
// the rank was inside a communication call, '.' where it was computing
// (or idle). It is the textual equivalent of VAMPIR's timeline display.
func (r *Recorder) Gantt(width int) string {
	events := r.Events()
	if len(events) == 0 || width <= 0 {
		return "(no events)\n"
	}
	t0 := events[0].Start
	t1 := events[0].End
	maxRank := 0
	for _, e := range events {
		if e.Start.Before(t0) {
			t0 = e.Start
		}
		if e.End.After(t1) {
			t1 = e.End
		}
		if e.Rank > maxRank {
			maxRank = e.Rank
		}
	}
	span := t1.Sub(t0)
	if span <= 0 {
		span = time.Nanosecond
	}
	rows := make([][]byte, maxRank+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, e := range events {
		a := int(float64(e.Start.Sub(t0)) / float64(span) * float64(width))
		b := int(float64(e.End.Sub(t0)) / float64(span) * float64(width))
		if b >= width {
			b = width - 1
		}
		for i := a; i <= b && i < width; i++ {
			rows[e.Rank][i] = '#'
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline %v (%d events, '#'=in MPI)\n", span.Round(time.Microsecond), len(events))
	for rank, row := range rows {
		fmt.Fprintf(&sb, "rank %2d |%s|\n", rank, row)
	}
	return sb.String()
}

// FormatStats renders the per-rank table and matrix as text.
func FormatStats(s Stats) string {
	var sb strings.Builder
	sb.WriteString("rank   sends   recvs     sent_bytes     recv_bytes      comm_time\n")
	for _, rs := range s.Ranks {
		fmt.Fprintf(&sb, "%4d  %6d  %6d  %13d  %13d  %13v\n",
			rs.Rank, rs.Sends, rs.Recvs, rs.BytesSent, rs.BytesRecv, rs.CommTime.Round(time.Microsecond))
	}
	if len(s.Matrix) > 0 {
		sb.WriteString("message matrix (src -> dst: bytes)\n")
		var srcs []int
		for src := range s.Matrix {
			srcs = append(srcs, src)
		}
		sort.Ints(srcs)
		for _, src := range srcs {
			var dsts []int
			for dst := range s.Matrix[src] {
				dsts = append(dsts, dst)
			}
			sort.Ints(dsts)
			for _, dst := range dsts {
				fmt.Fprintf(&sb, "  %d -> %d: %d\n", src, dst, s.Matrix[src][dst])
			}
		}
	}
	return sb.String()
}
