// Package bwin models the capacity-planning context of section 1: the
// German broadband scientific network (B-WiN, ATM-based since 1996,
// access capacities up to 155 Mbit/s) whose traffic growth made the
// DFN-Verein plan a national gigabit upgrade for the year 2000 —
// "extrapolations of the growth rates of the last years show that the
// current infrastructure will reach its limit in the next year".
//
// The model is the standard exponential-growth extrapolation used for
// such planning, plus the saturation-year arithmetic that motivated the
// two gigabit testbeds.
package bwin

import (
	"fmt"
	"math"
)

// TrafficModel extrapolates network demand exponentially.
type TrafficModel struct {
	// BaseYear anchors the extrapolation.
	BaseYear float64
	// BaseMbps is the peak demand in the base year.
	BaseMbps float64
	// AnnualGrowth is the yearly multiplication factor (2 = doubling).
	AnnualGrowth float64
}

// DefaultBWiN returns the growth picture of the late-1990s German
// scientific network: ~39 Mbit/s of peak demand in 1997, doubling
// yearly — which saturates the 155 Mbit/s access infrastructure around
// the end of 1999, matching the paper's "will reach its limit in the
// next year" and the upgrade planned for the beginning of 2000.
func DefaultBWiN() TrafficModel {
	return TrafficModel{BaseYear: 1997, BaseMbps: 39, AnnualGrowth: 2.0}
}

// AccessCapacityMbps is the B-WiN access limit ("up to 155 Mbit/s").
const AccessCapacityMbps = 155

// GigabitCapacityMbps is the planned upgrade capacity (the testbed's
// 2.4 Gbit/s payload class).
const GigabitCapacityMbps = 2400

// DemandAt extrapolates the demand in Mbit/s at the given (fractional)
// year.
func (m TrafficModel) DemandAt(year float64) float64 {
	if m.AnnualGrowth <= 0 {
		return m.BaseMbps
	}
	return m.BaseMbps * math.Pow(m.AnnualGrowth, year-m.BaseYear)
}

// SaturationYear reports the (fractional) year at which demand reaches
// the given capacity, or an error when the model never reaches it.
func (m TrafficModel) SaturationYear(capacityMbps float64) (float64, error) {
	if capacityMbps <= 0 {
		return 0, fmt.Errorf("bwin: non-positive capacity %v", capacityMbps)
	}
	if m.BaseMbps >= capacityMbps {
		return m.BaseYear, nil
	}
	if m.AnnualGrowth <= 1 {
		return 0, fmt.Errorf("bwin: growth factor %v never saturates %v Mbit/s", m.AnnualGrowth, capacityMbps)
	}
	years := math.Log(capacityMbps/m.BaseMbps) / math.Log(m.AnnualGrowth)
	return m.BaseYear + years, nil
}

// HeadroomYears reports how much longer the upgrade buys compared to
// the old capacity under the same growth.
func (m TrafficModel) HeadroomYears(oldCap, newCap float64) (float64, error) {
	y1, err := m.SaturationYear(oldCap)
	if err != nil {
		return 0, err
	}
	y2, err := m.SaturationYear(newCap)
	if err != nil {
		return 0, err
	}
	return y2 - y1, nil
}
