package bwin

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultSaturatesBeforeUpgrade(t *testing.T) {
	m := DefaultBWiN()
	// The paper (written 1999): "the current infrastructure will
	// reach its limit in the next year", with the upgrade planned for
	// the beginning of 2000.
	y, err := m.SaturationYear(AccessCapacityMbps)
	if err != nil {
		t.Fatal(err)
	}
	if y < 1998.8 || y > 2000.2 {
		t.Errorf("B-WiN saturation year = %.2f, want ~1999-2000", y)
	}
}

func TestGigabitBuysYears(t *testing.T) {
	m := DefaultBWiN()
	h, err := m.HeadroomYears(AccessCapacityMbps, GigabitCapacityMbps)
	if err != nil {
		t.Fatal(err)
	}
	// 2400/155 at doubling: log2(15.5) ~ 3.95 years of headroom.
	if math.Abs(h-math.Log2(GigabitCapacityMbps/155.0)) > 1e-9 {
		t.Errorf("headroom = %.2f years", h)
	}
}

func TestDemandGrowth(t *testing.T) {
	m := DefaultBWiN()
	if d := m.DemandAt(1997); d != 39 {
		t.Errorf("base demand = %v", d)
	}
	if d := m.DemandAt(1998); math.Abs(d-78) > 1e-9 {
		t.Errorf("1998 demand = %v", d)
	}
	flat := TrafficModel{BaseYear: 1997, BaseMbps: 10, AnnualGrowth: 0}
	if flat.DemandAt(2005) != 10 {
		t.Error("zero-growth model should stay flat")
	}
}

func TestSaturationEdgeCases(t *testing.T) {
	m := DefaultBWiN()
	if _, err := m.SaturationYear(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if y, err := m.SaturationYear(10); err != nil || y != m.BaseYear {
		t.Errorf("already-saturated: y=%v err=%v", y, err)
	}
	noGrowth := TrafficModel{BaseYear: 1997, BaseMbps: 10, AnnualGrowth: 1}
	if _, err := noGrowth.SaturationYear(100); err == nil {
		t.Error("non-growing model claims saturation")
	}
}

// Property: the demand at the saturation year equals the capacity.
func TestSaturationConsistency(t *testing.T) {
	f := func(baseRaw, capRaw uint16) bool {
		base := 1 + float64(baseRaw%1000)
		cap := base + 1 + float64(capRaw%10000)
		m := TrafficModel{BaseYear: 1997, BaseMbps: base, AnnualGrowth: 2}
		y, err := m.SaturationYear(cap)
		if err != nil {
			return false
		}
		return math.Abs(m.DemandAt(y)-cap) < 1e-6*cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
