package video

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/netsim"
	"repro/internal/sim"
)

type clipFramer struct{}

func (clipFramer) WireSize(n int) int { return atm.CLIPWireBytes(n) }
func (clipFramer) Name() string       { return "atm-clip" }

func link(payloadBps float64) (*netsim.Network, netsim.NodeID, netsim.NodeID) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddNode("studio")
	b := n.AddNode("theater")
	n.Connect(a, b, netsim.LinkConfig{
		Bps: payloadBps, Delay: 500 * time.Microsecond, MTU: 9180,
		Framer: clipFramer{}, QueueBytes: 32 << 20,
	})
	n.ComputeRoutes()
	return n, a.ID, b.ID
}

func TestD1Constants(t *testing.T) {
	// 270 Mbit/s at 25 fps = 10.8 Mbit = 1.35 MByte per frame.
	if FrameBytes != 1350000 {
		t.Errorf("FrameBytes = %d", FrameBytes)
	}
	if FrameInterval != 40*time.Millisecond {
		t.Errorf("FrameInterval = %v", FrameInterval)
	}
}

func TestStreamOverOC12AllOnTime(t *testing.T) {
	// A 270 Mbit/s stream over the OC-12 SDH payload (599 Mbit/s):
	// ample headroom, every frame on time with low jitter.
	n, a, b := link(atm.OC12.PayloadRate())
	res, err := Stream(n, a, b, StreamConfig{Frames: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime != 50 || res.Late != 0 || res.LostPackets != 0 {
		t.Errorf("OC-12: %d on time, %d late, %d lost", res.OnTime, res.Late, res.LostPackets)
	}
	if res.PeakJitter > 5*time.Millisecond {
		t.Errorf("peak jitter %v on an idle OC-12", res.PeakJitter)
	}
}

func TestStreamOverOC3Fails(t *testing.T) {
	// The OC-3 payload (149.76 Mbit/s) cannot carry 270 Mbit/s: the
	// queue grows without bound and frames fall behind or drop.
	n, a, b := link(atm.OC3.PayloadRate())
	res, err := Stream(n, a, b, StreamConfig{Frames: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime > 5 {
		t.Errorf("OC-3 delivered %d frames on time; the link is undersized", res.OnTime)
	}
	if res.Late == 0 && res.LostPackets == 0 {
		t.Error("expected lateness or loss on an undersized link")
	}
}

func TestStreamSharesOC48WithHeadroom(t *testing.T) {
	// On OC-48 the same stream is a small fraction of capacity.
	n, a, b := link(atm.OC48.PayloadRate())
	res, err := Stream(n, a, b, StreamConfig{Frames: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime != 25 {
		t.Errorf("OC-48: %d/25 on time", res.OnTime)
	}
	if res.MeanDelay > 20*time.Millisecond {
		t.Errorf("mean delay %v, want small on OC-48", res.MeanDelay)
	}
}

func TestFitsLink(t *testing.T) {
	cellTax := 53.0 / 48.0
	if !FitsLink(atm.OC12.PayloadRate(), cellTax) {
		t.Error("D1 should fit OC-12 after cell tax")
	}
	if FitsLink(atm.OC3.PayloadRate(), cellTax) {
		t.Error("D1 should not fit OC-3")
	}
}

func TestStreamValidation(t *testing.T) {
	n, a, b := link(atm.OC12.PayloadRate())
	if _, err := Stream(n, a, b, StreamConfig{}); err == nil {
		t.Error("zero frames accepted")
	}
}
