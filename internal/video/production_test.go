package video

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// productionNet builds N source sites feeding a mixer through a shared
// backbone of the given payload rate; each source has its own 622
// attach (the dark-fibre extension topology).
func productionNet(nSources int, backboneBps float64) (*netsim.Network, []netsim.NodeID, netsim.NodeID) {
	k := sim.NewKernel()
	n := netsim.New(k)
	swA := n.AddNode("sw-sources", netsim.WithForwardCost(5*time.Microsecond, 16e9))
	swB := n.AddNode("sw-studio", netsim.WithForwardCost(5*time.Microsecond, 16e9))
	n.Connect(swA, swB, netsim.LinkConfig{
		Bps: backboneBps, Delay: 200 * time.Microsecond, MTU: 9180,
		Framer: clipFramer{}, QueueBytes: 64 << 20,
	})
	var sources []netsim.NodeID
	for i := 0; i < nSources; i++ {
		src := n.AddNode("camera")
		n.Connect(src, swA, netsim.LinkConfig{
			Bps: atm.OC12.PayloadRate(), Delay: 50 * time.Microsecond, MTU: 9180,
			Framer: clipFramer{}, QueueBytes: 32 << 20,
		})
		sources = append(sources, src.ID)
	}
	mixer := n.AddNode("mixer")
	n.Connect(mixer, swB, netsim.LinkConfig{
		Bps: atm.OC48.PayloadRate(), Delay: 50 * time.Microsecond, MTU: 9180,
		Framer: clipFramer{}, QueueBytes: 64 << 20,
	})
	n.ComputeRoutes()
	return n, sources, mixer.ID
}

func TestProductionTwoSourcesOnOC48(t *testing.T) {
	// Two 270 Mbit/s feeds (540 total) over an OC-48 backbone:
	// everything composites on time with tight sync.
	n, sources, mixer := productionNet(2, atm.OC48.PayloadRate())
	res, err := Produce(n, sources, mixer, ProductionConfig{Sources: 2, Frames: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime != 40 || res.LostPackets != 0 {
		t.Errorf("OC-48 production: %d/%d on time, %d lost", res.OnTime, res.Frames, res.LostPackets)
	}
	if res.PeakSkew > 5*time.Millisecond {
		t.Errorf("peak source skew %v, want tight sync", res.PeakSkew)
	}
}

func TestProductionTwoSourcesBarelyFitOC12(t *testing.T) {
	// Two framed 270 Mbit/s feeds occupy 598.7 of the 599.04 Mbit/s
	// OC-12 payload — the production runs at the absolute edge of the
	// pre-upgrade backbone (one reason the dark-fibre extensions were
	// needed for TV production).
	n, sources, mixer := productionNet(2, atm.OC12.PayloadRate())
	res, err := Produce(n, sources, mixer, ProductionConfig{Sources: 2, Frames: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostPackets != 0 {
		t.Errorf("edge-of-capacity production lost %d packets", res.LostPackets)
	}
	if res.OnTime+res.Late != res.Frames {
		t.Errorf("frame accounting broken: %d + %d != %d", res.OnTime, res.Late, res.Frames)
	}
}

func TestProductionThreeSourcesOverloadOC12(t *testing.T) {
	// Three 270 Mbit/s feeds (810 + cell tax) clearly exceed the
	// 599 Mbit/s OC-12 payload: frames fall behind or drop.
	n, sources, mixer := productionNet(3, atm.OC12.PayloadRate())
	res, err := Produce(n, sources, mixer, ProductionConfig{Sources: 3, Frames: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime > 10 {
		t.Errorf("OC-12 carried %d/%d composite frames on time; it should be overloaded", res.OnTime, res.Frames)
	}
}

func TestProductionThreeSourcesOnOC48(t *testing.T) {
	n, sources, mixer := productionNet(3, atm.OC48.PayloadRate())
	res, err := Produce(n, sources, mixer, ProductionConfig{Sources: 3, Frames: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime != 25 {
		t.Errorf("3-source production: %d/25 on time", res.OnTime)
	}
	if res.MeanSkew > res.PeakSkew {
		t.Error("mean skew exceeds peak skew")
	}
}

func TestProductionValidation(t *testing.T) {
	n, sources, mixer := productionNet(2, atm.OC48.PayloadRate())
	if _, err := Produce(n, sources, mixer, ProductionConfig{Sources: 1, Frames: 5}); err == nil {
		t.Error("single source accepted")
	}
	if _, err := Produce(n, sources[:1], mixer, ProductionConfig{Sources: 2, Frames: 5}); err == nil {
		t.Error("missing source nodes accepted")
	}
	if _, err := Produce(n, sources, mixer, ProductionConfig{Sources: 2}); err == nil {
		t.Error("zero frames accepted")
	}
}
