// Package video reimplements the "Multimedia in a Gigabit-WAN" project:
// transfer of studio-quality digital video over ATM. The reference
// stream is uncompressed D1 (CCIR-601/SDI): 27 MHz sampling, 10-bit
// 4:2:2 -> a constant 270 Mbit/s, carried on a CBR virtual circuit. The
// package provides the stream arithmetic and a packet-level streaming
// experiment over the simulated testbed with jitter-buffer accounting.
package video

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// CCIR-601 / D1 constants.
const (
	// D1Bps is the serial digital interface rate in bit/s.
	D1Bps = 270e6
	// FrameRate is PAL: 25 frames/s.
	FrameRate = 25
	// FrameBits is the per-frame payload of the 270 Mbit/s stream.
	FrameBits = D1Bps / FrameRate
	// FrameBytes is FrameBits in bytes (1.35 MByte).
	FrameBytes = int(FrameBits / 8)
	// FrameInterval is the frame period.
	FrameInterval = time.Second / FrameRate
)

// StreamConfig configures a streaming experiment.
type StreamConfig struct {
	// Frames is the number of frames to stream.
	Frames int
	// MTU is the packetization size (network-layer bytes).
	MTU int
	// TargetDelay is the playout deadline relative to the frame's
	// nominal generation time (the jitter buffer depth).
	TargetDelay time.Duration
}

// StreamResult summarizes reception quality.
type StreamResult struct {
	Frames      int
	OnTime      int
	Late        int
	LostPackets int
	// MeanDelay is the mean frame completion delay relative to
	// generation.
	MeanDelay time.Duration
	// PeakJitter is the worst absolute deviation of inter-frame
	// completion spacing from the nominal 40 ms.
	PeakJitter time.Duration
}

// Stream plays a D1 stream from src to dst over the simulated network:
// frames are paced at 25/s, each packetized into MTU-sized packets
// emitted CBR-evenly across the frame interval (the ATM forum CBR
// shaping discipline). It runs the kernel to completion.
func Stream(n *netsim.Network, src, dst netsim.NodeID, cfg StreamConfig) (StreamResult, error) {
	if cfg.Frames <= 0 {
		return StreamResult{}, fmt.Errorf("video: need frames > 0")
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 9180
	}
	if cfg.TargetDelay == 0 {
		cfg.TargetDelay = 80 * time.Millisecond
	}
	pktsPerFrame := (FrameBytes + cfg.MTU - 1) / cfg.MTU
	spacing := FrameInterval / time.Duration(pktsPerFrame)

	type frameState struct {
		received int
		complete sim.Time
	}
	frames := make([]frameState, cfg.Frames)
	var res StreamResult
	res.Frames = cfg.Frames

	// Injection runs on src's kernel, delivery (and frames[] updates) on
	// dst's. Drops can fire on any relay's kernel, so the loss counter is
	// an atomic summed after the run.
	srcK, dstK := n.KernelOf(src), n.KernelOf(dst)
	var lost int64
	for f := 0; f < cfg.Frames; f++ {
		f := f
		for k := 0; k < pktsPerFrame; k++ {
			size := cfg.MTU
			if k == pktsPerFrame-1 {
				size = FrameBytes - (pktsPerFrame-1)*cfg.MTU
			}
			at := sim.Time(f)*sim.Time(FrameInterval) + sim.Time(k)*sim.Time(spacing)
			srcK.At(at, func() {
				n.Send(&netsim.Packet{
					Src: src, Dst: dst, Bytes: size,
					OnDeliver: func(*netsim.Packet) {
						st := &frames[f]
						st.received++
						if st.received == pktsPerFrame {
							st.complete = dstK.Now()
						}
					},
					OnDrop: func(*netsim.Packet) { atomic.AddInt64(&lost, 1) },
				})
			})
		}
	}
	n.Run()
	res.LostPackets = int(lost)

	var sumDelay time.Duration
	completed := 0
	var prevComplete sim.Time
	for f := range frames {
		st := &frames[f]
		gen := sim.Time(f+1) * sim.Time(FrameInterval) // frame fully generated
		if st.received < pktsPerFrame {
			res.Late++ // incomplete = unplayable
			continue
		}
		completed++
		delay := st.complete.Sub(gen)
		sumDelay += delay
		if delay <= cfg.TargetDelay {
			res.OnTime++
		} else {
			res.Late++
		}
		if completed > 1 {
			gap := st.complete.Sub(prevComplete) - FrameInterval
			if gap < 0 {
				gap = -gap
			}
			if gap > res.PeakJitter {
				res.PeakJitter = gap
			}
		}
		prevComplete = st.complete
	}
	if completed > 0 {
		res.MeanDelay = sumDelay / time.Duration(completed)
	}
	return res, nil
}

// FitsLink reports whether the CBR stream's wire rate (after the given
// per-packet framing expansion factor) fits within payloadBps.
func FitsLink(payloadBps, framingFactor float64) bool {
	return D1Bps*framingFactor <= payloadBps
}
