package video

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Distributed virtual TV production (section 5): the dark-fibre
// extension to the DLR and the Academy of Media Arts was used for
// "distributed virtual TV-production", which "relies on the results of
// the multimedia project". A production composites several live D1
// sources (camera feeds, rendered virtual sets) arriving over the
// network; a composite frame can only be emitted once the matching
// frame of every source has fully arrived, so the slowest source and
// the inter-source arrival skew govern the output.

// ProductionConfig describes a composited production.
type ProductionConfig struct {
	// Sources is the number of D1 feeds (>= 2: e.g. camera + virtual
	// set).
	Sources int
	// Frames per source.
	Frames int
	// MTU used for packetization.
	MTU int
	// Deadline is the per-frame compositing deadline relative to the
	// frame's generation time.
	Deadline time.Duration
}

// ProductionResult summarizes compositing quality.
type ProductionResult struct {
	Frames      int
	OnTime      int
	Late        int
	LostPackets int
	// MeanSkew is the mean arrival spread between the first and last
	// source of each frame — the synchronisation burden of the mixer.
	MeanSkew time.Duration
	PeakSkew time.Duration
}

// Produce streams one D1 feed from each source node to the mixer and
// composites frame-by-frame. It runs the kernel to completion.
func Produce(n *netsim.Network, sources []netsim.NodeID, mixer netsim.NodeID, cfg ProductionConfig) (ProductionResult, error) {
	if cfg.Sources < 2 {
		return ProductionResult{}, fmt.Errorf("video: production needs >= 2 sources, got %d", cfg.Sources)
	}
	if len(sources) < cfg.Sources {
		return ProductionResult{}, fmt.Errorf("video: %d source nodes for %d sources", len(sources), cfg.Sources)
	}
	if cfg.Frames <= 0 {
		return ProductionResult{}, fmt.Errorf("video: need frames > 0")
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 9180
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = 120 * time.Millisecond
	}
	pktsPerFrame := (FrameBytes + cfg.MTU - 1) / cfg.MTU
	spacing := FrameInterval / time.Duration(pktsPerFrame)

	type frameState struct {
		arrived []sim.Time // completion per source; 0 = incomplete
		counts  []int
	}
	frames := make([]frameState, cfg.Frames)
	for f := range frames {
		frames[f].arrived = make([]sim.Time, cfg.Sources)
		frames[f].counts = make([]int, cfg.Sources)
	}
	var res ProductionResult
	res.Frames = cfg.Frames

	for s := 0; s < cfg.Sources; s++ {
		s := s
		for f := 0; f < cfg.Frames; f++ {
			f := f
			for k := 0; k < pktsPerFrame; k++ {
				size := cfg.MTU
				if k == pktsPerFrame-1 {
					size = FrameBytes - (pktsPerFrame-1)*cfg.MTU
				}
				at := sim.Time(f)*sim.Time(FrameInterval) + sim.Time(k)*sim.Time(spacing)
				n.K.At(at, func() {
					n.Send(&netsim.Packet{
						Src: sources[s], Dst: mixer, Bytes: size,
						OnDeliver: func(*netsim.Packet) {
							st := &frames[f]
							st.counts[s]++
							if st.counts[s] == pktsPerFrame {
								st.arrived[s] = n.K.Now()
							}
						},
						OnDrop: func(*netsim.Packet) { res.LostPackets++ },
					})
				})
			}
		}
	}
	n.K.Run()

	var skewSum time.Duration
	composited := 0
	for f := range frames {
		st := &frames[f]
		gen := sim.Time(f+1) * sim.Time(FrameInterval)
		complete := true
		var first, last sim.Time
		for s := 0; s < cfg.Sources; s++ {
			if st.arrived[s] == 0 {
				complete = false
				break
			}
			if s == 0 || st.arrived[s] < first {
				first = st.arrived[s]
			}
			if st.arrived[s] > last {
				last = st.arrived[s]
			}
		}
		if !complete {
			res.Late++
			continue
		}
		composited++
		skew := last.Sub(first)
		skewSum += skew
		if skew > res.PeakSkew {
			res.PeakSkew = skew
		}
		if last.Sub(gen) <= cfg.Deadline {
			res.OnTime++
		} else {
			res.Late++
		}
	}
	if composited > 0 {
		res.MeanSkew = skewSum / time.Duration(composited)
	}
	return res, nil
}
