// Package volume provides the 3-D image type shared by the MRI scanner
// simulator, the FIRE analysis modules and the visualization pipeline:
// float32 voxel grids with trilinear resampling, rigid shifts, gradient
// computation and slab domain decomposition (the decomposition FIRE
// uses on the T3E).
package volume

import (
	"fmt"
	"math"
)

// Volume is a dense 3-D scalar field, indexed x fastest (x + NX*(y + NY*z)).
type Volume struct {
	NX, NY, NZ int
	Data       []float32
}

// New allocates a zeroed volume.
func New(nx, ny, nz int) *Volume {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("volume: bad dims %dx%dx%d", nx, ny, nz))
	}
	return &Volume{NX: nx, NY: ny, NZ: nz, Data: make([]float32, nx*ny*nz)}
}

// Voxels reports the number of voxels.
func (v *Volume) Voxels() int { return v.NX * v.NY * v.NZ }

// Bytes reports the in-memory (and on-the-wire) size at 4 bytes/voxel.
func (v *Volume) Bytes() int { return v.Voxels() * 4 }

// Idx converts (x, y, z) to a linear index.
func (v *Volume) Idx(x, y, z int) int { return x + v.NX*(y+v.NY*z) }

// At returns the voxel at (x, y, z).
func (v *Volume) At(x, y, z int) float32 { return v.Data[v.Idx(x, y, z)] }

// Set assigns the voxel at (x, y, z).
func (v *Volume) Set(x, y, z int, val float32) { v.Data[v.Idx(x, y, z)] = val }

// Clone returns a deep copy.
func (v *Volume) Clone() *Volume {
	c := New(v.NX, v.NY, v.NZ)
	copy(c.Data, v.Data)
	return c
}

// SameShape reports whether u has identical dimensions.
func (v *Volume) SameShape(u *Volume) bool {
	return v.NX == u.NX && v.NY == u.NY && v.NZ == u.NZ
}

// Fill sets every voxel to val.
func (v *Volume) Fill(val float32) {
	for i := range v.Data {
		v.Data[i] = val
	}
}

// MinMax returns the smallest and largest voxel values.
func (v *Volume) MinMax() (min, max float32) {
	min, max = v.Data[0], v.Data[0]
	for _, x := range v.Data {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Mean returns the mean voxel value.
func (v *Volume) Mean() float64 {
	var s float64
	for _, x := range v.Data {
		s += float64(x)
	}
	return s / float64(len(v.Data))
}

// Std returns the population standard deviation of the voxel values.
func (v *Volume) Std() float64 {
	m := v.Mean()
	var s float64
	for _, x := range v.Data {
		d := float64(x) - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v.Data)))
}

// clamp restricts i to [0, n-1].
func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Trilinear samples the volume at a fractional coordinate with edge
// clamping.
func (v *Volume) Trilinear(x, y, z float64) float32 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	z0 := int(math.Floor(z))
	fx := x - float64(x0)
	fy := y - float64(y0)
	fz := z - float64(z0)
	x1, y1, z1 := x0+1, y0+1, z0+1
	x0, y0, z0 = clamp(x0, v.NX), clamp(y0, v.NY), clamp(z0, v.NZ)
	x1, y1, z1 = clamp(x1, v.NX), clamp(y1, v.NY), clamp(z1, v.NZ)

	c000 := float64(v.At(x0, y0, z0))
	c100 := float64(v.At(x1, y0, z0))
	c010 := float64(v.At(x0, y1, z0))
	c110 := float64(v.At(x1, y1, z0))
	c001 := float64(v.At(x0, y0, z1))
	c101 := float64(v.At(x1, y0, z1))
	c011 := float64(v.At(x0, y1, z1))
	c111 := float64(v.At(x1, y1, z1))

	c00 := c000*(1-fx) + c100*fx
	c10 := c010*(1-fx) + c110*fx
	c01 := c001*(1-fx) + c101*fx
	c11 := c011*(1-fx) + c111*fx
	c0 := c00*(1-fy) + c10*fy
	c1 := c01*(1-fy) + c11*fy
	return float32(c0*(1-fz) + c1*fz)
}

// Shift returns the volume rigidly translated by (dx, dy, dz) voxels
// (fractional allowed), resampled trilinearly with edge clamping. The
// result at (x,y,z) is the input at (x-dx, y-dy, z-dz).
func (v *Volume) Shift(dx, dy, dz float64) *Volume {
	out := New(v.NX, v.NY, v.NZ)
	for z := 0; z < v.NZ; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				out.Set(x, y, z, v.Trilinear(float64(x)-dx, float64(y)-dy, float64(z)-dz))
			}
		}
	}
	return out
}

// Gradient returns central-difference spatial gradients (gx, gy, gz) at
// voxel (x, y, z), using one-sided differences at the boundary.
func (v *Volume) Gradient(x, y, z int) (gx, gy, gz float64) {
	sample := func(a, b float32, h float64) float64 { return float64(a-b) / h }
	xm, xp := clamp(x-1, v.NX), clamp(x+1, v.NX)
	ym, yp := clamp(y-1, v.NY), clamp(y+1, v.NY)
	zm, zp := clamp(z-1, v.NZ), clamp(z+1, v.NZ)
	gx = sample(v.At(xp, y, z), v.At(xm, y, z), float64(xp-xm))
	gy = sample(v.At(x, yp, z), v.At(x, ym, z), float64(yp-ym))
	gz = sample(v.At(x, y, zp), v.At(x, y, zm), float64(zp-zm))
	if xp == xm {
		gx = 0
	}
	if yp == ym {
		gy = 0
	}
	if zp == zm {
		gz = 0
	}
	return gx, gy, gz
}

// Slab is a contiguous range of z-slices [Z0, Z1).
type Slab struct{ Z0, Z1 int }

// Slices reports the number of slices in the slab.
func (s Slab) Slices() int { return s.Z1 - s.Z0 }

// SlabDecomp splits nz slices across p parts as evenly as possible,
// mirroring FIRE's domain decomposition of the brain. Parts may be
// empty when p > nz (the extra PEs idle — the source of the imbalance
// the cost model charges for).
func SlabDecomp(nz, p int) []Slab {
	if p <= 0 {
		panic("volume: SlabDecomp with p <= 0")
	}
	out := make([]Slab, p)
	base := nz / p
	rem := nz % p
	z := 0
	for i := 0; i < p; i++ {
		n := base
		if i < rem {
			n++
		}
		out[i] = Slab{z, z + n}
		z += n
	}
	return out
}

// MaxSlabVoxels reports the largest per-part voxel count when an
// nx x ny x nz volume is slab-decomposed p ways — the load-balance
// denominator for parallel-time modeling.
func MaxSlabVoxels(nx, ny, nz, p int) int {
	slabs := SlabDecomp(nz, p)
	max := 0
	for _, s := range slabs {
		if v := s.Slices() * nx * ny; v > max {
			max = v
		}
	}
	return max
}
