package volume

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIndexRoundTrip(t *testing.T) {
	v := New(4, 5, 6)
	n := 0
	for z := 0; z < 6; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 4; x++ {
				if v.Idx(x, y, z) != n {
					t.Fatalf("Idx(%d,%d,%d) = %d, want %d", x, y, z, v.Idx(x, y, z), n)
				}
				n++
			}
		}
	}
	if v.Voxels() != 120 || v.Bytes() != 480 {
		t.Errorf("Voxels=%d Bytes=%d", v.Voxels(), v.Bytes())
	}
}

func TestSetAtCloneFill(t *testing.T) {
	v := New(3, 3, 3)
	v.Set(1, 2, 0, 7)
	if v.At(1, 2, 0) != 7 {
		t.Error("Set/At")
	}
	c := v.Clone()
	c.Set(1, 2, 0, 9)
	if v.At(1, 2, 0) != 7 {
		t.Error("Clone aliases")
	}
	v.Fill(2)
	if v.At(0, 0, 0) != 2 || v.At(2, 2, 2) != 2 {
		t.Error("Fill")
	}
	if !v.SameShape(c) {
		t.Error("SameShape")
	}
	if v.SameShape(New(3, 3, 4)) {
		t.Error("SameShape false positive")
	}
}

func TestStats(t *testing.T) {
	v := New(2, 1, 1)
	v.Data[0], v.Data[1] = 1, 3
	if m := v.Mean(); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if s := v.Std(); s != 1 {
		t.Errorf("Std = %v", s)
	}
	min, max := v.MinMax()
	if min != 1 || max != 3 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
}

func TestTrilinearAtGridPoints(t *testing.T) {
	v := New(3, 3, 3)
	for i := range v.Data {
		v.Data[i] = float32(i)
	}
	for z := 0; z < 3; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				got := v.Trilinear(float64(x), float64(y), float64(z))
				if got != v.At(x, y, z) {
					t.Fatalf("Trilinear at grid (%d,%d,%d) = %v, want %v", x, y, z, got, v.At(x, y, z))
				}
			}
		}
	}
}

func TestTrilinearMidpoint(t *testing.T) {
	v := New(2, 2, 2)
	for i := range v.Data {
		v.Data[i] = float32(i) // 0..7
	}
	got := v.Trilinear(0.5, 0.5, 0.5)
	if math.Abs(float64(got)-3.5) > 1e-6 {
		t.Errorf("center sample = %v, want 3.5", got)
	}
}

// Property: trilinear interpolation of a linear field is exact.
func TestTrilinearReproducesLinearField(t *testing.T) {
	v := New(8, 8, 8)
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				v.Set(x, y, z, float32(2*x-3*y+z))
			}
		}
	}
	f := func(a, b, c uint8) bool {
		// Interior fractional points only.
		x := 0.5 + 6*float64(a)/256
		y := 0.5 + 6*float64(b)/256
		z := 0.5 + 6*float64(c)/256
		want := 2*x - 3*y + z
		got := float64(v.Trilinear(x, y, z))
		return math.Abs(got-want) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestShiftRecoversIntegerTranslation(t *testing.T) {
	v := New(8, 8, 8)
	v.Set(4, 4, 4, 100)
	s := v.Shift(2, 1, -1)
	if s.At(6, 5, 3) != 100 {
		t.Errorf("shifted peak at wrong place: %v", s.At(6, 5, 3))
	}
}

func TestGradientOfLinearField(t *testing.T) {
	v := New(6, 6, 6)
	for z := 0; z < 6; z++ {
		for y := 0; y < 6; y++ {
			for x := 0; x < 6; x++ {
				v.Set(x, y, z, float32(3*x+5*y-2*z))
			}
		}
	}
	gx, gy, gz := v.Gradient(3, 3, 3)
	if gx != 3 || gy != 5 || gz != -2 {
		t.Errorf("gradient = (%v,%v,%v), want (3,5,-2)", gx, gy, gz)
	}
	// Boundary gradients use one-sided differences but stay exact for
	// linear fields.
	gx, gy, gz = v.Gradient(0, 0, 5)
	if gx != 3 || gy != 5 || gz != -2 {
		t.Errorf("boundary gradient = (%v,%v,%v)", gx, gy, gz)
	}
}

func TestSlabDecompCoversExactly(t *testing.T) {
	f := func(nzRaw uint8, pRaw uint16) bool {
		nz := int(nzRaw%64) + 1
		p := int(pRaw%300) + 1
		slabs := SlabDecomp(nz, p)
		if len(slabs) != p {
			return false
		}
		z := 0
		total := 0
		for _, s := range slabs {
			if s.Z0 != z || s.Z1 < s.Z0 {
				return false
			}
			total += s.Slices()
			z = s.Z1
		}
		if total != nz || z != nz {
			return false
		}
		// Balance: sizes differ by at most 1.
		min, max := slabs[0].Slices(), slabs[0].Slices()
		for _, s := range slabs {
			if s.Slices() < min {
				min = s.Slices()
			}
			if s.Slices() > max {
				max = s.Slices()
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMaxSlabVoxels(t *testing.T) {
	// 16 slices over 8 parts: 2 slices each of 64x64.
	if got := MaxSlabVoxels(64, 64, 16, 8); got != 2*64*64 {
		t.Errorf("MaxSlabVoxels = %d", got)
	}
	// 16 slices over 32 parts: the busiest part still has 1 slice.
	if got := MaxSlabVoxels(64, 64, 16, 32); got != 64*64 {
		t.Errorf("MaxSlabVoxels(p>nz) = %d", got)
	}
}

// Property: a zero shift is the identity, and shifting by +d then -d
// returns close to the original for smooth fields.
func TestShiftProperties(t *testing.T) {
	// A smooth field: double trilinear resampling attenuates spatial
	// frequencies, so the round-trip bound only holds for fields slow
	// relative to the voxel grid.
	v := New(10, 10, 10)
	for z := 0; z < 10; z++ {
		for y := 0; y < 10; y++ {
			for x := 0; x < 10; x++ {
				v.Set(x, y, z, float32(math.Sin(float64(x)*0.25)+math.Cos(float64(y)*0.2)+float64(z)*0.1))
			}
		}
	}
	zero := v.Shift(0, 0, 0)
	for i := range v.Data {
		if zero.Data[i] != v.Data[i] {
			t.Fatalf("zero shift changed voxel %d", i)
		}
	}
	f := func(a, b, c int8) bool {
		dx := float64(a) / 200 // up to +-0.64 voxels
		dy := float64(b) / 200
		dz := float64(c) / 200
		back := v.Shift(dx, dy, dz).Shift(-dx, -dy, -dz)
		// Interior voxels restored within interpolation loss.
		for z := 2; z < 8; z++ {
			for y := 2; y < 8; y++ {
				for x := 2; x < 8; x++ {
					if math.Abs(float64(back.At(x, y, z)-v.At(x, y, z))) > 0.05 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBadDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0,1,1) did not panic")
		}
	}()
	New(0, 1, 1)
}

func TestSlabDecompBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SlabDecomp p=0 did not panic")
		}
	}()
	SlabDecomp(16, 0)
}
