package climate

import (
	"fmt"
	"math"
)

// FreezePoint is the sea-water freezing temperature in Kelvin.
const FreezePoint = 271.35

// Ocean is the slab ocean-ice model (the MOM-2 stand-in): sea-surface
// temperature evolving under horizontal diffusion, surface heat flux
// and weak relaxation to a meridional climatology, with a diagnostic
// ice fraction where the surface is at the freezing point.
type Ocean struct {
	Grid Grid
	SST  []float64 // Kelvin
	Ice  []float64 // fraction [0,1]

	// Kappa is the horizontal diffusivity in grid-index units^2 per
	// second (kappa*dt must stay below 0.25 for stability).
	Kappa float64
	// HeatCapacity is the areal heat capacity (J/m^2/K) of the mixed
	// layer, converting W/m^2 to K/s.
	HeatCapacity float64
	// Relax is the climatology relaxation rate (1/s).
	Relax float64

	scratch []float64
}

// NewOcean builds an ocean initialized to the meridional climatology.
func NewOcean(g Grid) *Ocean {
	o := &Ocean{
		Grid: g, SST: make([]float64, g.Cells()), Ice: make([]float64, g.Cells()),
		Kappa: 5e-6, HeatCapacity: 4.2e6 * 50, Relax: 1.0 / (86400 * 30),
		scratch: make([]float64, g.Cells()),
	}
	for j := 0; j < g.NLat; j++ {
		for i := 0; i < g.NLon; i++ {
			o.SST[g.Idx(j, i)] = o.Climatology(g.Lat(j))
		}
	}
	o.updateIce()
	return o
}

// Climatology is the relaxation target: warm equator, freezing poles.
func (o *Ocean) Climatology(lat float64) float64 {
	return 271.0 + 29*math.Cos(lat*math.Pi/180)*math.Cos(lat*math.Pi/180)
}

// Step advances the ocean by dt seconds under the given surface heat
// flux (W/m^2, positive warms the ocean, on the ocean grid).
func (o *Ocean) Step(dt float64, heatFlux []float64) error {
	g := o.Grid
	if len(heatFlux) != g.Cells() {
		return fmt.Errorf("climate: heat flux length %d != %d", len(heatFlux), g.Cells())
	}
	if o.Kappa*dt > 0.25 {
		return fmt.Errorf("climate: unstable ocean diffusion number %v (kappa*dt)", o.Kappa*dt)
	}
	copy(o.scratch, o.SST)
	for j := 0; j < g.NLat; j++ {
		jm, jp := j-1, j+1
		if jm < 0 {
			jm = 0
		}
		if jp >= g.NLat {
			jp = g.NLat - 1
		}
		for i := 0; i < g.NLon; i++ {
			im := (i - 1 + g.NLon) % g.NLon
			ip := (i + 1) % g.NLon
			c := g.Idx(j, i)
			lap := o.scratch[g.Idx(j, im)] + o.scratch[g.Idx(j, ip)] +
				o.scratch[g.Idx(jm, i)] + o.scratch[g.Idx(jp, i)] - 4*o.scratch[c]
			sst := o.scratch[c] +
				o.Kappa*dt*lap +
				dt*heatFlux[c]/o.HeatCapacity +
				dt*o.Relax*(o.Climatology(g.Lat(j))-o.scratch[c])
			// Latent buffering at the freezing point.
			if sst < FreezePoint-2 {
				sst = FreezePoint - 2
			}
			o.SST[c] = sst
		}
	}
	o.updateIce()
	return nil
}

// updateIce diagnoses ice cover: full ice 2 K below freezing, ramping
// to none at the freezing point.
func (o *Ocean) updateIce() {
	for c, t := range o.SST {
		switch {
		case t <= FreezePoint-2:
			o.Ice[c] = 1
		case t >= FreezePoint:
			o.Ice[c] = 0
		default:
			o.Ice[c] = (FreezePoint - t) / 2
		}
	}
}
