package climate

import (
	"math"
	"testing"
	"time"

	"repro/internal/mpi"
)

func TestGridGeometry(t *testing.T) {
	g := Grid{NLat: 4, NLon: 8}
	if g.Cells() != 32 || g.FieldBytes() != 256 {
		t.Error("cells/bytes")
	}
	if g.Lat(0) >= 0 || g.Lat(3) <= 0 {
		t.Error("latitude orientation")
	}
	if math.Abs(g.Lat(0)+g.Lat(3)) > 1e-12 {
		t.Error("latitudes not symmetric")
	}
	if g.Lon(0) <= 0 || g.Lon(7) >= 360 {
		t.Error("longitude range")
	}
}

func TestRegridConstantExact(t *testing.T) {
	src := Grid{NLat: 32, NLon: 64}
	dst := Grid{NLat: 10, NLon: 20}
	f := make([]float64, src.Cells())
	for i := range f {
		f[i] = 7.25
	}
	out, err := Regrid(src, f, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.Abs(v-7.25) > 1e-12 {
			t.Fatalf("constant not preserved at %d: %v", i, v)
		}
	}
}

func TestRegridSmoothFieldRoundTrip(t *testing.T) {
	src := Grid{NLat: 64, NLon: 128}
	dst := Grid{NLat: 32, NLon: 64}
	f := make([]float64, src.Cells())
	for j := 0; j < src.NLat; j++ {
		for i := 0; i < src.NLon; i++ {
			f[src.Idx(j, i)] = math.Sin(src.Lat(j)*math.Pi/180) +
				0.3*math.Cos(2*src.Lon(i)*math.Pi/180)
		}
	}
	down, err := Regrid(src, f, dst)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Regrid(dst, down, src)
	if err != nil {
		t.Fatal(err)
	}
	// Smooth fields survive a down-up round trip within a few percent.
	var rms, norm float64
	for i := range f {
		d := back[i] - f[i]
		rms += d * d
		norm += f[i] * f[i]
	}
	if rms/norm > 0.01 {
		t.Errorf("round-trip error %.3f%%", 100*rms/norm)
	}
	// Area mean approximately conserved.
	if d := math.Abs(AreaMean(src, f) - AreaMean(dst, down)); d > 0.01 {
		t.Errorf("area mean drifted by %v", d)
	}
}

func TestRegridValidation(t *testing.T) {
	if _, err := Regrid(Grid{4, 4}, make([]float64, 3), Grid{2, 2}); err == nil {
		t.Error("bad field length accepted")
	}
}

func TestOceanEquilibriumStable(t *testing.T) {
	g := Grid{NLat: 24, NLon: 48}
	o := NewOcean(g)
	before := append([]float64(nil), o.SST...)
	zero := make([]float64, g.Cells())
	for s := 0; s < 50; s++ {
		if err := o.Step(3600, zero); err != nil {
			t.Fatal(err)
		}
	}
	// At climatology with no flux the state drifts only by the slow
	// diffusive smoothing of the profile — bounded and small.
	var worst float64
	for i := range before {
		if d := math.Abs(o.SST[i] - before[i]); d > worst {
			worst = d
		}
	}
	if worst > 1.5 {
		t.Errorf("equilibrium drifted by %.2f K over 50 h", worst)
	}
}

func TestOceanWarmsUnderFlux(t *testing.T) {
	// Compare against a zero-flux control so diffusion/relaxation
	// drift cancels: the heated ocean must end warmer by about
	// flux*time/HeatCapacity.
	g := Grid{NLat: 16, NLon: 32}
	heated, control := NewOcean(g), NewOcean(g)
	flux := make([]float64, g.Cells())
	for i := range flux {
		flux[i] = 500 // W/m^2 heating
	}
	zero := make([]float64, g.Cells())
	for s := 0; s < 50; s++ {
		if err := heated.Step(3600, flux); err != nil {
			t.Fatal(err)
		}
		if err := control.Step(3600, zero); err != nil {
			t.Fatal(err)
		}
	}
	gain := AreaMean(g, heated.SST) - AreaMean(g, control.SST)
	want := 500.0 * 3600 * 50 / heated.HeatCapacity
	if gain < want*0.5 || gain > want*1.2 {
		t.Errorf("flux warming = %.3f K, want ~%.3f", gain, want)
	}
}

func TestOceanIceAtPoles(t *testing.T) {
	g := Grid{NLat: 24, NLon: 48}
	o := NewOcean(g)
	// Climatology puts the poles at ~271 K -> partial ice.
	poleIce := o.Ice[g.Idx(0, 0)]
	eqIce := o.Ice[g.Idx(g.NLat/2, 0)]
	if poleIce <= 0 {
		t.Error("no polar ice")
	}
	if eqIce != 0 {
		t.Error("equatorial ice")
	}
	for _, v := range o.Ice {
		if v < 0 || v > 1 {
			t.Fatalf("ice fraction %v out of [0,1]", v)
		}
	}
}

func TestOceanValidation(t *testing.T) {
	o := NewOcean(Grid{NLat: 8, NLon: 16})
	if err := o.Step(3600, make([]float64, 3)); err == nil {
		t.Error("bad flux length accepted")
	}
}

func TestAtmosFluxDirection(t *testing.T) {
	g := Grid{NLat: 16, NLon: 32}
	a := NewAtmos(g)
	// SST much colder than air everywhere: flux into ocean positive.
	sst := make([]float64, g.Cells())
	for i := range sst {
		sst[i] = 250
	}
	heat, tauX, _, err := a.Step(1800, sst)
	if err != nil {
		t.Fatal(err)
	}
	warm := 0
	for _, q := range heat {
		if q > 0 {
			warm++
		}
	}
	if warm < g.Cells()*9/10 {
		t.Errorf("only %d/%d cells have downward flux onto a cold ocean", warm, g.Cells())
	}
	// Wind stress follows the jet: westerly (positive) in
	// midlatitudes, easterly (negative) in the deep tropics.
	mid := g.Idx(g.NLat-3, 0) // ~ +60 degrees
	trop := g.Idx(g.NLat/2, 0)
	if tauX[mid] <= 0 {
		t.Errorf("midlatitude stress %v, want westerly > 0", tauX[mid])
	}
	if tauX[trop] >= 0 {
		t.Errorf("tropical stress %v, want easterly < 0", tauX[trop])
	}
}

func TestAtmosStaysBounded(t *testing.T) {
	g := Grid{NLat: 16, NLon: 32}
	a := NewAtmos(g)
	sst := make([]float64, g.Cells())
	for i := range sst {
		sst[i] = 290
	}
	for s := 0; s < 200; s++ {
		if _, _, _, err := a.Step(1800, sst); err != nil {
			t.Fatal(err)
		}
	}
	for i, ta := range a.TA {
		if ta < 180 || ta > 340 {
			t.Fatalf("air temperature %v K at %d out of physical range", ta, i)
		}
	}
}

func TestJetStructure(t *testing.T) {
	if Jet(45) <= 0 {
		t.Error("no midlatitude westerlies")
	}
	if Jet(0) >= 0 {
		t.Error("no tropical easterlies")
	}
}

func TestCoupledRunEndToEnd(t *testing.T) {
	cfg := CoupledConfig{
		OceanGrid: Grid{NLat: 32, NLon: 64},
		AtmosGrid: Grid{NLat: 16, NLon: 32},
		Dt:        3600,
		Steps:     24,
	}
	shaper := mpi.LinkShaper{Latency: 50 * time.Microsecond, Bps: 2e9}
	res, err := RunCoupled([3]string{"cray-t3e", "ibm-sp2", "coupler"}, shaper, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 24 {
		t.Errorf("steps = %d", res.Steps)
	}
	// Exchange size: ocean sends 2 fields on 32x64, atmos 3 on 16x32.
	want := 8*2*32*64 + 8*3*16*32
	if res.BytesPerExchange != want {
		t.Errorf("bytes/exchange = %d, want %d", res.BytesPerExchange, want)
	}
	// Physical sanity after a simulated day.
	if res.FinalMeanSST < 270 || res.FinalMeanSST > 310 {
		t.Errorf("mean SST = %.1f K", res.FinalMeanSST)
	}
	if res.MinSST < FreezePoint-2-1e-9 || res.MaxSST > 320 {
		t.Errorf("SST range [%.1f, %.1f]", res.MinSST, res.MaxSST)
	}
	if res.FinalIceFraction <= 0 || res.FinalIceFraction > 0.5 {
		t.Errorf("ice fraction = %.3f", res.FinalIceFraction)
	}
}

func TestCoupledRunValidation(t *testing.T) {
	if _, err := RunCoupled([3]string{"a", "b", "c"}, nil, CoupledConfig{}); err == nil {
		t.Error("zero steps accepted")
	}
}
