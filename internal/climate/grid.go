// Package climate reimplements the distributed climate/weather project
// of the testbed: an ocean-ice model (a MOM-2 stand-in) coupled to an
// atmospheric model (an IFS stand-in) through a CSM-style flux coupler
// that exchanges 2-D surface fields every coupling timestep — "up to
// 1 MByte in short bursts" across the WAN. The ocean ran on the Cray
// T3E, the atmosphere on the IBM SP2.
//
// The models are deliberately compact but physically structured:
// diffusive-advective evolution, radiative-equilibrium forcing, bulk
// air-sea exchange, an ice threshold, and bilinear regridding between
// the differing ocean and atmosphere grids.
package climate

import (
	"fmt"
	"math"
)

// Grid is a regular latitude-longitude grid with cell centers at
// lat_j = -90 + 180 (j+0.5)/NLat and lon_i = 360 (i+0.5)/NLon.
type Grid struct {
	NLat, NLon int
}

// Cells reports the number of grid cells.
func (g Grid) Cells() int { return g.NLat * g.NLon }

// Idx maps (lat row j, lon column i) to a linear index.
func (g Grid) Idx(j, i int) int { return j*g.NLon + i }

// Lat reports the latitude of row j in degrees.
func (g Grid) Lat(j int) float64 { return -90 + 180*(float64(j)+0.5)/float64(g.NLat) }

// Lon reports the longitude of column i in degrees.
func (g Grid) Lon(i int) float64 { return 360 * (float64(i) + 0.5) / float64(g.NLon) }

// FieldBytes reports the wire size of one float64 field on this grid.
func (g Grid) FieldBytes() int { return 8 * g.Cells() }

// Regrid interpolates a field from grid src to grid dst bilinearly,
// periodic in longitude and clamped in latitude. A constant field maps
// to the same constant exactly.
func Regrid(src Grid, f []float64, dst Grid) ([]float64, error) {
	if len(f) != src.Cells() {
		return nil, fmt.Errorf("climate: field length %d != %d cells", len(f), src.Cells())
	}
	out := make([]float64, dst.Cells())
	for j := 0; j < dst.NLat; j++ {
		// Fractional source row of this destination latitude.
		lat := dst.Lat(j)
		fj := (lat+90)/180*float64(src.NLat) - 0.5
		j0 := int(math.Floor(fj))
		wj := fj - float64(j0)
		j1 := j0 + 1
		if j0 < 0 {
			j0, j1, wj = 0, 0, 0
		}
		if j1 >= src.NLat {
			j0, j1, wj = src.NLat-1, src.NLat-1, 0
		}
		for i := 0; i < dst.NLon; i++ {
			lon := dst.Lon(i)
			fi := lon/360*float64(src.NLon) - 0.5
			i0 := int(math.Floor(fi))
			wi := fi - float64(i0)
			i1 := i0 + 1
			// Periodic wrap.
			i0 = ((i0 % src.NLon) + src.NLon) % src.NLon
			i1 = ((i1 % src.NLon) + src.NLon) % src.NLon
			v00 := f[src.Idx(j0, i0)]
			v01 := f[src.Idx(j0, i1)]
			v10 := f[src.Idx(j1, i0)]
			v11 := f[src.Idx(j1, i1)]
			out[dst.Idx(j, i)] = (1-wj)*((1-wi)*v00+wi*v01) + wj*((1-wi)*v10+wi*v11)
		}
	}
	return out, nil
}

// AreaMean reports the area-weighted (cos latitude) mean of a field.
func AreaMean(g Grid, f []float64) float64 {
	var sum, wsum float64
	for j := 0; j < g.NLat; j++ {
		w := math.Cos(g.Lat(j) * math.Pi / 180)
		for i := 0; i < g.NLon; i++ {
			sum += w * f[g.Idx(j, i)]
			wsum += w
		}
	}
	return sum / wsum
}
