package climate

import (
	"fmt"

	"repro/internal/mpi"
)

// The flux coupler (CSM-style) is its own process: it receives surface
// fields from each model, regrids them to the other model's grid, and
// forwards them. Ranks: 0 = ocean (Cray T3E in the testbed), 1 =
// atmosphere (IBM SP2), 2 = coupler (the CSM flux coupler).

// Message tags of the coupling protocol.
const (
	tagSSTIce = 21 // ocean -> coupler: SST, ice (ocean grid)
	tagToAtm  = 22 // coupler -> atmos: SST, ice (atmos grid)
	tagFlux   = 23 // atmos -> coupler: heat flux, tauX, tauY (atmos grid)
	tagToOcn  = 24 // coupler -> ocean: heat flux, tauX, tauY (ocean grid)
)

// CoupledConfig describes a coupled run.
type CoupledConfig struct {
	OceanGrid Grid
	AtmosGrid Grid
	// Dt is the model timestep in seconds; fields are exchanged every
	// step, as in the paper ("exchange of 2-D surface data every
	// timestep").
	Dt float64
	// Steps is the number of coupled steps.
	Steps int
}

// CoupledResult reports the outcome observed at the coupler.
type CoupledResult struct {
	Steps int
	// BytesPerExchange is the WAN payload per coupling step in each
	// direction pair (ocean->atm plus atm->ocean).
	BytesPerExchange int
	// FinalMeanSST is the area mean SST after the run.
	FinalMeanSST float64
	// FinalIceFraction is the area mean ice cover after the run.
	FinalIceFraction float64
	// MinSST and MaxSST bound the final SST field.
	MinSST, MaxSST float64
}

// RunCoupled executes the three-process coupled model on the given
// hosts (ocean, atmos, coupler) with WAN shaping between them.
func RunCoupled(hosts [3]string, shaper mpi.Shaper, cfg CoupledConfig) (CoupledResult, error) {
	if cfg.Steps <= 0 || cfg.Dt <= 0 {
		return CoupledResult{}, fmt.Errorf("climate: bad coupled config steps=%d dt=%v", cfg.Steps, cfg.Dt)
	}
	var result CoupledResult
	err := mpi.RunHosts(hosts[:], shaper, nil, func(c *mpi.Comm) error {
		switch c.Rank() {
		case 0:
			return runOcean(c, cfg, &result)
		case 1:
			return runAtmos(c, cfg)
		case 2:
			return runCoupler(c, cfg, &result)
		}
		return nil
	})
	return result, err
}

func runOcean(c *mpi.Comm, cfg CoupledConfig, result *CoupledResult) error {
	o := NewOcean(cfg.OceanGrid)
	n := cfg.OceanGrid.Cells()
	for s := 0; s < cfg.Steps; s++ {
		// Send SST and ice to the coupler as one burst.
		burst := make([]float64, 0, 2*n)
		burst = append(burst, o.SST...)
		burst = append(burst, o.Ice...)
		if err := c.SendFloat64s(2, tagSSTIce, burst); err != nil {
			return err
		}
		// Receive heat flux and stress (stress unused by the slab
		// ocean but carried for protocol fidelity).
		fields, err := c.RecvFloat64s(2, tagToOcn)
		if err != nil {
			return err
		}
		if len(fields) != 3*n {
			return fmt.Errorf("climate: ocean got %d values, want %d", len(fields), 3*n)
		}
		if err := o.Step(cfg.Dt, fields[:n]); err != nil {
			return err
		}
	}
	result.FinalMeanSST = AreaMean(cfg.OceanGrid, o.SST)
	result.FinalIceFraction = AreaMean(cfg.OceanGrid, o.Ice)
	min, max := o.SST[0], o.SST[0]
	for _, t := range o.SST {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	result.MinSST, result.MaxSST = min, max
	return nil
}

func runAtmos(c *mpi.Comm, cfg CoupledConfig) error {
	a := NewAtmos(cfg.AtmosGrid)
	n := cfg.AtmosGrid.Cells()
	for s := 0; s < cfg.Steps; s++ {
		fields, err := c.RecvFloat64s(2, tagToAtm)
		if err != nil {
			return err
		}
		if len(fields) != 2*n {
			return fmt.Errorf("climate: atmos got %d values, want %d", len(fields), 2*n)
		}
		sst := fields[:n]
		heat, tauX, tauY, err := a.Step(cfg.Dt, sst)
		if err != nil {
			return err
		}
		burst := make([]float64, 0, 3*n)
		burst = append(burst, heat...)
		burst = append(burst, tauX...)
		burst = append(burst, tauY...)
		if err := c.SendFloat64s(2, tagFlux, burst); err != nil {
			return err
		}
	}
	return nil
}

func runCoupler(c *mpi.Comm, cfg CoupledConfig, result *CoupledResult) error {
	og, ag := cfg.OceanGrid, cfg.AtmosGrid
	on, an := og.Cells(), ag.Cells()
	var bytesPerExchange int
	for s := 0; s < cfg.Steps; s++ {
		// Ocean -> coupler.
		burst, err := c.RecvFloat64s(0, tagSSTIce)
		if err != nil {
			return err
		}
		if len(burst) != 2*on {
			return fmt.Errorf("climate: coupler got %d ocean values, want %d", len(burst), 2*on)
		}
		bytesPerExchange = 8 * len(burst)
		// Regrid to the atmosphere grid.
		sstA, err := Regrid(og, burst[:on], ag)
		if err != nil {
			return err
		}
		iceA, err := Regrid(og, burst[on:], ag)
		if err != nil {
			return err
		}
		out := append(sstA, iceA...)
		if err := c.SendFloat64s(1, tagToAtm, out); err != nil {
			return err
		}
		// Atmos -> coupler.
		flux, err := c.RecvFloat64s(1, tagFlux)
		if err != nil {
			return err
		}
		if len(flux) != 3*an {
			return fmt.Errorf("climate: coupler got %d atmos values, want %d", len(flux), 3*an)
		}
		bytesPerExchange += 8 * len(flux)
		heatO, err := Regrid(ag, flux[:an], og)
		if err != nil {
			return err
		}
		tauXO, err := Regrid(ag, flux[an:2*an], og)
		if err != nil {
			return err
		}
		tauYO, err := Regrid(ag, flux[2*an:], og)
		if err != nil {
			return err
		}
		toOcn := append(append(heatO, tauXO...), tauYO...)
		if err := c.SendFloat64s(0, tagToOcn, toOcn); err != nil {
			return err
		}
	}
	result.Steps = cfg.Steps
	result.BytesPerExchange = bytesPerExchange
	return nil
}
