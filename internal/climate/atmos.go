package climate

import (
	"fmt"
	"math"
)

// Atmos is the atmospheric model (the IFS stand-in): near-surface air
// temperature on its own (coarser) grid, relaxed toward radiative
// equilibrium, zonally advected by a prescribed jet, and exchanging
// heat with the ocean surface through a bulk formula. It produces the
// surface fields the coupler ships to the ocean: net heat flux and wind
// stress.
type Atmos struct {
	Grid Grid
	TA   []float64 // near-surface air temperature, K

	// RadRelax is the radiative relaxation rate (1/s).
	RadRelax float64
	// ExchangeW is the bulk air-sea exchange coefficient (W/m^2/K).
	ExchangeW float64
	// AirCapacity is the areal heat capacity of the boundary layer
	// (J/m^2/K).
	AirCapacity float64

	scratch []float64
}

// NewAtmos builds an atmosphere at radiative equilibrium.
func NewAtmos(g Grid) *Atmos {
	a := &Atmos{
		Grid: g, TA: make([]float64, g.Cells()),
		RadRelax: 1.0 / (86400 * 10), ExchangeW: 20, AirCapacity: 1e5 * 1.2,
		scratch: make([]float64, g.Cells()),
	}
	for j := 0; j < g.NLat; j++ {
		for i := 0; i < g.NLon; i++ {
			a.TA[g.Idx(j, i)] = a.Equilibrium(g.Lat(j))
		}
	}
	return a
}

// Equilibrium is the radiative-equilibrium profile.
func (a *Atmos) Equilibrium(lat float64) float64 {
	return 253 + 40*math.Cos(lat*math.Pi/180)*math.Cos(lat*math.Pi/180)
}

// Jet is the prescribed zonal wind (m/s) at a latitude: westerlies in
// midlatitudes, easterlies in the tropics.
func Jet(lat float64) float64 {
	r := lat * math.Pi / 180
	return 18*math.Sin(2*r)*math.Sin(2*r) - 6*math.Cos(r)*math.Cos(r)
}

// Step advances the atmosphere by dt seconds given the sea-surface
// temperature regridded onto the atmosphere grid, returning the surface
// fields for the ocean: net heat flux into the ocean (W/m^2) and the
// zonal/meridional wind stress (N/m^2), all on the atmosphere grid.
func (a *Atmos) Step(dt float64, sst []float64) (heatFlux, tauX, tauY []float64, err error) {
	g := a.Grid
	if len(sst) != g.Cells() {
		return nil, nil, nil, fmt.Errorf("climate: SST length %d != %d", len(sst), g.Cells())
	}
	heatFlux = make([]float64, g.Cells())
	tauX = make([]float64, g.Cells())
	tauY = make([]float64, g.Cells())
	copy(a.scratch, a.TA)
	const rhoCd = 1.2 * 1.3e-3
	for j := 0; j < g.NLat; j++ {
		lat := g.Lat(j)
		u := Jet(lat)
		// Upwind CFL fraction: index cells advected per step.
		cells := u * dt / (111e3 * 360 / float64(g.NLon) * math.Max(0.2, math.Cos(lat*math.Pi/180)))
		if cells > 0.9 {
			cells = 0.9
		}
		if cells < -0.9 {
			cells = -0.9
		}
		for i := 0; i < g.NLon; i++ {
			c := g.Idx(j, i)
			// Upwind advection.
			var adv float64
			if cells >= 0 {
				im := (i - 1 + g.NLon) % g.NLon
				adv = cells * (a.scratch[g.Idx(j, im)] - a.scratch[c])
			} else {
				ip := (i + 1) % g.NLon
				adv = -cells * (a.scratch[g.Idx(j, ip)] - a.scratch[c])
			}
			// Air-sea exchange: flux into the ocean is positive when
			// the air is warmer.
			q := a.ExchangeW * (a.scratch[c] - sst[c])
			heatFlux[c] = q
			ta := a.scratch[c] + adv +
				dt*a.RadRelax*(a.Equilibrium(lat)-a.scratch[c]) -
				dt*q/a.AirCapacity
			a.TA[c] = ta
			tauX[c] = rhoCd * math.Abs(u) * u
			tauY[c] = 0
		}
	}
	return heatFlux, tauX, tauY, nil
}
