package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
	"unsafe"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.After(3*time.Second, func() { got = append(got, 3) })
	k.After(1*time.Second, func() { got = append(got, 1) })
	k.After(2*time.Second, func() { got = append(got, 2) })
	end := k.Run()
	if want := Time(3 * time.Second); end != want {
		t.Errorf("Run ended at %v, want %v", end, want)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events fired in order %v, want [1 2 3]", got)
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Time(time.Second), func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.After(time.Second, func() { fired = true })
	k.Cancel(e)
	k.Cancel(e) // double-cancel is a no-op
	k.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if k.Now() != 0 {
		t.Errorf("clock advanced to %v with no live events", k.Now())
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 5; i++ {
		k.At(Time(i)*Time(time.Second), func() { count++ })
	}
	k.RunUntil(Time(3 * time.Second))
	if count != 3 {
		t.Errorf("RunUntil(3s) fired %d events, want 3", count)
	}
	if k.Now() != Time(3*time.Second) {
		t.Errorf("clock at %v, want 3s", k.Now())
	}
	k.Run()
	if count != 5 {
		t.Errorf("Run fired %d events total, want 5", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	k := NewKernel()
	k.RunUntil(Time(7 * time.Second))
	if k.Now() != Time(7*time.Second) {
		t.Errorf("idle RunUntil left clock at %v, want 7s", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 5; i++ {
		k.At(Time(i), func() {
			count++
			if count == 2 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 2 {
		t.Errorf("Stop after 2 events, but %d fired", count)
	}
	k.Run() // resume
	if count != 5 {
		t.Errorf("resumed Run fired %d events total, want 5", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.After(time.Second, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Error("At in the past did not panic")
		}
	}()
	k.At(0, func() {})
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	k := NewKernel()
	fired := false
	k.After(-5*time.Second, func() { fired = true })
	k.Run()
	if !fired || k.Now() != 0 {
		t.Errorf("negative After: fired=%v now=%v, want true, 0", fired, k.Now())
	}
}

// Property: for arbitrary sets of non-negative delays, events fire in
// nondecreasing time order and the clock ends at the max delay.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		k := NewKernel()
		var fireTimes []Time
		var max Time
		for _, d := range delays {
			at := Time(d)
			if at > max {
				max = at
			}
			k.At(at, func() { fireTimes = append(fireTimes, k.Now()) })
		}
		k.Run()
		if len(fireTimes) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] }) {
			return false
		}
		return len(delays) == 0 || k.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Determinism: the same randomized schedule produces the same firing
// sequence on every run.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var got []int
		for i := 0; i < 500; i++ {
			i := i
			k.At(Time(rng.Intn(100)), func() { got = append(got, i) })
		}
		k.Run()
		return got
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDurationHelper(t *testing.T) {
	if d := Duration(1.5); d != 1500*time.Millisecond {
		t.Errorf("Duration(1.5) = %v", d)
	}
	if d := Duration(-1); d != 0 {
		t.Errorf("Duration(-1) = %v, want 0", d)
	}
	if d := Duration(1e300); d <= 0 {
		t.Errorf("Duration(1e300) overflowed to %v", d)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(2500 * time.Millisecond)
	if s := tm.Seconds(); s != 2.5 {
		t.Errorf("Seconds = %v", s)
	}
	if u := tm.Add(500 * time.Millisecond); u != Time(3*time.Second) {
		t.Errorf("Add = %v", u)
	}
	if d := tm.Sub(Time(time.Second)); d != 1500*time.Millisecond {
		t.Errorf("Sub = %v", d)
	}
	if tm.String() == "" {
		t.Error("empty String()")
	}
}

// Fired and cancelled event records are recycled through the pool; a
// handle kept past its event's lifetime must become inert rather than
// cancel whatever schedule reuses the record.
func TestStaleHandleDoesNotCancelRecycledEvent(t *testing.T) {
	k := NewKernel()
	stale := k.After(time.Second, func() {})
	k.Run() // fires; the record returns to the pool

	fired := false
	fresh := k.After(time.Second, func() { fired = true })
	if fresh.e != stale.e {
		t.Fatalf("pool did not recycle the record (got %p, want %p)", fresh.e, stale.e)
	}
	k.Cancel(stale) // refers to the fired schedule, must be a no-op
	k.Run()
	if !fired {
		t.Error("stale handle cancelled a recycled event")
	}
	if stale.Pending() || stale.When() != 0 {
		t.Errorf("stale handle still reports pending=%v when=%v", stale.Pending(), stale.When())
	}
}

func TestZeroEventCancelIsNoOp(t *testing.T) {
	k := NewKernel()
	k.Cancel(Event{}) // must not panic
	var ev Event
	if ev.Pending() {
		t.Error("zero Event reports pending")
	}
}

// Cancelling from the middle of a deep queue must preserve heap order.
func TestCancelDeepQueue(t *testing.T) {
	k := NewKernel()
	var evs []Event
	for i := 0; i < 1000; i++ {
		evs = append(evs, k.At(Time(i), func() {}))
	}
	var got []Time
	for i := 0; i < 1000; i += 3 {
		k.Cancel(evs[i])
	}
	for k.Pending() > 0 {
		prev := k.Now()
		k.Step()
		if k.Now() < prev {
			t.Fatal("clock ran backwards after mid-queue cancels")
		}
		got = append(got, k.Now())
	}
	if len(got) != 1000-334 {
		t.Errorf("fired %d events, want %d", len(got), 1000-334)
	}
}

// AtFunc/AfterFunc must behave like At/After, passing both arguments
// through the event record.
func TestAtFunc(t *testing.T) {
	k := NewKernel()
	type box struct{ v int }
	a, b := &box{1}, &box{2}
	var got []int
	k.AfterFunc(2*time.Second, func(a0, a1 unsafe.Pointer) {
		got = append(got, (*box)(a0).v, (*box)(a1).v)
	}, unsafe.Pointer(a), unsafe.Pointer(b))
	ev := k.AtFunc(Time(time.Second), func(a0, _ unsafe.Pointer) {
		got = append(got, (*box)(a0).v*10)
	}, unsafe.Pointer(b), nil)
	if ev.When() != Time(time.Second) || !ev.Pending() {
		t.Errorf("handle reports when=%v pending=%v", ev.When(), ev.Pending())
	}
	k.Run()
	if len(got) != 3 || got[0] != 20 || got[1] != 1 || got[2] != 2 {
		t.Errorf("AtFunc callbacks produced %v, want [20 1 2]", got)
	}
}

// The event record is the unit the 4-ary heap and the freelist shuffle
// around; keeping it within one 64-byte cache line (two records per
// line touched during sifts) is a measured property of the kernel, not
// an accident. This pins it against field additions quietly pushing the
// record to 80+ bytes again.
func TestEventRecordFitsOneCacheLine(t *testing.T) {
	if sz := unsafe.Sizeof(event{}); sz > 64 {
		t.Errorf("sim.event is %d bytes, must stay <= 64 (one cache line)", sz)
	}
}

// Time.Add must saturate at the int64 extremes instead of wrapping:
// Duration already saturates huge second counts at 1<<62 ns, and a
// wrapped negative timestamp makes Kernel.At panic "before now".
func TestTimeAddSaturates(t *testing.T) {
	huge := Duration(1e300) // saturates at 1<<62 ns
	tm := Time(huge).Add(huge)
	if tm != Time(math.MaxInt64) {
		t.Errorf("Add overflow = %v, want MaxInt64", int64(tm))
	}
	if got := Time(math.MaxInt64).Add(time.Nanosecond); got != Time(math.MaxInt64) {
		t.Errorf("MaxInt64 + 1ns = %v, want saturation", int64(got))
	}
	if got := Time(math.MinInt64).Add(-time.Nanosecond); got != Time(math.MinInt64) {
		t.Errorf("MinInt64 - 1ns = %v, want saturation", int64(got))
	}
	// A kernel far in the future must accept saturated schedules
	// instead of panicking "scheduled before now".
	k := NewKernel()
	k.At(Time(huge), func() {})
	k.Run()
	fired := false
	k.At(k.Now().Add(huge), func() { fired = true })
	k.Run()
	if !fired {
		t.Error("saturated schedule did not fire")
	}
}
