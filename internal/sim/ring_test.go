package sim

import "testing"

func TestRingFIFOAcrossGrowthAndWraparound(t *testing.T) {
	var r Ring[int]
	if r.Len() != 0 || r.Cap() != 0 {
		t.Fatalf("zero ring Len/Cap = %d/%d", r.Len(), r.Cap())
	}
	next := 0 // next value to push
	want := 0 // next value expected from Pop
	// Cycles of push-13/pop-13 walk the head through several laps of
	// the grown ring; a larger burst forces growth mid-stream.
	for cycle := 0; cycle < 6; cycle++ {
		burst := 13
		if cycle == 3 {
			burst = 40 // grow while head is mid-ring
		}
		for i := 0; i < burst; i++ {
			r.Push(next)
			next++
		}
		for r.Len() > 0 {
			if got := r.Pop(); got != want {
				t.Fatalf("Pop = %d, want %d", got, want)
			}
			want++
		}
	}
	if want != next {
		t.Fatalf("popped %d of %d pushed values", want, next)
	}
	if r.Cap()&(r.Cap()-1) != 0 {
		t.Errorf("capacity %d is not a power of two", r.Cap())
	}
	defer func() {
		if recover() == nil {
			t.Error("Pop of empty ring did not panic")
		}
	}()
	r.Pop()
}
