package sim

// Ring is a growable FIFO ring buffer: head/length indices over a
// power-of-two slice, so Push and Pop are O(1) however deep the backlog
// grows (no head-copying). It backs Chan's message buffer and netsim's
// interface output queues. The zero value is an empty ring.
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len reports the number of queued values.
func (r *Ring[T]) Len() int { return r.n }

// Cap reports the current slot count (0 or a power of two).
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Push appends v at the tail, growing the ring when full.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		grown := make([]T, max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the head-of-line value. It panics on an empty
// ring (check Len first), like an out-of-range slice index.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("sim: Pop of empty Ring")
	}
	v := r.buf[r.head]
	r.buf[r.head] = *new(T) // do not pin popped values
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}
