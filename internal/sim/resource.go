package sim

import "fmt"

// Resource is a counting semaphore in virtual time. It models anything
// with finite concurrent capacity: gateway CPUs, NIC DMA engines,
// rendering pipes, scanner front-ends.
type Resource struct {
	k        *Kernel
	capacity int
	inUse    int
	waitq    []*Proc
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(k *Kernel, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource capacity %d < 1", capacity))
	}
	return &Resource{k: k, capacity: capacity}
}

// InUse reports the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Capacity reports the total capacity.
func (r *Resource) Capacity() int { return r.capacity }

// Acquire blocks the process in virtual time until a unit is available,
// then holds it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		r.waitq = append(r.waitq, p)
		p.waitExternal()
	}
	r.inUse++
}

// TryAcquire takes a unit if one is free, reporting success. It is safe
// from event-callback context.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.inUse++
	return true
}

// Release returns a unit and wakes one waiter, if any. Releasing an
// unheld resource panics: it indicates a bookkeeping bug in the caller.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of un-acquired resource")
	}
	r.inUse--
	if len(r.waitq) > 0 {
		p := r.waitq[0]
		copy(r.waitq, r.waitq[1:])
		r.waitq = r.waitq[:len(r.waitq)-1]
		p.resumeNow()
	}
}

// Gate is a broadcast condition in virtual time: processes Wait until
// some event Opens the gate, at which point all current waiters resume.
// It models barrier-style coordination (e.g. "scanner frame ready").
type Gate struct {
	k     *Kernel
	open  bool
	waitq []*Proc
}

// NewGate creates a closed gate.
func NewGate(k *Kernel) *Gate { return &Gate{k: k} }

// Wait blocks until the gate is open. If the gate is already open it
// returns immediately.
func (g *Gate) Wait(p *Proc) {
	for !g.open {
		g.waitq = append(g.waitq, p)
		p.waitExternal()
	}
}

// Open opens the gate and resumes all waiters.
func (g *Gate) Open() {
	g.open = true
	for _, p := range g.waitq {
		p.resumeNow()
	}
	g.waitq = nil
}

// Close closes the gate again; subsequent Wait calls block.
func (g *Gate) Close() { g.open = false }

// IsOpen reports whether the gate is open.
func (g *Gate) IsOpen() bool { return g.open }
