package sim

// Chan is a FIFO message channel operating in virtual time. A Chan with
// capacity 0 is unbounded: Send never blocks. A positive capacity makes
// Send block (in virtual time) while the buffer is full, which models
// finite staging buffers.
//
// Chan is the rendezvous primitive used by the metacomputing MPI model
// and the application couplers when they run under the simulator.
//
// Two fast paths keep the rendezvous cheap. The buffer is a Ring, so
// buffered traffic enqueues and dequeues in O(1) however deep the
// backlog grows. And a same-instant handoff passes
// values through parked processes directly: a Send meeting a parked
// receiver hands the value over in the receiver's wait record
// (bypassing the buffer), and a Recv meeting a parked sender enqueues
// that sender's value on its behalf — in both cases the woken process
// just returns instead of re-running its park loop, so a rendezvous
// costs one park/resume rather than two. Handoffs happen at the
// current virtual instant and never change any completion time.

// waiter is one parked process on a channel. The waker may complete the
// operation on the parked process's behalf: val/direct carry a
// handed-over value to a receiver, or record that a blocked sender's
// value was enqueued for it.
type waiter[T any] struct {
	p      *Proc
	val    T
	direct bool
}

// Chan is a virtual-time FIFO channel; see the package comment above.
type Chan[T any] struct {
	k   *Kernel
	cap int // 0 = unbounded

	buf Ring[T]

	recvq Ring[*waiter[T]]
	sendq Ring[*waiter[T]]
	wfree []*waiter[T] // recycled wait records
}

// NewChan creates a channel on kernel k. capacity 0 means unbounded.
func NewChan[T any](k *Kernel, capacity int) *Chan[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Chan[T]{k: k, cap: capacity}
}

// Len reports the number of buffered messages.
func (c *Chan[T]) Len() int { return c.buf.Len() }

func (c *Chan[T]) getWaiter(p *Proc) *waiter[T] {
	if l := len(c.wfree); l > 0 {
		w := c.wfree[l-1]
		c.wfree[l-1] = nil
		c.wfree = c.wfree[:l-1]
		w.p = p
		return w
	}
	return &waiter[T]{p: p}
}

func (c *Chan[T]) putWaiter(w *waiter[T]) {
	*w = waiter[T]{}
	c.wfree = append(c.wfree, w)
}

// deliverDirect hands v to the longest-parked receiver at the current
// instant, bypassing the buffer. Only legal while nothing is buffered —
// otherwise v would overtake the buffered values.
func (c *Chan[T]) deliverDirect(v T) bool {
	if c.buf.Len() > 0 || c.recvq.Len() == 0 {
		return false
	}
	w := c.recvq.Pop()
	w.val = v
	w.direct = true
	w.p.resumeNow()
	return true
}

// unblockSender moves the longest-parked sender's value into the buffer
// slot a receive just freed and resumes that sender, which then returns
// without re-running its park loop (its value is already in FIFO
// position).
func (c *Chan[T]) unblockSender() {
	if c.sendq.Len() == 0 {
		return
	}
	w := c.sendq.Pop()
	c.buf.Push(w.val)
	w.direct = true
	w.p.resumeNow()
}

// wakeOneRecv resumes the longest-parked receiver; the value awaits it
// in the buffer.
func (c *Chan[T]) wakeOneRecv() {
	if c.recvq.Len() == 0 {
		return
	}
	c.recvq.Pop().p.resumeNow()
}

// Send enqueues v. If the channel is bounded and full, the calling
// process blocks in virtual time until space is available.
func (c *Chan[T]) Send(p *Proc, v T) {
	for c.cap > 0 && c.buf.Len() >= c.cap {
		w := c.getWaiter(p)
		w.val = v
		c.sendq.Push(w)
		p.waitExternal()
		direct := w.direct
		c.putWaiter(w)
		if direct {
			return // a receiver enqueued our value in FIFO position
		}
	}
	if c.deliverDirect(v) {
		return
	}
	c.buf.Push(v)
	c.wakeOneRecv()
}

// TrySend enqueues v without blocking and reports whether it was
// accepted. It may be called from event callbacks (non-process context).
func (c *Chan[T]) TrySend(v T) bool {
	if c.cap > 0 && c.buf.Len() >= c.cap {
		return false
	}
	if c.deliverDirect(v) {
		return true
	}
	c.buf.Push(v)
	c.wakeOneRecv()
	return true
}

// Recv dequeues the oldest message, blocking the calling process in
// virtual time until one is available.
func (c *Chan[T]) Recv(p *Proc) T {
	for c.buf.Len() == 0 {
		w := c.getWaiter(p)
		c.recvq.Push(w)
		p.waitExternal()
		direct, v := w.direct, w.val
		c.putWaiter(w)
		if direct {
			return v // handed over by the sender, never buffered
		}
	}
	v := c.buf.Pop()
	c.unblockSender()
	return v
}

// TryRecv dequeues a message if one is buffered.
func (c *Chan[T]) TryRecv() (T, bool) {
	if c.buf.Len() == 0 {
		var zero T
		return zero, false
	}
	v := c.buf.Pop()
	c.unblockSender()
	return v, true
}
