package sim

// Chan is a FIFO message channel operating in virtual time. A Chan with
// capacity 0 is unbounded: Send never blocks. A positive capacity makes
// Send block (in virtual time) while the buffer is full, which models
// finite staging buffers.
//
// Chan is the rendezvous primitive used by the metacomputing MPI model
// and the application couplers when they run under the simulator.
type Chan[T any] struct {
	k     *Kernel
	cap   int // 0 = unbounded
	buf   []T
	recvq []*Proc
	sendq []*Proc
}

// NewChan creates a channel on kernel k. capacity 0 means unbounded.
func NewChan[T any](k *Kernel, capacity int) *Chan[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Chan[T]{k: k, cap: capacity}
}

// Len reports the number of buffered messages.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send enqueues v. If the channel is bounded and full, the calling
// process blocks in virtual time until space is available.
func (c *Chan[T]) Send(p *Proc, v T) {
	for c.cap > 0 && len(c.buf) >= c.cap {
		c.sendq = append(c.sendq, p)
		p.waitExternal()
	}
	c.buf = append(c.buf, v)
	c.wakeOneRecv()
}

// TrySend enqueues v without blocking and reports whether it was
// accepted. It may be called from event callbacks (non-process context).
func (c *Chan[T]) TrySend(v T) bool {
	if c.cap > 0 && len(c.buf) >= c.cap {
		return false
	}
	c.buf = append(c.buf, v)
	c.wakeOneRecv()
	return true
}

// Recv dequeues the oldest message, blocking the calling process in
// virtual time until one is available.
func (c *Chan[T]) Recv(p *Proc) T {
	for len(c.buf) == 0 {
		c.recvq = append(c.recvq, p)
		p.waitExternal()
	}
	v := c.buf[0]
	// Shift rather than reslice so the backing array does not pin
	// delivered messages.
	copy(c.buf, c.buf[1:])
	c.buf[len(c.buf)-1] = *new(T)
	c.buf = c.buf[:len(c.buf)-1]
	c.wakeOneSend()
	return v
}

// TryRecv dequeues a message if one is buffered.
func (c *Chan[T]) TryRecv() (T, bool) {
	if len(c.buf) == 0 {
		var zero T
		return zero, false
	}
	v := c.buf[0]
	copy(c.buf, c.buf[1:])
	c.buf[len(c.buf)-1] = *new(T)
	c.buf = c.buf[:len(c.buf)-1]
	c.wakeOneSend()
	return v, true
}

func (c *Chan[T]) wakeOneRecv() {
	if len(c.recvq) == 0 {
		return
	}
	p := c.recvq[0]
	copy(c.recvq, c.recvq[1:])
	c.recvq = c.recvq[:len(c.recvq)-1]
	p.resumeNow()
}

func (c *Chan[T]) wakeOneSend() {
	if len(c.sendq) == 0 {
		return
	}
	p := c.sendq[0]
	copy(c.sendq, c.sendq[1:])
	c.sendq = c.sendq[:len(c.sendq)-1]
	p.resumeNow()
}
