package sim

import (
	"testing"
	"time"
)

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var wake Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(2 * time.Second)
		wake = p.Now()
	})
	k.Run()
	if wake != Time(2*time.Second) {
		t.Errorf("woke at %v, want 2s", wake)
	}
	if k.Procs() != 0 {
		t.Errorf("%d live procs after Run", k.Procs())
	}
}

func TestProcInterleaving(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Go("a", func(p *Proc) {
		p.Sleep(time.Second)
		order = append(order, "a1")
		p.Sleep(2 * time.Second) // wakes at 3s
		order = append(order, "a3")
	})
	k.Go("b", func(p *Proc) {
		p.Sleep(2 * time.Second)
		order = append(order, "b2")
	})
	k.Run()
	want := []string{"a1", "b2", "a3"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcWaitUntil(t *testing.T) {
	k := NewKernel()
	var at Time
	k.Go("w", func(p *Proc) {
		p.WaitUntil(Time(5 * time.Second))
		p.WaitUntil(Time(time.Second)) // already past: no-op
		at = p.Now()
	})
	k.Run()
	if at != Time(5*time.Second) {
		t.Errorf("WaitUntil finished at %v, want 5s", at)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Go("boom", func(p *Proc) {
		p.Sleep(time.Second)
		panic("kaboom")
	})
	defer func() {
		if recover() == nil {
			t.Error("process panic did not propagate out of Run")
		}
	}()
	k.Run()
}

func TestProcZeroSleepYields(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Go("x", func(p *Proc) {
		order = append(order, 1)
		p.Sleep(0)
		order = append(order, 3)
	})
	k.Go("y", func(p *Proc) {
		order = append(order, 2)
	})
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestManyProcs(t *testing.T) {
	k := NewKernel()
	total := 0
	for i := 0; i < 200; i++ {
		i := i
		k.Go("p", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			total++
		})
	}
	k.Run()
	if total != 200 {
		t.Errorf("%d procs completed, want 200", total)
	}
}
