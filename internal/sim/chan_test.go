package sim

import (
	"testing"
	"time"
)

func TestChanFIFO(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 0)
	var got []int
	k.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, c.Recv(p))
		}
	})
	k.Go("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			c.Send(p, i)
			p.Sleep(time.Millisecond)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("received %v, want [1 2 3]", got)
	}
}

func TestChanRecvBlocksUntilSend(t *testing.T) {
	k := NewKernel()
	c := NewChan[string](k, 0)
	var recvAt Time
	k.Go("recv", func(p *Proc) {
		c.Recv(p)
		recvAt = p.Now()
	})
	k.Go("send", func(p *Proc) {
		p.Sleep(3 * time.Second)
		c.Send(p, "hi")
	})
	k.Run()
	if recvAt != Time(3*time.Second) {
		t.Errorf("Recv completed at %v, want 3s", recvAt)
	}
}

func TestChanBoundedSendBlocks(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 1)
	var sentSecondAt Time
	k.Go("send", func(p *Proc) {
		c.Send(p, 1) // fills buffer
		c.Send(p, 2) // must wait for the receive at t=5s
		sentSecondAt = p.Now()
	})
	k.Go("recv", func(p *Proc) {
		p.Sleep(5 * time.Second)
		c.Recv(p)
		c.Recv(p)
	})
	k.Run()
	if sentSecondAt != Time(5*time.Second) {
		t.Errorf("second Send completed at %v, want 5s", sentSecondAt)
	}
}

func TestChanTrySendTryRecv(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 1)
	if _, ok := c.TryRecv(); ok {
		t.Error("TryRecv on empty chan succeeded")
	}
	if !c.TrySend(7) {
		t.Error("TrySend on empty bounded chan failed")
	}
	if c.TrySend(8) {
		t.Error("TrySend on full chan succeeded")
	}
	v, ok := c.TryRecv()
	if !ok || v != 7 {
		t.Errorf("TryRecv = %d,%v want 7,true", v, ok)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestChanManyMessagesOrdered(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 0)
	const n = 1000
	var got []int
	k.Go("recv", func(p *Proc) {
		for i := 0; i < n; i++ {
			got = append(got, c.Recv(p))
		}
	})
	k.Go("send", func(p *Proc) {
		for i := 0; i < n; i++ {
			c.Send(p, i)
		}
	})
	k.Run()
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d out of order: %d", i, v)
		}
	}
}
