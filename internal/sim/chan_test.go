package sim

import (
	"testing"
	"time"
)

func TestChanFIFO(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 0)
	var got []int
	k.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, c.Recv(p))
		}
	})
	k.Go("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			c.Send(p, i)
			p.Sleep(time.Millisecond)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("received %v, want [1 2 3]", got)
	}
}

func TestChanRecvBlocksUntilSend(t *testing.T) {
	k := NewKernel()
	c := NewChan[string](k, 0)
	var recvAt Time
	k.Go("recv", func(p *Proc) {
		c.Recv(p)
		recvAt = p.Now()
	})
	k.Go("send", func(p *Proc) {
		p.Sleep(3 * time.Second)
		c.Send(p, "hi")
	})
	k.Run()
	if recvAt != Time(3*time.Second) {
		t.Errorf("Recv completed at %v, want 3s", recvAt)
	}
}

func TestChanBoundedSendBlocks(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 1)
	var sentSecondAt Time
	k.Go("send", func(p *Proc) {
		c.Send(p, 1) // fills buffer
		c.Send(p, 2) // must wait for the receive at t=5s
		sentSecondAt = p.Now()
	})
	k.Go("recv", func(p *Proc) {
		p.Sleep(5 * time.Second)
		c.Recv(p)
		c.Recv(p)
	})
	k.Run()
	if sentSecondAt != Time(5*time.Second) {
		t.Errorf("second Send completed at %v, want 5s", sentSecondAt)
	}
}

func TestChanTrySendTryRecv(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 1)
	if _, ok := c.TryRecv(); ok {
		t.Error("TryRecv on empty chan succeeded")
	}
	if !c.TrySend(7) {
		t.Error("TrySend on empty bounded chan failed")
	}
	if c.TrySend(8) {
		t.Error("TrySend on full chan succeeded")
	}
	v, ok := c.TryRecv()
	if !ok || v != 7 {
		t.Errorf("TryRecv = %d,%v want 7,true", v, ok)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

// The same-instant handoff must not move any completion time: each
// value sent at t must complete its Recv at exactly t, whether it went
// through the buffer or was handed directly to the parked receiver.
func TestChanHandoffPreservesDeadlines(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 0)
	var recvAt []Time
	k.Go("recv", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v := c.Recv(p)
			if v != i {
				t.Errorf("received %d, want %d", v, i)
			}
			recvAt = append(recvAt, p.Now())
		}
	})
	k.Go("send", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Second)
			c.Send(p, i) // receiver is parked: direct handoff
		}
	})
	k.Run()
	if len(recvAt) != 5 {
		t.Fatalf("received %d values", len(recvAt))
	}
	for i, at := range recvAt {
		if want := Time(i+1) * Time(time.Second); at != want {
			t.Errorf("value %d received at %v, want %v (handoff changed a deadline)", i, at, want)
		}
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after drain", c.Len())
	}
}

// A handed-over value must not overtake values already buffered, and a
// buffered value must not overtake a parked receiver's handoff: mixing
// TrySend (event context) with Send keeps global FIFO order.
func TestChanHandoffFIFOWithBufferedValues(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 0)
	var got []int
	k.Go("recv", func(p *Proc) {
		for i := 0; i < 4; i++ {
			got = append(got, c.Recv(p))
		}
	})
	// At t=1s the receiver is parked: the first TrySend hands off
	// directly, the rest buffer behind it.
	k.At(Time(time.Second), func() {
		for v := 0; v < 3; v++ {
			c.TrySend(v)
		}
	})
	k.Go("send", func(p *Proc) {
		p.Sleep(2 * time.Second)
		c.Send(p, 3)
	})
	k.Run()
	if len(got) != 4 {
		t.Fatalf("received %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO broken: got %v", got)
		}
	}
}

// When a receive frees a slot in a full bounded channel, the parked
// sender's value is enqueued on its behalf: the sender completes at the
// receive instant (as before) and its value keeps its FIFO position
// even though the sender never re-ran its admission loop.
func TestChanBoundedHandoffUnblocksSenderInOrder(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 1)
	var sentThirdAt Time
	k.Go("send", func(p *Proc) {
		c.Send(p, 1) // fills the buffer
		c.Send(p, 2) // parks until the t=5s receive
		c.Send(p, 3) // parks until the t=10s receive
		sentThirdAt = p.Now()
	})
	var got []int
	k.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(5 * time.Second)
			got = append(got, c.Recv(p))
		}
	})
	k.Run()
	if sentThirdAt != Time(10*time.Second) {
		t.Errorf("third Send completed at %v, want 10s", sentThirdAt)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("received %v, want [1 2 3]", got)
	}
}

// A deep buffered backlog must drain in O(1) per receive (the ring
// replaced a head-copying slice); this exercises ring growth and
// wraparound across fill/drain cycles.
func TestChanRingWraparound(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 0)
	var got []int
	k.Go("worker", func(p *Proc) {
		v := 0
		for cycle := 0; cycle < 5; cycle++ {
			for i := 0; i < 13; i++ { // odd burst size: head walks the ring
				c.Send(p, v)
				v++
			}
			for i := 0; i < 13; i++ {
				got = append(got, c.Recv(p))
			}
		}
	})
	k.Run()
	if len(got) != 65 {
		t.Fatalf("received %d values", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("ring broke FIFO at %d: %d", i, v)
		}
	}
}

func TestChanManyMessagesOrdered(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 0)
	const n = 1000
	var got []int
	k.Go("recv", func(p *Proc) {
		for i := 0; i < n; i++ {
			got = append(got, c.Recv(p))
		}
	})
	k.Go("send", func(p *Proc) {
		for i := 0; i < n; i++ {
			c.Send(p, i)
		}
	})
	k.Run()
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d out of order: %d", i, v)
		}
	}
}
