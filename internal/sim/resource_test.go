package sim

import (
	"testing"
	"time"
)

func TestResourceSerializes(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		k.Go("worker", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(time.Second)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	k.Run()
	if len(finish) != 3 {
		t.Fatalf("%d workers finished", len(finish))
	}
	want := []Time{Time(time.Second), Time(2 * time.Second), Time(3 * time.Second)}
	for i := range want {
		if finish[i] != want[i] {
			t.Errorf("worker %d finished at %v, want %v", i, finish[i], want[i])
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		k.Go("worker", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(time.Second)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	k.Run()
	// Two run in [0,1], two in [1,2].
	if finish[0] != Time(time.Second) || finish[1] != Time(time.Second) {
		t.Errorf("first pair finished at %v,%v want 1s,1s", finish[0], finish[1])
	}
	if finish[2] != Time(2*time.Second) || finish[3] != Time(2*time.Second) {
		t.Errorf("second pair finished at %v,%v want 2s,2s", finish[2], finish[3])
	}
}

func TestResourceTryAcquire(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release()
	if r.InUse() != 0 || r.Capacity() != 1 {
		t.Errorf("InUse=%d Capacity=%d", r.InUse(), r.Capacity())
	}
}

func TestResourceReleaseUnheldPanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 1)
	defer func() {
		if recover() == nil {
			t.Error("Release of unheld resource did not panic")
		}
	}()
	r.Release()
}

func TestBadCapacityPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("NewResource(0) did not panic")
		}
	}()
	NewResource(k, 0)
}

func TestGate(t *testing.T) {
	k := NewKernel()
	g := NewGate(k)
	var through []Time
	for i := 0; i < 3; i++ {
		k.Go("waiter", func(p *Proc) {
			g.Wait(p)
			through = append(through, p.Now())
		})
	}
	k.Go("opener", func(p *Proc) {
		p.Sleep(4 * time.Second)
		g.Open()
	})
	k.Run()
	if len(through) != 3 {
		t.Fatalf("%d waiters passed", len(through))
	}
	for _, tm := range through {
		if tm != Time(4*time.Second) {
			t.Errorf("waiter passed at %v, want 4s", tm)
		}
	}
	if !g.IsOpen() {
		t.Error("gate not open")
	}
	g.Close()
	if g.IsOpen() {
		t.Error("gate still open after Close")
	}
	// An open gate admits immediately.
	g.Open()
	passed := false
	k.Go("late", func(p *Proc) {
		g.Wait(p)
		passed = true
	})
	k.Run()
	if !passed {
		t.Error("late waiter blocked on open gate")
	}
}
