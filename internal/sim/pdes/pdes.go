// Package pdes runs several sim.Kernels as one conservative parallel
// discrete-event simulation (Chandy-Misra-Bryant). The model partition
// owning each kernel exchanges timestamped messages with its neighbours
// over Queues — one bounded FIFO per cut-edge direction — and a Group
// synchronizes the kernels in barrier-delimited rounds:
//
//  1. Every member drains its input queues (in fixed queue order, FIFO
//     within a queue), injecting each message into its kernel.
//  2. Barrier; every member publishes its next-event time. The
//     per-round bound announcement is the null message of the classic
//     algorithm — one broadcast per member per round, counted in Stats.
//  3. Every member computes its safe horizon from the published bounds
//     and fires its events strictly below it. With a global lookahead
//     window (unannotated queues) the horizon is the same for everyone:
//     global-min + lookahead. With per-edge annotations (SetEdge) each
//     member gets its own horizon from the latency-weighted distances
//     of the cut graph — see "Per-pair lookahead" below. If every bound
//     is infinite the simulation is over.
//  4. Barrier (making every enqueued message visible), next round.
//
// # Per-pair lookahead
//
// A global window synchronizes every kernel on the worst (smallest) cut
// latency: one short edge anywhere throttles all partitions. When every
// queue carries its edge's own latency (SetEdge), the group instead
// bounds each member pair by the latency-weighted shortest path between
// them. NewGroup precomputes, over the directed cut graph,
//
//	dist[k][j] = shortest latency-weighted distance from k to j
//	horiz[k][i] = min over incoming edges (j -> i, latency d) of
//	              dist[k][j] + d
//
// and each round member i fires below
//
//	H_i = min over all members k of (B_k + horiz[k][i])
//
// where B_k is k's published bound. This is safe: a message reaching i
// during the round was sent by a direct neighbour j firing an event at
// t >= B_j, so it is stamped >= B_j + d(j,i) >= B_j + horiz[j][i] >=
// H_i, while i only fired below H_i. Any influence from a distant k
// must first cross to some neighbour j, which costs at least dist[k][j]
// in virtual time — exactly what horiz charges. It makes progress: the
// member holding the global minimum bound has H > B because every
// horiz entry is positive (horiz[i][i] is i's shortest cycle). And it
// is never less permissive than the global window, because every
// horiz[k][i] is at least the minimum cut latency.
//
// The rounds make the result independent of goroutine scheduling: which
// host thread runs which member never changes what any kernel observes,
// only wall-clock time. Queues need no locks for the same reason — a
// queue is written by exactly one member strictly between two barriers
// and read by exactly one member strictly after the second.
//
// The package is model-agnostic: payloads are raw pointers and
// injection is a per-queue callback, so internal/netsim can ride its
// pooled packets across partitions without boxing or per-message
// allocation.
package pdes

import (
	"fmt"
	"math"
	"sync"
	"time"
	"unsafe"

	"repro/internal/sim"
)

// maxTime is the "no pending events" sentinel in the bound exchange and
// the "unreachable" sentinel in the distance tables.
const maxTime = sim.Time(math.MaxInt64)

// satAdd adds a bound and a horizon offset, saturating at maxTime.
func satAdd(a, b sim.Time) sim.Time {
	s := a + b
	if s < a {
		return maxTime
	}
	return s
}

// item is one in-flight cross-partition message.
type item struct {
	p  unsafe.Pointer
	at sim.Time
}

// Queue is the bounded FIFO carrying timestamped payloads across one
// cut-edge direction, from exactly one sending member to exactly one
// receiving member. The barrier protocol is the synchronization: Push
// happens only inside the sender's execution window, drain only after
// the window-closing barrier, so no lock is needed and steady-state
// traffic stays allocation-free once the ring reaches the cut edge's
// natural bound (capacity x window / packet size); Push beyond the
// preallocated capacity grows the buffer rather than blocking, which
// would deadlock the round.
type Queue struct {
	deliver func(p unsafe.Pointer, at sim.Time)
	items   []item

	// Edge annotation (SetEdge): the sending member's index and the
	// edge's own minimum latency. A group whose queues are all
	// annotated synchronizes with per-pair horizons instead of the
	// global window.
	from      int
	lookahead time.Duration
	hasEdge   bool
}

// NewQueue builds a queue preallocating capacity slots; deliver injects
// one drained message into the receiving member's kernel and runs on
// the receiver's goroutine.
func NewQueue(capacity int, deliver func(p unsafe.Pointer, at sim.Time)) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{deliver: deliver, items: make([]item, 0, capacity), from: -1}
}

// SetEdge annotates the queue with its cut edge: from is the index (in
// the group's member slice) of the sending member, lookahead the
// edge's own minimum latency — every Push must be stamped at least
// lookahead after the sender's clock. When every queue of a group is
// annotated, NewGroup derives per-pair synchronization bounds from the
// edge latencies instead of using one global window. Call before
// NewGroup; lookahead must be positive.
func (q *Queue) SetEdge(from int, lookahead time.Duration) {
	if from < 0 {
		panic(fmt.Sprintf("pdes: SetEdge with negative member index %d", from))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("pdes: SetEdge with non-positive lookahead %v", lookahead))
	}
	q.from = from
	q.lookahead = lookahead
	q.hasEdge = true
}

// Push enqueues a message with its arrival timestamp. Call only from
// the sending member's kernel context (inside its execution window).
func (q *Queue) Push(p unsafe.Pointer, at sim.Time) {
	q.items = append(q.items, item{p, at})
}

// drain injects every queued message in FIFO order and resets the
// queue, keeping its buffer.
func (q *Queue) drain() {
	for i := range q.items {
		q.deliver(q.items[i].p, q.items[i].at)
		q.items[i] = item{}
	}
	q.items = q.items[:0]
}

// Member is one partition: a kernel plus the queues it drains. In
// (like the members slice itself) is fixed at NewGroup time; the drain
// order is the slice order, which must be deterministic for reports to
// be byte-identical across runs.
type Member struct {
	K  *sim.Kernel
	In []*Queue
}

// Stats reports synchronization-cost counters for one Group, cumulative
// across Runs. Read only while the group is quiescent.
type Stats struct {
	// Rounds is the number of completed synchronization rounds.
	Rounds int64
	// NullMessages is the number of bound announcements exchanged:
	// one per member per round (the CMB null-message traffic, realised
	// here as the barrier's shared bound slots).
	NullMessages int64
	// PerPair reports whether the group synchronized with per-pair
	// horizons (every queue edge-annotated) rather than the global
	// window.
	PerPair bool
	// Events is the number of events each member's kernel has fired,
	// indexed by member — the deterministic per-partition load signal.
	Events []int64
	// Blocked is the wall-clock time each member spent waiting at the
	// round barriers, indexed by member. It is host-scheduling
	// telemetry (not virtual time) and is only collected after
	// SetBlockedTelemetry(true); otherwise the slice is all zero.
	Blocked []time.Duration
}

// Group synchronizes a fixed set of members. Build once with NewGroup,
// then Run as many times as the driving code needs (each Run picks up
// whatever events were scheduled while the group was quiescent).
// Between Runs the kernels are quiescent and the driver may schedule
// freely; during a Run only member callbacks may touch the kernels.
type Group struct {
	members   []*Member
	lookahead time.Duration

	// horiz[k][i] is the per-pair bound offset: member i may fire below
	// min over k of (bound[k] + horiz[k][i]). nil when any queue lacks
	// an edge annotation — the group then uses the global window.
	horiz [][]sim.Time

	next  []sim.Time // per-member bound slots, exchanged at the barrier
	bar   barrier
	stats Stats

	blocked   []time.Duration // per-member barrier wait, wall clock
	telemetry bool

	start   []chan struct{} // per-worker run signal, members 1..n-1
	done    []chan struct{} // per-worker completion ack, members 1..n-1
	started bool
	closed  bool
}

// NewGroup builds a group over the given members. The lookahead is the
// minimum latency of any cut edge: no member may ever receive a message
// stamped earlier than the global minimum next-event time plus this
// bound. It must be positive — a zero-lookahead cut serializes the
// model and belongs in one kernel.
//
// When every queue of every member carries an edge annotation
// (Queue.SetEdge), the group synchronizes with per-pair horizons
// derived from the annotated latencies (see the package comment); the
// global lookahead is then only the floor the horizons must respect.
func NewGroup(lookahead time.Duration, members []*Member) *Group {
	if len(members) == 0 {
		panic("pdes: group with no members")
	}
	if lookahead <= 0 && len(members) > 1 {
		panic(fmt.Sprintf("pdes: non-positive lookahead %v", lookahead))
	}
	g := &Group{
		members:   members,
		lookahead: lookahead,
		next:      make([]sim.Time, len(members)),
		start:     make([]chan struct{}, len(members)),
		done:      make([]chan struct{}, len(members)),
		blocked:   make([]time.Duration, len(members)),
	}
	g.bar.init(len(members))
	for i := 1; i < len(members); i++ {
		g.start[i] = make(chan struct{}, 1)
		g.done[i] = make(chan struct{}, 1)
	}
	g.horiz = perPairHorizons(members)
	g.stats.PerPair = g.horiz != nil
	return g
}

// perPairHorizons builds the horizon table from the members' queue
// annotations, or returns nil when any queue is unannotated (global
// window mode). Floyd-Warshall over the member count — partitions are
// few (one per core at most), so the cubic cost is noise next to one
// simulation round.
func perPairHorizons(members []*Member) [][]sim.Time {
	n := len(members)
	if n < 2 {
		return nil
	}
	type edge struct {
		from, to int
		d        sim.Time
	}
	var edges []edge
	for i, m := range members {
		for _, q := range m.In {
			if !q.hasEdge {
				return nil
			}
			if q.from >= n {
				panic(fmt.Sprintf("pdes: queue edge from member %d, group has %d", q.from, n))
			}
			edges = append(edges, edge{q.from, i, sim.Time(q.lookahead)})
		}
	}
	if len(edges) == 0 {
		return nil
	}
	dist := make([][]sim.Time, n)
	for i := range dist {
		dist[i] = make([]sim.Time, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = maxTime
			}
		}
	}
	for _, e := range edges {
		if e.d < dist[e.from][e.to] {
			dist[e.from][e.to] = e.d
		}
	}
	for via := 0; via < n; via++ {
		for i := 0; i < n; i++ {
			if dist[i][via] == maxTime {
				continue
			}
			for j := 0; j < n; j++ {
				if d := satAdd(dist[i][via], dist[via][j]); d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}
	horiz := make([][]sim.Time, n)
	for k := range horiz {
		horiz[k] = make([]sim.Time, n)
		for i := range horiz[k] {
			horiz[k][i] = maxTime
		}
	}
	for _, e := range edges {
		for k := 0; k < n; k++ {
			if dist[k][e.from] == maxTime {
				continue
			}
			if h := satAdd(dist[k][e.from], e.d); h < horiz[k][e.to] {
				horiz[k][e.to] = h
			}
		}
	}
	return horiz
}

// Members reports the number of partitions.
func (g *Group) Members() int { return len(g.members) }

// PerPair reports whether the group synchronizes with per-pair horizons
// (every queue edge-annotated) rather than one global window.
func (g *Group) PerPair() bool { return g.horiz != nil }

// SetBlockedTelemetry enables (or disables) wall-clock measurement of
// per-member barrier wait time, surfaced as Stats.Blocked. It costs two
// monotonic clock reads per member per barrier, so it is off by default
// and meant for observability hosts, not benchmarks. Quiescent-only.
func (g *Group) SetBlockedTelemetry(on bool) { g.telemetry = on }

// Stats reports cumulative synchronization counters across every Run so
// far. Read only while the group is quiescent.
func (g *Group) Stats() Stats {
	s := g.stats
	s.Events = make([]int64, len(g.members))
	for i, m := range g.members {
		s.Events[i] = m.K.Fired()
	}
	s.Blocked = append([]time.Duration(nil), g.blocked...)
	return s
}

// Pending reports the total number of pending events across all
// kernels. Read only while the group is quiescent (after Run, queues
// are always empty: termination requires every queue drained and every
// heap dry).
func (g *Group) Pending() int {
	total := 0
	for _, m := range g.members {
		total += m.K.Pending()
	}
	return total
}

// Run executes rounds until every kernel is dry and every queue empty.
// Member 0 runs on the calling goroutine; the rest run on persistent
// worker goroutines started lazily on first use and parked between
// Runs, so repeated Runs allocate nothing.
func (g *Group) Run() {
	if g.closed {
		panic("pdes: Run on a closed group")
	}
	if len(g.members) == 1 {
		g.members[0].K.Run()
		return
	}
	if !g.started {
		g.started = true
		for i := 1; i < len(g.members); i++ {
			go g.worker(i)
		}
	}
	for i := 1; i < len(g.members); i++ {
		g.start[i] <- struct{}{}
	}
	g.runMember(0)
	// The final barrier releases every member at once, but a worker
	// still has its loop epilogue to run (under telemetry, the blocked
	// accumulation happens after the barrier wait it measures). Collect
	// each worker's ack so Run returning really means the group is
	// quiescent — Stats and rebuilds need no further synchronization.
	for i := 1; i < len(g.members); i++ {
		<-g.done[i]
	}
}

// Close releases the group's parked worker goroutines. Call when the
// group is quiescent and will not Run again (e.g. before rebuilding a
// partitioned model with a new assignment); a closed group panics on
// Run. Close is idempotent.
func (g *Group) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for i := 1; i < len(g.members); i++ {
		close(g.start[i])
	}
}

// worker parks between runs and executes its member's rounds during
// one.
func (g *Group) worker(i int) {
	for range g.start[i] {
		g.runMember(i)
		g.done[i] <- struct{}{}
	}
}

// await is the member-facing barrier entry: it forwards to the shared
// barrier, measuring the wall-clock wait when telemetry is on. Blocked
// is deliberate wall-clock telemetry — host-scheduling skew between
// members — and is never fed back into the model.
func (g *Group) await(i int) {
	if !g.telemetry {
		g.bar.await()
		return
	}
	//gtwvet:ignore determinism Blocked is opt-in wall-clock telemetry, never fed back into the model
	t0 := time.Now()
	g.bar.await()
	g.blocked[i] += time.Since(t0)
}

// runMember is the per-member round loop. All members leave the loop in
// the same round (they compute the same global minimum from the same
// post-barrier snapshot), and the final barrier orders every member's
// last reads before the caller's next-run writes.
func (g *Group) runMember(i int) {
	m := g.members[i]
	for {
		for _, q := range m.In {
			q.drain()
		}
		if nt, ok := m.K.NextEventTime(); ok {
			g.next[i] = nt
		} else {
			g.next[i] = maxTime
		}
		g.await(i)
		t := g.next[0]
		for _, nt := range g.next[1:] {
			if nt < t {
				t = nt
			}
		}
		if i == 0 {
			g.stats.Rounds++
			g.stats.NullMessages += int64(len(g.members))
		}
		if t == maxTime {
			// Terminate: every heap is dry and (because sends happen
			// strictly before the window-closing barrier and drains at
			// round start) every queue is empty. The kernels stopped at
			// their own last local events; resynchronize all clocks to
			// the global last so the driver's next "schedule at Now()"
			// lands at the same virtual time a single kernel would
			// report. Per-pair groups reach this point with clocks
			// spread across their unequal horizons — possibly far past
			// the last global window — but the resync target is the
			// same: the maximum clock is the globally last event, whose
			// member never ran past it. Three barriers: bounds read
			// before the slots are reused for clocks, clocks published
			// before the max is read, advances done before the caller
			// resumes.
			g.await(i)
			g.next[i] = m.K.Now()
			g.await(i)
			now := g.next[0]
			for _, v := range g.next[1:] {
				if v > now {
					now = v
				}
			}
			m.K.AdvanceTo(now)
			g.await(i)
			return
		}
		if g.horiz != nil {
			h := maxTime
			for k, b := range g.next {
				if hk := satAdd(b, g.horiz[k][i]); hk < h {
					h = hk
				}
			}
			m.K.RunBefore(h)
		} else {
			m.K.RunBefore(t.Add(g.lookahead))
		}
		g.await(i)
	}
}

// barrier is a reusable (cyclic) barrier for a fixed party count.
type barrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	gen   uint64
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond.L = &b.mu
}

// await blocks until all n parties have called it, then releases them
// together and resets for the next use.
func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
