// Package pdes runs several sim.Kernels as one conservative parallel
// discrete-event simulation (Chandy-Misra-Bryant with a global
// lookahead window). The model partition owning each kernel exchanges
// timestamped messages with its neighbours over Queues — one bounded
// FIFO per cut-edge direction — and a Group synchronizes the kernels in
// barrier-delimited rounds:
//
//  1. Every member drains its input queues (in fixed queue order, FIFO
//     within a queue), injecting each message into its kernel.
//  2. Barrier; every member publishes its next-event time, and all
//     members compute the same global minimum T. The per-round bound
//     announcement is the null message of the classic algorithm — one
//     broadcast per member per round, counted in Stats.
//  3. If T is infinite the simulation is over. Otherwise every member
//     fires its events in [T, T+lookahead) — safe, because any message
//     generated at time t >= T arrives no earlier than t + the cut's
//     minimum delay >= T + lookahead.
//  4. Barrier (making every enqueued message visible), next round.
//
// The rounds make the result independent of goroutine scheduling: which
// host thread runs which member never changes what any kernel observes,
// only wall-clock time. Queues need no locks for the same reason — a
// queue is written by exactly one member strictly between two barriers
// and read by exactly one member strictly after the second.
//
// The package is model-agnostic: payloads are raw pointers and
// injection is a per-queue callback, so internal/netsim can ride its
// pooled packets across partitions without boxing or per-message
// allocation.
package pdes

import (
	"fmt"
	"math"
	"sync"
	"time"
	"unsafe"

	"repro/internal/sim"
)

// maxTime is the "no pending events" sentinel in the bound exchange.
const maxTime = sim.Time(math.MaxInt64)

// item is one in-flight cross-partition message.
type item struct {
	p  unsafe.Pointer
	at sim.Time
}

// Queue is the bounded FIFO carrying timestamped payloads across one
// cut-edge direction, from exactly one sending member to exactly one
// receiving member. The barrier protocol is the synchronization: Push
// happens only inside the sender's execution window, drain only after
// the window-closing barrier, so no lock is needed and steady-state
// traffic stays allocation-free once the ring reaches the cut edge's
// natural bound (capacity x window / packet size); Push beyond the
// preallocated capacity grows the buffer rather than blocking, which
// would deadlock the round.
type Queue struct {
	deliver func(p unsafe.Pointer, at sim.Time)
	items   []item
}

// NewQueue builds a queue preallocating capacity slots; deliver injects
// one drained message into the receiving member's kernel and runs on
// the receiver's goroutine.
func NewQueue(capacity int, deliver func(p unsafe.Pointer, at sim.Time)) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{deliver: deliver, items: make([]item, 0, capacity)}
}

// Push enqueues a message with its arrival timestamp. Call only from
// the sending member's kernel context (inside its execution window).
func (q *Queue) Push(p unsafe.Pointer, at sim.Time) {
	q.items = append(q.items, item{p, at})
}

// drain injects every queued message in FIFO order and resets the
// queue, keeping its buffer.
func (q *Queue) drain() {
	for i := range q.items {
		q.deliver(q.items[i].p, q.items[i].at)
		q.items[i] = item{}
	}
	q.items = q.items[:0]
}

// Member is one partition: a kernel plus the queues it drains. In
// (like the members slice itself) is fixed at NewGroup time; the drain
// order is the slice order, which must be deterministic for reports to
// be byte-identical across runs.
type Member struct {
	K  *sim.Kernel
	In []*Queue
}

// Stats reports synchronization-cost counters for one Run.
type Stats struct {
	// Rounds is the number of completed synchronization rounds.
	Rounds int64
	// NullMessages is the number of bound announcements exchanged:
	// one per member per round (the CMB null-message traffic, realised
	// here as the barrier's shared bound slots).
	NullMessages int64
}

// Group synchronizes a fixed set of members. Build once with NewGroup,
// then Run as many times as the driving code needs (each Run picks up
// whatever events were scheduled while the group was quiescent).
// Between Runs the kernels are quiescent and the driver may schedule
// freely; during a Run only member callbacks may touch the kernels.
type Group struct {
	members   []*Member
	lookahead time.Duration

	next  []sim.Time // per-member bound slots, exchanged at the barrier
	bar   barrier
	stats Stats

	start   []chan struct{} // per-worker run signal, members 1..n-1
	started bool
}

// NewGroup builds a group over the given members. The lookahead is the
// minimum latency of any cut edge: no member may ever receive a message
// stamped earlier than the global minimum next-event time plus this
// bound. It must be positive — a zero-lookahead cut serializes the
// model and belongs in one kernel.
func NewGroup(lookahead time.Duration, members []*Member) *Group {
	if len(members) == 0 {
		panic("pdes: group with no members")
	}
	if lookahead <= 0 && len(members) > 1 {
		panic(fmt.Sprintf("pdes: non-positive lookahead %v", lookahead))
	}
	g := &Group{
		members:   members,
		lookahead: lookahead,
		next:      make([]sim.Time, len(members)),
		start:     make([]chan struct{}, len(members)),
	}
	g.bar.init(len(members))
	for i := 1; i < len(members); i++ {
		g.start[i] = make(chan struct{}, 1)
	}
	return g
}

// Members reports the number of partitions.
func (g *Group) Members() int { return len(g.members) }

// Stats reports cumulative synchronization counters across every Run so
// far. Read only while the group is quiescent.
func (g *Group) Stats() Stats { return g.stats }

// Pending reports the total number of pending events across all
// kernels. Read only while the group is quiescent (after Run, queues
// are always empty: termination requires every queue drained and every
// heap dry).
func (g *Group) Pending() int {
	total := 0
	for _, m := range g.members {
		total += m.K.Pending()
	}
	return total
}

// Run executes rounds until every kernel is dry and every queue empty.
// Member 0 runs on the calling goroutine; the rest run on persistent
// worker goroutines started lazily on first use and parked between
// Runs, so repeated Runs allocate nothing.
func (g *Group) Run() {
	if len(g.members) == 1 {
		g.members[0].K.Run()
		return
	}
	if !g.started {
		g.started = true
		for i := 1; i < len(g.members); i++ {
			go g.worker(i)
		}
	}
	for i := 1; i < len(g.members); i++ {
		g.start[i] <- struct{}{}
	}
	g.runMember(0)
}

// worker parks between runs and executes its member's rounds during
// one.
func (g *Group) worker(i int) {
	for range g.start[i] {
		g.runMember(i)
	}
}

// runMember is the per-member round loop. All members leave the loop in
// the same round (they compute the same global minimum from the same
// post-barrier snapshot), and the final barrier orders every member's
// last reads before the caller's next-run writes.
func (g *Group) runMember(i int) {
	m := g.members[i]
	for {
		for _, q := range m.In {
			q.drain()
		}
		if nt, ok := m.K.NextEventTime(); ok {
			g.next[i] = nt
		} else {
			g.next[i] = maxTime
		}
		g.bar.await()
		t := g.next[0]
		for _, nt := range g.next[1:] {
			if nt < t {
				t = nt
			}
		}
		if i == 0 {
			g.stats.Rounds++
			g.stats.NullMessages += int64(len(g.members))
		}
		if t == maxTime {
			// Terminate: every heap is dry and (because sends happen
			// strictly before the window-closing barrier and drains at
			// round start) every queue is empty. The kernels stopped at
			// their own last local events; resynchronize all clocks to
			// the global last so the driver's next "schedule at Now()"
			// lands at the same virtual time a single kernel would
			// report. Three barriers: bounds read before the slots are
			// reused for clocks, clocks published before the max is
			// read, advances done before the caller resumes.
			g.bar.await()
			g.next[i] = m.K.Now()
			g.bar.await()
			now := g.next[0]
			for _, v := range g.next[1:] {
				if v > now {
					now = v
				}
			}
			m.K.AdvanceTo(now)
			g.bar.await()
			return
		}
		m.K.RunBefore(t.Add(g.lookahead))
		g.bar.await()
	}
}

// barrier is a reusable (cyclic) barrier for a fixed party count.
type barrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	gen   uint64
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond.L = &b.mu
}

// await blocks until all n parties have called it, then releases them
// together and resets for the next use.
func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
