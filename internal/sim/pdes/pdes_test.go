package pdes

import (
	"testing"
	"time"
	"unsafe"

	"repro/internal/sim"
)

// TestTwoMemberPingPong bounces a token between two kernels through a
// pair of queues and checks that every hop lands exactly one lookahead
// after the previous one — the conservative window never lets a kernel
// see a message late.
func TestTwoMemberPingPong(t *testing.T) {
	ka, kb := sim.NewKernel(), sim.NewKernel()
	const la = time.Millisecond
	const hops = 20

	var atA, atB []sim.Time
	var qAtoB, qBtoA *Queue
	qAtoB = NewQueue(1, func(_ unsafe.Pointer, at sim.Time) {
		kb.At(at, func() {
			atB = append(atB, kb.Now())
			if len(atA)+len(atB) < hops {
				qBtoA.Push(nil, kb.Now().Add(la))
			}
		})
	})
	qBtoA = NewQueue(1, func(_ unsafe.Pointer, at sim.Time) {
		ka.At(at, func() {
			atA = append(atA, ka.Now())
			if len(atA)+len(atB) < hops {
				qAtoB.Push(nil, ka.Now().Add(la))
			}
		})
	})

	g := NewGroup(la, []*Member{
		{K: ka, In: []*Queue{qBtoA}},
		{K: kb, In: []*Queue{qAtoB}},
	})
	// Kick off: the first event on A pushes the token toward B.
	ka.At(0, func() { qAtoB.Push(nil, sim.Time(la)) })
	g.Run()

	if len(atA)+len(atB) != hops {
		t.Fatalf("got %d+%d hops, want %d", len(atA), len(atB), hops)
	}
	for i, at := range atB {
		want := sim.Time(la) * sim.Time(2*i+1)
		if at != want {
			t.Fatalf("hop %d on B at %v, want %v", i, at, want)
		}
	}
	for i, at := range atA {
		want := sim.Time(la) * sim.Time(2*i+2)
		if at != want {
			t.Fatalf("hop %d on A at %v, want %v", i, at, want)
		}
	}
	st := g.Stats()
	if st.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	if st.NullMessages != 2*st.Rounds {
		t.Fatalf("NullMessages = %d, want 2 per round over %d rounds", st.NullMessages, st.Rounds)
	}
	if g.Pending() != 0 {
		t.Fatalf("pending events after Run: %d", g.Pending())
	}
}

// TestGroupRerun reuses one group for a second batch of events — the
// quiescent-between-Runs contract drivers like tcpsim.WaitAll rely on.
func TestGroupRerun(t *testing.T) {
	ka, kb := sim.NewKernel(), sim.NewKernel()
	const la = time.Millisecond
	count := 0
	qAtoB := NewQueue(1, func(_ unsafe.Pointer, at sim.Time) {
		kb.At(at, func() { count++ })
	})
	g := NewGroup(la, []*Member{
		{K: ka},
		{K: kb, In: []*Queue{qAtoB}},
	})
	for run := 1; run <= 3; run++ {
		ka.At(ka.Now().Add(la), func() { qAtoB.Push(nil, ka.Now().Add(la)) })
		g.Run()
		if count != run {
			t.Fatalf("after run %d: count = %d", run, count)
		}
	}
}

// TestSingleMemberRunsInline checks the degenerate one-partition group
// is just Kernel.Run.
func TestSingleMemberRunsInline(t *testing.T) {
	k := sim.NewKernel()
	fired := false
	k.At(5, func() { fired = true })
	g := NewGroup(0, []*Member{{K: k}}) // zero lookahead allowed solo
	g.Run()
	if !fired || k.Now() != 5 {
		t.Fatalf("fired=%v now=%v", fired, k.Now())
	}
}

func TestNewGroupValidation(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("empty", func() { NewGroup(time.Millisecond, nil) })
	expectPanic("zero lookahead", func() {
		NewGroup(0, []*Member{{K: sim.NewKernel()}, {K: sim.NewKernel()}})
	})
}

// TestQueueFIFO pins the drain order: messages leave a queue in push
// order, which keeps equal-timestamp injections deterministic.
func TestQueueFIFO(t *testing.T) {
	var got []sim.Time
	q := NewQueue(2, func(_ unsafe.Pointer, at sim.Time) { got = append(got, at) })
	q.Push(nil, 3)
	q.Push(nil, 1) // later push, earlier stamp: still drains second
	q.Push(nil, 2)
	q.drain()
	if len(got) != 3 || got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("drain order %v, want [3 1 2]", got)
	}
	if len(q.items) != 0 || cap(q.items) < 3 {
		t.Fatalf("queue not reset keeping buffer: len=%d cap=%d", len(q.items), cap(q.items))
	}
}

// chain3 builds the unequal-latency 3-member line A - B - C used by the
// per-pair tests: A and B sync at laAB, B and C at laBC, with queues in
// both directions per pair. deliver hooks schedule a plain callback at
// the stamped time.
func chain3(t *testing.T, laAB, laBC time.Duration, annotate bool) (ks [3]*sim.Kernel, qs map[string]*Queue, members []*Member) {
	t.Helper()
	ks = [3]*sim.Kernel{sim.NewKernel(), sim.NewKernel(), sim.NewKernel()}
	qs = map[string]*Queue{}
	mk := func(to int) *Queue {
		k := ks[to]
		return NewQueue(4, func(_ unsafe.Pointer, at sim.Time) {
			k.At(at, func() {})
		})
	}
	qs["AB"], qs["BA"] = mk(1), mk(0)
	qs["BC"], qs["CB"] = mk(2), mk(1)
	if annotate {
		qs["AB"].SetEdge(0, laAB)
		qs["BA"].SetEdge(1, laAB)
		qs["BC"].SetEdge(1, laBC)
		qs["CB"].SetEdge(2, laBC)
	}
	members = []*Member{
		{K: ks[0], In: []*Queue{qs["BA"]}},
		{K: ks[1], In: []*Queue{qs["AB"], qs["CB"]}},
		{K: ks[2], In: []*Queue{qs["BC"]}},
	}
	return ks, qs, members
}

// TestPerPairFewerRounds pins the point of per-pair lookahead: on a
// chain whose A-B edge is 100x shorter than its B-C edge, member C is
// 100 ms of virtual time away from the tight pair, so its horizon is
// ~100 ms per round instead of the 1 ms global window. With dense
// local work on C (events every 500 us for 50 ms) the global window
// needs a round per millisecond of C's progress; per-pair C drains in
// the first round and only the A<->B ping-pong sets the round count.
// Clocks and event counts must be identical either way.
func TestPerPairFewerRounds(t *testing.T) {
	const laAB = time.Millisecond
	const laBC = 100 * time.Millisecond

	run := func(annotate bool) (st Stats, clocks [3]sim.Time) {
		ks, qs, members := chain3(t, laAB, laBC, annotate)
		hops := 0
		var qAB, qBA *Queue = qs["AB"], qs["BA"]
		// Rebuild A<->B deliver hooks to bounce a token 6 times.
		*qAB = *NewQueue(4, func(_ unsafe.Pointer, at sim.Time) {
			ks[1].At(at, func() {
				hops++
				if hops < 6 {
					qBA.Push(nil, ks[1].Now().Add(laAB))
				}
			})
		})
		*qBA = *NewQueue(4, func(_ unsafe.Pointer, at sim.Time) {
			ks[0].At(at, func() {
				hops++
				if hops < 6 {
					qAB.Push(nil, ks[0].Now().Add(laAB))
				}
			})
		})
		if annotate {
			qAB.SetEdge(0, laAB)
			qBA.SetEdge(1, laAB)
		}
		g := NewGroup(laAB, members)
		ks[0].At(0, func() { qAB.Push(nil, sim.Time(laAB)) })
		for j := 1; j <= 100; j++ {
			ks[2].At(sim.Time(j)*sim.Time(500*time.Microsecond), func() {})
		}
		g.Run()
		return g.Stats(), [3]sim.Time{ks[0].Now(), ks[1].Now(), ks[2].Now()}
	}

	gStats, gClocks := run(false)
	pStats, pClocks := run(true)
	if gStats.PerPair || !pStats.PerPair {
		t.Fatalf("PerPair flags: global=%v annotated=%v", gStats.PerPair, pStats.PerPair)
	}
	if gClocks != pClocks {
		t.Fatalf("clocks diverged: global %v, per-pair %v", gClocks, pClocks)
	}
	for i := range gStats.Events {
		if gStats.Events[i] != pStats.Events[i] {
			t.Fatalf("event counts diverged: global %v, per-pair %v", gStats.Events, pStats.Events)
		}
	}
	if pStats.Rounds >= gStats.Rounds {
		t.Fatalf("per-pair rounds %d not below global-window rounds %d", pStats.Rounds, gStats.Rounds)
	}
	if pStats.Rounds*5 > gStats.Rounds {
		t.Fatalf("per-pair rounds %d, want at least 5x below global %d", pStats.Rounds, gStats.Rounds)
	}
}

// TestPerPairTerminationResync is the regression for the termination
// path with unequal cut latencies: all kernels must leave Run at the
// same virtual time — the globally last event — even when per-pair
// horizons let the far member run dry many windows ahead of the tight
// pair. The resync target is the same global maximum either way.
func TestPerPairTerminationResync(t *testing.T) {
	const laAB = time.Millisecond
	const laBC = 100 * time.Millisecond
	ks, _, members := chain3(t, laAB, laBC, true)
	last := sim.Time(50 * time.Millisecond)
	ks[0].At(sim.Time(laAB), func() {})
	ks[2].At(last, func() {})
	g := NewGroup(laAB, members)
	g.Run()
	for i, k := range ks {
		if k.Now() != last {
			t.Fatalf("kernel %d at %v after Run, want resync to global last %v", i, k.Now(), last)
		}
	}
	if st := g.Stats(); st.Rounds > 3 {
		t.Fatalf("per-pair horizons should finish this in <=3 rounds, took %d", st.Rounds)
	}
}

// TestPerPairStats checks the extended Stats surface: per-member event
// counts come from the kernels' fired counters, and blocked time stays
// zero until telemetry is enabled.
func TestPerPairStats(t *testing.T) {
	ks, qs, members := chain3(t, time.Millisecond, 2*time.Millisecond, true)
	g := NewGroup(time.Millisecond, members)
	g.SetBlockedTelemetry(true)
	ks[0].At(0, func() { qs["AB"].Push(nil, sim.Time(time.Millisecond)) })
	g.Run()
	st := g.Stats()
	if len(st.Events) != 3 || len(st.Blocked) != 3 {
		t.Fatalf("Events/Blocked lengths %d/%d, want 3/3", len(st.Events), len(st.Blocked))
	}
	if st.Events[0] != 1 || st.Events[1] != 1 {
		t.Fatalf("Events = %v, want one event each on A and B", st.Events)
	}
	for i, k := range ks {
		if st.Events[i] != k.Fired() {
			t.Fatalf("Events[%d] = %d, kernel fired %d", i, st.Events[i], k.Fired())
		}
	}
}

// TestPartialAnnotationStaysGlobal pins the fallback: one unannotated
// queue keeps the whole group on the global window.
func TestPartialAnnotationStaysGlobal(t *testing.T) {
	ka, kb := sim.NewKernel(), sim.NewKernel()
	qAB := NewQueue(1, func(_ unsafe.Pointer, at sim.Time) { kb.At(at, func() {}) })
	qBA := NewQueue(1, func(_ unsafe.Pointer, at sim.Time) { ka.At(at, func() {}) })
	qAB.SetEdge(0, time.Millisecond)
	g := NewGroup(time.Millisecond, []*Member{
		{K: ka, In: []*Queue{qBA}},
		{K: kb, In: []*Queue{qAB}},
	})
	if g.PerPair() {
		t.Fatal("group with an unannotated queue must use the global window")
	}
}

func TestSetEdgeValidation(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	q := NewQueue(1, func(_ unsafe.Pointer, _ sim.Time) {})
	expectPanic("negative from", func() { q.SetEdge(-1, time.Millisecond) })
	expectPanic("zero lookahead", func() { q.SetEdge(0, 0) })
	expectPanic("edge from outside group", func() {
		bad := NewQueue(1, func(_ unsafe.Pointer, _ sim.Time) {})
		bad.SetEdge(7, time.Millisecond)
		ka, kb := sim.NewKernel(), sim.NewKernel()
		other := NewQueue(1, func(_ unsafe.Pointer, _ sim.Time) {})
		other.SetEdge(1, time.Millisecond)
		NewGroup(time.Millisecond, []*Member{
			{K: ka, In: []*Queue{bad}},
			{K: kb, In: []*Queue{other}},
		})
	})
	expectPanic("run after close", func() {
		ka, kb := sim.NewKernel(), sim.NewKernel()
		g := NewGroup(time.Millisecond, []*Member{{K: ka}, {K: kb}})
		g.Close()
		g.Run()
	})
}
