package pdes

import (
	"testing"
	"time"
	"unsafe"

	"repro/internal/sim"
)

// TestTwoMemberPingPong bounces a token between two kernels through a
// pair of queues and checks that every hop lands exactly one lookahead
// after the previous one — the conservative window never lets a kernel
// see a message late.
func TestTwoMemberPingPong(t *testing.T) {
	ka, kb := sim.NewKernel(), sim.NewKernel()
	const la = time.Millisecond
	const hops = 20

	var atA, atB []sim.Time
	var qAtoB, qBtoA *Queue
	qAtoB = NewQueue(1, func(_ unsafe.Pointer, at sim.Time) {
		kb.At(at, func() {
			atB = append(atB, kb.Now())
			if len(atA)+len(atB) < hops {
				qBtoA.Push(nil, kb.Now().Add(la))
			}
		})
	})
	qBtoA = NewQueue(1, func(_ unsafe.Pointer, at sim.Time) {
		ka.At(at, func() {
			atA = append(atA, ka.Now())
			if len(atA)+len(atB) < hops {
				qAtoB.Push(nil, ka.Now().Add(la))
			}
		})
	})

	g := NewGroup(la, []*Member{
		{K: ka, In: []*Queue{qBtoA}},
		{K: kb, In: []*Queue{qAtoB}},
	})
	// Kick off: the first event on A pushes the token toward B.
	ka.At(0, func() { qAtoB.Push(nil, sim.Time(la)) })
	g.Run()

	if len(atA)+len(atB) != hops {
		t.Fatalf("got %d+%d hops, want %d", len(atA), len(atB), hops)
	}
	for i, at := range atB {
		want := sim.Time(la) * sim.Time(2*i+1)
		if at != want {
			t.Fatalf("hop %d on B at %v, want %v", i, at, want)
		}
	}
	for i, at := range atA {
		want := sim.Time(la) * sim.Time(2*i+2)
		if at != want {
			t.Fatalf("hop %d on A at %v, want %v", i, at, want)
		}
	}
	st := g.Stats()
	if st.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	if st.NullMessages != 2*st.Rounds {
		t.Fatalf("NullMessages = %d, want 2 per round over %d rounds", st.NullMessages, st.Rounds)
	}
	if g.Pending() != 0 {
		t.Fatalf("pending events after Run: %d", g.Pending())
	}
}

// TestGroupRerun reuses one group for a second batch of events — the
// quiescent-between-Runs contract drivers like tcpsim.WaitAll rely on.
func TestGroupRerun(t *testing.T) {
	ka, kb := sim.NewKernel(), sim.NewKernel()
	const la = time.Millisecond
	count := 0
	qAtoB := NewQueue(1, func(_ unsafe.Pointer, at sim.Time) {
		kb.At(at, func() { count++ })
	})
	g := NewGroup(la, []*Member{
		{K: ka},
		{K: kb, In: []*Queue{qAtoB}},
	})
	for run := 1; run <= 3; run++ {
		ka.At(ka.Now().Add(la), func() { qAtoB.Push(nil, ka.Now().Add(la)) })
		g.Run()
		if count != run {
			t.Fatalf("after run %d: count = %d", run, count)
		}
	}
}

// TestSingleMemberRunsInline checks the degenerate one-partition group
// is just Kernel.Run.
func TestSingleMemberRunsInline(t *testing.T) {
	k := sim.NewKernel()
	fired := false
	k.At(5, func() { fired = true })
	g := NewGroup(0, []*Member{{K: k}}) // zero lookahead allowed solo
	g.Run()
	if !fired || k.Now() != 5 {
		t.Fatalf("fired=%v now=%v", fired, k.Now())
	}
}

func TestNewGroupValidation(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("empty", func() { NewGroup(time.Millisecond, nil) })
	expectPanic("zero lookahead", func() {
		NewGroup(0, []*Member{{K: sim.NewKernel()}, {K: sim.NewKernel()}})
	})
}

// TestQueueFIFO pins the drain order: messages leave a queue in push
// order, which keeps equal-timestamp injections deterministic.
func TestQueueFIFO(t *testing.T) {
	var got []sim.Time
	q := NewQueue(2, func(_ unsafe.Pointer, at sim.Time) { got = append(got, at) })
	q.Push(nil, 3)
	q.Push(nil, 1) // later push, earlier stamp: still drains second
	q.Push(nil, 2)
	q.drain()
	if len(got) != 3 || got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("drain order %v, want [3 1 2]", got)
	}
	if len(q.items) != 0 || cap(q.items) < 3 {
		t.Fatalf("queue not reset keeping buffer: len=%d cap=%d", len(q.items), cap(q.items))
	}
}
