package pdes_test

import (
	"testing"

	"repro/internal/benchkit"
)

// The benchmark bodies live in internal/benchkit so cmd/gtwbench can
// run the identical code with testing.Benchmark and emit
// BENCH_kernel.json; these wrappers keep them discoverable under
// `go test -bench`. They sit in the external test package because
// benchkit reaches pdes through netsim.

// BenchmarkPDESLargeTopologySingleKernel is the serial baseline: the
// 4-site cross-traffic load on one kernel.
func BenchmarkPDESLargeTopologySingleKernel(b *testing.B) {
	benchkit.PDESLargeTopologySingleKernel(b)
}

// BenchmarkPDESLargeTopology is the same load partitioned at the WAN
// cut across 4 kernels.
func BenchmarkPDESLargeTopology(b *testing.B) { benchkit.PDESLargeTopology(b) }

// BenchmarkNullMessageOverhead isolates the conservative protocol's
// per-round synchronization cost.
func BenchmarkNullMessageOverhead(b *testing.B) { benchkit.NullMessageOverhead(b) }
