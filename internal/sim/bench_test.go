package sim_test

import (
	"testing"

	"repro/internal/benchkit"
)

// The benchmark bodies live in internal/benchkit so cmd/gtwbench can
// run the identical code with testing.Benchmark and emit
// BENCH_kernel.json; these wrappers keep them discoverable under
// `go test -bench`.

// BenchmarkEventThroughput measures raw event scheduling+dispatch rate,
// the figure that bounds every simulation in this repository.
func BenchmarkEventThroughput(b *testing.B) { benchkit.EventThroughput(b) }

// BenchmarkEventHeap measures scheduling with a deep pending queue.
func BenchmarkEventHeap(b *testing.B) { benchkit.EventHeap(b) }

// BenchmarkProcContextSwitch measures the cooperative process handoff
// cost (two goroutine switches per Sleep).
func BenchmarkProcContextSwitch(b *testing.B) { benchkit.ProcContextSwitch(b) }

// BenchmarkChanSendRecv measures virtual-time channel rendezvous.
func BenchmarkChanSendRecv(b *testing.B) { benchkit.ChanSendRecv(b) }
