package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw event scheduling+dispatch rate,
// the figure that bounds every simulation in this repository.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(time.Microsecond, func() {})
		k.Step()
	}
}

// BenchmarkEventHeap measures scheduling with a deep pending queue.
func BenchmarkEventHeap(b *testing.B) {
	k := NewKernel()
	for i := 0; i < 10000; i++ {
		k.At(Time(1e12+int64(i)), func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := k.After(time.Millisecond, func() {})
		k.Cancel(e)
	}
}

// BenchmarkProcContextSwitch measures the cooperative process handoff
// cost (two goroutine switches per Sleep).
func BenchmarkProcContextSwitch(b *testing.B) {
	k := NewKernel()
	k.Go("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkChanSendRecv measures virtual-time channel rendezvous.
func BenchmarkChanSendRecv(b *testing.B) {
	k := NewKernel()
	c := NewChan[int](k, 0)
	k.Go("recv", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Recv(p)
		}
	})
	k.Go("send", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Send(p, i)
		}
	})
	b.ResetTimer()
	k.Run()
}
