package sim

import (
	"fmt"
	"time"
	"unsafe"
)

// Proc is a cooperative simulation process: a goroutine whose blocking
// operations (Sleep, channel receives, resource acquisition) advance
// virtual rather than wall-clock time. Exactly one process runs at any
// moment; a process keeps the CPU until it blocks, so sequences of
// ordinary Go code between blocking calls are atomic in virtual time.
type Proc struct {
	k    *Kernel
	name string
	wake chan struct{}
	done bool
}

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the diagnostic name given to Go.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Go starts fn as a new simulation process. The process begins running
// at the current virtual time, once the kernel reaches the scheduling
// event (so Go may be called before Run). A panic inside fn is
// propagated out of the kernel's Run/Step.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan struct{})}
	k.procs++
	go func() {
		<-p.wake // wait for the kernel to hand us the virtual CPU
		defer func() {
			p.done = true
			k.procs--
			if r := recover(); r != nil {
				k.panicVal = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
			}
			k.ctl <- struct{}{} // return the CPU for good
		}()
		fn(p)
	}()
	k.AtFunc(k.now, resumeProc, unsafe.Pointer(p), nil)
	return p
}

// resumeProc is the closure-free resume trampoline shared by every
// scheduling site below: the process pointer rides in the event record.
func resumeProc(a0, _ unsafe.Pointer) {
	p := (*Proc)(a0)
	p.k.resume(p)
}

// resume hands the virtual CPU to p and blocks until p parks or exits.
// It must only be called from the kernel goroutine (i.e. from event
// callbacks).
func (k *Kernel) resume(p *Proc) {
	if p.done {
		return
	}
	p.wake <- struct{}{}
	<-k.ctl
}

// park returns the virtual CPU to the kernel and blocks until another
// event resumes this process.
func (p *Proc) park() {
	p.k.ctl <- struct{}{}
	<-p.wake
}

// Sleep blocks the process for d of virtual time. Non-positive
// durations yield the CPU to other events scheduled at the current
// instant and continue.
func (p *Proc) Sleep(d time.Duration) {
	p.k.AfterFunc(d, resumeProc, unsafe.Pointer(p), nil)
	p.park()
}

// WaitUntil blocks the process until virtual time t. Times in the past
// behave like Sleep(0).
func (p *Proc) WaitUntil(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.AtFunc(t, resumeProc, unsafe.Pointer(p), nil)
	p.park()
}

// waitExternal parks the process until resume() is invoked by whatever
// mechanism the caller registered beforehand (channel wait lists,
// resource queues, ...). The registered mechanism must eventually call
// the returned resume exactly once, from kernel context.
func (p *Proc) waitExternal() { p.park() }

// resumeNow schedules p to be resumed at the current virtual instant.
func (p *Proc) resumeNow() {
	p.k.AtFunc(p.k.now, resumeProc, unsafe.Pointer(p), nil)
}
