package sim

import (
	"fmt"
	"time"
	"unsafe"
)

// Proc is a cooperative simulation process: a goroutine whose blocking
// operations (Sleep, channel receives, resource acquisition) advance
// virtual rather than wall-clock time. Exactly one process runs at any
// moment; a process keeps the CPU until it blocks, so sequences of
// ordinary Go code between blocking calls are atomic in virtual time.
type Proc struct {
	k    *Kernel
	name string
	wake chan struct{}
	done bool
}

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the diagnostic name given to Go.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Go starts fn as a new simulation process. The process begins running
// at the current virtual time, once the kernel reaches the scheduling
// event (so Go may be called before Run). A panic inside fn is
// propagated out of the kernel's Run/Step.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan struct{})}
	k.procs++
	go func() {
		<-p.wake // wait for the kernel to hand us the virtual CPU
		defer func() {
			p.done = true
			k.procs--
			if r := recover(); r != nil {
				k.panicVal = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
			}
			k.ctl <- struct{}{} // return the CPU for good
		}()
		fn(p)
	}()
	k.AtFunc(k.now, resumeProc, unsafe.Pointer(p), nil)
	return p
}

// resumeProc is the closure-free resume trampoline shared by every
// scheduling site below: the process pointer rides in the event record.
func resumeProc(a0, _ unsafe.Pointer) {
	p := (*Proc)(a0)
	p.k.resume(p)
}

// resume hands the virtual CPU to p and blocks until p parks or exits.
// It runs in event-callback context — on the kernel goroutine, or on
// the goroutine of a parked process that is driving the loop inline.
func (k *Kernel) resume(p *Proc) {
	if p.done {
		return
	}
	if d := k.driving; d != nil {
		// A parked process is driving the event loop from its own park.
		if d == p {
			// The fired event resumes the driver itself: just stop
			// driving — the park returns with zero goroutine switches.
			k.driving = nil
			return
		}
		// Hand the virtual CPU to p directly, process to process,
		// without waking the kernel goroutine; the driver stays parked
		// until its own resume fires.
		k.driving = nil
		p.wake <- struct{}{}
		<-d.wake
		return
	}
	p.wake <- struct{}{}
	<-k.ctl
}

// park returns the virtual CPU and blocks until another event resumes
// this process. Inside Run/RunUntil the parking process drives the
// event loop itself (see drive) instead of switching to the kernel
// goroutine; under manual Step the classic two-switch handoff is kept,
// so Step still fires exactly one event per call.
func (p *Proc) park() {
	k := p.k
	if k.running && k.driving == nil {
		k.driving = p
		k.drive(p)
		return
	}
	k.ctl <- struct{}{}
	<-p.wake
}

// drive runs the event loop on the parked process's goroutine until an
// event resumes the process (resume clears k.driving, possibly after
// handing the CPU to another process directly). When no more events may
// fire here — queue drained, Stop called, or past the RunUntil bound —
// the CPU goes back to the kernel goroutine and the process waits
// parked, exactly as the classic handoff would have left it.
func (k *Kernel) drive(p *Proc) {
	defer func() {
		if r := recover(); r != nil {
			// An event callback panicked while this goroutine drove the
			// loop. Stash the value for the kernel goroutine to rethrow
			// out of Run and stay parked, as this process would have
			// been had the kernel goroutine hit the same panic.
			k.panicVal = r
			k.driving = nil
			k.ctl <- struct{}{}
			<-p.wake
		}
	}()
	for k.driving == p {
		if k.stopped || len(k.heap) == 0 || (k.bounded && k.heap[0].at > k.bound) {
			k.driving = nil
			k.ctl <- struct{}{}
			<-p.wake
			return
		}
		k.Step()
	}
}

// Sleep blocks the process for d of virtual time. Non-positive
// durations yield the CPU to other events scheduled at the current
// instant and continue.
func (p *Proc) Sleep(d time.Duration) {
	p.k.AfterFunc(d, resumeProc, unsafe.Pointer(p), nil)
	p.park()
}

// WaitUntil blocks the process until virtual time t. Times in the past
// behave like Sleep(0).
func (p *Proc) WaitUntil(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.AtFunc(t, resumeProc, unsafe.Pointer(p), nil)
	p.park()
}

// waitExternal parks the process until resume() is invoked by whatever
// mechanism the caller registered beforehand (channel wait lists,
// resource queues, ...). The registered mechanism must eventually call
// the returned resume exactly once, from kernel context.
func (p *Proc) waitExternal() { p.park() }

// resumeNow schedules p to be resumed at the current virtual instant.
func (p *Proc) resumeNow() {
	p.k.AtFunc(p.k.now, resumeProc, unsafe.Pointer(p), nil)
}
