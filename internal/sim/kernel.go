// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a virtual clock measured in integer nanoseconds.
// Work is expressed either as timed callbacks (Event) or as cooperative
// processes (Proc) that block in virtual time on sleeps, channels and
// resources. At most one process runs at any instant, and events with
// equal timestamps fire in scheduling order, so simulations are fully
// deterministic and independent of the host scheduler.
//
// The kernel underpins the network model (internal/netsim), the machine
// cost models (internal/machine) and every experiment driver in this
// repository.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since the start
// of the simulation.
type Time int64

// Seconds reports the timestamp in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns the timestamp shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts a floating-point number of seconds to a
// time.Duration, saturating instead of overflowing for huge values.
func Duration(seconds float64) time.Duration {
	const maxSec = float64(1<<62) / 1e9
	if seconds > maxSec {
		return time.Duration(1 << 62)
	}
	if seconds < 0 {
		return 0
	}
	return time.Duration(seconds * 1e9)
}

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Event is a scheduled callback. Events are created with Kernel.At or
// Kernel.After and may be cancelled before they fire.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 once fired or cancelled
	canceled bool
}

// When reports the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now      Time
	seq      uint64
	events   eventHeap
	ctl      chan struct{} // handshake: proc -> kernel (parked or exited)
	procs    int           // live (started, not yet finished) processes
	panicVal any
	stopped  bool
}

// NewKernel returns a kernel with the clock at zero and no pending
// events.
func NewKernel() *Kernel {
	return &Kernel{ctl: make(chan struct{})}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error and panics: the caller has violated causality.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, k.now))
	}
	k.seq++
	e := &Event{at: t, seq: k.seq, fn: fn}
	heap.Push(&k.events, e)
	return e
}

// After schedules fn to run d after the current virtual time. Negative
// durations are treated as zero.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an event that already fired
// or was already cancelled is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.canceled {
		return
	}
	e.canceled = true
	heap.Remove(&k.events, e.index)
}

// Pending reports the number of events waiting to fire.
func (k *Kernel) Pending() int { return len(k.events) }

// Step fires the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was fired.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*Event)
	k.now = e.at
	e.fn()
	if k.panicVal != nil {
		v := k.panicVal
		k.panicVal = nil
		panic(v)
	}
	return true
}

// Run fires events until none remain or Stop is called. It returns the
// final virtual time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
	return k.now
}

// RunUntil fires events with timestamps <= t, then sets the clock to t
// (if it is not already past it) and returns.
func (k *Kernel) RunUntil(t Time) Time {
	k.stopped = false
	for !k.stopped && len(k.events) > 0 && k.events[0].at <= t {
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
	return k.now
}

// Stop makes the innermost Run or RunUntil return after the current
// event completes. It may be called from inside event callbacks or
// processes.
func (k *Kernel) Stop() { k.stopped = true }

// Procs reports the number of live processes (started and not yet
// returned).
func (k *Kernel) Procs() int { return k.procs }
