// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a virtual clock measured in integer nanoseconds.
// Work is expressed either as timed callbacks (Event) or as cooperative
// processes (Proc) that block in virtual time on sleeps, channels and
// resources. At most one process runs at any instant, and events with
// equal timestamps fire in scheduling order, so simulations are fully
// deterministic and independent of the host scheduler.
//
// The event queue is an index-tracked 4-ary min-heap over a pooled
// freelist of event records: scheduling, firing and cancelling events
// on the hot path performs no heap allocation and no interface boxing
// once the pool is warm. Callbacks that would otherwise capture their
// arguments in a per-event closure can use AtFunc/AfterFunc, which
// carry two raw pointer arguments inside the event record itself. An
// event record is exactly one cache line (64 bytes, size-asserted in
// the tests), so the 4-ary heap touches two records per line.
//
// The kernel underpins the network model (internal/netsim), the machine
// cost models (internal/machine) and every experiment driver in this
// repository.
package sim

import (
	"fmt"
	"math"
	"time"
	"unsafe"
)

// Time is an absolute virtual timestamp in nanoseconds since the start
// of the simulation.
type Time int64

// Seconds reports the timestamp in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns the timestamp shifted by d. The result saturates at the
// int64 extremes instead of wrapping: Duration already saturates huge
// second counts at 1<<62 ns, and a wrapped negative timestamp would
// make Kernel.At panic with a bogus causality violation.
func (t Time) Add(d time.Duration) Time {
	s := t + Time(d)
	if d >= 0 {
		if s < t {
			return Time(math.MaxInt64)
		}
	} else if s > t {
		return Time(math.MinInt64)
	}
	return s
}

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts a floating-point number of seconds to a
// time.Duration, saturating instead of overflowing for huge values.
func Duration(seconds float64) time.Duration {
	const maxSec = float64(1<<62) / 1e9
	if seconds > maxSec {
		return time.Duration(1 << 62)
	}
	if seconds < 0 {
		return 0
	}
	return time.Duration(seconds * 1e9)
}

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// event is a pooled scheduled-callback record. Records are recycled
// after they fire or are cancelled; gen disambiguates a recycled record
// from the schedule a stale Event handle refers to.
//
// The record is packed to one 64-byte cache line: the closure-free
// arguments are raw pointers (one word each, not two-word interfaces),
// so two records share a line in the 4-ary heap's touch pattern. The
// tests assert the size with unsafe.Sizeof.
type event struct {
	at  Time
	seq uint64
	gen uint64
	fn  func()
	// fn2/a0/a1 are the closure-free callback form: fn2 is typically a
	// package-level func, a0/a1 raw pointers to its context (the
	// callback knows the concrete types it scheduled).
	fn2    func(a0, a1 unsafe.Pointer)
	a0, a1 unsafe.Pointer
	index  int32 // heap index, -1 while pooled or firing
}

// Event is a handle on a scheduled callback, returned by At/After and
// accepted by Cancel. It is a small value; the zero Event is valid and
// refers to nothing (Cancel ignores it). Handles become inert once the
// event fires or is cancelled — the kernel recycles the underlying
// record, and the generation tag stops stale handles from touching its
// next occupant.
type Event struct {
	e   *event
	gen uint64
}

// When reports the virtual time the event is scheduled for, or zero if
// the handle no longer refers to a pending event.
func (ev Event) When() Time {
	if ev.e == nil || ev.e.gen != ev.gen {
		return 0
	}
	return ev.e.at
}

// Pending reports whether the handle still refers to a scheduled,
// unfired event.
func (ev Event) Pending() bool {
	return ev.e != nil && ev.e.gen == ev.gen
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now      Time
	seq      uint64
	heap     []*event      // 4-ary min-heap ordered by (at, seq)
	free     []*event      // recycled event records
	ctl      chan struct{} // handshake: proc -> kernel (parked or exited)
	procs    int           // live (started, not yet finished) processes
	panicVal any
	stopped  bool

	// Inline-drive state: while Run/RunUntil is live (running), a
	// parking process drives the event loop on its own goroutine
	// (driving) instead of round-tripping through the kernel goroutine —
	// a process whose own resume is the next event never switches
	// goroutines at all. bounded/bound carry RunUntil's horizon so an
	// inline driver stops exactly where the kernel loop would.
	driving *Proc
	running bool
	bounded bool
	bound   Time

	fired int64 // events fired since creation
}

// NewKernel returns a kernel with the clock at zero and no pending
// events.
func NewKernel() *Kernel {
	return &Kernel{ctl: make(chan struct{})}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// alloc takes an event record from the pool (or makes one) and stamps
// its schedule.
func (k *Kernel) alloc(t Time) *event {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, k.now))
	}
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = &event{}
	}
	k.seq++
	e.at = t
	e.seq = k.seq
	return e
}

// release recycles a record that has fired or been cancelled. Bumping
// gen invalidates every outstanding handle to the old schedule.
func (k *Kernel) release(e *event) {
	e.gen++
	e.fn = nil
	e.fn2 = nil
	e.a0 = nil
	e.a1 = nil
	e.index = -1
	k.free = append(k.free, e)
}

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error and panics: the caller has violated causality.
func (k *Kernel) At(t Time, fn func()) Event {
	e := k.alloc(t)
	e.fn = fn
	k.push(e)
	return Event{e: e, gen: e.gen}
}

// After schedules fn to run d after the current virtual time. Negative
// durations are treated as zero.
func (k *Kernel) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// AtFunc schedules fn(a0, a1) at virtual time t without a per-event
// closure: fn is typically a package-level function and a0/a1 raw
// pointers to its context (cast back to their concrete types inside
// fn). Carrying one-word pointers instead of two-word interfaces keeps
// the event record inside a single cache line and hot paths that
// schedule per-packet work allocation-free.
func (k *Kernel) AtFunc(t Time, fn func(a0, a1 unsafe.Pointer), a0, a1 unsafe.Pointer) Event {
	e := k.alloc(t)
	e.fn2 = fn
	e.a0 = a0
	e.a1 = a1
	k.push(e)
	return Event{e: e, gen: e.gen}
}

// AfterFunc is AtFunc relative to the current virtual time. Negative
// durations are treated as zero.
func (k *Kernel) AfterFunc(d time.Duration, fn func(a0, a1 unsafe.Pointer), a0, a1 unsafe.Pointer) Event {
	if d < 0 {
		d = 0
	}
	return k.AtFunc(k.now.Add(d), fn, a0, a1)
}

// Cancel removes a pending event. Cancelling the zero Event, or an
// event that already fired or was already cancelled, is a no-op.
func (k *Kernel) Cancel(ev Event) {
	e := ev.e
	if e == nil || e.gen != ev.gen || e.index < 0 {
		return
	}
	k.remove(int(e.index))
	k.release(e)
}

// Pending reports the number of events waiting to fire.
func (k *Kernel) Pending() int { return len(k.heap) }

// AdvanceTo moves the clock forward to t without firing anything — the
// quiescent resynchronization a parallel group does when its kernels
// run dry at different virtual times (each stops at its own last
// event; all must agree with the global last before the driver
// schedules "at now" again). Moving past a pending event would skip it,
// so that panics; t at or before now is a no-op.
func (k *Kernel) AdvanceTo(t Time) {
	if t <= k.now {
		return
	}
	if len(k.heap) > 0 && k.heap[0].at < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) past pending event at %v", t, k.heap[0].at))
	}
	k.now = t
}

// Step fires the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was fired.
func (k *Kernel) Step() bool {
	if len(k.heap) == 0 {
		return false
	}
	e := k.heap[0]
	k.remove(0)
	k.now = e.at
	k.fired++
	// Capture the callback, then recycle the record *before* running
	// it, so the callback can schedule new events into the warm pool.
	fn, fn2, a0, a1 := e.fn, e.fn2, e.a0, e.a1
	k.release(e)
	if fn != nil {
		fn()
	} else {
		fn2(a0, a1)
	}
	if k.panicVal != nil {
		v := k.panicVal
		k.panicVal = nil
		panic(v)
	}
	return true
}

// Run fires events until none remain or Stop is called. It returns the
// final virtual time.
func (k *Kernel) Run() Time {
	k.stopped = false
	k.running, k.bounded = true, false
	for !k.stopped && k.Step() {
	}
	k.running = false
	return k.now
}

// RunUntil fires events with timestamps <= t, then sets the clock to t
// (if it is not already past it) and returns.
func (k *Kernel) RunUntil(t Time) Time {
	k.stopped = false
	k.running, k.bounded, k.bound = true, true, t
	for !k.stopped && len(k.heap) > 0 && k.heap[0].at <= t {
		k.Step()
	}
	k.running, k.bounded = false, false
	if k.now < t {
		k.now = t
	}
	return k.now
}

// RunBefore fires events with timestamps strictly before horizon h and
// returns the clock, which stays at the last fired event's time — it is
// NOT advanced to h. This is the window primitive of conservative
// parallel simulation (internal/sim/pdes): a partition kernel executes
// [now, h) where h = global-min + lookahead, and the clock must keep
// its event-derived value so the next window's cross-kernel arrivals
// (all stamped >= h-lookahead+cut-delay >= the last fired event) never
// violate causality. Time is integer nanoseconds, so the half-open
// bound is expressed to the inline-drive machinery as bound = h-1.
func (k *Kernel) RunBefore(h Time) Time {
	k.stopped = false
	k.running, k.bounded, k.bound = true, true, h-1
	for !k.stopped && len(k.heap) > 0 && k.heap[0].at < h {
		k.Step()
	}
	k.running, k.bounded = false, false
	return k.now
}

// Fired reports the number of events this kernel has fired since its
// creation. It is a deterministic measure of the work a partition
// carried — the load signal conservative parallel groups use to
// rebalance — and is cheap enough to maintain unconditionally.
func (k *Kernel) Fired() int64 { return k.fired }

// NextEventTime reports the timestamp of the earliest pending event.
// The second result is false when no events are pending.
func (k *Kernel) NextEventTime() (Time, bool) {
	if len(k.heap) == 0 {
		return 0, false
	}
	return k.heap[0].at, true
}

// Stop makes the innermost Run or RunUntil return after the current
// event completes. It may be called from inside event callbacks or
// processes.
func (k *Kernel) Stop() { k.stopped = true }

// Procs reports the number of live processes (started and not yet
// returned).
func (k *Kernel) Procs() int { return k.procs }

// ---- 4-ary min-heap over *event, ordered by (at, seq) ----
//
// A 4-ary heap halves the tree depth of the binary container/heap it
// replaced (fewer cache lines touched per sift) and, being concrete,
// avoids the any boxing of heap.Interface.

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (k *Kernel) push(e *event) {
	k.heap = append(k.heap, e)
	k.siftUp(len(k.heap) - 1)
}

// remove deletes the event at heap index i, preserving heap order.
func (k *Kernel) remove(i int) {
	h := k.heap
	last := len(h) - 1
	h[i].index = -1
	if i != last {
		moved := h[last]
		h[i] = moved
		h[last] = nil
		k.heap = h[:last]
		moved.index = int32(i)
		k.siftDown(i)
		k.siftUp(int(moved.index))
	} else {
		h[last] = nil
		k.heap = h[:last]
	}
}

func (k *Kernel) siftUp(i int) {
	h := k.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		pe := h[p]
		if !eventLess(e, pe) {
			break
		}
		h[i] = pe
		pe.index = int32(i)
		i = p
	}
	h[i] = e
	e.index = int32(i)
}

func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	e := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		min, me := c, h[c]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], me) {
				min, me = j, h[j]
			}
		}
		if !eventLess(me, e) {
			break
		}
		h[i] = me
		me.index = int32(i)
		i = min
	}
	h[i] = e
	e.index = int32(i)
}
