package core

import (
	"sync"
	"time"
)

// This file is the sweep engine's work dispatch layer. PR 3's executor
// split the grid into contiguous batches, one per shard, fixed up
// front; grids with very uneven point costs (figure1's Ethernet-MTU
// probe is ~10x its siblings) left shards idle while one ground through
// the expensive batch. A Dispatcher instead hands out leases — small
// contiguous runs of grid points — on demand from one shared queue, so
// a shard that finishes early steals the next lease instead of going
// idle. The same queue serves two kinds of consumers: the in-process
// shard goroutines of Sweep.Run, and the remote workers of
// internal/dist, which check leases out over HTTP and can die holding
// them (Requeue puts an expired lease's points back).
//
// Per-worker throughput EWMAs steer lease sizes: a worker that has
// proven fast gets proportionally larger leases, a slow one smaller —
// the WANify-style runtime balancing from PAPERS.md, applied to grid
// points instead of bytes.

// Lease is a contiguous run of grid points [Lo, Hi) checked out by one
// worker. Seq is unique within the dispatcher and is what makes result
// delivery idempotent: a lease completes at most once.
type Lease struct {
	Seq    uint64 `json:"seq"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
	Worker string `json:"worker"`
}

// Points reports the number of grid points in the lease.
func (l Lease) Points() int { return l.Hi - l.Lo }

// Dispatcher hands out grid-point leases to sweep workers and tracks
// their completion. Implementations are safe for concurrent use.
type Dispatcher interface {
	// Next blocks until a lease is available for the named worker and
	// returns it, or returns ok=false when every point has completed
	// (or the dispatcher was closed). In-process shard loops use Next.
	Next(worker string) (Lease, bool)
	// TryNext is the non-blocking form for polling callers (the
	// coordinator's HTTP lease handler): ok=false means nothing is
	// available right now, not that the sweep is over.
	TryNext(worker string) (Lease, bool)
	// Complete marks a lease's points evaluated. elapsed feeds the
	// worker's throughput estimate. Completing a lease that is not
	// outstanding (already completed, or requeued after expiry) is a
	// no-op, which is what makes duplicate result uploads idempotent.
	Complete(l Lease, elapsed time.Duration)
	// Requeue returns an outstanding lease's points to the queue — the
	// dead-worker path. Requeueing a lease that already completed is a
	// no-op.
	Requeue(l Lease)
	// Done is closed when every grid point has completed.
	Done() <-chan struct{}
	// Close aborts the dispatch: blocked Next calls return false and no
	// further leases are handed out. Used on context cancellation.
	Close()
}

// DispatcherMaker builds a dispatcher for a sweep run over `points`
// grid points with `workers` expected concurrent consumers.
type DispatcherMaker func(points, workers int) Dispatcher

// span is a pending run of grid points [lo, hi).
type span struct{ lo, hi int }

// pointQueue is the shared lease queue behind both dispatch policies.
// In work-stealing mode leases are carved off the front of the pending
// spans at a size steered by the worker's throughput EWMA; in
// contiguous mode the spans are pre-split into one batch per worker and
// handed out whole (PR 3's static policy, kept for comparison — the
// benchkit suite races the two on an uneven grid).
type pointQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	spans       []span // pending work, front is handed out next
	total       int
	completed   int
	workers     int // expected concurrency (lease sizing hint)
	presplit    bool
	seq         uint64
	outstanding map[uint64]Lease
	rate        map[string]float64 // per-worker EWMA, points/sec
	closed      bool
	done        chan struct{}
}

// rateAlpha is the EWMA smoothing factor for per-worker throughput.
const rateAlpha = 0.4

func newPointQueue(points, workers int, presplit bool, skip []bool) *pointQueue {
	if workers < 1 {
		workers = 1
	}
	q := &pointQueue{
		total:       points,
		workers:     workers,
		presplit:    presplit,
		outstanding: make(map[uint64]Lease),
		rate:        make(map[string]float64),
		done:        make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	switch {
	case len(skip) == points && points > 0:
		// Points already done (content-addressed store hits) count as
		// completed and are never leased: the pending spans are the
		// maximal runs of missing points.
		var credited int
		q.spans, credited = missingSpans(0, skip)
		q.completed += credited
	case presplit:
		// PR 3's contiguous batches: worker s's batch is [lo, hi).
		for s := 0; s < workers && s < points; s++ {
			lo := s * points / workers
			hi := (s + 1) * points / workers
			if hi > lo {
				q.spans = append(q.spans, span{lo, hi})
			}
		}
	case points > 0:
		q.spans = []span{{0, points}}
	}
	if q.completed == q.total {
		close(q.done)
	}
	return q
}

// NewWorkStealingDispatcher builds the default dispatcher: one shared
// point queue all workers lease from, with EWMA-steered lease sizes.
func NewWorkStealingDispatcher(points, workers int) Dispatcher {
	return newPointQueue(points, workers, false, nil)
}

// NewWorkStealingDispatcherSkipping is the work-stealing dispatcher
// over a grid where some points are already done (served from the
// coordinator's point store): done points are credited as completed up
// front and only the missing runs are leased. A nil done slice means
// nothing is skipped.
func NewWorkStealingDispatcherSkipping(points, workers int, done []bool) Dispatcher {
	return newPointQueue(points, workers, false, done)
}

// NewContiguousDispatcher builds the static pre-split dispatcher: the
// grid is cut into one contiguous batch per worker up front, as the
// PR 3 executor did. It exists for comparison (benchkit races it
// against work stealing on an uneven grid) and for callers that want
// deterministic shard->points assignment.
func NewContiguousDispatcher(points, workers int) Dispatcher {
	return newPointQueue(points, workers, true, nil)
}

// leaseSizeLocked picks how many points to carve for worker w.
//
// The base size halves the remaining work across the expected workers
// (remaining/(2*workers), at least 1): early leases are big enough to
// amortize dispatch, late leases shrink toward single points so the
// tail balances. A worker with a throughput history gets the base
// scaled by its speed relative to the fleet mean, clamped to [1, 2x] —
// faster workers take proportionally larger bites.
func (q *pointQueue) leaseSizeLocked(w string, remaining int) int {
	base := (remaining + 2*q.workers - 1) / (2 * q.workers)
	if base < 1 {
		base = 1
	}
	if r, ok := q.rate[w]; ok && r > 0 {
		var sum float64
		for _, v := range q.rate {
			sum += v
		}
		mean := sum / float64(len(q.rate))
		if mean > 0 {
			scaled := int(float64(base)*(r/mean) + 0.5)
			if scaled < 1 {
				scaled = 1
			}
			if max := 2 * base; scaled > max {
				scaled = max
			}
			base = scaled
		}
	}
	if base > remaining {
		base = remaining
	}
	return base
}

// tryNextLocked carves the next lease, or returns false if no work is
// pending right now.
func (q *pointQueue) tryNextLocked(worker string) (Lease, bool) {
	if q.closed || len(q.spans) == 0 {
		return Lease{}, false
	}
	sp := q.spans[0]
	var l Lease
	if q.presplit {
		// Contiguous mode: the whole batch, as pre-split.
		q.spans = q.spans[1:]
		l = Lease{Lo: sp.lo, Hi: sp.hi}
	} else {
		n := q.leaseSizeLocked(worker, sp.hi-sp.lo)
		l = Lease{Lo: sp.lo, Hi: sp.lo + n}
		if sp.lo+n == sp.hi {
			q.spans = q.spans[1:]
		} else {
			q.spans[0].lo = sp.lo + n
		}
	}
	q.seq++
	l.Seq = q.seq
	l.Worker = worker
	q.outstanding[l.Seq] = l
	return l, true
}

// TryNext implements Dispatcher.
func (q *pointQueue) TryNext(worker string) (Lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.tryNextLocked(worker)
}

// Next implements Dispatcher.
func (q *pointQueue) Next(worker string) (Lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if l, ok := q.tryNextLocked(worker); ok {
			return l, true
		}
		if q.closed || q.completed == q.total {
			return Lease{}, false
		}
		// Outstanding leases may complete (ending the sweep) or be
		// requeued (bringing new work); wait for either.
		q.cond.Wait()
	}
}

// completeReporter is the optional dispatcher extension SweepRun uses
// to learn whether a Complete actually retired the lease (needed for
// idempotent remote result delivery).
type completeReporter interface {
	completeReport(l Lease, elapsed time.Duration) bool
}

// Complete implements Dispatcher.
func (q *pointQueue) Complete(l Lease, elapsed time.Duration) {
	q.completeReport(l, elapsed)
}

// completeReport is Complete, reporting whether the lease was still
// outstanding (false: duplicate upload or expired-then-reassigned).
func (q *pointQueue) completeReport(l Lease, elapsed time.Duration) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.outstanding[l.Seq]; !ok {
		return false // duplicate or expired-then-reassigned: ignore
	}
	delete(q.outstanding, l.Seq)
	q.completed += l.Points()
	if secs := elapsed.Seconds(); secs > 0 {
		pps := float64(l.Points()) / secs
		if old, ok := q.rate[l.Worker]; ok {
			q.rate[l.Worker] = (1-rateAlpha)*old + rateAlpha*pps
		} else {
			q.rate[l.Worker] = pps
		}
	}
	if q.completed == q.total {
		close(q.done)
	}
	q.cond.Broadcast()
	return true
}

// Requeue implements Dispatcher.
func (q *pointQueue) Requeue(l Lease) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.outstanding[l.Seq]; !ok {
		return // completed in the meantime: nothing to retry
	}
	delete(q.outstanding, l.Seq)
	// Front of the queue: retried points should not wait behind the
	// whole remaining grid.
	q.spans = append([]span{{l.Lo, l.Hi}}, q.spans...)
	q.cond.Broadcast()
}

// partialRequeuer is the optional dispatcher extension behind
// SweepRun.Abandon: retire an expired lease crediting the points its
// worker streamed before dying, requeueing only the unfinished rest.
type partialRequeuer interface {
	RequeuePartial(l Lease, finished []bool)
}

// RequeuePartial retires an outstanding lease whose worker died after
// streaming some of its points: finished[k] (covering point l.Lo+k)
// counts as completed, the unfinished runs go back to the front of the
// queue. A lease that already completed is ignored, like Requeue.
func (q *pointQueue) RequeuePartial(l Lease, finished []bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.outstanding[l.Seq]; !ok {
		return
	}
	delete(q.outstanding, l.Seq)
	retry, credited := missingSpans(l.Lo, finished)
	q.completed += credited
	q.spans = append(retry, q.spans...)
	if q.completed == q.total {
		close(q.done)
	}
	q.cond.Broadcast()
}

// missingSpans turns a done-mask into the maximal runs of not-done
// points (offset by base into grid coordinates) plus the count of done
// points — shared by the skip-construction and partial-requeue paths so
// their boundary arithmetic cannot drift apart.
func missingSpans(base int, done []bool) (spans []span, credited int) {
	lo := -1
	for i := 0; i <= len(done); i++ {
		missing := i < len(done) && !done[i]
		if missing && lo < 0 {
			lo = base + i
		}
		if !missing && lo >= 0 {
			spans = append(spans, span{lo, base + i})
			lo = -1
		}
		if i < len(done) && done[i] {
			credited++
		}
	}
	return spans, credited
}

// Done implements Dispatcher.
func (q *pointQueue) Done() <-chan struct{} { return q.done }

// Pending reports the number of grid points waiting in the queue (not
// leased, not completed). The coordinator's fair-share arbiter uses it
// to skip drained jobs without carving a lease.
func (q *pointQueue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, sp := range q.spans {
		n += sp.hi - sp.lo
	}
	return n
}

// PendingReporter is the optional dispatcher extension exposing how
// many points are still waiting to be leased; both built-in
// dispatchers and the filtering wrapper implement it.
type PendingReporter interface {
	Pending() int
}

// Close implements Dispatcher.
func (q *pointQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// SeedRate primes a worker's throughput EWMA (points/sec) from history
// observed outside this dispatch — the coordinator carries worker rates
// across jobs so a proven-fast worker gets large leases from its first
// ask of a new sweep.
func (q *pointQueue) SeedRate(worker string, pointsPerSec float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if pointsPerSec > 0 {
		q.rate[worker] = pointsPerSec
	}
}

// Rates snapshots the per-worker throughput EWMAs.
func (q *pointQueue) Rates() map[string]float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]float64, len(q.rate))
	for w, r := range q.rate {
		out[w] = r
	}
	return out
}

// RateKeeper is the optional dispatcher extension for carrying worker
// throughput estimates across runs; both built-in dispatchers implement
// it.
type RateKeeper interface {
	SeedRate(worker string, pointsPerSec float64)
	Rates() map[string]float64
}

// ------------------------------------------------- lease filtering --

// LeaseFilterFunc inspects a freshly carved lease before it is handed
// to a worker and returns a mask (one entry per point, index k covering
// grid point l.Lo+k) of points the caller already has results for —
// having delivered them out of band (SweepRun.DeliverPoint). A nil
// return, or an all-false mask, passes the lease through untouched.
//
// The coordinator's mid-job store pickup is the canonical filter: a
// point that landed in the content-addressed store after this job's
// submit-time prefill — streamed by a concurrent overlapping job — is
// served from the store at lease-grant time instead of being leased and
// re-simulated.
type LeaseFilterFunc func(l Lease) []bool

// filterDispatcher wraps a Dispatcher with a grant-time lease filter:
// points the filter claims are credited as completed (RequeuePartial)
// and the remaining runs re-carved, so workers only ever receive points
// that still need computing. Everything else delegates to the inner
// dispatcher.
type filterDispatcher struct {
	inner  Dispatcher
	filter LeaseFilterFunc
}

// NewFilteringDispatcher wraps inner so every lease is screened by
// filter before a worker sees it. The inner dispatcher should support
// partial requeue (both built-ins do); without it, filtered leases pass
// through unfiltered.
func NewFilteringDispatcher(inner Dispatcher, filter LeaseFilterFunc) Dispatcher {
	return &filterDispatcher{inner: inner, filter: filter}
}

// screen applies the filter to a carved lease. ok=false means the lease
// was wholly or partially absorbed: the caller should carve again.
func (f *filterDispatcher) screen(l Lease) (Lease, bool) {
	mask := f.filter(l)
	hit := false
	for _, m := range mask {
		if m {
			hit = true
			break
		}
	}
	if !hit || len(mask) != l.Points() {
		return l, true
	}
	pr, ok := f.inner.(partialRequeuer)
	if !ok {
		// No partial support: the filter's out-of-band deliveries are
		// harmless re-records of deterministic values; lease unchanged.
		return l, true
	}
	// Credit the filtered points as completed; the missing runs go back
	// to the front of the queue, so the re-carve below picks up exactly
	// the points that still need computing.
	pr.RequeuePartial(l, mask)
	return Lease{}, false
}

// Next implements Dispatcher.
func (f *filterDispatcher) Next(worker string) (Lease, bool) {
	for {
		l, ok := f.inner.Next(worker)
		if !ok {
			return l, false
		}
		if l, ok := f.screen(l); ok {
			return l, true
		}
	}
}

// TryNext implements Dispatcher.
func (f *filterDispatcher) TryNext(worker string) (Lease, bool) {
	for {
		l, ok := f.inner.TryNext(worker)
		if !ok {
			return l, false
		}
		if l, ok := f.screen(l); ok {
			return l, true
		}
	}
}

// Complete implements Dispatcher.
func (f *filterDispatcher) Complete(l Lease, elapsed time.Duration) { f.inner.Complete(l, elapsed) }

// completeReport delegates idempotent completion to the inner
// dispatcher (SweepRun.claim depends on it for remote delivery).
func (f *filterDispatcher) completeReport(l Lease, elapsed time.Duration) bool {
	if cr, ok := f.inner.(completeReporter); ok {
		return cr.completeReport(l, elapsed)
	}
	f.inner.Complete(l, elapsed)
	return true
}

// Requeue implements Dispatcher.
func (f *filterDispatcher) Requeue(l Lease) { f.inner.Requeue(l) }

// RequeuePartial delegates the streamed-tail credit path.
func (f *filterDispatcher) RequeuePartial(l Lease, finished []bool) {
	if pr, ok := f.inner.(partialRequeuer); ok {
		pr.RequeuePartial(l, finished)
		return
	}
	f.inner.Requeue(l)
}

// Done implements Dispatcher.
func (f *filterDispatcher) Done() <-chan struct{} { return f.inner.Done() }

// Pending implements PendingReporter by delegation. The filter may
// still absorb some of these points at grant time, so the count is an
// upper bound on leasable work — exactly what an arbiter deciding
// "does this job have anything left to hand out" needs.
func (f *filterDispatcher) Pending() int {
	if pr, ok := f.inner.(PendingReporter); ok {
		return pr.Pending()
	}
	return 0
}

// Close implements Dispatcher.
func (f *filterDispatcher) Close() { f.inner.Close() }

// SeedRate implements RateKeeper by delegation (no-op when the inner
// dispatcher keeps no rates).
func (f *filterDispatcher) SeedRate(worker string, pointsPerSec float64) {
	if rk, ok := f.inner.(RateKeeper); ok {
		rk.SeedRate(worker, pointsPerSec)
	}
}

// Rates implements RateKeeper by delegation.
func (f *filterDispatcher) Rates() map[string]float64 {
	if rk, ok := f.inner.(RateKeeper); ok {
		return rk.Rates()
	}
	return nil
}
