package core

import (
	"fmt"
	"time"

	"repro/internal/fire"
	"repro/internal/mri"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/volume"
)

// FMRIScenario is the full figure-2 dataflow as a discrete-event
// simulation over the testbed network — the paper's "quite complex
// configuration: up to 5 computers and an MRI-scanner have to cooperate
// simultaneously":
//
//	scanner -> front-end workstation (RT-server, Jülich)
//	        -> Cray T3E (processing, Table-1 cost model)
//	        -> RT-client workstation (2-D display)
//	        -> SGI Onyx 2 Sankt Augustin (3-D merge + render)
//	        -> Responsive Workbench Jülich (frame stream back)
//
// Raw volumes, functional results and rendered frames all travel as
// packet trains over the simulated WAN, and the T3E compute time comes
// from the calibrated cost model, so the end-to-end delay is derived
// rather than assumed (unlike the budget arithmetic in Figure2EndToEnd,
// which uses the paper's own stage constants).
type FMRIScenario struct {
	// PEs is the T3E partition size.
	PEs int
	// TR is the scanner repetition time in seconds.
	TR float64
	// Frames is the number of volumes to acquire.
	Frames int
	// NX, NY, NZ is the acquisition matrix (default 64x64x16).
	NX, NY, NZ int
	// ScannerDelay is the scan-end -> RT-server availability delay
	// (default mri.AvailabilityDelay).
	ScannerDelay float64
	// ControlOverhead models the RT protocol's control message and
	// software handling time per hop (the dominant share of the
	// paper's 1.1 s transfer budget; default 0.35 s per hop pair).
	ControlOverhead float64
	// DisplayTime is the client-side display cost (default 0.6 s).
	DisplayTime float64
}

// FMRIScenarioResult reports the simulated dataflow timing.
type FMRIScenarioResult struct {
	Frames int
	// MeanGUIDelay is scan-end -> 2-D display, the paper's "< 5 s".
	MeanGUIDelay float64
	MaxGUIDelay  float64
	// MeanVRDelay is scan-end -> rendered frame back at the Jülich
	// workbench (the 3-D path through the Onyx 2).
	MeanVRDelay float64
	// ComputeSeconds is the modeled per-volume T3E time.
	ComputeSeconds float64
	// WireSeconds is the per-volume total network transfer time
	// (raw volume + functional maps + rendered frames).
	WireSeconds float64
}

// RunFMRIScenario executes the scenario on a fresh testbed.
func RunFMRIScenario(sc FMRIScenario) (FMRIScenarioResult, error) {
	if sc.PEs < 1 || sc.Frames < 1 || sc.TR <= 0 {
		return FMRIScenarioResult{}, fmt.Errorf("core: bad fMRI scenario %+v", sc)
	}
	if sc.NX == 0 {
		sc.NX, sc.NY, sc.NZ = 64, 64, 16
	}
	if sc.ScannerDelay == 0 {
		sc.ScannerDelay = mri.AvailabilityDelay
	}
	if sc.ControlOverhead == 0 {
		sc.ControlOverhead = 0.35
	}
	if sc.DisplayTime == 0 {
		sc.DisplayTime = 0.6
	}
	tb := New(Config{})
	model := fire.DefaultT3E600()
	computeS := model.TotalTime(sc.PEs, sc.NX, sc.NY, sc.NZ)

	hosts := make(map[string]netsim.NodeID)
	for _, name := range []string{HostWSJuelich, HostT3E600, HostOnyx2, HostWS2Juelich} {
		id, err := tb.Host(name)
		if err != nil {
			return FMRIScenarioResult{}, err
		}
		hosts[name] = id
	}
	rawBytes := volume.New(sc.NX, sc.NY, sc.NZ).Bytes()
	funcBytes := rawBytes            // correlation map, same matrix
	frameBytes := 2 * 1024 * 768 * 3 // one stereo pair for the workbench

	// transferProc moves nbytes as a packet train and resumes the
	// caller when the last byte arrives.
	transfer := func(p *sim.Proc, src, dst netsim.NodeID, nbytes int) {
		const mtu = 65536 - 40
		remaining := nbytes
		done := sim.NewChan[struct{}](p.Kernel(), 0)
		for remaining > 0 {
			sz := mtu
			if remaining < sz {
				sz = remaining
			}
			remaining -= sz
			last := remaining == 0
			tb.Net.Send(&netsim.Packet{
				Src: src, Dst: dst, Bytes: sz + 40,
				OnDeliver: func(*netsim.Packet) {
					if last {
						done.TrySend(struct{}{})
					}
				},
			})
		}
		done.Recv(p)
	}

	type frameStamp struct {
		scanEnd sim.Time
		gui     sim.Time
		vr      sim.Time
	}
	stamps := make([]frameStamp, sc.Frames)
	ready := sim.NewChan[int](tb.K, 0)

	// Scanner process: a volume every TR, available ScannerDelay later.
	tb.K.Go("scanner", func(p *sim.Proc) {
		for f := 0; f < sc.Frames; f++ {
			p.Sleep(sim.Duration(sc.TR))
			stamps[f].scanEnd = p.Now()
			f := f
			p.Kernel().After(sim.Duration(sc.ScannerDelay), func() { ready.TrySend(f) })
		}
	})

	var wireTotal time.Duration
	// Analysis chain process (unpipelined, as in the paper: the next
	// frame is requested only after the previous display completed).
	tb.K.Go("chain", func(p *sim.Proc) {
		for n := 0; n < sc.Frames; n++ {
			f := ready.Recv(p)
			// Drain to the newest frame if we fell behind.
			for {
				next, ok := ready.TryRecv()
				if !ok {
					break
				}
				f = next
			}
			w0 := p.Now()
			// RT-server (Jülich ws) -> T3E: raw volume + control.
			transfer(p, hosts[HostWSJuelich], hosts[HostT3E600], rawBytes)
			p.Sleep(sim.Duration(sc.ControlOverhead))
			// T3E processing.
			p.Sleep(sim.Duration(computeS))
			// T3E -> RT-client: functional + anatomical maps.
			transfer(p, hosts[HostT3E600], hosts[HostWSJuelich], 2*funcBytes)
			p.Sleep(sim.Duration(sc.ControlOverhead))
			wireTotal += p.Now().Sub(w0) - sim.Duration(sc.ControlOverhead*2+computeS)
			// 2-D display.
			p.Sleep(sim.Duration(sc.DisplayTime))
			stamps[f].gui = p.Now()
			// 3-D path: functional data to the Onyx 2, rendered
			// stereo frame back to the Jülich workbench.
			w1 := p.Now()
			transfer(p, hosts[HostT3E600], hosts[HostOnyx2], funcBytes)
			p.Sleep(sim.Duration(0.2)) // merge + render on the Onyx 2
			transfer(p, hosts[HostOnyx2], hosts[HostWS2Juelich], frameBytes)
			wireTotal += p.Now().Sub(w1) - sim.Duration(0.2)
			stamps[f].vr = p.Now()
		}
	})
	tb.K.Run()

	var res FMRIScenarioResult
	var guiSum, vrSum float64
	for _, st := range stamps {
		if st.gui == 0 {
			continue // skipped frame
		}
		res.Frames++
		g := st.gui.Sub(st.scanEnd).Seconds()
		guiSum += g
		if g > res.MaxGUIDelay {
			res.MaxGUIDelay = g
		}
		vrSum += st.vr.Sub(st.scanEnd).Seconds()
	}
	if res.Frames == 0 {
		return res, fmt.Errorf("core: fMRI scenario displayed no frames")
	}
	res.MeanGUIDelay = guiSum / float64(res.Frames)
	res.MeanVRDelay = vrSum / float64(res.Frames)
	res.ComputeSeconds = computeS
	res.WireSeconds = wireTotal.Seconds() / float64(res.Frames)
	return res, nil
}
