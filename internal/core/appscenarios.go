package core

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"time"

	"repro/internal/atm"
	"repro/internal/climate"
	"repro/internal/cocolib"
	"repro/internal/fire"
	"repro/internal/groundwater"
	"repro/internal/machine"
	"repro/internal/meg"
	"repro/internal/mpi"
	"repro/internal/mpitrace"
	"repro/internal/mri"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/video"
	"repro/internal/viz"
)

// The section-3 application workloads as registered scenarios. These
// run on the metacomputing MPI with a WAN shaper set to the measured
// testbed path (~260 Mbit/s, ~0.55 ms one-way), or on private
// simulation kernels — they never touch the engine-provided testbed, so
// they are safe in shared-testbed runs by construction.

// testbedShaper shapes metacomputing-MPI traffic to the measured
// T3E <-> SP2 WAN path of section 2.
func testbedShaper() mpi.LinkShaper {
	return mpi.LinkShaper{Latency: 550 * time.Microsecond, Bps: 260e6}
}

func init() {
	MustRegister(NewScenario("climate-coupled",
		"Section 3: coupled ocean/atmosphere climate model through a CSM-style flux coupler",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cfg := climate.CoupledConfig{
				OceanGrid: climate.Grid{NLat: 64, NLon: 128},
				AtmosGrid: climate.Grid{NLat: 32, NLon: 64},
				Dt:        3600,
				Steps:     48, // two simulated days
			}
			res, err := climate.RunCoupled([3]string{"cray-t3e", "ibm-sp2", "csm-coupler"},
				testbedShaper(), cfg)
			if err != nil {
				return nil, err
			}
			return &ClimateReport{Steps: cfg.Steps, DtSecs: cfg.Dt, Result: res}, nil
		}))

	MustRegister(NewScenario("groundwater-coupled",
		"Section 3: TRACE (flow, SP2) coupled to PARTRACE (particle tracking, T3E) with VAMPIR-style tracing",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			flow := groundwater.FlowConfig{
				NX: 40, NY: 16, NZ: 12, Dx: 1.0,
				K:        groundwater.LognormalK(40, 16, 12, 1e-4, 1.0, 42),
				HeadLeft: 12, HeadRight: 0, Porosity: 0.3,
			}
			cfg := groundwater.CoupledConfig{
				Flow:      flow,
				Track:     groundwater.TrackConfig{Dt: 2000, Steps: 25, Dispersion: 1e-4, Seed: 9},
				Particles: 500,
				Steps:     6,
				HeadDrift: 0.2,
			}
			rec := mpitrace.NewRecorder()
			res, err := groundwater.RunCoupledTraced([2]string{"ibm-sp2", "cray-t3e"},
				testbedShaper(), rec, cfg)
			if err != nil {
				return nil, err
			}
			summary := "  VAMPIR-style communication summary:\n" +
				mpitrace.FormatStats(rec.Stats()) + rec.Gantt(64)
			return &GroundwaterReport{Result: res, TraceSummary: summary}, nil
		}))

	MustRegister(NewScenario("fsi-cocolib",
		"Section 3: MetaCISPAR fluid-structure coupling through the COCOLIB interface",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			const fluidNodes, structNodes = 65, 41
			res, err := cocolib.RunFSI(
				[2]string{"gmd-fluid-code", "fzj-structure-code"},
				testbedShaper(), fluidNodes, structNodes, 2500, 0.001)
			if err != nil {
				return nil, err
			}
			return &FSIReport{FluidNodes: fluidNodes, StructNodes: structNodes, Result: res}, nil
		}))

	MustRegister(NewScenario("meg-music",
		"Section 3: pmusic MEG dipole localisation and the MPP+vector metacomputing speedup",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			return runMEGScenario(ctx)
		}))

	MustRegister(NewScenario("video-d1",
		"Section 3: uncompressed 270 Mbit/s D1 studio video across carrier generations",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			rep := &VideoReport{}
			frames := opts.Frames
			for _, oc := range []atm.OC{atm.OC3, atm.OC12, atm.OC48} {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				row, err := videoCarrierRun(oc, frames)
				if err != nil {
					return nil, err
				}
				rep.Rows = append(rep.Rows, row)
			}
			return rep, nil
		}))

	MustRegister(NewScenario("fire-rt-session",
		"Section 4: realtime fMRI session over the RT protocol on real loopback TCP sockets",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			return runRTSession(ctx, opts.Frames)
		}))
}

// videoCarrierRun streams D1 frames over a private two-node network on
// the given carrier (this is the examples/video experiment).
func videoCarrierRun(oc atm.OC, frames int) (VideoRow, error) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddNode("studio-gmd")
	b := n.AddNode("echtzeit-koeln")
	n.Connect(a, b, netsim.LinkConfig{
		Bps: oc.PayloadRate(), Delay: 500 * time.Microsecond, MTU: 9180,
		Framer: ATMFramer{}, QueueBytes: 32 << 20,
	})
	n.ComputeRoutes()
	res, err := video.Stream(n, a.ID, b.ID, video.StreamConfig{Frames: frames})
	if err != nil {
		return VideoRow{}, err
	}
	return VideoRow{
		Carrier: oc.String(), PayloadMbps: oc.PayloadRate() / 1e6,
		Frames: res.Frames, OnTime: res.OnTime, LostPackets: res.LostPackets,
		PeakJitter: res.PeakJitter.Seconds() * 1000,
	}, nil
}

// runMEGScenario synthesizes a measurement with one active dipole,
// scans a brain grid with MUSIC on 4 MPI ranks, and evaluates the
// metacomputing speedup model (this is the examples/meg experiment).
func runMEGScenario(ctx context.Context) (Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	arr := meg.NewHelmetArray(64, 0.12)
	truth := meg.Vec3{X: 0.025, Y: -0.01, Z: 0.05}
	q := meg.Vec3{X: 1, Y: 0, Z: 0}.Cross(truth)
	q = q.Scale(2e-8 / q.Norm())
	nt := 120
	course := make([]float64, nt)
	for i := range course {
		course[i] = math.Sin(float64(i) * 0.25)
	}
	x, err := meg.Synthesize(arr, []meg.Dipole{{Pos: truth, Moment: q, Course: course}}, nt, 2e-15, 11)
	if err != nil {
		return nil, err
	}
	us, _, err := meg.SignalSubspace(meg.Covariance(x), 1)
	if err != nil {
		return nil, err
	}
	grid := meg.BrainGrid(0.09, 0.01)

	var best meg.Vec3
	var val float64
	err = mpi.Run(4, func(c *mpi.Comm) error {
		res, err := meg.ParallelScan(c, arr, us, grid)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			best, val = res.Best()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := &MEGReport{
		GridPoints: len(grid),
		TrueMM:     [3]float64{truth.X * 1000, truth.Y * 1000, truth.Z * 1000},
		BestMM:     [3]float64{best.X * 1000, best.Y * 1000, best.Z * 1000},
		PeakVal:    val,
		ErrorMM:    best.Sub(truth).Norm() * 1000,
	}
	m := meg.DistributedModel{
		MPP:        machine.CrayT3E600(),
		Vector:     machine.CrayT90(),
		WANLatency: 550 * time.Microsecond,
		WANBps:     260e6,
		Sensors:    148, Signals: 5, GridPoints: len(grid), Iterations: 10,
	}
	for _, pes := range []int{16, 64, 256} {
		rep.Speedups = append(rep.Speedups, MEGSpeedup{PEs: pes, Speedup: m.SuperlinearSpeedup(pes)})
	}
	return rep, nil
}

// runRTSession drives the full scanner -> RT-server -> RT-client chain
// over real loopback TCP sockets with motion correction, incremental
// correlation, and a final rendered overlay.
func runRTSession(ctx context.Context, scans int) (Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if scans < 3 {
		return nil, fmt.Errorf("core: fire-rt-session needs >= 3 scans for a correlation map, got %d", scans)
	}
	// A subject with two activation sites with different hemodynamics
	// (the historical firesim measurement), signal drift, and slight
	// head motion mid-way (the historical fmri-example measurement).
	acts := []mri.Activation{
		{CX: 32, CY: 28, CZ: 8, Radius: 5, Amplitude: 0.05, HRF: mri.DefaultHRF},
		{CX: 20, CY: 40, CZ: 10, Radius: 4, Amplitude: 0.04, HRF: mri.HRF{Delay: 8, Dispersion: 1.5}},
	}
	ph := mri.NewPhantom(64, 64, 16, acts)
	motion := make([]mri.Shift, scans)
	for i := scans / 2; i < scans; i++ {
		motion[i] = mri.Shift{DX: 0.8, DY: -0.4}
	}
	sc := mri.NewScanner(ph, mri.ScanConfig{
		NX: 64, NY: 64, NZ: 16, TR: 2, NScans: scans,
		NoiseStd: 3, DriftPerScan: 0.3, Motion: motion, Seed: 7,
	})
	srv := &fire.RTServer{Scanner: sc}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	srvErr := make(chan error, 1)
	go func() {
		_, err := srv.ListenAndServe(l)
		srvErr <- err
	}()
	// fail joins a client-side error with the server's — otherwise the
	// root cause surfaces only as an EOF. The server goroutine reports
	// only after ListenAndServe returns, so wait briefly for it rather
	// than racing it with a non-blocking read.
	fail := func(err error) (Report, error) {
		select {
		case serr := <-srvErr:
			if serr != nil {
				return nil, fmt.Errorf("%w (RT-server: %v)", err, serr)
			}
		case <-time.After(500 * time.Millisecond):
		}
		return nil, err
	}

	client, err := fire.DialRT(l.Addr().String())
	if err != nil {
		return fail(err)
	}
	defer client.Close()

	corr := fire.NewCorrelator(sc.Reference(0), 64, 64, 16)
	rep := &RTSessionReport{}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		msg, err := client.NextImage()
		if err != nil {
			return fail(err)
		}
		if msg.Type == fire.MsgDone {
			break
		}
		// 3-D movement correction against the anatomy.
		fixed, shift, err := fire.MotionCorrect(ph.Anatomy, msg.Image, fire.MotionOptions{})
		if err != nil {
			return nil, err
		}
		norm := math.Sqrt(shift[0]*shift[0] + shift[1]*shift[1] + shift[2]*shift[2])
		if norm > rep.MaxShiftVoxels {
			rep.MaxShiftVoxels = norm
		}
		if err := corr.Add(fixed); err != nil {
			return nil, err
		}
		rep.Scans++
	}
	m, err := corr.Map()
	if err != nil {
		return nil, err
	}
	const clip = 0.5
	for _, v := range m.Data {
		if float64(v) >= clip {
			rep.ActivatedVoxels++
		}
		if float64(v) > rep.PeakCorrelation {
			rep.PeakCorrelation = float64(v)
		}
	}
	img, err := viz.RenderOverlay(ph.Anatomy, m, 8, clip)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := viz.WritePNG(&buf, img); err != nil {
		return nil, err
	}
	rep.PNG = buf.Bytes()
	rep.PNGBytes = buf.Len()
	return rep, nil
}
