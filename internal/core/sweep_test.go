package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/atm"
)

func TestSweepPointsGridOrder(t *testing.T) {
	sw := NewSweep("test-grid", "grid order probe",
		[]Axis{
			{Name: "a", Values: []any{"x", "y"}},
			{Name: "b", Values: []any{1, 2, 3}},
		}, nil, nil)
	pts := sw.Points()
	if len(pts) != 6 {
		t.Fatalf("%d points, want 6", len(pts))
	}
	// Row-major: the last axis varies fastest.
	want := [][2]any{{"x", 1}, {"x", 2}, {"x", 3}, {"y", 1}, {"y", 2}, {"y", 3}}
	for i, pt := range pts {
		if pt.Index != i {
			t.Errorf("point %d has Index %d", i, pt.Index)
		}
		if pt.Coord(0) != want[i][0] || pt.Coord(1) != want[i][1] {
			t.Errorf("point %d = (%v, %v), want (%v, %v)",
				i, pt.Coord(0), pt.Coord(1), want[i][0], want[i][1])
		}
	}
	if len(NewSweep("test-empty", "", nil, nil, nil).Points()) != 0 {
		t.Error("axis-less sweep should have an empty grid")
	}
}

// Shard results must reassemble in grid order even when completion
// order is reversed (early points slower than late ones).
func TestSweepMergesInGridOrderNotCompletionOrder(t *testing.T) {
	vals := make([]any, 8)
	for i := range vals {
		vals[i] = i
	}
	sw := NewSweep("test-order", "completion order shuffler",
		[]Axis{{Name: "i", Values: vals}},
		func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) {
			// Earlier points sleep longer, so with one point per shard
			// the last point finishes first.
			time.Sleep(time.Duration(len(vals)-pt.Index) * 2 * time.Millisecond)
			return pt.Coord(0).(int) * 10, nil
		},
		func(opts Options, results []any) (Report, error) {
			for i, r := range results {
				if r.(int) != i*10 {
					return nil, fmt.Errorf("result %d = %v, want %d (completion order leaked)", i, r, i*10)
				}
			}
			return &FutureWorkReport{}, nil
		})
	if _, err := sw.Run(context.Background(), nil, NewOptions(WithShards(8))); err != nil {
		t.Fatal(err)
	}
}

// The acceptance bar of the sharding refactor: sweeping scenarios
// produce byte-identical Text and JSON whatever the shard count.
func TestSweepReportsByteIdenticalAcrossShardCounts(t *testing.T) {
	for _, name := range []string{"figure1-throughput", "backbone-aggregate", "mixed-traffic", "fmri-pe-sweep"} {
		t.Run(name, func(t *testing.T) {
			sequential, err := Run(context.Background(), name, WithShards(1), WithFrames(10))
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := Run(context.Background(), name, WithShards(4), WithFrames(10))
			if err != nil {
				t.Fatal(err)
			}
			if sequential.Text() != sharded.Text() {
				t.Errorf("Text differs between 1 and 4 shards:\n--- sequential\n%s--- sharded\n%s",
					sequential.Text(), sharded.Text())
			}
			sj, err := sequential.JSON()
			if err != nil {
				t.Fatal(err)
			}
			hj, err := sharded.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sj, hj) {
				t.Errorf("JSON differs between 1 and 4 shards:\n%s\nvs\n%s", sj, hj)
			}
		})
	}
}

func TestSweepReportSurfacesShardTimings(t *testing.T) {
	rep, err := Run(context.Background(), "backbone-aggregate", WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := rep.(ShardedReport)
	if !ok {
		t.Fatalf("sweep report %T does not expose shard timings", rep)
	}
	timings := sr.ShardTimings()
	if len(timings) != 2 {
		t.Fatalf("%d shard timings, want 2", len(timings))
	}
	points := 0
	for i, st := range timings {
		if st.Shard != i {
			t.Errorf("timing %d labelled shard %d", i, st.Shard)
		}
		if st.ElapsedNS <= 0 {
			t.Errorf("shard %d elapsed %d ns", i, st.ElapsedNS)
		}
		if st.Elapsed() != time.Duration(st.ElapsedNS) {
			t.Errorf("Elapsed() disagrees with ElapsedNS")
		}
		points += st.Points
	}
	if points != 2 {
		t.Errorf("shards covered %d points, want 2", points)
	}
}

// In shared-testbed mode the sweep must keep using the one testbed —
// cumulative backbone accounting is the point of sharing — while still
// producing the identical report.
func TestSweepSharedTestbedAccumulates(t *testing.T) {
	solo, err := Run(context.Background(), "figure1-throughput", WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	tb := New(Config{})
	shared, err := Run(context.Background(), "figure1-throughput", WithShards(2), WithTestbed(tb))
	if err != nil {
		t.Fatal(err)
	}
	if tb.BackboneWireBytes() == 0 {
		t.Error("shared testbed carried no sweep traffic")
	}
	if solo.Text() != shared.Text() {
		t.Errorf("shared-testbed sweep changed the report:\n%s\nvs\n%s", solo.Text(), shared.Text())
	}
}

// Calling a sweep's Run directly (not through the engine) with only
// WithTestbed set must still hand every shard the shared testbed — the
// engine happens to pass it as the tb argument too, but direct callers
// may not.
func TestSweepDirectRunUsesOptionTestbed(t *testing.T) {
	s, ok := Lookup("figure1-throughput")
	if !ok {
		t.Fatal("figure1-throughput not registered")
	}
	tb := New(Config{})
	rep, err := s.Run(context.Background(), nil, NewOptions(WithTestbed(tb), WithShards(2)))
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Text() == "" {
		t.Fatal("no report")
	}
	if tb.BackboneWireBytes() == 0 {
		t.Error("direct sweep run ignored the WithTestbed testbed")
	}
}

// A caller-built testbed passed positionally fixes the configuration of
// every shard testbed, even when sharding rebuilds them.
func TestSweepShardsInheritCallerTestbedConfig(t *testing.T) {
	var wans [2]atm.OC
	sw := NewSweep("test-cfg-sweep", "records each shard's backbone generation",
		[]Axis{{Name: "i", Values: []any{0, 1}}},
		func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) {
			wans[pt.Index] = tb.Cfg.WAN
			return nil, nil
		},
		func(opts Options, results []any) (Report, error) {
			return &FutureWorkReport{}, nil
		})
	tb := New(Config{WAN: atm.OC12})
	// Default opts carry OC-48; the OC-12 testbed must win on every shard.
	if _, err := sw.Run(context.Background(), tb, NewOptions(WithShards(2))); err != nil {
		t.Fatal(err)
	}
	for i, wan := range wans {
		if wan != atm.OC12 {
			t.Errorf("shard of point %d ran on %v, want the caller testbed's OC12", i, wan)
		}
	}
}

// A WithWorkers bound caps the default shard fan-out, so -workers keeps
// limiting total engine concurrency (an explicit WithShards may still
// exceed it).
func TestSweepDefaultShardsRespectWorkersBound(t *testing.T) {
	rep, err := Run(context.Background(), "backbone-aggregate", WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep.(ShardedReport).ShardTimings()); n != 1 {
		t.Errorf("default sharding used %d shards under WithWorkers(1), want 1", n)
	}
	rep, err = Run(context.Background(), "backbone-aggregate", WithWorkers(1), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep.(ShardedReport).ShardTimings()); n != 2 {
		t.Errorf("explicit WithShards(2) used %d shards, want 2", n)
	}
}

// registerBlockingSweep registers a sweep whose points park until the
// run context is cancelled, and returns a cleanup plus a counter of
// points that started.
func registerBlockingSweep(t *testing.T, name string, points int) *atomic.Int32 {
	t.Helper()
	vals := make([]any, points)
	for i := range vals {
		vals[i] = i
	}
	var started atomic.Int32
	MustRegister(NewSweep(name, "blocks until cancelled",
		[]Axis{{Name: "i", Values: vals}},
		func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) {
			started.Add(1)
			<-ctx.Done()
			return nil, ctx.Err()
		},
		func(opts Options, results []any) (Report, error) {
			return &FutureWorkReport{}, nil
		}))
	t.Cleanup(func() {
		registry.Lock()
		delete(registry.m, name)
		registry.Unlock()
	})
	return &started
}

// Cancelling mid-sweep must stop the shards, surface context.Canceled,
// and leave no shard goroutines behind.
func TestSweepCancellationNoLeakedGoroutines(t *testing.T) {
	started := registerBlockingSweep(t, "test-blocking-sweep", 8)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, "test-blocking-sweep", WithShards(4))
		done <- err
	}()
	// Wait until all four shards are inside a point, then cancel.
	for started.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run error = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sweep did not return after cancellation")
	}
	// Shards are joined before Run returns; give the runtime a moment
	// to retire them, then check nothing leaked.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+1 {
		t.Errorf("goroutines %d -> %d after cancelled sweep; shards leaked", before, got)
	}
}

func TestSweepPointPanicContained(t *testing.T) {
	MustRegister(NewSweep("test-panic-sweep", "panics at point 1",
		[]Axis{{Name: "i", Values: []any{0, 1, 2}}},
		func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) {
			if pt.Index == 1 {
				panic("sweep point boom")
			}
			return pt.Index, nil
		},
		func(opts Options, results []any) (Report, error) {
			return &FutureWorkReport{}, nil
		}))
	defer func() {
		registry.Lock()
		delete(registry.m, "test-panic-sweep")
		registry.Unlock()
	}()
	_, err := Run(context.Background(), "test-panic-sweep", WithShards(3))
	if err == nil || !strings.Contains(err.Error(), "point 1") || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("panicking point not reported: %v", err)
	}
	// A sibling scenario in the same RunAll keeps working.
	results, err := RunAll(context.Background(), []string{"test-panic-sweep", "table1-model"})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("panicking sweep reported no error through RunAll")
	}
	if results[1].Err != nil {
		t.Errorf("sibling scenario failed: %v", results[1].Err)
	}
}

// RunAll under shard contention: sharded sweeps and ordinary scenarios
// mixed on ONE shared testbed, raced with -race in CI. Every shard of
// every sweep contends on the shared testbed's locks while the plain
// scenarios run their transfers on it too.
func TestRunAllSharedTestbedWithShardedSweeps(t *testing.T) {
	tb := New(Config{})
	names := []string{
		"figure1-throughput", "figure2-endtoend", "mixed-traffic",
		"figure1-throughput", "figure4-workbench", "backbone-aggregate",
	}
	results, err := RunAll(context.Background(), names,
		WithTestbed(tb), WithWorkers(4), WithShards(3), WithFrames(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
		}
		if r.Report == nil {
			t.Errorf("%s: nil report", r.Name)
			continue
		}
		if sr, ok := r.Report.(ShardedReport); ok {
			if len(sr.ShardTimings()) == 0 {
				t.Errorf("%s: sweep ran with no shard timings", r.Name)
			}
		}
	}
	if tb.BackboneWireBytes() == 0 {
		t.Error("shared testbed carried no traffic")
	}
}

// Cancelling a RunAll that includes sharded sweeps must cancel the
// sweeps' in-flight shards and leave no goroutines behind (the RunAll
// side of the mid-sweep cancellation guarantee).
func TestRunAllCancellationMidSweepNoLeaks(t *testing.T) {
	started := registerBlockingSweep(t, "test-blocking-sweep-all", 4)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var results []RunResult
	var err error
	go func() {
		defer close(done)
		results, err = RunAll(ctx, []string{"test-blocking-sweep-all", "table1-model"},
			WithWorkers(2), WithShards(2))
	}()
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunAll did not return after mid-sweep cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("RunAll error = %v, want context.Canceled", err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Errorf("sweep result err = %v, want context.Canceled", results[0].Err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+1 {
		t.Errorf("goroutines %d -> %d after cancelled RunAll; sweep shards leaked", before, got)
	}
}

// PointKey is a persistence contract: the coordinator's point store
// survives restarts, so the key one process computes must match what a
// later process — same build or not — computes for the same point.
// These golden hashes pin the format; if this test fails, the key
// format changed and every persisted point store is silently orphaned
// (bump with care, and say so in the changelog).
func TestPointKeyStableAcrossProcesses(t *testing.T) {
	sw := NewSweep("keystability", "", []Axis{
		{Name: "mtu", Values: []any{1500, 9180}},
		{Name: "load", Values: []any{0.25, 0.9}},
	}, nil, nil)
	opts := Options{PEs: 4, Frames: 7}
	golden := []string{
		"eb913bee657cc5451c09cff0b9396bcbf7de57e3ca015c3afce6095b9b2c876c",
		"303ec8db45e9ab4e59100ae5eb8ea163f0350c5d7fefbf3a0347a4de8e49cad9",
		"6141611b174ca5d2cb47ed931fc36918b8002c451c4c4aeb4a7daaaca4573347",
		"11554bdd478f7bb7dbc343b647f73e8e4de6b91329616ffb8c678b39ea883615",
	}
	for i, pt := range sw.Points() {
		if got := sw.PointKey(opts, pt); got != golden[i] {
			t.Errorf("PointKey(point %d) = %s, want %s — the format is a persistence contract",
				i, got, golden[i])
		}
	}
	// Narrowed deps: fields outside the declaration must not move the
	// key (that invariance is what makes restart reuse broad), and the
	// narrowed key is itself pinned.
	sw2 := NewSweep("keystability-deps", "", []Axis{{Name: "i", Values: []any{1}}}, nil, nil).
		PointDeps(OptFrames)
	const goldenDeps = "981333c9fb2e5ef8bd03fd7b90818d666585b9b54c332c3775df79239f00930f"
	k1 := sw2.PointKey(Options{PEs: 99, Frames: 7}, sw2.Points()[0])
	k2 := sw2.PointKey(Options{PEs: 4, Frames: 7}, sw2.Points()[0])
	if k1 != k2 {
		t.Errorf("an undeclared option moved the key: %s vs %s", k1, k2)
	}
	if k1 != goldenDeps {
		t.Errorf("narrowed PointKey = %s, want %s", k1, goldenDeps)
	}
}

// The OnPoint observer sees every freshly computed point exactly once —
// from local shards, remote deliveries and streamed points alike — and
// never sees prefills.
func TestSweepRunOnPointObserver(t *testing.T) {
	sw := NewSweep("onpoint-sweep", "", []Axis{{Name: "i", Values: []any{0, 1, 2, 3, 4, 5}}},
		func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) {
			return pt.Index * 10, nil
		}, func(opts Options, results []any) (Report, error) {
			return nil, nil
		}).NoShardTestbed()
	done := []bool{true, false, false, false, false, false} // point 0 prefilled
	d := NewWorkStealingDispatcherSkipping(6, 1, done)
	run := NewSweepRun(sw, Options{}, d, 1)
	var mu sync.Mutex
	seen := map[int]int{}
	run.OnPoint = func(i int, val any) {
		mu.Lock()
		defer mu.Unlock()
		seen[i]++
		if want := i * 10; val != want {
			// Remote points carry the strings delivered below.
			if val != "streamed" && val != "completed" {
				t.Errorf("OnPoint(%d) = %v, want %d or a delivered value", i, val, want)
			}
		}
	}
	run.Prefill(0, 0)
	// Points 3 and 5 arrive remotely: 3 streamed mid-lease, 5 via a
	// completed lease; the rest run on the local shard.
	l, ok := d.TryNext("remote")
	if !ok {
		t.Fatal("no lease for the remote worker")
	}
	if l.Lo != 1 {
		t.Fatalf("first lease starts at %d, want 1 (0 is prefilled)", l.Lo)
	}
	for i := l.Lo; i < l.Hi; i++ {
		run.DeliverPoint(l, i, "streamed", "")
	}
	vals := make([]any, l.Points())
	errs := make([]string, l.Points())
	for k := range vals {
		vals[k] = "completed"
	}
	run.Deliver(l, vals, errs, time.Millisecond)
	run.RunShard(context.Background(), 0, "local", nil)
	if err := run.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen[0] != 0 {
		t.Errorf("observer saw prefilled point 0 (%d times)", seen[0])
	}
	for i := l.Lo; i < l.Hi; i++ {
		if seen[i] != 2 { // once streamed + once on lease completion
			t.Errorf("remote point %d observed %d times, want 2 (stream + completion)", i, seen[i])
		}
	}
	for i := int(l.Hi); i < 6; i++ {
		if seen[i] != 1 {
			t.Errorf("local point %d observed %d times, want 1", i, seen[i])
		}
	}
}
