package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/tcpsim"
)

// TestScenarioKernelsByteIdentity pins the PDES invariant at the
// scenario level: for every converted scenario the report — text and
// JSON — is byte-identical whether the testbed network runs on one
// kernel or is partitioned across 2 or 4 (WithKernels is execution
// policy, exactly like WithShards).
func TestScenarioKernelsByteIdentity(t *testing.T) {
	scenarios := []string{"backbone-aggregate", "mixed-traffic", "figure1-throughput"}
	for _, name := range scenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			type snapshot struct {
				text string
				json []byte
			}
			run := func(kernels int, opts ...Option) snapshot {
				rep, err := Run(context.Background(), name, append([]Option{WithKernels(kernels)}, opts...)...)
				if err != nil {
					t.Fatalf("kernels=%d: %v", kernels, err)
				}
				js, err := rep.JSON()
				if err != nil {
					t.Fatalf("kernels=%d: JSON: %v", kernels, err)
				}
				return snapshot{text: rep.Text(), json: js}
			}
			want := run(1)
			check := func(label string, kernels int, got snapshot) {
				t.Helper()
				if got.text != want.text {
					t.Errorf("%s kernels=%d: text differs:\n--- 1 kernel ---\n%s--- %d kernels ---\n%s",
						label, kernels, want.text, kernels, got.text)
				}
				if !bytes.Equal(got.json, want.json) {
					t.Errorf("%s kernels=%d: JSON differs:\n%s\nvs\n%s", label, kernels, want.json, got.json)
				}
			}
			for _, kernels := range []int{2, 4} {
				check("wan-cut", kernels, run(kernels))
				// Intra mode additionally cuts inside sites at switch
				// boundaries — per-pair horizons mix LAN and WAN
				// latencies; the reports must not notice.
				check("intra", kernels, run(kernels, WithIntra()))
			}
		})
	}
}

// TestTestbedKernelsPartitionsNetwork checks Config.Kernels actually
// partitions (the standard topology has two WAN-separated sites, so the
// effective count is 2) and that the shared-testbed facade still works
// on a partitioned network.
func TestTestbedKernelsPartitionsNetwork(t *testing.T) {
	tb := New(Config{Kernels: 4})
	if got := tb.Net.Kernels(); got != 2 {
		t.Fatalf("standard topology split into %d kernels, want 2 (one WAN link)", got)
	}
	single := New(Config{})
	if got := single.Net.Kernels(); got != 1 {
		t.Fatalf("default testbed has %d kernels, want 1", got)
	}

	res, err := tb.TCPTransfer(HostWSJuelich, HostWSGMD, 1<<20, tcpsim.Config{WindowBytes: 4 << 20})
	if err != nil {
		t.Fatalf("TCPTransfer on partitioned testbed: %v", err)
	}
	ref, err := single.TCPTransfer(HostWSJuelich, HostWSGMD, 1<<20, tcpsim.Config{WindowBytes: 4 << 20})
	if err != nil {
		t.Fatalf("TCPTransfer on single-kernel testbed: %v", err)
	}
	if res != ref {
		t.Fatalf("partitioned transfer %+v != single-kernel %+v", res, ref)
	}

	rtt1, err := single.RTT(HostT3E600, HostSP2)
	if err != nil {
		t.Fatal(err)
	}
	rtt2, err := tb.RTT(HostT3E600, HostSP2)
	if err != nil {
		t.Fatal(err)
	}
	if rtt1 != rtt2 {
		t.Fatalf("RTT %v on partitioned testbed, %v on single", rtt2, rtt1)
	}
}
