package core

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/tcpsim"
)

func TestRegistryRegistration(t *testing.T) {
	if err := Register(nil); err == nil {
		t.Error("Register(nil) accepted")
	}
	if err := Register(NewScenario("", "empty", nil)); err == nil {
		t.Error("empty-name scenario accepted")
	}
	probe := NewScenario("test-registry-probe", "probe",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			return &FutureWorkReport{}, nil
		})
	if err := Register(probe); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Duplicate names are rejected.
	if err := Register(NewScenario("test-registry-probe", "dup", nil)); err == nil {
		t.Error("duplicate name accepted")
	}
	s, ok := Lookup("test-registry-probe")
	if !ok || s.Description() != "probe" {
		t.Errorf("Lookup = %v, %v", s, ok)
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("Lookup resolved a ghost")
	}
	// Cleanup so listings in other tests see only real scenarios plus
	// whatever they register themselves.
	registry.Lock()
	delete(registry.m, "test-registry-probe")
	registry.Unlock()
}

func TestScenariosListing(t *testing.T) {
	all := Scenarios()
	if len(all) < 8 {
		t.Fatalf("only %d scenarios registered", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name() >= all[i].Name() {
			t.Errorf("listing not sorted: %q >= %q", all[i-1].Name(), all[i].Name())
		}
	}
	for _, want := range []string{
		"table1-model", "figure1-throughput", "figure2-endtoend", "figure3-overlay",
		"figure4-workbench", "section3-applications", "fmri-dataflow",
		"backbone-aggregate", "mixed-traffic", "future-work",
		"climate-coupled", "groundwater-coupled", "fsi-cocolib",
		"meg-music", "video-d1", "fire-rt-session",
	} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("scenario %q not registered", want)
		}
	}
}

func TestOptionsDefaultsAndApplication(t *testing.T) {
	def := NewOptions()
	if def.WAN != atm.OC48 || def.PEs != 256 || def.Frames != 30 || def.Flows != 2 {
		t.Errorf("defaults = %+v", def)
	}
	if def.Extensions || def.Testbed != nil || def.Workers != 0 {
		t.Errorf("unexpected non-zero defaults: %+v", def)
	}
	tb := New(Config{})
	o := NewOptions(WithWAN(atm.OC12), WithExtensions(), WithPEs(64),
		WithFrames(5), WithFlows(3), WithTestbed(tb), WithWorkers(7))
	if o.WAN != atm.OC12 || !o.Extensions || o.PEs != 64 || o.Frames != 5 ||
		o.Flows != 3 || o.Testbed != tb || o.Workers != 7 {
		t.Errorf("options not applied: %+v", o)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if _, err := Run(context.Background(), "no-such-scenario"); err == nil {
		t.Error("unknown scenario ran")
	}
	if _, err := RunAll(context.Background(), []string{"table1-model", "no-such-scenario"}); err == nil {
		t.Error("RunAll with unknown name started")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"table1-model", "future-work"} {
		rep, err := Run(ctx, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Text() == "" {
			t.Errorf("%s: empty text", name)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatalf("%s: JSON: %v", name, err)
		}
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if len(m) == 0 {
			t.Errorf("%s: empty JSON object", name)
		}
	}
	// Round-trip a concrete report through its own type.
	rep, err := Run(ctx, "table1-model")
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Table1Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	orig := rep.(*Table1Report)
	if len(back.Model) != len(orig.Model) || len(back.Paper) != len(orig.Paper) {
		t.Errorf("round trip lost rows: %d/%d vs %d/%d",
			len(back.Model), len(back.Paper), len(orig.Model), len(orig.Paper))
	}
	if back.Model[0] != orig.Model[0] {
		t.Errorf("round trip changed row: %+v vs %+v", back.Model[0], orig.Model[0])
	}
}

func TestRunAllOrderAndTiming(t *testing.T) {
	names := []string{"future-work", "table1-model"}
	results, err := RunAll(context.Background(), names, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Name != names[i] {
			t.Errorf("result %d = %q, want %q (input order)", i, r.Name, names[i])
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
		}
		if r.Report == nil {
			t.Errorf("%s: nil report", r.Name)
		}
		if r.Elapsed <= 0 {
			t.Errorf("%s: elapsed %v", r.Name, r.Elapsed)
		}
	}
}

func TestRunAllCancellationStopsInFlight(t *testing.T) {
	startedCh := make(chan struct{}, 4)
	block := NewScenario("test-block", "blocks until cancelled",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			startedCh <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		})
	MustRegister(block)
	defer func() {
		registry.Lock()
		delete(registry.m, "test-block")
		registry.Unlock()
	}()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var results []RunResult
	var err error
	go func() {
		defer close(done)
		// Two workers, four queued copies: two run, two wait.
		results, err = RunAll(ctx, []string{"test-block", "test-block", "test-block", "test-block"},
			WithWorkers(2))
	}()
	// Wait until both workers are inside a scenario, then cancel.
	<-startedCh
	<-startedCh
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunAll did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("RunAll error = %v, want context.Canceled", err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("result %d: err = %v, want context.Canceled", i, r.Err)
		}
		if r.Report != nil {
			t.Errorf("result %d: report from a cancelled scenario", i)
		}
	}
}

func TestRunOnePanicContained(t *testing.T) {
	boom := NewScenario("test-panic", "panics",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			panic("boom")
		})
	MustRegister(boom)
	defer func() {
		registry.Lock()
		delete(registry.m, "test-panic")
		registry.Unlock()
	}()
	results, err := RunAll(context.Background(), []string{"test-panic", "table1-model"})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "panicked") {
		t.Errorf("panic not contained: %v", results[0].Err)
	}
	if results[1].Err != nil {
		t.Errorf("sibling scenario failed: %v", results[1].Err)
	}
}

// TestTestbedConcurrentAccess hammers one shared testbed from many
// goroutines — co-allocation, transfers, RTT and backbone counters —
// and relies on the race detector to flag unguarded state.
func TestTestbedConcurrentAccess(t *testing.T) {
	tb := New(Config{})
	var wg sync.WaitGroup
	sessions := []string{"fmri", "climate", "meg", "video"}
	hosts := [][]string{
		{HostT3E600, HostOnyx2},
		{HostSP2},
		{HostT90, HostWSJuelich},
		{HostWSGMD},
	}
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				if err := tb.Reserve(sessions[i], hosts[i]...); err == nil {
					_ = tb.Allocations()
					tb.Release(sessions[i])
				}
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := tb.TCPTransfer(HostWSJuelich, HostWSGMD, 4<<20, tcpsim.Config{}); err != nil {
				t.Error(err)
			}
			if _, err := tb.RTT(HostT3E600, HostSP2); err != nil {
				t.Error(err)
			}
			if _, err := tb.PathMTU(HostT3E600, HostSP2); err != nil {
				t.Error(err)
			}
			_ = tb.BackboneUtilization()
			_ = tb.BackboneWireBytes()
		}(i)
	}
	wg.Wait()
	if len(tb.Allocations()) != 0 {
		t.Errorf("leaked allocations: %v", tb.Allocations())
	}
}

// TestRunAllSharedTestbed runs scenarios concurrently on ONE shared
// testbed under the race detector.
func TestRunAllSharedTestbed(t *testing.T) {
	tb := New(Config{})
	names := []string{"figure2-endtoend", "figure4-workbench", "future-work", "figure2-endtoend"}
	results, err := RunAll(context.Background(), names,
		WithTestbed(tb), WithWorkers(4), WithFrames(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
		}
	}
	// The figure-2 scenarios moved volumes over the shared backbone.
	if tb.BackboneWireBytes() == 0 {
		t.Error("shared testbed carried no traffic")
	}
}
