package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/atm"
)

// This file defines the unified scenario abstraction: every experiment
// in the repository — the paper's figures and tables as well as the
// section-3 application workloads — registers itself as a Scenario and
// runs through one engine. Adding the next workload is a one-file
// exercise: implement Run, call MustRegister from an init function.

// Report is the uniform result of a scenario run. Concrete reports are
// plain structs so JSON round-trips; Text renders the human-readable
// table the old Format* helpers produced.
type Report interface {
	// Text renders the report as the human-readable table printed by
	// cmd/gtwrun and cmd/gtwbench.
	Text() string
	// JSON marshals the underlying measurement record.
	JSON() ([]byte, error)
}

// Scenario is one runnable experiment over the testbed.
//
// Run receives the testbed chosen by the engine: a fresh one per
// scenario by default, or a single shared instance when the caller
// passed WithTestbed — one facility shared by every experiment, as the
// paper's projects shared one WAN. Sharing means common co-allocation
// and cumulative backbone accounting with transfers serialised onto
// the one kernel, not in-simulator bandwidth contention between
// scenarios. Scenarios must touch the shared testbed only through its
// concurrency-safe methods (TCPTransfer, RTT, PathMTU, Reserve,
// Release, Allocations, BackboneUtilization); scenarios that need
// exclusive control of a simulation kernel build a private testbed
// internally and ignore the argument.
type Scenario interface {
	// Name is the unique registry key (kebab-case).
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// Run executes the scenario and returns its report.
	Run(ctx context.Context, tb *Testbed, opts Options) (Report, error)
}

// Options carries the cross-scenario parameters. Build it with
// NewOptions, which starts from DefaultOptions before applying the
// functional options. Fields reach scenarios verbatim — a hand-built
// Options literal with zero PEs/Frames/Flows makes the scenarios that
// use them fail validation rather than fall back to defaults (only a
// zero WAN defaults, to OC-48, when the engine builds a testbed).
type Options struct {
	// WAN is the backbone carrier for engine-built testbeds (default
	// atm.OC48). Scenarios that sweep carrier generations by design
	// (backbone-aggregate, mixed-traffic, video-d1) ignore it.
	WAN atm.OC
	// Extensions adds the section-5 sites to engine-built testbeds.
	Extensions bool
	// PEs is the T3E partition size for the fMRI scenarios.
	PEs int
	// Frames is the number of volumes/frames/scans to acquire.
	Frames int
	// Flows is the number of concurrent flows for backbone loading.
	Flows int
	// Testbed, when non-nil, is shared by every scenario in a run
	// instead of building a fresh testbed per scenario.
	Testbed *Testbed
	// Workers bounds engine concurrency in RunAll (default GOMAXPROCS).
	Workers int
	// Shards bounds the per-sweep shard count (default GOMAXPROCS,
	// not exceeding a Workers bound, capped at the grid size).
	// Non-sweep scenarios ignore it.
	Shards int
	// Dispatcher builds the lease queue sweeps hand their grid out
	// through (default NewWorkStealingDispatcher). Dispatch policy
	// changes only wall-clock time, never report bytes.
	Dispatcher DispatcherMaker
	// Kernels > 1 runs each testbed's network as a conservative
	// parallel simulation on that many kernels (capped by the number of
	// WAN-separated sites). Like Shards and Dispatcher it is execution
	// policy: reports stay byte-identical, so it never enters point
	// keys or the wire protocol.
	Kernels int
	// Intra lets the partitioner cut inside a site at switch
	// boundaries when the WAN cut cannot reach Kernels partitions
	// (Config.Intra). Execution policy like Kernels.
	Intra bool
}

// Option mutates Options (the functional-options pattern).
type Option func(*Options)

// DefaultOptions returns the engine defaults: OC-48 backbone, 256 PEs,
// 30 frames, 2 flows.
func DefaultOptions() Options {
	return Options{WAN: atm.OC48, PEs: 256, Frames: 30, Flows: 2}
}

// NewOptions applies opts on top of DefaultOptions.
func NewOptions(opts ...Option) Options {
	o := DefaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithWAN selects the backbone carrier generation.
func WithWAN(oc atm.OC) Option { return func(o *Options) { o.WAN = oc } }

// WithExtensions includes the section-5 extension sites.
func WithExtensions() Option { return func(o *Options) { o.Extensions = true } }

// WithPEs sets the T3E partition size.
func WithPEs(n int) Option { return func(o *Options) { o.PEs = n } }

// WithFrames sets the number of acquired volumes/frames.
func WithFrames(n int) Option { return func(o *Options) { o.Frames = n } }

// WithFlows sets the number of concurrent backbone flows.
func WithFlows(n int) Option { return func(o *Options) { o.Flows = n } }

// WithTestbed runs every scenario on the given shared testbed instead
// of a fresh one per scenario: co-allocation is shared, backbone
// counters accumulate across scenarios, and transfers serialise onto
// the one simulation kernel. The testbed's own Config wins: WithWAN
// and WithExtensions do not affect a testbed supplied here.
func WithTestbed(tb *Testbed) Option { return func(o *Options) { o.Testbed = tb } }

// WithWorkers bounds the RunAll worker pool.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithShards bounds how many shards a sweep scenario may split its grid
// across (0 = GOMAXPROCS, not exceeding a WithWorkers bound). Sharding
// changes only wall-clock time: shard results merge in grid order, so
// reports stay byte-identical.
func WithShards(n int) Option { return func(o *Options) { o.Shards = n } }

// WithDispatcher selects how sweeps lease their grid points to shards
// (and, through internal/dist, to remote workers). The default is
// NewWorkStealingDispatcher; NewContiguousDispatcher restores PR 3's
// static batch split. Dispatch policy changes only wall-clock time:
// results always merge in grid order, so reports stay byte-identical.
func WithDispatcher(maker DispatcherMaker) Option {
	return func(o *Options) { o.Dispatcher = maker }
}

// WithKernels partitions every engine-built testbed's network at
// WAN-link boundaries and runs it as a conservative parallel simulation
// on up to n kernels (netsim.Partition; capped by the number of
// WAN-separated sites). Like WithShards it changes only wall-clock
// time: reports are byte-identical at any kernel count.
func WithKernels(n int) Option { return func(o *Options) { o.Kernels = n } }

// WithIntra lets WithKernels partitioning additionally cut inside a
// site at switch boundaries when the WAN cut alone cannot reach the
// requested kernel count — per-pair lookahead keeps the short
// switch-port bounds from throttling the WAN pairs. Like WithKernels it
// changes only wall-clock time: reports are byte-identical either way.
func WithIntra() Option { return func(o *Options) { o.Intra = true } }

// funcScenario adapts a function to the Scenario interface.
type funcScenario struct {
	name, desc string
	run        func(ctx context.Context, tb *Testbed, opts Options) (Report, error)
}

func (s *funcScenario) Name() string        { return s.name }
func (s *funcScenario) Description() string { return s.desc }
func (s *funcScenario) Run(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
	return s.run(ctx, tb, opts)
}

// NewScenario builds a Scenario from a run function.
func NewScenario(name, description string,
	run func(ctx context.Context, tb *Testbed, opts Options) (Report, error)) Scenario {
	return &funcScenario{name: name, desc: description, run: run}
}

// ---------------------------------------------------------- registry --

var registry = struct {
	sync.Mutex
	m     map[string]Scenario
	epoch uint64
}{m: make(map[string]Scenario)}

// Register adds a scenario to the package registry. It rejects empty
// and duplicate names.
func Register(s Scenario) error {
	if s == nil {
		return fmt.Errorf("core: Register(nil)")
	}
	name := s.Name()
	if name == "" {
		return fmt.Errorf("core: scenario with empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		return fmt.Errorf("core: scenario %q already registered", name)
	}
	registry.m[name] = s
	registry.epoch++
	return nil
}

// ScenarioEpoch reports a counter that advances on every Register. A
// cache keyed by (Config, epoch) — the dist worker's cross-job testbed
// cache — is invalidated when the scenario set changes, since a newly
// registered scenario may mutate shared testbed state in ways the
// cached instance has not seen.
func ScenarioEpoch() uint64 {
	registry.Lock()
	defer registry.Unlock()
	return registry.epoch
}

// MustRegister is Register for init functions; it panics on error.
func MustRegister(s Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup resolves a registered scenario by name.
func Lookup(name string) (Scenario, bool) {
	registry.Lock()
	defer registry.Unlock()
	s, ok := registry.m[name]
	return s, ok
}

// Scenarios lists every registered scenario sorted by name.
func Scenarios() []Scenario {
	registry.Lock()
	defer registry.Unlock()
	out := make([]Scenario, 0, len(registry.m))
	for _, s := range registry.m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// ------------------------------------------------------------ engine --

// RunResult is one scenario outcome from RunAll.
type RunResult struct {
	Name    string
	Report  Report
	Err     error
	Elapsed time.Duration
}

// Run executes one registered scenario: resolve it, build its testbed
// (or take the shared one from WithTestbed), run, report.
func Run(ctx context.Context, name string, opts ...Option) (Report, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown scenario %q", name)
	}
	res := runOne(ctx, s, NewOptions(opts...))
	return res.Report, res.Err
}

// RunWith is Run with a fully built Options value — the entry point for
// callers (the internal/dist coordinator) that carry Options across a
// wire instead of composing functional options.
func RunWith(ctx context.Context, name string, o Options) (Report, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown scenario %q", name)
	}
	res := runOne(ctx, s, o)
	return res.Report, res.Err
}

// RunAll executes the named scenarios (all registered ones when names
// is empty) on a worker pool. Scenarios run concurrently — each on a
// fresh testbed, or all contending on one shared testbed when
// WithTestbed is given. Results are returned in input order with
// per-scenario timing; a scenario failure lands in its RunResult.Err
// without stopping the others. When ctx is cancelled, in-flight
// scenarios are cancelled through their context, queued scenarios are
// not started, and RunAll returns ctx's error.
func RunAll(ctx context.Context, names []string, opts ...Option) ([]RunResult, error) {
	o := NewOptions(opts...)
	if len(names) == 0 {
		for _, s := range Scenarios() {
			names = append(names, s.Name())
		}
	}
	scns := make([]Scenario, len(names))
	for i, name := range names {
		s, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("core: unknown scenario %q", name)
		}
		scns[i] = s
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scns) {
		workers = len(scns)
	}
	results := make([]RunResult, len(scns))
	var started = make([]bool, len(scns))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(ctx, scns[i], o)
			}
		}()
	}
feed:
	for i := range scns {
		select {
		case idx <- i:
			started[i] = true
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for i, ok := range started {
		if !ok {
			results[i] = RunResult{Name: scns[i].Name(), Err: ctx.Err()}
		}
	}
	// Report the context error only if it actually cost results: a
	// deadline that fires after the last scenario completed is not a
	// failed run, and an unrelated scenario failure is not a timeout.
	if err := ctx.Err(); err != nil {
		for _, r := range results {
			if errors.Is(r.Err, err) {
				return results, err
			}
		}
	}
	return results, nil
}

// runOne executes a single scenario with panic containment and timing.
// The testbed decision (fresh, shared, or shard-built) lives in the
// scenario's Plan, not here.
func runOne(ctx context.Context, s Scenario, o Options) (res RunResult) {
	res.Name = s.Name()
	//gtwvet:ignore determinism Elapsed is engine wall-clock telemetry; report formatting and hashing exclude it from report bytes
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("core: scenario %q panicked: %v", s.Name(), r)
		}
	}()
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	res.Report, res.Err = PlanFor(s).Run(ctx, o)
	return res
}
