package core

import (
	"context"
	"encoding/json"
	"fmt"
)

// This file makes the grid point the universal unit of work: every
// registered scenario — sweep or not — resolves to a Plan, the
// point-based execution view the dispatcher, the shard executor and the
// distributed run service all consume. A Sweep is its own plan; any
// other scenario becomes a one-point sweep whose single point executes
// Scenario.Run on the shard's testbed and whose wire form is the
// report's JSON and rendered text. The layers downstream of PlanFor
// never ask "is this a sweep?" again: a one-shot coupled application
// travels the same lease queue, point store and worker protocol as a
// thousand-point parameter sweep, exactly as the paper's testbed ran
// metacomputing sweeps and one-shot applications over one
// infrastructure.

// PointRunner is the point-based execution contract every scenario
// reduces to: enumerate a grid, evaluate one point at a time, merge the
// results in grid order, and round-trip point results through a wire
// codec. *Sweep implements it; PlanFor wraps everything else.
type PointRunner interface {
	// Points enumerates the grid in row-major order.
	Points() []Point
	// EvalPoint evaluates the grid point at index i on tb.
	EvalPoint(ctx context.Context, tb *Testbed, opts Options, i int) (any, error)
	// EncodePoint marshals one point result for the wire.
	EncodePoint(v any) ([]byte, error)
	// DecodePoint unmarshals one wire point into the value MergeFunc
	// expects.
	DecodePoint(b []byte) (any, error)
	// PointKey returns the point's content address (see Sweep.PointKey).
	PointKey(opts Options, pt Point) string
}

var _ PointRunner = (*Sweep)(nil)

// Plan is a scenario resolved to its executable form. The Sweep it
// exposes is the scenario itself when the scenario is a sweep, or a
// synthesized one-point sweep wrapping Scenario.Run otherwise; either
// way the grid point is the unit the dispatcher leases, the workers
// evaluate and the point store caches.
type Plan struct {
	scenario Scenario
	sweep    *Sweep
	wrapped  bool
}

// PlanFor resolves a registered (or unregistered) scenario to its
// execution plan. Plans are cheap to build; callers construct one per
// run or per lease rather than caching them.
func PlanFor(s Scenario) *Plan {
	if sw, ok := s.(*Sweep); ok {
		return &Plan{scenario: s, sweep: sw}
	}
	return &Plan{scenario: s, sweep: wrapScenario(s), wrapped: true}
}

// Scenario returns the scenario the plan was built from.
func (p *Plan) Scenario() Scenario { return p.scenario }

// Sweep returns the plan's executable grid: the scenario itself for
// sweeps, the synthesized one-point wrapper otherwise.
func (p *Plan) Sweep() *Sweep { return p.sweep }

// Wrapped reports whether the plan synthesized a one-point sweep around
// a non-sweep scenario.
func (p *Plan) Wrapped() bool { return p.wrapped }

// Distributable reports whether the plan's points can travel to remote
// workers. Wrapped scenarios always can (their wire form is the
// report's JSON and text); native sweeps need a WirePoint declaration.
func (p *Plan) Distributable() bool { return p.sweep.Distributable() }

// Run executes the plan in-process: native sweeps go through the
// sharded sweep engine, wrapped scenarios run directly on an
// engine-built (or shared) testbed — the single place that knows the
// difference, so the engine, the coordinator and the CLI don't.
func (p *Plan) Run(ctx context.Context, o Options) (Report, error) {
	if !p.wrapped {
		return p.sweep.Run(ctx, nil, o)
	}
	tb := o.Testbed
	if tb == nil {
		tb = New(Config{WAN: o.WAN, Extensions: o.Extensions, Kernels: o.Kernels, Intra: o.Intra})
	}
	defer tb.flushPDES()
	return p.scenario.Run(ctx, tb, o)
}

// WireReport is a scenario report reconstructed from its wire form: the
// marshalled JSON and rendered text of the concrete report the point
// evaluation produced. It is what a wrapped scenario's point decodes
// into on the coordinator, and what keeps a remotely executed non-sweep
// scenario byte-identical to the local run — the bytes crossed the wire
// verbatim instead of being re-derived.
type WireReport struct {
	R json.RawMessage `json:"report"`
	T string          `json:"text"`
}

// Text implements Report.
func (r WireReport) Text() string { return r.T }

// JSON implements Report.
func (r WireReport) JSON() ([]byte, error) { return r.R, nil }

// wrapScenario synthesizes the one-point sweep around a non-sweep
// scenario: one grid point that runs the scenario on the shard's
// testbed, a merge that hands the single report through, and a wire
// codec that carries the report's JSON and text.
func wrapScenario(s Scenario) *Sweep {
	sw := NewSweep(s.Name(), s.Description(),
		[]Axis{{Name: "run", Values: []any{s.Name()}}},
		func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) {
			return s.Run(ctx, tb, opts)
		},
		func(opts Options, results []any) (Report, error) {
			rep, ok := results[0].(Report)
			if !ok {
				return nil, fmt.Errorf("core: scenario %q point produced %T, want a Report", s.Name(), results[0])
			}
			return rep, nil
		})
	sw.encode = encodeReportPoint
	sw.decode = func(b []byte) (any, error) {
		var r WireReport
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, fmt.Errorf("core: scenario %q: decoding report point: %w", s.Name(), err)
		}
		return r, nil
	}
	return sw
}

// encodeReportPoint marshals a wrapped scenario's point result — a live
// Report from a fresh evaluation, or an already-wire-shaped WireReport
// served from the point store — into the wire form.
func encodeReportPoint(v any) ([]byte, error) {
	switch r := v.(type) {
	case WireReport:
		return json.Marshal(r)
	case Report:
		j, err := r.JSON()
		if err != nil {
			return nil, err
		}
		return json.Marshal(WireReport{R: j, T: r.Text()})
	}
	return nil, fmt.Errorf("core: report point is %T, want a Report", v)
}
