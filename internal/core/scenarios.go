package core

import (
	"context"

	"repro/internal/atm"
	"repro/internal/fire"
)

// The paper's tables and figures as registered scenarios. Every entry
// here used to be a one-shot FigureN* function with its own result type
// and Format* helper; they now share the Scenario/Report contract and
// run through Run/RunAll.

func init() {
	MustRegister(NewScenario("table1-model",
		"Table 1: FIRE module times on the modeled T3E-600 vs. the paper",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return &Table1Report{
				Model: fire.DefaultT3E600().ModelTable1(),
				Paper: fire.PaperTable1,
			}, nil
		}))

	MustRegister(NewSweep("figure1-throughput",
		"Section 2: TCP path throughput across the testbed (Figure 1)",
		[]Axis{{Name: "probe", Values: f1probeValues()}},
		func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) {
			return figure1Probe(tb, pt.Coord(0).(f1probe))
		},
		func(opts Options, results []any) (Report, error) {
			rows := make([]Figure1Row, 0, len(results)+2)
			for _, r := range results {
				rows = append(rows, r.(Figure1Row))
			}
			return &Figure1Report{Rows: append(rows, figure1AnalyticRows()...)}, nil
		}).WirePoint(Figure1Row{}).PointDeps(OptWAN, OptExtensions))

	MustRegister(NewScenario("figure2-endtoend",
		"Section 4: realtime-fMRI end-to-end latency budget (Figure 2)",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			r, err := figure2EndToEndOn(ctx, tb, opts.PEs, opts.Frames)
			if err != nil {
				return nil, err
			}
			return &Figure2Report{Figure2Result: r}, nil
		}))

	MustRegister(NewScenario("figure3-overlay",
		"Section 4: FIRE 2-D GUI overlay and ROI time course (Figure 3)",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := Figure3Overlay()
			if err != nil {
				return nil, err
			}
			return &Figure3Report{Figure3Result: r}, nil
		}))

	MustRegister(NewScenario("figure4-workbench",
		"Section 4: 3-D visualization and Responsive Workbench streaming (Figure 4)",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			r, err := figure4WorkbenchOn(ctx, tb)
			if err != nil {
				return nil, err
			}
			return &Figure4Report{Figure4Result: r}, nil
		}))

	MustRegister(NewScenario("section3-applications",
		"Section 3: every application's WAN requirement vs. the testbed",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			rows, err := section3ApplicationsOn(ctx, tb)
			if err != nil {
				return nil, err
			}
			return &Section3Report{Rows: rows}, nil
		}))

	MustRegister(NewScenario("fmri-dataflow",
		"Section 4: fully derived five-computer fMRI dataflow (DES over the testbed)",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// The dataflow drives its own simulation kernel, so it
			// always builds a private testbed.
			sc := FMRIScenario{PEs: opts.PEs, TR: 4.0, Frames: opts.Frames}
			r, err := RunFMRIScenario(sc)
			if err != nil {
				return nil, err
			}
			return &FMRIDataflowReport{Scenario: sc, Result: r}, nil
		}))

	// The upgrade-motivation sweeps drive the kernel directly
	// (tcpsim.Start / video.Stream on the raw network): each grid
	// point builds its own private testbed for its carrier generation,
	// so the shards are told not to construct one (NoShardTestbed).
	MustRegister(NewSweep("backbone-aggregate",
		"Section 2: aggregate backbone capacity under concurrent 622-attached flows",
		[]Axis{{Name: "wan", Values: []any{atm.OC12, atm.OC48}}},
		func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) {
			return backboneAggregate(pt.Coord(0).(atm.OC), opts.Flows, opts.Kernels, opts.Intra)
		},
		func(opts Options, results []any) (Report, error) {
			rep := &UpgradeReport{}
			for _, r := range results {
				rep.Aggregate = append(rep.Aggregate, r.(AggregateRow))
			}
			return rep, nil
		}).NoShardTestbed().WirePoint(AggregateRow{}).PointDeps(OptFlows))

	MustRegister(NewSweep("mixed-traffic",
		"Section 2: 270 Mbit/s D1 video sharing the backbone with bulk TCP",
		[]Axis{{Name: "wan", Values: []any{atm.OC12, atm.OC48}}},
		func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) {
			return mixedTraffic(pt.Coord(0).(atm.OC), opts.Kernels, opts.Intra)
		},
		func(opts Options, results []any) (Report, error) {
			rep := &UpgradeReport{}
			for _, r := range results {
				rep.Mixed = append(rep.Mixed, r.(MixedTrafficResult))
			}
			return rep, nil
		}).NoShardTestbed().WirePoint(MixedTrafficResult{}).PointDeps())

	// The fMRI dataflow as a partition-size sweep: one five-computer
	// DES (its own kernel, network and testbed) per PE count, sharded
	// across cores, merged in grid order.
	MustRegister(NewSweep("fmri-pe-sweep",
		"Section 4: fMRI dataflow DES swept over T3E partition sizes",
		[]Axis{{Name: "pes", Values: []any{16, 64, 256}}},
		func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) {
			sc := FMRIScenario{PEs: pt.Coord(0).(int), TR: 4.0, Frames: opts.Frames}
			res, err := RunFMRIScenario(sc)
			if err != nil {
				return nil, err
			}
			return FMRIDataflowReport{Scenario: sc, Result: res}, nil
		},
		func(opts Options, results []any) (Report, error) {
			rep := &FMRISweepReport{}
			for _, r := range results {
				rep.Rows = append(rep.Rows, r.(FMRIDataflowReport))
			}
			return rep, nil
		}).NoShardTestbed().WirePoint(FMRIDataflowReport{}).PointDeps(OptFrames))

	MustRegister(NewScenario("future-work",
		"Sections 1+4 outlook: B-WiN saturation and multi-echo feasibility",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := FutureWorkAnalysis()
			if err != nil {
				return nil, err
			}
			return &FutureWorkReport{FutureWorkResult: r}, nil
		}))
}
