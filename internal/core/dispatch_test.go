package core

import (
	"sync"
	"testing"
	"time"
)

// Every grid point must be leased exactly once when workers drain the
// queue concurrently, whatever the interleaving.
func TestWorkStealingLeasesCoverGridExactlyOnce(t *testing.T) {
	const points, workers = 97, 5
	d := NewWorkStealingDispatcher(points, workers)
	var mu sync.Mutex
	seen := make([]int, points)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for {
				l, ok := d.Next(name)
				if !ok {
					return
				}
				mu.Lock()
				for i := l.Lo; i < l.Hi; i++ {
					seen[i]++
				}
				mu.Unlock()
				d.Complete(l, time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	for i, n := range seen {
		if n != 1 {
			t.Errorf("point %d leased %d times, want exactly once", i, n)
		}
	}
	select {
	case <-d.Done():
	default:
		t.Error("Done not closed after all points completed")
	}
}

// A requeued lease's points must come back out of the queue (the
// dead-worker path), and completing the stale lease afterwards must be
// ignored.
func TestRequeueRevivesPointsAndStaleCompleteIsIgnored(t *testing.T) {
	d := NewWorkStealingDispatcher(4, 1)
	l1, ok := d.TryNext("w1")
	if !ok {
		t.Fatal("no first lease")
	}
	d.Requeue(l1)
	// The same points come back under a new lease seq.
	l2, ok := d.TryNext("w2")
	if !ok {
		t.Fatal("requeued points not available")
	}
	if l2.Lo != l1.Lo {
		t.Errorf("requeued lease starts at %d, want the retried point %d first", l2.Lo, l1.Lo)
	}
	if l2.Seq == l1.Seq {
		t.Error("requeued lease reused the stale seq")
	}
	// The dead worker's late upload: completing the stale lease must
	// not count points twice.
	q := d.(interface {
		completeReport(Lease, time.Duration) bool
	})
	if q.completeReport(l1, time.Millisecond) {
		t.Error("stale lease completed; duplicate uploads would double-count")
	}
	if !q.completeReport(l2, time.Millisecond) {
		t.Error("live lease refused")
	}
}

// Contiguous mode must reproduce PR 3's static batch split: worker s's
// batch is [s*n/shards, (s+1)*n/shards).
func TestContiguousDispatcherPreSplitsBatches(t *testing.T) {
	const points, workers = 10, 3
	d := NewContiguousDispatcher(points, workers)
	for s := 0; s < workers; s++ {
		l, ok := d.TryNext("w")
		if !ok {
			t.Fatalf("batch %d missing", s)
		}
		wantLo, wantHi := s*points/workers, (s+1)*points/workers
		if l.Lo != wantLo || l.Hi != wantHi {
			t.Errorf("batch %d = [%d,%d), want [%d,%d)", s, l.Lo, l.Hi, wantLo, wantHi)
		}
		d.Complete(l, time.Millisecond)
	}
	if _, ok := d.TryNext("w"); ok {
		t.Error("extra batch after the pre-split was drained")
	}
}

// A worker with a faster throughput EWMA must get a larger lease than a
// slower one — the WANify-style steering.
func TestLeaseSizeFollowsThroughputEWMA(t *testing.T) {
	d := NewWorkStealingDispatcher(64, 2)
	rk := d.(RateKeeper)
	rk.SeedRate("fast", 1000)
	rk.SeedRate("slow", 10)
	lf, ok := d.TryNext("fast")
	if !ok {
		t.Fatal("no lease for fast worker")
	}
	ls, ok := d.TryNext("slow")
	if !ok {
		t.Fatal("no lease for slow worker")
	}
	if lf.Points() <= ls.Points() {
		t.Errorf("fast worker leased %d points, slow %d; EWMA steering should favor the fast one",
			lf.Points(), ls.Points())
	}
}

// Close must unblock workers parked in Next (the cancellation path).
func TestCloseUnblocksNext(t *testing.T) {
	d := NewWorkStealingDispatcher(1, 2)
	l, _ := d.TryNext("holder") // drain the only point, don't complete it
	_ = l
	unblocked := make(chan bool, 1)
	go func() {
		_, ok := d.Next("waiter")
		unblocked <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	d.Close()
	select {
	case ok := <-unblocked:
		if ok {
			t.Error("Next returned a lease from a closed dispatcher")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next still blocked after Close")
	}
}

// Rates must survive a run so the coordinator can seed the next job's
// dispatcher with what it learned.
func TestRatesSnapshotAfterCompletes(t *testing.T) {
	d := NewWorkStealingDispatcher(8, 2)
	for {
		l, ok := d.TryNext("w")
		if !ok {
			break
		}
		d.Complete(l, 100*time.Millisecond)
	}
	rates := d.(RateKeeper).Rates()
	if rates["w"] <= 0 {
		t.Errorf("worker rate = %v, want a positive points/sec EWMA", rates["w"])
	}
}

// The filtering dispatcher: points the filter claims at grant time are
// credited as completed and never reach a worker; the worker receives
// exactly the runs that still need computing, and the dispatcher drains
// to Done.
func TestFilteringDispatcherSkipsClaimedPoints(t *testing.T) {
	inner := NewWorkStealingDispatcher(10, 1)
	// The filter claims points 2, 3 and 7 the first time a lease covers
	// them — the shape of results landing in the point store mid-job.
	claimed := map[int]bool{2: true, 3: true, 7: true}
	var claimedSeen []int
	fd := NewFilteringDispatcher(inner, func(l Lease) []bool {
		var mask []bool
		hit := false
		for i := l.Lo; i < l.Hi; i++ {
			m := claimed[i]
			if m {
				hit = true
				claimedSeen = append(claimedSeen, i)
				delete(claimed, i)
			}
			mask = append(mask, m)
		}
		if !hit {
			return nil
		}
		return mask
	})
	var leased []int
	for {
		l, ok := fd.TryNext("w")
		if !ok {
			break
		}
		for i := l.Lo; i < l.Hi; i++ {
			leased = append(leased, i)
		}
		fd.Complete(l, time.Millisecond)
	}
	select {
	case <-fd.Done():
	default:
		t.Fatal("dispatcher not drained after all leases completed")
	}
	if len(claimedSeen) != 3 {
		t.Fatalf("filter claimed %v, want all of 2,3,7 probed", claimedSeen)
	}
	seen := map[int]int{}
	for _, i := range leased {
		seen[i]++
	}
	for i := 0; i < 10; i++ {
		want := 1
		if i == 2 || i == 3 || i == 7 {
			want = 0
		}
		if seen[i] != want {
			t.Errorf("point %d leased %d time(s), want %d (leased: %v)", i, seen[i], want, leased)
		}
	}
}

// A filter that claims every point must drive the dispatcher to Done
// without any lease reaching a worker.
func TestFilteringDispatcherFullyClaimedGrid(t *testing.T) {
	inner := NewWorkStealingDispatcher(6, 2)
	fd := NewFilteringDispatcher(inner, func(l Lease) []bool {
		mask := make([]bool, l.Points())
		for k := range mask {
			mask[k] = true
		}
		return mask
	})
	if l, ok := fd.TryNext("w"); ok {
		t.Fatalf("fully claimed grid still leased [%d,%d)", l.Lo, l.Hi)
	}
	select {
	case <-fd.Done():
	default:
		t.Fatal("fully claimed grid did not drain to Done")
	}
}

// The wrapper preserves the extensions SweepRun and the coordinator
// rely on: idempotent completion, partial requeue, rate seeding.
func TestFilteringDispatcherDelegatesExtensions(t *testing.T) {
	inner := NewWorkStealingDispatcher(8, 1)
	fd := NewFilteringDispatcher(inner, func(Lease) []bool { return nil })
	rk, ok := fd.(RateKeeper)
	if !ok {
		t.Fatal("filtering dispatcher lost RateKeeper")
	}
	rk.SeedRate("w", 100)
	if rates := rk.Rates(); rates["w"] != 100 {
		t.Errorf("seeded rate did not reach the inner dispatcher: %v", rates)
	}
	l, _ := fd.TryNext("w")
	cr, ok := fd.(interface {
		completeReport(l Lease, elapsed time.Duration) bool
	})
	if !ok {
		t.Fatal("filtering dispatcher lost completeReport")
	}
	if !cr.completeReport(l, time.Millisecond) {
		t.Error("first completion reported not-outstanding")
	}
	if cr.completeReport(l, time.Millisecond) {
		t.Error("duplicate completion reported outstanding")
	}
	l2, _ := fd.TryNext("w")
	pr, ok := fd.(interface {
		RequeuePartial(l Lease, finished []bool)
	})
	if !ok {
		t.Fatal("filtering dispatcher lost RequeuePartial")
	}
	finished := make([]bool, l2.Points())
	if len(finished) > 0 {
		finished[0] = true
	}
	pr.RequeuePartial(l2, finished)
	l3, ok := fd.TryNext("w")
	if !ok {
		t.Fatal("partially requeued points not re-leased")
	}
	if l3.Lo != l2.Lo+1 {
		t.Errorf("re-lease starts at %d, want %d (the first unfinished point)", l3.Lo, l2.Lo+1)
	}
}

func TestPendingTracksQueueNotLeases(t *testing.T) {
	d := NewWorkStealingDispatcher(10, 2)
	pr, ok := d.(PendingReporter)
	if !ok {
		t.Fatal("work-stealing dispatcher does not report pending")
	}
	if got := pr.Pending(); got != 10 {
		t.Fatalf("fresh queue Pending = %d, want 10", got)
	}
	l, _ := d.TryNext("w")
	if got := pr.Pending(); got != 10-l.Points() {
		t.Fatalf("Pending after lease = %d, want %d (leased points are not pending)", got, 10-l.Points())
	}
	d.Requeue(l)
	if got := pr.Pending(); got != 10 {
		t.Fatalf("Pending after requeue = %d, want 10", got)
	}

	fd := NewFilteringDispatcher(NewWorkStealingDispatcher(4, 1), func(Lease) []bool { return nil })
	fpr, ok := fd.(PendingReporter)
	if !ok {
		t.Fatal("filtering dispatcher does not report pending")
	}
	if got := fpr.Pending(); got != 4 {
		t.Fatalf("filtered Pending = %d, want 4", got)
	}
}
