package core

import (
	"sync"
	"testing"
	"time"
)

// Every grid point must be leased exactly once when workers drain the
// queue concurrently, whatever the interleaving.
func TestWorkStealingLeasesCoverGridExactlyOnce(t *testing.T) {
	const points, workers = 97, 5
	d := NewWorkStealingDispatcher(points, workers)
	var mu sync.Mutex
	seen := make([]int, points)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for {
				l, ok := d.Next(name)
				if !ok {
					return
				}
				mu.Lock()
				for i := l.Lo; i < l.Hi; i++ {
					seen[i]++
				}
				mu.Unlock()
				d.Complete(l, time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	for i, n := range seen {
		if n != 1 {
			t.Errorf("point %d leased %d times, want exactly once", i, n)
		}
	}
	select {
	case <-d.Done():
	default:
		t.Error("Done not closed after all points completed")
	}
}

// A requeued lease's points must come back out of the queue (the
// dead-worker path), and completing the stale lease afterwards must be
// ignored.
func TestRequeueRevivesPointsAndStaleCompleteIsIgnored(t *testing.T) {
	d := NewWorkStealingDispatcher(4, 1)
	l1, ok := d.TryNext("w1")
	if !ok {
		t.Fatal("no first lease")
	}
	d.Requeue(l1)
	// The same points come back under a new lease seq.
	l2, ok := d.TryNext("w2")
	if !ok {
		t.Fatal("requeued points not available")
	}
	if l2.Lo != l1.Lo {
		t.Errorf("requeued lease starts at %d, want the retried point %d first", l2.Lo, l1.Lo)
	}
	if l2.Seq == l1.Seq {
		t.Error("requeued lease reused the stale seq")
	}
	// The dead worker's late upload: completing the stale lease must
	// not count points twice.
	q := d.(interface {
		completeReport(Lease, time.Duration) bool
	})
	if q.completeReport(l1, time.Millisecond) {
		t.Error("stale lease completed; duplicate uploads would double-count")
	}
	if !q.completeReport(l2, time.Millisecond) {
		t.Error("live lease refused")
	}
}

// Contiguous mode must reproduce PR 3's static batch split: worker s's
// batch is [s*n/shards, (s+1)*n/shards).
func TestContiguousDispatcherPreSplitsBatches(t *testing.T) {
	const points, workers = 10, 3
	d := NewContiguousDispatcher(points, workers)
	for s := 0; s < workers; s++ {
		l, ok := d.TryNext("w")
		if !ok {
			t.Fatalf("batch %d missing", s)
		}
		wantLo, wantHi := s*points/workers, (s+1)*points/workers
		if l.Lo != wantLo || l.Hi != wantHi {
			t.Errorf("batch %d = [%d,%d), want [%d,%d)", s, l.Lo, l.Hi, wantLo, wantHi)
		}
		d.Complete(l, time.Millisecond)
	}
	if _, ok := d.TryNext("w"); ok {
		t.Error("extra batch after the pre-split was drained")
	}
}

// A worker with a faster throughput EWMA must get a larger lease than a
// slower one — the WANify-style steering.
func TestLeaseSizeFollowsThroughputEWMA(t *testing.T) {
	d := NewWorkStealingDispatcher(64, 2)
	rk := d.(RateKeeper)
	rk.SeedRate("fast", 1000)
	rk.SeedRate("slow", 10)
	lf, ok := d.TryNext("fast")
	if !ok {
		t.Fatal("no lease for fast worker")
	}
	ls, ok := d.TryNext("slow")
	if !ok {
		t.Fatal("no lease for slow worker")
	}
	if lf.Points() <= ls.Points() {
		t.Errorf("fast worker leased %d points, slow %d; EWMA steering should favor the fast one",
			lf.Points(), ls.Points())
	}
}

// Close must unblock workers parked in Next (the cancellation path).
func TestCloseUnblocksNext(t *testing.T) {
	d := NewWorkStealingDispatcher(1, 2)
	l, _ := d.TryNext("holder") // drain the only point, don't complete it
	_ = l
	unblocked := make(chan bool, 1)
	go func() {
		_, ok := d.Next("waiter")
		unblocked <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	d.Close()
	select {
	case ok := <-unblocked:
		if ok {
			t.Error("Next returned a lease from a closed dispatcher")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next still blocked after Close")
	}
}

// Rates must survive a run so the coordinator can seed the next job's
// dispatcher with what it learned.
func TestRatesSnapshotAfterCompletes(t *testing.T) {
	d := NewWorkStealingDispatcher(8, 2)
	for {
		l, ok := d.TryNext("w")
		if !ok {
			break
		}
		d.Complete(l, 100*time.Millisecond)
	}
	rates := d.(RateKeeper).Rates()
	if rates["w"] <= 0 {
		t.Errorf("worker rate = %v, want a positive points/sec EWMA", rates["w"])
	}
}
