package core_test

import (
	"testing"

	"repro/internal/benchkit"
)

// The sweep-engine benchmarks: the same 8-point TCP sweep run on one
// kernel vs. sharded across GOMAXPROCS kernels. Bodies live in
// internal/benchkit so cmd/gtwbench runs the identical code into
// BENCH_kernel.json; the tracked number is the ratio of the two.

// BenchmarkSweepSingleKernel is the pre-sharding baseline.
func BenchmarkSweepSingleKernel(b *testing.B) { benchkit.SweepSingleKernel(b) }

// BenchmarkSweepSharded splits the grid across per-core shards.
func BenchmarkSweepSharded(b *testing.B) { benchkit.SweepSharded(b) }
