package core_test

import (
	"testing"

	"repro/internal/benchkit"
)

// The sweep-engine benchmarks: the same 8-point TCP sweep run on one
// kernel vs. sharded across GOMAXPROCS kernels. Bodies live in
// internal/benchkit so cmd/gtwbench runs the identical code into
// BENCH_kernel.json; the tracked number is the ratio of the two.

// BenchmarkSweepSingleKernel is the pre-sharding baseline.
func BenchmarkSweepSingleKernel(b *testing.B) { benchkit.SweepSingleKernel(b) }

// BenchmarkSweepSharded splits the grid across per-core shards.
func BenchmarkSweepSharded(b *testing.B) { benchkit.SweepSharded(b) }

// BenchmarkSweepContiguousUneven runs an intentionally uneven grid (one
// ~10x point, the figure1 pattern) under PR 3's static contiguous
// batches.
func BenchmarkSweepContiguousUneven(b *testing.B) { benchkit.SweepContiguousUneven(b) }

// BenchmarkSweepWorkStealing runs the same uneven grid under the
// work-stealing dispatcher; beating the contiguous row is the tracked
// property.
func BenchmarkSweepWorkStealing(b *testing.B) { benchkit.SweepWorkStealing(b) }
