package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cocolib"
	"repro/internal/fire"
	"repro/internal/groundwater"

	"repro/internal/climate"
)

// Concrete Report implementations for the registered scenarios. Each is
// a plain struct of the measurement record: Text renders the table the
// old Format* helpers produced, JSON marshals the record itself.

// Table1Report compares the calibrated T3E-600 model against the
// paper's printed Table 1.
type Table1Report struct {
	Model []fire.Table1Row
	Paper []fire.Table1Row
}

// Text implements Report.
func (r *Table1Report) Text() string {
	var sb strings.Builder
	sb.WriteString("T1: FIRE processing times on the Cray T3E-600, 64x64x16 image\n")
	sb.WriteString("      (model vs. paper; times in seconds)\n")
	sb.WriteString("  PEs   filter        motion        RVO            total          speedup\n")
	for i, m := range r.Model {
		var p fire.Table1Row
		if i < len(r.Paper) {
			p = r.Paper[i]
		}
		fmt.Fprintf(&sb, "  %3d   %5.3f/%5.2f   %5.3f/%5.2f   %7.2f/%7.2f  %7.2f/%7.2f  %6.1f/%6.1f\n",
			m.PEs, m.Filter, p.Filter, m.Motion, p.Motion, m.RVO, p.RVO, m.Total, p.Total,
			m.Speedup, p.Speedup)
	}
	return sb.String()
}

// JSON implements Report.
func (r *Table1Report) JSON() ([]byte, error) { return json.Marshal(r) }

// Figure1Report carries the section-2 path measurements.
type Figure1Report struct {
	Rows []Figure1Row
}

// Text implements Report.
func (r *Figure1Report) Text() string { return FormatFigure1(r.Rows) }

// JSON implements Report.
func (r *Figure1Report) JSON() ([]byte, error) { return json.Marshal(r) }

// Figure2Report carries the realtime-fMRI latency budget.
type Figure2Report struct {
	Figure2Result
}

// Text implements Report.
func (r *Figure2Report) Text() string { return FormatFigure2(r.Figure2Result) }

// JSON implements Report.
func (r *Figure2Report) JSON() ([]byte, error) { return json.Marshal(r) }

// Figure3Report carries the FIRE GUI overlay measurement.
type Figure3Report struct {
	Figure3Result
}

// Text implements Report.
func (r *Figure3Report) Text() string { return FormatFigure3(r.Figure3Result) }

// JSON implements Report.
func (r *Figure3Report) JSON() ([]byte, error) { return json.Marshal(r) }

// Figure4Report carries the 3-D visualization measurements.
type Figure4Report struct {
	Figure4Result
}

// Text implements Report.
func (r *Figure4Report) Text() string { return FormatFigure4(r.Figure4Result) }

// JSON implements Report.
func (r *Figure4Report) JSON() ([]byte, error) { return json.Marshal(r) }

// Section3Report carries the application-requirements table.
type Section3Report struct {
	Rows []AppRow
}

// Text implements Report.
func (r *Section3Report) Text() string { return FormatSection3(r.Rows) }

// JSON implements Report.
func (r *Section3Report) JSON() ([]byte, error) { return json.Marshal(r) }

// FMRIDataflowReport carries the fully derived five-computer fMRI
// dataflow timing.
type FMRIDataflowReport struct {
	Scenario FMRIScenario
	Result   FMRIScenarioResult
}

// Header is the section heading shared by every fmri-dataflow row
// (callers sweeping PE counts print it once, then Row per run).
func (r *FMRIDataflowReport) Header() string {
	return "D1: fully derived fMRI dataflow (DES over the testbed)\n"
}

// Row renders the measurement line without the heading.
func (r *FMRIDataflowReport) Row() string {
	return fmt.Sprintf("  %3d PEs, TR %.1f s: GUI delay %.2f s mean / %.2f s max, VR path %.2f s, wire %.0f ms/frame\n",
		r.Scenario.PEs, r.Scenario.TR, r.Result.MeanGUIDelay, r.Result.MaxGUIDelay,
		r.Result.MeanVRDelay, r.Result.WireSeconds*1000)
}

// Text implements Report.
func (r *FMRIDataflowReport) Text() string { return r.Header() + r.Row() }

// JSON implements Report.
func (r *FMRIDataflowReport) JSON() ([]byte, error) { return json.Marshal(r) }

// FMRISweepReport carries the fMRI dataflow DES evaluated at several
// T3E partition sizes (the fmri-pe-sweep scenario), one row per PE
// count in grid order.
type FMRISweepReport struct {
	Rows []FMRIDataflowReport
}

// Text implements Report.
func (r *FMRISweepReport) Text() string {
	var sb strings.Builder
	for i := range r.Rows {
		if i == 0 {
			sb.WriteString(r.Rows[i].Header())
		}
		sb.WriteString(r.Rows[i].Row())
	}
	return sb.String()
}

// JSON implements Report.
func (r *FMRISweepReport) JSON() ([]byte, error) { return json.Marshal(r) }

// UpgradeReport carries the OC-12 -> OC-48 upgrade-motivation
// measurements: aggregate flows and mixed video+bulk traffic on both
// backbone generations.
type UpgradeReport struct {
	Aggregate []AggregateRow
	Mixed     []MixedTrafficResult
}

// Text implements Report. Only sections with measurements are printed
// (the backbone-aggregate and mixed-traffic scenarios each fill one).
func (r *UpgradeReport) Text() string {
	var sb strings.Builder
	if len(r.Aggregate) > 0 {
		sb.WriteString("U1: backbone aggregate capacity (concurrent 622-attached flows)\n")
		for _, a := range r.Aggregate {
			fmt.Fprintf(&sb, "  %-6v x%d flows: %7.1f Mbit/s aggregate\n", a.Backbone, a.Flows, a.AggregateMbps)
		}
	}
	if len(r.Mixed) > 0 {
		sb.WriteString("U2: 270 Mbit/s D1 video sharing the backbone with bulk TCP\n")
		for _, m := range r.Mixed {
			fmt.Fprintf(&sb, "  %-6v video %2d/%2d frames on time (peak jitter %6.2f ms), bulk TCP %7.1f Mbit/s\n",
				m.Backbone, m.Video.OnTime, m.Video.Frames,
				m.Video.PeakJitter.Seconds()*1000, m.BulkMbps)
		}
	}
	return sb.String()
}

// JSON implements Report.
func (r *UpgradeReport) JSON() ([]byte, error) { return json.Marshal(r) }

// FutureWorkReport carries the forward-looking analyses.
type FutureWorkReport struct {
	FutureWorkResult
}

// Text implements Report.
func (r *FutureWorkReport) Text() string { return FormatFutureWork(r.FutureWorkResult) }

// JSON implements Report.
func (r *FutureWorkReport) JSON() ([]byte, error) { return json.Marshal(r) }

// ClimateReport carries the coupled ocean/atmosphere run.
type ClimateReport struct {
	Steps  int
	DtSecs float64
	Result climate.CoupledResult
}

// Text implements Report.
func (r *ClimateReport) Text() string {
	var sb strings.Builder
	sb.WriteString("C1: coupled climate (ocean-ice on 'T3E', atmosphere on 'SP2', CSM-style coupler)\n")
	fmt.Fprintf(&sb, "  coupled %d steps of %d s; %.2f MByte exchanged per step\n",
		r.Result.Steps, int(r.DtSecs), float64(r.Result.BytesPerExchange)/1e6)
	fmt.Fprintf(&sb, "  final mean SST %.2f K (range %.1f..%.1f), ice fraction %.3f\n",
		r.Result.FinalMeanSST, r.Result.MinSST, r.Result.MaxSST, r.Result.FinalIceFraction)
	sb.WriteString("  (the paper quotes up to 1 MByte in short bursts per timestep)\n")
	return sb.String()
}

// JSON implements Report.
func (r *ClimateReport) JSON() ([]byte, error) { return json.Marshal(r) }

// GroundwaterReport carries the TRACE/PARTRACE coupled run with its
// VAMPIR-style communication summary.
type GroundwaterReport struct {
	Result groundwater.CoupledResult
	// TraceSummary is the rendered mpitrace statistics (text-only;
	// the raw events are not part of the record).
	TraceSummary string
}

// Text implements Report.
func (r *GroundwaterReport) Text() string {
	var sb strings.Builder
	sb.WriteString("G1: groundwater TRACE (SP2) <-> PARTRACE (T3E) coupling\n")
	fmt.Fprintf(&sb, "  coupled run: %d steps, %.2f MByte field per step (%.1f MByte total)\n",
		r.Result.Steps, float64(r.Result.BytesPerStep)/1e6, float64(r.Result.TotalBytes)/1e6)
	fmt.Fprintf(&sb, "  TRACE solver: %d CG iterations total\n", r.Result.CGIterTotal)
	fmt.Fprintf(&sb, "  PARTRACE: %d particles broke through, plume front at %.1f cells\n",
		r.Result.Exited, r.Result.FinalMeanX)
	sb.WriteString("  (the paper quotes up to 30 MByte/s for this field transfer)\n")
	if r.TraceSummary != "" {
		sb.WriteString(r.TraceSummary)
	}
	return sb.String()
}

// JSON implements Report.
func (r *GroundwaterReport) JSON() ([]byte, error) { return json.Marshal(r) }

// FSIReport carries the MetaCISPAR COCOLIB coupled run.
type FSIReport struct {
	FluidNodes  int
	StructNodes int
	Result      cocolib.FSIResult
}

// Text implements Report.
func (r *FSIReport) Text() string {
	var sb strings.Builder
	sb.WriteString("M1: MetaCISPAR fluid-structure coupling through COCOLIB\n")
	fmt.Fprintf(&sb, "  FSI coupled run: %d exchanges, %.1f KByte moved across the interface\n",
		r.Result.Steps, float64(r.Result.BytesExchanged)/1024)
	fmt.Fprintf(&sb, "  panel reached static aeroelastic equilibrium: max deflection %.4f (residual %.1e)\n",
		r.Result.MaxDeflection, r.Result.TipResidual)
	fmt.Fprintf(&sb, "  (COCOLIB interpolates between the %d-node fluid and %d-node structure meshes)\n",
		r.FluidNodes, r.StructNodes)
	return sb.String()
}

// JSON implements Report.
func (r *FSIReport) JSON() ([]byte, error) { return json.Marshal(r) }

// MEGReport carries the pmusic dipole localisation and the
// metacomputing speedup argument.
type MEGReport struct {
	GridPoints int
	// TrueMM and BestMM are the synthetic and estimated dipole
	// positions in millimetres.
	TrueMM  [3]float64
	BestMM  [3]float64
	PeakVal float64
	ErrorMM float64
	// Speedups maps T3E partition size to the MPP+vector speedup over
	// MPP-only.
	Speedups []MEGSpeedup
}

// MEGSpeedup is one distributed-vs-MPP-only comparison point.
type MEGSpeedup struct {
	PEs     int
	Speedup float64
}

// Text implements Report.
func (r *MEGReport) Text() string {
	var sb strings.Builder
	sb.WriteString("E1: MEG pmusic dipole localisation (MUSIC scan on 4 MPI ranks)\n")
	fmt.Fprintf(&sb, "  scanned %d grid points; true dipole (%.0f, %.0f, %.0f) mm\n",
		r.GridPoints, r.TrueMM[0], r.TrueMM[1], r.TrueMM[2])
	fmt.Fprintf(&sb, "  MUSIC peak %.3f at (%.0f, %.0f, %.0f) mm — error %.1f mm\n",
		r.PeakVal, r.BestMM[0], r.BestMM[1], r.BestMM[2], r.ErrorMM)
	for _, s := range r.Speedups {
		fmt.Fprintf(&sb, "  distributed vs MPP-only speedup at %3d PEs: %.2fx\n", s.PEs, s.Speedup)
	}
	return sb.String()
}

// JSON implements Report.
func (r *MEGReport) JSON() ([]byte, error) { return json.Marshal(r) }

// VideoReport carries the D1 studio-video streaming runs across
// carrier generations.
type VideoReport struct {
	Rows []VideoRow
}

// VideoRow is one carrier's streaming outcome.
type VideoRow struct {
	Carrier     string
	PayloadMbps float64
	Frames      int
	OnTime      int
	LostPackets int
	PeakJitter  float64 // milliseconds
}

// Text implements Report.
func (r *VideoReport) Text() string {
	var sb strings.Builder
	sb.WriteString("V1: uncompressed 270 Mbit/s D1 studio video over ATM carriers\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-6s payload %6.1f Mbit/s: %2d/%2d frames on time, %d lost packets, peak jitter %6.2f ms\n",
			row.Carrier, row.PayloadMbps, row.OnTime, row.Frames, row.LostPackets, row.PeakJitter)
	}
	return sb.String()
}

// JSON implements Report.
func (r *VideoReport) JSON() ([]byte, error) { return json.Marshal(r) }

// RTSessionReport carries a realtime fMRI session over real loopback
// TCP sockets: scanner -> RT-server -> RT-client with motion correction
// and incremental correlation, plus the final rendered overlay.
type RTSessionReport struct {
	Scans           int
	ActivatedVoxels int
	PeakCorrelation float64
	// MaxShiftVoxels is the largest estimated subject motion over the
	// session, in voxels.
	MaxShiftVoxels float64
	PNGBytes       int
	// PNG is the rendered figure-3 overlay (excluded from JSON;
	// PNGBytes records its size).
	PNG []byte `json:"-"`
}

// Text implements Report.
func (r *RTSessionReport) Text() string {
	var sb strings.Builder
	sb.WriteString("R1: realtime fMRI session over the RT protocol (real TCP sockets)\n")
	fmt.Fprintf(&sb, "  %d scans analysed, %d voxels activated, peak r = %.3f\n",
		r.Scans, r.ActivatedVoxels, r.PeakCorrelation)
	fmt.Fprintf(&sb, "  peak estimated subject motion %.2f voxels; overlay rendered (%d PNG bytes)\n",
		r.MaxShiftVoxels, r.PNGBytes)
	return sb.String()
}

// JSON implements Report.
func (r *RTSessionReport) JSON() ([]byte, error) { return json.Marshal(r) }
