package core

import (
	"strings"
	"testing"
)

func TestFutureWorkAnalysis(t *testing.T) {
	r, err := FutureWorkAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	// Section 1: saturation "next year" from a 1999 vantage point.
	if r.BWiNSaturation < 1998.8 || r.BWiNSaturation > 2000.2 {
		t.Errorf("B-WiN saturation = %.2f", r.BWiNSaturation)
	}
	if r.GigabitHeadroomYears < 3 || r.GigabitHeadroomYears > 5 {
		t.Errorf("gigabit headroom = %.2f years", r.GigabitHeadroomYears)
	}
	if len(r.Acquisitions) != 2 {
		t.Fatalf("%d acquisitions", len(r.Acquisitions))
	}
	std, adv := r.Acquisitions[0], r.Acquisitions[1]
	// Today's acquisition is realtime-feasible; the multi-echo one is
	// not, even on the full machine — the section-4 closing claim.
	if !std.RealtimeOK {
		t.Errorf("standard acquisition not realtime: %.2f s/volume", std.T3EFullSeconds)
	}
	if adv.RealtimeOK {
		t.Errorf("multi-echo acquisition should overwhelm the T3E: %.2f s/volume", adv.T3EFullSeconds)
	}
	// Order of magnitude in data rate.
	if adv.DataRateMbps < 10*std.DataRateMbps {
		t.Errorf("data rate ratio %.1f, want >= 10", adv.DataRateMbps/std.DataRateMbps)
	}
	text := FormatFutureWork(r)
	if !strings.Contains(text, "B-WiN") || !strings.Contains(text, "challenging task") {
		t.Error("format output incomplete")
	}
}
