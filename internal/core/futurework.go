package core

import (
	"fmt"
	"strings"

	"repro/internal/bwin"
	"repro/internal/fire"
	"repro/internal/mri"
)

// FutureWork quantifies the paper's two forward-looking claims: the
// B-WiN saturation that motivates the gigabit upgrade (section 1) and
// the multi-echo acquisition rates that will "be a challenging task
// for a supercomputer again" (section 4).

// MultiEchoRow evaluates one acquisition against the T3E model.
type MultiEchoRow struct {
	Name         string
	DataRateMbps float64
	// T3EFullSeconds is the full-machine (512 PE) chain time per
	// volume.
	T3EFullSeconds float64
	// RealtimeOK reports whether the full machine keeps up with TR.
	RealtimeOK bool
}

// FutureWorkResult bundles both analyses.
type FutureWorkResult struct {
	// BWiNSaturation is the extrapolated year the 155 Mbit/s network
	// saturates.
	BWiNSaturation float64
	// GigabitHeadroomYears is how long the gigabit upgrade lasts at
	// the same growth.
	GigabitHeadroomYears float64
	Acquisitions         []MultiEchoRow
}

// FutureWorkAnalysis evaluates both claims.
func FutureWorkAnalysis() (FutureWorkResult, error) {
	m := bwin.DefaultBWiN()
	sat, err := m.SaturationYear(bwin.AccessCapacityMbps)
	if err != nil {
		return FutureWorkResult{}, err
	}
	head, err := m.HeadroomYears(bwin.AccessCapacityMbps, bwin.GigabitCapacityMbps)
	if err != nil {
		return FutureWorkResult{}, err
	}
	res := FutureWorkResult{BWiNSaturation: sat, GigabitHeadroomYears: head}

	model := fire.DefaultT3E600()
	for _, acq := range []struct {
		name string
		a    mri.MultiEcho
	}{
		{"standard 64x64x16 single-echo, TR 2 s", mri.StandardAcquisition()},
		{"multi-echo 128x128x16 x8 echoes, TR 2 s", mri.ReferenceMultiEcho()},
	} {
		if err := acq.a.Validate(); err != nil {
			return res, err
		}
		// The analysis chain scales with acquired voxels; echoes
		// multiply the per-volume work.
		secs := float64(acq.a.Echoes) * model.TotalTime(512, acq.a.NX, acq.a.NY, acq.a.NZ)
		res.Acquisitions = append(res.Acquisitions, MultiEchoRow{
			Name:           acq.name,
			DataRateMbps:   acq.a.DataRateBps() / 1e6,
			T3EFullSeconds: secs,
			RealtimeOK:     secs <= acq.a.TR,
		})
	}
	return res, nil
}

// FormatFutureWork renders the analysis.
func FormatFutureWork(r FutureWorkResult) string {
	var sb strings.Builder
	sb.WriteString("B1: B-WiN capacity planning (section 1)\n")
	fmt.Fprintf(&sb, "  155 Mbit/s network saturates ~%.1f (paper: 'its limit in the next year', written 1999)\n",
		r.BWiNSaturation)
	fmt.Fprintf(&sb, "  gigabit upgrade buys %.1f years at the same growth\n", r.GigabitHeadroomYears)
	sb.WriteString("X3: advanced MR imaging (section 4 outlook)\n")
	for _, a := range r.Acquisitions {
		status := "realtime on 512 PEs"
		if !a.RealtimeOK {
			status = "NOT realtime even on 512 PEs — 'a challenging task for a supercomputer again'"
		}
		fmt.Fprintf(&sb, "  %-42s %7.2f Mbit/s raw, %6.2f s/volume on full T3E: %s\n",
			a.Name, a.DataRateMbps, a.T3EFullSeconds, status)
	}
	return sb.String()
}
