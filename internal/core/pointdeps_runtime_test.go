package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/atm"
)

// This file is the runtime half of the PointDeps contract. The static
// half (internal/analysis/pointdeps, pinned by the audit test) derives
// from source which Options fields a sweep's points read; it cannot see
// dynamic reads — a field smuggled through an interface, a helper
// resolved at run time. Go offers no way to trap struct field loads, so
// the test-only shim here records dependencies behaviorally instead:
// evaluate sample grid points under every single-field perturbation of
// the options and record the fields whose perturbation changes the
// point's wire bytes. A recorded field absent from the declared
// PointDeps set would mean the content address under-keys the point —
// the coordinator's store would serve one tenant's result for another's
// genuinely different computation.

// optPerturbations is one representative mutation per wire field, each
// chosen to differ from DefaultOptions.
var optPerturbations = map[OptField]func(*Options){
	OptWAN:        func(o *Options) { o.WAN = atm.OC12 },
	OptExtensions: func(o *Options) { o.Extensions = !o.Extensions },
	OptPEs:        func(o *Options) { o.PEs = 128 },
	OptFrames:     func(o *Options) { o.Frames++ },
	OptFlows:      func(o *Options) { o.Flows++ },
}

// recordPointDeps evaluates the sample points under the base options
// and under each perturbation, returning the set of fields whose
// perturbation changed any sampled point's wire bytes.
func recordPointDeps(t *testing.T, sw *Sweep, sample []Point) map[OptField]bool {
	t.Helper()
	eval := func(opts Options) [][]byte {
		tb := sw.NewShardTestbed(opts)
		out := make([][]byte, len(sample))
		for i, pt := range sample {
			res, err := sw.runOnePoint(context.Background(), tb, opts, pt)
			if err != nil {
				t.Fatalf("%s point %d: %v", sw.Name(), pt.Index, err)
			}
			b, err := sw.EncodePoint(res)
			if err != nil {
				t.Fatalf("%s point %d: encode: %v", sw.Name(), pt.Index, err)
			}
			out[i] = b
		}
		return out
	}
	base := eval(DefaultOptions())
	recorded := map[OptField]bool{}
	for _, f := range allOptFields {
		opts := DefaultOptions()
		optPerturbations[f](&opts)
		for i, b := range eval(opts) {
			if !bytes.Equal(b, base[i]) {
				recorded[f] = true
				t.Logf("%s point %d depends on %q:\n  base:      %s\n  perturbed: %s",
					sw.Name(), sample[i].Index, f, base[i], b)
				break
			}
		}
	}
	return recorded
}

// TestPointDepsRuntime cross-checks every sweep's declared PointDeps
// against the behaviorally recorded set: no perturbation of an
// undeclared field may change a point's wire bytes. It complements the
// static audit (TestPointDepsDerivedSetsArePinned) — that test pins
// what the source reads, this one catches reads the static pass cannot
// see.
func TestPointDepsRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluates sample grid points under every option perturbation")
	}
	for _, s := range Scenarios() {
		sw, ok := s.(*Sweep)
		if !ok || sw.keyDeps == nil {
			continue // not a sweep, or conservatively keyed on all fields
		}
		t.Run(sw.Name(), func(t *testing.T) {
			t.Parallel()
			declared := map[OptField]bool{}
			for _, f := range sw.keyDeps {
				declared[f] = true
			}
			pts := sw.Points()
			sample := []Point{pts[0]}
			if n := len(pts); n > 1 {
				sample = append(sample, pts[n/2], pts[n-1])
			}
			for f := range recordPointDeps(t, sw, sample) {
				if !declared[f] {
					t.Errorf("points read Options.%q at run time but PointDeps does not declare it — the content address under-keys this sweep", f)
				}
			}
		})
	}
}
