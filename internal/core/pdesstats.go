package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// PDESAggregate is the process-wide sum of PDES synchronization
// counters over every partitioned testbed run so far: how many rounds
// the kernel groups turned, how many null messages (bound broadcasts)
// they exchanged, and how the fired events split across kernel indices.
// It is what an observability host (gtwd's /v1/metrics, gtwrun's
// -kernels envelope) exports, and it is deliberately outside report
// bytes — kernel counts and sync costs are execution policy.
type PDESAggregate struct {
	// Flushes counts testbed flushes that carried new activity —
	// roughly "partitioned simulation phases recorded".
	Flushes int64
	// Rounds and NullMessages sum pdes.Stats across testbeds.
	Rounds       int64
	NullMessages int64
	// KernelEvents[i] sums events fired by kernel index i across
	// testbeds (testbeds with fewer kernels contribute to the low
	// indices). The spread is the load-balance picture.
	KernelEvents []int64
	// KernelBlocked[i] sums wall-clock barrier wait of kernel index i.
	// All zero unless EnablePDESBlockedTelemetry ran before the
	// testbeds were built.
	KernelBlocked []time.Duration
}

var (
	pdesMu        sync.Mutex
	pdesAgg       PDESAggregate
	pdesTelemetry atomic.Bool
)

// EnablePDESBlockedTelemetry makes every subsequently built partitioned
// testbed measure per-kernel barrier wait (wall clock) and fold it into
// PDESSnapshot. Observability hosts call it at startup; it is off by
// default because the measurement costs two clock reads per kernel per
// barrier, which benchmarks must not pay.
func EnablePDESBlockedTelemetry() { pdesTelemetry.Store(true) }

// PDESSnapshot returns a copy of the process-wide PDES aggregate.
func PDESSnapshot() PDESAggregate {
	pdesMu.Lock()
	defer pdesMu.Unlock()
	out := pdesAgg
	out.KernelEvents = append([]int64(nil), pdesAgg.KernelEvents...)
	out.KernelBlocked = append([]time.Duration(nil), pdesAgg.KernelBlocked...)
	return out
}

// flushPDES folds the testbed's PDES counter growth since the last
// flush into the process-wide aggregate. Safe on any testbed (a no-op
// when unpartitioned); called wherever a simulation phase completes — a
// grid point, a wrapped scenario run, a driver-built testbed going out
// of scope. Takes simMu so the network is quiescent while the counters
// are read.
func (tb *Testbed) flushPDES() {
	if tb == nil || tb.Net.Kernels() <= 1 {
		return
	}
	tb.simMu.Lock()
	s := tb.Net.SyncStats()
	prev := tb.pdesPrev
	tb.pdesPrev = s
	tb.simMu.Unlock()

	dRounds := s.Rounds - prev.Rounds
	dNull := s.NullMessages - prev.NullMessages
	changed := dRounds != 0 || dNull != 0
	dEvents := make([]int64, len(s.Events))
	for i, v := range s.Events {
		if i < len(prev.Events) {
			v -= prev.Events[i]
		}
		dEvents[i] = v
		changed = changed || v != 0
	}
	dBlocked := make([]time.Duration, len(s.Blocked))
	for i, v := range s.Blocked {
		if i < len(prev.Blocked) {
			v -= prev.Blocked[i]
		}
		dBlocked[i] = v
	}
	if !changed {
		return
	}

	pdesMu.Lock()
	defer pdesMu.Unlock()
	pdesAgg.Flushes++
	pdesAgg.Rounds += dRounds
	pdesAgg.NullMessages += dNull
	for len(pdesAgg.KernelEvents) < len(dEvents) {
		pdesAgg.KernelEvents = append(pdesAgg.KernelEvents, 0)
	}
	for i, v := range dEvents {
		pdesAgg.KernelEvents[i] += v
	}
	for len(pdesAgg.KernelBlocked) < len(dBlocked) {
		pdesAgg.KernelBlocked = append(pdesAgg.KernelBlocked, 0)
	}
	for i, v := range dBlocked {
		pdesAgg.KernelBlocked[i] += v
	}
}
