package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// planProbeReport is a concrete report for the wrapped-scenario tests.
type planProbeReport struct {
	Value float64 `json:"value"`
	Label string  `json:"label"`
}

func (r *planProbeReport) Text() string          { return fmt.Sprintf("value %.3f (%s)\n", r.Value, r.Label) }
func (r *planProbeReport) JSON() ([]byte, error) { return json.Marshal(r) }

// A non-sweep scenario resolves to a one-point plan whose wire
// round-trip preserves the report byte for byte — the invariant that
// lets one-shot applications execute on remote workers.
func TestPlanForWrapsNonSweepScenario(t *testing.T) {
	s := NewScenario("plan-test-wrap", "wrap probe",
		func(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
			return &planProbeReport{Value: 0.125 + float64(opts.Frames), Label: "wrapped"}, nil
		})
	p := PlanFor(s)
	if !p.Wrapped() {
		t.Fatal("non-sweep scenario did not wrap")
	}
	if !p.Distributable() {
		t.Fatal("wrapped plan must be distributable (report wire codec)")
	}
	sw := p.Sweep()
	pts := sw.Points()
	if len(pts) != 1 {
		t.Fatalf("wrapped plan has %d points, want 1", len(pts))
	}
	opts := NewOptions(WithFrames(7))
	val, err := sw.EvalPoint(context.Background(), nil, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := val.(Report)
	if !ok {
		t.Fatalf("point value is %T, want a Report", val)
	}
	wantJSON, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the wire codec, as a remote execution would.
	b, err := sw.EncodePoint(val)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := sw.DecodePoint(b)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := func() (Report, error) {
		run := NewSweepRun(sw, opts, NewWorkStealingDispatcher(1, 1), 0)
		run.Prefill(0, decoded)
		return run.Report(context.Background())
	}()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := merged.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("wire round-trip changed report bytes:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
	if merged.Text() != rep.Text() {
		t.Errorf("wire round-trip changed report text")
	}
}

// PlanFor of a sweep is the sweep itself; Plan.Run matches the
// engine's direct execution byte for byte.
func TestPlanForSweepIsIdentity(t *testing.T) {
	sw := NewSweep("plan-test-sweep", "identity probe",
		[]Axis{{Name: "i", Values: []any{1, 2, 3}}},
		func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) {
			return Figure1Row{Path: fmt.Sprintf("p%d", pt.Coord(0).(int)), Mbps: float64(pt.Index) + 0.5}, nil
		},
		func(opts Options, results []any) (Report, error) {
			rep := &Figure1Report{}
			for _, r := range results {
				rep.Rows = append(rep.Rows, r.(Figure1Row))
			}
			return rep, nil
		}).NoShardTestbed().WirePoint(Figure1Row{})
	p := PlanFor(sw)
	if p.Wrapped() || p.Sweep() != sw {
		t.Fatal("sweep plan must be the sweep itself")
	}
	opts := NewOptions(WithShards(1))
	direct, err := sw.Run(context.Background(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaPlan, err := p.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	dj, _ := direct.JSON()
	pj, _ := viaPlan.JSON()
	if !bytes.Equal(dj, pj) {
		t.Errorf("plan run differs from direct sweep run:\n%s\nvs\n%s", pj, dj)
	}
}

// Point keys: stable per point, distinct across points and scenarios,
// and narrowed by PointDeps so irrelevant options share keys.
func TestPointKeyContentAddressing(t *testing.T) {
	mk := func(name string, deps ...OptField) *Sweep {
		sw := NewSweep(name, "key probe",
			[]Axis{{Name: "i", Values: []any{10, 20}}},
			func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error) { return nil, nil },
			func(opts Options, results []any) (Report, error) { return nil, nil })
		if deps != nil {
			sw.PointDeps(deps...)
		}
		return sw
	}
	a := mk("key-a")
	aDeps := mk("key-a", OptFlows) // same name, points read Flows only
	b := mk("key-b")
	o1 := NewOptions(WithFrames(30), WithFlows(2))
	o2 := NewOptions(WithFrames(60), WithFlows(2)) // frames differ
	o3 := NewOptions(WithFrames(30), WithFlows(4)) // flows differ
	pts := a.Points()

	if a.PointKey(o1, pts[0]) != a.PointKey(o1, pts[0]) {
		t.Error("point key is not deterministic")
	}
	if a.PointKey(o1, pts[0]) == a.PointKey(o1, pts[1]) {
		t.Error("different grid points share a key")
	}
	if a.PointKey(o1, pts[0]) == b.PointKey(o1, b.Points()[0]) {
		t.Error("different scenarios share a key")
	}
	// Default deps: every option field is assumed relevant.
	if a.PointKey(o1, pts[0]) == a.PointKey(o2, pts[0]) {
		t.Error("default deps ignored a Frames change")
	}
	// Declared deps: Frames is irrelevant, Flows is not.
	if aDeps.PointKey(o1, pts[0]) != aDeps.PointKey(o2, pts[0]) {
		t.Error("PointDeps(OptFlows) still keys on Frames")
	}
	if aDeps.PointKey(o1, pts[0]) == aDeps.PointKey(o3, pts[0]) {
		t.Error("PointDeps(OptFlows) ignored a Flows change")
	}
	// Empty deps: options never matter.
	none := mk("key-none", []OptField{}...)
	none.PointDeps()
	if none.PointKey(o1, none.Points()[0]) != none.PointKey(o3, none.Points()[0]) {
		t.Error("PointDeps() still keys on options")
	}
}

// The skipping dispatcher never leases done points and completes once
// the missing ones are evaluated.
func TestDispatcherSkippingLeasesOnlyMissingPoints(t *testing.T) {
	done := []bool{true, false, false, true, false, true, true, false}
	d := NewWorkStealingDispatcherSkipping(len(done), 1, done)
	leased := make([]bool, len(done))
	for {
		l, ok := d.TryNext("w")
		if !ok {
			break
		}
		for i := l.Lo; i < l.Hi; i++ {
			if done[i] {
				t.Errorf("leased already-done point %d (lease [%d,%d))", i, l.Lo, l.Hi)
			}
			leased[i] = true
		}
		d.Complete(l, time.Millisecond)
	}
	for i, want := range done {
		if leased[i] == want {
			t.Errorf("point %d: done=%v leased=%v", i, want, leased[i])
		}
	}
	select {
	case <-d.Done():
	default:
		t.Error("dispatcher not done after missing points completed")
	}
}

// An all-done grid is born complete: nothing leases, Done is closed.
func TestDispatcherSkippingAllDone(t *testing.T) {
	done := []bool{true, true, true}
	d := NewWorkStealingDispatcherSkipping(3, 2, done)
	if _, ok := d.TryNext("w"); ok {
		t.Error("fully prefilled grid handed out a lease")
	}
	select {
	case <-d.Done():
	default:
		t.Error("fully prefilled dispatcher is not done")
	}
}

// RequeuePartial credits the streamed prefix and re-leases only the
// unfinished tail — the dead-worker-late-in-a-lease path.
func TestRequeuePartialReLeasesOnlyUnfinishedTail(t *testing.T) {
	d := NewWorkStealingDispatcher(8, 1)
	l, ok := d.TryNext("victim")
	if !ok {
		t.Fatal("no lease")
	}
	if l.Points() < 3 {
		t.Fatalf("first lease too small for the test: [%d,%d)", l.Lo, l.Hi)
	}
	finished := make([]bool, l.Points())
	finished[0], finished[1] = true, true // streamed before death
	d.(interface {
		RequeuePartial(Lease, []bool)
	}).RequeuePartial(l, finished)

	seen := make(map[int]int)
	for {
		nl, ok := d.TryNext("rescuer")
		if !ok {
			break
		}
		for i := nl.Lo; i < nl.Hi; i++ {
			seen[i]++
		}
		d.Complete(nl, time.Millisecond)
	}
	if seen[l.Lo] != 0 || seen[l.Lo+1] != 0 {
		t.Errorf("streamed points re-leased: %v", seen)
	}
	for i := l.Lo + 2; i < 8; i++ {
		if seen[i] != 1 {
			t.Errorf("point %d leased %d times, want 1", i, seen[i])
		}
	}
	select {
	case <-d.Done():
	default:
		t.Error("dispatcher not done after tail re-ran")
	}
}
