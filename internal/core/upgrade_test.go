package core

import (
	"strings"
	"testing"

	"repro/internal/atm"
	"repro/internal/tcpsim"
)

func tcpConfig4MB() tcpsim.Config { return tcpsim.Config{WindowBytes: 4 << 20} }

func TestBackboneAggregateOC12Saturates(t *testing.T) {
	row, err := BackboneAggregate(atm.OC12, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Four 622-attached flows against a 599 Mbit/s backbone payload:
	// aggregate is pinned near the backbone capacity.
	if row.AggregateMbps > 545 {
		t.Errorf("OC-12 aggregate %.1f Mbit/s exceeds backbone payload", row.AggregateMbps)
	}
	if row.AggregateMbps < 420 {
		t.Errorf("OC-12 aggregate %.1f Mbit/s, poor utilization", row.AggregateMbps)
	}
}

func TestBackboneAggregateOC48LiftsLimit(t *testing.T) {
	row12, err := BackboneAggregate(atm.OC12, 4)
	if err != nil {
		t.Fatal(err)
	}
	row48, err := BackboneAggregate(atm.OC48, 4)
	if err != nil {
		t.Fatal(err)
	}
	// On OC-48 each flow gets its full attachment rate: aggregate
	// roughly 4x the single-attach ceiling and far above OC-12.
	if row48.AggregateMbps < 2.5*row12.AggregateMbps {
		t.Errorf("OC-48 aggregate %.1f vs OC-12 %.1f Mbit/s: upgrade effect missing",
			row48.AggregateMbps, row12.AggregateMbps)
	}
	if row48.AggregateMbps < 1900 || row48.AggregateMbps > 2300 {
		t.Errorf("OC-48 aggregate %.1f Mbit/s, want ~4x attach rate", row48.AggregateMbps)
	}
	for i, m := range row48.PerFlowMbps {
		if m < 450 {
			t.Errorf("flow %d on OC-48 only %.1f Mbit/s", i, m)
		}
	}
}

func TestBackboneAggregateValidation(t *testing.T) {
	if _, err := BackboneAggregate(atm.OC12, 0); err == nil {
		t.Error("0 flows accepted")
	}
	if _, err := BackboneAggregate(atm.OC12, 9); err == nil {
		t.Error("9 flows accepted")
	}
}

func TestMixedTrafficUpgradeEffect(t *testing.T) {
	m12, err := MixedTraffic(atm.OC12)
	if err != nil {
		t.Fatal(err)
	}
	m48, err := MixedTraffic(atm.OC48)
	if err != nil {
		t.Fatal(err)
	}
	// On OC-48 both workloads coexist: all frames on time and the
	// bulk flow runs at (near) full attachment rate.
	if m48.Video.OnTime != m48.Video.Frames {
		t.Errorf("OC-48: %d/%d video frames on time", m48.Video.OnTime, m48.Video.Frames)
	}
	if m48.BulkMbps < 450 {
		t.Errorf("OC-48 bulk = %.1f Mbit/s", m48.BulkMbps)
	}
	// On OC-12 the combined 270 + ~540 Mbit/s demand exceeds the 599
	// Mbit/s payload: something must give — either video lateness or
	// a markedly slowed bulk flow.
	degraded := m12.Video.OnTime < m12.Video.Frames || m12.BulkMbps < m48.BulkMbps*0.75
	if !degraded {
		t.Errorf("OC-12 mixed traffic shows no contention: video %d/%d, bulk %.1f Mbit/s",
			m12.Video.OnTime, m12.Video.Frames, m12.BulkMbps)
	}
	text := FormatUpgrade([]AggregateRow{}, []MixedTrafficResult{m12, m48})
	if !strings.Contains(text, "D1 video") {
		t.Error("format output incomplete")
	}
}

func TestBackboneUtilizationDuringTransfer(t *testing.T) {
	tb := New(Config{WAN: atm.OC12})
	if tb.BackboneWireBytes() != 0 {
		t.Error("fresh backbone carried bytes")
	}
	// A WAN transfer at near the OC-12 ceiling keeps one direction of
	// the backbone almost fully busy.
	if _, err := tb.TCPTransfer(HostWSJuelich, HostWSGMD, 64<<20, tcpConfig4MB()); err != nil {
		t.Fatal(err)
	}
	u := tb.BackboneUtilization()
	if u < 0.85 || u > 1.2 {
		t.Errorf("OC-12 utilization during saturating transfer = %.3f, want ~0.9-1.1", u)
	}
	if tb.BackboneWireBytes() < 64<<20 {
		t.Errorf("backbone carried only %d bytes", tb.BackboneWireBytes())
	}
	// The same transfer on OC-48 leaves most of the backbone idle.
	tb48 := New(Config{WAN: atm.OC48})
	if _, err := tb48.TCPTransfer(HostWSJuelich, HostWSGMD, 64<<20, tcpConfig4MB()); err != nil {
		t.Fatal(err)
	}
	if u48 := tb48.BackboneUtilization(); u48 > 0.5 {
		t.Errorf("OC-48 utilization = %.3f, want plenty of headroom", u48)
	}
}

func Test155MbitAttachIsSlower(t *testing.T) {
	tb := New(Config{})
	r622, err := tb.TCPTransfer(HostWSJuelich, HostWSGMD, 16<<20, tcpConfig4MB())
	if err != nil {
		t.Fatal(err)
	}
	tb = New(Config{})
	r155, err := tb.TCPTransfer(HostWS155Juelich, HostWS155GMD, 16<<20, tcpConfig4MB())
	if err != nil {
		t.Fatal(err)
	}
	if r155.ThroughputBps >= r622.ThroughputBps/2 {
		t.Errorf("155 attach (%.1f) not clearly slower than 622 (%.1f)",
			r155.ThroughputBps/1e6, r622.ThroughputBps/1e6)
	}
	// And it should land near the OC-3 payload ceiling.
	if r155.ThroughputBps < 110e6 || r155.ThroughputBps > 140e6 {
		t.Errorf("155 attach = %.1f Mbit/s, want ~120-135", r155.ThroughputBps/1e6)
	}
}
