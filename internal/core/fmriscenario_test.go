package core

import (
	"testing"
)

func TestFMRIScenarioMeetsPaperBudget(t *testing.T) {
	res, err := RunFMRIScenario(FMRIScenario{PEs: 256, TR: 3.0, Frames: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames == 0 {
		t.Fatal("no frames displayed")
	}
	// The derived end-to-end GUI delay must land under the paper's
	// 5 s bound (and above the bare compute+scan floor).
	if res.MaxGUIDelay >= 5.0 {
		t.Errorf("max GUI delay %.2f s, paper promises < 5", res.MaxGUIDelay)
	}
	if res.MeanGUIDelay < 2.0 {
		t.Errorf("mean GUI delay %.2f s implausibly small", res.MeanGUIDelay)
	}
	// The VR path adds the Onyx round trip on top of the GUI delay.
	if res.MeanVRDelay <= res.MeanGUIDelay {
		t.Error("VR delay should exceed GUI delay")
	}
	// Wire time is a small share: the budget is dominated by scanner
	// availability, control handling, compute and display — the
	// paper's observation that bytes were not the problem.
	if res.WireSeconds > 0.5 {
		t.Errorf("wire seconds %.3f per frame, should be well under the 1.1 s budget", res.WireSeconds)
	}
}

func TestFMRIScenarioFewerPEsSlower(t *testing.T) {
	fast, err := RunFMRIScenario(FMRIScenario{PEs: 256, TR: 3.0, Frames: 8})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunFMRIScenario(FMRIScenario{PEs: 16, TR: 8.0, Frames: 8})
	if err != nil {
		t.Fatal(err)
	}
	if slow.MeanGUIDelay <= fast.MeanGUIDelay {
		t.Errorf("16-PE delay %.2f s should exceed 256-PE %.2f s",
			slow.MeanGUIDelay, fast.MeanGUIDelay)
	}
	if slow.ComputeSeconds <= fast.ComputeSeconds {
		t.Error("compute time should grow as PEs shrink")
	}
}

func TestFMRIScenarioFastTRSkipsFrames(t *testing.T) {
	// At TR=2 the unpipelined chain (~2.7 s + transfers) cannot keep
	// up: the realtime system skips to the newest scan.
	res, err := RunFMRIScenario(FMRIScenario{PEs: 256, TR: 2.0, Frames: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames >= 16 {
		t.Errorf("displayed %d/16 frames at TR=2; expected skips", res.Frames)
	}
}

func TestFMRIScenarioValidation(t *testing.T) {
	if _, err := RunFMRIScenario(FMRIScenario{}); err == nil {
		t.Error("zero scenario accepted")
	}
}
