package core

import (
	"fmt"
	"strings"

	"repro/internal/atm"
	"repro/internal/tcpsim"
	"repro/internal/video"
)

// This file holds the "why gigabit" experiments that motivate the
// OC-12 -> OC-48 upgrade (section 2) and the B-WiN replacement
// (section 1): aggregate backbone load and mixed-traffic behaviour.

// AggregateRow is one backbone saturation measurement.
type AggregateRow struct {
	Backbone      atm.OC
	Flows         int
	AggregateMbps float64
	PerFlowMbps   []float64
}

// BackboneAggregate runs `flows` concurrent workstation-to-workstation
// TCP streams (622 Mbit/s attachments on both sides) across the given
// backbone and reports the aggregate goodput. On OC-12 the backbone is
// the bottleneck; on OC-48 the per-host attachments are.
func BackboneAggregate(wan atm.OC, flows int) (AggregateRow, error) {
	return backboneAggregate(wan, flows, 1, false)
}

// backboneAggregate is BackboneAggregate on a testbed split across
// `kernels` PDES kernels (1 = the classic single-kernel run; the report
// is byte-identical either way); intra additionally allows
// switch-boundary cuts.
func backboneAggregate(wan atm.OC, flows, kernels int, intra bool) (AggregateRow, error) {
	if flows < 1 || flows > 4 {
		return AggregateRow{}, fmt.Errorf("core: 1..4 flows supported, got %d", flows)
	}
	tb := New(Config{WAN: wan, Kernels: kernels, Intra: intra})
	defer tb.flushPDES()
	srcs := []string{HostWSJuelich, HostWS2Juelich, HostWS3Juelich, HostWS4Juelich}
	dsts := []string{HostWSGMD, HostWS2GMD, HostWS3GMD, HostWS4GMD}
	var fl []*tcpsim.Flow
	for i := 0; i < flows; i++ {
		src, err := tb.Host(srcs[i])
		if err != nil {
			return AggregateRow{}, err
		}
		dst, err := tb.Host(dsts[i])
		if err != nil {
			return AggregateRow{}, err
		}
		f, err := tcpsim.Start(tb.Net, src, dst, 64<<20, tcpsim.Config{WindowBytes: 4 << 20})
		if err != nil {
			return AggregateRow{}, err
		}
		fl = append(fl, f)
	}
	if err := tcpsim.WaitAll(tb.Net, fl...); err != nil {
		return AggregateRow{}, err
	}
	row := AggregateRow{Backbone: wan, Flows: flows}
	for _, f := range fl {
		res, err := f.Result()
		if err != nil {
			return AggregateRow{}, err
		}
		row.PerFlowMbps = append(row.PerFlowMbps, res.ThroughputBps/1e6)
		row.AggregateMbps += res.ThroughputBps / 1e6
	}
	// The kernel is dry and every result is read: recycle the flows.
	for _, f := range fl {
		f.Release()
	}
	return row, nil
}

// MixedTrafficResult compares a D1 video stream sharing the backbone
// with bulk TCP, on both backbone generations.
type MixedTrafficResult struct {
	Backbone atm.OC
	Video    video.StreamResult
	BulkMbps float64
}

// MixedTraffic streams 270 Mbit/s of D1 video Onyx2 -> Jülich while a
// bulk TCP flow runs between workstation pairs. On OC-12 the two
// compete for the 542 Mbit/s payload; on OC-48 both get their fill.
func MixedTraffic(wan atm.OC) (MixedTrafficResult, error) {
	return mixedTraffic(wan, 1, false)
}

// mixedTraffic is MixedTraffic with the testbed split across `kernels`
// PDES kernels (intra allowing switch-boundary cuts); the report is
// byte-identical at any kernel count.
func mixedTraffic(wan atm.OC, kernels int, intra bool) (MixedTrafficResult, error) {
	tb := New(Config{WAN: wan, Kernels: kernels, Intra: intra})
	defer tb.flushPDES()
	onyx, err := tb.Host(HostOnyx2)
	if err != nil {
		return MixedTrafficResult{}, err
	}
	wsj, err := tb.Host(HostWSJuelich)
	if err != nil {
		return MixedTrafficResult{}, err
	}
	src, err := tb.Host(HostWS2GMD)
	if err != nil {
		return MixedTrafficResult{}, err
	}
	dst, err := tb.Host(HostWS2Juelich)
	if err != nil {
		return MixedTrafficResult{}, err
	}
	// Start the bulk flow; the video scheduler then shares the
	// kernel. video.Stream's final Run drives both to completion.
	bulk, err := tcpsim.Start(tb.Net, src, dst, 96<<20, tcpsim.Config{WindowBytes: 4 << 20})
	if err != nil {
		return MixedTrafficResult{}, err
	}
	vres, err := video.Stream(tb.Net, onyx, wsj, video.StreamConfig{Frames: 50})
	if err != nil {
		return MixedTrafficResult{}, err
	}
	if err := tcpsim.WaitAll(tb.Net, bulk); err != nil {
		return MixedTrafficResult{}, err
	}
	bres, err := bulk.Result()
	if err != nil {
		return MixedTrafficResult{}, err
	}
	bulk.Release()
	return MixedTrafficResult{Backbone: wan, Video: vres, BulkMbps: bres.ThroughputBps / 1e6}, nil
}

// FormatUpgrade renders the upgrade-motivation experiments.
func FormatUpgrade(aggs []AggregateRow, mixes []MixedTrafficResult) string {
	var sb strings.Builder
	sb.WriteString("U1: backbone aggregate capacity (concurrent 622-attached flows)\n")
	for _, a := range aggs {
		fmt.Fprintf(&sb, "  %-6v x%d flows: %7.1f Mbit/s aggregate\n", a.Backbone, a.Flows, a.AggregateMbps)
	}
	sb.WriteString("U2: 270 Mbit/s D1 video sharing the backbone with bulk TCP\n")
	for _, m := range mixes {
		fmt.Fprintf(&sb, "  %-6v video %2d/%2d frames on time (peak jitter %6.2f ms), bulk TCP %7.1f Mbit/s\n",
			m.Backbone, m.Video.OnTime, m.Video.Frames,
			m.Video.PeakJitter.Seconds()*1000, m.BulkMbps)
	}
	return sb.String()
}
