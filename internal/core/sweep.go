package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// This file is the sharded sweep engine. A parameter-sweep scenario —
// the shape of the paper's headline results: Figure-1 throughput
// probes, the backbone aggregate at each carrier generation, mixed
// traffic per OC level — used to iterate its whole grid inside one
// simulation kernel on one core. A Sweep instead describes the grid
// declaratively (Axes), evaluates one grid point at a time (PointFunc)
// and reassembles the point results into the ordinary scenario Report
// (MergeFunc). The executor splits the grid across shards, each shard
// owning a fresh sim.Kernel/netsim.Network/Testbed, and merges results
// in grid order — never completion order — so a sharded run's report is
// byte-identical to the sequential one.
//
// A Sweep is an ordinary Scenario: register it with MustRegister and it
// runs through Run/RunAll/cmd/gtwrun with no special cases.

// Axis is one named dimension of a sweep grid.
type Axis struct {
	// Name labels the dimension (diagnostics only).
	Name string
	// Values are the points along this axis, in sweep order.
	Values []any
}

// Point is one coordinate of the sweep grid. Points enumerate the cross
// product of the axes in row-major order: the last axis varies fastest.
type Point struct {
	// Index is the point's position in grid order.
	Index int
	// Coords holds one value per axis, in axis order.
	Coords []any
}

// Coord returns the point's value along axis i.
func (pt Point) Coord(i int) any { return pt.Coords[i] }

// PointFunc evaluates one grid point. tb is the shard's testbed: a
// fresh instance owned by the shard by default, or the one shared
// testbed when the run was given WithTestbed (shared runs must touch it
// only through its concurrency-safe methods). Point functions that
// drive their own simulation kernel (BackboneAggregate-style) ignore tb.
type PointFunc func(ctx context.Context, tb *Testbed, opts Options, pt Point) (any, error)

// MergeFunc reassembles the per-point results — always in grid order,
// one entry per point — into the scenario's Report.
type MergeFunc func(opts Options, results []any) (Report, error)

// Sweep is a parameter-sweep scenario: a grid of points evaluated
// independently and merged deterministically. It implements Scenario.
type Sweep struct {
	name, desc string
	axes       []Axis
	runPoint   PointFunc
	merge      MergeFunc
	noTestbed  bool
}

// NoShardTestbed declares that every point function builds its own
// simulation state (BackboneAggregate-style) and ignores the testbed
// argument, so shards skip constructing one. A shared testbed from
// WithTestbed is still passed through. Returns the sweep for chaining:
//
//	MustRegister(NewSweep(...).NoShardTestbed())
func (sw *Sweep) NoShardTestbed() *Sweep {
	sw.noTestbed = true
	return sw
}

// NewSweep builds a sweep scenario over the cross product of axes.
// Register the result like any other scenario.
func NewSweep(name, description string, axes []Axis, runPoint PointFunc, merge MergeFunc) *Sweep {
	return &Sweep{name: name, desc: description, axes: axes, runPoint: runPoint, merge: merge}
}

// Name implements Scenario.
func (sw *Sweep) Name() string { return sw.name }

// Description implements Scenario.
func (sw *Sweep) Description() string { return sw.desc }

// Axes returns the sweep's grid dimensions.
func (sw *Sweep) Axes() []Axis { return sw.axes }

// Points enumerates the grid in row-major order (last axis fastest).
func (sw *Sweep) Points() []Point {
	total := 1
	for _, ax := range sw.axes {
		total *= len(ax.Values)
	}
	if len(sw.axes) == 0 {
		total = 0
	}
	pts := make([]Point, total)
	for i := 0; i < total; i++ {
		coords := make([]any, len(sw.axes))
		rem := i
		for a := len(sw.axes) - 1; a >= 0; a-- {
			n := len(sw.axes[a].Values)
			coords[a] = sw.axes[a].Values[rem%n]
			rem /= n
		}
		pts[i] = Point{Index: i, Coords: coords}
	}
	return pts
}

// ShardTiming records one shard's share of a sweep run.
type ShardTiming struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Points is the number of grid points the shard evaluated.
	Points int `json:"points"`
	// ElapsedNS is the shard's wall-clock time in nanoseconds.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// Elapsed returns the shard's wall-clock time.
func (st ShardTiming) Elapsed() time.Duration { return time.Duration(st.ElapsedNS) }

// ShardedReport is implemented by reports coming out of a sweep run: the
// merged scenario report plus the per-shard execution timings. Text and
// JSON delegate to the merged report, so sharding never changes the
// measurement record.
type ShardedReport interface {
	Report
	// ShardTimings reports each shard's point count and wall-clock time.
	ShardTimings() []ShardTiming
}

// sweepReport decorates the merged report with shard timings.
type sweepReport struct {
	Report
	timings []ShardTiming
}

// ShardTimings implements ShardedReport.
func (r *sweepReport) ShardTimings() []ShardTiming { return r.timings }

// Run implements Scenario: evaluate every grid point across shards and
// merge in grid order.
//
// Sharding: opts.Shards bounds the shard count (0 = GOMAXPROCS, capped
// at the number of points). Each shard evaluates a contiguous batch of
// the grid on its own fresh testbed built from opts — except in shared
// mode (opts.Testbed non-nil), where every shard uses the one shared
// testbed so co-allocation stays common and the backbone counters keep
// accumulating across scenarios; shards then contend on the testbed's
// internal locks instead of running truly in parallel. A testbed passed
// through the tb argument alone serves an unsharded run (the engine's
// fresh-per-scenario testbed); to share one across shards it must come
// through WithTestbed.
//
// Cancellation stops shards between points and Run returns ctx's error;
// a panicking point is contained and reported as that point's error.
// The first error in grid order wins.
func (sw *Sweep) Run(ctx context.Context, tb *Testbed, opts Options) (Report, error) {
	pts := sw.Points()
	if len(pts) == 0 {
		return nil, fmt.Errorf("core: sweep %q has an empty grid", sw.name)
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		// An explicit WithWorkers bound caps total engine concurrency;
		// don't let the default shard fan-out exceed it (an explicit
		// WithShards still may).
		if opts.Workers > 0 && opts.Workers < shards {
			shards = opts.Workers
		}
	}
	if shards > len(pts) {
		shards = len(pts)
	}
	// Shard testbeds are built from the sweep run's configuration; a
	// testbed handed in by the caller fixes that configuration for
	// every shard (the engine builds none for sweeps, so tb is non-nil
	// only for direct callers and shared runs).
	shardCfg := Config{WAN: opts.WAN, Extensions: opts.Extensions}
	if tb != nil {
		shardCfg = tb.Cfg
	}

	results := make([]any, len(pts))
	errs := make([]error, len(pts))
	timings := make([]ShardTiming, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		// Contiguous batches in grid order: shard s gets [lo, hi).
		lo := s * len(pts) / shards
		hi := (s + 1) * len(pts) / shards
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			start := time.Now()
			shardTb := opts.Testbed // shared mode: every shard uses the one testbed
			if shardTb == nil && shards == 1 {
				shardTb = tb // unsharded: any testbed the caller handed in
			}
			if shardTb == nil && !sw.noTestbed {
				shardTb = New(shardCfg)
			}
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = sw.runOnePoint(ctx, shardTb, opts, pts[i])
			}
			timings[s] = ShardTiming{Shard: s, Points: hi - lo, ElapsedNS: time.Since(start).Nanoseconds()}
		}(s, lo, hi)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: sweep %q point %d: %w", sw.name, i, err)
		}
	}
	rep, err := sw.merge(opts, results)
	if err != nil {
		return nil, err
	}
	return &sweepReport{Report: rep, timings: timings}, nil
}

// runOnePoint evaluates a single grid point with panic containment, so
// one bad point fails the sweep with a usable error instead of tearing
// down the whole worker pool.
func (sw *Sweep) runOnePoint(ctx context.Context, tb *Testbed, opts Options, pt Point) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("point panicked: %v", r)
		}
	}()
	return sw.runPoint(ctx, tb, opts, pt)
}
